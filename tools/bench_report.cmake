# Aggregate every BENCH_*.json a bench run left behind into a single
# BENCH_summary.json, keyed by bench file stem. Each bench binary writes
# its own machine-readable record (bench_util's contract); this script
# only collates — it never re-runs anything, so it is cheap enough for
# every ctest invocation and safe when no bench has run yet (empty glob
# -> a summary with "count": 0, still a pass).
#
# Usage: cmake -DBENCH_DIR=<dir with BENCH_*.json> -P bench_report.cmake
cmake_minimum_required(VERSION 3.20)

if(NOT DEFINED BENCH_DIR)
  message(FATAL_ERROR "bench_report: pass -DBENCH_DIR=<dir>")
endif()

file(GLOB bench_files "${BENCH_DIR}/BENCH_*.json")
list(REMOVE_ITEM bench_files "${BENCH_DIR}/BENCH_summary.json")
list(SORT bench_files)

set(entries "")
set(count 0)
foreach(path IN LISTS bench_files)
  get_filename_component(stem "${path}" NAME_WE)
  file(READ "${path}" body)
  string(STRIP "${body}" body)
  if(body STREQUAL "")
    message(STATUS "bench_report: skipping empty ${path}")
    continue()
  endif()
  # Indent the embedded record so the summary stays readable.
  string(REPLACE "\n" "\n    " body "${body}")
  if(count GREATER 0)
    string(APPEND entries ",\n")
  endif()
  string(APPEND entries "    \"${stem}\": ${body}")
  math(EXPR count "${count} + 1")
endforeach()

set(summary "{\n  \"report\": \"bench_summary\",\n  \"count\": ${count},\n  \"benches\": {\n${entries}\n  }\n}\n")
if(count EQUAL 0)
  set(summary "{\n  \"report\": \"bench_summary\",\n  \"count\": 0,\n  \"benches\": {}\n}\n")
endif()

file(WRITE "${BENCH_DIR}/BENCH_summary.json" "${summary}")
message(STATUS "bench_report: ${count} bench record(s) -> ${BENCH_DIR}/BENCH_summary.json")
