# ThreadSanitizer drill for the serve scheduler, run as a ctest entry
# (serve_tsan). Configures a scratch build of the CLI with
# -fsanitize=thread and drains a six-job, three-tenant spool through
# `slm serve` with a 1 ms spool poll: the watcher thread hammers the
# shared FairShareScheduler (depth checks, admissions) while the serve
# loop concurrently pops, requeues, and charges timeslices and the
# report mutex collects counters — the exact surface serve_test only
# exercises sequentially. Any data race aborts the process
# (halt_on_error=1, exitcode=66) and fails the test. Skips gracefully
# when the toolchain lacks TSan.
#
# Usage: cmake -DREPO=<source root> -DWORKDIR=<scratch dir>
#        -DCXX=<C++ compiler> -P serve_tsan.cmake

set(scratch ${WORKDIR}/serve_tsan)
file(MAKE_DIRECTORY ${scratch})

# Probe: can the toolchain compile and link a TSan binary at all?
file(WRITE ${scratch}/probe.cpp "int main() { return 0; }\n")
execute_process(COMMAND ${CXX} -fsanitize=thread ${scratch}/probe.cpp
                        -o ${scratch}/probe
                RESULT_VARIABLE probe_rc OUTPUT_QUIET ERROR_QUIET)
if(NOT probe_rc EQUAL 0)
  message(STATUS "serve tsan: toolchain cannot link -fsanitize=thread, skipping")
  return()
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -S ${REPO} -B ${scratch}/build
                        -DCMAKE_BUILD_TYPE=RelWithDebInfo
                        "-DCMAKE_CXX_FLAGS=-fsanitize=thread -O1 -g"
                        -DCMAKE_EXE_LINKER_FLAGS=-fsanitize=thread
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "tsan configure failed:\n${out}\n${err}")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} --build ${scratch}/build
                        --target slm --parallel 4
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "tsan build failed:\n${out}\n${err}")
endif()

set(slm ${scratch}/build/tools/slm)
set(ENV{TSAN_OPTIONS} "halt_on_error=1 exitcode=66")

set(spool ${scratch}/spool)
set(results ${scratch}/results)
file(REMOVE_RECURSE ${spool} ${results})

# Six short jobs across three tenants, two per tenant, so the fair-share
# argmin scan, the requeue path, and the charge map all stay busy.
foreach(pair "alice;3" "bob;5" "carol;7" "alice;1" "bob;9" "carol;11")
  list(GET pair 0 tenant)
  list(GET pair 1 byte)
  execute_process(COMMAND ${slm} submit --spool ${spool} --tenant ${tenant}
                          --kind attack --mode tdc --traces 600
                          --key-byte ${byte}
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "tsan submit -> rc=${rc}\n${out}\n${err}")
  endif()
endforeach()

# --poll-ms 1 keeps the watcher thread scanning (and taking the
# scheduler mutex) concurrently with every slice the serve loop runs;
# --timeslice 200 forces preempt/requeue traffic on the same queue.
execute_process(COMMAND ${slm} serve --spool ${spool} --results ${results}
                        --threads 2 --timeslice 200 --poll-ms 1
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "tsan serve run -> rc=${rc} (rc 66 means ThreadSanitizer "
          "reported a data race)\n${out}\n${err}")
endif()
foreach(job job_0000_alice job_0001_bob job_0002_carol
        job_0003_alice job_0004_bob job_0005_carol)
  if(NOT EXISTS ${results}/${job}/result.json)
    message(FATAL_ERROR "tsan serve run left no result for ${job}")
  endif()
endforeach()

file(REMOVE_RECURSE ${spool} ${results})
message(STATUS "serve tsan: spool watcher vs serve loop is race-clean across 6 jobs / 3 tenants")
