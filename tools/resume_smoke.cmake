# End-to-end kill/resume drill, run as a ctest entry (resume_smoke):
# the OBSERVABILITY.md walkthrough, mechanized. A TDC campaign is run
# uninterrupted, then re-run with snapshots and a deterministic kill
# (--halt-after -> rc 5), then resumed; the resumed run must print the
# exact same recovery line, and the JSONL event stream must close with
# a run_end manifest.
#
# Usage: cmake -DSLM=<slm binary> -DWORKDIR=<scratch dir> -P resume_smoke.cmake

# Pinned to RNG contract v2 (the default, but explicit here so the
# drill keeps covering the counter-keyed path even if the default ever
# moves); a cross-contract resume attempt below must be refused.
set(common attack --circuit alu --mode tdc --traces 6000 --key-byte 3
    --rng-contract v2)
set(ckpt_dir ${WORKDIR}/resume_smoke_ckpt)
set(events ${WORKDIR}/resume_smoke_events.jsonl)
file(REMOVE_RECURSE ${ckpt_dir})
file(REMOVE ${events})

function(run_slm out_var expect_rc)
  execute_process(COMMAND ${SLM} ${ARGN}
                  WORKING_DIRECTORY ${WORKDIR}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expect_rc})
    message(FATAL_ERROR "slm ${ARGN} -> rc=${rc} (expected ${expect_rc})\n${out}\n${err}")
  endif()
  # stderr included so refusal diagnostics (e.g. the rc 6 contract
  # mismatch) can be asserted on too.
  set(${out_var} "${out}${err}" PARENT_SCOPE)
endfunction()

# 1. Uninterrupted reference run (6000 TDC traces disclose the byte).
run_slm(ref_out 0 ${common})
string(REGEX MATCH "true 0x[0-9a-f]+ recovered 0x[0-9a-f]+[^\n]*" ref_line "${ref_out}")
if(ref_line STREQUAL "")
  message(FATAL_ERROR "reference run printed no recovery line:\n${ref_out}")
endif()

# 2. Same campaign, snapshotting, killed after the first checkpoint
#    past 2000 traces. rc 5 is the documented "halted, snapshot on
#    disk" exit code. --block 48 does not divide the 2000-trace halt or
#    the 6000-trace budget: the block loop must still land exactly on
#    the checkpoint (the reference run above used the default block, so
#    the final line comparison also proves block-size invariance).
run_slm(halt_out 5 ${common} --block 48
        --checkpoint-dir ${ckpt_dir} --halt-after 2000 --trace-out ${events})
if(NOT halt_out MATCHES "campaign halted after")
  message(FATAL_ERROR "halted run did not announce the snapshot:\n${halt_out}")
endif()
if(NOT EXISTS ${ckpt_dir}/campaign.ckpt)
  message(FATAL_ERROR "halt left no snapshot at ${ckpt_dir}/campaign.ckpt")
endif()

# 3. Cross-contract resume must be refused: the snapshot stamps its
#    RNG contract (header version 3), and replaying a v2 snapshot's
#    remaining traces under v1 draws would silently change the physics.
#    rc 6 is the documented "checkpoint contract mismatch" exit code.
run_slm(mismatch_out 6 attack --circuit alu --mode tdc --traces 6000
        --key-byte 3 --rng-contract v1 --block 48 --resume ${ckpt_dir})
if(NOT mismatch_out MATCHES "RNG contract")
  message(FATAL_ERROR "cross-contract resume did not explain the refusal:\n${mismatch_out}")
endif()

# 4. Resume and run to completion (still under the odd block size).
run_slm(res_out 0 ${common} --block 48 --resume ${ckpt_dir} --trace-out ${events})
if(NOT res_out MATCHES "resumed from trace")
  message(FATAL_ERROR "resumed run did not restore the snapshot:\n${res_out}")
endif()
string(REGEX MATCH "true 0x[0-9a-f]+ recovered 0x[0-9a-f]+[^\n]*" res_line "${res_out}")

# 5. Verify: identical recovery line (same true byte, same recovered
#    byte, same measurements-to-disclosure), and a closed event stream.
if(NOT ref_line STREQUAL res_line)
  message(FATAL_ERROR "resume diverged from the uninterrupted run:\n"
                      "  reference: ${ref_line}\n  resumed:   ${res_line}")
endif()
file(READ ${events} event_stream)
if(NOT event_stream MATCHES "\"ev\":\"halt\"")
  message(FATAL_ERROR "event stream is missing the halt event")
endif()
if(NOT event_stream MATCHES "\"ev\":\"resume\"")
  message(FATAL_ERROR "event stream is missing the resume event")
endif()
if(NOT event_stream MATCHES "\"ev\":\"run_end\"")
  message(FATAL_ERROR "event stream is missing the run_end manifest")
endif()

file(REMOVE_RECURSE ${ckpt_dir})
file(REMOVE ${events})
message(STATUS "resume smoke: kill at 2000/6000 under --block 48, bit-identical recovery after resume")
