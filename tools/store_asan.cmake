# AddressSanitizer drill for the trace store's zero-copy mmap replay
# path, run as a ctest entry (store_asan). Configures a scratch build of
# the CLI with -fsanitize=address and drives a capture plus replays
# through it: every chunk-CRC walk over the mapped file, every column
# view handed to the folding kernels, and the refusal paths for a
# corrupted and a truncated store must stay inside the mapping. An
# out-of-bounds read aborts the process (halt_on_error=1, exitcode=66)
# and fails the test. Skips gracefully when the toolchain lacks ASan.
#
# Usage: cmake -DREPO=<source root> -DWORKDIR=<scratch dir>
#        -DCXX=<C++ compiler> -P store_asan.cmake

set(scratch ${WORKDIR}/store_asan)
file(MAKE_DIRECTORY ${scratch})

# Probe: can the toolchain compile and link an ASan binary at all?
file(WRITE ${scratch}/probe.cpp "int main() { return 0; }\n")
execute_process(COMMAND ${CXX} -fsanitize=address ${scratch}/probe.cpp
                        -o ${scratch}/probe
                RESULT_VARIABLE probe_rc OUTPUT_QUIET ERROR_QUIET)
if(NOT probe_rc EQUAL 0)
  message(STATUS "store asan: toolchain cannot link -fsanitize=address, skipping")
  return()
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -S ${REPO} -B ${scratch}/build
                        -DCMAKE_BUILD_TYPE=RelWithDebInfo
                        "-DCMAKE_CXX_FLAGS=-fsanitize=address -O1 -g"
                        -DCMAKE_EXE_LINKER_FLAGS=-fsanitize=address
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "asan configure failed:\n${out}\n${err}")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} --build ${scratch}/build
                        --target slm --parallel 4
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "asan build failed:\n${out}\n${err}")
endif()

set(slm ${scratch}/build/tools/slm)
set(ENV{ASAN_OPTIONS} "halt_on_error=1 exitcode=66")

function(run_slm expect_rc)
  execute_process(COMMAND ${slm} ${ARGN}
                  WORKING_DIRECTORY ${scratch}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expect_rc})
    message(FATAL_ERROR
            "asan slm ${ARGN} -> rc=${rc} (expected ${expect_rc}; rc 66 "
            "means AddressSanitizer reported a memory error)\n${out}\n${err}")
  endif()
endfunction()

set(common --circuit alu --mode tdc --traces 1500 --key-byte 3
    --rng-contract v2)
set(store ${scratch}/asan.trc)
file(REMOVE ${store})

# Capture under ASan (writer path), then replay twice: single-byte and
# TVLA both walk the full chunk index and fold straight out of the
# mapping. 1500 traces may or may not disclose the byte — the drill is
# about memory safety, so accept rc 0 or 4 by replaying with the engine
# that was captured and only pinning the refusal codes below.
execute_process(COMMAND ${slm} capture --store-out ${store} ${common}
                WORKING_DIRECTORY ${scratch}
                RESULT_VARIABLE cap_rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT (cap_rc EQUAL 0 OR cap_rc EQUAL 4))
  message(FATAL_ERROR "asan capture -> rc=${cap_rc}\n${out}\n${err}")
endif()
run_slm(${cap_rc} attack --from-store ${store} ${common})

# Refusal paths under ASan: the corrupted-chunk CRC walk and the
# truncated-mapping bounds checks must reject without touching memory
# past the file.
set(bad ${scratch}/asan_bad.trc)
configure_file(${store} ${bad} COPYONLY)
file(WRITE ${scratch}/patch.bin "ZQ")
execute_process(COMMAND dd if=${scratch}/patch.bin of=${bad}
                        bs=1 seek=2000 count=2 conv=notrunc
                RESULT_VARIABLE dd_rc OUTPUT_QUIET ERROR_QUIET)
if(NOT dd_rc EQUAL 0)
  message(FATAL_ERROR "dd corruption patch failed (rc=${dd_rc})")
endif()
run_slm(13 attack --from-store ${bad} ${common})

set(short ${scratch}/asan_short.trc)
execute_process(COMMAND dd if=${store} of=${short} bs=1024 count=12
                RESULT_VARIABLE dd_rc OUTPUT_QUIET ERROR_QUIET)
if(NOT dd_rc EQUAL 0)
  message(FATAL_ERROR "dd truncation failed (rc=${dd_rc})")
endif()
run_slm(13 attack --from-store ${short} ${common})

run_slm(14 attack --from-store ${store} --circuit alu --mode tdc
        --key-byte 5 --rng-contract v2)

file(REMOVE ${store} ${bad} ${short})
message(STATUS "store asan: mmap replay and refusal paths are clean under AddressSanitizer")
