# UndefinedBehaviorSanitizer drill for the integer-exact fold engine,
# run as a ctest entry (fold_ubsan). The engine's whole correctness
# story rests on int64 accumulation never wrapping inside the
# kMaxFoldTraces x kMaxAbsReading budget (sca/fold_kernels.hpp); this
# drill configures a scratch -fsanitize=undefined build and drives the
# arithmetic that has to be overflow-free:
#   1. fold_dispatch_test at every runnable SLM_SIMD level — the block
#      kernels (stage / sum_cols2 / scatter), budget guards, and the
#      property oracles all execute under UBSan;
#   2. a capture plus the fused one-pass replay (`slm attack
#      --from-store --fused-tvla` and `slm analyze`) — the end-to-end
#      path from mmap'd store columns through every fold.
# Any signed overflow, misaligned load, or invalid shift aborts the
# process (halt_on_error=1, exitcode=66) and fails the test. Skips
# gracefully when the toolchain lacks UBSan.
#
# Usage: cmake -DREPO=<source root> -DWORKDIR=<scratch dir>
#        -DCXX=<C++ compiler> -P fold_ubsan.cmake

set(scratch ${WORKDIR}/fold_ubsan)
file(MAKE_DIRECTORY ${scratch})

# Probe: can the toolchain compile and link a UBSan binary at all?
file(WRITE ${scratch}/probe.cpp "int main() { return 0; }\n")
execute_process(COMMAND ${CXX} -fsanitize=undefined ${scratch}/probe.cpp
                        -o ${scratch}/probe
                RESULT_VARIABLE probe_rc OUTPUT_QUIET ERROR_QUIET)
if(NOT probe_rc EQUAL 0)
  message(STATUS "fold ubsan: toolchain cannot link -fsanitize=undefined, skipping")
  return()
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -S ${REPO} -B ${scratch}/build
                        -DCMAKE_BUILD_TYPE=RelWithDebInfo
                        -DSLM_SANITIZE=undefined
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "ubsan configure failed:\n${out}\n${err}")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} --build ${scratch}/build
                        --target slm fold_dispatch_test --parallel 4
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "ubsan build failed:\n${out}\n${err}")
endif()

set(ENV{UBSAN_OPTIONS} "halt_on_error=1 exitcode=66 print_stacktrace=1")

# 1. The kernel property suite at every dispatch level. Unsupported
# levels are skipped inside the test (force_dispatch refuses levels the
# CPU lacks), so driving all three spellings is safe everywhere.
foreach(simd 0 sse2 avx2 auto)
  execute_process(COMMAND ${CMAKE_COMMAND} -E env SLM_SIMD=${simd}
                          ${scratch}/build/tests/fold_dispatch_test
                  WORKING_DIRECTORY ${scratch}
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "ubsan fold_dispatch_test (SLM_SIMD=${simd}) -> rc=${rc} (rc 66 "
            "means UBSan reported undefined behavior)\n${out}\n${err}")
  endif()
endforeach()

# 2. End-to-end fused replay under UBSan: capture a store, then the
# fused attack+TVLA read-out and the three-section analyze verb. 1500
# traces may or may not disclose the byte, so accept the capture's rc
# from the replay as well (bit-identity is the store suite's job — here
# only UBSan's verdict matters).
set(slm ${scratch}/build/tools/slm)
set(common --circuit alu --mode tdc --traces 1500 --key-byte 3
    --rng-contract v2)
set(store ${scratch}/ubsan.trc)
file(REMOVE ${store})

execute_process(COMMAND ${slm} capture --store-out ${store} ${common}
                WORKING_DIRECTORY ${scratch}
                RESULT_VARIABLE cap_rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT (cap_rc EQUAL 0 OR cap_rc EQUAL 4))
  message(FATAL_ERROR "ubsan capture -> rc=${cap_rc}\n${out}\n${err}")
endif()

execute_process(COMMAND ${slm} attack --from-store ${store} --fused-tvla
                        ${common}
                WORKING_DIRECTORY ${scratch}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL ${cap_rc})
  message(FATAL_ERROR
          "ubsan fused attack -> rc=${rc} (expected ${cap_rc})\n${out}\n${err}")
endif()

# analyze exits 0 only when the FULL key is recovered; at 1500 traces
# a single-byte store will usually report 4. Both are clean runs — only
# rc 66 (a UBSan report) or a hard error may fail the drill.
execute_process(COMMAND ${slm} analyze --from-store ${store}
                WORKING_DIRECTORY ${scratch}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT (rc EQUAL 0 OR rc EQUAL 4))
  message(FATAL_ERROR "ubsan analyze -> rc=${rc}\n${out}\n${err}")
endif()

file(REMOVE ${store})
message(STATUS "fold ubsan: kernels and fused replay are clean under UBSan")
