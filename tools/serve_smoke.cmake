# Campaign-as-a-service kill/restart drill, run as a ctest entry
# (serve_smoke): the docs/SERVE.md walkthrough, mechanized.
#
# Three tenants submit jobs (two single-byte attacks plus one TVLA
# assessment). A reference daemon drains them uninterrupted. A second
# daemon over identical submissions is killed mid-job via --max-slices
# (exit 12) and restarted — after the restart, every job's result.json
# must be byte-identical to the reference run's. The admission-control
# half proves the documented exit codes: spool backpressure (10), bad
# job spec (11), and malformed-spool-file quarantine into rejected/.
#
# Usage: cmake -DSLM=<slm binary> -DWORKDIR=<scratch dir> -P serve_smoke.cmake

set(dir ${WORKDIR}/serve_smoke)
file(REMOVE_RECURSE ${dir})
file(MAKE_DIRECTORY ${dir})

function(run_slm out_var expect_rc)
  execute_process(COMMAND ${SLM} ${ARGN}
                  WORKING_DIRECTORY ${WORKDIR}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expect_rc})
    message(FATAL_ERROR "slm ${ARGN} -> rc=${rc} (expected ${expect_rc})\n${out}\n${err}")
  endif()
  set(${out_var} "${out}${err}" PARENT_SCOPE)
endfunction()

function(require_identical a b what)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${a} ${b}
                  RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR "${what}: ${a} and ${b} are not byte-identical")
  endif()
endfunction()

# Identically ordered submissions get identical deterministic job ids.
function(submit_three spool)
  run_slm(s1 0 submit --spool ${spool} --tenant alice --kind attack
          --mode tdc --traces 3000 --key-byte 3)
  run_slm(s2 0 submit --spool ${spool} --tenant bob --kind attack
          --mode tdc --traces 3000 --key-byte 5)
  run_slm(s3 0 submit --spool ${spool} --tenant carol --kind tvla
          --mode tdc --traces 1500)
  if(NOT s1 MATCHES "submitted job_0000_alice ")
    message(FATAL_ERROR "submit did not assign the deterministic id:\n${s1}")
  endif()
endfunction()

set(jobs job_0000_alice job_0001_bob job_0002_carol)

# --- 1. Reference: drain the three jobs uninterrupted.
submit_three(${dir}/spool_ref)
run_slm(ref_out 0 serve --spool ${dir}/spool_ref --results ${dir}/ref
        --threads 2)
if(NOT ref_out MATCHES "serve: drained")
  message(FATAL_ERROR "reference daemon did not drain:\n${ref_out}")
endif()
foreach(j ${jobs})
  if(NOT EXISTS ${dir}/ref/${j}/result.json)
    message(FATAL_ERROR "reference run left no result for ${j}")
  endif()
endforeach()

# --- 2. Kill mid-job: identical submissions, preemptive timeslices, and
#        a daemon stopped after 2 slices with work still queued (rc 12).
submit_three(${dir}/spool_kill)
run_slm(kill_out 12 serve --spool ${dir}/spool_kill --results ${dir}/kill
        --threads 2 --timeslice 1000 --max-slices 2)
if(NOT kill_out MATCHES "halted by --max-slices")
  message(FATAL_ERROR "halted daemon did not say so:\n${kill_out}")
endif()

# The interrupted state is inspectable: unfinished jobs sit in the
# results directory as job.json without result.json, and `slm status`
# reads the feed without a daemon running.
run_slm(st_out 0 status --results ${dir}/kill --spool ${dir}/spool_kill)
if(NOT st_out MATCHES "slices 2 ")
  message(FATAL_ERROR "status does not show the halted slice count:\n${st_out}")
endif()
if(NOT st_out MATCHES "alice")
  message(FATAL_ERROR "status tenant table is missing alice:\n${st_out}")
endif()

# --- 3. Restart over the same directories: checkpoint recovery drains
#        the backlog, and every result is byte-identical to the
#        uninterrupted reference.
run_slm(resume_out 0 serve --spool ${dir}/spool_kill --results ${dir}/kill
        --threads 2 --timeslice 1000)
if(NOT resume_out MATCHES "serve: drained")
  message(FATAL_ERROR "restarted daemon did not drain:\n${resume_out}")
endif()
if(NOT resume_out MATCHES "\\(\\+[1-9] recovered\\)")
  message(FATAL_ERROR "restart recovered nothing:\n${resume_out}")
endif()
foreach(j ${jobs})
  require_identical(${dir}/kill/${j}/result.json ${dir}/ref/${j}/result.json
                    "kill/restart result for ${j}")
endforeach()

# The daemon feed carries the whole story as JSONL events.
file(READ ${dir}/kill/serve.jsonl feed)
foreach(ev serve_start job_recovered job_slice_start job_preempted job_done
        run_end)
  if(NOT feed MATCHES "\"ev\":\"${ev}\"")
    message(FATAL_ERROR "serve.jsonl is missing the ${ev} event")
  endif()
endforeach()

# --- 4. Admission control. Spool backpressure: a fourth submission
#        against a 3-deep spool with --queue-cap 3 is refused (rc 10).
submit_three(${dir}/spool_bp)
run_slm(bp_out 10 submit --spool ${dir}/spool_bp --tenant dave
        --kind attack --traces 1000 --queue-cap 3)
if(NOT bp_out MATCHES "3/3 pending")
  message(FATAL_ERROR "backpressure refusal does not show the depth:\n${bp_out}")
endif()

# Bad job specs are refused at the submission edge (rc 11)...
run_slm(bad_kind 11 submit --spool ${dir}/spool_bad --tenant eve
        --kind nonsense)
run_slm(bad_tenant 11 submit --spool ${dir}/spool_bad --kind attack)

# ...and a malformed file smuggled into the spool directly is
# quarantined by the daemon, not fatal to it.
file(WRITE ${dir}/spool_bad/job_evil.json "{\"tenant\":\"eve\",\"kind\":\"nonsense\"}")
run_slm(rej_out 0 serve --spool ${dir}/spool_bad --results ${dir}/bad
        --threads 1)
if(NOT rej_out MATCHES "1 rejected")
  message(FATAL_ERROR "daemon did not count the rejected file:\n${rej_out}")
endif()
if(NOT EXISTS ${dir}/spool_bad/rejected/job_evil.json)
  message(FATAL_ERROR "rejected job file was not quarantined")
endif()

file(REMOVE_RECURSE ${dir})
message(STATUS "serve smoke: kill/restart byte-identical to the uninterrupted daemon for 3 tenants, exit codes 10/11/12 verified")
