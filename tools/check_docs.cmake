# Docs-vs-code consistency check, run as a ctest entry (docs_references).
#
# Fails when README.md / docs/BENCHMARKS.md / EXPERIMENTS.md reference a
# bench binary that no longer has a source file, or when BENCHMARKS.md
# documents a command-line flag or SLM_* knob that no source mentions —
# so renaming a bench or dropping a flag without updating the docs
# breaks the build, not the reader.
#
# Usage: cmake -DREPO=<source root> -P check_docs.cmake

file(READ ${REPO}/README.md readme)
file(READ ${REPO}/docs/BENCHMARKS.md benchdoc)
file(READ ${REPO}/EXPERIMENTS.md experiments)
set(docs "${readme}\n${benchdoc}\n${experiments}")

set(errors "")

# 1. Every `bench_*` name in the docs must exist as a source file under
#    bench/ or be wired up in bench/CMakeLists.txt (ctest-only entries
#    like bench_smoke have no dedicated source).
file(READ ${REPO}/bench/CMakeLists.txt benchcmake)
string(REGEX MATCHALL "bench_[a-z0-9_]+" doc_benches "${docs}")
list(REMOVE_DUPLICATES doc_benches)
foreach(b ${doc_benches})
  if(NOT EXISTS ${REPO}/bench/${b}.cpp AND NOT EXISTS ${REPO}/bench/${b}.hpp)
    string(FIND "${benchcmake}" "${b}" pos)
    if(pos EQUAL -1)
      string(APPEND errors "docs reference '${b}' but bench/${b}.cpp does not exist\n")
    endif()
  endif()
endforeach()

# 2. Every --flag documented in BENCHMARKS.md must appear literally in
#    the CLI, the bench scaffolding, or an example.
set(flag_sources "")
foreach(src tools/slm_cli.cpp bench/bench_util.hpp
        examples/full_key_recovery.cpp)
  file(READ ${REPO}/${src} one)
  string(APPEND flag_sources "${one}\n")
endforeach()
string(REGEX MATCHALL "--[a-z][a-z0-9-]+" doc_flags "${benchdoc}")
list(REMOVE_DUPLICATES doc_flags)
foreach(f ${doc_flags})
  string(FIND "${flag_sources}" "${f}" pos)
  if(pos EQUAL -1)
    string(APPEND errors "BENCHMARKS.md documents flag '${f}' but no source mentions it\n")
  endif()
endforeach()

# 3. Every SLM_* knob documented in README or BENCHMARKS.md must appear
#    in the bench scaffolding or the build system.
file(READ ${REPO}/CMakeLists.txt rootcmake)
string(APPEND flag_sources "${rootcmake}\n")
string(REGEX MATCHALL "SLM_[A-Z_]+" doc_knobs "${readme}\n${benchdoc}")
list(REMOVE_DUPLICATES doc_knobs)
foreach(k ${doc_knobs})
  string(FIND "${flag_sources}" "${k}" pos)
  if(pos EQUAL -1)
    string(APPEND errors "docs document knob '${k}' but neither the benches nor CMake mention it\n")
  endif()
endforeach()

if(NOT errors STREQUAL "")
  message(FATAL_ERROR "stale documentation references:\n${errors}")
endif()
message(STATUS "docs check: every referenced bench binary, flag, and knob exists")
