# Docs-vs-code consistency check, run as a ctest entry (docs_references).
#
# Fails when README.md / docs/BENCHMARKS.md / docs/OBSERVABILITY.md /
# docs/ARCHITECTURE.md / docs/FULLKEY.md / EXPERIMENTS.md reference a
# bench binary that no longer has a source file, when a documented
# command-line flag or SLM_* knob is gone from the sources, or when
# OBSERVABILITY.md catalogs an `slm.` metric name that no source emits —
# so renaming a bench, dropping a flag, or renaming a metric without
# updating the docs breaks the build, not the reader.
#
# Usage: cmake -DREPO=<source root> -P check_docs.cmake

file(READ ${REPO}/README.md readme)
file(READ ${REPO}/docs/BENCHMARKS.md benchdoc)
file(READ ${REPO}/docs/OBSERVABILITY.md obsdoc)
file(READ ${REPO}/docs/ARCHITECTURE.md archdoc)
file(READ ${REPO}/docs/FULLKEY.md fullkeydoc)
file(READ ${REPO}/docs/DISTRIBUTED.md distdoc)
file(READ ${REPO}/docs/SERVE.md servedoc)
file(READ ${REPO}/docs/STORE.md storedoc)
file(READ ${REPO}/docs/CLI.md clidoc)
file(READ ${REPO}/EXPERIMENTS.md experiments)
set(docs "${readme}\n${benchdoc}\n${obsdoc}\n${archdoc}\n${fullkeydoc}\n${distdoc}\n${servedoc}\n${storedoc}\n${clidoc}\n${experiments}")

set(errors "")

# 1. Every `bench_*` name in the docs must exist as a source file under
#    bench/ or be wired up in bench/CMakeLists.txt (ctest-only entries
#    like bench_smoke have no dedicated source).
file(READ ${REPO}/bench/CMakeLists.txt benchcmake)
string(REGEX MATCHALL "bench_[a-z0-9_]+" doc_benches "${docs}")
list(REMOVE_DUPLICATES doc_benches)
foreach(b ${doc_benches})
  if(NOT EXISTS ${REPO}/bench/${b}.cpp AND NOT EXISTS ${REPO}/bench/${b}.hpp)
    string(FIND "${benchcmake}" "${b}" pos)
    if(pos EQUAL -1)
      string(APPEND errors "docs reference '${b}' but bench/${b}.cpp does not exist\n")
    endif()
  endif()
endforeach()

# 2. Every --flag documented in BENCHMARKS.md, OBSERVABILITY.md, or
#    FULLKEY.md must appear literally in the CLI, the bench scaffolding,
#    or an example.
set(flag_sources "")
foreach(src tools/slm_cli.cpp bench/bench_util.hpp
        examples/full_key_recovery.cpp)
  file(READ ${REPO}/${src} one)
  string(APPEND flag_sources "${one}\n")
endforeach()
string(REGEX MATCHALL "--[a-z][a-z0-9-]+" doc_flags
       "${benchdoc}\n${obsdoc}\n${fullkeydoc}\n${distdoc}\n${servedoc}\n${storedoc}\n${clidoc}")
list(REMOVE_DUPLICATES doc_flags)
foreach(f ${doc_flags})
  string(FIND "${flag_sources}" "${f}" pos)
  if(pos EQUAL -1)
    string(APPEND errors "docs document flag '${f}' but no source mentions it\n")
  endif()
endforeach()

# 3. Every SLM_* knob documented in README, BENCHMARKS, OBSERVABILITY,
#    or ARCHITECTURE must appear in the sources or the build system.
file(READ ${REPO}/CMakeLists.txt rootcmake)
file(READ ${REPO}/src/obs/observer.cpp obssrc)
file(READ ${REPO}/src/core/campaign.cpp campaignsrc)
file(READ ${REPO}/tests/regression/golden_trace_test.cpp goldensrc)
string(APPEND flag_sources "${rootcmake}\n${obssrc}\n${campaignsrc}\n${goldensrc}\n")
string(REGEX MATCHALL "SLM_[A-Z_]+" doc_knobs
       "${readme}\n${benchdoc}\n${obsdoc}\n${archdoc}\n${fullkeydoc}\n${distdoc}\n${servedoc}\n${storedoc}\n${clidoc}")
list(REMOVE_DUPLICATES doc_knobs)
foreach(k ${doc_knobs})
  string(FIND "${flag_sources}" "${k}" pos)
  if(pos EQUAL -1)
    string(APPEND errors "docs document knob '${k}' but neither the sources nor CMake mention it\n")
  endif()
endforeach()

# 4. Every `slm.` metric name cataloged in OBSERVABILITY.md must be
#    emitted somewhere under src/ (campaigns, observer, checkpointing).
#    Prefix names ending in '.' (e.g. the slm.span.<name>_seconds
#    family) are checked as prefixes, which the literal FIND already is.
set(metric_sources "")
file(GLOB_RECURSE metric_files ${REPO}/src/obs/*.cpp ${REPO}/src/obs/*.hpp
     ${REPO}/src/core/*.cpp ${REPO}/src/serve/*.cpp ${REPO}/src/store/*.cpp)
foreach(src ${metric_files})
  file(READ ${src} one)
  string(APPEND metric_sources "${one}\n")
endforeach()
string(REGEX MATCHALL "slm\\.[a-z0-9_]+\\.[a-z0-9_.]*[a-z0-9_]" doc_metrics
       "${obsdoc}\n${distdoc}\n${servedoc}\n${storedoc}")
list(REMOVE_DUPLICATES doc_metrics)
foreach(m ${doc_metrics})
  # Family entries are documented as slm.span.<name>_seconds; match on
  # the emitting prefix instead of the placeholder.
  string(REGEX REPLACE "<[a-z]+>.*$" "" m_literal "${m}")
  string(FIND "${metric_sources}" "${m_literal}" pos)
  if(pos EQUAL -1)
    string(APPEND errors "OBSERVABILITY.md catalogs metric '${m}' but src/ never emits it\n")
  endif()
endforeach()

# 5. The checkpoint format version documented in OBSERVABILITY.md and
#    FULLKEY.md must match kCheckpointVersion in src/core/checkpoint.hpp
#    — bumping the binary format without re-documenting it (or vice
#    versa) fails here.
file(READ ${REPO}/src/core/checkpoint.hpp ckpthdr)
string(REGEX MATCH "kCheckpointVersion = ([0-9]+)" _ "${ckpthdr}")
set(ckpt_version "${CMAKE_MATCH_1}")
if(ckpt_version STREQUAL "")
  string(APPEND errors "cannot find kCheckpointVersion in src/core/checkpoint.hpp\n")
endif()
string(REGEX MATCHALL "format version [0-9]+" doc_versions
       "${obsdoc}\n${fullkeydoc}")
list(REMOVE_DUPLICATES doc_versions)
if(doc_versions STREQUAL "")
  string(APPEND errors "OBSERVABILITY.md no longer documents the checkpoint 'format version N'\n")
endif()
foreach(v ${doc_versions})
  if(NOT v STREQUAL "format version ${ckpt_version}")
    string(APPEND errors "OBSERVABILITY.md/FULLKEY.md say checkpoint '${v}' but kCheckpointVersion is ${ckpt_version}\n")
  endif()
endforeach()

# 6. The RNG determinism contract must stay documented: the CLI exposes
#    --rng-contract and the engines read SLM_RNG_CONTRACT, so both
#    BENCHMARKS.md (tuning knob) and OBSERVABILITY.md (repro surface)
#    must mention the flag, the env knob, and the slm.pipeline metric
#    family the v2 overlap emits. Forward checks (documented-but-gone)
#    are sections 2-4; this is the reverse direction.
foreach(needed "--rng-contract" "SLM_RNG_CONTRACT")
  if(NOT benchdoc MATCHES "${needed}")
    string(APPEND errors "BENCHMARKS.md no longer documents '${needed}'\n")
  endif()
  if(NOT obsdoc MATCHES "${needed}")
    string(APPEND errors "OBSERVABILITY.md no longer documents '${needed}'\n")
  endif()
endforeach()
if(NOT obsdoc MATCHES "slm\\.pipeline\\.")
  string(APPEND errors "OBSERVABILITY.md no longer documents the slm.pipeline.* metrics\n")
endif()

# 7. The full-key pipeline story must stay documented: FULLKEY.md has
#    to cover the CLI surface (--full-key, --fullkey-mode, --early-exit)
#    and the bench (bench_fullkey + its fullkey_speedup JSON field), and
#    OBSERVABILITY.md must keep the slm.fullkey.* metric family and the
#    per-byte convergence event in its catalogs.
foreach(needed "--full-key" "--fullkey-mode" "--early-exit"
        "bench_fullkey" "fullkey_speedup")
  if(NOT fullkeydoc MATCHES "${needed}")
    string(APPEND errors "FULLKEY.md no longer documents '${needed}'\n")
  endif()
endforeach()
if(NOT obsdoc MATCHES "slm\\.fullkey\\.")
  string(APPEND errors "OBSERVABILITY.md no longer documents the slm.fullkey.* metrics\n")
endif()
if(NOT obsdoc MATCHES "fullkey_byte_converged")
  string(APPEND errors "OBSERVABILITY.md no longer documents the fullkey_byte_converged event\n")
endif()
if(NOT benchdoc MATCHES "bench_fullkey")
  string(APPEND errors "BENCHMARKS.md no longer documents bench_fullkey\n")
endif()

# 8. The distributed-fabric story must stay documented: DISTRIBUTED.md
#    has to cover the shard-worker CLI surface (--shard / --range /
#    --snapshot-out / --snapshot-every / --dry-run), the SLMSNAP1 wire
#    format, the bench (bench_fabric + its fabric_speedup JSON field),
#    and the slm.fabric.* metric family; OBSERVABILITY.md must keep
#    that family and the reissue event in its catalogs; and every
#    fabric surface the docs lean on must still exist in the CLI.
foreach(needed "--shard" "--range" "--snapshot-out" "--snapshot-every"
        "--dry-run" "SLMSNAP1" "bench_fabric" "fabric_speedup"
        "slm merge" "slm coordinate")
  if(NOT distdoc MATCHES "${needed}")
    string(APPEND errors "DISTRIBUTED.md no longer documents '${needed}'\n")
  endif()
endforeach()
if(NOT distdoc MATCHES "slm\\.fabric\\.")
  string(APPEND errors "DISTRIBUTED.md no longer mentions the slm.fabric.* metrics\n")
endif()
if(NOT obsdoc MATCHES "slm\\.fabric\\.")
  string(APPEND errors "OBSERVABILITY.md no longer documents the slm.fabric.* metrics\n")
endif()
if(NOT obsdoc MATCHES "fabric_reissue")
  string(APPEND errors "OBSERVABILITY.md no longer documents the fabric_reissue event\n")
endif()
file(READ ${REPO}/tools/slm_cli.cpp clisrc)
foreach(surface "--shard" "--snapshot-out" "--dry-run" "SLMSNAP1")
  string(FIND "${clisrc}\n${metric_sources}" "${surface}" pos)
  if(pos EQUAL -1)
    string(APPEND errors "fabric surface '${surface}' documented in DISTRIBUTED.md is gone from the sources\n")
  endif()
endforeach()

# 9. The campaign-as-a-service story must stay documented, and CLI.md
#    must stay the ONE exit-code authority. SERVE.md has to cover the
#    daemon surface (the three verbs, the spool/results protocol, the
#    scheduling and preemption flags, the SLMCKPT1 resume mechanism,
#    and the slm.serve.* metric family); OBSERVABILITY.md must keep
#    that family and the preemption event in its catalogs; CLI.md must
#    enumerate every verb and every exit code; and no other doc may
#    carry its own copy of the exit-code table — that is exactly the
#    duplication CLI.md exists to end.
foreach(needed "slm submit" "slm serve" "slm status" "--spool" "--results"
        "--tenant" "--priority" "--queue-cap" "--max-queue" "--timeslice"
        "--max-slices" "--poll-ms" "--idle-polls" "--fabric-shards"
        "SLMCKPT1" "serve_smoke" "serve.jsonl" "result.json")
  if(NOT servedoc MATCHES "${needed}")
    string(APPEND errors "SERVE.md no longer documents '${needed}'\n")
  endif()
endforeach()
if(NOT servedoc MATCHES "slm\\.serve\\.")
  string(APPEND errors "SERVE.md no longer documents the slm.serve.* metrics\n")
endif()
if(NOT obsdoc MATCHES "slm\\.serve\\.")
  string(APPEND errors "OBSERVABILITY.md no longer documents the slm.serve.* metrics\n")
endif()
if(NOT obsdoc MATCHES "job_preempted")
  string(APPEND errors "OBSERVABILITY.md no longer documents the job_preempted event\n")
endif()
foreach(verb gen check sta atpg attack capture analyze tvla merge coordinate
        submit serve status)
  if(NOT clidoc MATCHES "slm ${verb}")
    string(APPEND errors "CLI.md no longer documents the '${verb}' verb\n")
  endif()
endforeach()
foreach(code 0 1 2 3 4 5 6 7 8 9 10 11 12 13 14 64)
  if(NOT clidoc MATCHES "\\| ${code} \\|")
    string(APPEND errors "CLI.md exit-code table is missing code ${code}\n")
  endif()
endforeach()
set(dup_names "README.md" "docs/BENCHMARKS.md" "docs/OBSERVABILITY.md"
    "docs/ARCHITECTURE.md" "docs/FULLKEY.md" "docs/DISTRIBUTED.md"
    "docs/SERVE.md" "docs/STORE.md" "EXPERIMENTS.md")
set(dup_vars readme benchdoc obsdoc archdoc fullkeydoc distdoc servedoc
    storedoc experiments)
foreach(i RANGE 8)
  list(GET dup_names ${i} doc_name)
  list(GET dup_vars ${i} doc_var)
  if("${${doc_var}}" MATCHES "\\| *rc *\\| *meaning *\\|")
    string(APPEND errors "${doc_name} duplicates the exit-code table — docs/CLI.md is the single authority\n")
  endif()
endforeach()

# 10. The capture-once/replay-many story must stay documented: STORE.md
#     has to cover the replay surface (--store-out / --from-store, the
#     capture and tvla verbs, the SLMTRC1 wire format, the bench and its
#     replay_speedup JSON field, and the store_smoke drill);
#     OBSERVABILITY.md must keep the slm.store.* metric family and both
#     store events in its catalogs; and every store surface the docs
#     lean on must still exist in the sources.
foreach(needed "--store-out" "--from-store" "slm capture" "slm tvla"
        "SLMTRC1" "bench_store" "replay_speedup" "store_smoke"
        "exit code 13" "exit code 14")
  if(NOT storedoc MATCHES "${needed}")
    string(APPEND errors "STORE.md no longer documents '${needed}'\n")
  endif()
endforeach()
if(NOT storedoc MATCHES "slm\\.store\\.")
  string(APPEND errors "STORE.md no longer mentions the slm.store.* metrics\n")
endif()
foreach(metric "slm.store.traces_written" "slm.store.bytes_written"
        "slm.store.write_seconds" "slm.store.traces_replayed"
        "slm.store.replay_seconds")
  if(NOT obsdoc MATCHES "${metric}")
    string(APPEND errors "OBSERVABILITY.md no longer documents the ${metric} metric\n")
  endif()
endforeach()
foreach(ev store_write store_replay)
  if(NOT obsdoc MATCHES "${ev}")
    string(APPEND errors "OBSERVABILITY.md no longer documents the ${ev} event\n")
  endif()
endforeach()
foreach(surface "--store-out" "--from-store" "SLMTRC1")
  string(FIND "${clisrc}\n${metric_sources}" "${surface}" pos)
  if(pos EQUAL -1)
    string(APPEND errors "store surface '${surface}' documented in STORE.md is gone from the sources\n")
  endif()
endforeach()

# 11. The integer-exact fold engine and the fused one-pass replay must
#     stay documented: STORE.md has to cover the fused surface (the
#     analyze verb, --fused-tvla, replay_all, the analyze job kind, the
#     fused_replay_speedup JSON field, and the fold_ubsan drill);
#     BENCHMARKS.md has to keep the dispatch-level story (SLM_SIMD
#     spellings, the BM_ClassFold* fold table, fold_dispatch_test) and
#     the undefined sanitizer mode; CLI.md must list the analyze job
#     kind and the submit --store flag; and every fused surface the
#     docs lean on must still exist in the sources.
foreach(needed "slm analyze" "--fused-tvla" "replay_all"
        "fused_replay_speedup" "fold_ubsan" "\"kind\": \"analyze\"")
  if(NOT storedoc MATCHES "${needed}")
    string(APPEND errors "STORE.md no longer documents '${needed}'\n")
  endif()
endforeach()
foreach(needed "SLM_SIMD" "scalar" "sse2" "avx2" "BM_ClassFold"
        "fold_dispatch_test" "fused_replay_speedup" "undefined")
  if(NOT benchdoc MATCHES "${needed}")
    string(APPEND errors "BENCHMARKS.md no longer documents '${needed}'\n")
  endif()
endforeach()
foreach(needed "slm analyze" "--fused-tvla" "analyze" "--store ")
  if(NOT clidoc MATCHES "${needed}")
    string(APPEND errors "CLI.md no longer documents '${needed}'\n")
  endif()
endforeach()
foreach(surface "--fused-tvla" "replay_all" "cmd_analyze")
  string(FIND "${clisrc}\n${metric_sources}" "${surface}" pos)
  if(pos EQUAL -1)
    string(APPEND errors "fused-replay surface '${surface}' documented in STORE.md is gone from the sources\n")
  endif()
endforeach()
if(NOT EXISTS ${REPO}/tests/sca/fold_dispatch_test.cpp)
  string(APPEND errors "BENCHMARKS.md points at fold_dispatch_test but tests/sca/fold_dispatch_test.cpp is gone\n")
endif()
if(NOT EXISTS ${REPO}/tools/fold_ubsan.cmake)
  string(APPEND errors "STORE.md points at the fold_ubsan drill but tools/fold_ubsan.cmake is gone\n")
endif()
if(NOT EXISTS ${REPO}/tools/bench_report.cmake)
  string(APPEND errors "the bench_smoke_report ctest entry needs tools/bench_report.cmake, which is gone\n")
endif()

if(NOT errors STREQUAL "")
  message(FATAL_ERROR "stale documentation references:\n${errors}")
endif()
message(STATUS "docs check: every referenced bench binary, flag, knob, and metric exists")
