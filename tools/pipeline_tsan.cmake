# ThreadSanitizer drill for the contract-v2 parallel capture paths, run
# as a ctest entry (pipeline_tsan). Configures a scratch build of the
# CLI with -fsanitize=thread and drives two short v2 campaigns through
# it: the serial engine's pipelined generate/compute overlap (--threads
# 1, benign-HW compiled kernels, where a producer thread fills the next
# generation slab while the consumer computes the current one) and the
# sharded engine's lane-parallel generation (--threads 4). Both runs
# halt at a checkpoint (rc 5) so the drill is deterministic and also
# covers snapshot writing under the sanitizer. Any data race aborts the
# process (halt_on_error=1, exitcode=66) and fails the test. Skips
# gracefully when the toolchain cannot link TSan.
#
# Usage: cmake -DREPO=<source root> -DWORKDIR=<scratch dir>
#        -DCXX=<C++ compiler> -P pipeline_tsan.cmake

set(scratch ${WORKDIR}/pipeline_tsan)
file(MAKE_DIRECTORY ${scratch})

# Probe: can the toolchain compile and link a TSan binary at all?
file(WRITE ${scratch}/probe.cpp "int main() { return 0; }\n")
execute_process(COMMAND ${CXX} -fsanitize=thread ${scratch}/probe.cpp
                        -o ${scratch}/probe
                RESULT_VARIABLE probe_rc OUTPUT_QUIET ERROR_QUIET)
if(NOT probe_rc EQUAL 0)
  message(STATUS "pipeline tsan: toolchain cannot link -fsanitize=thread, skipping")
  return()
endif()

# Scratch configure + build of just the CLI target (pulls in slm_core
# and slm_atpg; test and bench binaries are not built).
execute_process(COMMAND ${CMAKE_COMMAND} -S ${REPO} -B ${scratch}/build
                        -DCMAKE_BUILD_TYPE=RelWithDebInfo
                        "-DCMAKE_CXX_FLAGS=-fsanitize=thread -O1 -g"
                        -DCMAKE_EXE_LINKER_FLAGS=-fsanitize=thread
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "tsan configure failed:\n${out}\n${err}")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} --build ${scratch}/build
                        --target slm --parallel 4
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "tsan build failed:\n${out}\n${err}")
endif()

set(slm ${scratch}/build/tools/slm)
set(ENV{TSAN_OPTIONS} "halt_on_error=1 exitcode=66")
# The generate/compute overlap normally gates on hardware_concurrency;
# force it on so the producer/consumer handoff is exercised even on a
# single-core CI box (bit-identical either way, and TSan cares about
# the interleaving, not the throughput).
set(ENV{SLM_PIPELINE} "1")

function(run_tsan label)
  set(ckpt ${scratch}/ckpt_${label})
  file(REMOVE_RECURSE ${ckpt})
  execute_process(COMMAND ${slm} attack --circuit alu --mode hw
                          --rng-contract v2 --key-byte 3 --traces 4000
                          --halt-after 1000 --checkpoint-dir ${ckpt}
                          ${ARGN}
                  WORKING_DIRECTORY ${scratch}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 5)
    message(FATAL_ERROR
            "tsan ${label} run -> rc=${rc} (expected halt rc 5; rc 66 "
            "means ThreadSanitizer reported a data race)\n${out}\n${err}")
  endif()
  file(REMOVE_RECURSE ${ckpt})
endfunction()

# Serial engine, pipelined generate/compute overlap (producer thread +
# consumer thread share the slab ring).
run_tsan(pipelined --threads 1 --block 64)
# Sharded engine, contiguous-chunk lane-parallel generation.
run_tsan(sharded --threads 4 --block 64)

message(STATUS "pipeline tsan: pipelined and sharded v2 capture paths are race-clean")
