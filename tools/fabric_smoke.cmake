# Distributed-fabric fault-injection drill, run as a ctest entry
# (fabric_smoke): the docs/DISTRIBUTED.md walkthrough, mechanized.
#
# Single-byte and --full-key campaigns are captured three ways — one
# full-range worker (the serial reference), an uninterrupted 4-shard
# coordinate run, and a 4-shard run with one worker killed mid-range —
# and all three merged snapshots must be byte-identical files, with
# byte-identical `slm merge --report` key rankings. The negative half
# proves every snapshot failure class lands on its documented exit
# code: 7 (format), 8 (campaign mismatch), 9 (range violation).
#
# Usage: cmake -DSLM=<slm binary> -DWORKDIR=<scratch dir> -P fabric_smoke.cmake

set(dir ${WORKDIR}/fabric_smoke)
file(REMOVE_RECURSE ${dir})
file(MAKE_DIRECTORY ${dir})

set(common --circuit alu --mode tdc --traces 6000 --key-byte 3
    --rng-contract v2)

function(run_slm out_var expect_rc)
  execute_process(COMMAND ${SLM} ${ARGN}
                  WORKING_DIRECTORY ${WORKDIR}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expect_rc})
    message(FATAL_ERROR "slm ${ARGN} -> rc=${rc} (expected ${expect_rc})\n${out}\n${err}")
  endif()
  set(${out_var} "${out}${err}" PARENT_SCOPE)
endfunction()

function(require_identical a b what)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${a} ${b}
                  RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR "${what}: ${a} and ${b} are not byte-identical")
  endif()
endfunction()

# --- 1. --dry-run pre-validation: every shard of one campaign must
#        resolve the identical config fingerprint (pure-JSON manifest).
run_slm(dry0 0 attack ${common} --shard 0/4 --dry-run)
run_slm(dry3 0 attack ${common} --shard 3/4 --dry-run)
if(NOT dry0 MATCHES "^{.*\"fingerprint\":([0-9]+).*}")
  message(FATAL_ERROR "--dry-run did not print a JSON manifest:\n${dry0}")
endif()
set(fp0 ${CMAKE_MATCH_1})
string(REGEX MATCH "\"fingerprint\":([0-9]+)" _ "${dry3}")
if(NOT fp0 STREQUAL ${CMAKE_MATCH_1})
  message(FATAL_ERROR "shard manifests disagree on the config fingerprint:\n${dry0}\n${dry3}")
endif()
# A different campaign must fingerprint differently (what merge rc 8 keys on).
run_slm(dry_other 0 attack ${common} --shard 0/4 --dry-run --key-byte 5)
string(REGEX MATCH "\"fingerprint\":([0-9]+)" _ "${dry_other}")
if(fp0 STREQUAL ${CMAKE_MATCH_1})
  message(FATAL_ERROR "different campaigns produced the same fingerprint")
endif()

# --- 2. Serial reference: one worker over the whole range, plus the
#        serial engine's own recovery line for cross-checking.
run_slm(ref_out 0 attack ${common})
string(REGEX MATCH "recovered 0x[0-9a-f]+" ref_recovered "${ref_out}")
run_slm(whole_out 0 attack ${common} --snapshot-out ${dir}/all.snap)
run_slm(report_all 0 merge ${dir}/all.snap --report)
if(NOT report_all MATCHES "${ref_recovered}")
  message(FATAL_ERROR "merge --report disagrees with the serial engine:\n"
                      "  engine: ${ref_recovered}\n  report:\n${report_all}")
endif()

# --- 3. Uninterrupted 4-shard coordinate run == serial reference.
run_slm(coord_out 0 coordinate ${common} --shards 4
        --work-dir ${dir}/coord --trace-out ${dir}/coord.jsonl)
require_identical(${dir}/coord/merged.snap ${dir}/all.snap
                  "uninterrupted 4-shard merge")

# --- 4. Kill-and-reissue: shard 1 dies 500 traces into its range; the
#        coordinator must salvage the prefix, reissue exactly the
#        missing range, and still merge to the byte-identical snapshot.
run_slm(kill_out 0 coordinate ${common} --shards 4
        --snapshot-every 400 --kill-shard 1 --kill-after 500
        --work-dir ${dir}/kill --trace-out ${dir}/kill.jsonl)
require_identical(${dir}/kill/merged.snap ${dir}/all.snap
                  "kill-and-reissue merge")
file(READ ${dir}/kill.jsonl kill_events)
if(NOT kill_events MATCHES "\"ev\":\"fabric_reissue\"")
  message(FATAL_ERROR "kill run emitted no fabric_reissue event")
endif()
if(NOT kill_events MATCHES "\"ev\":\"fabric_worker_exit\",[^\n]*\"rc\":5")
  message(FATAL_ERROR "killed worker's rc 5 exit was not recorded")
endif()
if(NOT kill_out MATCHES "1 range\\(s\\) reissued")
  message(FATAL_ERROR "coordinator did not report the reissue:\n${kill_out}")
endif()
# The salvaged worker stream shows the fabric events end-to-end.
file(READ ${dir}/kill/shard_r0_1.jsonl shard_events)
foreach(ev fabric_worker_start fabric_snapshot halt)
  if(NOT shard_events MATCHES "\"ev\":\"${ev}\"")
    message(FATAL_ERROR "killed worker stream is missing the ${ev} event")
  endif()
endforeach()

# --- 5. Final key ranking: byte-identical report across all three runs.
run_slm(report_coord 0 merge ${dir}/coord/merged.snap --report)
run_slm(report_kill 0 merge ${dir}/kill/merged.snap --report)
if(NOT report_all STREQUAL report_coord)
  message(FATAL_ERROR "uninterrupted shard report diverged:\n${report_all}\n---\n${report_coord}")
endif()
if(NOT report_all STREQUAL report_kill)
  message(FATAL_ERROR "kill-and-reissue report diverged:\n${report_all}\n---\n${report_kill}")
endif()

# --- 6. Negative paths land on their documented exit codes.
# rc 7: missing file, and a file that is not an SLMSNAP1 snapshot.
run_slm(miss_out 7 merge ${dir}/absent.snap)
file(WRITE ${dir}/garbage.snap "not a snapshot at all........")
run_slm(garbage_out 7 merge ${dir}/garbage.snap)
if(NOT garbage_out MATCHES "bad magic")
  message(FATAL_ERROR "garbage file not rejected as bad magic:\n${garbage_out}")
endif()
# rc 8: a shard of a DIFFERENT campaign (other trace budget) refuses to
# merge with ours — the fingerprint mismatch path.
run_slm(alien_out 0 attack --circuit alu --mode tdc --traces 5000
        --key-byte 3 --rng-contract v2 --range 0:1000
        --snapshot-out ${dir}/alien.snap)
run_slm(mismatch_out 8 merge ${dir}/all.snap ${dir}/alien.snap)
if(NOT mismatch_out MATCHES "different trace budget")
  message(FATAL_ERROR "mismatch error does not name the field:\n${mismatch_out}")
endif()
# rc 9: the same snapshot twice is an overlap (a silent double-count
# otherwise), and --report on gapped coverage must refuse.
run_slm(overlap_out 9 merge ${dir}/all.snap ${dir}/all.snap)
if(NOT overlap_out MATCHES "double-count")
  message(FATAL_ERROR "overlap error does not explain the risk:\n${overlap_out}")
endif()
run_slm(shard0_out 0 attack ${common} --shard 0/4
        --snapshot-out ${dir}/s0.snap)
run_slm(gap_out 9 merge ${dir}/s0.snap --report)
if(NOT gap_out MATCHES "coverage incomplete")
  message(FATAL_ERROR "gapped --report did not refuse:\n${gap_out}")
endif()

# --- 7. The same battery on the fused --full-key engine (3000 traces):
#        serial reference worker vs kill-and-reissue coordinate run.
set(fk --circuit alu --mode tdc --traces 3000 --rng-contract v2 --full-key)
run_slm(fk_whole 0 attack ${fk} --snapshot-out ${dir}/fk_all.snap)
run_slm(fk_kill 0 coordinate ${fk} --shards 4
        --kill-shard 2 --kill-after 300
        --work-dir ${dir}/fk_kill --trace-out ${dir}/fk_kill.jsonl)
require_identical(${dir}/fk_kill/merged.snap ${dir}/fk_all.snap
                  "full-key kill-and-reissue merge")
run_slm(fk_report_all 0 merge ${dir}/fk_all.snap --report)
run_slm(fk_report_kill 0 merge ${dir}/fk_kill/merged.snap --report)
if(NOT fk_report_all STREQUAL fk_report_kill)
  message(FATAL_ERROR "full-key kill report diverged:\n${fk_report_all}\n---\n${fk_report_kill}")
endif()
if(NOT fk_report_all MATCHES "master key:")
  message(FATAL_ERROR "full-key report has no master-key line:\n${fk_report_all}")
endif()
# Full-key and single-byte snapshots must never merge (rc 8).
run_slm(fk_mix 8 merge ${dir}/fk_all.snap ${dir}/s0.snap)

file(REMOVE_RECURSE ${dir})
message(STATUS "fabric smoke: 4-shard kill-and-reissue byte-identical to the serial engine (single-byte and full-key), exit codes 7/8/9 verified")
