# End-to-end kill/resume drill for the fused full-key engine, run as a
# ctest entry (fullkey_resume_smoke): the docs/FULLKEY.md walkthrough,
# mechanized. A fused full-key attack is run uninterrupted, then re-run
# with snapshots and a deterministic kill (--halt-after -> rc 5), then
# resumed; the resumed run must print the exact same per-byte table and
# master-key line, and the JSONL event stream must close with a run_end
# manifest. A cross-contract resume and a single-byte resume of the
# full-key snapshot must both be refused.
#
# Usage: cmake -DSLM=<slm binary> -DWORKDIR=<scratch dir> -P fullkey_resume_smoke.cmake

set(common attack --circuit alu --mode tdc --traces 4000 --full-key
    --threads 2 --rng-contract v2)
set(ckpt_dir ${WORKDIR}/fullkey_resume_smoke_ckpt)
set(events ${WORKDIR}/fullkey_resume_smoke_events.jsonl)
file(REMOVE_RECURSE ${ckpt_dir})
file(REMOVE ${events})

function(run_slm out_var expect_rc)
  execute_process(COMMAND ${SLM} ${ARGN}
                  WORKING_DIRECTORY ${WORKDIR}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expect_rc})
    message(FATAL_ERROR "slm ${ARGN} -> rc=${rc} (expected ${expect_rc})\n${out}\n${err}")
  endif()
  set(${out_var} "${out}${err}" PARENT_SCOPE)
endfunction()

# 1. Uninterrupted reference run (4000 TDC traces recover the full key
#    from one shared capture pass).
run_slm(ref_out 0 ${common})
string(REGEX MATCH "master key: +true [0-9a-f]+ recovered [0-9a-f]+[^\n]*" ref_line "${ref_out}")
if(ref_line STREQUAL "")
  message(FATAL_ERROR "reference run printed no master-key line:\n${ref_out}")
endif()
if(NOT ref_line MATCHES "RECOVERED")
  message(FATAL_ERROR "reference run did not recover the key:\n${ref_out}")
endif()

# 2. Same campaign, snapshotting, killed after the first checkpoint past
#    1000 traces (rc 5, snapshot on disk). --block 48 does not divide
#    the halt point or the budget; the final comparison against the
#    default-block reference run also proves block-size invariance on
#    the full-key snapshot format.
run_slm(halt_out 5 ${common} --block 48
        --checkpoint-dir ${ckpt_dir} --halt-after 1000 --trace-out ${events})
if(NOT halt_out MATCHES "campaign halted after")
  message(FATAL_ERROR "halted run did not announce the snapshot:\n${halt_out}")
endif()
if(NOT EXISTS ${ckpt_dir}/campaign.ckpt)
  message(FATAL_ERROR "halt left no snapshot at ${ckpt_dir}/campaign.ckpt")
endif()

# 3. Cross-contract resume must be refused with the documented rc 6.
run_slm(mismatch_out 6 attack --circuit alu --mode tdc --traces 4000
        --full-key --threads 2 --rng-contract v1 --block 48
        --resume ${ckpt_dir})
if(NOT mismatch_out MATCHES "RNG contract")
  message(FATAL_ERROR "cross-contract resume did not explain the refusal:\n${mismatch_out}")
endif()

# 4. A single-byte resume of a full-key snapshot must be refused too
#    (generic error, rc 1): the snapshot stamps its full-key flag.
run_slm(single_out 1 attack --circuit alu --mode tdc --traces 4000
        --key-byte 3 --threads 2 --rng-contract v2 --resume ${ckpt_dir})
if(NOT single_out MATCHES "full-key")
  message(FATAL_ERROR "single-byte resume of a full-key snapshot was not refused:\n${single_out}")
endif()

# 5. Resume and run to completion (still under the odd block size).
run_slm(res_out 0 ${common} --block 48 --resume ${ckpt_dir} --trace-out ${events})
if(NOT res_out MATCHES "resumed from trace")
  message(FATAL_ERROR "resumed run did not restore the snapshot:\n${res_out}")
endif()
string(REGEX MATCH "master key: +true [0-9a-f]+ recovered [0-9a-f]+[^\n]*" res_line "${res_out}")

# 6. Verify: identical master-key line and a closed event stream with
#    the full-key checkpoint/convergence events.
if(NOT ref_line STREQUAL res_line)
  message(FATAL_ERROR "resume diverged from the uninterrupted run:\n"
                      "  reference: ${ref_line}\n  resumed:   ${res_line}")
endif()
file(READ ${events} event_stream)
if(NOT event_stream MATCHES "\"ev\":\"halt\"")
  message(FATAL_ERROR "event stream is missing the halt event")
endif()
if(NOT event_stream MATCHES "\"ev\":\"resume\"")
  message(FATAL_ERROR "event stream is missing the resume event")
endif()
if(NOT event_stream MATCHES "\"ev\":\"fullkey_checkpoint\"")
  message(FATAL_ERROR "event stream is missing fullkey_checkpoint events")
endif()
if(NOT event_stream MATCHES "\"ev\":\"run_end\"")
  message(FATAL_ERROR "event stream is missing the run_end manifest")
endif()

file(REMOVE_RECURSE ${ckpt_dir})
file(REMOVE ${events})
message(STATUS "fullkey resume smoke: kill at 1000/4000 under --block 48, bit-identical full-key recovery after resume")
