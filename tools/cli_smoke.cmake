# CLI smoke test driven by ctest: gen -> check -> sta -> atpg.
function(run_cli expect_rc)
  execute_process(COMMAND ${SLM} ${ARGN}
                  WORKING_DIRECTORY ${WORKDIR}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expect_rc})
    message(FATAL_ERROR "slm ${ARGN} -> rc=${rc} (expected ${expect_rc})\n${out}\n${err}")
  endif()
endfunction()

run_cli(0 gen --circuit rca --width 32 --out smoke_rca.bench)
run_cli(0 check smoke_rca.bench)
run_cli(2 check smoke_rca.bench --strict-clock-mhz 900)
run_cli(0 sta smoke_rca.bench --clock-mhz 50)
run_cli(0 gen --circuit c6288 --width 8 --out smoke_mult.bench)
run_cli(0 atpg smoke_mult.bench --band-lo 0.8 --band-hi 2.5)
# Checkpoint/resume flag validation fails fast, before any capture:
# resuming without a snapshot and halting without a checkpoint dir are
# both configuration errors (rc 1), not silent fresh starts.
run_cli(1 attack --resume smoke-no-such-dir)
run_cli(1 attack --halt-after 100)
# Block-pipeline knobs: an odd --block through the TDC campaign (rc 0,
# key recovered as without the flag), then the env overrides SLM_SIMD=0
# (forced-scalar block kernels) + SLM_BLOCK=7 through the blockable HW
# mode — 500 traces cannot recover the byte, so the deterministic
# outcome is rc 4, proving the fallback path runs end to end.
run_cli(0 attack --circuit alu --mode tdc --traces 6000 --key-byte 3 --block 5)
set(ENV{SLM_SIMD} 0)
set(ENV{SLM_BLOCK} 7)
run_cli(4 attack --circuit alu --mode hw --traces 500 --key-byte 3)
unset(ENV{SLM_SIMD})
unset(ENV{SLM_BLOCK})
run_cli(64 bogus-command)
message(STATUS "cli smoke: all subcommands behaved")
