# ThreadSanitizer drill for the fabric coordinator, run as a ctest
# entry (fabric_tsan). Configures a scratch build of the CLI with
# -fsanitize=thread and drives one short `slm coordinate` campaign with
# a killed worker through it: the per-worker JSONL monitor threads write
# the shared FabricProgress view while the coordinator's reap loop reads
# total_covered() concurrently — exactly the locking fabric_smoke never
# stresses, because there the workers finish too fast to overlap the
# polls. Any data race aborts the process (halt_on_error=1, exitcode=66)
# and fails the test. Skips gracefully when the toolchain lacks TSan.
#
# Usage: cmake -DREPO=<source root> -DWORKDIR=<scratch dir>
#        -DCXX=<C++ compiler> -P fabric_tsan.cmake

set(scratch ${WORKDIR}/fabric_tsan)
file(MAKE_DIRECTORY ${scratch})

# Probe: can the toolchain compile and link a TSan binary at all?
file(WRITE ${scratch}/probe.cpp "int main() { return 0; }\n")
execute_process(COMMAND ${CXX} -fsanitize=thread ${scratch}/probe.cpp
                        -o ${scratch}/probe
                RESULT_VARIABLE probe_rc OUTPUT_QUIET ERROR_QUIET)
if(NOT probe_rc EQUAL 0)
  message(STATUS "fabric tsan: toolchain cannot link -fsanitize=thread, skipping")
  return()
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -S ${REPO} -B ${scratch}/build
                        -DCMAKE_BUILD_TYPE=RelWithDebInfo
                        "-DCMAKE_CXX_FLAGS=-fsanitize=thread -O1 -g"
                        -DCMAKE_EXE_LINKER_FLAGS=-fsanitize=thread
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "tsan configure failed:\n${out}\n${err}")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} --build ${scratch}/build
                        --target slm --parallel 4
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "tsan build failed:\n${out}\n${err}")
endif()

set(slm ${scratch}/build/tools/slm)
set(ENV{TSAN_OPTIONS} "halt_on_error=1 exitcode=66")

# Note the coordinator process runs under TSan; the worker subprocesses
# do too (same binary), so snapshot writing under the sanitizer rides
# along. --snapshot-every 100 makes the workers emit fabric_snapshot
# events continuously, keeping the monitor threads' progress updates
# and the reap loop's concurrent reads overlapping for the whole run.
set(workdir ${scratch}/coord)
file(REMOVE_RECURSE ${workdir})
execute_process(COMMAND ${slm} coordinate --circuit alu --mode tdc
                        --rng-contract v2 --key-byte 3 --traces 1200
                        --shards 3 --snapshot-every 100
                        --kill-shard 1 --kill-after 200
                        --work-dir ${workdir}
                        --trace-out ${workdir}.jsonl
                WORKING_DIRECTORY ${scratch}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "tsan coordinate run -> rc=${rc} (rc 66 means ThreadSanitizer "
          "reported a data race)\n${out}\n${err}")
endif()
if(NOT EXISTS ${workdir}/merged.snap)
  message(FATAL_ERROR "tsan coordinate run left no merged snapshot")
endif()

file(REMOVE_RECURSE ${workdir})
message(STATUS "fabric tsan: coordinator progress tracking is race-clean under a killed worker")
