# Capture-once/replay-many drill, run as a ctest entry (store_smoke):
# the docs/STORE.md walkthrough, mechanized. A TDC campaign is captured
# into an SLMTRC1 store (`slm capture`), then replayed (`slm attack
# --from-store`) — the replay must print the byte-identical recovery
# line. Then the refusal battery: a corrupted store and a truncated
# store must exit 13 (StoreFormatError), and replaying under a
# different campaign configuration must exit 14 (StoreMismatch).
# Finally the same round trip for `slm tvla` and `--full-key`.
#
# Usage: cmake -DSLM=<slm binary> -DWORKDIR=<scratch dir> -P store_smoke.cmake

set(common --circuit alu --mode tdc --traces 6000 --key-byte 3
    --rng-contract v2)
set(store ${WORKDIR}/store_smoke.trc)
set(bad_store ${WORKDIR}/store_smoke_bad.trc)
set(short_store ${WORKDIR}/store_smoke_short.trc)
set(tvla_store ${WORKDIR}/store_smoke_tvla.trc)
set(fk_store ${WORKDIR}/store_smoke_fk.trc)
file(REMOVE ${store} ${bad_store} ${short_store} ${tvla_store} ${fk_store})

function(run_slm out_var expect_rc)
  execute_process(COMMAND ${SLM} ${ARGN}
                  WORKING_DIRECTORY ${WORKDIR}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expect_rc})
    message(FATAL_ERROR "slm ${ARGN} -> rc=${rc} (expected ${expect_rc})\n${out}\n${err}")
  endif()
  set(${out_var} "${out}${err}" PARENT_SCOPE)
endfunction()

# 1. Capture: the campaign runs AND persists its traces (6000 TDC
#    traces disclose the byte, so the capture itself exits 0).
run_slm(cap_out 0 capture --store-out ${store} ${common})
string(REGEX MATCH "true 0x[0-9a-f]+ recovered 0x[0-9a-f]+[^\n]*" cap_line "${cap_out}")
if(cap_line STREQUAL "")
  message(FATAL_ERROR "capture printed no recovery line:\n${cap_out}")
endif()
if(NOT EXISTS ${store})
  message(FATAL_ERROR "capture left no store at ${store}")
endif()

# 2. Replay at fold speed: the recovery line (true byte, recovered
#    byte, measurements-to-disclosure) must be byte-identical to the
#    live capture's — the partition-invariance contract, end to end.
run_slm(rep_out 0 attack --from-store ${store} ${common})
string(REGEX MATCH "true 0x[0-9a-f]+ recovered 0x[0-9a-f]+[^\n]*" rep_line "${rep_out}")
if(NOT cap_line STREQUAL rep_line)
  message(FATAL_ERROR "replay diverged from the live capture:\n"
                      "  live:   ${cap_line}\n  replay: ${rep_line}")
endif()

# 3. Fingerprint mismatch: the same store replayed for a different key
#    byte resolves a different campaign (seed, window, config hash) and
#    must be refused with the documented exit code 14.
run_slm(mismatch_out 14 attack --from-store ${store} --circuit alu
        --mode tdc --key-byte 5 --rng-contract v2)
if(NOT mismatch_out MATCHES "fingerprint mismatch")
  message(FATAL_ERROR "mismatched replay did not explain the refusal:\n${mismatch_out}")
endif()

# 4. Corruption: flip two bytes deep in the readings column (dd patches
#    in place); the chunk CRC must catch it -> exit code 13.
configure_file(${store} ${bad_store} COPYONLY)
file(WRITE ${WORKDIR}/store_smoke_patch.bin "ZQ")
execute_process(COMMAND dd if=${WORKDIR}/store_smoke_patch.bin
                        of=${bad_store} bs=1 seek=5000 count=2 conv=notrunc
                RESULT_VARIABLE dd_rc OUTPUT_QUIET ERROR_QUIET)
if(NOT dd_rc EQUAL 0)
  message(FATAL_ERROR "dd corruption patch failed (rc=${dd_rc})")
endif()
run_slm(corrupt_out 13 attack --from-store ${bad_store} ${common})
if(NOT corrupt_out MATCHES "corrupt")
  message(FATAL_ERROR "corrupted replay did not name the corruption:\n${corrupt_out}")
endif()

# 5. Truncation: a store cut short mid-column is structurally unusable
#    -> exit code 13 as well.
execute_process(COMMAND dd if=${store} of=${short_store} bs=1024 count=40
                RESULT_VARIABLE dd_rc OUTPUT_QUIET ERROR_QUIET)
if(NOT dd_rc EQUAL 0)
  message(FATAL_ERROR "dd truncation failed (rc=${dd_rc})")
endif()
run_slm(short_out 13 attack --from-store ${short_store} ${common})

# 6. TVLA round trip: identical max |t| verdict line from capture and
#    replay (the t statistics are streamed in stored order, so the
#    online moments match bit for bit).
run_slm(tvla_cap_out 0 tvla --mode tdc --traces 400 --rng-contract v2
        --store-out ${tvla_store})
string(REGEX MATCH "max \\|t\\|[^\n]*" tvla_cap_line "${tvla_cap_out}")
run_slm(tvla_rep_out 0 tvla --mode tdc --rng-contract v2
        --from-store ${tvla_store})
string(REGEX MATCH "max \\|t\\|[^\n]*" tvla_rep_line "${tvla_rep_out}")
if(NOT tvla_cap_line STREQUAL tvla_rep_line)
  message(FATAL_ERROR "tvla replay diverged:\n"
                      "  live:   ${tvla_cap_line}\n  replay: ${tvla_rep_line}")
endif()

# 7. Full-key round trip: the fused capture's master-key line must
#    replay byte-identically (early-exit decisions included — the
#    replay re-evaluates the same margin/stability gates at the same
#    checkpoints).
run_slm(fk_cap_out 0 capture --store-out ${fk_store} --full-key
        --circuit alu --mode tdc --traces 2500 --rng-contract v2)
string(REGEX MATCH "master key:[^\n]*" fk_cap_line "${fk_cap_out}")
if(NOT fk_cap_line MATCHES "RECOVERED")
  message(FATAL_ERROR "full-key capture did not recover the key:\n${fk_cap_out}")
endif()
run_slm(fk_rep_out 0 attack --full-key --from-store ${fk_store}
        --circuit alu --mode tdc --rng-contract v2)
string(REGEX MATCH "master key:[^\n]*" fk_rep_line "${fk_rep_out}")
if(NOT fk_cap_line STREQUAL fk_rep_line)
  message(FATAL_ERROR "full-key replay diverged:\n"
                      "  live:   ${fk_cap_line}\n  replay: ${fk_rep_line}")
endif()

file(REMOVE ${store} ${bad_store} ${short_store} ${tvla_store} ${fk_store}
     ${WORKDIR}/store_smoke_patch.bin)
message(STATUS "store smoke: capture/replay byte-identical (attack, tvla, full-key); corrupt -> 13, mismatch -> 14")
