// slm — command-line front end to the library.
//
//   slm gen   --circuit rca|ks|c6288|wallace|barrel [--width N] [--out F]
//   slm check FILE.bench [--strict-clock-mhz F]
//   slm sta   FILE.bench [--clock-mhz F]
//   slm atpg  FILE.bench [--band LO HI]
//   slm attack [--circuit alu|c6288] [--mode tdc|tdc-bit|hw|bit|ro]
//              [--traces N] [--key-byte B] [--threads N]
//              [--full-key] [--fullkey-mode fused|farmed]
//              [--early-exit on|off] [--early-exit-margin F]
//              [--rng-contract v1|v2]
//              [--checkpoint-dir D] [--resume D] [--halt-after N]
//              [--trace-out F.jsonl]
//              [--store-out F.trc | --from-store F.trc [--fused-tvla]]
//   slm capture --store-out F.trc [--tvla] [+ attack/tvla flags]
//   slm analyze --from-store F.trc [--trace-out F.jsonl]
//   slm tvla   [--circuit C] [--mode M] [--traces N-per-population]
//              [--store-out F.trc | --from-store F.trc]
//
// Circuits are exchanged in ISCAS .bench format, so the checker/STA/ATPG
// subcommands also work on external netlists.
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "atpg/stimulus_search.hpp"
#include "bitstream/checker.hpp"
#include "common/error.hpp"
#include "core/attack.hpp"
#include "core/checkpoint.hpp"
#include "core/fabric.hpp"
#include "core/parallel.hpp"
#include "obs/observer.hpp"
#include "serve/daemon.hpp"
#include "serve/job.hpp"
#include "store/replay.hpp"
#include "store/trace_store.hpp"
#include "netlist/bench_format.hpp"
#include "netlist/generators/adder.hpp"
#include "netlist/generators/c6288.hpp"
#include "netlist/generators/fast_datapath.hpp"
#include "timing/sta.hpp"

using namespace slm;

namespace {

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;

  std::string get(const std::string& key, const std::string& dflt) const {
    const auto it = options.find(key);
    return it == options.end() ? dflt : it->second;
  }
  double get_d(const std::string& key, double dflt) const {
    const auto it = options.find(key);
    return it == options.end() ? dflt : std::stod(it->second);
  }
  std::size_t get_n(const std::string& key, std::size_t dflt) const {
    const auto it = options.find(key);
    return it == options.end() ? dflt
                               : static_cast<std::size_t>(
                                     std::stoull(it->second));
  }
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      const std::string key = a.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        args.options[key] = argv[++i];
      } else {
        args.options[key] = "1";
      }
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

netlist::Netlist load_bench(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw Error("cannot open '" + path + "'");
  return netlist::parse_bench(is, path);
}

int cmd_gen(const Args& args) {
  const std::string kind = args.get("circuit", "rca");
  const std::size_t width = args.get_n("width", 0);
  netlist::Netlist nl("x");
  if (kind == "rca") {
    netlist::AdderOptions opt;
    if (width) opt.width = width;
    nl = make_ripple_carry_adder(opt);
  } else if (kind == "ks") {
    netlist::KoggeStoneOptions opt;
    if (width) opt.width = width;
    nl = make_kogge_stone_adder(opt);
  } else if (kind == "c6288") {
    netlist::C6288Options opt;
    if (width) opt.operand_width = width;
    nl = make_c6288(opt);
  } else if (kind == "wallace") {
    netlist::WallaceOptions opt;
    if (width) opt.operand_width = width;
    nl = make_wallace_multiplier(opt);
  } else if (kind == "barrel") {
    netlist::BarrelShifterOptions opt;
    if (width) opt.width = width;
    nl = make_barrel_shifter(opt);
  } else {
    throw Error("unknown --circuit '" + kind + "'");
  }
  const std::string out = args.get("out", "");
  if (out.empty()) {
    netlist::write_bench(nl, std::cout);
  } else {
    std::ofstream os(out);
    if (!os) throw Error("cannot write '" + out + "'");
    netlist::write_bench(nl, os);
    std::cout << "wrote " << nl.logic_gate_count() << " gates to " << out
              << "\n";
  }
  return 0;
}

int cmd_check(const Args& args) {
  if (args.positional.empty()) throw Error("check: need a .bench file");
  const auto nl = load_bench(args.positional[0]);
  bitstream::CheckerOptions opt;
  const double strict_mhz = args.get_d("strict-clock-mhz", 0.0);
  if (strict_mhz > 0) opt.operating_clock_period_ns = 1000.0 / strict_mhz;
  const auto report = bitstream::BitstreamChecker(opt).check(nl);
  std::cout << report.summary() << "\n";
  return report.passed() ? 0 : 2;
}

int cmd_sta(const Args& args) {
  if (args.positional.empty()) throw Error("sta: need a .bench file");
  const auto nl = load_bench(args.positional[0]);
  timing::Sta sta(nl);
  const double clock_mhz = args.get_d("clock-mhz", 0.0);
  std::cout << "gates: " << nl.logic_gate_count()
            << ", endpoints: " << nl.outputs().size() << "\n"
            << "critical delay: " << sta.critical_delay() << " ns\n";
  if (clock_mhz > 0) {
    const double period = 1000.0 / clock_mhz;
    const auto failing = sta.failing_endpoints(period);
    std::cout << "at " << clock_mhz << " MHz (" << period
              << " ns): " << failing.size() << " failing endpoints\n";
  }
  std::cout << sta.report_critical_path();
  return 0;
}

int cmd_atpg(const Args& args) {
  if (args.positional.empty()) throw Error("atpg: need a .bench file");
  const auto nl = load_bench(args.positional[0]);
  const double lo = args.get_d("band-lo", 2.2);
  const double hi = args.get_d("band-hi", 3.6);
  atpg::StimulusSearchConfig cfg;
  cfg.random_trials = args.get_n("trials", 150);
  cfg.hill_climb_iters = args.get_n("climb", 300);
  atpg::StimulusSearch search(nl, cfg);
  const auto pair = search.find_sensor_stimulus(lo, hi);
  std::cout << "endpoints toggling in [" << lo << ", " << hi
            << "] ns: " << pair.endpoints_in_band << "\n"
            << "max settle: " << pair.max_settle_ns << " ns\n"
            << "reset   = " << pair.reset.to_string() << "\n"
            << "measure = " << pair.measure.to_string() << "\n";
  return pair.endpoints_in_band > 0 ? 0 : 3;
}

// Circuit / sensor-mode flags shared by the attack, capture and tvla
// verbs (one parse, identical vocabulary everywhere).
core::BenignCircuit parse_circuit(const Args& args) {
  const std::string s = args.get("circuit", "alu");
  return s == "c6288" ? core::BenignCircuit::kC6288x2
                      : core::BenignCircuit::kAlu;
}

core::SensorMode parse_mode(const Args& args, const char* dflt) {
  const std::string mode_s = args.get("mode", dflt);
  if (mode_s == "tdc") return core::SensorMode::kTdcFull;
  if (mode_s == "tdc-bit") return core::SensorMode::kTdcSingleBit;
  if (mode_s == "hw") return core::SensorMode::kBenignHw;
  if (mode_s == "bit") return core::SensorMode::kBenignSingleBit;
  if (mode_s == "ro") return core::SensorMode::kRoCounter;
  throw Error("unknown --mode '" + mode_s + "'");
}

core::RngContract parse_rng_contract(const Args& args) {
  // RNG determinism contract (DESIGN.md §12): v2 (the default) derives
  // every trace's randomness from (seed, trace index) — bit-identical
  // for any --threads/--block; v1 is the legacy sequential-stream
  // contract that reproduces the pre-v2 fixtures.
  const std::string contract_s = args.get("rng-contract", "");
  if (contract_s == "v1" || contract_s == "1") return core::RngContract::kV1;
  if (contract_s == "v2" || contract_s == "2") return core::RngContract::kV2;
  if (!contract_s.empty()) {
    throw Error("unknown --rng-contract '" + contract_s +
                "' (expected v1 or v2)");
  }
  return core::RngContract::kDefault;
}

// Observability: --trace-out wins over the SLM_TRACE environment knob;
// either attaches a metrics registry + JSONL event sink.
std::unique_ptr<obs::CampaignObserver> make_observer(const Args& args) {
  const std::string trace_out = args.get("trace-out", "");
  if (!trace_out.empty()) {
    return std::make_unique<obs::CampaignObserver>(trace_out);
  }
  return obs::observer_from_env();
}

int cmd_attack(const Args& args) {
  const core::BenignCircuit circuit = parse_circuit(args);
  const core::SensorMode mode = parse_mode(args, "hw");

  const std::size_t traces = args.get_n("traces", 150000);
  const std::size_t key_byte = args.get_n("key-byte", 3);
  // 0 = all hardware threads; 1 = the exact legacy serial path.
  const unsigned threads =
      static_cast<unsigned>(args.get_n("threads", 0));

  // Crash-safe checkpointing: --checkpoint-dir snapshots at every
  // checkpoint; --resume <dir> implies it and continues a killed run
  // bit-exactly. --halt-after simulates the kill for tests/drills.
  core::RunOptions opts;
  opts.checkpoint_dir = args.get("checkpoint-dir", "");
  const std::string resume_dir = args.get("resume", "");
  if (!resume_dir.empty()) {
    opts.resume = true;
    if (opts.checkpoint_dir.empty()) opts.checkpoint_dir = resume_dir;
    if (!std::filesystem::exists(core::checkpoint_file(resume_dir))) {
      throw Error("attack --resume: no snapshot at '" +
                  core::checkpoint_file(resume_dir) + "'");
    }
  }
  opts.halt_after_traces = args.get_n("halt-after", 0);
  if (opts.halt_after_traces > 0 && opts.checkpoint_dir.empty() &&
      args.get("snapshot-out", "").empty()) {
    throw Error("attack --halt-after: needs --checkpoint-dir or "
                "--snapshot-out (nothing to resume from otherwise)");
  }
  // --block tiles the capture loop (0 = SLM_BLOCK env, else the default;
  // any value is bit-identical, including across a kill/resume pair).
  // SLM_SIMD=0 in the environment selects the scalar block kernels.
  opts.block = args.get_n("block", 0);
  opts.rng_contract = parse_rng_contract(args);

  std::unique_ptr<obs::CampaignObserver> observer = make_observer(args);
  opts.observer = observer.get();

  // Capture-once, replay-many (docs/STORE.md): --store-out additionally
  // persists every captured trace into an SLMTRC1 store; --from-store
  // replays a store through the CPA folds at fold speed instead of
  // capturing anything at all.
  opts.store_out = args.get("store-out", "");
  const std::string from_store = args.get("from-store", "");
  if (!from_store.empty() && !opts.store_out.empty()) {
    throw Error("attack: --from-store replays an existing store — it "
                "cannot also capture one; drop --store-out");
  }
  if (!from_store.empty() &&
      (!opts.checkpoint_dir.empty() || opts.resume ||
       opts.halt_after_traces > 0)) {
    throw Error("attack --from-store: replay never captures, so there is "
                "nothing to checkpoint — drop --checkpoint-dir/--resume/"
                "--halt-after");
  }
  if (!opts.store_out.empty() && opts.resume) {
    throw Error("attack --store-out: cannot combine with --resume — traces "
                "captured before the snapshot would be missing from the "
                "store");
  }
  // --fused-tvla rides the replay sweep (docs/STORE.md): the same
  // one-pass fold additionally feeds a specific Welch t-test partitioned
  // by the target leakage model's predicted class bit.
  const bool fused_tvla = args.options.count("fused-tvla") > 0;
  if (fused_tvla && from_store.empty()) {
    throw Error("attack --fused-tvla: fuses the t-test into the "
                "--from-store replay pass — add --from-store F.trc");
  }

  // --full-key: one shared capture pass attacks all 16 last-round key
  // bytes at once (docs/FULLKEY.md). --fullkey-mode farmed runs the
  // 16-campaign oracle instead (same shared config, 16x the captures).
  const bool full_key = args.options.count("full-key") > 0;
  core::FullKeyOptions fk_opts;
  if (full_key) {
    const std::string fk_mode_s = args.get("fullkey-mode", "fused");
    if (fk_mode_s == "farmed") {
      fk_opts.mode = core::FullKeyMode::kFarmed;
    } else if (fk_mode_s != "fused") {
      throw Error("unknown --fullkey-mode '" + fk_mode_s +
                  "' (expected fused or farmed)");
    }
    const std::string ee = args.get("early-exit", "on");
    if (ee == "off" || ee == "0") {
      fk_opts.fused.early_exit = false;
    } else if (ee != "on" && ee != "1") {
      throw Error("unknown --early-exit '" + ee + "' (expected on or off)");
    }
    fk_opts.fused.early_exit_margin =
        args.get_d("early-exit-margin", fk_opts.fused.early_exit_margin);
    if (fk_opts.mode == core::FullKeyMode::kFarmed &&
        (!opts.checkpoint_dir.empty() || opts.resume ||
         opts.halt_after_traces > 0)) {
      throw Error("attack --fullkey-mode farmed: the farmed oracle cannot "
                  "checkpoint — drop --checkpoint-dir/--resume/--halt-after "
                  "or use --fullkey-mode fused");
    }
  }

  // Distributed fabric (docs/DISTRIBUTED.md): --range/--shard turn this
  // invocation into a shard worker that captures one contiguous trace
  // range into an SLMSNAP1 snapshot (--snapshot-out); --dry-run prints
  // the shard manifest as one pure-JSON line (config fingerprint and
  // all) without capturing anything, so a coordinator can pre-validate
  // that every shard resolves the identical campaign.
  const std::string snapshot_out = args.get("snapshot-out", "");
  const std::string range_s = args.get("range", "");
  const std::string shard_s = args.get("shard", "");
  const bool dry_run = args.options.count("dry-run") > 0;
  if (!snapshot_out.empty() || !range_s.empty() || !shard_s.empty() ||
      dry_run) {
    if (!opts.checkpoint_dir.empty() || opts.resume) {
      throw Error("attack: the fabric worker flags (--snapshot-out/--range/"
                  "--shard/--dry-run) cannot combine with --checkpoint-dir/"
                  "--resume — prefix snapshots are the fabric's own resume "
                  "mechanism");
    }
    if (!opts.store_out.empty() || !from_store.empty()) {
      throw Error("attack: the fabric worker flags cannot combine with "
                  "--store-out/--from-store — shard snapshots already "
                  "persist the accumulators (slm merge folds them)");
    }
    if (full_key && fk_opts.mode == core::FullKeyMode::kFarmed) {
      throw Error("attack: fabric workers run the fused full-key engine; "
                  "drop --fullkey-mode farmed");
    }
    core::TraceRange range{0, traces};
    if (!range_s.empty()) {
      const auto colon = range_s.find(':');
      if (colon == std::string::npos) {
        throw Error("attack --range: expected BEGIN:END, got '" + range_s +
                    "'");
      }
      range.begin = std::stoull(range_s.substr(0, colon));
      range.end = std::stoull(range_s.substr(colon + 1));
    } else if (!shard_s.empty()) {
      const auto slash = shard_s.find('/');
      if (slash == std::string::npos) {
        throw Error("attack --shard: expected I/N, got '" + shard_s + "'");
      }
      const std::size_t i = std::stoull(shard_s.substr(0, slash));
      const std::size_t n = std::stoull(shard_s.substr(slash + 1));
      if (n == 0 || i >= n) {
        throw Error("attack --shard: index out of range in '" + shard_s +
                    "'");
      }
      range = core::plan_shards(traces, static_cast<unsigned>(n))[i];
    }

    core::StealthyAttack fabric_attack(circuit);
    core::CampaignConfig cfg =
        full_key ? fabric_attack.fullkey_campaign_config(traces, mode)
                 : fabric_attack.byte_campaign_config(key_byte, traces, mode);
    cfg.block = opts.block;
    cfg.rng_contract = opts.rng_contract;
    cfg.observer = observer.get();
    core::FabricWorker worker(fabric_attack.setup(), cfg, full_key);
    const core::SnapshotIdentity& id = worker.identity();
    if (dry_run) {
      std::cout << obs::JsonWriter()
                       .field("circuit", core::benign_circuit_name(circuit))
                       .field("mode", core::sensor_mode_name(mode))
                       .field("traces", id.total_traces)
                       .field("seed", id.seed)
                       .field("samples", id.samples)
                       .field("target_key_byte", id.target_key_byte)
                       .field("single_bit", id.single_bit)
                       .field("compiled", id.compiled != 0)
                       .field("rng_contract",
                              static_cast<std::uint64_t>(id.rng_contract))
                       .field("fullkey", id.fullkey != 0)
                       .field("fingerprint",
                              static_cast<std::uint64_t>(id.fingerprint()))
                       .field("begin", range.begin)
                       .field("end", range.end)
                       .str()
                << "\n";
      return 0;
    }
    if (snapshot_out.empty()) {
      throw Error("attack: --range/--shard need --snapshot-out FILE");
    }
    core::FabricJob job;
    job.range = range;
    job.snapshot_out = snapshot_out;
    job.snapshot_every = args.get_n("snapshot-every", 0);
    job.halt_after = opts.halt_after_traces;
    try {
      worker.run(job);
    } catch (const core::CampaignHalted& halted) {
      std::cout << "campaign halted after " << halted.traces()
                << " traces; snapshot at " << halted.snapshot_path() << "\n";
      return 5;
    }
    std::cout << "fabric worker: captured [" << range.begin << ", "
              << range.end << ") -> " << snapshot_out << "\n";
    return 0;
  }

  core::StealthyAttack attack(circuit);

  // Replay path (docs/STORE.md): fold the stored readings through the
  // same CPA engines at the same checkpoint schedule the live capture
  // used — bit-identical results (partition invariance, sca/cpa.hpp)
  // without regenerating a single trace. The store's fingerprint must
  // match the campaign these flags resolve to (exit 14 otherwise).
  if (!from_store.empty()) {
    if (full_key && fk_opts.mode == core::FullKeyMode::kFarmed) {
      throw Error("attack --from-store: replay folds the fused full-key "
                  "store; drop --fullkey-mode farmed");
    }
    store::TraceStoreReader reader(from_store);
    const std::size_t rtraces = reader.trace_count();
    core::CampaignConfig cfg =
        full_key ? attack.fullkey_campaign_config(rtraces, mode)
                 : attack.byte_campaign_config(key_byte, rtraces, mode);
    cfg.rng_contract = opts.rng_contract;
    cfg.observer = observer.get();
    core::CpaCampaign campaign(attack.setup(), cfg);
    const store::StoreKind kind = full_key ? store::StoreKind::kFullKey
                                           : store::StoreKind::kByteCampaign;
    reader.identity().require_compatible(
        campaign.store_identity(kind, rtraces), "attack --from-store");
    const std::vector<std::size_t> checkpoints =
        core::checkpoint_schedule(cfg.checkpoints, rtraces);
    const crypto::Block true_lrk =
        attack.setup().victim().cipher().last_round_key();
    std::cout << "replaying " << store::store_kind_name(reader.kind())
              << " store " << from_store << ": " << rtraces << " traces, "
              << reader.samples() << " sample(s), " << reader.chunk_count()
              << " chunk(s)\n";

    if (full_key) {
      store::ReplayFullKeyOptions ropts;
      ropts.early_exit = fk_opts.fused.early_exit;
      ropts.early_exit_margin = fk_opts.fused.early_exit_margin;
      ropts.early_exit_stable = fk_opts.fused.early_exit_stable;
      ropts.early_exit_min_traces = fk_opts.fused.early_exit_min_traces;
      store::ReplayFullKeyResult fr;
      std::optional<store::ReplayTvlaResult> tv;
      if (fused_tvla) {
        store::ReplayAllOptions aopts;
        aopts.attack = false;
        aopts.fullkey_opts = ropts;
        const store::ReplayAllResult ar = store::replay_all(
            reader, checkpoints, true_lrk, aopts, observer.get());
        fr = ar.fullkey;
        tv = ar.tvla;
      } else {
        fr = store::replay_fullkey(reader, checkpoints, true_lrk, ropts,
                                   observer.get());
      }
      std::printf("fullkey replay: %zu traces folded, %.2f s%s\n", fr.traces,
                  fr.replay_seconds, fused_tvla ? " (fused tvla)" : "");
      std::printf("byte  true  recovered  ok   converged\n");
      for (std::size_t b = 0; b < fr.bytes.size(); ++b) {
        const store::ReplayFullKeyByte& br = fr.bytes[b];
        std::printf("%4zu  0x%02x       0x%02x  %s  %7zu%s\n", b, br.correct,
                    br.recovered, br.success ? "yes" : "NO ", br.traces,
                    br.early_exited ? " (early exit)" : "");
      }
      std::printf("last-round key: true %s recovered %s\n",
                  crypto::block_to_hex(true_lrk).c_str(),
                  crypto::block_to_hex(fr.recovered_last_round_key).c_str());
      const crypto::Block true_master = crypto::recover_master_key(true_lrk);
      const crypto::Block recovered_master =
          crypto::recover_master_key(fr.recovered_last_round_key);
      std::printf("master key:     true %s recovered %s -> %s\n",
                  crypto::block_to_hex(true_master).c_str(),
                  crypto::block_to_hex(recovered_master).c_str(),
                  fr.success ? "RECOVERED" : "not recovered");
      if (tv) {
        std::printf("specific tvla: max |t| = %.2f (threshold %.1f) -> %s\n",
                    tv->max_abs_t, sca::WelchTTest::kThreshold,
                    tv->leakage_detected ? "LEAKAGE"
                                         : "no leakage evidence");
      }
      return fr.success ? 0 : 4;
    }

    sca::LastRoundBitModel model(key_byte, cfg.target_bit);
    store::ReplayAttackResult r;
    std::optional<store::ReplayTvlaResult> tv;
    if (fused_tvla) {
      store::ReplayAllOptions aopts;
      aopts.fullkey = false;
      const store::ReplayAllResult ar = store::replay_all(
          reader, checkpoints, true_lrk, aopts, observer.get());
      r = ar.attack;
      tv = ar.tvla;
    } else {
      r = store::replay_attack(reader, checkpoints,
                               model.correct_guess(true_lrk),
                               observer.get());
    }
    std::printf("replay: %zu traces folded, %.2f s%s\n", r.traces,
                r.replay_seconds, fused_tvla ? " (fused tvla)" : "");
    std::printf("true 0x%02x recovered 0x%02x -> %s", r.correct_guess,
                r.recovered_guess,
                r.key_recovered ? "RECOVERED" : "not recovered");
    if (r.mtd.disclosed()) std::printf(" (~%zu traces)", *r.mtd.traces);
    std::printf("\n");
    if (tv) {
      std::printf("specific tvla: max |t| = %.2f (threshold %.1f) -> %s\n",
                  tv->max_abs_t, sca::WelchTTest::kThreshold,
                  tv->leakage_detected ? "LEAKAGE" : "no leakage evidence");
    }
    return r.key_recovered ? 0 : 4;
  }

  if (full_key) {
    std::cout << "circuit " << core::benign_circuit_name(circuit)
              << ", mode " << core::sensor_mode_name(mode) << ", " << traces
              << " traces, full key ("
              << (fk_opts.mode == core::FullKeyMode::kFused ? "fused"
                                                            : "farmed")
              << "), threads " << core::resolve_threads(threads) << "\n";
  } else {
    std::cout << "circuit " << core::benign_circuit_name(circuit)
              << ", mode " << core::sensor_mode_name(mode) << ", " << traces
              << " traces, key byte " << key_byte << ", threads "
              << core::resolve_threads(threads) << "\n";
  }
  const auto audit = attack.check_stealthiness();
  std::cout << "bitstream check: " << audit.summary() << "\n";

  if (full_key) {
    fk_opts.run = opts;
    core::StealthyAttack::FullKeyReport fr;
    try {
      fr = attack.recover_full_key(traces, mode, threads, fk_opts);
    } catch (const core::CampaignHalted& halted) {
      std::cout << "campaign halted after " << halted.traces()
                << " traces; snapshot at " << halted.snapshot_path() << "\n"
                << "resume with: slm attack --full-key --resume "
                << opts.checkpoint_dir << "\n";
      return 5;
    } catch (const core::CheckpointContractMismatch& mismatch) {
      std::cerr << "slm: error: " << mismatch.what() << "\n";
      return 6;
    }

    if (fr.resumed_from > 0) {
      std::cout << "resumed from trace " << fr.resumed_from << "\n";
    }
    std::printf("fullkey: %zu traces captured, %u thread(s), block %zu, "
                "contract %s, %.2f s\n",
                fr.traces_captured, fr.threads_used, fr.block_size,
                core::rng_contract_name(fr.rng_contract),
                fr.capture_seconds);
    std::printf("byte  true  recovered  ok   converged\n");
    for (const auto& b : fr.bytes) {
      std::printf("%4zu  0x%02x       0x%02x  %s  %7zu%s\n", b.key_byte,
                  b.true_value, b.recovered, b.success ? "yes" : "NO ",
                  b.traces, b.early_exited ? " (early exit)" : "");
    }
    const crypto::Block true_lrk =
        attack.setup().victim().cipher().last_round_key();
    std::printf("last-round key: true %s recovered %s\n",
                crypto::block_to_hex(true_lrk).c_str(),
                crypto::block_to_hex(fr.last_round_key).c_str());
    const crypto::Block true_master = crypto::recover_master_key(true_lrk);
    std::printf("master key:     true %s recovered %s -> %s\n",
                crypto::block_to_hex(true_master).c_str(),
                crypto::block_to_hex(fr.master_key).c_str(),
                fr.success ? "RECOVERED" : "not recovered");

    if (observer != nullptr && observer->has_sink()) {
      observer->write_manifest(
          obs::JsonWriter()
              .field("circuit", core::benign_circuit_name(circuit))
              .field("mode", core::sensor_mode_name(mode))
              .field("fullkey", true)
              .field("fullkey_mode",
                     fk_opts.mode == core::FullKeyMode::kFused ? "fused"
                                                               : "farmed")
              .field("traces_captured",
                     static_cast<std::uint64_t>(fr.traces_captured))
              .field("bytes_early_exited",
                     static_cast<std::uint64_t>(fr.bytes_early_exited))
              .field("master_key", crypto::block_to_hex(fr.master_key))
              .field("success", fr.success)
              .field("threads", static_cast<std::uint64_t>(fr.threads_used))
              .field("block", static_cast<std::uint64_t>(fr.block_size))
              .field("rng_contract",
                     core::rng_contract_name(fr.rng_contract))
              .field("capture_seconds", fr.capture_seconds));
    }
    return fr.success ? 0 : 4;
  }

  core::KeyByteReport r;
  try {
    r = attack.recover_key_byte(key_byte, traces, mode, threads, opts);
  } catch (const core::CampaignHalted& halted) {
    std::cout << "campaign halted after " << halted.traces()
              << " traces; snapshot at " << halted.snapshot_path() << "\n"
              << "resume with: slm attack --resume "
              << opts.checkpoint_dir << "\n";
    return 5;
  } catch (const core::CheckpointContractMismatch& mismatch) {
    std::cerr << "slm: error: " << mismatch.what() << "\n";
    return 6;
  }

  if (r.resumed_from > 0) {
    std::cout << "resumed from trace " << r.resumed_from << "\n";
  }
  if (r.capture_seconds > 0.0) {
    std::printf("campaign: %u thread(s), block %zu, contract %s, %.2f s, "
                "%.0f traces/sec\n",
                r.threads_used, r.block_size,
                core::rng_contract_name(r.rng_contract), r.capture_seconds,
                static_cast<double>(r.traces) / r.capture_seconds);
  }
  if (observer != nullptr && r.kernel_seconds > 0.0) {
    std::printf("phase split: kernel %.2f s, cpa %.2f s, selection %.2f s, "
                "checkpoint io %.2f s\n",
                r.kernel_seconds, r.cpa_seconds, r.selection_seconds,
                r.checkpoint_io_seconds);
  }
  std::printf("true 0x%02x recovered 0x%02x -> %s", r.true_value,
              r.recovered, r.success ? "RECOVERED" : "not recovered");
  if (r.mtd.disclosed()) std::printf(" (~%zu traces)", *r.mtd.traces);
  std::printf("\n");

  if (observer != nullptr && observer->has_sink()) {
    observer->write_manifest(
        obs::JsonWriter()
            .field("circuit", core::benign_circuit_name(circuit))
            .field("mode", core::sensor_mode_name(mode))
            .field("key_byte", static_cast<std::uint64_t>(key_byte))
            .field("traces", static_cast<std::uint64_t>(r.traces))
            .field("recovered", static_cast<std::uint64_t>(r.recovered))
            .field("success", r.success)
            .field("threads", static_cast<std::uint64_t>(r.threads_used))
            .field("block", static_cast<std::uint64_t>(r.block_size))
            .field("rng_contract", core::rng_contract_name(r.rng_contract))
            .field("capture_seconds", r.capture_seconds));
  }
  return r.success ? 0 : 4;
}

// `slm tvla` — non-specific leakage assessment with the configured
// sensor: fixed-vs-random plaintext populations through Welch's t-test
// per sample point, no key hypothesis at all (sca/tvla.hpp). --store-out
// captures the interleaved populations into an SLMTRC1 store;
// --from-store replays one at fold speed. Exit 0 = leakage evidence
// (max |t| > 4.5), 4 = none.
int cmd_tvla(const Args& args) {
  const core::BenignCircuit circuit = parse_circuit(args);
  const core::SensorMode mode = parse_mode(args, "tdc");
  const std::size_t tpp = args.get_n("traces", 2000);  // per population
  const std::size_t key_byte = args.get_n("key-byte", 3);
  const core::RngContract contract = parse_rng_contract(args);
  std::unique_ptr<obs::CampaignObserver> observer = make_observer(args);

  const std::string store_out = args.get("store-out", "");
  const std::string from_store = args.get("from-store", "");
  if (!store_out.empty() && !from_store.empty()) {
    throw Error("tvla: --from-store replays an existing store — it cannot "
                "also capture one; drop --store-out");
  }

  core::StealthyAttack attack(circuit);

  if (!from_store.empty()) {
    store::TraceStoreReader reader(from_store);
    const std::size_t total = reader.trace_count();
    // The capture interleaves fixed/random, so the per-population count
    // is half the store; the identity check rejects non-TVLA stores
    // (kind is a fingerprinted field).
    core::CampaignConfig cfg =
        attack.byte_campaign_config(key_byte, total / 2, mode);
    cfg.rng_contract = contract;
    cfg.observer = observer.get();
    core::CpaCampaign campaign(attack.setup(), cfg);
    reader.identity().require_compatible(
        campaign.store_identity(store::StoreKind::kTvla, total),
        "tvla --from-store");
    const store::ReplayTvlaResult r =
        store::replay_tvla(reader, observer.get());
    std::printf("tvla replay: %zu fixed + %zu random traces, %.2f s\n",
                r.fixed_traces, r.random_traces, r.replay_seconds);
    std::printf("max |t| = %.2f (threshold %.1f) -> %s\n", r.max_abs_t,
                sca::WelchTTest::kThreshold,
                r.leakage_detected ? "LEAKAGE" : "no leakage evidence");
    return r.leakage_detected ? 0 : 4;
  }

  core::CampaignConfig cfg = attack.byte_campaign_config(key_byte, tpp, mode);
  cfg.rng_contract = contract;
  cfg.observer = observer.get();
  cfg.store_out = store_out;
  core::CpaCampaign campaign(attack.setup(), cfg);
  std::cout << "circuit " << core::benign_circuit_name(circuit) << ", mode "
            << core::sensor_mode_name(mode) << ", " << tpp
            << " traces per population\n";
  const sca::WelchTTest tt = campaign.run_tvla(tpp);
  std::printf("max |t| = %.2f (threshold %.1f) -> %s\n", tt.max_abs_t(),
              sca::WelchTTest::kThreshold,
              tt.leakage_detected() ? "LEAKAGE" : "no leakage evidence");
  return tt.leakage_detected() ? 0 : 4;
}

// `slm capture` — capture-only front end (docs/STORE.md): run the
// configured campaign and persist its traces into an SLMTRC1 store for
// later `--from-store` replay. Sugar for `slm attack/tvla --store-out`
// (the attack still runs and reports — capture IS the campaign; the
// store is the reusable byproduct). `--tvla` captures the fixed-vs-
// random populations instead of an attack stream.
int cmd_capture(const Args& args) {
  if (args.get("store-out", "").empty()) {
    throw Error("capture: need --store-out FILE.trc");
  }
  if (!args.get("from-store", "").empty()) {
    throw Error("capture: --from-store is a replay flag — use `slm attack "
                "--from-store` or `slm tvla --from-store`");
  }
  return args.options.count("tvla") > 0 ? cmd_tvla(args) : cmd_attack(args);
}

// `slm analyze` — fused one-pass store analytics (docs/STORE.md): sweep
// an SLMTRC1 store ONCE and feed every analysis its kind supports from
// the same cache-resident column blocks — target-byte attack, all-16-
// bytes full key, and the Welch t-test — instead of one replay pass per
// analysis. The campaign is inferred from the store identity (circuit,
// mode, target byte, contract); the reconstructed fingerprint must
// still match (exit 14), so analyze never mislabels a store captured
// under non-default config. Exit 0 = full key recovered (attack-kind
// stores) / leakage evidence (tvla stores), 4 otherwise.
int cmd_analyze(const Args& args) {
  std::string from_store = args.get("from-store", "");
  if (from_store.empty() && !args.positional.empty()) {
    from_store = args.positional[0];
  }
  if (from_store.empty()) throw Error("analyze: need --from-store F.trc");
  std::unique_ptr<obs::CampaignObserver> observer = make_observer(args);

  store::TraceStoreReader reader(from_store);
  const store::StoreIdentity& id = reader.identity();
  const store::StoreKind kind = reader.kind();
  const std::size_t n = reader.trace_count();
  const auto circuit = static_cast<core::BenignCircuit>(id.circuit);
  const auto mode = static_cast<core::SensorMode>(id.mode);
  const std::size_t key_byte = static_cast<std::size_t>(id.target_key_byte);

  core::StealthyAttack attack(circuit);
  core::CampaignConfig cfg =
      kind == store::StoreKind::kFullKey
          ? attack.fullkey_campaign_config(n, mode)
          : attack.byte_campaign_config(
                key_byte, kind == store::StoreKind::kTvla ? n / 2 : n, mode);
  cfg.rng_contract = id.rng_contract == 1 ? core::RngContract::kV1
                                          : core::RngContract::kV2;
  cfg.observer = observer.get();
  core::CpaCampaign campaign(attack.setup(), cfg);
  reader.identity().require_compatible(campaign.store_identity(kind, n),
                                       "analyze");
  const std::vector<std::size_t> checkpoints =
      core::checkpoint_schedule(cfg.checkpoints, n);
  const crypto::Block true_lrk =
      attack.setup().victim().cipher().last_round_key();

  std::cout << "analyzing " << store::store_kind_name(kind) << " store "
            << from_store << ": " << n << " traces, " << reader.samples()
            << " sample(s), circuit " << core::benign_circuit_name(circuit)
            << ", mode " << core::sensor_mode_name(mode) << "\n";

  store::ReplayAllOptions aopts;
  if (kind == store::StoreKind::kTvla) {
    aopts.attack = false;
    aopts.fullkey = false;
  }
  const store::ReplayAllResult ar =
      store::replay_all(reader, checkpoints, true_lrk, aopts, observer.get());
  std::printf("fused pass: %zu traces, one sweep, %.2f s\n", ar.traces,
              ar.replay_seconds);

  if (ar.has_attack) {
    const store::ReplayAttackResult& r = ar.attack;
    std::printf("attack byte %zu: true 0x%02x recovered 0x%02x -> %s",
                key_byte, r.correct_guess, r.recovered_guess,
                r.key_recovered ? "RECOVERED" : "not recovered");
    if (r.mtd.disclosed()) std::printf(" (~%zu traces)", *r.mtd.traces);
    std::printf("\n");
  }
  if (ar.has_fullkey) {
    const store::ReplayFullKeyResult& fr = ar.fullkey;
    std::printf("byte  true  recovered  ok   converged\n");
    for (std::size_t b = 0; b < fr.bytes.size(); ++b) {
      const store::ReplayFullKeyByte& br = fr.bytes[b];
      std::printf("%4zu  0x%02x       0x%02x  %s  %7zu%s\n", b, br.correct,
                  br.recovered, br.success ? "yes" : "NO ", br.traces,
                  br.early_exited ? " (early exit)" : "");
    }
    const crypto::Block true_master = crypto::recover_master_key(true_lrk);
    const crypto::Block recovered_master =
        crypto::recover_master_key(fr.recovered_last_round_key);
    std::printf("master key: true %s recovered %s -> %s\n",
                crypto::block_to_hex(true_master).c_str(),
                crypto::block_to_hex(recovered_master).c_str(),
                fr.success ? "RECOVERED" : "not recovered");
  }
  if (ar.has_tvla) {
    std::printf("%stvla: max |t| = %.2f (threshold %.1f) -> %s\n",
                kind == store::StoreKind::kTvla ? "" : "specific ",
                ar.tvla.max_abs_t, sca::WelchTTest::kThreshold,
                ar.tvla.leakage_detected ? "LEAKAGE"
                                         : "no leakage evidence");
  }
  if (kind == store::StoreKind::kTvla) {
    return ar.tvla.leakage_detected ? 0 : 4;
  }
  return ar.fullkey.success ? 0 : 4;
}

// `slm merge SNAP... [--out F] [--report]` — offline snapshot folding:
// validate + merge SLMSNAP1 files in the order given (any order is
// bit-identical), optionally write the merged snapshot, and with
// --report (which insists on complete trace coverage) fold the merged
// accumulator into the final key ranking — byte-identical to what the
// serial engine prints for the same campaign.
int cmd_merge(const Args& args) {
  if (args.positional.empty()) {
    throw Error("merge: need at least one snapshot file");
  }
  std::vector<core::AccumulatorSnapshot> parts;
  parts.reserve(args.positional.size());
  for (const std::string& path : args.positional) {
    parts.push_back(core::load_snapshot(path));
  }
  core::AccumulatorSnapshot merged = core::merge_snapshots(parts);
  const core::SnapshotIdentity& id = merged.id;

  core::RangeLedger ledger(id.total_traces);
  for (const core::TraceRange& r : merged.ranges) ledger.cover(r);
  std::printf("merged %zu snapshot(s): %llu/%llu traces covered, "
              "%zu range(s), fingerprint %08x\n",
              parts.size(),
              static_cast<unsigned long long>(ledger.covered()),
              static_cast<unsigned long long>(id.total_traces),
              merged.ranges.size(), id.fingerprint());

  const std::string out = args.get("out", "");
  if (!out.empty()) {
    const std::size_t bytes = core::save_snapshot(out, merged);
    std::printf("wrote %zu bytes to %s\n", bytes, out.c_str());
  }

  if (args.options.count("report") == 0) return 0;
  if (!ledger.complete()) {
    std::string gaps;
    for (const core::TraceRange& g : ledger.missing()) {
      if (!gaps.empty()) gaps += ", ";
      gaps += "[" + std::to_string(g.begin) + ", " + std::to_string(g.end) +
              ")";
    }
    throw core::SnapshotRangeError(
        "merge --report: coverage incomplete — missing " + gaps +
        " of " + std::to_string(id.total_traces) + " traces");
  }

  // The truth to grade against: the same victim every campaign of this
  // circuit instantiates (the fabric never changes the key schedule).
  core::StealthyAttack attack(static_cast<core::BenignCircuit>(id.circuit));
  const crypto::Block true_lrk =
      attack.setup().victim().cipher().last_round_key();

  if (id.fullkey != 0) {
    crypto::Block recovered_lrk{};
    bool all_ok = true;
    std::printf("byte  true  recovered  ok\n");
    for (std::size_t j = 0; j < true_lrk.size(); ++j) {
      const sca::CpaEngine engine = core::fold_snapshot_byte(merged, j);
      const std::uint8_t rec =
          static_cast<std::uint8_t>(engine.best_guess());
      recovered_lrk[j] = rec;
      const bool ok = rec == true_lrk[j];
      all_ok = all_ok && ok;
      const std::vector<double> corr = engine.max_abs_correlation();
      std::printf("%4zu  0x%02x       0x%02x  %s  |r| %a\n", j, true_lrk[j],
                  rec, ok ? "yes" : "NO ", corr[rec]);
    }
    std::printf("last-round key: true %s recovered %s\n",
                crypto::block_to_hex(true_lrk).c_str(),
                crypto::block_to_hex(recovered_lrk).c_str());
    const crypto::Block true_master = crypto::recover_master_key(true_lrk);
    const crypto::Block recovered_master =
        crypto::recover_master_key(recovered_lrk);
    std::printf("master key:     true %s recovered %s -> %s\n",
                crypto::block_to_hex(true_master).c_str(),
                crypto::block_to_hex(recovered_master).c_str(),
                all_ok ? "RECOVERED" : "not recovered");
    return all_ok ? 0 : 4;
  }

  const std::size_t kb = static_cast<std::size_t>(id.target_key_byte);
  const sca::CpaEngine engine = core::fold_snapshot_byte(merged, kb);
  const std::uint8_t rec = static_cast<std::uint8_t>(engine.best_guess());
  const bool ok = rec == true_lrk[kb];
  const std::vector<double> corr = engine.max_abs_correlation();
  std::printf("key byte %zu: true 0x%02x recovered 0x%02x -> %s\n", kb,
              true_lrk[kb], rec, ok ? "RECOVERED" : "not recovered");
  std::printf("best |r| %a\n", corr[rec]);
  return ok ? 0 : 4;
}

// `slm coordinate` — drive N local `slm attack --range --snapshot-out`
// worker subprocesses to full coverage (reissuing dead shards' missing
// ranges) and merge the result into <work-dir>/merged.snap.
int cmd_coordinate(const Args& args) {
  core::CoordinateOptions opt;
  opt.total_traces = args.get_n("traces", 150000);
  opt.shards = static_cast<unsigned>(args.get_n("shards", 4));
  opt.work_dir = args.get("work-dir", "");
  if (opt.work_dir.empty()) {
    throw Error("coordinate: need --work-dir DIR");
  }
  opt.snapshot_every = args.get_n("snapshot-every", 0);
  opt.max_reissue_rounds =
      static_cast<unsigned>(args.get_n("max-reissues", 4));
  if (args.options.count("kill-shard") > 0) {
    opt.kill_shard = static_cast<int>(args.get_n("kill-shard", 0));
    opt.kill_after = args.get_n("kill-after", 0);
    if (opt.kill_after == 0) {
      throw Error("coordinate --kill-shard: needs --kill-after N (traces "
                  "into the shard's range)");
    }
  }

  // The worker binary: an explicit --slm-bin wins, else this very
  // executable (via /proc/self/exe, so it works from any cwd).
  opt.slm_binary = args.get("slm-bin", "");
  if (opt.slm_binary.empty()) {
    std::error_code ec;
    const auto self = std::filesystem::read_symlink("/proc/self/exe", ec);
    if (ec) throw Error("coordinate: cannot resolve own binary; pass "
                        "--slm-bin PATH");
    opt.slm_binary = self.string();
  }

  // Campaign config pass-through: the whitelisted attack flags are
  // forwarded verbatim so every worker resolves the identical campaign
  // (the snapshot fingerprint enforces it at merge time).
  for (const char* k :
       {"circuit", "mode", "key-byte", "rng-contract", "block"}) {
    const auto it = args.options.find(k);
    if (it != args.options.end()) {
      opt.worker_args.push_back("--" + std::string(k));
      opt.worker_args.push_back(it->second);
    }
  }
  opt.worker_args.push_back("--traces");
  opt.worker_args.push_back(std::to_string(opt.total_traces));
  if (args.options.count("full-key") > 0) {
    opt.worker_args.push_back("--full-key");
  }

  std::unique_ptr<obs::CampaignObserver> observer;
  const std::string trace_out = args.get("trace-out", "");
  if (!trace_out.empty()) {
    observer = std::make_unique<obs::CampaignObserver>(trace_out);
  } else {
    observer = obs::observer_from_env();
  }
  opt.observer = observer.get();

  const core::CoordinateResult res = core::coordinate_local(opt);
  std::printf("coordinate: %u worker(s) spawned, %u failure(s), %u "
              "range(s) reissued, %zu snapshot(s) merged\n",
              res.workers_spawned, res.worker_failures, res.ranges_reissued,
              res.snapshots_merged);
  std::printf("merged snapshot: %s\n", res.merged_path.c_str());
  if (observer != nullptr && observer->has_sink()) {
    observer->write_manifest(
        obs::JsonWriter()
            .field("shards", static_cast<std::uint64_t>(opt.shards))
            .field("traces", opt.total_traces)
            .field("workers_spawned",
                   static_cast<std::uint64_t>(res.workers_spawned))
            .field("worker_failures",
                   static_cast<std::uint64_t>(res.worker_failures))
            .field("ranges_reissued",
                   static_cast<std::uint64_t>(res.ranges_reissued))
            .field("snapshots_merged",
                   static_cast<std::uint64_t>(res.snapshots_merged))
            .field("merged_path", res.merged_path));
  }
  return 0;
}

// Campaign-as-a-service verbs (docs/SERVE.md): submit writes a job file
// into the spool, serve is the resident multi-tenant scheduler, status
// summarizes the daemon's JSONL feed. Exit codes: 10 = job rejected
// (queue/spool full), 11 = bad job spec, 12 = serve stopped by
// --max-slices with work remaining (see docs/CLI.md).

// Exclusive flock over <spool>/.lock, held for the whole of one submit:
// the capacity count, the .seq read-modify-write, and the claim of the
// final spool name must be one critical section or two concurrent
// submitters can mint the same id and silently clobber each other's
// queued job file.
class SpoolLock {
 public:
  explicit SpoolLock(const std::filesystem::path& path)
      : fd_(::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644)) {
    if (fd_ < 0 || ::flock(fd_, LOCK_EX) != 0) {
      const std::string why = std::strerror(errno);
      if (fd_ >= 0) ::close(fd_);
      throw Error("submit: cannot lock '" + path.string() + "': " + why);
    }
  }
  ~SpoolLock() { ::close(fd_); }  // close releases the flock
  SpoolLock(const SpoolLock&) = delete;
  SpoolLock& operator=(const SpoolLock&) = delete;

 private:
  int fd_;
};

int cmd_submit(const Args& args) {
  const std::string spool = args.get("spool", "");
  if (spool.empty()) throw Error("submit: need --spool DIR");
  std::filesystem::create_directories(spool);
  const SpoolLock lock(std::filesystem::path(spool) / ".lock");

  serve::JobSpec spec;
  spec.tenant = args.get("tenant", "");
  spec.priority = static_cast<std::int64_t>(args.get_d("priority", 0));
  spec.kind = serve::job_kind_from_name(args.get("kind", "attack"), "submit");
  spec.circuit =
      serve::circuit_from_name(args.get("circuit", "alu"), "submit");
  spec.mode = serve::mode_from_name(args.get("mode", "tdc"), "submit");
  spec.traces = args.get_n("traces", 20000);
  spec.key_byte = args.get_n("key-byte", 3);
  spec.fabric_shards =
      static_cast<unsigned>(args.get_n("fabric-shards", 0));
  spec.store = args.get("store", "");

  // Backpressure starts at the submission edge: the spool is the
  // queue's antechamber, so a tenant hits the bounded-queue refusal
  // (exit 10) here instead of silently deepening the backlog.
  const std::size_t cap =
      args.get_n("queue-cap", serve::kDefaultQueueCapacity);
  std::size_t pending = 0;
  for (const auto& e : std::filesystem::directory_iterator(spool)) {
    if (e.is_regular_file() && e.path().extension() == ".json") ++pending;
  }
  if (pending >= cap) {
    throw serve::QueueFullError(
        "submit: spool holds " + std::to_string(pending) + "/" +
        std::to_string(cap) + " pending job(s); try again later");
  }

  // Deterministic ids from a per-spool sequence file: two identically
  // ordered submission batches produce identical ids (and therefore
  // byte-identical result files — serve_smoke relies on it).
  std::string id = args.get("id", "");
  if (id.empty()) {
    const std::filesystem::path seq_file =
        std::filesystem::path(spool) / ".seq";
    std::size_t seq = 0;
    if (std::ifstream sf(seq_file); sf) sf >> seq;
    std::string tenant_tag;
    for (const char c : spec.tenant) {
      tenant_tag += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "job_%04zu_", seq);
    id = buf + tenant_tag;
    std::ofstream(seq_file, std::ios::trunc) << (seq + 1) << "\n";
  }
  spec.id = id;

  // One validation authority: round-trip through the daemon's own
  // parser, so submit can never write a file serve would reject.
  const std::string json = serve::job_to_json(spec);
  (void)serve::parse_job_json(json, "submit");

  const std::filesystem::path file =
      std::filesystem::path(spool) / (id + ".json");
  // Write to a per-process tmp name, then link(2) it into place: the
  // complete file appears under its final name atomically (the daemon
  // never reads a torn job), and — unlike rename — link refuses to
  // clobber, so a duplicate id surfaces as EEXIST instead of silently
  // replacing another tenant's queued job.
  const std::filesystem::path tmp =
      file.string() + "." + std::to_string(::getpid()) + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!(os << json << "\n")) {
      throw Error("submit: cannot write '" + tmp.string() + "'");
    }
  }
  if (::link(tmp.c_str(), file.c_str()) != 0) {
    const int err = errno;
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    if (err == EEXIST) {
      throw serve::JobSpecError("submit: job id '" + id +
                                "' already queued in " + spool);
    }
    throw Error("submit: cannot create '" + file.string() +
                "': " + std::strerror(err));
  }
  {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
  }
  std::printf("submitted %s (tenant %s, %s, %llu traces) -> %s\n",
              id.c_str(), spec.tenant.c_str(),
              serve::job_kind_name(spec.kind),
              static_cast<unsigned long long>(spec.traces),
              file.string().c_str());
  return 0;
}

int cmd_serve(const Args& args) {
  serve::ServeOptions so;
  so.spool_dir = args.get("spool", "");
  so.results_dir = args.get("results", "");
  if (so.spool_dir.empty() || so.results_dir.empty()) {
    throw Error("serve: need --spool DIR and --results DIR");
  }
  so.max_queue = args.get_n("max-queue", serve::kDefaultQueueCapacity);
  so.timeslice_traces = args.get_n("timeslice", 0);
  so.threads = static_cast<unsigned>(args.get_n("threads", 1));
  so.max_slices = args.get_n("max-slices", 0);
  so.poll_ms = args.get_n("poll-ms", 25);
  so.idle_polls = args.get_n("idle-polls", 2);
  so.slm_binary = args.get("slm-bin", "");
  if (so.slm_binary.empty()) {
    std::error_code ec;
    const auto self = std::filesystem::read_symlink("/proc/self/exe", ec);
    if (!ec) so.slm_binary = self.string();
  }

  const serve::ServeReport rep = serve::serve(so);
  std::printf("serve: %zu slice(s): %zu admitted (+%zu recovered), "
              "%zu completed, %zu failed, %zu rejected, %zu preemption(s)\n",
              rep.slices, rep.jobs_admitted, rep.jobs_recovered,
              rep.jobs_completed, rep.jobs_failed, rep.jobs_rejected,
              rep.preemptions);
  if (rep.halted) {
    std::printf("serve: halted by --max-slices with work remaining; "
                "restart with the same --spool/--results to resume\n");
    return 12;
  }
  if (rep.spool_remaining > 0) {
    // NOT the max-slices halt (exit 12): the daemon drained everything
    // it admitted, but job file(s) arrived during shutdown.
    std::printf("serve: drained, but %zu job file(s) arrived in the spool "
                "during shutdown; rerun with the same --spool/--results "
                "to admit them\n",
                rep.spool_remaining);
    return 0;
  }
  std::printf("serve: drained\n");
  return 0;
}

int cmd_status(const Args& args) {
  const std::string results = args.get("results", "");
  if (results.empty()) throw Error("status: need --results DIR");
  const serve::StatusSummary s =
      serve::read_status(results, args.get("spool", ""));
  if (!s.found) {
    std::printf("status: no serve feed at %s/serve.jsonl\n",
                results.c_str());
    return 1;
  }
  std::printf("queue depth: %llu   spool pending: %llu   running: %s\n",
              static_cast<unsigned long long>(s.queue_depth),
              static_cast<unsigned long long>(s.spool_pending),
              s.running_job.empty() ? "-" : s.running_job.c_str());
  std::printf("slices %llu  completed %llu  failed %llu  rejected %llu  "
              "preempted %llu\n",
              static_cast<unsigned long long>(s.slices),
              static_cast<unsigned long long>(s.completed),
              static_cast<unsigned long long>(s.failed),
              static_cast<unsigned long long>(s.rejected),
              static_cast<unsigned long long>(s.preemptions));
  std::printf("%-16s %12s %8s\n", "tenant", "charged", "pending");
  for (const serve::StatusTenant& t : s.tenants) {
    std::printf("%-16s %12llu %8llu\n", t.tenant.c_str(),
                static_cast<unsigned long long>(t.charged),
                static_cast<unsigned long long>(t.pending));
  }
  return 0;
}

int usage() {
  std::cerr
      << "usage: slm <command> [options]\n"
         "  gen    --circuit rca|ks|c6288|wallace|barrel [--width N] "
         "[--out F]\n"
         "  check  FILE.bench [--strict-clock-mhz F]\n"
         "  sta    FILE.bench [--clock-mhz F]\n"
         "  atpg   FILE.bench [--band-lo NS] [--band-hi NS]\n"
         "  attack [--circuit alu|c6288] [--mode tdc|tdc-bit|hw|bit|ro]\n"
         "         [--traces N] [--key-byte B] [--threads N] [--block N]\n"
         "         [--full-key] [--fullkey-mode fused|farmed]\n"
         "         [--early-exit on|off] [--early-exit-margin F]\n"
         "         [--rng-contract v1|v2]\n"
         "         [--checkpoint-dir D] [--resume D] [--halt-after N]\n"
         "         [--trace-out F.jsonl]\n"
         "         [--store-out F.trc | --from-store F.trc [--fused-tvla]]\n"
         "         [--shard I/N | --range A:B] [--snapshot-out F.snap]\n"
         "         [--snapshot-every N] [--dry-run]\n"
         "  capture --store-out F.trc [--tvla] [+ attack/tvla flags]\n"
         "  analyze --from-store F.trc [--trace-out F.jsonl]\n"
         "  tvla   [--circuit alu|c6288] [--mode tdc|tdc-bit|hw|bit|ro]\n"
         "         [--traces N-per-population] [--key-byte B]\n"
         "         [--rng-contract v1|v2] [--trace-out F.jsonl]\n"
         "         [--store-out F.trc | --from-store F.trc]\n"
         "  merge  SNAP... [--out F.snap] [--report]\n"
         "  coordinate --work-dir D [--shards N] [--traces N]\n"
         "         [--snapshot-every N] [--kill-shard I --kill-after N]\n"
         "         [--max-reissues K] [--slm-bin PATH] [--trace-out F]\n"
         "         [+ the attack config flags, forwarded to workers]\n"
         "  submit --spool D --tenant T\n"
         "         [--kind attack|full-key|tvla|analyze]\n"
         "         [--priority P] [--circuit alu|c6288] [--mode M]\n"
         "         [--traces N] [--key-byte B] [--fabric-shards N]\n"
         "         [--store F.trc] [--queue-cap N] [--id ID]\n"
         "  serve  --spool D --results D [--max-queue N] [--timeslice N]\n"
         "         [--threads N] [--max-slices N] [--poll-ms MS]\n"
         "         [--idle-polls N] [--slm-bin PATH]\n"
         "  status --results D [--spool D]\n";
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Args args = parse_args(argc, argv, 2);
  try {
    if (cmd == "gen") return cmd_gen(args);
    if (cmd == "check") return cmd_check(args);
    if (cmd == "sta") return cmd_sta(args);
    if (cmd == "atpg") return cmd_atpg(args);
    if (cmd == "attack") return cmd_attack(args);
    if (cmd == "capture") return cmd_capture(args);
    if (cmd == "analyze") return cmd_analyze(args);
    if (cmd == "tvla") return cmd_tvla(args);
    if (cmd == "merge") return cmd_merge(args);
    if (cmd == "coordinate") return cmd_coordinate(args);
    if (cmd == "submit") return cmd_submit(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "status") return cmd_status(args);
    return usage();
  } catch (const serve::QueueFullError& e) {
    std::cerr << "slm: error: " << e.what() << "\n";
    return 10;
  } catch (const serve::JobSpecError& e) {
    std::cerr << "slm: error: " << e.what() << "\n";
    return 11;
  } catch (const core::SnapshotFormatError& e) {
    std::cerr << "slm: error: " << e.what() << "\n";
    return 7;
  } catch (const core::SnapshotMismatch& e) {
    std::cerr << "slm: error: " << e.what() << "\n";
    return 8;
  } catch (const core::SnapshotRangeError& e) {
    std::cerr << "slm: error: " << e.what() << "\n";
    return 9;
  } catch (const store::StoreFormatError& e) {
    std::cerr << "slm: error: " << e.what() << "\n";
    return 13;
  } catch (const store::StoreMismatch& e) {
    std::cerr << "slm: error: " << e.what() << "\n";
    return 14;
  } catch (const std::exception& e) {
    std::cerr << "slm: error: " << e.what() << "\n";
    return 1;
  }
}
