#include "common/bitvec.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace slm {
namespace {

TEST(BitVec, DefaultIsEmpty) {
  BitVec v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
}

TEST(BitVec, ConstructedZeroed) {
  BitVec v(130);
  EXPECT_EQ(v.size(), 130u);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_FALSE(v.get(i));
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVec, SetGetFlip) {
  BitVec v(100);
  v.set(0, true);
  v.set(63, true);
  v.set(64, true);
  v.set(99, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(99));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.popcount(), 4u);
  v.flip(0);
  EXPECT_FALSE(v.get(0));
  v.flip(1);
  EXPECT_TRUE(v.get(1));
  EXPECT_EQ(v.popcount(), 4u);
}

TEST(BitVec, OutOfRangeThrows) {
  BitVec v(8);
  EXPECT_THROW(v.get(8), Error);
  EXPECT_THROW(v.set(8, true), Error);
  EXPECT_THROW(v.flip(100), Error);
}

TEST(BitVec, FromUint64) {
  BitVec v(16, 0xA5F0);
  EXPECT_EQ(v.to_uint64(), 0xA5F0u);
  EXPECT_FALSE(v.get(0));
  EXPECT_TRUE(v.get(4));
  EXPECT_TRUE(v.get(15));
}

TEST(BitVec, Uint64TruncatesToSize) {
  BitVec v(4, 0xFF);
  EXPECT_EQ(v.to_uint64(), 0xFu);
  EXPECT_EQ(v.popcount(), 4u);
}

TEST(BitVec, StringRoundTrip) {
  const std::string s = "101101001101";
  BitVec v = BitVec::from_string(s);
  EXPECT_EQ(v.size(), s.size());
  EXPECT_EQ(v.to_string(), s);
  // MSB-first convention: first char is the highest bit.
  EXPECT_TRUE(v.get(s.size() - 1));
}

TEST(BitVec, FromStringRejectsJunk) {
  EXPECT_THROW(BitVec::from_string("10102"), Error);
}

TEST(BitVec, SetAll) {
  BitVec v(70);
  v.set_all(true);
  EXPECT_EQ(v.popcount(), 70u);
  // Top word must stay masked so popcount is exact.
  v.set_all(false);
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVec, LogicOps) {
  BitVec a(8, 0b11001100);
  BitVec b(8, 0b10101010);
  EXPECT_EQ((a & b).to_uint64(), 0b10001000u);
  EXPECT_EQ((a | b).to_uint64(), 0b11101110u);
  EXPECT_EQ((a ^ b).to_uint64(), 0b01100110u);
  EXPECT_EQ((~a).to_uint64(), 0b00110011u);
}

TEST(BitVec, SizeMismatchThrows) {
  BitVec a(8);
  BitVec b(9);
  EXPECT_THROW(a ^= b, Error);
  EXPECT_THROW((void)a.hamming_distance(b), Error);
}

TEST(BitVec, HammingDistance) {
  BitVec a(128);
  BitVec b(128);
  a.set(0, true);
  a.set(127, true);
  b.set(127, true);
  b.set(64, true);
  EXPECT_EQ(a.hamming_distance(b), 2u);
  EXPECT_EQ(a.hamming_distance(a), 0u);
}

TEST(BitVec, Slice) {
  BitVec v(20, 0b10110100101011010011);
  const BitVec lo = v.slice(0, 8);
  EXPECT_EQ(lo.to_uint64(), 0b11010011u);
  const BitVec hi = v.slice(12, 8);
  EXPECT_EQ(hi.to_uint64(), 0b10110100u);
  EXPECT_THROW(v.slice(15, 8), Error);
}

TEST(BitVec, Equality) {
  BitVec a(65, 7);
  BitVec b(65, 7);
  EXPECT_EQ(a, b);
  b.set(64, true);
  EXPECT_NE(a, b);
  EXPECT_NE(a, BitVec(64, 7));  // different sizes differ
}

TEST(BitVecHelpers, HammingWeight64) {
  EXPECT_EQ(hamming_weight(0), 0u);
  EXPECT_EQ(hamming_weight(~0ull), 64u);
  EXPECT_EQ(hamming_weight(0xF0F0ull), 8u);
  EXPECT_EQ(hamming_distance(0xFFull, 0x0Full), 4u);
}

// Word-boundary sweep as a property: set exactly one bit everywhere.
class BitVecSingleBit : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitVecSingleBit, ExactlyOneBitVisible) {
  const std::size_t pos = GetParam();
  BitVec v(130);
  v.set(pos, true);
  EXPECT_EQ(v.popcount(), 1u);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(v.get(i), i == pos);
  }
}

INSTANTIATE_TEST_SUITE_P(Boundaries, BitVecSingleBit,
                         ::testing::Values(0, 1, 62, 63, 64, 65, 127, 128,
                                           129));

}  // namespace
}  // namespace slm
