#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace slm {
namespace {

TEST(OnlineMeanVar, KnownSequence) {
  OnlineMeanVar acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 4.0);
  EXPECT_NEAR(acc.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.stddev(), 2.0);
}

TEST(OnlineMeanVar, EmptyAndSingle) {
  OnlineMeanVar acc;
  EXPECT_EQ(acc.variance(), 0.0);
  acc.add(3.5);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.5);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.sample_variance(), 0.0);
}

TEST(OnlineMeanVar, MergeMatchesSequential) {
  Xoshiro256 rng(3);
  OnlineMeanVar all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5, 5);
    all.add(x);
    (i % 3 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(OnlineMeanVar, MergeWithEmpty) {
  OnlineMeanVar a, b;
  a.add(1.0);
  a.add(2.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(OnlineCorrelation, PerfectAndAnti) {
  OnlineCorrelation pos, neg;
  for (int i = 0; i < 50; ++i) {
    pos.add(i, 2.0 * i + 1.0);
    neg.add(i, -0.5 * i);
  }
  EXPECT_NEAR(pos.correlation(), 1.0, 1e-12);
  EXPECT_NEAR(neg.correlation(), -1.0, 1e-12);
}

TEST(OnlineCorrelation, ConstantVariableGivesZero) {
  OnlineCorrelation c;
  for (int i = 0; i < 10; ++i) c.add(3.0, i);
  EXPECT_EQ(c.correlation(), 0.0);
}

TEST(OnlineCorrelation, IndependentNearZero) {
  Xoshiro256 rng(5);
  OnlineCorrelation c;
  for (int i = 0; i < 100000; ++i) c.add(rng.uniform(), rng.uniform());
  EXPECT_NEAR(c.correlation(), 0.0, 0.02);
}

TEST(MultiCorrelation, MatchesPairwise) {
  Xoshiro256 rng(7);
  MultiCorrelation multi(3);
  OnlineCorrelation c0, c1, c2;
  for (int i = 0; i < 2000; ++i) {
    const double y = rng.uniform();
    const std::vector<double> h{y + 0.1 * rng.uniform(), rng.uniform(),
                                -y};
    multi.add(h, y);
    c0.add(h[0], y);
    c1.add(h[1], y);
    c2.add(h[2], y);
  }
  EXPECT_NEAR(multi.correlation(0), c0.correlation(), 1e-9);
  EXPECT_NEAR(multi.correlation(1), c1.correlation(), 1e-9);
  EXPECT_NEAR(multi.correlation(2), c2.correlation(), 1e-9);
}

TEST(MultiCorrelation, BinaryUpdateMatchesGeneric) {
  Xoshiro256 rng(9);
  MultiCorrelation generic(4), binary(4);
  for (int i = 0; i < 3000; ++i) {
    const double y = rng.uniform();
    std::vector<std::uint8_t> bits(4);
    std::vector<double> h(4);
    for (int k = 0; k < 4; ++k) {
      bits[k] = rng.coin() ? 1 : 0;
      h[k] = bits[k];
    }
    generic.add(h, y);
    binary.add_binary(bits, y);
  }
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_NEAR(generic.correlation(k), binary.correlation(k), 1e-12);
  }
}

TEST(MultiCorrelation, DimensionMismatchThrows) {
  MultiCorrelation m(2);
  EXPECT_THROW(m.add({1.0}, 0.0), Error);
  EXPECT_THROW((void)m.correlation(2), Error);
}

TEST(VectorStats, Descriptives) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_DOUBLE_EQ(variance(v), 1.25);
  EXPECT_DOUBLE_EQ(min_of(v), 1.0);
  EXPECT_DOUBLE_EQ(max_of(v), 4.0);
  EXPECT_EQ(argmax(v), 3u);
}

TEST(VectorStats, ArgmaxAbs) {
  EXPECT_EQ(argmax_abs({0.1, -0.9, 0.5}), 1u);
  EXPECT_EQ(argmax_abs({-0.2}), 0u);
  EXPECT_THROW(argmax_abs({}), Error);
}

TEST(VectorStats, PearsonMatchesOnline) {
  Xoshiro256 rng(11);
  std::vector<double> x, y;
  OnlineCorrelation c;
  for (int i = 0; i < 500; ++i) {
    x.push_back(rng.uniform());
    y.push_back(0.3 * x.back() + rng.uniform());
    c.add(x.back(), y.back());
  }
  EXPECT_NEAR(pearson(x, y), c.correlation(), 1e-12);
}

}  // namespace
}  // namespace slm
