#include <gtest/gtest.h>

#include <sstream>

#include "common/log.hpp"
#include "common/units.hpp"

namespace slm {
namespace {

TEST(Units, PeriodFrequencyRoundTrip) {
  EXPECT_DOUBLE_EQ(units::period_ns(50.0), 20.0);
  EXPECT_DOUBLE_EQ(units::period_ns(100.0), 10.0);
  EXPECT_NEAR(units::period_ns(300.0), 10.0 / 3.0, 1e-12);
  for (double f : {1.0, 4.0, 125.0, 300.0}) {
    EXPECT_NEAR(units::freq_mhz(units::period_ns(f)), f, 1e-12);
  }
}

TEST(Units, TimeConversions) {
  EXPECT_DOUBLE_EQ(units::ns_to_s(1.0), 1e-9);
  EXPECT_DOUBLE_EQ(units::s_to_ns(1e-9), 1.0);
  EXPECT_DOUBLE_EQ(units::s_to_ns(units::ns_to_s(123.456)), 123.456);
  EXPECT_DOUBLE_EQ(units::kNominalVdd, 1.0);
}

TEST(Log, LevelFiltering) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // kWarn is below the threshold: must be a no-op (observable only as
  // "does not crash"; the sink is stderr).
  log_warn() << "suppressed";
  log_error() << "emitted";
  set_log_level(before);
}

TEST(Log, StreamingCollectsAllParts) {
  // The line builder must accept heterogeneous operands.
  set_log_level(LogLevel::kError);  // keep test output quiet
  log_info() << "x=" << 42 << " y=" << 3.5 << " z=" << std::string("s");
  set_log_level(LogLevel::kInfo);
}

}  // namespace
}  // namespace slm
