#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/table.hpp"

namespace slm {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row(std::vector<std::string>{"a", "1"});
  t.add_row(std::vector<std::string>{"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TextTable, NumericRow) {
  TextTable t({"x", "y"});
  t.add_row(std::vector<double>{1.23456, 2.0}, 2);
  EXPECT_EQ(t.row_count(), 1u);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("1.23"), std::string::npos);
}

TEST(TextTable, ColumnMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row(std::vector<std::string>{"only one"}), Error);
}

TEST(Csv, WriteAndReadNumeric) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_header({"a", "b", "c"});
  w.write_row(std::vector<double>{1.0, 2.0, 3.0});
  w.write_row(std::vector<double>{4.5, 5.5, 6.5});
  std::istringstream is(os.str());
  const auto rows = read_numeric_csv(is, /*has_header=*/true);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[1][0], 4.5);
  EXPECT_DOUBLE_EQ(rows[0][2], 3.0);
}

TEST(Csv, RejectsCommaInCell) {
  std::ostringstream os;
  CsvWriter w(os);
  EXPECT_THROW(w.write_row(std::vector<std::string>{"a,b"}), Error);
}

TEST(Csv, ColumnCountEnforced) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_header({"a", "b"});
  EXPECT_THROW(w.write_row(std::vector<std::string>{"1"}), Error);
}

TEST(Csv, SplitLine) {
  const auto cells = split_csv_line("a,b,,d");
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[2], "");
  EXPECT_EQ(cells[3], "d");
}

TEST(Csv, NonNumericCellThrows) {
  std::istringstream is("1,2\n3,oops\n");
  EXPECT_THROW(read_numeric_csv(is, false), Error);
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-1.0, 0), "-1");
}

}  // namespace
}  // namespace slm
