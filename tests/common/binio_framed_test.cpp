// Corruption battery for the shared framed-file envelope
// (common/binio): every way a framed file can be structurally bad —
// missing, short header, wrong magic, wrong version, truncated payload,
// flipped CRC or payload byte — must surface as a typed, context-
// prefixed error, never a misparse. The trace store, checkpoints and
// snapshots all stand on this envelope.
#include "common/binio.hpp"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace slm {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("slm_binio_") + name + "_" +
           std::to_string(::getpid())))
      .string();
}

std::vector<std::uint8_t> sample_payload() {
  std::vector<std::uint8_t> p;
  for (int i = 0; i < 100; ++i) p.push_back(static_cast<std::uint8_t>(i));
  return p;
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(is)),
                                   std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
}

// Expects an slm::Error whose message contains `needle` — the battery
// pins the *specific* diagnosis, not just "something threw".
template <typename Fn>
void expect_error_containing(Fn&& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected slm::Error containing '" << needle << "'";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "got: " << e.what();
  }
}

struct TempFile {
  std::string path;
  explicit TempFile(const char* name) : path(temp_path(name)) {}
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
};

TEST(BinioFramedTest, RoundTripReturnsPayloadAndByteCount) {
  TempFile f("roundtrip");
  const auto payload = sample_payload();
  const std::size_t written =
      write_framed_file(f.path, "SLMTEST1", 3, payload, "test");
  EXPECT_EQ(written, 24 + payload.size());  // 8 magic + 4 + 8 + 4 header

  const auto back = read_framed_file(f.path, "SLMTEST1", 3, "test");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, payload);
}

TEST(BinioFramedTest, MissingFileIsNullopt) {
  const auto r =
      read_framed_file(temp_path("nonexistent"), "SLMTEST1", 1, "test");
  EXPECT_FALSE(r.has_value());
}

TEST(BinioFramedTest, WrongMagicRejected) {
  TempFile f("magic");
  write_framed_file(f.path, "SLMTEST1", 1, sample_payload(), "test");
  expect_error_containing(
      [&] { (void)read_framed_file(f.path, "SLMOTHER", 1, "test"); },
      "bad magic in");
}

TEST(BinioFramedTest, WrongVersionRejected) {
  TempFile f("version");
  write_framed_file(f.path, "SLMTEST1", 7, sample_payload(), "test");
  expect_error_containing(
      [&] { (void)read_framed_file(f.path, "SLMTEST1", 8, "test"); },
      "unsupported version 7");
}

TEST(BinioFramedTest, TruncatedPayloadRejected) {
  TempFile f("truncated");
  write_framed_file(f.path, "SLMTEST1", 1, sample_payload(), "test");
  auto bytes = slurp(f.path);
  bytes.resize(bytes.size() - 10);  // header intact, payload short
  spit(f.path, bytes);
  expect_error_containing(
      [&] { (void)read_framed_file(f.path, "SLMTEST1", 1, "test"); },
      "truncated payload in");
}

TEST(BinioFramedTest, ExtraTrailingBytesRejected) {
  // length != remaining also catches a file that GREW — trailing
  // garbage is as suspect as truncation.
  TempFile f("trailing");
  write_framed_file(f.path, "SLMTEST1", 1, sample_payload(), "test");
  auto bytes = slurp(f.path);
  bytes.push_back(0xab);
  spit(f.path, bytes);
  expect_error_containing(
      [&] { (void)read_framed_file(f.path, "SLMTEST1", 1, "test"); },
      "truncated payload in");
}

TEST(BinioFramedTest, FlippedCrcByteRejected) {
  TempFile f("crcflip");
  write_framed_file(f.path, "SLMTEST1", 1, sample_payload(), "test");
  auto bytes = slurp(f.path);
  bytes[20] ^= 0x01;  // stored CRC lives at envelope offset 20..23
  spit(f.path, bytes);
  expect_error_containing(
      [&] { (void)read_framed_file(f.path, "SLMTEST1", 1, "test"); },
      "CRC mismatch in");
}

TEST(BinioFramedTest, FlippedPayloadByteRejected) {
  TempFile f("payloadflip");
  write_framed_file(f.path, "SLMTEST1", 1, sample_payload(), "test");
  auto bytes = slurp(f.path);
  bytes[24 + 50] ^= 0x80;
  spit(f.path, bytes);
  expect_error_containing(
      [&] { (void)read_framed_file(f.path, "SLMTEST1", 1, "test"); },
      "CRC mismatch in");
}

TEST(BinioFramedTest, ShortHeaderRejected) {
  // A file shorter than the 24-byte envelope dies in the bounds-checked
  // ByteReader, not in a wild read.
  TempFile f("shorthdr");
  spit(f.path, std::vector<std::uint8_t>{'S', 'L', 'M', 'T', 'E'});
  expect_error_containing(
      [&] { (void)read_framed_file(f.path, "SLMTEST1", 1, "test"); },
      "truncated input");
}

TEST(BinioFramedTest, EmptyFileRejected) {
  TempFile f("empty");
  spit(f.path, {});
  expect_error_containing(
      [&] { (void)read_framed_file(f.path, "SLMTEST1", 1, "test"); },
      "truncated input");
}

TEST(BinioFramedTest, EmptyPayloadRoundTrips) {
  TempFile f("emptypayload");
  write_framed_file(f.path, "SLMTEST1", 1, {}, "test");
  const auto back = read_framed_file(f.path, "SLMTEST1", 1, "test");
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST(BinioFramedTest, ErrorMessagesCarryContext) {
  TempFile f("context");
  write_framed_file(f.path, "SLMTEST1", 1, sample_payload(), "test");
  expect_error_containing(
      [&] {
        (void)read_framed_file(f.path, "SLMOTHER", 1, "trace store");
      },
      "trace store:");
}

TEST(BinioFramedTest, Crc32UpdateChainsLikeOneShot) {
  // The trace store checksums each chunk's slices of several columns
  // incrementally; chaining must equal the one-shot CRC of the
  // concatenation.
  const auto payload = sample_payload();
  const std::uint32_t one_shot = crc32(payload.data(), payload.size());
  std::uint32_t chained = 0;
  chained = crc32_update(chained, payload.data(), 13);
  chained = crc32_update(chained, payload.data() + 13, 29);
  chained = crc32_update(chained, payload.data() + 42,
                         payload.size() - 42);
  EXPECT_EQ(chained, one_shot);

  // Empty spans are identity.
  EXPECT_EQ(crc32_update(one_shot, payload.data(), 0), one_shot);
}

}  // namespace
}  // namespace slm
