#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"

namespace slm {
namespace {

TEST(Xoshiro, Deterministic) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  OnlineMeanVar acc;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    acc.add(u);
  }
  EXPECT_NEAR(acc.mean(), 0.5, 0.01);
  EXPECT_NEAR(acc.variance(), 1.0 / 12.0, 0.005);
}

TEST(Xoshiro, UniformRange) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Xoshiro, UniformIntBounded) {
  Xoshiro256 rng(11);
  std::array<int, 10> counts{};
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t k = rng.uniform_int(10);
    ASSERT_LT(k, 10u);
    counts[k]++;
  }
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(Xoshiro, UniformIntZeroIsZero) {
  Xoshiro256 rng(1);
  EXPECT_EQ(rng.uniform_int(0), 0u);
  EXPECT_EQ(rng.uniform_int(1), 0u);
}

TEST(Xoshiro, ForkIsIndependentStream) {
  Xoshiro256 a(5);
  Xoshiro256 b = a.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(FastNormal, MomentsMatchStandardNormal) {
  Xoshiro256 rng(13);
  const auto& normal = FastNormal::instance();
  OnlineMeanVar acc;
  for (int i = 0; i < 200000; ++i) acc.add(normal(rng));
  EXPECT_NEAR(acc.mean(), 0.0, 0.01);
  EXPECT_NEAR(acc.stddev(), 1.0, 0.02);
}

TEST(FastNormal, TailFractions) {
  Xoshiro256 rng(17);
  const auto& normal = FastNormal::instance();
  const int n = 200000;
  int beyond1 = 0, beyond2 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = std::abs(normal(rng));
    if (x > 1.0) ++beyond1;
    if (x > 2.0) ++beyond2;
  }
  EXPECT_NEAR(static_cast<double>(beyond1) / n, 0.3173, 0.01);
  EXPECT_NEAR(static_cast<double>(beyond2) / n, 0.0455, 0.005);
}

TEST(FastNormal, MeanSigmaScaling) {
  Xoshiro256 rng(19);
  const auto& normal = FastNormal::instance();
  OnlineMeanVar acc;
  for (int i = 0; i < 100000; ++i) acc.add(normal(rng, 10.0, 3.0));
  EXPECT_NEAR(acc.mean(), 10.0, 0.05);
  EXPECT_NEAR(acc.stddev(), 3.0, 0.05);
}

}  // namespace
}  // namespace slm
