#include "fpga/fabric.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"

namespace slm::fpga {
namespace {

TEST(Rect, ContainsAndOverlaps) {
  Rect a{2, 2, 4, 4};
  EXPECT_TRUE(a.contains(2, 2));
  EXPECT_TRUE(a.contains(5, 5));
  EXPECT_FALSE(a.contains(6, 2));
  EXPECT_TRUE(a.overlaps(Rect{5, 5, 2, 2}));
  EXPECT_FALSE(a.overlaps(Rect{6, 2, 2, 2}));
  EXPECT_EQ(a.tiles(), 16u);
}

TEST(Fabric, TenantIsolationEnforced) {
  Fabric fab(40, 20);
  fab.add_tenant("a", Rect{0, 0, 20, 20});
  EXPECT_THROW(fab.add_tenant("b", Rect{19, 0, 10, 10}), slm::Error);
  fab.add_tenant("b", Rect{20, 0, 20, 20});
  EXPECT_EQ(fab.tenant_count(), 2u);
}

TEST(Fabric, RegionMustFitFabric) {
  Fabric fab(10, 10);
  EXPECT_THROW(fab.add_tenant("big", Rect{5, 5, 10, 10}), slm::Error);
  EXPECT_THROW(fab.add_tenant("empty", Rect{0, 0, 0, 5}), slm::Error);
}

TEST(Fabric, ModuleMustFitTenantRegion) {
  Fabric fab(40, 20);
  const auto t = fab.add_tenant("a", Rect{0, 0, 20, 20});
  PlacedModule m;
  m.name = "x";
  m.symbol = 'X';
  m.bounds = Rect{15, 15, 10, 4};  // spills out of the region
  EXPECT_THROW(fab.place_module(t, m), slm::Error);
  m.bounds = Rect{1, 1, 8, 8};
  EXPECT_NO_THROW(fab.place_module(t, m));
}

TEST(Fabric, HotCellsValidated) {
  Fabric fab(40, 20);
  const auto t = fab.add_tenant("a", Rect{0, 0, 20, 20});
  PlacedModule m;
  m.name = "x";
  m.symbol = 'X';
  m.bounds = Rect{0, 0, 4, 4};
  m.cell_count = 8;
  m.hot_cells = {9};  // out of range
  EXPECT_THROW(fab.place_module(t, m), slm::Error);
}

TEST(Fabric, PdnCouplingDecaysWithDistance) {
  Fabric fab(100, 20);
  const auto near_a = fab.add_tenant("a", Rect{0, 0, 10, 20});
  const auto near_b = fab.add_tenant("b", Rect{12, 0, 10, 20});
  const auto far_c = fab.add_tenant("c", Rect{80, 0, 10, 20});
  EXPECT_DOUBLE_EQ(fab.pdn_coupling(near_a, near_a), 1.0);
  const double ab = fab.pdn_coupling(near_a, near_b);
  const double ac = fab.pdn_coupling(near_a, far_c);
  EXPECT_GT(ab, ac);
  EXPECT_GT(ab, 0.0);
  EXPECT_LT(ab, 1.0);
  // Symmetric.
  EXPECT_DOUBLE_EQ(ab, fab.pdn_coupling(near_b, near_a));
}

TEST(Fabric, RenderShowsModulesAndHotCells) {
  Fabric fab(30, 10);
  const auto t = fab.add_tenant("a", Rect{0, 0, 30, 10});
  PlacedModule m;
  m.name = "sensor";
  m.symbol = 'B';
  m.bounds = Rect{1, 1, 10, 8};
  m.cell_count = 40;
  m.hot_cells = {0, 1, 2};
  fab.place_module(t, m);
  const std::string art = fab.render_ascii();
  EXPECT_NE(art.find('B'), std::string::npos);
  EXPECT_NE(art.find('*'), std::string::npos);
  // One line per row plus newlines.
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 10);
}

TEST(Fabric, RenderIsDeterministic) {
  auto build = [] {
    Fabric fab(20, 8);
    const auto t = fab.add_tenant("a", Rect{0, 0, 20, 8});
    PlacedModule m;
    m.name = "fixed-name";
    m.symbol = 'M';
    m.bounds = Rect{2, 2, 10, 4};
    fab.place_module(t, m);
    return fab.render_ascii();
  };
  EXPECT_EQ(build(), build());
}

}  // namespace
}  // namespace slm::fpga
