#include "fpga/bram.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace slm::fpga {
namespace {

TEST(TraceBuffer, PushAndDrain) {
  TraceBuffer buf(4);
  EXPECT_TRUE(buf.push(1));
  EXPECT_TRUE(buf.push(2));
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_FALSE(buf.full());
  const auto words = buf.drain();
  EXPECT_EQ(words, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(buf.size(), 0u);
}

TEST(TraceBuffer, OverflowCounted) {
  TraceBuffer buf(2);
  EXPECT_TRUE(buf.push(1));
  EXPECT_TRUE(buf.push(2));
  EXPECT_TRUE(buf.full());
  EXPECT_FALSE(buf.push(3));
  EXPECT_FALSE(buf.push(4));
  EXPECT_EQ(buf.dropped(), 2u);
  // Drain resets both contents and drop count.
  (void)buf.drain();
  EXPECT_EQ(buf.dropped(), 0u);
  EXPECT_TRUE(buf.push(5));
}

TEST(TraceBuffer, PeekDoesNotConsume) {
  TraceBuffer buf(4);
  buf.push(7);
  EXPECT_EQ(buf.peek().size(), 1u);
  EXPECT_EQ(buf.peek()[0], 7u);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(TraceBuffer, ZeroCapacityRejected) {
  EXPECT_THROW(TraceBuffer buf(0), slm::Error);
}

}  // namespace
}  // namespace slm::fpga
