#include "fpga/uart.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace slm::fpga {
namespace {

TEST(Uart, FrameRoundTrip) {
  Frame f;
  f.type = FrameType::kCiphertext;
  f.payload = {0xDE, 0xAD, 0xBE, 0xEF};
  FrameDecoder dec;
  const auto frames = dec.feed(encode_frame(f));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kCiphertext);
  EXPECT_EQ(frames[0].payload, f.payload);
  EXPECT_EQ(dec.crc_errors(), 0u);
}

TEST(Uart, EmptyPayloadFrame) {
  Frame f;
  f.type = FrameType::kControl;
  FrameDecoder dec;
  const auto frames = dec.feed(encode_frame(f));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_TRUE(frames[0].payload.empty());
}

TEST(Uart, BackToBackFrames) {
  Frame a, b;
  a.type = FrameType::kPlaintext;
  a.payload = {1, 2, 3};
  b.type = FrameType::kTrace;
  b.payload = {4, 5};
  auto bytes = encode_frame(a);
  const auto more = encode_frame(b);
  bytes.insert(bytes.end(), more.begin(), more.end());
  FrameDecoder dec;
  const auto frames = dec.feed(bytes);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].payload.size(), 3u);
  EXPECT_EQ(frames[1].type, FrameType::kTrace);
}

TEST(Uart, CorruptCrcDropped) {
  Frame f;
  f.type = FrameType::kTrace;
  f.payload = {9, 9, 9};
  auto bytes = encode_frame(f);
  bytes.back() ^= 0xFF;  // break the CRC
  FrameDecoder dec;
  const auto frames = dec.feed(bytes);
  EXPECT_TRUE(frames.empty());
  EXPECT_EQ(dec.crc_errors(), 1u);
}

TEST(Uart, CorruptPayloadDropped) {
  Frame f;
  f.type = FrameType::kTrace;
  f.payload = {1, 2, 3, 4};
  auto bytes = encode_frame(f);
  bytes[5] ^= 0x40;  // flip a payload bit
  FrameDecoder dec;
  EXPECT_TRUE(dec.feed(bytes).empty());
  EXPECT_EQ(dec.crc_errors(), 1u);
}

TEST(Uart, ResynchronisesAfterGarbage) {
  FrameDecoder dec;
  // Garbage, then a valid frame.
  std::vector<std::uint8_t> bytes{0x00, 0x13, 0x37};
  Frame f;
  f.type = FrameType::kControl;
  f.payload = {0x42};
  const auto good = encode_frame(f);
  bytes.insert(bytes.end(), good.begin(), good.end());
  const auto frames = dec.feed(bytes);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(dec.sync_errors(), 3u);
  EXPECT_EQ(frames[0].payload[0], 0x42);
}

TEST(Uart, TraceFrameWordRoundTrip) {
  Xoshiro256 rng(1);
  std::vector<std::uint64_t> words;
  for (int i = 0; i < 17; ++i) words.push_back(rng.next());
  const Frame f = make_trace_frame(words);
  EXPECT_EQ(f.payload.size(), 17u * 8u);
  EXPECT_EQ(parse_trace_frame(f), words);
}

TEST(Uart, ParseTraceValidation) {
  Frame f;
  f.type = FrameType::kControl;
  EXPECT_THROW(parse_trace_frame(f), slm::Error);
  f.type = FrameType::kTrace;
  f.payload = {1, 2, 3};  // not a multiple of 8
  EXPECT_THROW(parse_trace_frame(f), slm::Error);
}

TEST(Uart, Crc8KnownValue) {
  // CRC-8/ATM ("123456789") = 0xF4.
  const std::vector<std::uint8_t> msg{'1', '2', '3', '4', '5',
                                      '6', '7', '8', '9'};
  EXPECT_EQ(crc8(msg), 0xF4);
}

}  // namespace
}  // namespace slm::fpga
