#include "fpga/clocking.hpp"

#include <gtest/gtest.h>

namespace slm::fpga {
namespace {

class PaperClocks : public ::testing::TestWithParam<double> {};

TEST_P(PaperClocks, Synthesisable) {
  Mmcm mmcm;
  const double target = GetParam();
  const auto setting = mmcm.find_setting(target);
  ASSERT_TRUE(setting.has_value()) << target << " MHz";
  EXPECT_NEAR(setting->f_out_mhz, target, 0.01);
  // Derived frequency must be exactly ref * m / (d * o).
  const double f = 125.0 * setting->m / (setting->d * setting->o);
  EXPECT_DOUBLE_EQ(setting->f_out_mhz, f);
  // VCO inside its legal range.
  EXPECT_GE(setting->vco_mhz, 600.0);
  EXPECT_LE(setting->vco_mhz, 1200.0);
}

// Every clock the paper's setup needs, from the 125 MHz reference.
INSTANTIATE_TEST_SUITE_P(Setup, PaperClocks,
                         ::testing::Values(50.0, 100.0, 150.0, 300.0));

TEST(Mmcm, TheOverclockRaisesNoStructuralFlag) {
  // The attack's point: requesting 300 MHz for a "50 MHz" circuit is a
  // perfectly ordinary MMCM configuration.
  Mmcm mmcm;
  EXPECT_TRUE(mmcm.can_generate(300.0));
}

TEST(Mmcm, ImpossibleFrequencyRejected) {
  Mmcm mmcm;
  EXPECT_FALSE(mmcm.can_generate(1150.7, 1e-6));
  EXPECT_FALSE(mmcm.find_setting(2500.0).has_value());  // above VCO max
}

TEST(Mmcm, PrefersLowerError) {
  Mmcm mmcm;
  const auto s = mmcm.find_setting(333.0, 5.0);
  ASSERT_TRUE(s.has_value());
  // 1000/3 = 333.33 (m=16,d=2,o=3) is within 0.34 MHz.
  EXPECT_LE(s->error_mhz, 0.34);
}

TEST(Mmcm, CustomConstraints) {
  MmcmConstraints c;
  c.ref_mhz = 100.0;
  c.m_min = 6;
  c.m_max = 12;
  Mmcm mmcm(c);
  const auto s = mmcm.find_setting(200.0);
  ASSERT_TRUE(s.has_value());
  EXPECT_GE(s->m, 6);
  EXPECT_LE(s->m, 12);
}

}  // namespace
}  // namespace slm::fpga
