// Distributed campaign fabric: shard workers must be bit-identical to
// the serial engine for EVERY split of the trace range, merges must be
// order-invariant, and every corrupted/mismatched/overlapping snapshot
// must fail loudly with its own error class — the acceptance battery of
// docs/DISTRIBUTED.md (the multi-process half lives in
// tools/fabric_smoke.cmake).
#include "core/fabric.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/campaign.hpp"
#include "core/checkpoint.hpp"
#include "core/setup.hpp"
#include "sca/cpa.hpp"

namespace slm::core {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

CampaignConfig small_cfg(SensorMode mode, std::size_t traces) {
  CampaignConfig cfg;
  cfg.mode = mode;
  cfg.traces = traces;
  cfg.checkpoints = {100, 200, 350, traces};
  cfg.selection_traces = 300;
  cfg.rng_contract = RngContract::kV2;
  return cfg;
}

/// Run one fabric worker over `range` with its own fresh platform (a
/// worker process in miniature) and return the final snapshot.
AccumulatorSnapshot run_worker(const CampaignConfig& cfg, bool fullkey,
                               TraceRange range, const std::string& path,
                               std::uint64_t snapshot_every = 0) {
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  FabricWorker worker(setup, cfg, fullkey);
  FabricJob job;
  job.range = range;
  job.snapshot_out = path;
  job.snapshot_every = snapshot_every;
  return worker.run(job);
}

std::vector<std::uint8_t> file_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(is),
                                   std::istreambuf_iterator<char>());
}

TEST(PlanShardsTest, PartitionsEveryBudget) {
  for (const std::uint64_t total : {0ull, 1ull, 7ull, 100ull, 1001ull}) {
    for (const unsigned shards : {1u, 2u, 3u, 4u, 9u}) {
      const auto ranges = plan_shards(total, shards);
      ASSERT_EQ(ranges.size(), shards);
      std::uint64_t cursor = 0;
      for (const TraceRange& r : ranges) {
        EXPECT_EQ(r.begin, cursor);
        EXPECT_LE(r.begin, r.end);
        cursor = r.end;
      }
      EXPECT_EQ(cursor, total);
    }
  }
  EXPECT_THROW(plan_shards(10, 0), Error);
}

TEST(RangeLedgerTest, OverlapGapsAndCoalescing) {
  RangeLedger ledger(1000);
  ledger.cover({0, 100});
  ledger.cover({300, 500});
  EXPECT_FALSE(ledger.complete());
  EXPECT_EQ(ledger.covered(), 300u);

  const auto gaps = ledger.missing();
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_EQ(gaps[0], (TraceRange{100, 300}));
  EXPECT_EQ(gaps[1], (TraceRange{500, 1000}));

  // Any overlap is a double-count and must throw, partial or exact.
  EXPECT_THROW(ledger.cover({0, 100}), SnapshotRangeError);
  EXPECT_THROW(ledger.cover({50, 150}), SnapshotRangeError);
  EXPECT_THROW(ledger.cover({250, 301}), SnapshotRangeError);
  EXPECT_THROW(ledger.cover({499, 500}), SnapshotRangeError);
  // Empty and out-of-bounds ranges are ledger violations too.
  EXPECT_THROW(ledger.cover({100, 100}), SnapshotRangeError);
  EXPECT_THROW(ledger.cover({990, 1001}), SnapshotRangeError);

  // Filling the gaps coalesces to one canonical range.
  ledger.cover({100, 300});
  ledger.cover({500, 1000});
  EXPECT_TRUE(ledger.complete());
  ASSERT_EQ(ledger.ranges().size(), 1u);
  EXPECT_EQ(ledger.ranges()[0], (TraceRange{0, 1000}));
  EXPECT_TRUE(ledger.missing().empty());
}

TEST(SnapshotIoTest, RoundTripAndNegativePaths) {
  const std::string dir = fresh_dir("fabric_io");
  const CampaignConfig cfg = small_cfg(SensorMode::kTdcFull, 400);
  const std::string path = dir + "/w.snap";
  const AccumulatorSnapshot written =
      run_worker(cfg, /*fullkey=*/false, {0, 400}, path);

  const AccumulatorSnapshot loaded = load_snapshot(path);
  EXPECT_TRUE(loaded.id == written.id);
  EXPECT_EQ(loaded.ranges, written.ranges);
  EXPECT_EQ(loaded.accumulator, written.accumulator);
  EXPECT_EQ(loaded.source, path);

  // Missing file: clean SnapshotFormatError, not a generic I/O failure.
  EXPECT_THROW(load_snapshot(dir + "/absent.snap"), SnapshotFormatError);

  // Truncation anywhere in the file must be detected.
  const std::vector<std::uint8_t> bytes = file_bytes(path);
  {
    std::ofstream os(dir + "/trunc.snap", std::ios::binary);
    os.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_THROW(load_snapshot(dir + "/trunc.snap"), SnapshotFormatError);

  // A single flipped payload byte must fail the CRC.
  std::vector<std::uint8_t> corrupt = bytes;
  corrupt[corrupt.size() - 3] ^= 0x40;
  {
    std::ofstream os(dir + "/crc.snap", std::ios::binary);
    os.write(reinterpret_cast<const char*>(corrupt.data()),
             static_cast<std::streamsize>(corrupt.size()));
  }
  EXPECT_THROW(load_snapshot(dir + "/crc.snap"), SnapshotFormatError);

  // Wrong magic: a checkpoint-style file is not a snapshot.
  std::vector<std::uint8_t> foreign = bytes;
  foreign[0] ^= 0xff;
  {
    std::ofstream os(dir + "/magic.snap", std::ios::binary);
    os.write(reinterpret_cast<const char*>(foreign.data()),
             static_cast<std::streamsize>(foreign.size()));
  }
  EXPECT_THROW(load_snapshot(dir + "/magic.snap"), SnapshotFormatError);
}

TEST(SnapshotIoTest, OverlappingRangesInOneFileAreRejected) {
  const std::string dir = fresh_dir("fabric_io_overlap");
  const CampaignConfig cfg = small_cfg(SensorMode::kTdcFull, 400);
  AccumulatorSnapshot snap =
      run_worker(cfg, false, {0, 200}, dir + "/ok.snap");
  // A structurally valid file claiming overlapping coverage must fail as
  // a range violation (double-count), not as corruption.
  snap.ranges = {{0, 200}, {100, 300}};
  save_snapshot(dir + "/overlap.snap", snap);
  EXPECT_THROW(load_snapshot(dir + "/overlap.snap"), SnapshotRangeError);
}

// THE tentpole property: for randomized shard counts, split points, and
// block sizes, merging the shard snapshots (in random order) is
// bit-identical to the serial engine — same accumulator bytes as the
// full-range worker and the exact final correlation vector of
// CpaCampaign::run().
TEST(FabricMergeTest, RandomSplitsMatchSerialTdc) {
  const std::string dir = fresh_dir("fabric_splits");
  const std::size_t traces = 600;
  CampaignConfig cfg = small_cfg(SensorMode::kTdcFull, traces);

  CampaignResult serial;
  {
    AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
    serial = CpaCampaign(setup, cfg).run();
  }
  const AccumulatorSnapshot whole =
      run_worker(cfg, false, {0, traces}, dir + "/whole.snap");

  std::mt19937_64 rng(0x5eed5eed);
  for (int round = 0; round < 4; ++round) {
    // Random contiguous split into 1..4 parts with random block sizes.
    const unsigned parts_n = 1 + static_cast<unsigned>(rng() % 4);
    std::vector<std::uint64_t> cuts{0, traces};
    for (unsigned i = 1; i < parts_n; ++i) {
      cuts.push_back(1 + rng() % (traces - 1));
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

    std::vector<AccumulatorSnapshot> snaps;
    for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
      CampaignConfig wcfg = cfg;
      wcfg.block = (rng() % 2 == 0) ? 1 : 48;  // per-trace vs blocked
      snaps.push_back(run_worker(
          wcfg, false, {cuts[i], cuts[i + 1]},
          dir + "/r" + std::to_string(round) + "_" + std::to_string(i) +
              ".snap"));
    }
    std::shuffle(snaps.begin(), snaps.end(), rng);

    const AccumulatorSnapshot merged = merge_snapshots(snaps);
    EXPECT_TRUE(merged.id == whole.id);
    ASSERT_EQ(merged.ranges.size(), 1u);
    EXPECT_EQ(merged.ranges[0], (TraceRange{0, traces}));
    EXPECT_EQ(merged.accumulator, whole.accumulator)
        << "split round " << round << " not bit-identical";

    const sca::CpaEngine folded =
        fold_snapshot_byte(merged, cfg.target_key_byte);
    EXPECT_EQ(folded.trace_count(), serial.traces_run);
    EXPECT_EQ(folded.max_abs_correlation(), serial.final_max_abs_corr);
    EXPECT_EQ(folded.best_guess(), serial.recovered_guess);
  }
}

TEST(FabricMergeTest, BenignHwSplitMatchesSerial) {
  const std::string dir = fresh_dir("fabric_hw");
  const std::size_t traces = 500;
  const CampaignConfig cfg = small_cfg(SensorMode::kBenignHw, traces);

  CampaignResult serial;
  {
    AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
    serial = CpaCampaign(setup, cfg).run();
  }
  const std::vector<TraceRange> shards = plan_shards(traces, 3);
  std::vector<AccumulatorSnapshot> snaps;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    snaps.push_back(run_worker(cfg, false, shards[i],
                               dir + "/s" + std::to_string(i) + ".snap"));
  }
  const sca::CpaEngine folded = fold_snapshot_byte(
      merge_snapshots(snaps), cfg.target_key_byte);
  EXPECT_EQ(folded.max_abs_correlation(), serial.final_max_abs_corr);
  EXPECT_EQ(folded.best_guess(), serial.recovered_guess);
}

TEST(FabricMergeTest, OrderInvariant) {
  const std::string dir = fresh_dir("fabric_order");
  const std::size_t traces = 450;
  const CampaignConfig cfg = small_cfg(SensorMode::kTdcFull, traces);
  std::vector<AccumulatorSnapshot> snaps;
  const std::vector<TraceRange> shards = plan_shards(traces, 3);
  for (std::size_t i = 0; i < shards.size(); ++i) {
    snaps.push_back(run_worker(cfg, false, shards[i],
                               dir + "/s" + std::to_string(i) + ".snap"));
  }
  std::vector<std::size_t> perm{0, 1, 2};
  const AccumulatorSnapshot reference = merge_snapshots(snaps);
  do {
    std::vector<AccumulatorSnapshot> shuffled;
    for (const std::size_t i : perm) shuffled.push_back(snaps[i]);
    const AccumulatorSnapshot merged = merge_snapshots(shuffled);
    EXPECT_EQ(merged.accumulator, reference.accumulator);
    EXPECT_EQ(merged.ranges, reference.ranges);
  } while (std::next_permutation(perm.begin(), perm.end()));
}

TEST(FabricMergeTest, MismatchedAndOverlappingPartsAreRejected) {
  const std::string dir = fresh_dir("fabric_mismatch");
  const CampaignConfig cfg = small_cfg(SensorMode::kTdcFull, 400);
  const AccumulatorSnapshot a =
      run_worker(cfg, false, {0, 200}, dir + "/a.snap");
  const AccumulatorSnapshot b =
      run_worker(cfg, false, {200, 400}, dir + "/b.snap");

  // Different seed — a different campaign entirely.
  CampaignConfig other = cfg;
  other.seed ^= 1;
  const AccumulatorSnapshot alien =
      run_worker(other, false, {200, 400}, dir + "/alien.snap");
  EXPECT_THROW(merge_snapshots({a, alien}), SnapshotMismatch);

  // Different sensor mode under the same seed.
  CampaignConfig tdcbit = cfg;
  tdcbit.mode = SensorMode::kTdcSingleBit;
  tdcbit.single_bit = 3;
  const AccumulatorSnapshot wrong_mode =
      run_worker(tdcbit, false, {200, 400}, dir + "/mode.snap");
  EXPECT_THROW(merge_snapshots({a, wrong_mode}), SnapshotMismatch);

  // The same snapshot twice is an overlap, never a silent double-count.
  EXPECT_THROW(merge_snapshots({a, b, a}), SnapshotRangeError);

  // Gaps are fine for plain merges (a coordinator merges partial work).
  const AccumulatorSnapshot partial = merge_snapshots({a});
  EXPECT_EQ(partial.ranges, (std::vector<TraceRange>{{0, 200}}));
  EXPECT_THROW(merge_snapshots({}), Error);
}

TEST(FabricFullKeyTest, SplitMatchesSerialFullKey) {
  const std::string dir = fresh_dir("fabric_fullkey");
  const std::size_t traces = 400;
  CampaignConfig cfg = small_cfg(SensorMode::kTdcFull, traces);

  FullKeyRunResult serial;
  {
    AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
    FullKeyConfig fk;
    fk.early_exit = false;  // report every byte at the full budget
    serial = CpaCampaign(setup, cfg).run_fullkey(fk);
  }

  const AccumulatorSnapshot whole =
      run_worker(cfg, /*fullkey=*/true, {0, traces}, dir + "/whole.snap");
  std::vector<AccumulatorSnapshot> snaps;
  snaps.push_back(run_worker(cfg, true, {0, 170}, dir + "/s0.snap"));
  snaps.push_back(run_worker(cfg, true, {170, traces}, dir + "/s1.snap"));
  const AccumulatorSnapshot merged = merge_snapshots({snaps[1], snaps[0]});
  EXPECT_EQ(merged.accumulator, whole.accumulator);

  for (std::size_t j = 0; j < sca::MultiByteCpa::kBytes; ++j) {
    const sca::CpaEngine folded = fold_snapshot_byte(merged, j);
    EXPECT_EQ(folded.max_abs_correlation(),
              serial.bytes[j].final_max_abs_corr)
        << "byte " << j;
    EXPECT_EQ(static_cast<std::uint8_t>(folded.best_guess()),
              serial.bytes[j].recovered)
        << "byte " << j;
  }
  // Single-byte and full-key snapshots never merge.
  const AccumulatorSnapshot single =
      run_worker(cfg, false, {0, 170}, dir + "/single.snap");
  EXPECT_THROW(merge_snapshots({snaps[1], single}), SnapshotMismatch);
}

TEST(FabricWorkerTest, IntermediateSnapshotsHaltAndResumeBitExact) {
  const std::string dir = fresh_dir("fabric_halt");
  const std::size_t traces = 450;
  const CampaignConfig cfg = small_cfg(SensorMode::kTdcFull, traces);
  const AccumulatorSnapshot whole =
      run_worker(cfg, false, {0, traces}, dir + "/whole.snap");

  // A worker killed 300 traces into its range leaves a snapshot that
  // covers exactly the prefix [0, 300) — the reissue unit.
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  FabricWorker worker(setup, cfg, false);
  FabricJob job;
  job.range = {0, traces};
  job.snapshot_out = dir + "/killed.snap";
  job.snapshot_every = 150;
  job.halt_after = 300;
  EXPECT_THROW(worker.run(job), CampaignHalted);
  const AccumulatorSnapshot killed = load_snapshot(dir + "/killed.snap");
  EXPECT_EQ(killed.ranges, (std::vector<TraceRange>{{0, 300}}));

  // A fresh worker over exactly the missing range completes the merge
  // bit-identically to the uninterrupted full-range capture.
  const AccumulatorSnapshot rest =
      run_worker(cfg, false, {300, traces}, dir + "/rest.snap");
  const AccumulatorSnapshot merged = merge_snapshots({killed, rest});
  EXPECT_EQ(merged.accumulator, whole.accumulator);
  EXPECT_EQ(merged.ranges, (std::vector<TraceRange>{{0, traces}}));
}

TEST(FabricWorkerTest, RejectsContractV1AndBadRanges) {
  CampaignConfig cfg = small_cfg(SensorMode::kTdcFull, 400);
  cfg.rng_contract = RngContract::kV1;
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  FabricWorker v1(setup, cfg, false);
  EXPECT_THROW(v1.identity(), Error);

  cfg.rng_contract = RngContract::kV2;
  AttackSetup setup2(BenignCircuit::kAlu, Calibration::paper_defaults());
  FabricWorker worker(setup2, cfg, false);
  FabricJob job;
  job.snapshot_out = ::testing::TempDir() + "bad_range.snap";
  job.range = {100, 100};
  EXPECT_THROW(worker.run(job), SnapshotRangeError);
  job.range = {0, 401};
  EXPECT_THROW(worker.run(job), SnapshotRangeError);
}

TEST(FabricProgressTest, MonotonicPerWorkerView) {
  FabricProgress progress;
  progress.reset(3);
  progress.update(0, 100);
  progress.update(0, 50);  // stale poll result must not move it backwards
  progress.update(2, 400);
  progress.update(7, 999);  // unknown worker index is ignored
  EXPECT_EQ(progress.covered(0), 100u);
  EXPECT_EQ(progress.covered(1), 0u);
  EXPECT_EQ(progress.covered(2), 400u);
  EXPECT_EQ(progress.total_covered(), 500u);
}

}  // namespace
}  // namespace slm::core
