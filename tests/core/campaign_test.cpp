#include "core/campaign.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>

#include "common/error.hpp"
#include "core/parallel.hpp"

namespace slm::core {
namespace {

CampaignConfig small_cfg(SensorMode mode, std::size_t traces) {
  CampaignConfig cfg;
  cfg.mode = mode;
  cfg.traces = traces;
  cfg.selection_traces = 400;
  return cfg;
}

TEST(Campaign, SampleTimesOnSensorGridInsideWindow) {
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  CampaignConfig cfg = small_cfg(SensorMode::kTdcFull, 10);
  cfg.window_start_ns = 400.0;
  cfg.window_end_ns = 460.0;
  CpaCampaign campaign(setup, cfg);
  const auto& times = campaign.sample_times_ns();
  ASSERT_FALSE(times.empty());
  const double ts = setup.calibration().sensor_sample_period_ns();
  for (double t : times) {
    EXPECT_GE(t, 400.0);
    EXPECT_LE(t, 460.0);
    // Each instant sits on the 150 MS/s grid.
    const double k = t / ts;
    EXPECT_NEAR(k, std::round(k), 1e-9);
  }
}

TEST(Campaign, CorrectGuessIsTrueRoundKeyByte) {
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  CampaignConfig cfg = small_cfg(SensorMode::kTdcFull, 100);
  cfg.target_key_byte = 3;
  CpaCampaign campaign(setup, cfg);
  const auto result = campaign.run();
  EXPECT_EQ(result.correct_guess,
            setup.victim().cipher().last_round_key()[3]);
}

TEST(Campaign, ProgressCheckpointsRespectSchedule) {
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  CampaignConfig cfg = small_cfg(SensorMode::kTdcFull, 1000);
  cfg.checkpoints = {100, 500, 1000};
  CpaCampaign campaign(setup, cfg);
  const auto result = campaign.run();
  ASSERT_EQ(result.progress.size(), 3u);
  EXPECT_EQ(result.progress[0].traces, 100u);
  EXPECT_EQ(result.progress[2].traces, 1000u);
  EXPECT_EQ(result.traces_run, 1000u);
  EXPECT_EQ(result.final_max_abs_corr.size(), 256u);
}

TEST(Campaign, TdcRecoversKeyQuickly) {
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  CpaCampaign campaign(setup, small_cfg(SensorMode::kTdcFull, 4000));
  const auto result = campaign.run();
  EXPECT_TRUE(result.key_recovered);
  ASSERT_TRUE(result.mtd.disclosed());
  EXPECT_LE(*result.mtd.traces, 4000u);
}

TEST(Campaign, DeterministicPerSeed) {
  const auto cal = Calibration::paper_defaults();
  auto run_once = [&] {
    AttackSetup setup(BenignCircuit::kAlu, cal);
    CpaCampaign campaign(setup, small_cfg(SensorMode::kTdcFull, 500));
    return campaign.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.final_max_abs_corr, b.final_max_abs_corr);
}

TEST(Campaign, SeedChangesTraces) {
  const auto cal = Calibration::paper_defaults();
  AttackSetup setup(BenignCircuit::kAlu, cal);
  auto cfg = small_cfg(SensorMode::kTdcFull, 500);
  CpaCampaign a(setup, cfg);
  const auto ra = a.run();
  cfg.seed ^= 1;
  CpaCampaign b(setup, cfg);
  const auto rb = b.run();
  EXPECT_NE(ra.final_max_abs_corr, rb.final_max_abs_corr);
}

TEST(Campaign, BitsOfInterestSelectedForHwMode) {
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  CampaignConfig cfg = small_cfg(SensorMode::kBenignHw, 200);
  cfg.selection_traces = 600;
  cfg.selection_min_variance = 0.05;
  CpaCampaign campaign(setup, cfg);
  const auto result = campaign.run();
  EXPECT_FALSE(result.bits_of_interest.empty());
  EXPECT_LT(result.bits_of_interest.size(), setup.sensor_bits());
}

TEST(Campaign, TopKSelectionCaps) {
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  CampaignConfig cfg = small_cfg(SensorMode::kBenignHw, 100);
  cfg.selection_min_variance = 0.01;
  cfg.selection_top_k = 3;
  CpaCampaign campaign(setup, cfg);
  const auto bits = campaign.select_bits_of_interest();
  EXPECT_EQ(bits.size(), 3u);
  EXPECT_TRUE(std::is_sorted(bits.begin(), bits.end()));
}

TEST(Campaign, AutoBitResolvesToSensitiveEndpoint) {
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  CampaignConfig cfg = small_cfg(SensorMode::kBenignSingleBit, 100);
  cfg.single_bit = CampaignConfig::kAutoBit;
  cfg.selection_traces = 600;
  CpaCampaign campaign(setup, cfg);
  (void)campaign.run();
  EXPECT_LT(campaign.resolved_single_bit(), setup.sensor_bits());
}

// The trace-block size only tiles the capture loop — every block size
// (including ones that straddle checkpoints and leave ragged tails) and
// the forced-scalar kernel must reproduce the block=1 per-trace results
// bit for bit, in both the blockable benign-HW mode and the TDC mode
// whose reads stay per-trace inside the block loop.
TEST(Campaign, BlockSizeInvariant) {
  const auto cal = Calibration::paper_defaults();
  for (const SensorMode mode :
       {SensorMode::kBenignHw, SensorMode::kTdcFull}) {
    auto run_once = [&](std::size_t block, bool simd) {
      AttackSetup setup(BenignCircuit::kAlu, cal);
      CampaignConfig cfg = small_cfg(mode, 700);
      cfg.checkpoints = {100, 500, 700};  // 64 and 48 straddle both
      cfg.block = block;
      cfg.simd = simd;
      CpaCampaign campaign(setup, cfg);
      return campaign.run();
    };
    const auto ref = run_once(1, true);
    for (const std::size_t block : {5u, 48u, 64u, 1024u}) {
      for (const bool simd : {true, false}) {
        const auto r = run_once(block, simd);
        EXPECT_EQ(r.block_size, block);
        ASSERT_EQ(r.traces_run, ref.traces_run);
        EXPECT_EQ(r.recovered_guess, ref.recovered_guess);
        ASSERT_EQ(r.final_max_abs_corr, ref.final_max_abs_corr)
            << sensor_mode_name(mode) << " block " << block << " simd "
            << simd;
        ASSERT_EQ(r.progress.size(), ref.progress.size());
        for (std::size_t i = 0; i < r.progress.size(); ++i) {
          EXPECT_EQ(r.progress[i].traces, ref.progress[i].traces);
          EXPECT_EQ(r.progress[i].correct_corr,
                    ref.progress[i].correct_corr);
          EXPECT_EQ(r.progress[i].best_wrong_corr,
                    ref.progress[i].best_wrong_corr);
        }
      }
    }
  }
}

// The v2 determinism contract: the seed alone pins the campaign.
// Results must be bit-identical across ANY thread count, block size,
// and SIMD toggle — including the serial pipelined producer/consumer
// path (threads=1, blocked benign-HW) and the sharded chunked engine.
TEST(Campaign, ThreadAndBlockInvariant) {
  const auto cal = Calibration::paper_defaults();
  auto run_once = [&](SensorMode mode, unsigned threads, std::size_t block,
                      bool simd, bool fence = false) {
    AttackSetup setup(BenignCircuit::kAlu, cal);
    CampaignConfig cfg = small_cfg(mode, 700);
    cfg.checkpoints = {100, 500, 700};
    cfg.rng_contract = RngContract::kV2;
    cfg.block = block;
    cfg.simd = simd;
    if (fence) cfg.fence.random_current_a = 0.02;
    ParallelCampaign campaign(setup, cfg, threads);
    return campaign.run();
  };
  auto expect_same = [](const CampaignResult& r, const CampaignResult& ref,
                        const std::string& what) {
    ASSERT_EQ(r.traces_run, ref.traces_run) << what;
    EXPECT_EQ(r.recovered_guess, ref.recovered_guess) << what;
    ASSERT_EQ(r.final_max_abs_corr, ref.final_max_abs_corr) << what;
    ASSERT_EQ(r.progress.size(), ref.progress.size()) << what;
    for (std::size_t i = 0; i < r.progress.size(); ++i) {
      EXPECT_EQ(r.progress[i].traces, ref.progress[i].traces) << what;
      EXPECT_EQ(r.progress[i].max_abs_corr, ref.progress[i].max_abs_corr)
          << what;
    }
  };
  {
    // Force the serial engine's generate/compute overlap on so the
    // producer/consumer path is inside the grid even on a single-core
    // CI machine (it normally gates on hardware_concurrency).
    ::setenv("SLM_PIPELINE", "1", 1);
    const auto ref = run_once(SensorMode::kBenignHw, 1, 1, true);
    EXPECT_EQ(ref.rng_contract, RngContract::kV2);
    for (const unsigned threads : {1u, 2u, 4u}) {
      for (const std::size_t block : {1u, 48u, 64u}) {
        const auto r = run_once(SensorMode::kBenignHw, threads, block, true);
        expect_same(r, ref,
                    "hw threads " + std::to_string(threads) + " block " +
                        std::to_string(block));
      }
    }
    // The SIMD toggle is also inside the contract.
    expect_same(run_once(SensorMode::kBenignHw, 3, 64, false), ref,
                "hw scalar");
    // The pipeline gate itself must be bit-neutral: overlapped and
    // non-overlapped serial runs produce the same accumulators.
    ::setenv("SLM_PIPELINE", "0", 1);
    expect_same(run_once(SensorMode::kBenignHw, 1, 64, true), ref,
                "hw pipeline off");
    ::unsetenv("SLM_PIPELINE");
  }
  {
    // With the active fence on, the fence's per-trace streams are part
    // of the contract too — across the pipelined producer, the
    // non-pipelined blocked path, and the sharded engine.
    ::setenv("SLM_PIPELINE", "1", 1);
    const auto ref = run_once(SensorMode::kBenignHw, 1, 1, true, true);
    expect_same(run_once(SensorMode::kBenignHw, 1, 64, true, true), ref,
                "fenced hw pipelined block 64");
    expect_same(run_once(SensorMode::kBenignHw, 3, 48, true, true), ref,
                "fenced hw threads 3 block 48");
    ::setenv("SLM_PIPELINE", "0", 1);
    expect_same(run_once(SensorMode::kBenignHw, 1, 64, true, true), ref,
                "fenced hw pipeline off");
    ::unsetenv("SLM_PIPELINE");
  }
  {
    const auto ref = run_once(SensorMode::kTdcFull, 1, 1, true);
    for (const unsigned threads : {2u, 4u}) {
      expect_same(run_once(SensorMode::kTdcFull, threads, 64, true), ref,
                  "tdc threads " + std::to_string(threads));
    }
  }
}

TEST(Campaign, ContractResolution) {
  // Explicit requests win unconditionally.
  EXPECT_EQ(resolve_contract(RngContract::kV1), RngContract::kV1);
  EXPECT_EQ(resolve_contract(RngContract::kV2), RngContract::kV2);
  // kDefault consults SLM_RNG_CONTRACT, else picks v2.
  const char* saved = std::getenv("SLM_RNG_CONTRACT");
  const std::string saved_s = saved != nullptr ? saved : "";
  ::setenv("SLM_RNG_CONTRACT", "v1", 1);
  EXPECT_EQ(resolve_contract(RngContract::kDefault), RngContract::kV1);
  EXPECT_EQ(resolve_contract(RngContract::kV2), RngContract::kV2);
  ::setenv("SLM_RNG_CONTRACT", "2", 1);
  EXPECT_EQ(resolve_contract(RngContract::kDefault), RngContract::kV2);
  ::setenv("SLM_RNG_CONTRACT", "bogus", 1);
  EXPECT_THROW((void)resolve_contract(RngContract::kDefault), slm::Error);
  ::unsetenv("SLM_RNG_CONTRACT");
  EXPECT_EQ(resolve_contract(RngContract::kDefault), RngContract::kV2);
  if (saved != nullptr) ::setenv("SLM_RNG_CONTRACT", saved_s.c_str(), 1);
  EXPECT_STREQ(rng_contract_name(RngContract::kV1), "v1");
  EXPECT_STREQ(rng_contract_name(RngContract::kV2), "v2");
}

// v1 and v2 draw different randomness for the same seed, so their
// results must differ bitwise while agreeing on the recovered byte.
TEST(Campaign, ContractsDifferBitwiseAgreePhysically) {
  const auto cal = Calibration::paper_defaults();
  auto run_once = [&](RngContract contract) {
    AttackSetup setup(BenignCircuit::kAlu, cal);
    CampaignConfig cfg = small_cfg(SensorMode::kTdcFull, 4000);
    cfg.rng_contract = contract;
    CpaCampaign campaign(setup, cfg);
    return campaign.run();
  };
  const auto v1 = run_once(RngContract::kV1);
  const auto v2 = run_once(RngContract::kV2);
  EXPECT_EQ(v1.rng_contract, RngContract::kV1);
  EXPECT_EQ(v2.rng_contract, RngContract::kV2);
  EXPECT_NE(v1.final_max_abs_corr, v2.final_max_abs_corr);
  EXPECT_TRUE(v1.key_recovered);
  EXPECT_TRUE(v2.key_recovered);
  EXPECT_EQ(v1.recovered_guess, v2.recovered_guess);
}

TEST(Campaign, BlockResolutionPrecedence) {
  // Explicit request wins; 0 falls back to the default (the SLM_BLOCK
  // env override is exercised by the CLI smoke, not here, to keep the
  // test environment-independent).
  EXPECT_EQ(resolve_block(7), 7u);
  if (std::getenv("SLM_BLOCK") == nullptr) {
    EXPECT_EQ(resolve_block(0), kDefaultBlockTraces);
  }
  EXPECT_FALSE(resolve_simd(false));
}

TEST(Campaign, ResultReportsEffectiveBlock) {
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  CampaignConfig cfg = small_cfg(SensorMode::kTdcFull, 50);
  cfg.block = 5;
  CpaCampaign campaign(setup, cfg);
  EXPECT_EQ(campaign.run().block_size, 5u);
}

TEST(Campaign, Validation) {
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  CampaignConfig cfg = small_cfg(SensorMode::kTdcFull, 0);
  EXPECT_THROW(CpaCampaign campaign(setup, cfg), slm::Error);
  cfg = small_cfg(SensorMode::kTdcFull, 10);
  cfg.window_start_ns = 100.0;
  cfg.window_end_ns = 50.0;
  EXPECT_THROW(CpaCampaign campaign(setup, cfg), slm::Error);
  cfg = small_cfg(SensorMode::kBenignSingleBit, 10);
  cfg.single_bit = 9999;
  CpaCampaign campaign(setup, cfg);
  EXPECT_THROW((void)campaign.run(), slm::Error);
}

TEST(DefaultCheckpoints, CoverAndTerminate) {
  const auto cps = default_checkpoints(500000);
  ASSERT_FALSE(cps.empty());
  EXPECT_EQ(cps.back(), 500000u);
  EXPECT_TRUE(std::is_sorted(cps.begin(), cps.end()));
  const auto small = default_checkpoints(50);
  ASSERT_EQ(small.back(), 50u);
}

TEST(SensorModeNames, AllDistinct) {
  EXPECT_STREQ(sensor_mode_name(SensorMode::kTdcFull), "tdc-full");
  EXPECT_STREQ(sensor_mode_name(SensorMode::kBenignHw), "benign-hw");
  EXPECT_STREQ(sensor_mode_name(SensorMode::kBenignSingleBit),
               "benign-single-bit");
}

}  // namespace
}  // namespace slm::core
