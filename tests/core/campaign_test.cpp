#include "core/campaign.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "common/error.hpp"

namespace slm::core {
namespace {

CampaignConfig small_cfg(SensorMode mode, std::size_t traces) {
  CampaignConfig cfg;
  cfg.mode = mode;
  cfg.traces = traces;
  cfg.selection_traces = 400;
  return cfg;
}

TEST(Campaign, SampleTimesOnSensorGridInsideWindow) {
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  CampaignConfig cfg = small_cfg(SensorMode::kTdcFull, 10);
  cfg.window_start_ns = 400.0;
  cfg.window_end_ns = 460.0;
  CpaCampaign campaign(setup, cfg);
  const auto& times = campaign.sample_times_ns();
  ASSERT_FALSE(times.empty());
  const double ts = setup.calibration().sensor_sample_period_ns();
  for (double t : times) {
    EXPECT_GE(t, 400.0);
    EXPECT_LE(t, 460.0);
    // Each instant sits on the 150 MS/s grid.
    const double k = t / ts;
    EXPECT_NEAR(k, std::round(k), 1e-9);
  }
}

TEST(Campaign, CorrectGuessIsTrueRoundKeyByte) {
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  CampaignConfig cfg = small_cfg(SensorMode::kTdcFull, 100);
  cfg.target_key_byte = 3;
  CpaCampaign campaign(setup, cfg);
  const auto result = campaign.run();
  EXPECT_EQ(result.correct_guess,
            setup.victim().cipher().last_round_key()[3]);
}

TEST(Campaign, ProgressCheckpointsRespectSchedule) {
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  CampaignConfig cfg = small_cfg(SensorMode::kTdcFull, 1000);
  cfg.checkpoints = {100, 500, 1000};
  CpaCampaign campaign(setup, cfg);
  const auto result = campaign.run();
  ASSERT_EQ(result.progress.size(), 3u);
  EXPECT_EQ(result.progress[0].traces, 100u);
  EXPECT_EQ(result.progress[2].traces, 1000u);
  EXPECT_EQ(result.traces_run, 1000u);
  EXPECT_EQ(result.final_max_abs_corr.size(), 256u);
}

TEST(Campaign, TdcRecoversKeyQuickly) {
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  CpaCampaign campaign(setup, small_cfg(SensorMode::kTdcFull, 4000));
  const auto result = campaign.run();
  EXPECT_TRUE(result.key_recovered);
  ASSERT_TRUE(result.mtd.disclosed());
  EXPECT_LE(*result.mtd.traces, 4000u);
}

TEST(Campaign, DeterministicPerSeed) {
  const auto cal = Calibration::paper_defaults();
  auto run_once = [&] {
    AttackSetup setup(BenignCircuit::kAlu, cal);
    CpaCampaign campaign(setup, small_cfg(SensorMode::kTdcFull, 500));
    return campaign.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.final_max_abs_corr, b.final_max_abs_corr);
}

TEST(Campaign, SeedChangesTraces) {
  const auto cal = Calibration::paper_defaults();
  AttackSetup setup(BenignCircuit::kAlu, cal);
  auto cfg = small_cfg(SensorMode::kTdcFull, 500);
  CpaCampaign a(setup, cfg);
  const auto ra = a.run();
  cfg.seed ^= 1;
  CpaCampaign b(setup, cfg);
  const auto rb = b.run();
  EXPECT_NE(ra.final_max_abs_corr, rb.final_max_abs_corr);
}

TEST(Campaign, BitsOfInterestSelectedForHwMode) {
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  CampaignConfig cfg = small_cfg(SensorMode::kBenignHw, 200);
  cfg.selection_traces = 600;
  cfg.selection_min_variance = 0.05;
  CpaCampaign campaign(setup, cfg);
  const auto result = campaign.run();
  EXPECT_FALSE(result.bits_of_interest.empty());
  EXPECT_LT(result.bits_of_interest.size(), setup.sensor_bits());
}

TEST(Campaign, TopKSelectionCaps) {
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  CampaignConfig cfg = small_cfg(SensorMode::kBenignHw, 100);
  cfg.selection_min_variance = 0.01;
  cfg.selection_top_k = 3;
  CpaCampaign campaign(setup, cfg);
  const auto bits = campaign.select_bits_of_interest();
  EXPECT_EQ(bits.size(), 3u);
  EXPECT_TRUE(std::is_sorted(bits.begin(), bits.end()));
}

TEST(Campaign, AutoBitResolvesToSensitiveEndpoint) {
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  CampaignConfig cfg = small_cfg(SensorMode::kBenignSingleBit, 100);
  cfg.single_bit = CampaignConfig::kAutoBit;
  cfg.selection_traces = 600;
  CpaCampaign campaign(setup, cfg);
  (void)campaign.run();
  EXPECT_LT(campaign.resolved_single_bit(), setup.sensor_bits());
}

// The trace-block size only tiles the capture loop — every block size
// (including ones that straddle checkpoints and leave ragged tails) and
// the forced-scalar kernel must reproduce the block=1 per-trace results
// bit for bit, in both the blockable benign-HW mode and the TDC mode
// whose reads stay per-trace inside the block loop.
TEST(Campaign, BlockSizeInvariant) {
  const auto cal = Calibration::paper_defaults();
  for (const SensorMode mode :
       {SensorMode::kBenignHw, SensorMode::kTdcFull}) {
    auto run_once = [&](std::size_t block, bool simd) {
      AttackSetup setup(BenignCircuit::kAlu, cal);
      CampaignConfig cfg = small_cfg(mode, 700);
      cfg.checkpoints = {100, 500, 700};  // 64 and 48 straddle both
      cfg.block = block;
      cfg.simd = simd;
      CpaCampaign campaign(setup, cfg);
      return campaign.run();
    };
    const auto ref = run_once(1, true);
    for (const std::size_t block : {5u, 48u, 64u, 1024u}) {
      for (const bool simd : {true, false}) {
        const auto r = run_once(block, simd);
        EXPECT_EQ(r.block_size, block);
        ASSERT_EQ(r.traces_run, ref.traces_run);
        EXPECT_EQ(r.recovered_guess, ref.recovered_guess);
        ASSERT_EQ(r.final_max_abs_corr, ref.final_max_abs_corr)
            << sensor_mode_name(mode) << " block " << block << " simd "
            << simd;
        ASSERT_EQ(r.progress.size(), ref.progress.size());
        for (std::size_t i = 0; i < r.progress.size(); ++i) {
          EXPECT_EQ(r.progress[i].traces, ref.progress[i].traces);
          EXPECT_EQ(r.progress[i].correct_corr,
                    ref.progress[i].correct_corr);
          EXPECT_EQ(r.progress[i].best_wrong_corr,
                    ref.progress[i].best_wrong_corr);
        }
      }
    }
  }
}

TEST(Campaign, BlockResolutionPrecedence) {
  // Explicit request wins; 0 falls back to the default (the SLM_BLOCK
  // env override is exercised by the CLI smoke, not here, to keep the
  // test environment-independent).
  EXPECT_EQ(resolve_block(7), 7u);
  if (std::getenv("SLM_BLOCK") == nullptr) {
    EXPECT_EQ(resolve_block(0), kDefaultBlockTraces);
  }
  EXPECT_FALSE(resolve_simd(false));
}

TEST(Campaign, ResultReportsEffectiveBlock) {
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  CampaignConfig cfg = small_cfg(SensorMode::kTdcFull, 50);
  cfg.block = 5;
  CpaCampaign campaign(setup, cfg);
  EXPECT_EQ(campaign.run().block_size, 5u);
}

TEST(Campaign, Validation) {
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  CampaignConfig cfg = small_cfg(SensorMode::kTdcFull, 0);
  EXPECT_THROW(CpaCampaign campaign(setup, cfg), slm::Error);
  cfg = small_cfg(SensorMode::kTdcFull, 10);
  cfg.window_start_ns = 100.0;
  cfg.window_end_ns = 50.0;
  EXPECT_THROW(CpaCampaign campaign(setup, cfg), slm::Error);
  cfg = small_cfg(SensorMode::kBenignSingleBit, 10);
  cfg.single_bit = 9999;
  CpaCampaign campaign(setup, cfg);
  EXPECT_THROW((void)campaign.run(), slm::Error);
}

TEST(DefaultCheckpoints, CoverAndTerminate) {
  const auto cps = default_checkpoints(500000);
  ASSERT_FALSE(cps.empty());
  EXPECT_EQ(cps.back(), 500000u);
  EXPECT_TRUE(std::is_sorted(cps.begin(), cps.end()));
  const auto small = default_checkpoints(50);
  ASSERT_EQ(small.back(), 50u);
}

TEST(SensorModeNames, AllDistinct) {
  EXPECT_STREQ(sensor_mode_name(SensorMode::kTdcFull), "tdc-full");
  EXPECT_STREQ(sensor_mode_name(SensorMode::kBenignHw), "benign-hw");
  EXPECT_STREQ(sensor_mode_name(SensorMode::kBenignSingleBit),
               "benign-single-bit");
}

}  // namespace
}  // namespace slm::core
