#include "core/attack.hpp"

#include <gtest/gtest.h>

namespace slm::core {
namespace {

TEST(StealthyAttack, TdcRecoversTargetByte) {
  StealthyAttack attack(BenignCircuit::kAlu);
  const auto report =
      attack.recover_key_byte(3, 4000, SensorMode::kTdcFull);
  EXPECT_EQ(report.key_byte, 3u);
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.recovered, report.true_value);
  EXPECT_EQ(report.true_value,
            attack.setup().victim().cipher().last_round_key()[3]);
}

TEST(StealthyAttack, DifferentBytesGiveDifferentWindows) {
  // Bytes in different state columns leak in different cycles; both must
  // still be recoverable with the fast sensor.
  StealthyAttack attack(BenignCircuit::kAlu);
  const auto reports =
      attack.recover_key_bytes({0, 7}, 4000, SensorMode::kTdcFull);
  ASSERT_EQ(reports.size(), 2u);
  for (const auto& r : reports) {
    EXPECT_TRUE(r.success) << "byte " << r.key_byte;
  }
}

TEST(StealthyAttack, BenignCircuitPassesChecker) {
  for (auto kind : {BenignCircuit::kAlu, BenignCircuit::kC6288x2}) {
    StealthyAttack attack(kind);
    const auto report = attack.check_stealthiness();
    EXPECT_TRUE(report.passed())
        << benign_circuit_name(kind) << ": " << report.summary();
  }
}

TEST(StealthyAttack, StrictTimingCheckWouldCatchIt) {
  StealthyAttack attack(BenignCircuit::kAlu);
  bitstream::CheckerOptions strict;
  strict.operating_clock_period_ns =
      attack.setup().calibration().overclock_period_ns();
  const auto report = attack.check_stealthiness(strict);
  EXPECT_FALSE(report.passed());
  EXPECT_TRUE(report.flagged(bitstream::CheckKind::kStrictTiming));
}

}  // namespace
}  // namespace slm::core
