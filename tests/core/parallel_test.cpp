#include "core/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/error.hpp"
#include "core/attack.hpp"

namespace slm::core {
namespace {

CampaignConfig small_cfg(SensorMode mode, std::size_t traces) {
  CampaignConfig cfg;
  cfg.mode = mode;
  cfg.traces = traces;
  cfg.selection_traces = 400;
  return cfg;
}

TEST(ShardQuota, SumsToTotalAndMonotone) {
  for (std::size_t shards : {1u, 3u, 4u, 7u}) {
    std::vector<std::size_t> prev(shards, 0);
    for (std::size_t total : {0u, 1u, 5u, 99u, 100u, 1234u}) {
      std::size_t sum = 0;
      for (std::size_t i = 0; i < shards; ++i) {
        const std::size_t q = shard_quota(total, i, shards);
        EXPECT_GE(q, prev[i]) << "shard " << i << " total " << total;
        prev[i] = q;
        sum += q;
      }
      EXPECT_EQ(sum, total) << "shards " << shards;
    }
  }
  EXPECT_THROW((void)shard_quota(10, 2, 2), slm::Error);
}

TEST(ThreadPoolTest, RunsEveryIndexAcrossWorkers) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(100);
  for (int round = 0; round < 3; ++round) {
    pool.run_indexed(100, [&](std::size_t i) { ++hits[i]; });
  }
  for (const auto& h : hits) EXPECT_EQ(h.load(), 3);
}

TEST(ThreadPoolTest, RethrowsWorkerException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run_indexed(8,
                                [](std::size_t i) {
                                  if (i == 5) throw slm::Error("boom");
                                }),
               slm::Error);
  // Pool stays usable after an exception.
  std::atomic<int> n{0};
  pool.run_indexed(4, [&](std::size_t) { ++n; });
  EXPECT_EQ(n.load(), 4);
}

TEST(ThreadPoolTest, SubmitAndWaitRunsBatchAsynchronously) {
  ThreadPool pool(2);
  // wait() with nothing in flight is a no-op, not a deadlock.
  pool.wait();
  std::vector<std::atomic<int>> hits(64);
  for (int round = 0; round < 3; ++round) {
    pool.submit_indexed(64, [&](std::size_t i) { ++hits[i]; });
    pool.wait();
  }
  for (const auto& h : hits) EXPECT_EQ(h.load(), 3);
  // The pool still runs synchronous batches afterwards.
  std::atomic<int> n{0};
  pool.run_indexed(8, [&](std::size_t) { ++n; });
  EXPECT_EQ(n.load(), 8);
}

TEST(ThreadPoolTest, WaitRethrowsSubmittedBatchException) {
  ThreadPool pool(2);
  pool.submit_indexed(8, [](std::size_t i) {
    if (i == 3) throw slm::Error("boom");
  });
  EXPECT_THROW(pool.wait(), slm::Error);
  // A second wait() is a no-op (error already consumed) and the pool
  // stays usable.
  pool.wait();
  std::atomic<int> n{0};
  pool.submit_indexed(4, [&](std::size_t) { ++n; });
  pool.wait();
  EXPECT_EQ(n.load(), 4);
}

TEST(ThreadPoolTest, DestructorJoinsInFlightBatch) {
  // The campaign's CampaignHalted unwind destroys the pool while a
  // producer batch may still be running: the destructor must join it
  // (the lambda's captures outlive the pool here by declaration order,
  // mirroring the engine).
  std::atomic<int> n{0};
  {
    ThreadPool pool(1);
    pool.submit_indexed(32, [&](std::size_t) { ++n; });
  }
  EXPECT_EQ(n.load(), 32);
}

TEST(ParallelCampaignTest, ThreadsOneIsBitIdenticalToSerial) {
  const auto cal = Calibration::paper_defaults();
  const auto cfg = small_cfg(SensorMode::kTdcFull, 500);

  AttackSetup serial_setup(BenignCircuit::kAlu, cal);
  CpaCampaign serial(serial_setup, cfg);
  const auto a = serial.run();

  AttackSetup parallel_setup(BenignCircuit::kAlu, cal);
  ParallelCampaign wrapped(parallel_setup, cfg, 1);
  const auto b = wrapped.run();

  EXPECT_EQ(a.final_max_abs_corr, b.final_max_abs_corr);
  EXPECT_EQ(a.recovered_guess, b.recovered_guess);
  ASSERT_EQ(a.progress.size(), b.progress.size());
  for (std::size_t i = 0; i < a.progress.size(); ++i) {
    EXPECT_EQ(a.progress[i].max_abs_corr, b.progress[i].max_abs_corr);
  }
  EXPECT_EQ(b.threads_used, 1u);
}

// TSan-friendly smoke test: 4 workers, small budget, checkpointed.
TEST(ParallelCampaignTest, FourWorkerSmoke) {
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  auto cfg = small_cfg(SensorMode::kTdcFull, 400);
  cfg.checkpoints = {100, 250, 400};
  ParallelCampaign campaign(setup, cfg, 4);
  const auto r = campaign.run();
  EXPECT_EQ(r.threads_used, 4u);
  EXPECT_EQ(r.traces_run, 400u);
  ASSERT_EQ(r.progress.size(), 3u);
  EXPECT_EQ(r.progress[0].traces, 100u);
  EXPECT_EQ(r.progress[1].traces, 250u);
  EXPECT_EQ(r.progress[2].traces, 400u);
  EXPECT_EQ(r.final_max_abs_corr.size(), 256u);
  EXPECT_GT(r.capture_seconds, 0.0);
}

TEST(ParallelCampaignTest, ShardedRecoversKey) {
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  ParallelCampaign campaign(setup, small_cfg(SensorMode::kTdcFull, 4000), 4);
  const auto r = campaign.run();
  EXPECT_TRUE(r.key_recovered);
  ASSERT_TRUE(r.mtd.disclosed());
}

TEST(ParallelCampaignTest, SameSeedSameThreadsIsDeterministic) {
  const auto cal = Calibration::paper_defaults();
  auto run_once = [&] {
    AttackSetup setup(BenignCircuit::kAlu, cal);
    ParallelCampaign campaign(setup, small_cfg(SensorMode::kTdcFull, 600), 3);
    return campaign.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.final_max_abs_corr, b.final_max_abs_corr);
  EXPECT_EQ(a.recovered_guess, b.recovered_guess);
  ASSERT_EQ(a.progress.size(), b.progress.size());
  for (std::size_t i = 0; i < a.progress.size(); ++i) {
    EXPECT_EQ(a.progress[i].traces, b.progress[i].traces);
    EXPECT_EQ(a.progress[i].max_abs_corr, b.progress[i].max_abs_corr);
  }
}

// Pinned legacy behaviour: under contract v1 the shard streams differ
// per thread count, so results are statistically equivalent but NOT
// bitwise equal. (Contract v2 removes exactly this caveat — see
// Campaign.ThreadAndBlockInvariant in campaign_test.cpp.)
TEST(ParallelCampaignTest, V1ThreadCountsAreStatisticallyNotBitwiseEqual) {
  const auto cal = Calibration::paper_defaults();
  auto run_with = [&](unsigned threads) {
    AttackSetup setup(BenignCircuit::kAlu, cal);
    auto cfg = small_cfg(SensorMode::kTdcFull, 2000);
    cfg.rng_contract = RngContract::kV1;
    ParallelCampaign campaign(setup, cfg, threads);
    return campaign.run();
  };
  const auto two = run_with(2);
  const auto three = run_with(3);
  // Different shard streams: bitwise different...
  EXPECT_NE(two.final_max_abs_corr, three.final_max_abs_corr);
  // ...but the physics is the same: both disclose the same key byte.
  EXPECT_TRUE(two.key_recovered);
  EXPECT_TRUE(three.key_recovered);
  EXPECT_EQ(two.recovered_guess, three.recovered_guess);
}

TEST(ParallelCampaignTest, MoreShardsThanTracesClamps) {
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  ParallelCampaign campaign(setup, small_cfg(SensorMode::kTdcFull, 3), 8);
  EXPECT_LE(campaign.threads(), 3u);
  const auto r = campaign.run();
  EXPECT_EQ(r.traces_run, 3u);
}

TEST(StealthyAttackThreads, KeyByteReportDeterministicPerSeedAndThreads) {
  auto run_once = [] {
    StealthyAttack attack(BenignCircuit::kAlu);
    return attack.recover_key_byte(3, 2000, SensorMode::kTdcFull, 2);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.recovered, b.recovered);
  EXPECT_EQ(a.true_value, b.true_value);
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.traces, b.traces);
  EXPECT_EQ(a.mtd.disclosed(), b.mtd.disclosed());
  if (a.mtd.disclosed()) EXPECT_EQ(*a.mtd.traces, *b.mtd.traces);
  EXPECT_EQ(a.threads_used, 2u);
}

TEST(StealthyAttackThreads, ShardedKeyByteRecovery) {
  StealthyAttack attack(BenignCircuit::kAlu);
  const auto r = attack.recover_key_byte(3, 4000, SensorMode::kTdcFull, 4);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.threads_used, 4u);
}

TEST(StealthyAttackThreads, FarmedFullKeyMatchesItself) {
  // The farmed path gives every byte an independent platform replica, so
  // the result is identical for any thread count >= 2 and any schedule.
  auto run_with = [](unsigned threads) {
    StealthyAttack attack(BenignCircuit::kAlu);
    return attack.recover_full_key(600, SensorMode::kTdcFull, threads);
  };
  const auto a = run_with(2);
  const auto b = run_with(4);
  EXPECT_EQ(a.last_round_key, b.last_round_key);
  EXPECT_EQ(a.master_key, b.master_key);
  ASSERT_EQ(a.bytes.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(a.bytes[i].recovered, b.bytes[i].recovered);
  }
}

}  // namespace
}  // namespace slm::core
