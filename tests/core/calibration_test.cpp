#include "core/calibration.hpp"

#include <gtest/gtest.h>

#include "pdn/rlc.hpp"

namespace slm::core {
namespace {

TEST(Calibration, ClocksMatchPaper) {
  const auto cal = Calibration::paper_defaults();
  EXPECT_DOUBLE_EQ(cal.benign_design_mhz, 50.0);
  EXPECT_DOUBLE_EQ(cal.overclock_mhz, 300.0);
  EXPECT_DOUBLE_EQ(cal.aes_clock_mhz, 100.0);
  EXPECT_DOUBLE_EQ(cal.sensor_sample_mhz, 150.0);
  EXPECT_NEAR(cal.overclock_period_ns(), 10.0 / 3.0, 1e-12);
  EXPECT_NEAR(cal.sensor_sample_period_ns(), 20.0 / 3.0, 1e-12);
}

TEST(Calibration, CaptureUsesOverclockPeriod) {
  const auto cal = Calibration::paper_defaults();
  EXPECT_DOUBLE_EQ(cal.capture.clock_period_ns, cal.overclock_period_ns());
}

TEST(Calibration, CircuitsMatchPaperDimensions) {
  const auto cal = Calibration::paper_defaults();
  EXPECT_EQ(cal.alu.width, 192u);
  EXPECT_EQ(cal.c6288.operand_width, 16u);
  EXPECT_EQ(cal.tdc.stages, 64u);
  EXPECT_EQ(cal.ro_grid.ro_count, 8000u);
  EXPECT_DOUBLE_EQ(cal.ro_grid.toggle_freq_mhz, 4.0);
}

TEST(Calibration, TdcIdleDepthMidScale) {
  const auto cal = Calibration::paper_defaults();
  // window / stage delay = 32 at the TDC's reference voltage.
  EXPECT_NEAR(cal.tdc.window_ns / cal.tdc.stage_delay_ns, 32.0, 1e-9);
}

TEST(Calibration, PdnIsUnderdamped) {
  const auto cal = Calibration::paper_defaults();
  pdn::RlcPdn pdn(cal.pdn);
  EXPECT_LT(pdn.damping_ratio(), 1.0);
  EXPECT_GT(pdn.damping_ratio(), 0.1);
  EXPECT_NEAR(pdn.resonance_mhz(), 100.0, 15.0);
}

TEST(Calibration, CouplingsReflectFloorplans) {
  const auto cal = Calibration::paper_defaults();
  // The ALU setup sits farther from the victim than the C6288 setup.
  EXPECT_LT(cal.coupling_for_alu(), cal.coupling_for_c6288());
  EXPECT_LE(cal.coupling_for_c6288(), 1.0);
  EXPECT_GT(cal.coupling_for_alu(), 0.0);
}

TEST(Calibration, AesKeyIsFipsExample) {
  const auto cal = Calibration::paper_defaults();
  EXPECT_EQ(crypto::block_to_hex(cal.aes_key()),
            "2b7e151628aed2a6abf7158809cf4f3c");
}

TEST(Calibration, RoVoltageBandBracketsOperatingPoint) {
  const auto cal = Calibration::paper_defaults();
  pdn::RlcPdn pdn(cal.pdn);
  const double v_idle = pdn.dc_voltage(cal.pdn.idle_current_a);
  EXPECT_LT(cal.ro_v_min, v_idle);
  EXPECT_GT(cal.ro_v_max, v_idle);
}

}  // namespace
}  // namespace slm::core
