#include "core/setup.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "timing/sta.hpp"

namespace slm::core {
namespace {

TEST(AttackSetup, AluDimensions) {
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  EXPECT_EQ(setup.sensor_bits(), 193u);  // 192 result bits + carry out
  EXPECT_EQ(setup.benign_instance_count(), 1u);
  EXPECT_EQ(setup.sensor().instance_count(), 1u);
  EXPECT_STREQ(benign_circuit_name(setup.circuit_kind()), "alu192");
}

TEST(AttackSetup, C6288Dimensions) {
  AttackSetup setup(BenignCircuit::kC6288x2, Calibration::paper_defaults());
  EXPECT_EQ(setup.sensor_bits(), 64u);  // two 32-bit products
  EXPECT_EQ(setup.benign_instance_count(), 2u);
  EXPECT_EQ(setup.sensor().instance_count(), 2u);
}

TEST(AttackSetup, CircuitsCloseTimingAtDesignClockOnly) {
  const auto cal = Calibration::paper_defaults();
  for (auto kind : {BenignCircuit::kAlu, BenignCircuit::kC6288x2}) {
    AttackSetup setup(kind, cal);
    timing::Sta sta(setup.benign_netlist(0));
    const double design_period = 1000.0 / cal.benign_design_mhz;
    EXPECT_LT(sta.critical_delay(), design_period)
        << benign_circuit_name(kind) << " must close 50 MHz timing";
    EXPECT_GT(setup.sensor().instance(0).max_settle_time_ns(),
              cal.overclock_period_ns())
        << benign_circuit_name(kind) << " must miss 300 MHz timing";
  }
}

TEST(AttackSetup, SensitiveEndpointCountsInPaperBand) {
  const auto cal = Calibration::paper_defaults();
  {
    AttackSetup setup(BenignCircuit::kAlu, cal);
    const auto sens = setup.ro_band_sensitive_endpoints();
    // Paper: 79 of 192. Calibrated band: within +-40%.
    EXPECT_GE(sens.size(), 45u);
    EXPECT_LE(sens.size(), 115u);
  }
  {
    AttackSetup setup(BenignCircuit::kC6288x2, cal);
    const auto sens = setup.ro_band_sensitive_endpoints();
    // Paper: 49 of 64.
    EXPECT_GE(sens.size(), 28u);
    EXPECT_LE(sens.size(), 62u);
  }
}

TEST(AttackSetup, C6288InstancesHaveDistinctSkews) {
  AttackSetup setup(BenignCircuit::kC6288x2, Calibration::paper_defaults());
  const auto& a = setup.sensor().instance(0).capture().endpoint_skews();
  const auto& b = setup.sensor().instance(1).capture().endpoint_skews();
  EXPECT_NE(a, b);
}

TEST(AttackSetup, EffectiveCouplingPerCircuit) {
  const auto cal = Calibration::paper_defaults();
  AttackSetup alu(BenignCircuit::kAlu, cal);
  AttackSetup mult(BenignCircuit::kC6288x2, cal);
  EXPECT_DOUBLE_EQ(alu.effective_coupling(), cal.coupling_for_alu());
  EXPECT_DOUBLE_EQ(mult.effective_coupling(), cal.coupling_for_c6288());
}

TEST(AttackSetup, FloorplanRendersBothTenants) {
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  const auto fabric = setup.make_floorplan();
  EXPECT_EQ(fabric.tenant_count(), 2u);
  EXPECT_EQ(fabric.module_count(), 4u);  // benign, TDC, ROs, AES
  const std::string art = fabric.render_ascii();
  for (char c : {'B', 'T', 'R', 'A', '*'}) {
    EXPECT_NE(art.find(c), std::string::npos) << "missing '" << c << "'";
  }
}

TEST(AttackSetup, InstanceIndexValidated) {
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  EXPECT_THROW((void)setup.benign_netlist(1), slm::Error);
}

}  // namespace
}  // namespace slm::core
