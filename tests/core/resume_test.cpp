// Crash-safe checkpoint/resume: kill a campaign at a checkpoint, resume
// it, and require results bit-identical to the uninterrupted run — the
// acceptance criterion of the checkpointing subsystem, for both the
// serial and the sharded campaign and both kernel paths.
#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/binio.hpp"
#include "common/error.hpp"
#include "core/campaign.hpp"
#include "core/parallel.hpp"
#include "core/setup.hpp"

namespace slm::core {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

CampaignConfig small_cfg(SensorMode mode, std::size_t traces) {
  CampaignConfig cfg;
  cfg.mode = mode;
  cfg.traces = traces;
  cfg.checkpoints = {100, 200, 350, traces};
  cfg.selection_traces = 300;
  return cfg;
}

CampaignResult run_serial(const CampaignConfig& cfg) {
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  CpaCampaign campaign(setup, cfg);
  return campaign.run();
}

CampaignResult run_parallel(const CampaignConfig& cfg, unsigned threads) {
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  ParallelCampaign campaign(setup, cfg, threads);
  return campaign.run();
}

void expect_bit_identical(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.traces_run, b.traces_run);
  EXPECT_EQ(a.recovered_guess, b.recovered_guess);
  EXPECT_EQ(a.correct_guess, b.correct_guess);
  // The acceptance bar: identical key byte AND identical final
  // correlation vector, bit for bit.
  EXPECT_EQ(a.final_max_abs_corr, b.final_max_abs_corr);
  ASSERT_EQ(a.progress.size(), b.progress.size());
  for (std::size_t i = 0; i < a.progress.size(); ++i) {
    EXPECT_EQ(a.progress[i].traces, b.progress[i].traces);
    EXPECT_EQ(a.progress[i].max_abs_corr, b.progress[i].max_abs_corr);
    EXPECT_EQ(a.progress[i].correct_rank, b.progress[i].correct_rank);
  }
}

TEST(BinIoTest, RoundTripAndTruncation) {
  ByteWriter w;
  w.put_u8(0xab);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefull);
  w.put_f64(-0.1);
  w.put_f64_vector({1.5, -2.5, 1e-300});
  w.put_u64_array<4>({1, 2, 3, 4});

  ByteReader r(w.bytes().data(), w.size());
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.get_f64(), -0.1);  // bit-exact round trip
  EXPECT_EQ(r.get_f64_vector(), (std::vector<double>{1.5, -2.5, 1e-300}));
  EXPECT_EQ((r.get_u64_array<4>()),
            (std::array<std::uint64_t, 4>{1, 2, 3, 4}));
  EXPECT_TRUE(r.done());

  ByteReader truncated(w.bytes().data(), 3);
  EXPECT_THROW((void)truncated.get_u32(), slm::Error);
}

TEST(BinIoTest, Crc32KnownVector) {
  // CRC-32 of "123456789" is the classic check value 0xcbf43926.
  const char* s = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(s), 9), 0xcbf43926u);
}

TEST(CheckpointFileTest, MissingFileIsFreshStart) {
  EXPECT_FALSE(load_checkpoint(fresh_dir("ckpt_missing")).has_value());
}

TEST(CheckpointFileTest, RoundTripAndCorruptionDetection) {
  const std::string dir = fresh_dir("ckpt_roundtrip");
  CampaignCheckpoint ck;
  ck.seed = 0xc0ffee;
  ck.total_traces = 1000;
  ck.mode = 2;
  ck.shards = 1;
  ck.samples = 7;
  ck.traces_done = 350;
  CheckpointShard sh;
  sh.position = 350;
  sh.rng = {1, 2, 3, 4};
  sh.accumulator = {9, 8, 7};
  ck.shard_state.push_back(sh);
  sca::CpaProgressPoint p;
  p.traces = 100;
  p.max_abs_corr = {0.25, 0.5};
  ck.progress.push_back(p);

  const std::size_t bytes = save_checkpoint(dir, ck);
  EXPECT_GT(bytes, 0u);

  const auto loaded = load_checkpoint(dir);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->seed, ck.seed);
  EXPECT_EQ(loaded->traces_done, 350u);
  ASSERT_EQ(loaded->shard_state.size(), 1u);
  EXPECT_EQ(loaded->shard_state[0].rng, (std::array<std::uint64_t, 4>{1, 2, 3, 4}));
  EXPECT_EQ(loaded->shard_state[0].accumulator,
            (std::vector<std::uint8_t>{9, 8, 7}));
  ASSERT_EQ(loaded->progress.size(), 1u);
  EXPECT_EQ(loaded->progress[0].max_abs_corr,
            (std::vector<double>{0.25, 0.5}));

  // Flip one payload byte: the CRC must catch it.
  const std::string path = checkpoint_file(dir);
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(30);
  char c = 0;
  f.seekg(30);
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x40);
  f.seekp(30);
  f.write(&c, 1);
  f.close();
  EXPECT_THROW((void)load_checkpoint(dir), slm::Error);
  std::filesystem::remove_all(dir);
}

TEST(ResumeTest, SerialKillAtCheckpointResumesBitExact) {
  const std::string dir = fresh_dir("ckpt_serial");
  auto cfg = small_cfg(SensorMode::kTdcFull, 500);

  const auto uninterrupted = run_serial(cfg);

  cfg.checkpoint_dir = dir;
  cfg.halt_after_traces = 200;  // dies at the 200-trace checkpoint
  try {
    (void)run_serial(cfg);
    FAIL() << "expected CampaignHalted";
  } catch (const CampaignHalted& halted) {
    EXPECT_EQ(halted.traces(), 200u);
    EXPECT_EQ(halted.snapshot_path(), checkpoint_file(dir));
  }
  ASSERT_TRUE(std::filesystem::exists(checkpoint_file(dir)));

  cfg.halt_after_traces = 0;
  cfg.resume = true;
  const auto resumed = run_serial(cfg);
  EXPECT_EQ(resumed.resumed_from, 200u);
  EXPECT_EQ(resumed.snapshot_path, checkpoint_file(dir));
  expect_bit_identical(uninterrupted, resumed);
  std::filesystem::remove_all(dir);
}

TEST(ResumeTest, SerialReferenceKernelPathResumesBitExact) {
  const std::string dir = fresh_dir("ckpt_serial_ref");
  auto cfg = small_cfg(SensorMode::kTdcFull, 400);
  cfg.compiled_kernels = false;  // CpaEngine accumulator, not XorClassCpa

  const auto uninterrupted = run_serial(cfg);

  cfg.checkpoint_dir = dir;
  cfg.halt_after_traces = 100;
  EXPECT_THROW((void)run_serial(cfg), CampaignHalted);

  cfg.halt_after_traces = 0;
  cfg.resume = true;
  const auto resumed = run_serial(cfg);
  EXPECT_EQ(resumed.resumed_from, 100u);
  expect_bit_identical(uninterrupted, resumed);
  std::filesystem::remove_all(dir);
}

// The benign-HW mode exercises the selection pre-pass before capture and
// (by default config) the active fence stream; both must survive the
// kill/resume cycle.
TEST(ResumeTest, SerialBenignHwWithFenceResumesBitExact) {
  const std::string dir = fresh_dir("ckpt_serial_hw");
  auto cfg = small_cfg(SensorMode::kBenignHw, 350);
  cfg.fence.random_current_a = 0.02;  // randomised fence component on

  const auto uninterrupted = run_serial(cfg);

  cfg.checkpoint_dir = dir;
  cfg.halt_after_traces = 200;
  EXPECT_THROW((void)run_serial(cfg), CampaignHalted);

  cfg.halt_after_traces = 0;
  cfg.resume = true;
  const auto resumed = run_serial(cfg);
  EXPECT_EQ(resumed.resumed_from, 200u);
  expect_bit_identical(uninterrupted, resumed);
  std::filesystem::remove_all(dir);
}

// The trace-block size tiles the capture loop but never shifts a
// checkpoint: a run killed and resumed under block 7 (which divides
// neither the 200-trace halt nor the trace budget) must match an
// uninterrupted block-64 run bit for bit — the header records the block
// informationally and resume deliberately does not require it to match.
TEST(ResumeTest, BlockSizeSurvivesKillResumeBitExact) {
  const std::string dir = fresh_dir("ckpt_block");
  auto cfg = small_cfg(SensorMode::kBenignHw, 500);

  cfg.block = 64;
  const auto uninterrupted = run_serial(cfg);

  cfg.block = 7;
  cfg.checkpoint_dir = dir;
  cfg.halt_after_traces = 200;
  EXPECT_THROW((void)run_serial(cfg), CampaignHalted);
  {
    const auto ck = load_checkpoint(dir);
    ASSERT_TRUE(ck.has_value());
    EXPECT_EQ(ck->block, 7u);
    EXPECT_EQ(ck->traces_done, 200u);
  }

  cfg.halt_after_traces = 0;
  cfg.resume = true;
  cfg.block = 48;  // yet another tiling for the remainder
  const auto resumed = run_serial(cfg);
  EXPECT_EQ(resumed.resumed_from, 200u);
  EXPECT_EQ(resumed.block_size, 48u);
  expect_bit_identical(uninterrupted, resumed);
  std::filesystem::remove_all(dir);
}

TEST(ResumeTest, ShardedKillAtCheckpointResumesBitExact) {
  const std::string dir = fresh_dir("ckpt_sharded");
  auto cfg = small_cfg(SensorMode::kTdcFull, 500);

  const auto uninterrupted = run_parallel(cfg, 3);

  cfg.checkpoint_dir = dir;
  cfg.halt_after_traces = 350;
  try {
    (void)run_parallel(cfg, 3);
    FAIL() << "expected CampaignHalted";
  } catch (const CampaignHalted& halted) {
    EXPECT_EQ(halted.traces(), 350u);
  }

  cfg.halt_after_traces = 0;
  cfg.resume = true;
  const auto resumed = run_parallel(cfg, 3);
  EXPECT_EQ(resumed.resumed_from, 350u);
  EXPECT_EQ(resumed.threads_used, 3u);
  expect_bit_identical(uninterrupted, resumed);
  std::filesystem::remove_all(dir);
}

TEST(ResumeTest, ResumingTwiceAfterTwoKillsStillBitExact) {
  const std::string dir = fresh_dir("ckpt_twice");
  auto cfg = small_cfg(SensorMode::kTdcFull, 500);
  const auto uninterrupted = run_serial(cfg);

  cfg.checkpoint_dir = dir;
  cfg.halt_after_traces = 100;
  EXPECT_THROW((void)run_serial(cfg), CampaignHalted);
  cfg.resume = true;
  cfg.halt_after_traces = 350;
  EXPECT_THROW((void)run_serial(cfg), CampaignHalted);
  cfg.halt_after_traces = 0;
  const auto resumed = run_serial(cfg);
  EXPECT_EQ(resumed.resumed_from, 350u);
  expect_bit_identical(uninterrupted, resumed);
  std::filesystem::remove_all(dir);
}

TEST(ResumeTest, MismatchedConfigurationRefusesToResume) {
  const std::string dir = fresh_dir("ckpt_mismatch");
  auto cfg = small_cfg(SensorMode::kTdcFull, 500);
  cfg.checkpoint_dir = dir;
  cfg.halt_after_traces = 200;
  EXPECT_THROW((void)run_serial(cfg), CampaignHalted);

  cfg.halt_after_traces = 0;
  cfg.resume = true;

  auto wrong_seed = cfg;
  wrong_seed.seed ^= 1;
  EXPECT_THROW((void)run_serial(wrong_seed), slm::Error);

  auto wrong_budget = cfg;
  wrong_budget.traces = 600;
  wrong_budget.checkpoints = {100, 200, 350, 600};
  EXPECT_THROW((void)run_serial(wrong_budget), slm::Error);

  auto wrong_kernels = cfg;
  wrong_kernels.compiled_kernels = false;
  EXPECT_THROW((void)run_serial(wrong_kernels), slm::Error);

  // A snapshot taken serially cannot seed a 3-shard run.
  EXPECT_THROW((void)run_parallel(cfg, 3), slm::Error);
  std::filesystem::remove_all(dir);
}

// A snapshot written under one RNG contract must refuse to continue
// under the other — the trace streams differ from the first draw, so a
// silent cross-contract resume would diverge from both uninterrupted
// runs. The refusal is the dedicated CheckpointContractMismatch error
// (the CLI maps it to exit code 6), in both directions.
TEST(ResumeTest, CrossContractResumeRefused) {
  for (const auto written : {RngContract::kV1, RngContract::kV2}) {
    const std::string dir = fresh_dir("ckpt_contract");
    auto cfg = small_cfg(SensorMode::kTdcFull, 500);
    cfg.rng_contract = written;
    cfg.checkpoint_dir = dir;
    cfg.halt_after_traces = 200;
    EXPECT_THROW((void)run_serial(cfg), CampaignHalted);
    {
      const auto ck = load_checkpoint(dir);
      ASSERT_TRUE(ck.has_value());
      EXPECT_EQ(ck->rng_contract,
                written == RngContract::kV1 ? 1u : 2u);
    }

    cfg.halt_after_traces = 0;
    cfg.resume = true;
    cfg.rng_contract =
        written == RngContract::kV1 ? RngContract::kV2 : RngContract::kV1;
    EXPECT_THROW((void)run_serial(cfg), CheckpointContractMismatch);
    EXPECT_THROW((void)run_parallel(cfg, 1), CheckpointContractMismatch);

    // Matching the snapshot's contract resumes fine.
    cfg.rng_contract = written;
    const auto resumed = run_serial(cfg);
    EXPECT_EQ(resumed.resumed_from, 200u);
    EXPECT_EQ(resumed.rng_contract, written);
    std::filesystem::remove_all(dir);
  }
}

// v1 snapshots still carry full stream state (RNG, victim registers,
// fence stream); the legacy kill/resume cycle must stay bit-exact for
// both engines with the fence's randomised component on.
TEST(ResumeTest, V1KillResumeStaysBitExact) {
  for (const unsigned threads : {1u, 3u}) {
    const std::string dir = fresh_dir("ckpt_v1");
    auto cfg = small_cfg(SensorMode::kBenignHw, 500);
    cfg.rng_contract = RngContract::kV1;
    cfg.fence.random_current_a = 0.02;

    const auto uninterrupted = run_parallel(cfg, threads);
    EXPECT_EQ(uninterrupted.rng_contract, RngContract::kV1);

    cfg.checkpoint_dir = dir;
    cfg.halt_after_traces = 200;
    EXPECT_THROW((void)run_parallel(cfg, threads), CampaignHalted);

    cfg.halt_after_traces = 0;
    cfg.resume = true;
    const auto resumed = run_parallel(cfg, threads);
    EXPECT_EQ(resumed.resumed_from, 200u);
    expect_bit_identical(uninterrupted, resumed);
    std::filesystem::remove_all(dir);
  }
}

// Under v2 the snapshot carries no stream state at all: a run killed
// under one thread count / block tiling and resumed under ANOTHER block
// still reproduces the uninterrupted run bit for bit (thread count must
// still match — shard accumulator sums are per-shard).
TEST(ResumeTest, V2KillResumeAcrossBlockSizesBitExact) {
  const std::string dir = fresh_dir("ckpt_v2_block");
  auto cfg = small_cfg(SensorMode::kBenignHw, 500);
  cfg.rng_contract = RngContract::kV2;

  cfg.block = 1;
  const auto uninterrupted = run_parallel(cfg, 2);

  cfg.block = 48;
  cfg.checkpoint_dir = dir;
  cfg.halt_after_traces = 200;
  EXPECT_THROW((void)run_parallel(cfg, 2), CampaignHalted);

  cfg.halt_after_traces = 0;
  cfg.resume = true;
  cfg.block = 64;
  const auto resumed = run_parallel(cfg, 2);
  EXPECT_EQ(resumed.resumed_from, 200u);
  expect_bit_identical(uninterrupted, resumed);
  std::filesystem::remove_all(dir);
}

TEST(ResumeTest, CompletedRunLeavesNoResumableWork) {
  const std::string dir = fresh_dir("ckpt_complete");
  auto cfg = small_cfg(SensorMode::kTdcFull, 400);
  cfg.checkpoint_dir = dir;
  const auto full = run_serial(cfg);
  EXPECT_EQ(full.traces_run, 400u);
  // The final snapshot says traces_done == total; resuming it is an
  // error (nothing left to do), not a silent re-run.
  cfg.resume = true;
  EXPECT_THROW((void)run_serial(cfg), slm::Error);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace slm::core
