// The fused full-key engine's acceptance bar: one shared capture pass
// feeding all 16 byte folds must be bit-identical (a) per byte to the
// farmed oracle — 16 independent single-byte campaigns over the SAME
// shared config on fresh platform replicas — and (b) to itself for any
// thread count, block size, and SIMD toggle under contract v2, and
// (c) across a kill/resume pair on a full-key snapshot. Early exit may
// only ever change WHEN a byte's answer is frozen, never what the
// accumulators contain. See docs/FULLKEY.md.
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/attack.hpp"
#include "core/campaign.hpp"
#include "core/checkpoint.hpp"
#include "core/parallel.hpp"
#include "core/setup.hpp"

namespace slm::core {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

CampaignConfig fullkey_cfg(std::size_t traces) {
  CampaignConfig cfg;
  cfg.mode = SensorMode::kTdcFull;
  cfg.traces = traces;
  cfg.checkpoints = {100, 250, 600, traces};
  cfg.selection_traces = 300;
  return cfg;
}

FullKeyRunResult run_fused(const CampaignConfig& cfg, unsigned threads,
                           const FullKeyConfig& fk = {}) {
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  ParallelCampaign campaign(setup, cfg, threads);
  return campaign.run_fullkey(fk);
}

void expect_byte_results_identical(const FullKeyRunResult& a,
                                   const FullKeyRunResult& b) {
  EXPECT_EQ(a.traces_run, b.traces_run);
  for (std::size_t j = 0; j < 16; ++j) {
    const FullKeyByteResult& x = a.bytes[j];
    const FullKeyByteResult& y = b.bytes[j];
    EXPECT_EQ(x.correct, y.correct) << "byte " << j;
    EXPECT_EQ(x.recovered, y.recovered) << "byte " << j;
    EXPECT_EQ(x.early_exited, y.early_exited) << "byte " << j;
    EXPECT_EQ(x.traces, y.traces) << "byte " << j;
    // Bit-exact per-candidate |correlation| — the determinism bar.
    EXPECT_EQ(x.final_max_abs_corr, y.final_max_abs_corr) << "byte " << j;
    ASSERT_EQ(x.progress.size(), y.progress.size()) << "byte " << j;
    for (std::size_t i = 0; i < x.progress.size(); ++i) {
      EXPECT_EQ(x.progress[i].traces, y.progress[i].traces);
      EXPECT_EQ(x.progress[i].max_abs_corr, y.progress[i].max_abs_corr);
      EXPECT_EQ(x.progress[i].correct_rank, y.progress[i].correct_rank);
    }
  }
}

// (a) Farmed oracle: each byte's fused fold must equal, bit for bit, a
// standalone single-byte campaign over the same shared config on a
// fresh platform replica — the capture stream is model-independent
// under contract v2, so regrouping it per byte changes nothing.
TEST(FullKeyFused, MatchesFarmedOracleBitForBit) {
  const CampaignConfig shared = fullkey_cfg(1200);
  FullKeyConfig fk;
  fk.early_exit = false;  // compare full-budget folds on every byte
  const FullKeyRunResult fused = run_fused(shared, 2, fk);

  for (std::size_t b = 0; b < 16; ++b) {
    CampaignConfig cfg = shared;
    cfg.target_key_byte = b;
    AttackSetup replica(BenignCircuit::kAlu, Calibration::paper_defaults());
    CpaCampaign campaign(replica, cfg);
    const CampaignResult farmed = campaign.run();

    const FullKeyByteResult& fb = fused.bytes[b];
    EXPECT_EQ(fb.correct, farmed.correct_guess) << "byte " << b;
    EXPECT_EQ(fb.recovered, farmed.recovered_guess) << "byte " << b;
    EXPECT_EQ(fb.final_max_abs_corr, farmed.final_max_abs_corr)
        << "byte " << b;
    ASSERT_EQ(fb.progress.size(), farmed.progress.size()) << "byte " << b;
    for (std::size_t i = 0; i < fb.progress.size(); ++i) {
      EXPECT_EQ(fb.progress[i].traces, farmed.progress[i].traces);
      EXPECT_EQ(fb.progress[i].max_abs_corr, farmed.progress[i].max_abs_corr);
      EXPECT_EQ(fb.progress[i].correct_corr, farmed.progress[i].correct_corr);
      EXPECT_EQ(fb.progress[i].correct_rank, farmed.progress[i].correct_rank);
    }
  }
}

// (b) Contract v2: threads x block x SIMD must never change a bit.
TEST(FullKeyFused, InvariantUnderThreadsBlockSimd) {
  CampaignConfig cfg = fullkey_cfg(900);
  const FullKeyRunResult serial = run_fused(cfg, 1);

  cfg.block = 7;  // ragged blocks
  cfg.simd = false;
  const FullKeyRunResult scalar3 = run_fused(cfg, 3);
  expect_byte_results_identical(serial, scalar3);

  cfg.block = 64;
  cfg.simd = true;
  const FullKeyRunResult simd4 = run_fused(cfg, 4);
  expect_byte_results_identical(serial, simd4);
}

// The reference (uncompiled) sensor path feeds the same accumulator.
TEST(FullKeyFused, ReferencePathMatchesCompiledKernels) {
  CampaignConfig cfg = fullkey_cfg(700);
  const FullKeyRunResult compiled = run_fused(cfg, 1);
  cfg.compiled_kernels = false;
  const FullKeyRunResult reference = run_fused(cfg, 1);
  expect_byte_results_identical(compiled, reference);
}

// Early exit freezes answers, never accumulators: the recovered key must
// match the full-budget run byte for byte, and frozen bytes must report
// the checkpoint they converged at.
TEST(FullKeyFused, EarlyExitAgreesOnTheKey) {
  const CampaignConfig cfg = fullkey_cfg(2500);
  FullKeyConfig off;
  off.early_exit = false;
  const FullKeyRunResult full = run_fused(cfg, 2, off);
  FullKeyConfig on;
  on.early_exit = true;
  const FullKeyRunResult eager = run_fused(cfg, 2, on);

  for (std::size_t b = 0; b < 16; ++b) {
    EXPECT_EQ(eager.bytes[b].recovered, full.bytes[b].recovered)
        << "byte " << b;
    if (eager.bytes[b].early_exited) {
      EXPECT_LE(eager.bytes[b].traces, cfg.traces);
      EXPECT_FALSE(eager.bytes[b].progress.empty());
    } else {
      EXPECT_EQ(eager.bytes[b].traces, cfg.traces);
    }
  }
}

// (c) Kill/resume on a full-key snapshot, serial and sharded.
TEST(FullKeyFused, HaltResumeBitForBit) {
  for (const unsigned threads : {1u, 2u}) {
    CampaignConfig cfg = fullkey_cfg(900);
    const FullKeyRunResult uninterrupted = run_fused(cfg, threads);

    const std::string dir =
        fresh_dir("fullkey_resume_" + std::to_string(threads));
    cfg.checkpoint_dir = dir;
    cfg.halt_after_traces = 250;
    EXPECT_THROW(run_fused(cfg, threads), CampaignHalted);

    cfg.halt_after_traces = 0;
    cfg.resume = true;
    const FullKeyRunResult resumed = run_fused(cfg, threads);
    EXPECT_EQ(resumed.resumed_from, 250u);
    expect_byte_results_identical(uninterrupted, resumed);
  }
}

// A full-key snapshot must refuse to resume as a single-byte campaign
// and vice versa, and cross-contract resumes must throw the typed
// mismatch, exactly like the single-byte engine.
TEST(FullKeyFused, SnapshotIdentityChecks) {
  CampaignConfig cfg = fullkey_cfg(900);
  const std::string dir = fresh_dir("fullkey_identity");
  cfg.checkpoint_dir = dir;
  cfg.halt_after_traces = 250;
  EXPECT_THROW(run_fused(cfg, 2), CampaignHalted);

  // Same snapshot, single-byte engine: fullkey flag mismatch.
  cfg.halt_after_traces = 0;
  cfg.resume = true;
  {
    AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
    ParallelCampaign campaign(setup, cfg, 2);
    EXPECT_THROW(campaign.run(), slm::Error);
  }
  // Cross-contract resume: typed mismatch, exit-code-6 path in the CLI.
  {
    CampaignConfig v1 = cfg;
    v1.rng_contract = RngContract::kV1;
    AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
    ParallelCampaign campaign(setup, v1, 2);
    EXPECT_THROW(campaign.run_fullkey(), CheckpointContractMismatch);
  }
}

// The facade wires the fused engine by default and the farmed oracle on
// request; both must hand back the same master key.
TEST(StealthyAttackFullKey, FusedAndFarmedRecoverTheSameKey) {
  StealthyAttack fused_attack(BenignCircuit::kAlu);
  const auto fused =
      fused_attack.recover_full_key(3000, SensorMode::kTdcFull, 2);
  EXPECT_EQ(fused.mode_used, FullKeyMode::kFused);
  EXPECT_TRUE(fused.success);
  EXPECT_EQ(fused.traces_captured, 3000u);

  StealthyAttack farmed_attack(BenignCircuit::kAlu);
  FullKeyOptions opts;
  opts.mode = FullKeyMode::kFarmed;
  const auto farmed = farmed_attack.recover_full_key(
      3000, SensorMode::kTdcFull, 2, opts);
  EXPECT_EQ(farmed.mode_used, FullKeyMode::kFarmed);
  EXPECT_TRUE(farmed.success);
  EXPECT_EQ(farmed.traces_captured, 16u * 3000u);

  EXPECT_EQ(fused.last_round_key, farmed.last_round_key);
  EXPECT_EQ(fused.master_key, farmed.master_key);
}

}  // namespace
}  // namespace slm::core
