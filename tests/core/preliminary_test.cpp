#include "core/preliminary.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"

#include "sca/selection.hpp"

namespace slm::core {
namespace {

TEST(Preliminary, SampleGridAt150Msps) {
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  PreliminaryExperiment prelim(setup);
  TimeSeriesConfig cfg;
  cfg.duration_ns = 400.0;
  cfg.ro_active = false;
  const auto series = prelim.run(cfg);
  ASSERT_GT(series.t_ns.size(), 10u);
  const double ts = setup.calibration().sensor_sample_period_ns();
  for (std::size_t i = 1; i < series.t_ns.size(); ++i) {
    EXPECT_NEAR(series.t_ns[i] - series.t_ns[i - 1], ts, 0.1);
  }
  EXPECT_EQ(series.voltage.size(), series.t_ns.size());
  EXPECT_EQ(series.benign_toggles.size(), series.t_ns.size());
  EXPECT_EQ(series.tdc_readings.size(), series.t_ns.size());
}

TEST(Preliminary, RoActivationDroopsVoltage) {
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  PreliminaryExperiment prelim(setup);
  TimeSeriesConfig cfg;
  cfg.duration_ns = 1500.0;
  cfg.ro_enable_ns = 400.0;
  cfg.ro_active = true;
  const auto series = prelim.run(cfg);

  const std::size_t split = series.sample_index_at(400.0);
  double v_before = 1e9, v_after = 1e9;
  for (std::size_t i = 0; i < split; ++i) {
    v_before = std::min(v_before, series.voltage[i]);
  }
  for (std::size_t i = split; i < series.voltage.size(); ++i) {
    v_after = std::min(v_after, series.voltage[i]);
  }
  EXPECT_LT(v_after, v_before - 0.02);  // clear droop after enable
}

TEST(Preliminary, TdcTracksVoltageShape) {
  // Fig. 6's core claim at substrate level: TDC reading dips on droop
  // and overshoots on RO release.
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  PreliminaryExperiment prelim(setup);
  TimeSeriesConfig cfg;
  cfg.duration_ns = 1500.0;
  cfg.ro_enable_ns = 300.0;
  cfg.ro_active = true;
  const auto series = prelim.run(cfg);

  const auto idle = static_cast<double>(series.tdc_readings[2]);
  const auto lo = *std::min_element(series.tdc_readings.begin(),
                                    series.tdc_readings.end());
  const auto hi = *std::max_element(series.tdc_readings.begin(),
                                    series.tdc_readings.end());
  EXPECT_LT(lo + 5, idle);  // deep dip
  EXPECT_GT(hi, idle + 5);  // overshoot above idle
}

TEST(Preliminary, BenignHwCorrelatesWithTdc) {
  // The Hamming weight of the toggling ALU bits must track the TDC trace
  // (the quantitative heart of Fig. 6).
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  PreliminaryExperiment prelim(setup);
  TimeSeriesConfig cfg;
  cfg.duration_ns = 2500.0;
  cfg.ro_enable_ns = 300.0;
  cfg.ro_active = true;
  const auto series = prelim.run(cfg);

  auto selector = prelim.analyse(series);
  const auto bits = selector.fluctuating_bits();
  ASSERT_FALSE(bits.empty());
  const auto hw = series.benign_hw(bits);

  std::vector<double> hw_d(hw.begin(), hw.end());
  std::vector<double> tdc_d(series.tdc_readings.begin(),
                            series.tdc_readings.end());
  // The ALU reads "more toggles" at lower voltage while the TDC reads
  // fewer stages: strong *negative* correlation.
  EXPECT_LT(pearson(hw_d, tdc_d), -0.7);
}

TEST(Preliminary, AesOnlySeriesShowsSmallerSwing) {
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  PreliminaryExperiment prelim(setup);
  TimeSeriesConfig ro_cfg;
  ro_cfg.duration_ns = 1500.0;
  ro_cfg.ro_active = true;
  TimeSeriesConfig aes_cfg;
  aes_cfg.duration_ns = 1500.0;
  aes_cfg.ro_active = false;
  aes_cfg.aes_active = true;

  const auto ro_series = prelim.run(ro_cfg);
  const auto aes_series = prelim.run(aes_cfg);
  auto swing = [](const std::vector<double>& v) {
    return *std::max_element(v.begin(), v.end()) -
           *std::min_element(v.begin(), v.end());
  };
  EXPECT_GT(swing(ro_series.voltage), 3.0 * swing(aes_series.voltage));
}

TEST(Preliminary, AesSensitiveBitsSubsetOfRoSensitive) {
  // Fig. 7/15 shape: nearly all AES-sensitive endpoints also react to
  // the (much stronger) RO stimulus.
  AttackSetup setup(BenignCircuit::kC6288x2, Calibration::paper_defaults());
  PreliminaryExperiment prelim(setup);
  TimeSeriesConfig ro_cfg;
  ro_cfg.duration_ns = 2000.0;
  ro_cfg.ro_active = true;
  TimeSeriesConfig aes_cfg;
  aes_cfg.duration_ns = 4000.0;
  aes_cfg.ro_active = false;
  aes_cfg.aes_active = true;

  const auto ro_bits = prelim.analyse(prelim.run(ro_cfg)).fluctuating_bits();
  const auto aes_bits =
      prelim.analyse(prelim.run(aes_cfg)).fluctuating_bits();
  ASSERT_FALSE(ro_bits.empty());
  ASSERT_FALSE(aes_bits.empty());
  EXPECT_GE(sca::subset_fraction(aes_bits, ro_bits), 0.85);
}

TEST(Preliminary, Validation) {
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  PreliminaryExperiment prelim(setup);
  TimeSeriesConfig cfg;
  cfg.duration_ns = 0.0;
  EXPECT_THROW((void)prelim.run(cfg), slm::Error);
}

}  // namespace
}  // namespace slm::core
