// Tests for the extensions layered on the core reproduction: RO-counter
// sensor mode, the active-fence countermeasure, TVLA leakage assessment
// and full-key recovery via the inverse key schedule.
#include <gtest/gtest.h>

#include "core/attack.hpp"
#include "core/campaign.hpp"

namespace slm::core {
namespace {

TEST(Extensions, RoCounterModeRunsAndIsWeakest) {
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  CampaignConfig cfg;
  cfg.mode = SensorMode::kRoCounter;
  cfg.traces = 5000;
  CpaCampaign campaign(setup, cfg);
  const auto ro = campaign.run();

  CampaignConfig tdc_cfg;
  tdc_cfg.mode = SensorMode::kTdcFull;
  tdc_cfg.traces = 5000;
  const auto tdc = CpaCampaign(setup, tdc_cfg).run();

  // At the same budget the coarse RO counter must be clearly behind the
  // TDC (Zhao & Suh's sensor is the low-bandwidth option).
  EXPECT_LT(ro.mtd.final_margin, tdc.mtd.final_margin);
}

TEST(Extensions, ActiveFenceDegradesCpa) {
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  CampaignConfig cfg;
  cfg.mode = SensorMode::kTdcFull;
  cfg.traces = 4000;
  const auto undefended = CpaCampaign(setup, cfg).run();
  ASSERT_TRUE(undefended.key_recovered);

  cfg.fence.base_current_a = 0.05;
  cfg.fence.random_current_a = 1.2;  // strong hiding
  const auto defended = CpaCampaign(setup, cfg).run();
  EXPECT_LT(defended.progress.back().correct_corr,
            0.5 * undefended.progress.back().correct_corr);
}

TEST(Extensions, TvlaDetectsLeakageThroughBenignSensor) {
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  CampaignConfig cfg;
  cfg.mode = SensorMode::kBenignHw;
  cfg.selection_traces = 1500;
  CpaCampaign campaign(setup, cfg);
  const auto t = campaign.run_tvla(20000);
  EXPECT_TRUE(t.leakage_detected())
      << "max |t| = " << t.max_abs_t();
}

TEST(Extensions, TvlaQuietWhenSensorSeesNoVictim) {
  // Decouple the victim entirely: no leakage should be detectable.
  auto cal = Calibration::paper_defaults();
  cal.coupling = 0.0;
  AttackSetup setup(BenignCircuit::kAlu, cal);
  CampaignConfig cfg;
  cfg.mode = SensorMode::kTdcFull;
  CpaCampaign campaign(setup, cfg);
  const auto t = campaign.run_tvla(4000);
  EXPECT_FALSE(t.leakage_detected())
      << "max |t| = " << t.max_abs_t();
}

TEST(Extensions, MaskingDefeatsCpa) {
  auto cal = Calibration::paper_defaults();
  cal.aes.masked = true;
  AttackSetup setup(BenignCircuit::kAlu, cal);
  CampaignConfig cfg;
  cfg.mode = SensorMode::kTdcFull;
  cfg.traces = 20000;
  const auto r = CpaCampaign(setup, cfg).run();
  // With a fresh mask per round the correct key never stabilises at
  // budgets that break the unmasked core in ~1k traces.
  EXPECT_FALSE(r.mtd.disclosed() && r.key_recovered &&
               *r.mtd.traces < 10000);
  EXPECT_LT(r.progress.back().correct_corr, 0.05);
}

TEST(Extensions, MaskedCiphertextsUnchanged) {
  auto cal = Calibration::paper_defaults();
  crypto::DatapathConfig masked = cal.aes;
  masked.masked = true;
  crypto::AesDatapathModel plain(cal.aes_key(), cal.aes);
  crypto::AesDatapathModel with_mask(cal.aes_key(), masked);
  Xoshiro256 rng(9);
  for (int t = 0; t < 16; ++t) {
    crypto::Block pt;
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());
    EXPECT_EQ(plain.encrypt(pt).ciphertext, with_mask.encrypt(pt).ciphertext);
  }
}

TEST(Extensions, FullKeyRecoveryWithTdc) {
  StealthyAttack attack(BenignCircuit::kAlu);
  const auto report = attack.recover_full_key(4000, SensorMode::kTdcFull);
  EXPECT_TRUE(report.success);
  const auto& aes = attack.setup().victim().cipher();
  EXPECT_EQ(report.last_round_key, aes.last_round_key());
  // The inverse key schedule yields the master key the victim was
  // initialised with.
  EXPECT_EQ(crypto::block_to_hex(report.master_key),
            "2b7e151628aed2a6abf7158809cf4f3c");
}

}  // namespace
}  // namespace slm::core
