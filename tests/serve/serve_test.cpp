// Campaign-as-a-service: fair-share scheduling, admission control, and
// the preempt -> resume bit-exactness bar. The headline property mirrors
// resume_test at the daemon level: a job served in checkpoint-bounded
// timeslices (including across a simulated daemon kill + restart) must
// produce a result.json byte-identical to the same job served
// uninterrupted.
#include "serve/daemon.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/attack.hpp"
#include "obs/jsonl.hpp"
#include "serve/job.hpp"
#include "serve/scheduler.hpp"

namespace slm::serve {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

QueuedJob make_job(const std::string& id, const std::string& tenant,
                   std::int64_t priority = 0) {
  QueuedJob j;
  j.spec.id = id;
  j.spec.tenant = tenant;
  j.spec.priority = priority;
  return j;
}

void write_job_file(const std::string& spool, const JobSpec& spec) {
  std::filesystem::create_directories(spool);
  std::ofstream out(spool + "/" + spec.id + ".json", std::ios::binary);
  out << job_to_json(spec);
  ASSERT_TRUE(out.good());
}

JobSpec attack_spec(const std::string& id, const std::string& tenant,
                    std::uint64_t traces, std::uint64_t key_byte) {
  JobSpec s;
  s.id = id;
  s.tenant = tenant;
  s.kind = JobKind::kAttack;
  s.traces = traces;
  s.key_byte = key_byte;
  return s;
}

// ---------------------------------------------------------------------
// FairShareScheduler
// ---------------------------------------------------------------------

TEST(FairShareSchedulerTest, LeastChargedTenantPopsFirst) {
  FairShareScheduler sched(8);
  sched.admit(make_job("a1", "alice"));
  sched.admit(make_job("b1", "bob"));
  sched.charge("alice", 1000);  // alice already got service

  auto j = sched.next();
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->spec.tenant, "bob");  // bob is behind, he goes first
}

TEST(FairShareSchedulerTest, AdmissionOrderBreaksTenantTies) {
  FairShareScheduler sched(8);
  sched.admit(make_job("a1", "alice"));
  sched.admit(make_job("b1", "bob"));
  sched.admit(make_job("a2", "alice"));

  // All tenants at charge 0: strict admission order.
  EXPECT_EQ(sched.next()->spec.id, "a1");
  EXPECT_EQ(sched.next()->spec.id, "b1");
  EXPECT_EQ(sched.next()->spec.id, "a2");
}

TEST(FairShareSchedulerTest, PriorityOrdersWithinATenant) {
  FairShareScheduler sched(8);
  sched.admit(make_job("low", "alice", 0));
  sched.admit(make_job("high", "alice", 5));

  // Same tenant, same charge: the later-admitted high-priority job
  // still jumps the earlier low-priority one.
  EXPECT_EQ(sched.next()->spec.id, "high");
  EXPECT_EQ(sched.next()->spec.id, "low");
}

TEST(FairShareSchedulerTest, FairnessDominatesPriority) {
  // No cross-tenant priority inversion: a tenant cannot starve others
  // by marking every job high priority — cumulative service decides
  // first, priority only orders a tenant's own backlog.
  FairShareScheduler sched(8);
  sched.admit(make_job("loud1", "loud", 100));
  sched.admit(make_job("loud2", "loud", 100));
  sched.admit(make_job("quiet1", "quiet", 0));

  auto first = sched.next();
  ASSERT_TRUE(first.has_value());
  sched.charge(first->spec.tenant, 500);

  auto second = sched.next();
  ASSERT_TRUE(second.has_value());
  // Whoever went first, the OTHER tenant goes second.
  EXPECT_NE(second->spec.tenant, first->spec.tenant);
}

TEST(FairShareSchedulerTest, BoundedQueueRejectsAtCapacity) {
  FairShareScheduler sched(2);
  sched.admit(make_job("j1", "alice"));
  sched.admit(make_job("j2", "bob"));
  EXPECT_EQ(sched.depth(), 2u);
  EXPECT_THROW(sched.admit(make_job("j3", "carol")), QueueFullError);
  EXPECT_EQ(sched.depth(), 2u);  // rejected job left no residue
}

TEST(FairShareSchedulerTest, TryAdmitRefusesWithoutThrowing) {
  // The spool watcher's admission path: a refusal must come back as
  // `false`, never as an exception (an exception escaping the watcher
  // thread would std::terminate the daemon).
  FairShareScheduler sched(1);
  EXPECT_TRUE(sched.try_admit(make_job("j1", "alice")));
  EXPECT_FALSE(sched.try_admit(make_job("j2", "bob")));
  EXPECT_EQ(sched.depth(), 1u);

  // The daemon's admission race: the loop pops (freeing a slot), the
  // watcher's depth check passes, then the capacity-exempt requeue
  // refills the queue. try_admit re-checks under the lock and refuses.
  auto running = sched.next();
  ASSERT_TRUE(running.has_value());
  EXPECT_EQ(sched.depth(), 0u);  // a depth check would pass here...
  sched.requeue(*running);       // ...but the preempted job returns
  EXPECT_FALSE(sched.try_admit(make_job("j3", "carol")));
  EXPECT_EQ(sched.next()->spec.id, "j1");
}

TEST(FairShareSchedulerTest, RequeueIsCapacityExempt) {
  FairShareScheduler sched(1);
  sched.admit(make_job("j1", "alice"));
  auto running = sched.next();
  ASSERT_TRUE(running.has_value());
  sched.admit(make_job("j2", "bob"));  // queue full again

  // Preempting j1 must never bounce it — it was already admitted and
  // holds a checkpoint.
  running->traces_done = 500;
  EXPECT_NO_THROW(sched.requeue(*running));
  EXPECT_EQ(sched.depth(), 2u);
}

TEST(FairShareSchedulerTest, RequeueKeepsSeqAheadOfLaterSubmissions) {
  FairShareScheduler sched(8);
  sched.admit(make_job("first", "alice"));
  auto running = sched.next();
  ASSERT_TRUE(running.has_value());
  sched.admit(make_job("second", "alice"));
  sched.requeue(*running);

  // The preempted job keeps its original admission slot, so at equal
  // charge/priority it resumes before the tenant's newer job.
  EXPECT_EQ(sched.next()->spec.id, "first");
  EXPECT_EQ(sched.next()->spec.id, "second");
}

TEST(FairShareSchedulerTest, ScheduleIsDeterministic) {
  auto run_once = [] {
    FairShareScheduler sched(8);
    sched.admit(make_job("a1", "alice"));
    sched.admit(make_job("b1", "bob", 2));
    sched.admit(make_job("c1", "carol"));
    sched.admit(make_job("a2", "alice", 9));
    std::vector<std::string> order;
    while (auto j = sched.next()) {
      order.push_back(j->spec.id);
      sched.charge(j->spec.tenant, 100);
    }
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(FairShareSchedulerTest, SharesMergeChargedAndPending) {
  FairShareScheduler sched(8);
  sched.admit(make_job("a1", "alice"));
  sched.admit(make_job("a2", "alice"));
  sched.charge("bob", 700);  // bob finished everything already

  auto shares = sched.shares();
  ASSERT_EQ(shares.size(), 2u);  // sorted by tenant name
  EXPECT_EQ(shares[0].tenant, "alice");
  EXPECT_EQ(shares[0].charged, 0u);
  EXPECT_EQ(shares[0].pending, 2u);
  EXPECT_EQ(shares[1].tenant, "bob");
  EXPECT_EQ(shares[1].charged, 700u);
  EXPECT_EQ(shares[1].pending, 0u);
}

// ---------------------------------------------------------------------
// Job specs
// ---------------------------------------------------------------------

TEST(JobSpecTest, JsonRoundTrips) {
  JobSpec s;
  s.id = "job_0007_eve";
  s.tenant = "eve";
  s.priority = -3;
  s.kind = JobKind::kFullKey;
  s.circuit = core::BenignCircuit::kC6288x2;
  s.mode = core::SensorMode::kBenignHw;
  s.traces = 12345;

  const JobSpec back = parse_job_json(job_to_json(s), "test");
  EXPECT_EQ(back.id, s.id);
  EXPECT_EQ(back.tenant, s.tenant);
  EXPECT_EQ(back.priority, s.priority);
  EXPECT_EQ(back.kind, s.kind);
  EXPECT_EQ(back.circuit, s.circuit);
  EXPECT_EQ(back.mode, s.mode);
  EXPECT_EQ(back.traces, s.traces);
}

TEST(JobSpecTest, AnalyzeJobsRoundTripTheStorePath) {
  JobSpec s;
  s.id = "job_0009_eve";
  s.tenant = "eve";
  s.kind = JobKind::kAnalyze;
  s.store = "results/eve/run.trc";

  const JobSpec back = parse_job_json(job_to_json(s), "test");
  EXPECT_EQ(back.kind, JobKind::kAnalyze);
  EXPECT_EQ(back.store, s.store);

  // Pre-analyze specs never carried a "store" field; their serialized
  // form must stay byte-stable, so the field is emitted only when set.
  JobSpec legacy;
  legacy.tenant = "bob";
  EXPECT_EQ(job_to_json(legacy).find("store"), std::string::npos);
}

TEST(JobSpecTest, RejectsBadSpecs) {
  // Missing tenant.
  EXPECT_THROW(parse_job_json(R"({"kind":"attack","traces":100})", "t"),
               JobSpecError);
  // Zero trace budget.
  EXPECT_THROW(
      parse_job_json(R"({"tenant":"a","kind":"attack","traces":0})", "t"),
      JobSpecError);
  // Unknown kind / circuit / mode.
  EXPECT_THROW(parse_job_json(R"({"tenant":"a","kind":"dance"})", "t"),
               JobSpecError);
  EXPECT_THROW(parse_job_json(R"({"tenant":"a","circuit":"fpga"})", "t"),
               JobSpecError);
  EXPECT_THROW(parse_job_json(R"({"tenant":"a","mode":"psychic"})", "t"),
               JobSpecError);
  // Unknown field — typos must not be silently ignored.
  EXPECT_THROW(parse_job_json(R"({"tenant":"a","trace":100})", "t"),
               JobSpecError);
  // Key byte out of range.
  EXPECT_THROW(parse_job_json(R"({"tenant":"a","key_byte":16})", "t"),
               JobSpecError);
  // Fabric dispatch only exists for single-byte attack jobs.
  EXPECT_THROW(
      parse_job_json(R"({"tenant":"a","kind":"tvla","fabric_shards":2})", "t"),
      JobSpecError);
  // Analyze jobs replay a store — the path is mandatory, and no other
  // kind accepts one.
  EXPECT_THROW(parse_job_json(R"({"tenant":"a","kind":"analyze"})", "t"),
               JobSpecError);
  EXPECT_THROW(
      parse_job_json(R"({"tenant":"a","kind":"attack","store":"x.trc"})", "t"),
      JobSpecError);
  // Malformed JSON.
  EXPECT_THROW(parse_job_json(R"({"tenant":"a",)", "t"), Error);
}

TEST(JobSpecTest, RejectsPathTraversalIds) {
  // Ids become results-directory names (<results>/<id>) and the spool
  // is tenant-writable, so separators, "..", and hidden names must all
  // be refused at parse time — before the daemon creates anything.
  for (const char* id : {"../../x", "a/b", "..", "a\\b", ".hidden", ""}) {
    const std::string json =
        std::string(R"({"tenant":"a","id":")") + id + R"("})";
    EXPECT_THROW(parse_job_json(json, "t"), JobSpecError) << id;
  }
  // The shapes `slm submit` mints stay accepted.
  EXPECT_EQ(parse_job_json(R"({"tenant":"a","id":"job_0007_a-b.c"})", "t").id,
            "job_0007_a-b.c");
}

// ---------------------------------------------------------------------
// FlatJson (the serve-side inverse of obs::JsonWriter)
// ---------------------------------------------------------------------

TEST(FlatJsonTest, ParsesTypedFields) {
  const auto j = obs::FlatJson::parse(
      R"({"ev":"job_done","traces":3000,"ok":true,"margin":-0.25,)"
      R"("note":"a\"b\\c\nd","nested":{"x":[1,2]},"gone":null})");
  EXPECT_EQ(j.string_field("ev"), "job_done");
  EXPECT_EQ(j.uint_field("traces"), 3000u);
  EXPECT_EQ(j.bool_field("ok"), true);
  EXPECT_EQ(j.number_field("margin"), -0.25);
  EXPECT_EQ(j.string_field("note"), "a\"b\\c\nd");  // escapes decoded
  EXPECT_TRUE(j.has("nested"));
  EXPECT_TRUE(j.has("gone"));
  EXPECT_FALSE(j.has("absent"));
}

TEST(FlatJsonTest, TypeMismatchesYieldNullopt) {
  const auto j = obs::FlatJson::parse(R"({"s":"x","n":-1,"f":1.5})");
  EXPECT_EQ(j.number_field("s"), std::nullopt);
  EXPECT_EQ(j.string_field("n"), std::nullopt);
  EXPECT_EQ(j.uint_field("n"), std::nullopt);  // negative
  EXPECT_EQ(j.uint_field("f"), std::nullopt);  // non-integral
  EXPECT_EQ(j.bool_field("s"), std::nullopt);
}

TEST(FlatJsonTest, MalformedInputThrows) {
  EXPECT_THROW(obs::FlatJson::parse(""), Error);
  EXPECT_THROW(obs::FlatJson::parse("[1,2]"), Error);
  EXPECT_THROW(obs::FlatJson::parse(R"({"a":1)"), Error);
  EXPECT_THROW(obs::FlatJson::parse(R"({"a":1} trailing)"), Error);
  EXPECT_THROW(obs::FlatJson::parse(R"({"a" 1})"), Error);
}

// ---------------------------------------------------------------------
// serve(): the daemon loop end to end
// ---------------------------------------------------------------------

// Small enough to run in well under a second each, large enough that a
// 400-trace timeslice lands several checkpoint preemptions (tdc-mode
// attacks on the ALU circuit disclose the key byte around 500 traces).
constexpr std::uint64_t kAttackTraces = 1200;

void submit_three_tenants(const std::string& spool) {
  write_job_file(spool, attack_spec("job_a", "alice", kAttackTraces, 3));
  write_job_file(spool, attack_spec("job_b", "bob", kAttackTraces, 5));
  JobSpec tvla;
  tvla.id = "job_c";
  tvla.tenant = "carol";
  tvla.kind = JobKind::kTvla;
  tvla.traces = 600;
  write_job_file(spool, tvla);
}

ServeOptions base_options(const std::string& spool,
                          const std::string& results) {
  ServeOptions opt;
  opt.spool_dir = spool;
  opt.results_dir = results;
  opt.threads = 2;
  opt.poll_ms = 1;
  return opt;
}

const std::vector<std::string> kJobIds = {"job_a", "job_b", "job_c"};

TEST(ServeDaemonTest, PreemptedResultsAreByteIdenticalToUninterrupted) {
  const std::string spool_ref = fresh_dir("serve_ref_spool");
  const std::string results_ref = fresh_dir("serve_ref_results");
  submit_three_tenants(spool_ref);
  const ServeReport ref = serve(base_options(spool_ref, results_ref));
  EXPECT_EQ(ref.jobs_admitted, 3u);
  EXPECT_EQ(ref.jobs_completed, 3u);
  EXPECT_EQ(ref.jobs_failed, 0u);
  EXPECT_EQ(ref.preemptions, 0u);  // no timeslice -> run to completion
  EXPECT_FALSE(ref.halted);

  const std::string spool_ts = fresh_dir("serve_ts_spool");
  const std::string results_ts = fresh_dir("serve_ts_results");
  submit_three_tenants(spool_ts);
  ServeOptions opt = base_options(spool_ts, results_ts);
  opt.timeslice_traces = 400;
  const ServeReport ts = serve(opt);
  EXPECT_EQ(ts.jobs_completed, 3u);
  EXPECT_GT(ts.preemptions, 0u);  // the slicing actually happened
  EXPECT_GT(ts.slices, 3u);

  // The bar: byte-identical result files, preempted vs uninterrupted.
  for (const auto& id : kJobIds) {
    EXPECT_EQ(slurp(results_ts + "/" + id + "/result.json"),
              slurp(results_ref + "/" + id + "/result.json"))
        << id;
  }
}

TEST(ServeDaemonTest, KilledDaemonResumesBitExactlyOnRestart) {
  const std::string spool_ref = fresh_dir("serve_kref_spool");
  const std::string results_ref = fresh_dir("serve_kref_results");
  submit_three_tenants(spool_ref);
  serve(base_options(spool_ref, results_ref));

  const std::string spool = fresh_dir("serve_kill_spool");
  const std::string results = fresh_dir("serve_kill_results");
  submit_three_tenants(spool);
  ServeOptions opt = base_options(spool, results);
  opt.timeslice_traces = 400;
  opt.max_slices = 2;  // "kill" the daemon with work still queued
  const ServeReport killed = serve(opt);
  EXPECT_TRUE(killed.halted);
  EXPECT_EQ(killed.slices, 2u);
  EXPECT_LT(killed.jobs_completed, 3u);

  // Unfinished jobs are visible as job.json without result.json.
  std::size_t unfinished = 0;
  for (const auto& id : kJobIds) {
    if (std::filesystem::exists(results + "/" + id + "/job.json") &&
        !std::filesystem::exists(results + "/" + id + "/result.json")) {
      ++unfinished;
    }
  }
  EXPECT_GT(unfinished, 0u);

  // Restart over the same directories: recovery re-admits every
  // unfinished job at its checkpoint and drains.
  ServeOptions again = base_options(spool, results);
  again.timeslice_traces = 400;
  const ServeReport resumed = serve(again);
  EXPECT_EQ(resumed.jobs_recovered, unfinished);
  EXPECT_FALSE(resumed.halted);
  EXPECT_EQ(killed.jobs_completed + resumed.jobs_completed, 3u);

  for (const auto& id : kJobIds) {
    EXPECT_EQ(slurp(results + "/" + id + "/result.json"),
              slurp(results_ref + "/" + id + "/result.json"))
        << id;
  }
}

TEST(ServeDaemonTest, MalformedSpoolFileIsRejectedNotFatal) {
  const std::string spool = fresh_dir("serve_rej_spool");
  const std::string results = fresh_dir("serve_rej_results");
  std::filesystem::create_directories(spool);
  {
    std::ofstream bad(spool + "/job_bad.json", std::ios::binary);
    bad << R"({"tenant":"mallory","kind":"nonsense"})";
  }
  write_job_file(spool, attack_spec("job_ok", "alice", kAttackTraces, 3));

  const ServeReport rep = serve(base_options(spool, results));
  EXPECT_EQ(rep.jobs_admitted, 1u);
  EXPECT_EQ(rep.jobs_rejected, 1u);
  EXPECT_EQ(rep.jobs_completed, 1u);
  // Rejected files are quarantined for inspection, never deleted.
  EXPECT_TRUE(std::filesystem::exists(spool + "/rejected/job_bad.json"));
  EXPECT_TRUE(std::filesystem::exists(results + "/job_ok/result.json"));
}

TEST(ServeDaemonTest, AnalyzeJobsReplayAStoreDeterministically) {
  // Capture a byte-campaign store under the exact defaults the daemon
  // reconstructs from the store identity, then serve an analyze job
  // against it twice: both runs must complete and write byte-identical
  // result files (the fused replay is a pure function of the store).
  const std::string store_path =
      fresh_dir("serve_analyze_capture") + ".trc";
  std::filesystem::remove(store_path);
  core::StealthyAttack attack(core::BenignCircuit::kAlu);
  core::CampaignConfig cfg =
      attack.byte_campaign_config(3, 600, core::SensorMode::kTdcFull);
  cfg.store_out = store_path;
  core::CpaCampaign capture(attack.setup(), cfg);
  capture.run();
  ASSERT_TRUE(std::filesystem::exists(store_path));

  JobSpec spec;
  spec.id = "job_an";
  spec.tenant = "dora";
  spec.kind = JobKind::kAnalyze;
  spec.store = store_path;

  std::vector<std::string> results_json;
  for (const char* tag : {"serve_an1", "serve_an2"}) {
    const std::string spool = fresh_dir(std::string(tag) + "_spool");
    const std::string results = fresh_dir(std::string(tag) + "_results");
    write_job_file(spool, spec);
    const ServeReport rep = serve(base_options(spool, results));
    EXPECT_EQ(rep.jobs_admitted, 1u);
    EXPECT_EQ(rep.jobs_completed, 1u);
    EXPECT_EQ(rep.jobs_failed, 0u);
    results_json.push_back(slurp(results + "/job_an/result.json"));
  }
  EXPECT_EQ(results_json[0], results_json[1]);
  // The fused pass ran all three analyses over the one store sweep.
  EXPECT_NE(results_json[0].find("\"store_kind\":\"byte-campaign\""),
            std::string::npos);
  EXPECT_NE(results_json[0].find("attack_recovered"), std::string::npos);
  EXPECT_NE(results_json[0].find("master_key"), std::string::npos);
  EXPECT_NE(results_json[0].find("leakage_detected"), std::string::npos);
  std::filesystem::remove(store_path);
}

TEST(ServeDaemonTest, AnalyzeJobWithMissingStoreFailsNotFatal) {
  const std::string spool = fresh_dir("serve_anbad_spool");
  const std::string results = fresh_dir("serve_anbad_results");
  JobSpec spec;
  spec.id = "job_ghost";
  spec.tenant = "eve";
  spec.kind = JobKind::kAnalyze;
  spec.store = fresh_dir("serve_anbad") + "/no_such.trc";
  write_job_file(spool, spec);
  write_job_file(spool, attack_spec("job_ok", "alice", kAttackTraces, 3));

  const ServeReport rep = serve(base_options(spool, results));
  EXPECT_EQ(rep.jobs_admitted, 2u);
  EXPECT_EQ(rep.jobs_failed, 1u);
  EXPECT_EQ(rep.jobs_completed, 1u);
  EXPECT_TRUE(std::filesystem::exists(results + "/job_ok/result.json"));
  // The failed job still writes a record (so restart never retries it
  // forever), marked failed.
  EXPECT_NE(slurp(results + "/job_ghost/result.json").find("\"failed\":true"),
            std::string::npos);
}

TEST(ServeDaemonTest, StatusReflectsTheFeed) {
  const std::string spool = fresh_dir("serve_st_spool");
  const std::string results = fresh_dir("serve_st_results");
  submit_three_tenants(spool);
  ServeOptions opt = base_options(spool, results);
  opt.timeslice_traces = 400;
  const ServeReport rep = serve(opt);

  const StatusSummary st = read_status(results, spool);
  EXPECT_TRUE(st.found);
  EXPECT_EQ(st.queue_depth, 0u);
  EXPECT_EQ(st.completed, rep.jobs_completed);
  EXPECT_EQ(st.failed, 0u);
  EXPECT_EQ(st.slices, rep.slices);
  EXPECT_EQ(st.preemptions, rep.preemptions);
  EXPECT_EQ(st.spool_pending, 0u);
  ASSERT_EQ(st.tenants.size(), 3u);
  EXPECT_EQ(st.tenants[0].tenant, "alice");
  EXPECT_EQ(st.tenants[0].charged, kAttackTraces);

  // No feed at all -> found == false, everything zero.
  const StatusSummary none = read_status(fresh_dir("serve_st_none"), spool);
  EXPECT_FALSE(none.found);
}

}  // namespace
}  // namespace slm::serve
