// Golden-trace regression fixtures.
//
// Fixed-seed campaign snapshots (kBenignHw / kBenignSingleBit / kTdcFull)
// and raw sensor toggle words over a deterministic voltage ramp, stored
// as hexfloat text in tests/regression/fixtures/golden_traces.txt. Any
// change to the capture physics, the RNG stream accounting, the compiled
// kernels or the CPA accumulation shifts these doubles and fails the
// diff — run with SLM_REGEN_GOLDEN=1 to regenerate after an intentional
// change, and justify the new fixture in the commit.
//
// Doubles are serialized with printf %a (hexfloat): round-trip exact, so
// the comparison is bit-for-bit, matching the repo's bit-exactness
// contract between the compiled and reference capture paths.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/setup.hpp"

namespace slm {
namespace {

// One fixture file per RNG determinism contract: golden_traces.txt pins
// the legacy v1 draws byte-identically to the pre-v2 releases, and
// golden_traces_v2.txt pins the counter-keyed v2 draws (DESIGN.md §12).
std::string fixture_path(core::RngContract contract) {
  return std::string(SLM_REPO_ROOT) +
         (contract == core::RngContract::kV1
              ? "/tests/regression/fixtures/golden_traces.txt"
              : "/tests/regression/fixtures/golden_traces_v2.txt");
}

void append_hex(std::string& out, const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s %a\n", key, v);
  out += buf;
}

void append_u64(std::string& out, const char* key, std::uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s %llu\n", key,
                static_cast<unsigned long long>(v));
  out += buf;
}

core::CampaignConfig golden_cfg(core::SensorMode mode,
                                core::RngContract contract) {
  core::CampaignConfig cfg;
  cfg.mode = mode;
  cfg.traces = 200;
  cfg.checkpoints = {100, 200};
  cfg.selection_traces = 400;
  cfg.rng_contract = contract;
  if (mode == core::SensorMode::kBenignSingleBit) {
    cfg.single_bit = core::CampaignConfig::kAutoBit;
  }
  return cfg;
}

void append_campaign(std::string& out, core::SensorMode mode,
                     core::RngContract contract, const char* tag) {
  core::AttackSetup setup(core::BenignCircuit::kAlu,
                          core::Calibration::paper_defaults());
  core::CpaCampaign campaign(setup, golden_cfg(mode, contract));
  const core::CampaignResult r = campaign.run();
  out += "[campaign ";
  out += tag;
  out += "]\n";
  append_u64(out, "traces_run", r.traces_run);
  append_u64(out, "recovered_guess", r.recovered_guess);
  append_u64(out, "single_bit", r.single_bit);
  append_u64(out, "bits_of_interest", r.bits_of_interest.size());
  // The first two checkpoints pin the whole accumulation path: any
  // change in a sensor reading or hypothesis value moves them.
  for (std::size_t p = 0; p < 2 && p < r.progress.size(); ++p) {
    char key[48];
    std::snprintf(key, sizeof key, "progress%zu_traces", p);
    append_u64(out, key, r.progress[p].traces);
    std::snprintf(key, sizeof key, "progress%zu_correct_corr", p);
    append_hex(out, key, r.progress[p].correct_corr);
    std::snprintf(key, sizeof key, "progress%zu_best_wrong_corr", p);
    append_hex(out, key, r.progress[p].best_wrong_corr);
    std::snprintf(key, sizeof key, "progress%zu_correct_rank", p);
    append_u64(out, key, r.progress[p].correct_rank);
  }
  // Full final per-candidate |correlation| vector, bit-for-bit.
  for (std::size_t k = 0; k < r.final_max_abs_corr.size(); ++k) {
    char key[32];
    std::snprintf(key, sizeof key, "final_corr_%03zu", k);
    append_hex(out, key, r.final_max_abs_corr[k]);
  }
}

void append_sensor_words(std::string& out) {
  // Raw benign-sensor toggle words over a fixed voltage ramp with a
  // fixed stream: pins the capture physics (skews, jitter draws, toggle
  // decisions) below the campaign layer.
  core::AttackSetup setup(core::BenignCircuit::kAlu,
                          core::Calibration::paper_defaults());
  out += "[sensor toggle_words]\n";
  Xoshiro256 rng(0x601d);
  const auto& bank = setup.sensor();
  for (int step = 0; step < 16; ++step) {
    const double v = 0.90 + 0.01 * static_cast<double>(step % 8);
    const BitVec word = bank.sample_toggles(v, rng);
    std::string bits;
    bits.reserve(word.size());
    for (std::size_t i = 0; i < word.size(); ++i) {
      bits += word.get(i) ? '1' : '0';
    }
    char key[32];
    std::snprintf(key, sizeof key, "word_%02d", step);
    out += key;
    out += ' ';
    out += bits;
    out += '\n';
  }
}

std::string current_snapshot(core::RngContract contract) {
  std::string out;
  out += "# Golden trace fixtures - regenerate with SLM_REGEN_GOLDEN=1\n";
  append_campaign(out, core::SensorMode::kBenignHw, contract, "benign_hw");
  append_campaign(out, core::SensorMode::kBenignSingleBit, contract,
                  "benign_single_bit");
  append_campaign(out, core::SensorMode::kTdcFull, contract, "tdc_full");
  append_sensor_words(out);
  return out;
}

void check_fixture(core::RngContract contract) {
  const std::string path = fixture_path(contract);
  const std::string now = current_snapshot(contract);
  if (std::getenv("SLM_REGEN_GOLDEN") != nullptr) {
    std::ofstream f(path, std::ios::trunc);
    ASSERT_TRUE(f.good()) << "cannot write " << path;
    f << now;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream f(path);
  ASSERT_TRUE(f.good())
      << "missing fixture " << path
      << " - run this test once with SLM_REGEN_GOLDEN=1 and commit it";
  std::stringstream buf;
  buf << f.rdbuf();
  const std::string want = buf.str();

  // Compare line-by-line for a readable first divergence.
  std::istringstream a(want);
  std::istringstream b(now);
  std::string la;
  std::string lb;
  std::size_t line = 0;
  while (true) {
    const bool ga = static_cast<bool>(std::getline(a, la));
    const bool gb = static_cast<bool>(std::getline(b, lb));
    ++line;
    if (!ga && !gb) break;
    ASSERT_EQ(ga, gb) << "fixture and snapshot differ in length at line "
                      << line;
    ASSERT_EQ(la, lb) << "first divergence at line " << line;
  }
}

// The v1 fixture is byte-identical to the pre-v2 releases: the legacy
// contract replays the exact historical RNG consumption order.
TEST(GoldenTrace, V1SnapshotsMatchCheckedInFixtures) {
  check_fixture(core::RngContract::kV1);
}

TEST(GoldenTrace, SnapshotsMatchCheckedInFixtures) {
  check_fixture(core::RngContract::kV2);
}

}  // namespace
}  // namespace slm
