// Cross-module property tests over randomly generated circuits and data:
// the invariants that tie the simulation stack together. Each property
// is swept over many seeds via parameterized gtest.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "netlist/bench_format.hpp"
#include "netlist/evaluator.hpp"
#include "netlist/generators/random_dag.hpp"
#include "pdn/cycle_response.hpp"
#include "sca/cpa.hpp"
#include "timing/capture.hpp"
#include "timing/sta.hpp"
#include "timing/timed_sim.hpp"

namespace slm {
namespace {

netlist::RandomDagOptions dag_opts(std::uint64_t seed) {
  netlist::RandomDagOptions opt;
  opt.inputs = 10;
  opt.gates = 120;
  opt.outputs = 12;
  opt.seed = seed;
  return opt;
}

BitVec random_inputs(std::size_t width, Xoshiro256& rng) {
  BitVec v(width);
  for (std::size_t i = 0; i < width; ++i) v.set(i, rng.coin());
  return v;
}

class RandomCircuit : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCircuit, AlwaysAcyclicAndWellFormed) {
  const auto nl = make_random_dag(dag_opts(GetParam()));
  EXPECT_FALSE(nl.has_combinational_cycle());
  EXPECT_NO_THROW(nl.topo_order());
  EXPECT_EQ(nl.outputs().size(), 12u);
  // Every fanin references an earlier net (DAG-by-construction).
  for (netlist::NetId id = 0; id < nl.gate_count(); ++id) {
    for (netlist::NetId f : nl.gate(id).fanin) {
      EXPECT_LT(f, id);
    }
  }
}

TEST_P(RandomCircuit, TimedSimConvergesToEvaluator) {
  // The final value of every endpoint after an event-driven transition
  // must equal the zero-delay evaluation of the target vector.
  const auto nl = make_random_dag(dag_opts(GetParam()));
  netlist::Evaluator ev(nl);
  timing::TimedSimulator sim(nl);
  Xoshiro256 rng(GetParam() * 31 + 7);
  for (int t = 0; t < 8; ++t) {
    const BitVec from = random_inputs(nl.inputs().size(), rng);
    const BitVec to = random_inputs(nl.inputs().size(), rng);
    const auto r = sim.simulate_transition(from, to);
    const BitVec settled = ev.eval(to);
    for (std::size_t i = 0; i < r.endpoint_waveforms.size(); ++i) {
      EXPECT_EQ(r.endpoint_waveforms[i].final_value(), settled.get(i));
    }
  }
}

TEST_P(RandomCircuit, StaBoundsEventSimSettleTimes) {
  // Static arrival is the worst case over all input vectors: no event-
  // driven settle time may exceed it.
  const auto nl = make_random_dag(dag_opts(GetParam()));
  timing::Sta sta(nl);
  timing::TimedSimulator sim(nl);
  const auto arrivals = sta.endpoint_arrivals();
  Xoshiro256 rng(GetParam() * 131 + 3);
  for (int t = 0; t < 6; ++t) {
    const auto r = sim.simulate_transition(
        random_inputs(nl.inputs().size(), rng),
        random_inputs(nl.inputs().size(), rng));
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
      EXPECT_LE(r.endpoint_waveforms[i].settle_time(), arrivals[i] + 1e-9);
    }
  }
}

TEST_P(RandomCircuit, BenchRoundTripPreservesFunction) {
  const auto original = make_random_dag(dag_opts(GetParam()));
  std::stringstream ss;
  netlist::write_bench(original, ss);
  const auto reparsed = netlist::parse_bench(ss, "rt");
  netlist::Evaluator ev_a(original), ev_b(reparsed);
  Xoshiro256 rng(GetParam() * 17 + 1);
  for (int t = 0; t < 24; ++t) {
    const BitVec in = random_inputs(original.inputs().size(), rng);
    EXPECT_EQ(ev_a.eval(in), ev_b.eval(in));
  }
}

TEST_P(RandomCircuit, WaveformsAreConsistentHistories) {
  // Each endpoint waveform starts at the settled `from` value, alternates
  // per toggle and obeys value_at() at every probe point.
  const auto nl = make_random_dag(dag_opts(GetParam()));
  netlist::Evaluator ev(nl);
  timing::TimedSimulator sim(nl);
  Xoshiro256 rng(GetParam() * 97 + 5);
  const BitVec from = random_inputs(nl.inputs().size(), rng);
  const BitVec to = random_inputs(nl.inputs().size(), rng);
  const BitVec initial = ev.eval(from);
  const auto r = sim.simulate_transition(from, to);
  for (std::size_t i = 0; i < r.endpoint_waveforms.size(); ++i) {
    const auto& wf = r.endpoint_waveforms[i];
    EXPECT_EQ(wf.initial_value(), initial.get(i));
    EXPECT_TRUE(std::is_sorted(wf.toggles().begin(), wf.toggles().end()));
    bool value = wf.initial_value();
    double prev = -1.0;
    for (double tg : wf.toggles()) {
      EXPECT_GT(tg, 0.0);
      if (tg > prev) {
        // Just before a strictly later toggle the old value holds.
        EXPECT_EQ(wf.value_at(tg - 1e-9), value);
      }
      value = !value;
      prev = tg;
      EXPECT_EQ(wf.value_at(tg), value);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCircuit,
                         ::testing::Range<std::uint64_t>(1, 13));

class CaptureProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CaptureProperty, SingleToggleProbabilityMonotoneInVoltage) {
  // A clean single-toggle endpoint must toggle *less* often as voltage
  // rises past its threshold... and more often below it: P(captured=1)
  // is monotone in V (within statistical noise).
  Xoshiro256 seed_rng(GetParam());
  const double toggle_t = 2.5 + seed_rng.uniform() * 1.0;
  timing::CaptureConfig cfg;
  cfg.clock_period_ns = 10.0 / 3.0;
  cfg.delay = timing::VoltageDelayModel{1.0, 3.0};
  cfg.jitter_sigma_ns = 0.08;
  cfg.common_jitter_sigma_ns = 0.0;
  cfg.endpoint_skew_sigma_ns = 0.0;
  cfg.setup_ns = 0.0;
  timing::OverclockedCapture cap({timing::Waveform(false, {toggle_t})}, cfg,
                                 GetParam());
  Xoshiro256 rng(GetParam() * 3 + 11);
  double prev_p = -0.05;
  for (double v = 0.85; v <= 1.1; v += 0.05) {
    int ones = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
      if (cap.sample(v, rng).get(0)) ++ones;
    }
    const double p = static_cast<double>(ones) / n;
    EXPECT_GE(p, prev_p - 0.04) << "v=" << v;  // allow sampling noise
    prev_p = p;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CaptureProperty,
                         ::testing::Range<std::uint64_t>(1, 7));

TEST(CpaProperty, EngineMatchesBruteForceRecomputation) {
  // The streaming five-sums engine must agree with a naive recomputation
  // over stored traces, for every guess and sample.
  Xoshiro256 rng(99);
  const auto& normal = FastNormal::instance();
  const std::size_t guesses = 12, samples = 5, traces = 3000;
  sca::CpaEngine engine(guesses, samples);
  std::vector<std::vector<std::uint8_t>> hs;
  std::vector<std::vector<double>> ys;
  for (std::size_t t = 0; t < traces; ++t) {
    std::vector<std::uint8_t> h(guesses);
    for (auto& b : h) b = rng.coin() ? 1 : 0;
    std::vector<double> y(samples);
    for (std::size_t s = 0; s < samples; ++s) {
      // The fold engine accumulates exact integers, so emit integer-valued
      // readings: a scaled leak plus quantized Gaussian noise.
      y[s] = std::round(10.0 * h[(s * 3) % guesses] + 100.0 * normal(rng));
    }
    engine.add_trace(h, y);
    hs.push_back(std::move(h));
    ys.push_back(std::move(y));
  }
  for (std::size_t k = 0; k < guesses; ++k) {
    for (std::size_t s = 0; s < samples; ++s) {
      std::vector<double> hx, yx;
      for (std::size_t t = 0; t < traces; ++t) {
        hx.push_back(hs[t][k]);
        yx.push_back(ys[t][s]);
      }
      EXPECT_NEAR(engine.correlation(k, s), pearson(hx, yx), 1e-9)
          << "k=" << k << " s=" << s;
    }
  }
}

TEST(PdnProperty, ResponseMatrixIsLinearInCurrents) {
  pdn::PdnConfig cfg;
  std::vector<double> samples{100.0, 110.0, 120.0};
  std::vector<double> cycles{60.0, 70.0, 80.0, 90.0, 100.0};
  const auto crm = pdn::CycleResponseMatrix::build(cfg, samples, cycles, 10.0);
  Xoshiro256 rng(5);
  for (int t = 0; t < 20; ++t) {
    std::vector<double> ia(5), ib(5), sum(5);
    for (std::size_t c = 0; c < 5; ++c) {
      ia[c] = rng.uniform();
      ib[c] = rng.uniform();
      sum[c] = ia[c] + ib[c];
    }
    for (std::size_t s = 0; s < samples.size(); ++s) {
      const double dv_a = crm.voltage_at(s, ia) - crm.dc_voltage();
      const double dv_b = crm.voltage_at(s, ib) - crm.dc_voltage();
      const double dv_sum = crm.voltage_at(s, sum) - crm.dc_voltage();
      EXPECT_NEAR(dv_sum, dv_a + dv_b, 1e-12);
    }
  }
}

}  // namespace
}  // namespace slm
