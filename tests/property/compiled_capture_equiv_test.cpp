// Bit-exactness property suite for timing::CompiledCapture (and the
// packed batch kernels) against the reference OverclockedCapture.
//
// The contract under test (see compiled_capture.hpp): on the same RNG
// stream, sample / sample_bit / sample_subset return bit-identical words
// AND consume the identical number of draws in the identical order; the
// *_from_draws batch kernels reproduce the same readings from a
// FastNormal::fill block; the noise-free voltage-threshold queries agree
// with a time-domain waveform walk. Each circuit family (ripple-carry
// adder, C6288 multiplier slices) is swept over randomized geometry,
// delays, capture configs, skew seeds and voltages — well over 1000
// randomized cases per family.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/bitvec.hpp"
#include "common/rng.hpp"
#include "netlist/generators/adder.hpp"
#include "netlist/generators/c6288.hpp"
#include "timing/capture.hpp"
#include "timing/compiled_capture.hpp"
#include "timing/timed_sim.hpp"

namespace slm {
namespace {

BitVec random_inputs(std::size_t width, Xoshiro256& rng) {
  BitVec v(width);
  for (std::size_t i = 0; i < width; ++i) v.set(i, rng.coin());
  return v;
}

double random_voltage(Xoshiro256& rng) {
  // Mostly around the operating point, with occasional extremes to hit
  // the delay-factor clamp and the always/never-crossed threshold arms.
  const std::uint64_t u = rng.next();
  const double frac = static_cast<double>(u >> 11) * 0x1p-53;
  switch (u % 8) {
    case 0:
      return 0.2 + 0.4 * frac;  // deep droop, factor near the clamp
    case 1:
      return 1.2 + 0.8 * frac;  // overvolted, waveform start
    default:
      return 0.85 + 0.25 * frac;  // paper's operating band
  }
}

struct Fixture {
  timing::OverclockedCapture ref;
  timing::CompiledCapture fast;

  Fixture(std::vector<timing::Waveform> wf, const timing::CaptureConfig& cfg,
          std::uint64_t skew_seed)
      : ref(std::move(wf), cfg, skew_seed), fast(ref) {}
};

/// One randomized capture config: jitter sigmas, clock, skew spread and
/// delay sensitivity all vary (including zero-jitter corners).
timing::CaptureConfig random_config(Xoshiro256& rng) {
  timing::CaptureConfig cfg;
  const auto frac = [&] {
    return static_cast<double>(rng.next() >> 11) * 0x1p-53;
  };
  cfg.clock_period_ns = 2.0 + 3.0 * frac();
  cfg.setup_ns = 0.02 + 0.05 * frac();
  cfg.jitter_sigma_ns = rng.coin() ? 0.0 : 0.02 + 0.1 * frac();
  cfg.common_jitter_sigma_ns = rng.coin() ? 0.0 : 0.05 + 0.15 * frac();
  cfg.endpoint_skew_sigma_ns = 0.02 + 0.1 * frac();
  cfg.delay.sensitivity_per_volt = 1.0 + 1.5 * frac();
  return cfg;
}

Fixture make_adder_fixture(std::uint64_t seed) {
  Xoshiro256 rng(seed * 0x9e3779b97f4a7c15ull + 1);
  netlist::AdderOptions opt;
  opt.width = 16 + rng.next() % 33;  // 16..48 bits
  opt.carry_stage_delay_ns = 0.015 + 0.01 * static_cast<double>(seed % 3);
  const auto nl = make_ripple_carry_adder(opt);
  timing::TimedSimulator sim(nl);
  const std::size_t n_in = nl.inputs().size();
  const auto r = sim.simulate_transition(random_inputs(n_in, rng),
                                         random_inputs(n_in, rng));
  return Fixture(r.endpoint_waveforms, random_config(rng), rng.next());
}

Fixture make_c6288_fixture(std::uint64_t seed) {
  Xoshiro256 rng(seed * 0x2545f4914f6cdd1dull + 3);
  netlist::C6288Options opt;
  opt.operand_width = 4 + rng.next() % 4;  // 4..7-bit multiplier slices
  const auto nl = make_c6288(opt);
  timing::TimedSimulator sim(nl);
  const std::size_t n_in = nl.inputs().size();
  const auto r = sim.simulate_transition(random_inputs(n_in, rng),
                                         random_inputs(n_in, rng));
  return Fixture(r.endpoint_waveforms, random_config(rng), rng.next());
}

/// Runs every equivalence check once for a (fixture, voltage, stream)
/// case. Returns the number of randomized cases exercised (for the
/// >= 1000 per-family accounting).
void check_case(const Fixture& f, double v, std::uint64_t stream_seed) {
  const std::size_t n = f.ref.endpoint_count();
  ASSERT_EQ(f.fast.endpoint_count(), n);

  // --- sample: identical word, identical stream position afterwards.
  {
    Xoshiro256 ra(stream_seed);
    Xoshiro256 rb(stream_seed);
    const BitVec wa = f.ref.sample(v, ra);
    const BitVec wb = f.fast.sample(v, rb);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(wa.get(i), wb.get(i)) << "endpoint " << i << " at v=" << v;
    }
    ASSERT_EQ(ra.next(), rb.next()) << "sample consumed a different draw count";
  }

  // --- sample_bit on a random endpoint.
  Xoshiro256 pick(stream_seed ^ 0xb17);
  const std::size_t bit = pick.next() % n;
  {
    Xoshiro256 ra(stream_seed + 1);
    Xoshiro256 rb(stream_seed + 1);
    ASSERT_EQ(f.ref.sample_bit(bit, v, ra), f.fast.sample_bit(bit, v, rb));
    ASSERT_EQ(ra.next(), rb.next());
  }

  // --- sample_subset on a random subset (ascending, like the campaign).
  std::vector<std::size_t> bits;
  for (std::size_t i = 0; i < n; ++i) {
    if (pick.coin()) bits.push_back(i);
  }
  if (bits.empty()) bits.push_back(bit);
  {
    Xoshiro256 ra(stream_seed + 2);
    Xoshiro256 rb(stream_seed + 2);
    const BitVec wa = f.ref.sample_subset(bits, v, ra);
    const BitVec wb = f.fast.sample_subset(bits, v, rb);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(wa.get(i), wb.get(i)) << "subset endpoint " << i;
    }
    ASSERT_EQ(ra.next(), rb.next());
  }

  // --- batch kernels against the per-call reference on the same block
  // of draws: hw_from_draws (indexed and packed), toggle_from_draws,
  // toggles_from_draws.
  {
    std::vector<std::uint32_t> idx(bits.begin(), bits.end());
    const timing::PackedToggleSubset packed = f.fast.pack_subset(idx);
    ASSERT_EQ(packed.size(), idx.size());

    Xoshiro256 ra(stream_seed + 3);
    Xoshiro256 rb(stream_seed + 3);
    std::vector<double> z(1 + idx.size());
    FastNormal::instance().fill(rb, z.data(), z.size());
    const std::uint32_t hw_idx =
        f.fast.hw_from_draws(idx.data(), idx.size(), v, z.data());
    const std::uint32_t hw_packed = packed.hw_from_draws(v, z.data());
    const std::uint32_t hw_nominal =
        packed.hw_at_nominal(packed.nominal_time(v), z.data());
    const BitVec wa = f.ref.sample_subset(bits, v, ra);
    const BitVec toggled = f.ref.toggled(wa);
    std::uint32_t hw_ref = 0;
    for (std::size_t i : bits) hw_ref += toggled.get(i) ? 1u : 0u;
    ASSERT_EQ(hw_idx, hw_ref);
    ASSERT_EQ(hw_packed, hw_ref);
    ASSERT_EQ(hw_nominal, hw_ref);
    ASSERT_EQ(ra.next(), rb.next());
  }
  {
    Xoshiro256 ra(stream_seed + 4);
    Xoshiro256 rb(stream_seed + 4);
    double z[2];
    FastNormal::instance().fill(rb, z, 2);
    const bool fast_toggle = f.fast.toggle_from_draws(bit, v, z);
    const bool ref_toggle =
        f.ref.sample_bit(bit, v, ra) !=
        f.ref.waveforms()[bit].initial_value();
    ASSERT_EQ(fast_toggle, ref_toggle);
    ASSERT_EQ(ra.next(), rb.next());
  }
  {
    Xoshiro256 ra(stream_seed + 5);
    Xoshiro256 rb(stream_seed + 5);
    std::vector<double> z(1 + n);
    FastNormal::instance().fill(rb, z.data(), z.size());
    std::vector<std::size_t> ones(n, 0);
    f.fast.toggles_from_draws(v, z.data(), ones.data());
    const BitVec toggled = f.ref.toggled(f.ref.sample(v, ra));
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(ones[i], toggled.get(i) ? 1u : 0u) << "endpoint " << i;
    }
    ASSERT_EQ(ra.next(), rb.next());
  }

  // --- hw_block: the lane-parallel kernel over a block of pre-drawn
  // slices must match hw_at_nominal lane by lane (same draws, same
  // nominal time per lane — the block pipeline's bit-exactness claim).
  {
    std::vector<std::uint32_t> idx(bits.begin(), bits.end());
    const timing::PackedToggleSubset packed = f.fast.pack_subset(idx);
    Xoshiro256 rb(stream_seed + 6);
    const std::size_t lanes = 1 + rb.next() % 17;  // ragged, incl. 1
    const std::size_t stride = 1 + idx.size();
    std::vector<double> z(lanes * stride);
    FastNormal::instance().fill(rb, z.data(), z.size());
    std::vector<double> t_nom(lanes);
    std::vector<double> vl(lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
      vl[l] = random_voltage(rb);
      t_nom[l] = packed.nominal_time(vl[l]);
    }
    std::vector<std::uint32_t> hw(lanes, 0);
    timing::PackedToggleSubset::BlockScratch scratch;
    packed.hw_block(t_nom.data(), lanes, z.data(), stride, hw.data(),
                    scratch);
    for (std::size_t l = 0; l < lanes; ++l) {
      ASSERT_EQ(hw[l], packed.hw_at_nominal(t_nom[l], z.data() + l * stride))
          << "lane " << l << " of " << lanes << " at v=" << vl[l];
    }
  }

  // --- noise-free threshold queries against a time-domain walk.
  {
    const double t = f.ref.effective_time(v);
    const auto& skews = f.ref.endpoint_skews();
    for (std::size_t i : bits) {
      const bool ref_value =
          f.ref.waveforms()[i].value_at(t - skews[i]);
      ASSERT_EQ(f.fast.value_noise_free(i, v), ref_value)
          << "endpoint " << i << " at v=" << v;
      ASSERT_EQ(f.fast.toggled_noise_free(i, v),
                ref_value != f.ref.waveforms()[i].initial_value());
    }
  }
}

class AdderFamily : public ::testing::TestWithParam<std::uint64_t> {};
class C6288Family : public ::testing::TestWithParam<std::uint64_t> {};

// 8 fixtures x 150 (voltage, stream) cases = 1200 randomized cases per
// family, each exercising every API in the contract.
constexpr int kCasesPerFixture = 150;

TEST_P(AdderFamily, CompiledCaptureIsBitExact) {
  const Fixture f = make_adder_fixture(GetParam());
  Xoshiro256 rng(GetParam() ^ 0xadd3f);
  for (int c = 0; c < kCasesPerFixture; ++c) {
    check_case(f, random_voltage(rng), rng.next());
    if (HasFatalFailure()) return;
  }
}

TEST_P(C6288Family, CompiledCaptureIsBitExact) {
  const Fixture f = make_c6288_fixture(GetParam());
  Xoshiro256 rng(GetParam() ^ 0xc6288);
  for (int c = 0; c < kCasesPerFixture; ++c) {
    check_case(f, random_voltage(rng), rng.next());
    if (HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdderFamily,
                         ::testing::Range<std::uint64_t>(0, 8));
INSTANTIATE_TEST_SUITE_P(Seeds, C6288Family,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace slm
