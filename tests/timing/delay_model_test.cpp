#include "timing/delay_model.hpp"

#include <gtest/gtest.h>

namespace slm::timing {
namespace {

TEST(VoltageDelayModel, NominalIsUnity) {
  VoltageDelayModel m{1.0, 2.0};
  EXPECT_DOUBLE_EQ(m.factor(1.0), 1.0);
}

TEST(VoltageDelayModel, DroopSlowsOvershootSpeeds) {
  VoltageDelayModel m{1.0, 2.0};
  EXPECT_GT(m.factor(0.9), 1.0);
  EXPECT_LT(m.factor(1.05), 1.0);
  EXPECT_DOUBLE_EQ(m.factor(0.9), 1.2);
  EXPECT_DOUBLE_EQ(m.factor(1.05), 0.9);
}

TEST(VoltageDelayModel, MonotoneDecreasingInVoltage) {
  VoltageDelayModel m{1.0, 4.0};
  double prev = m.factor(0.80);
  for (double v = 0.81; v <= 1.10; v += 0.01) {
    const double f = m.factor(v);
    EXPECT_LT(f, prev);
    prev = f;
  }
}

TEST(VoltageDelayModel, ClampedToPhysicalMinimum) {
  VoltageDelayModel m{1.0, 10.0};
  EXPECT_DOUBLE_EQ(m.factor(2.0), 0.05);  // would be negative unclamped
}

TEST(VoltageDelayModel, InverseRoundTrip) {
  VoltageDelayModel m{0.975, 3.0};
  for (double v : {0.85, 0.95, 0.975, 1.0, 1.02}) {
    EXPECT_NEAR(m.voltage_for_factor(m.factor(v)), v, 1e-12);
  }
}

TEST(VoltageDelayModel, CustomNominalPoint) {
  VoltageDelayModel m{0.975, 64.0};
  EXPECT_DOUBLE_EQ(m.factor(0.975), 1.0);
  EXPECT_GT(m.factor(0.95), 1.0);
}

}  // namespace
}  // namespace slm::timing
