#include "timing/capture.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace slm::timing {
namespace {

CaptureConfig quiet_config() {
  CaptureConfig cfg;
  cfg.clock_period_ns = 10.0 / 3.0;
  cfg.delay = VoltageDelayModel{1.0, 2.0};
  cfg.jitter_sigma_ns = 0.0;
  cfg.common_jitter_sigma_ns = 0.0;
  cfg.endpoint_skew_sigma_ns = 0.0;
  cfg.setup_ns = 0.0;
  return cfg;
}

TEST(Capture, EffectiveTimeScalesWithVoltage) {
  OverclockedCapture cap({Waveform(false, {1.0})}, quiet_config(), 1);
  const double t_nom = cap.effective_time(1.0);
  EXPECT_NEAR(t_nom, 10.0 / 3.0, 1e-12);
  EXPECT_LT(cap.effective_time(0.9), t_nom);   // droop -> earlier obs
  EXPECT_GT(cap.effective_time(1.05), t_nom);  // overshoot -> later obs
}

TEST(Capture, DeterministicSamplingWithoutNoise) {
  // Endpoint toggles at 3.0 ns; clock period 3.33 ns. At nominal voltage
  // the toggle is captured; at a 10% droop (factor 1.2 -> t_eff 2.78) it
  // is not.
  OverclockedCapture cap({Waveform(false, {3.0})}, quiet_config(), 1);
  Xoshiro256 rng(1);
  EXPECT_TRUE(cap.sample(1.0, rng).get(0));
  EXPECT_FALSE(cap.sample(0.90, rng).get(0));
}

TEST(Capture, ToggledAgainstResetValues) {
  OverclockedCapture cap({Waveform(true, {0.5}), Waveform(false, {})},
                         quiet_config(), 1);
  Xoshiro256 rng(2);
  const BitVec captured = cap.sample(1.0, rng);
  const BitVec toggles = cap.toggled(captured);
  EXPECT_TRUE(toggles.get(0));   // flipped from 1 to 0
  EXPECT_FALSE(toggles.get(1));  // static net
  EXPECT_TRUE(cap.reset_values().get(0));
  EXPECT_FALSE(cap.reset_values().get(1));
}

TEST(Capture, SampleBitMatchesWordWithoutNoise) {
  std::vector<Waveform> endpoints{Waveform(false, {2.0}),
                                  Waveform(false, {3.2}),
                                  Waveform(false, {4.0})};
  OverclockedCapture cap(endpoints, quiet_config(), 3);
  Xoshiro256 rng(3);
  for (double v : {0.92, 0.97, 1.0, 1.03}) {
    const BitVec word = cap.sample(v, rng);
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
      EXPECT_EQ(cap.sample_bit(i, v, rng), word.get(i)) << "v=" << v;
    }
  }
}

TEST(Capture, SubsetMatchesFullWordWithoutNoise) {
  std::vector<Waveform> endpoints{Waveform(false, {2.0}),
                                  Waveform(false, {3.2}),
                                  Waveform(false, {4.0})};
  OverclockedCapture cap(endpoints, quiet_config(), 3);
  Xoshiro256 rng(4);
  const BitVec full = cap.sample(0.97, rng);
  const BitVec sub = cap.sample_subset({0, 2}, 0.97, rng);
  EXPECT_EQ(sub.get(0), full.get(0));
  EXPECT_EQ(sub.get(2), full.get(2));
  EXPECT_FALSE(sub.get(1));  // unsampled bits read 0
}

TEST(Capture, SensitivityClassification) {
  // Toggle at 3.0 ns: t_eff sweeps [3.33/1.2, 3.33/0.9] = [2.78, 3.70]
  // over v in [0.9, 1.05] -> sensitive. A toggle at 1.0 ns is always
  // past -> insensitive; a toggle at 6 ns is never reached.
  std::vector<Waveform> endpoints{Waveform(false, {3.0}),
                                  Waveform(false, {1.0}),
                                  Waveform(false, {6.0}),
                                  Waveform(false, {})};
  OverclockedCapture cap(endpoints, quiet_config(), 5);
  EXPECT_TRUE(cap.endpoint_sensitive(0, 0.90, 1.05));
  EXPECT_FALSE(cap.endpoint_sensitive(1, 0.90, 1.05));
  EXPECT_FALSE(cap.endpoint_sensitive(2, 0.90, 1.05));
  EXPECT_FALSE(cap.endpoint_sensitive(3, 0.90, 1.05));
  EXPECT_EQ(cap.sensitive_endpoints(0.90, 1.05),
            std::vector<std::size_t>{0});
}

TEST(Capture, JitterCreatesFluctuationNearBoundary) {
  CaptureConfig cfg = quiet_config();
  cfg.jitter_sigma_ns = 0.1;
  // Toggle exactly at the nominal observation instant: with jitter the
  // captured value must fluctuate ~50/50.
  OverclockedCapture cap({Waveform(false, {10.0 / 3.0})}, cfg, 7);
  Xoshiro256 rng(7);
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (cap.sample(1.0, rng).get(0)) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.5, 0.03);
}

TEST(Capture, StaticSkewIsDeterministicPerSeed) {
  CaptureConfig cfg = quiet_config();
  cfg.endpoint_skew_sigma_ns = 0.2;
  OverclockedCapture a({Waveform(false, {3.0}), Waveform(false, {3.1})},
                       cfg, 42);
  OverclockedCapture b({Waveform(false, {3.0}), Waveform(false, {3.1})},
                       cfg, 42);
  EXPECT_EQ(a.endpoint_skews(), b.endpoint_skews());
  OverclockedCapture c({Waveform(false, {3.0}), Waveform(false, {3.1})},
                       cfg, 43);
  EXPECT_NE(a.endpoint_skews(), c.endpoint_skews());
}

TEST(Capture, Validation) {
  EXPECT_THROW(OverclockedCapture({}, quiet_config(), 1), slm::Error);
  OverclockedCapture cap({Waveform(false, {1.0})}, quiet_config(), 1);
  Xoshiro256 rng(1);
  EXPECT_THROW((void)cap.sample_bit(5, 1.0, rng), slm::Error);
  EXPECT_THROW((void)cap.endpoint_sensitive(0, 1.1, 0.9), slm::Error);
}

}  // namespace
}  // namespace slm::timing
