#include "timing/capture.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace slm::timing {
namespace {

CaptureConfig quiet_config() {
  CaptureConfig cfg;
  cfg.clock_period_ns = 10.0 / 3.0;
  cfg.delay = VoltageDelayModel{1.0, 2.0};
  cfg.jitter_sigma_ns = 0.0;
  cfg.common_jitter_sigma_ns = 0.0;
  cfg.endpoint_skew_sigma_ns = 0.0;
  cfg.setup_ns = 0.0;
  return cfg;
}

TEST(Capture, EffectiveTimeScalesWithVoltage) {
  OverclockedCapture cap({Waveform(false, {1.0})}, quiet_config(), 1);
  const double t_nom = cap.effective_time(1.0);
  EXPECT_NEAR(t_nom, 10.0 / 3.0, 1e-12);
  EXPECT_LT(cap.effective_time(0.9), t_nom);   // droop -> earlier obs
  EXPECT_GT(cap.effective_time(1.05), t_nom);  // overshoot -> later obs
}

TEST(Capture, DeterministicSamplingWithoutNoise) {
  // Endpoint toggles at 3.0 ns; clock period 3.33 ns. At nominal voltage
  // the toggle is captured; at a 10% droop (factor 1.2 -> t_eff 2.78) it
  // is not.
  OverclockedCapture cap({Waveform(false, {3.0})}, quiet_config(), 1);
  Xoshiro256 rng(1);
  EXPECT_TRUE(cap.sample(1.0, rng).get(0));
  EXPECT_FALSE(cap.sample(0.90, rng).get(0));
}

TEST(Capture, ToggledAgainstResetValues) {
  OverclockedCapture cap({Waveform(true, {0.5}), Waveform(false, {})},
                         quiet_config(), 1);
  Xoshiro256 rng(2);
  const BitVec captured = cap.sample(1.0, rng);
  const BitVec toggles = cap.toggled(captured);
  EXPECT_TRUE(toggles.get(0));   // flipped from 1 to 0
  EXPECT_FALSE(toggles.get(1));  // static net
  EXPECT_TRUE(cap.reset_values().get(0));
  EXPECT_FALSE(cap.reset_values().get(1));
}

TEST(Capture, SampleBitMatchesWordWithoutNoise) {
  std::vector<Waveform> endpoints{Waveform(false, {2.0}),
                                  Waveform(false, {3.2}),
                                  Waveform(false, {4.0})};
  OverclockedCapture cap(endpoints, quiet_config(), 3);
  Xoshiro256 rng(3);
  for (double v : {0.92, 0.97, 1.0, 1.03}) {
    const BitVec word = cap.sample(v, rng);
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
      EXPECT_EQ(cap.sample_bit(i, v, rng), word.get(i)) << "v=" << v;
    }
  }
}

TEST(Capture, SubsetMatchesFullWordWithoutNoise) {
  std::vector<Waveform> endpoints{Waveform(false, {2.0}),
                                  Waveform(false, {3.2}),
                                  Waveform(false, {4.0})};
  OverclockedCapture cap(endpoints, quiet_config(), 3);
  Xoshiro256 rng(4);
  const BitVec full = cap.sample(0.97, rng);
  const BitVec sub = cap.sample_subset({0, 2}, 0.97, rng);
  EXPECT_EQ(sub.get(0), full.get(0));
  EXPECT_EQ(sub.get(2), full.get(2));
  EXPECT_FALSE(sub.get(1));  // unsampled bits read 0
}

TEST(Capture, SensitivityClassification) {
  // Toggle at 3.0 ns: t_eff sweeps [3.33/1.2, 3.33/0.9] = [2.78, 3.70]
  // over v in [0.9, 1.05] -> sensitive. A toggle at 1.0 ns is always
  // past -> insensitive; a toggle at 6 ns is never reached.
  std::vector<Waveform> endpoints{Waveform(false, {3.0}),
                                  Waveform(false, {1.0}),
                                  Waveform(false, {6.0}),
                                  Waveform(false, {})};
  OverclockedCapture cap(endpoints, quiet_config(), 5);
  EXPECT_TRUE(cap.endpoint_sensitive(0, 0.90, 1.05));
  EXPECT_FALSE(cap.endpoint_sensitive(1, 0.90, 1.05));
  EXPECT_FALSE(cap.endpoint_sensitive(2, 0.90, 1.05));
  EXPECT_FALSE(cap.endpoint_sensitive(3, 0.90, 1.05));
  EXPECT_EQ(cap.sensitive_endpoints(0.90, 1.05),
            std::vector<std::size_t>{0});
}

TEST(Capture, JitterCreatesFluctuationNearBoundary) {
  CaptureConfig cfg = quiet_config();
  cfg.jitter_sigma_ns = 0.1;
  // Toggle exactly at the nominal observation instant: with jitter the
  // captured value must fluctuate ~50/50.
  OverclockedCapture cap({Waveform(false, {10.0 / 3.0})}, cfg, 7);
  Xoshiro256 rng(7);
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (cap.sample(1.0, rng).get(0)) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.5, 0.03);
}

TEST(Capture, StaticSkewIsDeterministicPerSeed) {
  CaptureConfig cfg = quiet_config();
  cfg.endpoint_skew_sigma_ns = 0.2;
  OverclockedCapture a({Waveform(false, {3.0}), Waveform(false, {3.1})},
                       cfg, 42);
  OverclockedCapture b({Waveform(false, {3.0}), Waveform(false, {3.1})},
                       cfg, 42);
  EXPECT_EQ(a.endpoint_skews(), b.endpoint_skews());
  OverclockedCapture c({Waveform(false, {3.0}), Waveform(false, {3.1})},
                       cfg, 43);
  EXPECT_NE(a.endpoint_skews(), c.endpoint_skews());
}

TEST(Capture, Validation) {
  EXPECT_THROW(OverclockedCapture({}, quiet_config(), 1), slm::Error);
  OverclockedCapture cap({Waveform(false, {1.0})}, quiet_config(), 1);
  Xoshiro256 rng(1);
  EXPECT_THROW((void)cap.sample_bit(5, 1.0, rng), slm::Error);
  EXPECT_THROW((void)cap.endpoint_sensitive(0, 1.1, 0.9), slm::Error);
}

// --- sample_subset jitter semantics ----------------------------------
//
// The contract the batched kernels (and the campaign RNG accounting)
// depend on: per call, ONE common-jitter draw shared by every listed
// endpoint, then one independent jitter draw per listed endpoint in
// list order; bits not listed stay zero in the returned word.

TEST(Capture, SubsetConsumesOneCommonPlusOnePerListedDraw) {
  CaptureConfig cfg = quiet_config();
  cfg.jitter_sigma_ns = 0.05;
  cfg.common_jitter_sigma_ns = 0.1;
  std::vector<Waveform> endpoints{
      Waveform(false, {3.0}), Waveform(false, {3.2}), Waveform(false, {3.3}),
      Waveform(false, {3.1}), Waveform(false, {2.9})};
  OverclockedCapture cap(endpoints, cfg, 11);
  for (const std::vector<std::size_t>& bits :
       {std::vector<std::size_t>{2}, std::vector<std::size_t>{0, 3},
        std::vector<std::size_t>{1, 2, 4},
        std::vector<std::size_t>{0, 1, 2, 3, 4}}) {
    Xoshiro256 used(99);
    Xoshiro256 counter(99);
    (void)cap.sample_subset(bits, 0.97, used);
    for (std::size_t i = 0; i < 1 + bits.size(); ++i) (void)counter.next();
    EXPECT_EQ(used.next(), counter.next())
        << "subset of " << bits.size() << " bits";
  }
}

TEST(Capture, SubsetReconstructsFromDocumentedDrawOrder) {
  // Replay the documented sampling recipe by hand — common draw first,
  // then per-endpoint jitters in list order — and demand the same word.
  CaptureConfig cfg = quiet_config();
  cfg.jitter_sigma_ns = 0.08;
  cfg.common_jitter_sigma_ns = 0.12;
  cfg.endpoint_skew_sigma_ns = 0.05;
  std::vector<Waveform> endpoints{
      Waveform(false, {3.0}), Waveform(true, {3.2, 3.4}),
      Waveform(false, {2.8, 3.0, 3.3}), Waveform(false, {3.1})};
  OverclockedCapture cap(endpoints, cfg, 21);
  const std::vector<std::size_t> bits{3, 1, 0};  // deliberately unsorted
  const auto& normal = FastNormal::instance();
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const double v = 0.9 + 0.002 * static_cast<double>(seed);
    Xoshiro256 ra(seed);
    Xoshiro256 rb(seed);
    const BitVec word = cap.sample_subset(bits, v, ra);
    const double t_eff =
        cap.effective_time(v) + normal(rb, 0.0, cfg.common_jitter_sigma_ns);
    for (std::size_t i : bits) {
      const double jitter = normal(rb, 0.0, cfg.jitter_sigma_ns);
      const double t = t_eff - cap.endpoint_skews()[i] + jitter;
      EXPECT_EQ(word.get(i), endpoints[i].value_at(t))
          << "endpoint " << i << " seed " << seed;
    }
    EXPECT_EQ(ra.next(), rb.next()) << "seed " << seed;
  }
}

TEST(Capture, SubsetCommonJitterIsSharedAcrossEndpoints) {
  // Two identical endpoints, no skew, no per-endpoint jitter: the shared
  // common draw must keep their captured values identical every sample,
  // while still flipping the pair across samples (toggle at the nominal
  // observation instant).
  CaptureConfig cfg = quiet_config();
  cfg.common_jitter_sigma_ns = 0.1;
  const Waveform wf(false, {10.0 / 3.0});
  OverclockedCapture cap({wf, wf}, cfg, 5);
  Xoshiro256 rng(31);
  int ones = 0;
  const int n = 4000;
  for (int s = 0; s < n; ++s) {
    const BitVec word = cap.sample_subset({0, 1}, 1.0, rng);
    ASSERT_EQ(word.get(0), word.get(1)) << "sample " << s;
    if (word.get(0)) ++ones;
  }
  EXPECT_GT(ones, n / 10);      // the common draw really moves the pair
  EXPECT_LT(ones, n - n / 10);
}

TEST(Capture, SubsetEndpointJitterIsIndependentPerEndpoint) {
  // Same two identical endpoints, but now only per-endpoint jitter: the
  // independent draws must split the pair a nontrivial fraction of the
  // time (two independent ~50/50 coins disagree half the time).
  CaptureConfig cfg = quiet_config();
  cfg.jitter_sigma_ns = 0.1;
  const Waveform wf(false, {10.0 / 3.0});
  OverclockedCapture cap({wf, wf}, cfg, 5);
  Xoshiro256 rng(37);
  int split = 0;
  const int n = 4000;
  for (int s = 0; s < n; ++s) {
    const BitVec word = cap.sample_subset({0, 1}, 1.0, rng);
    if (word.get(0) != word.get(1)) ++split;
  }
  EXPECT_NEAR(static_cast<double>(split) / n, 0.5, 0.05);
}

TEST(Capture, SubsetLeavesNonListedBitsZero) {
  // Endpoint 1 would capture 1 at nominal voltage (initial value true,
  // no toggles) — but it is not listed, so its bit must stay 0.
  CaptureConfig cfg = quiet_config();
  cfg.jitter_sigma_ns = 0.05;
  std::vector<Waveform> endpoints{Waveform(false, {1.0}),
                                  Waveform(true, {}), Waveform(true, {0.5})};
  OverclockedCapture cap(endpoints, cfg, 13);
  Xoshiro256 rng(41);
  for (int s = 0; s < 100; ++s) {
    const BitVec word = cap.sample_subset({0}, 1.0, rng);
    EXPECT_TRUE(word.get(0));   // toggle at 1.0 ns long captured
    EXPECT_FALSE(word.get(1));  // not listed: zero despite capturing 1
    EXPECT_FALSE(word.get(2));
  }
}

}  // namespace
}  // namespace slm::timing
