#include "timing/timed_sim.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "netlist/builder.hpp"
#include "netlist/evaluator.hpp"
#include "netlist/generators/adder.hpp"
#include "netlist/generators/c6288.hpp"
#include "timing/sta.hpp"

namespace slm::timing {
namespace {

using netlist::Builder;
using netlist::GateType;
using netlist::NetId;

TEST(TimedSim, BufferChainPropagation) {
  Builder b("chain");
  NetId n = b.input("a");
  for (int i = 0; i < 4; ++i) {
    n = b.gate(GateType::kBuf, {n}, "s" + std::to_string(i), 0.25);
  }
  b.output(n, "o");
  const auto nl = b.take();
  TimedSimulator sim(nl);
  const auto r = sim.simulate_transition(BitVec(1, 0), BitVec(1, 1));
  const auto& wf = r.endpoint_waveforms[0];
  EXPECT_FALSE(wf.initial_value());
  EXPECT_TRUE(wf.final_value());
  ASSERT_EQ(wf.toggle_count(), 1u);
  EXPECT_NEAR(wf.toggles()[0], 1.0, 1e-12);
}

TEST(TimedSim, NoInputChangeNoEvents) {
  Builder b("idle");
  const NetId a = b.input("a");
  b.output(b.not_(a), "o");
  const auto nl = b.take();
  TimedSimulator sim(nl);
  const auto r = sim.simulate_transition(BitVec(1, 1), BitVec(1, 1));
  EXPECT_EQ(r.total_events, 0u);
  EXPECT_EQ(r.endpoint_waveforms[0].toggle_count(), 0u);
}

TEST(TimedSim, ConvergesToSettledState) {
  netlist::AdderOptions opt;
  opt.width = 32;
  const auto nl = make_ripple_carry_adder(opt);
  TimedSimulator sim(nl);
  netlist::Evaluator ev(nl);
  Xoshiro256 rng(5);
  for (int t = 0; t < 10; ++t) {
    const auto from = pack_adder_inputs_u64(opt, rng.next() & 0xFFFFFFFF,
                                            rng.next() & 0xFFFFFFFF);
    const auto to = pack_adder_inputs_u64(opt, rng.next() & 0xFFFFFFFF,
                                          rng.next() & 0xFFFFFFFF);
    const auto r = sim.simulate_transition(from, to);
    const BitVec settled = ev.eval(to);
    for (std::size_t i = 0; i < r.endpoint_waveforms.size(); ++i) {
      EXPECT_EQ(r.endpoint_waveforms[i].final_value(), settled.get(i));
    }
  }
}

TEST(TimedSim, SettleTimeBoundedByStaArrival) {
  // Event-driven settle times can never exceed the static worst case.
  netlist::AdderOptions opt;
  opt.width = 48;
  const auto nl = make_ripple_carry_adder(opt);
  TimedSimulator sim(nl);
  Sta sta(nl);
  BitVec ones(opt.width);
  ones.set_all(true);
  BitVec one(opt.width);
  one.set(0, true);
  const auto r = sim.simulate_transition(
      pack_adder_inputs(opt, BitVec(opt.width), BitVec(opt.width), false),
      pack_adder_inputs(opt, ones, one, false));
  const auto arrivals = sta.endpoint_arrivals();
  for (std::size_t i = 0; i < r.endpoint_waveforms.size(); ++i) {
    EXPECT_LE(r.endpoint_waveforms[i].settle_time(), arrivals[i] + 1e-9);
  }
}

TEST(TimedSim, CarryStaircaseInAdderStimulus) {
  // The paper's stimulus: sum bit i goes 0 -> 1 (fast xor) -> 0 (carry
  // kill), with the kill time growing linearly in i.
  netlist::AdderOptions opt;
  opt.width = 64;
  const auto nl = make_ripple_carry_adder(opt);
  TimedSimulator sim(nl);
  BitVec ones(opt.width);
  ones.set_all(true);
  BitVec one(opt.width);
  one.set(0, true);
  const auto r = sim.simulate_transition(
      pack_adder_inputs(opt, BitVec(opt.width), BitVec(opt.width), false),
      pack_adder_inputs(opt, ones, one, false));
  double prev_settle = 0.0;
  for (std::size_t i = 8; i < opt.width; ++i) {
    const auto& wf = r.endpoint_waveforms[i];
    EXPECT_FALSE(wf.final_value()) << "bit " << i;
    EXPECT_GE(wf.toggle_count(), 2u) << "bit " << i;
    EXPECT_GT(wf.settle_time(), prev_settle) << "bit " << i;
    prev_settle = wf.settle_time();
  }
}

TEST(TimedSim, InertialFilteringSwallowsNarrowPulse) {
  // A 2-wide AND whose two inputs cross with a skew narrower than the
  // gate delay: transport delay would emit a pulse, inertial must not.
  Builder b("pulse");
  const NetId a = b.input("a");
  const NetId c = b.input("b");
  const NetId a_d = b.gate(GateType::kBuf, {a}, "da", 0.13);
  const NetId c_d = b.gate(GateType::kBuf, {c}, "db", 0.10);
  const NetId g = b.gate(GateType::kAnd, {a_d, c_d}, "g", 0.20);
  b.output(g, "o");
  const auto nl = b.take();
  TimedSimulator sim(nl);
  // a: 1->0 arrives at 0.13; b: 0->1 arrives at 0.10. AND sees (1,1)
  // for 0.03 ns -- far below its 0.2 ns inertia.
  const auto r = sim.simulate_transition(BitVec::from_string("01"),
                                         BitVec::from_string("10"));
  EXPECT_EQ(r.endpoint_waveforms[0].toggle_count(), 0u);
  EXPECT_FALSE(r.endpoint_waveforms[0].final_value());
}

TEST(TimedSim, WidePulsePasses) {
  Builder b("wide");
  const NetId a = b.input("a");
  const NetId c = b.input("b");
  const NetId a_d = b.gate(GateType::kBuf, {a}, "da", 0.90);
  const NetId c_d = b.gate(GateType::kBuf, {c}, "db", 0.10);
  const NetId g = b.gate(GateType::kAnd, {a_d, c_d}, "g", 0.20);
  b.output(g, "o");
  const auto nl = b.take();
  TimedSimulator sim(nl);
  // a falls at 0.9, b rises at 0.1: the (1,1) overlap lasts 0.8 ns,
  // far above the 0.2 ns inertia -- the pulse is real.
  const auto r = sim.simulate_transition(BitVec::from_string("01"),
                                         BitVec::from_string("10"));
  EXPECT_EQ(r.endpoint_waveforms[0].toggle_count(), 2u);
  EXPECT_FALSE(r.endpoint_waveforms[0].final_value());
}

TEST(TimedSim, C6288StimulusConverges) {
  netlist::C6288Options opt;
  const auto nl = make_c6288(opt);
  TimedSimulator sim(nl);
  const auto r = sim.simulate_transition(c6288_reset_stimulus(opt),
                                         c6288_measure_stimulus(opt));
  netlist::Evaluator ev(nl);
  const BitVec settled = ev.eval(c6288_measure_stimulus(opt));
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(r.endpoint_waveforms[i].final_value(), settled.get(i));
  }
  EXPECT_GT(r.total_events, 100u);  // the array genuinely churns
}

TEST(TimedSim, InputWidthMismatchThrows) {
  Builder b("w");
  const NetId a = b.input("a");
  b.output(b.not_(a), "o");
  const auto nl = b.take();
  TimedSimulator sim(nl);
  EXPECT_THROW(sim.simulate_transition(BitVec(2), BitVec(2)), slm::Error);
}

}  // namespace
}  // namespace slm::timing
