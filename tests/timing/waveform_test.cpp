#include "timing/waveform.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace slm::timing {
namespace {

TEST(Waveform, StaticNet) {
  Waveform w(true, {});
  EXPECT_TRUE(w.initial_value());
  EXPECT_TRUE(w.final_value());
  EXPECT_EQ(w.settle_time(), 0.0);
  EXPECT_TRUE(w.value_at(0.0));
  EXPECT_TRUE(w.value_at(100.0));
  EXPECT_FALSE(w.toggles_within(0.0, 100.0));
}

TEST(Waveform, SingleToggle) {
  Waveform w(false, {2.5});
  EXPECT_FALSE(w.value_at(2.4));
  EXPECT_TRUE(w.value_at(2.5));  // inclusive at the instant
  EXPECT_TRUE(w.value_at(9.0));
  EXPECT_TRUE(w.final_value());
  EXPECT_EQ(w.settle_time(), 2.5);
}

TEST(Waveform, GlitchPulse) {
  Waveform w(false, {1.0, 1.2, 3.0});
  EXPECT_FALSE(w.value_at(0.5));
  EXPECT_TRUE(w.value_at(1.1));
  EXPECT_FALSE(w.value_at(2.0));
  EXPECT_TRUE(w.value_at(3.5));
  EXPECT_TRUE(w.final_value());
  EXPECT_EQ(w.toggle_count(), 3u);
}

TEST(Waveform, TogglesWithinHalfOpenInterval) {
  Waveform w(false, {1.0, 2.0});
  EXPECT_TRUE(w.toggles_within(0.5, 1.0));   // (0.5, 1.0] includes 1.0
  EXPECT_FALSE(w.toggles_within(1.0, 1.5));  // (1.0, 1.5] excludes 1.0
  EXPECT_TRUE(w.toggles_within(1.5, 2.5));
  EXPECT_FALSE(w.toggles_within(2.5, 9.0));
}

TEST(Waveform, UnsortedTogglesRejected) {
  EXPECT_THROW(Waveform(false, {2.0, 1.0}), slm::Error);
}

TEST(Waveform, AppendEnforcesOrder) {
  Waveform w(false, {});
  w.append_toggle(1.0);
  w.append_toggle(1.0);  // equal allowed
  EXPECT_THROW(w.append_toggle(0.5), slm::Error);
  EXPECT_EQ(w.toggle_count(), 2u);
  EXPECT_FALSE(w.final_value());  // two toggles return to initial
}

TEST(Waveform, ValueBeforeFirstToggleIsInitial) {
  Waveform w(true, {5.0});
  EXPECT_TRUE(w.value_at(0.0));
  EXPECT_TRUE(w.value_at(4.999));
  EXPECT_FALSE(w.value_at(5.0));
}

}  // namespace
}  // namespace slm::timing
