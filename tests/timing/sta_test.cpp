#include "timing/sta.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "netlist/builder.hpp"
#include "netlist/generators/adder.hpp"

namespace slm::timing {
namespace {

using netlist::Builder;
using netlist::GateType;
using netlist::NetId;

TEST(Sta, ChainArrivalIsSumOfDelays) {
  Builder b("chain");
  NetId n = b.input("a");
  for (int i = 0; i < 5; ++i) {
    n = b.gate(GateType::kBuf, {n}, "s" + std::to_string(i), 0.1);
  }
  b.output(n, "o");
  Sta sta(b.peek());
  EXPECT_NEAR(sta.critical_delay(), 0.5, 1e-12);
}

TEST(Sta, TakesWorstFanin) {
  Builder b("worst");
  const NetId a = b.input("a");
  const NetId slow = b.gate(GateType::kBuf, {a}, "slow", 1.0);
  const NetId fast = b.gate(GateType::kBuf, {a}, "fast", 0.1);
  const NetId g = b.gate(GateType::kAnd, {slow, fast}, "g", 0.2);
  b.output(g, "o");
  Sta sta(b.peek());
  EXPECT_NEAR(sta.arrival(g), 1.2, 1e-12);
}

TEST(Sta, AdderArrivalStaircaseIsMonotone) {
  netlist::AdderOptions opt;
  opt.width = 64;
  const auto nl = make_ripple_carry_adder(opt);
  Sta sta(nl);
  const auto arr = sta.endpoint_arrivals();
  // Sum bits ride the carry chain: arrivals grow monotonically after the
  // first couple of bits.
  for (std::size_t i = 3; i < opt.width; ++i) {
    EXPECT_GT(arr[i], arr[i - 1]) << "bit " << i;
  }
  // Staircase spacing equals the carry stage delay.
  const double spacing = arr[40] - arr[39];
  EXPECT_NEAR(spacing, opt.carry_stage_delay_ns, 1e-9);
}

TEST(Sta, SlacksAndFailingEndpoints) {
  netlist::AdderOptions opt;
  opt.width = 192;
  const auto nl = make_ripple_carry_adder(opt);
  Sta sta(nl);
  // At the design clock (20 ns) everything passes.
  EXPECT_TRUE(sta.failing_endpoints(20.0).empty());
  // At the overclock (3.33 ns) high-order bits fail.
  const auto failing = sta.failing_endpoints(10.0 / 3.0);
  EXPECT_FALSE(failing.empty());
  // Failing endpoints are a suffix of the bit staircase.
  for (std::size_t i = 1; i < failing.size(); ++i) {
    EXPECT_EQ(failing[i], failing[i - 1] + 1);
  }
  const auto slacks = sta.endpoint_slacks(10.0 / 3.0);
  for (std::size_t idx : failing) EXPECT_LT(slacks[idx], 0.0);
}

TEST(Sta, CriticalPathTracesBackToInput) {
  netlist::AdderOptions opt;
  opt.width = 16;
  const auto nl = make_ripple_carry_adder(opt);
  Sta sta(nl);
  const auto path = sta.critical_path_to(nl.outputs()[15].net);
  ASSERT_GE(path.size(), 2u);
  EXPECT_TRUE(nl.gate(path.front()).fanin.empty());  // starts at a source
  EXPECT_EQ(path.back(), nl.outputs()[15].net);
  // Arrivals strictly non-decreasing along the path.
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_GE(sta.arrival(path[i]), sta.arrival(path[i - 1]));
  }
}

TEST(Sta, ReportMentionsWorstEndpoint) {
  netlist::AdderOptions opt;
  opt.width = 8;
  const auto nl = make_ripple_carry_adder(opt);
  Sta sta(nl);
  const std::string report = sta.report_critical_path();
  EXPECT_NE(report.find("critical path"), std::string::npos);
}

TEST(Sta, RejectsCycles) {
  Builder b("cyc");
  const NetId ph = b.const0();
  const NetId i1 = b.not_(ph);
  const NetId i2 = b.not_(i1);
  b.output(i2, "o");
  auto nl = b.take();
  nl.rewire_fanin(i1, 0, i2);
  EXPECT_THROW(Sta sta(nl), slm::Error);
}

}  // namespace
}  // namespace slm::timing
