#include "defense/active_fence.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace slm::defense {
namespace {

TEST(ActiveFence, DisabledIsConstant) {
  ActiveFenceConfig cfg;
  cfg.base_current_a = 0.05;
  cfg.random_current_a = 0.0;
  ActiveFence fence(cfg);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(fence.next_cycle_current(), 0.05);
  }
  EXPECT_DOUBLE_EQ(fence.mean_current_a(), 0.05);
}

TEST(ActiveFence, RandomComponentUniform) {
  ActiveFenceConfig cfg;
  cfg.base_current_a = 0.1;
  cfg.random_current_a = 0.4;
  ActiveFence fence(cfg);
  OnlineMeanVar acc;
  for (int i = 0; i < 50000; ++i) {
    const double c = fence.next_cycle_current();
    ASSERT_GE(c, 0.1);
    ASSERT_LT(c, 0.5);
    acc.add(c);
  }
  EXPECT_NEAR(acc.mean(), fence.mean_current_a(), 0.005);
  EXPECT_NEAR(acc.variance(), 0.4 * 0.4 / 12.0, 0.002);
}

TEST(ActiveFence, DeterministicPerSeed) {
  ActiveFenceConfig cfg;
  cfg.random_current_a = 0.2;
  ActiveFence a(cfg), b(cfg);
  for (int i = 0; i < 64; ++i) {
    EXPECT_DOUBLE_EQ(a.next_cycle_current(), b.next_cycle_current());
  }
}

TEST(ActiveFence, Validation) {
  ActiveFenceConfig bad;
  bad.base_current_a = -1.0;
  EXPECT_THROW(ActiveFence f(bad), slm::Error);
}

}  // namespace
}  // namespace slm::defense
