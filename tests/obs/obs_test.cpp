// Unit tests for the observability subsystem: metrics registry,
// log-linear histogram quantiles, JSON writer escaping, the JSONL sink,
// observer spans/events, and the campaign event stream end to end.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/campaign.hpp"
#include "core/setup.hpp"
#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"

namespace slm::obs {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream is(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(is, line);) lines.push_back(line);
  return lines;
}

TEST(HistogramTest, EmptyStatsAreZero) {
  Histogram h;
  const auto s = h.stats();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0.0);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(HistogramTest, ExactFieldsAndQuantileTolerance) {
  Histogram h;
  double sum = 0.0;
  for (int i = 1; i <= 1000; ++i) {
    const double v = static_cast<double>(i) * 1e-3;  // 1ms .. 1s
    h.record(v);
    sum += v;
  }
  const auto s = h.stats();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_DOUBLE_EQ(s.sum, sum);
  EXPECT_DOUBLE_EQ(s.min, 1e-3);
  EXPECT_DOUBLE_EQ(s.max, 1.0);
  // Log-linear buckets (16 per octave): quantiles are bucket lower
  // edges, so they sit within ~4.5% below the true value.
  EXPECT_GT(s.p50, 0.50 * 0.90);
  EXPECT_LE(s.p50, 0.50 * 1.01);
  EXPECT_GT(s.p95, 0.95 * 0.90);
  EXPECT_LE(s.p95, 0.95 * 1.01);
  EXPECT_GT(s.p99, 0.99 * 0.90);
  EXPECT_LE(s.p99, 0.99 * 1.01);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
}

TEST(HistogramTest, ZeroAndHugeValuesClampToEdgeBuckets) {
  Histogram h;
  h.record(0.0);
  h.record(-1.0);   // clamps into the zero bucket
  h.record(1e300);  // clamps into the overflow bucket
  const auto s = h.stats();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(h.quantile(0.0), 0.0);
  EXPECT_GT(h.quantile(1.0), 1e9);
}

TEST(MetricsRegistryTest, CountersGaugesHistograms) {
  MetricsRegistry reg;
  reg.add("slm.test.count");
  reg.add("slm.test.count", 4.0);
  reg.set("slm.test.gauge", 2.5);
  reg.set("slm.test.gauge", 7.5);  // last write wins
  reg.observe("slm.test.timer", 0.25);
  reg.observe("slm.test.timer", 0.75);

  EXPECT_DOUBLE_EQ(reg.counter("slm.test.count"), 5.0);
  EXPECT_DOUBLE_EQ(reg.gauge("slm.test.gauge"), 7.5);
  EXPECT_DOUBLE_EQ(reg.counter("slm.test.absent"), 0.0);
  const auto hs = reg.histogram("slm.test.timer");
  EXPECT_EQ(hs.count, 2u);
  EXPECT_DOUBLE_EQ(hs.sum, 1.0);

  EXPECT_EQ(reg.counter_names(),
            std::vector<std::string>{"slm.test.count"});
  EXPECT_EQ(reg.gauge_names(), std::vector<std::string>{"slm.test.gauge"});
  EXPECT_EQ(reg.histogram_names(),
            std::vector<std::string>{"slm.test.timer"});

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"slm.test.count\":5"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(ScopedTimerTest, RecordsIntoRegistryAndNullIsInert) {
  MetricsRegistry reg;
  {
    ScopedTimer t(&reg, "slm.test.scope_seconds");
    EXPECT_GE(t.elapsed_seconds(), 0.0);
  }
  EXPECT_EQ(reg.histogram("slm.test.scope_seconds").count, 1u);
  { ScopedTimer inert(nullptr, "never"); }  // must not crash
}

TEST(JsonWriterTest, TypesAndEscaping) {
  JsonWriter w;
  w.field("s", std::string_view("a\"b\\c\n\t"))
      .field("d", 1.5)
      .field("u", static_cast<std::uint64_t>(42))
      .field("i", static_cast<std::int64_t>(-7))
      .field("b", true)
      .raw("nested", "{\"x\":1}");
  const std::string json = w.str();
  EXPECT_EQ(json,
            "{\"s\":\"a\\\"b\\\\c\\n\\t\",\"d\":1.5,\"u\":42,\"i\":-7,"
            "\"b\":true,\"nested\":{\"x\":1}}");
  EXPECT_EQ(JsonWriter().str(), "{}");
  // Control characters escape as \u00XX.
  EXPECT_EQ(JsonWriter::escape(std::string("\x01", 1)), "\\u0001");
}

TEST(JsonlSinkTest, AppendsOneObjectPerLine) {
  const std::string path = temp_path("jsonl_sink_test.jsonl");
  std::remove(path.c_str());
  {
    JsonlSink sink(path);
    sink.write(JsonWriter().field("n", static_cast<std::uint64_t>(1)));
    sink.write(JsonWriter().field("n", static_cast<std::uint64_t>(2)));
    EXPECT_EQ(sink.lines_written(), 2u);
    EXPECT_EQ(sink.path(), path);
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"n\":1}");
  EXPECT_EQ(lines[1], "{\"n\":2}");
  std::remove(path.c_str());
}

TEST(JsonlSinkTest, UnopenablePathThrows) {
  EXPECT_THROW(JsonlSink("/nonexistent-dir-xyz/out.jsonl"), slm::Error);
}

// FlatJson edge cases: escape decoding, nested structure preservation,
// empty values, and the malformed-input battery. FlatJson parses every
// job file and tailed JSONL event, so a misparse here corrupts a
// tenant's campaign spec silently.
TEST(FlatJsonTest, EscapedQuotesAndBackslashesDecode) {
  const FlatJson j = FlatJson::parse(
      "{\"k\":\"a\\\"b\\\\c\",\"path\":\"C:\\\\tmp\\\\x\"}");
  EXPECT_EQ(j.string_field("k"), "a\"b\\c");
  EXPECT_EQ(j.string_field("path"), "C:\\tmp\\x");
}

TEST(FlatJsonTest, AllSimpleEscapesDecode) {
  const FlatJson j =
      FlatJson::parse("{\"k\":\"\\n\\r\\t\\b\\f\\/\\u0041\\u000a\"}");
  EXPECT_EQ(j.string_field("k"), "\n\r\t\b\f/A\n");
}

TEST(FlatJsonTest, RoundTripsJsonWriterEscaping) {
  const std::string nasty = "quote\" slash\\ nl\n tab\t ctl\x01 end";
  const std::string json =
      JsonWriter().field("s", std::string_view(nasty)).str();
  EXPECT_EQ(FlatJson::parse(json).string_field("s"), nasty);
}

TEST(FlatJsonTest, NestedBracesAndBracketsKeptRaw) {
  const FlatJson j = FlatJson::parse(
      "{\"a\":{\"x\":1,\"y\":[1,2,{\"z\":3}]},\"b\":[[],{}],\"c\":2}");
  ASSERT_TRUE(j.has("a"));
  EXPECT_EQ(j.raw_fields()[0].second, "{\"x\":1,\"y\":[1,2,{\"z\":3}]}");
  EXPECT_EQ(j.raw_fields()[1].second, "[[],{}]");
  EXPECT_EQ(j.number_field("c"), 2.0);
  // Nested values are raw-only: the typed accessors refuse them.
  EXPECT_FALSE(j.string_field("a").has_value());
  EXPECT_FALSE(j.number_field("a").has_value());
}

TEST(FlatJsonTest, BracesInsideStringsDoNotConfuseNesting) {
  const FlatJson j = FlatJson::parse(
      "{\"a\":{\"s\":\"}}}{\",\"t\":\"\\\"}\"},\"b\":true}");
  EXPECT_EQ(j.raw_fields()[0].second, "{\"s\":\"}}}{\",\"t\":\"\\\"}\"}");
  EXPECT_EQ(j.bool_field("b"), true);
}

TEST(FlatJsonTest, EmptyValues) {
  const FlatJson j =
      FlatJson::parse("{\"s\":\"\",\"o\":{},\"a\":[],\"n\":null}");
  ASSERT_TRUE(j.string_field("s").has_value());
  EXPECT_EQ(*j.string_field("s"), "");
  EXPECT_EQ(j.raw_fields()[1].second, "{}");
  EXPECT_EQ(j.raw_fields()[2].second, "[]");
  EXPECT_EQ(j.raw_fields()[3].second, "null");
  EXPECT_FALSE(j.string_field("n").has_value());
  EXPECT_FALSE(j.number_field("n").has_value());
  EXPECT_FALSE(j.bool_field("n").has_value());
}

TEST(FlatJsonTest, EmptyObjectAndWhitespaceForms) {
  EXPECT_TRUE(FlatJson::parse("{}").raw_fields().empty());
  EXPECT_TRUE(FlatJson::parse("  {\n}\t ").raw_fields().empty());
  const FlatJson j = FlatJson::parse(" { \"a\" : 1 , \"b\" : \"x\" } ");
  EXPECT_EQ(j.number_field("a"), 1.0);
  EXPECT_EQ(j.string_field("b"), "x");
}

TEST(FlatJsonTest, DuplicateKeysKeepLast) {
  const FlatJson j = FlatJson::parse("{\"k\":1,\"k\":2,\"k\":\"three\"}");
  EXPECT_EQ(j.raw_fields().size(), 1u);
  EXPECT_EQ(j.string_field("k"), "three");
}

TEST(FlatJsonTest, TypedAccessorsRejectWrongTypes) {
  const FlatJson j = FlatJson::parse(
      "{\"s\":\"5\",\"n\":5,\"neg\":-2,\"frac\":1.5,\"b\":true,"
      "\"bs\":\"true\"}");
  EXPECT_FALSE(j.number_field("s").has_value());  // quoted number
  EXPECT_FALSE(j.string_field("n").has_value());  // bare number
  EXPECT_EQ(j.number_field("n"), 5.0);
  EXPECT_EQ(j.uint_field("n"), 5u);
  EXPECT_FALSE(j.uint_field("neg").has_value());
  EXPECT_FALSE(j.uint_field("frac").has_value());
  EXPECT_EQ(j.bool_field("b"), true);
  EXPECT_FALSE(j.bool_field("bs").has_value());  // quoted "true"
  EXPECT_FALSE(j.bool_field("n").has_value());
}

TEST(FlatJsonTest, MalformedInputsThrow) {
  const char* bad[] = {
      "",                         // no object at all
      "   ",                      // whitespace only
      "[1,2]",                    // not an object
      "{\"a\":1",                 // unterminated object
      "{\"a\":}",                 // missing value
      "{\"a\" 1}",                // missing colon
      "{\"a\":1,}",               // trailing comma
      "{\"a\":\"x}",              // unterminated string
      "{\"a\":\"x\\\"}",          // escape eats the closing quote
      "{\"a\":\"\\q\"}",          // unknown escape
      "{\"a\":\"\\u00\"}",        // truncated \u escape
      "{\"a\":\"\\u00g1\"}",      // bad \u hex digit
      "{\"a\":{\"b\":1}",         // unbalanced nesting
      "{\"a\":1}extra",           // trailing content
      "{\"a\":1}{\"b\":2}",       // two objects on one line
      "{a:1}",                    // unquoted key
  };
  for (const char* text : bad) {
    EXPECT_THROW((void)FlatJson::parse(text), slm::Error) << text;
  }
}

TEST(FlatJsonTest, WideUnicodeEscapeSubstitutes) {
  // The decoder substitutes '?' outside ASCII rather than growing a
  // UTF-8 encoder nothing writes.
  EXPECT_EQ(FlatJson::parse("{\"k\":\"\\u00e9\\u4e2d\"}").string_field("k"),
            "??");
}

TEST(CampaignObserverTest, MetricsOnlyObserverHasNoSink) {
  CampaignObserver ob;
  EXPECT_FALSE(ob.has_sink());
  ob.event("ignored", JsonWriter().field("k", std::string_view("v")));
  ob.metrics().add("slm.test.events");
  EXPECT_DOUBLE_EQ(ob.metrics().counter("slm.test.events"), 1.0);
}

TEST(CampaignObserverTest, EventEnvelopeSpanAndManifest) {
  const std::string path = temp_path("observer_test.jsonl");
  std::remove(path.c_str());
  {
    CampaignObserver ob(path);
    ASSERT_TRUE(ob.has_sink());
    ob.event("hello", JsonWriter().field("x", static_cast<std::uint64_t>(9)));
    { auto span = ob.span("phase_a"); }
    ob.write_manifest(JsonWriter().field("ok", true));
    EXPECT_EQ(ob.metrics().histogram("slm.span.phase_a_seconds").count, 1u);
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].find("{\"ev\":\"hello\",\"ts\":"), 0u);
  EXPECT_NE(lines[0].find("\"x\":9"), std::string::npos);
  EXPECT_NE(lines[1].find("\"ev\":\"span\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"name\":\"phase_a\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"ev\":\"run_end\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(lines[2].find("\"ok\":true"), std::string::npos);
  std::remove(path.c_str());
}

// End-to-end: a small campaign under an observer emits the documented
// event stream and fills the phase-time split, without changing results
// vs the no-observer run (the zero-overhead contract's flip side).
TEST(CampaignObserverTest, CampaignEmitsEventStreamAndIdenticalResults) {
  const std::string path = temp_path("campaign_events_test.jsonl");
  std::remove(path.c_str());

  core::CampaignConfig cfg;
  cfg.mode = core::SensorMode::kTdcFull;
  cfg.traces = 300;
  cfg.checkpoints = {100, 300};
  cfg.selection_traces = 100;

  core::AttackSetup plain_setup(core::BenignCircuit::kAlu,
                                core::Calibration::paper_defaults());
  core::CpaCampaign plain(plain_setup, cfg);
  const auto baseline = plain.run();
  EXPECT_EQ(baseline.kernel_seconds, 0.0);  // no observer, no timers

  CampaignObserver ob(path);
  cfg.observer = &ob;
  core::AttackSetup obs_setup(core::BenignCircuit::kAlu,
                              core::Calibration::paper_defaults());
  core::CpaCampaign observed(obs_setup, cfg);
  const auto r = observed.run();

  EXPECT_EQ(r.final_max_abs_corr, baseline.final_max_abs_corr);
  EXPECT_EQ(r.recovered_guess, baseline.recovered_guess);
  EXPECT_GT(r.kernel_seconds, 0.0);
  EXPECT_GT(r.cpa_seconds, 0.0);

  EXPECT_DOUBLE_EQ(ob.metrics().counter("slm.campaign.checkpoints_total"),
                   2.0);
  EXPECT_DOUBLE_EQ(ob.metrics().gauge("slm.campaign.traces_done"), 300.0);
  EXPECT_EQ(
      ob.metrics().histogram("slm.campaign.segment_traces_per_sec").count,
      2u);

  std::ostringstream all;
  for (const auto& line : read_lines(path)) all << line << "\n";
  const std::string stream = all.str();
  EXPECT_NE(stream.find("\"ev\":\"run_start\""), std::string::npos);
  EXPECT_NE(stream.find("\"ev\":\"checkpoint\""), std::string::npos);
  EXPECT_NE(stream.find("\"ev\":\"span\""), std::string::npos);
  EXPECT_NE(stream.find("\"traces_per_sec\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace slm::obs
