// End-to-end reproduction smoke tests: each checks the *shape* of one of
// the paper's headline results on the simulated substrate, at trace
// counts small enough for CI.
#include <gtest/gtest.h>

#include <algorithm>

#include "bitstream/checker.hpp"
#include "core/attack.hpp"
#include "core/campaign.hpp"
#include "core/preliminary.hpp"
#include "fpga/clocking.hpp"
#include "fpga/bram.hpp"
#include "fpga/uart.hpp"
#include "netlist/generators/suspicious.hpp"

namespace slm::core {
namespace {

TEST(EndToEnd, AluBenignSensorRecoversKeyByte) {
  // Fig. 10's claim at reduced scale: the misused ALU alone suffices.
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  CampaignConfig cfg;
  cfg.mode = SensorMode::kBenignHw;
  cfg.traces = 120000;
  cfg.selection_traces = 2000;
  CpaCampaign campaign(setup, cfg);
  const auto result = campaign.run();
  EXPECT_TRUE(result.key_recovered);
  EXPECT_TRUE(result.mtd.disclosed());
}

TEST(EndToEnd, C6288SingleEndpointRecoversKeyByte) {
  // Fig. 18's claim: one path endpoint of a multiplier leaks the key.
  AttackSetup setup(BenignCircuit::kC6288x2, Calibration::paper_defaults());
  CampaignConfig cfg;
  cfg.mode = SensorMode::kBenignSingleBit;
  cfg.single_bit = CampaignConfig::kAutoBit;
  cfg.traces = 150000;
  cfg.selection_traces = 2000;
  CpaCampaign campaign(setup, cfg);
  const auto result = campaign.run();
  EXPECT_TRUE(result.key_recovered);
}

TEST(EndToEnd, TdcBeatsBenignSensorByOrdersOfMagnitude) {
  // The sensor-quality ordering of Figs. 9 vs 10.
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  CampaignConfig tdc_cfg;
  tdc_cfg.mode = SensorMode::kTdcFull;
  tdc_cfg.traces = 5000;
  const auto tdc = CpaCampaign(setup, tdc_cfg).run();
  ASSERT_TRUE(tdc.mtd.disclosed());
  EXPECT_LE(*tdc.mtd.traces, 5000u);

  // The benign sensor at the same trace count must NOT yet have a
  // comparable margin (it needs tens of thousands).
  CampaignConfig alu_cfg;
  alu_cfg.mode = SensorMode::kBenignHw;
  alu_cfg.traces = 5000;
  alu_cfg.selection_traces = 2000;
  const auto alu = CpaCampaign(setup, alu_cfg).run();
  EXPECT_LT(alu.mtd.final_margin, tdc.mtd.final_margin);
}

TEST(EndToEnd, StealthinessMatrix) {
  // The Discussion's detection matrix: conspicuous sensors are flagged,
  // benign circuits pass, and only strict timing checks catch the misuse.
  bitstream::BitstreamChecker structural;
  const auto ro =
      netlist::make_ring_oscillator(netlist::RingOscillatorOptions{});
  const auto tdc = netlist::make_tdc_line(netlist::TdcLineOptions{});
  EXPECT_FALSE(structural.check(ro).passed());
  EXPECT_FALSE(structural.check(tdc).passed());

  for (auto kind : {BenignCircuit::kAlu, BenignCircuit::kC6288x2}) {
    StealthyAttack attack(kind);
    EXPECT_TRUE(attack.check_stealthiness().passed());
    bitstream::CheckerOptions strict;
    strict.operating_clock_period_ns = 10.0 / 3.0;
    EXPECT_FALSE(attack.check_stealthiness(strict).passed());
  }
}

TEST(EndToEnd, AttackClocksAreOrdinaryMmcmSettings) {
  fpga::Mmcm mmcm;
  const auto cal = Calibration::paper_defaults();
  EXPECT_TRUE(mmcm.can_generate(cal.benign_design_mhz));
  EXPECT_TRUE(mmcm.can_generate(cal.overclock_mhz));
  EXPECT_TRUE(mmcm.can_generate(cal.aes_clock_mhz));
}

TEST(EndToEnd, TraceTransportRoundTrip) {
  // The Fig. 2 data path: sensor words -> BRAM -> UART -> workstation.
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  Xoshiro256 rng(1);
  fpga::TraceBuffer bram(64);
  for (int s = 0; s < 20; ++s) {
    const BitVec word = setup.sensor().sample_toggles(0.97, rng);
    bram.push(word.words()[0]);
  }
  const auto frame = fpga::make_trace_frame(bram.drain());
  fpga::FrameDecoder decoder;
  const auto frames = decoder.feed(fpga::encode_frame(frame));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(fpga::parse_trace_frame(frames[0]).size(), 20u);
}

TEST(EndToEnd, PreliminaryAndCpaAgreeOnSensorViability) {
  // If the preliminary experiment finds sensitive bits, the campaign's
  // selection pass must find bits of interest too (same physics).
  AttackSetup setup(BenignCircuit::kAlu, Calibration::paper_defaults());
  PreliminaryExperiment prelim(setup);
  TimeSeriesConfig ts;
  ts.duration_ns = 1200.0;
  ts.ro_active = true;
  const auto sensitive = prelim.analyse(prelim.run(ts)).fluctuating_bits();
  ASSERT_FALSE(sensitive.empty());

  CampaignConfig cfg;
  cfg.mode = SensorMode::kBenignHw;
  cfg.traces = 10;
  cfg.selection_traces = 1500;
  cfg.selection_min_variance = 0.02;
  CpaCampaign campaign(setup, cfg);
  const auto bits = campaign.select_bits_of_interest();
  ASSERT_FALSE(bits.empty());
  // Campaign bits of interest are a subset of the RO-sensitive set.
  for (std::size_t b : bits) {
    EXPECT_TRUE(std::find(sensitive.begin(), sensitive.end(), b) !=
                sensitive.end())
        << "bit " << b;
  }
}

}  // namespace
}  // namespace slm::core
