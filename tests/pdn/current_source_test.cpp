#include "pdn/current_source.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace slm::pdn {
namespace {

TEST(RoGrid, OffBeforeEnable) {
  RoGridAggressor grid(RoGridConfig{});
  EXPECT_DOUBLE_EQ(grid.current_at(50.0, 100.0), 0.0);
  EXPECT_GE(grid.current_at(150.0, 100.0), 0.0);
}

TEST(RoGrid, MaxCurrentIsCountTimesPerRo) {
  RoGridConfig cfg;
  cfg.ro_count = 8000;
  cfg.current_per_ro_a = 0.15e-3;
  RoGridAggressor grid(cfg);
  EXPECT_NEAR(grid.max_current_a(), 1.2, 1e-12);
}

TEST(RoGrid, GradualRampSuddenDrop) {
  RoGridConfig cfg;
  cfg.toggle_freq_mhz = 4.0;  // 250 ns period
  cfg.ramp_fraction = 0.8;    // ramp over 200 ns, off for 50 ns
  RoGridAggressor grid(cfg);
  const double imax = grid.max_current_a();
  // Mid-ramp: half the ramp -> half current.
  EXPECT_NEAR(grid.current_at(100.0, 0.0), imax * 0.5, 1e-9);
  // Just before the drop: nearly full current.
  EXPECT_GT(grid.current_at(199.0, 0.0), imax * 0.99);
  // After the drop: off.
  EXPECT_DOUBLE_EQ(grid.current_at(210.0, 0.0), 0.0);
  // Next period ramps again.
  EXPECT_NEAR(grid.current_at(350.0, 0.0), imax * 0.5, 1e-9);
}

TEST(RoGrid, RampIsMonotoneWithinPeriod) {
  RoGridAggressor grid(RoGridConfig{});
  double prev = -1.0;
  for (double t = 0.0; t < 200.0; t += 5.0) {
    const double i = grid.current_at(t, 0.0);
    EXPECT_GE(i, prev);
    prev = i;
  }
}

TEST(RoGrid, SequenceSamplesCurrentAt) {
  RoGridAggressor grid(RoGridConfig{});
  const auto seq = grid.sequence(100, 2.0, 50.0);
  ASSERT_EQ(seq.size(), 100u);
  for (std::size_t k = 0; k < seq.size(); ++k) {
    EXPECT_DOUBLE_EQ(seq[k], grid.current_at(2.0 * k, 50.0));
  }
}

TEST(RoGrid, Validation) {
  RoGridConfig bad;
  bad.ro_count = 0;
  EXPECT_THROW(RoGridAggressor g(bad), slm::Error);
  bad = RoGridConfig{};
  bad.ramp_fraction = 0.0;
  EXPECT_THROW(RoGridAggressor g(bad), slm::Error);
}

TEST(SimpleSources, PulseAndStep) {
  PulseSource pulse{2.0, 10.0, 5.0};
  EXPECT_DOUBLE_EQ(pulse.current_at(9.9), 0.0);
  EXPECT_DOUBLE_EQ(pulse.current_at(10.0), 2.0);
  EXPECT_DOUBLE_EQ(pulse.current_at(14.9), 2.0);
  EXPECT_DOUBLE_EQ(pulse.current_at(15.0), 0.0);

  StepSource step{1.5, 3.0};
  EXPECT_DOUBLE_EQ(step.current_at(2.9), 0.0);
  EXPECT_DOUBLE_EQ(step.current_at(3.0), 1.5);
  EXPECT_DOUBLE_EQ(step.current_at(100.0), 1.5);
}

}  // namespace
}  // namespace slm::pdn
