#include "pdn/rlc.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace slm::pdn {
namespace {

PdnConfig default_cfg() { return PdnConfig{}; }

TEST(RlcPdn, StartsAtDcOperatingPoint) {
  RlcPdn pdn(default_cfg());
  EXPECT_NEAR(pdn.voltage(), pdn.dc_voltage(default_cfg().idle_current_a),
              1e-12);
  // With no extra load the state must hold steady.
  for (int i = 0; i < 1000; ++i) pdn.step(0.0);
  EXPECT_NEAR(pdn.voltage(), pdn.dc_voltage(default_cfg().idle_current_a),
              1e-6);
}

TEST(RlcPdn, StepLoadSettlesToNewDc) {
  const PdnConfig cfg = default_cfg();
  RlcPdn pdn(cfg);
  const double extra = 1.0;
  // Run long enough for the transient to die out (~10 resonance periods).
  for (int i = 0; i < 40000; ++i) pdn.step(extra);
  EXPECT_NEAR(pdn.voltage(), pdn.dc_voltage(cfg.idle_current_a + extra),
              1e-4);
}

TEST(RlcPdn, UnderdampedDroopOvershootsSteadyState) {
  const PdnConfig cfg = default_cfg();
  RlcPdn pdn(cfg);
  ASSERT_LT(pdn.damping_ratio(), 1.0);  // configured underdamped
  const double v_dc_new = pdn.dc_voltage(cfg.idle_current_a + 1.0);
  double v_min = 10.0;
  for (int i = 0; i < 20000; ++i) v_min = std::min(v_min, pdn.step(1.0));
  EXPECT_LT(v_min, v_dc_new - 1e-4);  // transient dips below the new DC
}

TEST(RlcPdn, ReleaseOvershootsAboveIdle) {
  const PdnConfig cfg = default_cfg();
  RlcPdn pdn(cfg);
  const double v_idle = pdn.voltage();
  // Apply load until settled, then release suddenly.
  for (int i = 0; i < 40000; ++i) pdn.step(1.0);
  double v_max = 0.0;
  for (int i = 0; i < 20000; ++i) v_max = std::max(v_max, pdn.step(0.0));
  EXPECT_GT(v_max, v_idle + 1e-4);
}

TEST(RlcPdn, ResonanceMatchesAnalyticFormula) {
  const PdnConfig cfg = default_cfg();
  RlcPdn pdn(cfg);
  const double f_expected =
      1.0 / (2.0 * M_PI * std::sqrt(cfg.l_h * cfg.c_f)) / 1e6;
  EXPECT_NEAR(pdn.resonance_mhz(), f_expected, 1e-9);
  EXPECT_NEAR(pdn.resonance_mhz(), 100.7, 1.0);  // the calibrated point
}

TEST(RlcPdn, RunMatchesRepeatedStep) {
  RlcPdn a(default_cfg()), b(default_cfg());
  std::vector<double> loads;
  for (int i = 0; i < 500; ++i) loads.push_back(i % 100 < 50 ? 0.5 : 0.0);
  const auto series = a.run(loads);
  for (std::size_t i = 0; i < loads.size(); ++i) {
    EXPECT_DOUBLE_EQ(series[i], b.step(loads[i]));
  }
}

TEST(RlcPdn, LinearityOfDeviations) {
  // Double the stimulus -> double the deviation (the property the
  // CycleResponseMatrix engine relies on).
  const PdnConfig cfg = default_cfg();
  RlcPdn p1(cfg), p2(cfg);
  const double v_dc = p1.voltage();
  for (int i = 0; i < 3000; ++i) {
    const double load = (i > 100 && i < 300) ? 1.0 : 0.0;
    const double d1 = p1.step(load) - v_dc;
    const double d2 = p2.step(2.0 * load) - v_dc;
    EXPECT_NEAR(d2, 2.0 * d1, 1e-9);
  }
}

TEST(RlcPdn, ConfigValidation) {
  PdnConfig bad = default_cfg();
  bad.r_ohm = 0.0;
  EXPECT_THROW(RlcPdn pdn(bad), slm::Error);
  bad = default_cfg();
  bad.dt_ns = 100.0;  // way above stability limit
  EXPECT_THROW(RlcPdn pdn(bad), slm::Error);
}

}  // namespace
}  // namespace slm::pdn
