#include "pdn/cycle_response.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace slm::pdn {
namespace {

CycleResponseMatrix small_matrix() {
  PdnConfig cfg;
  const std::vector<double> samples{100.0, 110.0, 120.0, 130.0};
  const std::vector<double> cycles{80.0, 90.0, 100.0, 110.0};
  return CycleResponseMatrix::build(cfg, samples, cycles, 10.0);
}

TEST(CycleResponse, DcWithZeroCurrents) {
  const auto crm = small_matrix();
  const std::vector<double> zero(crm.cycle_count(), 0.0);
  for (std::size_t s = 0; s < crm.sample_count(); ++s) {
    EXPECT_DOUBLE_EQ(crm.voltage_at(s, zero), crm.dc_voltage());
  }
}

TEST(CycleResponse, CurrentCausesDroop) {
  const auto crm = small_matrix();
  std::vector<double> i(crm.cycle_count(), 0.0);
  i[2] = 1.0;  // cycle starting at t=100
  // The samples at/after the pulse must dip below DC.
  EXPECT_LT(crm.voltage_at(1, i), crm.dc_voltage());
  EXPECT_LT(crm.voltage_at(2, i), crm.dc_voltage());
}

TEST(CycleResponse, CausalityBeforePulse) {
  const auto crm = small_matrix();
  // Current in the cycle starting at 110 cannot affect the sample at 100.
  std::vector<double> i(crm.cycle_count(), 0.0);
  i[3] = 5.0;
  EXPECT_NEAR(crm.voltage_at(0, i), crm.dc_voltage(), 1e-9);
}

TEST(CycleResponse, SuperpositionMatchesFullSimulation) {
  PdnConfig cfg;
  const std::vector<double> samples{95.0, 105.0, 115.0};
  const std::vector<double> cycles{70.0, 80.0, 90.0, 100.0};
  const auto crm = CycleResponseMatrix::build(cfg, samples, cycles, 10.0);

  const std::vector<double> currents{0.3, 0.0, 0.8, 0.2};
  std::vector<double> fast;
  crm.voltages(currents, fast);

  // Reference: full RLC run with the same piecewise-constant load.
  RlcPdn pdn(cfg);
  std::vector<double> ref;
  std::size_t next = 0;
  for (double t = 0.0; t <= samples.back() + cfg.dt_ns && next < samples.size();
       t += cfg.dt_ns) {
    double load = 0.0;
    for (std::size_t c = 0; c < cycles.size(); ++c) {
      if (t >= cycles[c] && t < cycles[c] + 10.0) load += currents[c];
    }
    const double v = pdn.step(load);
    if (t + cfg.dt_ns > samples[next]) {
      ref.push_back(v);
      ++next;
    }
  }
  ASSERT_EQ(ref.size(), fast.size());
  for (std::size_t s = 0; s < ref.size(); ++s) {
    EXPECT_NEAR(fast[s], ref[s], 1e-6) << "sample " << s;
  }
}

TEST(CycleResponse, Validation) {
  PdnConfig cfg;
  EXPECT_THROW(CycleResponseMatrix::build(cfg, {}, {0.0}, 10.0), slm::Error);
  EXPECT_THROW(CycleResponseMatrix::build(cfg, {1.0}, {}, 10.0), slm::Error);
  EXPECT_THROW(CycleResponseMatrix::build(cfg, {2.0, 1.0}, {0.0}, 10.0),
               slm::Error);
  const auto crm = small_matrix();
  EXPECT_THROW((void)crm.voltage_at(99, {}), slm::Error);
  EXPECT_THROW((void)crm.voltage_at(0, {1.0}), slm::Error);  // wrong count
}

}  // namespace
}  // namespace slm::pdn
