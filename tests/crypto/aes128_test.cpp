#include "crypto/aes128.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace slm::crypto {
namespace {

// FIPS-197 Appendix B / C.1 vectors.
TEST(Aes128, Fips197AppendixB) {
  const Aes128 aes(block_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const Block ct = aes.encrypt(block_from_hex("3243f6a8885a308d313198a2e0370734"));
  EXPECT_EQ(block_to_hex(ct), "3925841d02dc09fbdc118597196a0b32");
}

TEST(Aes128, Fips197AppendixC1) {
  const Aes128 aes(block_from_hex("000102030405060708090a0b0c0d0e0f"));
  const Block ct = aes.encrypt(block_from_hex("00112233445566778899aabbccddeeff"));
  EXPECT_EQ(block_to_hex(ct), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128, DecryptInvertsEncrypt) {
  const Aes128 aes(block_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  Xoshiro256 rng(1);
  for (int t = 0; t < 50; ++t) {
    Block pt;
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());
    EXPECT_EQ(aes.decrypt(aes.encrypt(pt)), pt);
  }
}

TEST(Aes128, KeyScheduleKnownValues) {
  // FIPS-197 A.1: w4..w7 of the expanded 2b7e... key -> round key 1.
  const Aes128 aes(block_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  EXPECT_EQ(block_to_hex(aes.round_key(1)), "a0fafe1788542cb123a339392a6c7605");
  EXPECT_EQ(block_to_hex(aes.round_key(10)),
            "d014f9a8c9ee2589e13f0cc8b6630ca6");
  EXPECT_EQ(aes.last_round_key(), aes.round_key(10));
}

TEST(Aes128, EncryptStatesEndAtCiphertext) {
  const Aes128 aes(block_from_hex("000102030405060708090a0b0c0d0e0f"));
  const Block pt = block_from_hex("00112233445566778899aabbccddeeff");
  const auto states = aes.encrypt_states(pt);
  EXPECT_EQ(states[10], aes.encrypt(pt));
  // State 0 is pt ^ k0.
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(states[0][i], pt[i] ^ aes.round_key(0)[i]);
  }
}

TEST(Aes128, LastRoundStructure) {
  // state10[p] = Sbox(state9[isr(p)]) ^ k10[p] -- the identity the CPA
  // hypothesis model depends on.
  const Aes128 aes(block_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const Block pt = block_from_hex("3243f6a8885a308d313198a2e0370734");
  const auto states = aes.encrypt_states(pt);
  for (std::size_t p = 0; p < 16; ++p) {
    const std::uint8_t expected = static_cast<std::uint8_t>(
        Aes128::sbox(states[9][Aes128::inv_shift_rows_pos(p)]) ^
        aes.round_key(10)[p]);
    EXPECT_EQ(states[10][p], expected) << "position " << p;
  }
}

TEST(Aes128, SboxInverse) {
  for (int x = 0; x < 256; ++x) {
    const auto b = static_cast<std::uint8_t>(x);
    EXPECT_EQ(Aes128::inv_sbox(Aes128::sbox(b)), b);
    EXPECT_EQ(Aes128::sbox(Aes128::inv_sbox(b)), b);
  }
}

TEST(Aes128, ShiftRowsMapsAreInverse) {
  bool seen[16] = {};
  for (std::size_t p = 0; p < 16; ++p) {
    const std::size_t q = Aes128::shift_rows_pos(p);
    EXPECT_LT(q, 16u);
    EXPECT_FALSE(seen[q]);  // permutation
    seen[q] = true;
    EXPECT_EQ(Aes128::inv_shift_rows_pos(q), p);
  }
  // Row 0 is fixed.
  EXPECT_EQ(Aes128::shift_rows_pos(0), 0u);
  EXPECT_EQ(Aes128::shift_rows_pos(4), 4u);
}

TEST(BlockHex, RoundTripAndValidation) {
  const std::string h = "00112233445566778899aabbccddeeff";
  EXPECT_EQ(block_to_hex(block_from_hex(h)), h);
  EXPECT_THROW(block_from_hex("too short"), slm::Error);
  EXPECT_THROW(block_from_hex("zz112233445566778899aabbccddeeff"),
               slm::Error);
}

TEST(KeySchedule, MasterKeyRecoveredFromAnyRoundKey) {
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    Block key;
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
    const Aes128 aes(key);
    for (std::size_t r : {1u, 5u, 10u}) {
      EXPECT_EQ(recover_master_key(aes.round_key(r), r), key)
          << "round " << r;
    }
    EXPECT_EQ(recover_master_key(aes.round_key(0), 0), key);
  }
}

TEST(KeySchedule, KnownLastRoundKeyInverts) {
  // d014f9a8... is the FIPS-197 expansion of 2b7e1516...
  const Block k10 = block_from_hex("d014f9a8c9ee2589e13f0cc8b6630ca6");
  EXPECT_EQ(block_to_hex(recover_master_key(k10)),
            "2b7e151628aed2a6abf7158809cf4f3c");
}

TEST(KeySchedule, RoundOutOfRangeThrows) {
  EXPECT_THROW(recover_master_key(Block{}, 11), slm::Error);
}

TEST(Aes128, RoundKeyRangeCheck) {
  const Aes128 aes(block_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  EXPECT_THROW((void)aes.round_key(11), slm::Error);
}

}  // namespace
}  // namespace slm::crypto
