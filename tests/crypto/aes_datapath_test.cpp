#include "crypto/aes_datapath.hpp"

#include <gtest/gtest.h>

#include "common/bitvec.hpp"
#include "common/rng.hpp"

namespace slm::crypto {
namespace {

Block key() { return block_from_hex("2b7e151628aed2a6abf7158809cf4f3c"); }

TEST(AesDatapath, CiphertextMatchesReference) {
  AesDatapathModel model(key(), DatapathConfig{});
  const Aes128 ref(key());
  Xoshiro256 rng(2);
  for (int t = 0; t < 20; ++t) {
    Block pt;
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());
    EXPECT_EQ(model.encrypt(pt).ciphertext, ref.encrypt(pt));
  }
}

TEST(AesDatapath, CycleMapping) {
  EXPECT_EQ(AesDatapathModel::cycle_of(0, 0), 0u);
  EXPECT_EQ(AesDatapathModel::cycle_of(0, 3), 3u);
  EXPECT_EQ(AesDatapathModel::cycle_of(1, 0), 4u);
  EXPECT_EQ(AesDatapathModel::cycle_of(10, 3), 43u);
  EXPECT_EQ(AesDatapathModel::kCycles, 44u);
}

TEST(AesDatapath, LeakageCycleForByte) {
  // Byte position p sits in column p/4, written in cycle 40 + p/4.
  EXPECT_EQ(AesDatapathModel::leakage_cycle_for_byte(0), 40u);
  EXPECT_EQ(AesDatapathModel::leakage_cycle_for_byte(3), 40u);
  EXPECT_EQ(AesDatapathModel::leakage_cycle_for_byte(4), 41u);
  EXPECT_EQ(AesDatapathModel::leakage_cycle_for_byte(15), 43u);
}

TEST(AesDatapath, LastRoundHdMatchesStates) {
  // The HD of cycle 40+c must equal HD(state9 col c, ct col c).
  AesDatapathModel model(key(), DatapathConfig{});
  const Aes128 ref(key());
  const Block pt = block_from_hex("3243f6a8885a308d313198a2e0370734");
  const auto enc = model.encrypt(pt);
  const auto states = ref.encrypt_states(pt);
  for (std::size_t col = 0; col < 4; ++col) {
    std::uint32_t hd = 0;
    for (std::size_t r = 0; r < 4; ++r) {
      hd += static_cast<std::uint32_t>(slm::hamming_distance(
          states[9][4 * col + r], states[10][4 * col + r]));
    }
    EXPECT_EQ(enc.cycle_hd[40 + col], hd) << "col " << col;
  }
}

TEST(AesDatapath, CurrentIsBasePlusHdScaled) {
  DatapathConfig cfg;
  cfg.base_current_a = 0.5;
  cfg.current_per_hd_a = 0.01;
  AesDatapathModel model(key(), cfg);
  const auto enc = model.encrypt(Block{});
  for (std::size_t c = 0; c < AesDatapathModel::kCycles; ++c) {
    EXPECT_DOUBLE_EQ(enc.cycle_current[c],
                     0.5 + 0.01 * enc.cycle_hd[c]);
  }
}

TEST(AesDatapath, RegisterStateCarriesAcrossEncryptions) {
  DatapathConfig cfg;
  cfg.carry_previous_state = true;
  AesDatapathModel carry(key(), cfg);
  cfg.carry_previous_state = false;
  AesDatapathModel fresh(key(), cfg);

  const Block pt = block_from_hex("00000000000000000000000000000000");
  // First encryption: both start from a zero register -> same HDs.
  const auto c1 = carry.encrypt(pt);
  const auto f1 = fresh.encrypt(pt);
  EXPECT_EQ(c1.cycle_hd, f1.cycle_hd);
  // Second encryption: the carrying model loads over the old ciphertext,
  // so the load-phase HDs differ.
  const auto c2 = carry.encrypt(pt);
  const auto f2 = fresh.encrypt(pt);
  EXPECT_EQ(f2.cycle_hd, f1.cycle_hd);
  bool any_diff = false;
  for (std::size_t c = 0; c < 4; ++c) {
    if (c2.cycle_hd[c] != f2.cycle_hd[c]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(AesDatapath, CyclePeriodFromClock) {
  DatapathConfig cfg;
  cfg.clock_mhz = 100.0;
  AesDatapathModel model(key(), cfg);
  EXPECT_DOUBLE_EQ(model.cycle_period_ns(), 10.0);
}

}  // namespace
}  // namespace slm::crypto
