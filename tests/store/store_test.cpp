// Trace-store tests (src/store): the capture-once/replay-many contract.
// The load-bearing property is bit-exactness — a replayed fold must
// reproduce the live campaign's every progress point, rank and
// correlation, because the CPA accumulators are exact integer sums
// (partition invariance, sca/cpa.hpp). The battery also pins the
// format-level rejections: corrupt/truncated stores (StoreFormatError)
// and fingerprint mismatches (StoreMismatch).
#include "store/trace_store.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/parallel.hpp"
#include "core/setup.hpp"
#include "crypto/aes128.hpp"
#include "gtest/gtest.h"
#include "sca/model.hpp"
#include "sca/tvla.hpp"
#include "store/replay.hpp"

namespace slm::store {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

core::CampaignConfig small_config(std::size_t traces) {
  core::CampaignConfig cfg;
  cfg.mode = core::SensorMode::kTdcFull;
  cfg.traces = traces;
  cfg.selection_traces = 100;
  cfg.seed = 0x5eed;
  return cfg;
}

void expect_progress_equal(const std::vector<sca::CpaProgressPoint>& a,
                           const std::vector<sca::CpaProgressPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].traces, b[i].traces) << "point " << i;
    EXPECT_EQ(a[i].max_abs_corr, b[i].max_abs_corr) << "point " << i;
    EXPECT_EQ(a[i].best_guess, b[i].best_guess) << "point " << i;
    EXPECT_EQ(a[i].correct_rank, b[i].correct_rank) << "point " << i;
    EXPECT_EQ(a[i].correct_corr, b[i].correct_corr) << "point " << i;
    EXPECT_EQ(a[i].best_wrong_corr, b[i].best_wrong_corr) << "point " << i;
  }
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(is)),
                                   std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------------
// Replay bit-exactness against the live serial engine.

TEST(StoreReplayTest, SerialCampaignReplaysBitIdentically) {
  const std::string path = temp_path("store_serial.trc");
  std::remove(path.c_str());

  core::CampaignConfig cfg = small_config(500);
  cfg.checkpoints = {100, 250, 500};
  cfg.store_out = path;
  core::AttackSetup setup(core::BenignCircuit::kAlu,
                          core::Calibration::paper_defaults());
  core::CpaCampaign campaign(setup, cfg);
  const core::CampaignResult live = campaign.run();
  ASSERT_TRUE(std::filesystem::exists(path));

  TraceStoreReader reader(path);
  EXPECT_EQ(reader.kind(), StoreKind::kByteCampaign);
  EXPECT_EQ(reader.trace_count(), 500u);
  EXPECT_EQ(reader.samples(), live.sample_times_ns.size());

  const ReplayAttackResult replay = replay_attack(
      reader, core::checkpoint_schedule(cfg.checkpoints, cfg.traces),
      live.correct_guess);

  expect_progress_equal(replay.progress, live.progress);
  EXPECT_EQ(replay.recovered_guess, live.recovered_guess);
  EXPECT_EQ(replay.key_recovered, live.key_recovered);
  EXPECT_EQ(replay.traces, live.traces_run);
  EXPECT_EQ(replay.mtd.traces, live.mtd.traces);
  EXPECT_EQ(replay.mtd.final_margin, live.mtd.final_margin);
  std::remove(path.c_str());
}

TEST(StoreReplayTest, DefaultCheckpointScheduleReplaysBitIdentically) {
  // No explicit checkpoints: the live engine folds at the default
  // log-spaced schedule, and replay must resolve the SAME schedule.
  const std::string path = temp_path("store_defaultcp.trc");
  std::remove(path.c_str());

  core::CampaignConfig cfg = small_config(400);
  cfg.store_out = path;
  core::AttackSetup setup(core::BenignCircuit::kAlu,
                          core::Calibration::paper_defaults());
  const core::CampaignResult live = core::CpaCampaign(setup, cfg).run();

  TraceStoreReader reader(path);
  const ReplayAttackResult replay = replay_attack(
      reader, core::checkpoint_schedule({}, reader.trace_count()),
      live.correct_guess);
  expect_progress_equal(replay.progress, live.progress);
  EXPECT_EQ(replay.recovered_guess, live.recovered_guess);
  std::remove(path.c_str());
}

TEST(StoreReplayTest, ShardedCaptureWritesIdenticalColumnsToSerial) {
  // Under contract v2 the readings depend on the seed alone, so the
  // sharded writer must land byte-identical columns (only the
  // informational capture_threads header field may differ).
  const std::string serial_path = temp_path("store_cols_serial.trc");
  const std::string sharded_path = temp_path("store_cols_sharded.trc");
  std::remove(serial_path.c_str());
  std::remove(sharded_path.c_str());

  core::CampaignConfig cfg = small_config(300);
  cfg.rng_contract = core::RngContract::kV2;

  cfg.store_out = serial_path;
  core::AttackSetup s1(core::BenignCircuit::kAlu,
                       core::Calibration::paper_defaults());
  (void)core::CpaCampaign(s1, cfg).run();

  cfg.store_out = sharded_path;
  core::AttackSetup s2(core::BenignCircuit::kAlu,
                       core::Calibration::paper_defaults());
  core::ParallelCampaign par(s2, cfg, 3);
  (void)par.run();

  TraceStoreReader serial(serial_path);
  TraceStoreReader sharded(sharded_path);
  ASSERT_EQ(serial.trace_count(), sharded.trace_count());
  ASSERT_EQ(serial.samples(), sharded.samples());
  EXPECT_EQ(serial.identity(), sharded.identity());
  EXPECT_EQ(std::memcmp(serial.readings(0), sharded.readings(0),
                        serial.trace_count() * serial.samples() *
                            sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(serial.plaintext_ptr(0), sharded.plaintext_ptr(0),
                        serial.trace_count() * 16),
            0);
  EXPECT_EQ(std::memcmp(serial.ciphertext_ptr(0), sharded.ciphertext_ptr(0),
                        serial.trace_count() * 16),
            0);
  std::remove(serial_path.c_str());
  std::remove(sharded_path.c_str());
}

TEST(StoreReplayTest, ChunkBoundaryInvariance) {
  // The chunking is a pure integrity layer: rewriting the same columns
  // with a chunk size that does NOT divide the trace count must yield
  // identical reads and an identical replay.
  const std::string src_path = temp_path("store_chunk_src.trc");
  const std::string odd_path = temp_path("store_chunk_odd.trc");
  std::remove(src_path.c_str());
  std::remove(odd_path.c_str());

  core::CampaignConfig cfg = small_config(250);
  cfg.store_out = src_path;
  core::AttackSetup setup(core::BenignCircuit::kAlu,
                          core::Calibration::paper_defaults());
  const core::CampaignResult live = core::CpaCampaign(setup, cfg).run();

  TraceStoreReader src(src_path);
  ASSERT_EQ(src.chunk_count(), 1u);  // 250 < the 4096 default

  // Re-store the same columns with chunk_traces = 7 (250 = 35*7 + 5).
  TraceStoreWriter odd(odd_path, src.identity(), 7);
  odd.set_resolved_single_bit(src.resolved_single_bit());
  for (std::size_t t = 0; t < src.trace_count(); ++t) {
    odd.record_meta(t, src.plaintext(t), src.ciphertext(t));
    odd.record_readings(t, src.readings(t));
  }
  odd.finalize();

  TraceStoreReader re(odd_path);
  EXPECT_EQ(re.chunk_traces(), 7u);
  EXPECT_EQ(re.chunk_count(), 36u);
  EXPECT_EQ(re.identity(), src.identity());
  EXPECT_EQ(std::memcmp(re.readings(0), src.readings(0),
                        src.trace_count() * src.samples() * sizeof(double)),
            0);

  const auto checkpoints = core::checkpoint_schedule({}, cfg.traces);
  const ReplayAttackResult a =
      replay_attack(src, checkpoints, live.correct_guess);
  const ReplayAttackResult b =
      replay_attack(re, checkpoints, live.correct_guess);
  expect_progress_equal(a.progress, b.progress);
  EXPECT_EQ(a.recovered_guess, b.recovered_guess);
  std::remove(src_path.c_str());
  std::remove(odd_path.c_str());
}

TEST(StoreReplayTest, FullKeyReplaysBitIdentically) {
  const std::string path = temp_path("store_fullkey.trc");
  std::remove(path.c_str());

  core::CampaignConfig cfg = small_config(600);
  cfg.window_start_ns = 370.0;  // bracket every byte's leakage cycle
  cfg.window_end_ns = 470.0;
  cfg.store_out = path;
  core::AttackSetup setup(core::BenignCircuit::kAlu,
                          core::Calibration::paper_defaults());
  core::CpaCampaign campaign(setup, cfg);
  const core::FullKeyConfig fk;  // defaults: early exit on
  const core::FullKeyRunResult live = campaign.run_fullkey(fk);

  TraceStoreReader reader(path);
  EXPECT_EQ(reader.kind(), StoreKind::kFullKey);
  ReplayFullKeyOptions ropts;
  ropts.early_exit = fk.early_exit;
  ropts.early_exit_margin = fk.early_exit_margin;
  ropts.early_exit_stable = fk.early_exit_stable;
  ropts.early_exit_min_traces = fk.early_exit_min_traces;
  const ReplayFullKeyResult replay = replay_fullkey(
      reader, core::checkpoint_schedule(cfg.checkpoints, cfg.traces),
      setup.victim().cipher().last_round_key(), ropts);

  for (std::size_t b = 0; b < 16; ++b) {
    const core::FullKeyByteResult& lb = live.bytes[b];
    const ReplayFullKeyByte& rb = replay.bytes[b];
    EXPECT_EQ(rb.correct, lb.correct) << "byte " << b;
    EXPECT_EQ(rb.recovered, lb.recovered) << "byte " << b;
    EXPECT_EQ(rb.success, lb.success) << "byte " << b;
    EXPECT_EQ(rb.early_exited, lb.early_exited) << "byte " << b;
    EXPECT_EQ(rb.traces, lb.traces) << "byte " << b;
    EXPECT_EQ(rb.final_max_abs_corr, lb.final_max_abs_corr) << "byte " << b;
    expect_progress_equal(rb.progress, lb.progress);
  }
  EXPECT_EQ(replay.success, live.all_recovered());
  std::remove(path.c_str());
}

TEST(StoreReplayTest, TvlaReplaysBitIdentically) {
  const std::string path = temp_path("store_tvla.trc");
  std::remove(path.c_str());

  core::CampaignConfig cfg = small_config(200);
  cfg.store_out = path;
  core::AttackSetup setup(core::BenignCircuit::kAlu,
                          core::Calibration::paper_defaults());
  core::CpaCampaign campaign(setup, cfg);
  const sca::WelchTTest live = campaign.run_tvla(150);

  TraceStoreReader reader(path);
  EXPECT_EQ(reader.kind(), StoreKind::kTvla);
  EXPECT_EQ(reader.trace_count(), 300u);  // both populations interleaved

  const ReplayTvlaResult replay = replay_tvla(reader);
  EXPECT_EQ(replay.fixed_traces, live.fixed_traces());
  EXPECT_EQ(replay.random_traces, live.random_traces());
  EXPECT_EQ(replay.max_abs_t, live.max_abs_t());  // bit-exact double
  EXPECT_EQ(replay.leakage_detected, live.leakage_detected());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Fused one-pass replay: replay_all must reproduce each single-analysis
// replay bit for bit from ONE sweep of the store.

TEST(StoreReplayTest, FusedReplayMatchesSingleAnalysisBitIdentically) {
  const std::string path = temp_path("store_fused_byte.trc");
  std::remove(path.c_str());

  core::CampaignConfig cfg = small_config(500);
  cfg.checkpoints = {100, 250, 500};
  cfg.store_out = path;
  core::AttackSetup setup(core::BenignCircuit::kAlu,
                          core::Calibration::paper_defaults());
  const core::CampaignResult live = core::CpaCampaign(setup, cfg).run();
  const crypto::Block lrk = setup.victim().cipher().last_round_key();

  TraceStoreReader reader(path);
  const auto checkpoints =
      core::checkpoint_schedule(cfg.checkpoints, cfg.traces);
  const ReplayAttackResult single =
      replay_attack(reader, checkpoints, live.correct_guess);

  // Attack + specific TVLA, no full key: the attack fold takes the
  // XorClassCpa path and must equal the single-analysis replay exactly.
  ReplayAllOptions opts;
  opts.fullkey = false;
  const ReplayAllResult fused = replay_all(reader, checkpoints, lrk, opts);
  ASSERT_TRUE(fused.has_attack);
  ASSERT_FALSE(fused.has_fullkey);
  ASSERT_TRUE(fused.has_tvla);
  expect_progress_equal(fused.attack.progress, single.progress);
  EXPECT_EQ(fused.attack.correct_guess, single.correct_guess);
  EXPECT_EQ(fused.attack.recovered_guess, single.recovered_guess);
  EXPECT_EQ(fused.attack.key_recovered, single.key_recovered);
  EXPECT_EQ(fused.attack.mtd.traces, single.mtd.traces);

  // The specific t-test section against an independent per-trace oracle:
  // populations partitioned by the target model's predicted class bit.
  const StoreIdentity& id = reader.identity();
  sca::LastRoundBitModel model(id.target_key_byte, id.target_bit);
  sca::WelchTTest oracle(reader.samples());
  for (std::size_t t = 0; t < reader.trace_count(); ++t) {
    oracle.add(model.class_bit(reader.ciphertext(t)) == 0,
               reader.readings(t));
  }
  EXPECT_EQ(fused.tvla.max_abs_t, oracle.max_abs_t());
  EXPECT_EQ(fused.tvla.fixed_traces, oracle.fixed_traces());
  EXPECT_EQ(fused.tvla.random_traces, oracle.random_traces());
  EXPECT_EQ(fused.tvla.leakage_detected, oracle.leakage_detected());

  // With full key riding along, the attack fold comes from the fused
  // 16-byte tile instead — still bit-identical (multibyte equivalence).
  const ReplayAllResult everything = replay_all(reader, checkpoints, lrk);
  ASSERT_TRUE(everything.has_attack && everything.has_fullkey &&
              everything.has_tvla);
  expect_progress_equal(everything.attack.progress, single.progress);
  EXPECT_EQ(everything.tvla.max_abs_t, fused.tvla.max_abs_t);
  const std::size_t target = static_cast<std::size_t>(id.target_key_byte);
  EXPECT_EQ(everything.fullkey.bytes[target].recovered,
            everything.attack.recovered_guess);
  std::remove(path.c_str());
}

TEST(StoreReplayTest, FusedReplayMatchesFullKeyReplayBitIdentically) {
  const std::string path = temp_path("store_fused_fullkey.trc");
  std::remove(path.c_str());

  core::CampaignConfig cfg = small_config(600);
  cfg.window_start_ns = 370.0;
  cfg.window_end_ns = 470.0;
  cfg.store_out = path;
  core::AttackSetup setup(core::BenignCircuit::kAlu,
                          core::Calibration::paper_defaults());
  core::CpaCampaign campaign(setup, cfg);
  (void)campaign.run_fullkey(core::FullKeyConfig{});
  const crypto::Block lrk = setup.victim().cipher().last_round_key();

  TraceStoreReader reader(path);
  const auto checkpoints =
      core::checkpoint_schedule(cfg.checkpoints, cfg.traces);
  const ReplayFullKeyResult single =
      replay_fullkey(reader, checkpoints, lrk);
  const ReplayAllResult fused = replay_all(reader, checkpoints, lrk);
  ASSERT_TRUE(fused.has_fullkey);
  for (std::size_t b = 0; b < 16; ++b) {
    const ReplayFullKeyByte& sb = single.bytes[b];
    const ReplayFullKeyByte& fb = fused.fullkey.bytes[b];
    EXPECT_EQ(fb.correct, sb.correct) << "byte " << b;
    EXPECT_EQ(fb.recovered, sb.recovered) << "byte " << b;
    EXPECT_EQ(fb.success, sb.success) << "byte " << b;
    EXPECT_EQ(fb.early_exited, sb.early_exited) << "byte " << b;
    EXPECT_EQ(fb.traces, sb.traces) << "byte " << b;
    EXPECT_EQ(fb.final_max_abs_corr, sb.final_max_abs_corr) << "byte " << b;
    expect_progress_equal(fb.progress, sb.progress);
  }
  EXPECT_EQ(fused.fullkey.success, single.success);
  EXPECT_EQ(fused.fullkey.recovered_last_round_key,
            single.recovered_last_round_key);
  EXPECT_EQ(fused.fullkey.bytes_early_exited, single.bytes_early_exited);
  std::remove(path.c_str());
}

TEST(StoreReplayTest, FusedReplayOnTvlaStore) {
  const std::string path = temp_path("store_fused_tvla.trc");
  std::remove(path.c_str());

  core::CampaignConfig cfg = small_config(200);
  cfg.store_out = path;
  core::AttackSetup setup(core::BenignCircuit::kAlu,
                          core::Calibration::paper_defaults());
  core::CpaCampaign campaign(setup, cfg);
  (void)campaign.run_tvla(150);
  const crypto::Block lrk = setup.victim().cipher().last_round_key();

  TraceStoreReader reader(path);
  const ReplayTvlaResult single = replay_tvla(reader);

  // Key-hypothesis analyses need ciphertext labels a TVLA capture has
  // no campaign contract for — asking is a mismatch, not a silent skip.
  EXPECT_THROW(replay_all(reader, {}, lrk), StoreMismatch);

  ReplayAllOptions opts;
  opts.attack = false;
  opts.fullkey = false;
  const ReplayAllResult fused = replay_all(reader, {}, lrk, opts);
  ASSERT_TRUE(fused.has_tvla);
  EXPECT_FALSE(fused.has_attack);
  EXPECT_FALSE(fused.has_fullkey);
  EXPECT_EQ(fused.tvla.max_abs_t, single.max_abs_t);
  EXPECT_EQ(fused.tvla.fixed_traces, single.fixed_traces);
  EXPECT_EQ(fused.tvla.random_traces, single.random_traces);
  EXPECT_EQ(fused.tvla.leakage_detected, single.leakage_detected);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Format-level rejection battery.

class StoreFormatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = temp_path("store_format.trc");
    std::remove(path_.c_str());
    core::CampaignConfig cfg = small_config(120);
    cfg.store_out = path_;
    core::AttackSetup setup(core::BenignCircuit::kAlu,
                            core::Calibration::paper_defaults());
    (void)core::CpaCampaign(setup, cfg).run();
    bytes_ = slurp(path_);
    ASSERT_GT(bytes_.size(), 128u);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  std::vector<std::uint8_t> bytes_;
};

TEST_F(StoreFormatTest, MissingFileThrowsFormatError) {
  EXPECT_THROW(TraceStoreReader(temp_path("no_such_store.trc")),
               StoreFormatError);
}

TEST_F(StoreFormatTest, FlippedPayloadByteThrowsFormatError) {
  auto bad = bytes_;
  bad[bad.size() / 2] ^= 0x40;  // lands in a column -> chunk CRC breaks
  spit(path_, bad);
  EXPECT_THROW(TraceStoreReader reader(path_), StoreFormatError);
}

TEST_F(StoreFormatTest, FlippedEnvelopeCrcThrowsFormatError) {
  auto bad = bytes_;
  bad[20] ^= 0x01;  // envelope CRC bytes at offset 20..23
  spit(path_, bad);
  EXPECT_THROW(TraceStoreReader reader(path_), StoreFormatError);
}

TEST_F(StoreFormatTest, TruncationThrowsFormatError) {
  auto bad = bytes_;
  bad.resize(bad.size() - 64);
  spit(path_, bad);
  EXPECT_THROW(TraceStoreReader reader(path_), StoreFormatError);

  bad.resize(10);  // shorter than the envelope header
  spit(path_, bad);
  EXPECT_THROW(TraceStoreReader reader(path_), StoreFormatError);
}

TEST_F(StoreFormatTest, WrongMagicThrowsFormatError) {
  auto bad = bytes_;
  bad[0] = 'X';
  spit(path_, bad);
  EXPECT_THROW(TraceStoreReader reader(path_), StoreFormatError);
}

TEST_F(StoreFormatTest, MismatchedIdentityThrowsStoreMismatch) {
  TraceStoreReader reader(path_);
  StoreIdentity expected = reader.identity();
  expected.seed ^= 1;
  expected.target_key_byte = 7;
  try {
    reader.identity().require_compatible(expected, "store_test");
    FAIL() << "expected StoreMismatch";
  } catch (const StoreMismatch& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("seed"), std::string::npos) << what;
    EXPECT_NE(what.find("target_key_byte"), std::string::npos) << what;
  }
}

TEST_F(StoreFormatTest, MatchingIdentityPasses) {
  TraceStoreReader reader(path_);
  EXPECT_NO_THROW(
      reader.identity().require_compatible(reader.identity(), "store_test"));
}

// ---------------------------------------------------------------------
// Writer discipline.

TEST(StoreWriterTest, IncompleteFinalizeThrowsAndWritesNothing) {
  const std::string path = temp_path("store_incomplete.trc");
  std::remove(path.c_str());
  StoreIdentity id;
  id.kind = static_cast<std::uint8_t>(StoreKind::kByteCampaign);
  id.trace_count = 4;
  id.samples = 2;
  TraceStoreWriter writer(path, id);
  const double y[2] = {1.0, 2.0};
  writer.record_meta(0, crypto::Block{}, crypto::Block{});
  writer.record_readings(0, y);
  EXPECT_THROW((void)writer.finalize(), Error);
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(StoreWriterTest, AbandonedWriterLeavesNoFile) {
  const std::string path = temp_path("store_abandoned.trc");
  std::remove(path.c_str());
  {
    StoreIdentity id;
    id.trace_count = 8;
    id.samples = 1;
    TraceStoreWriter writer(path, id);
    const double y = 0.5;
    writer.record_meta(0, crypto::Block{}, crypto::Block{});
    writer.record_readings(0, &y);
    // A halted campaign destroys the writer without finalize().
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(StoreWriterTest, RoundTripPreservesEveryColumn) {
  const std::string path = temp_path("store_roundtrip.trc");
  std::remove(path.c_str());
  StoreIdentity id;
  id.kind = static_cast<std::uint8_t>(StoreKind::kByteCampaign);
  id.circuit = 1;
  id.mode = 2;
  id.rng_contract = 2;
  id.seed = 0xabcdef;
  id.trace_count = 10;
  id.samples = 3;
  id.target_key_byte = 5;
  id.config_hash = 0x1234;

  TraceStoreWriter writer(path, id, 4);  // 10 = 2*4 + 2 -> 3 chunks
  writer.set_resolved_single_bit(21);
  writer.set_capture_threads(2);
  for (std::size_t t = 0; t < 10; ++t) {
    crypto::Block pt{};
    crypto::Block ct{};
    pt[0] = static_cast<std::uint8_t>(t);
    ct[15] = static_cast<std::uint8_t>(0xf0 + t);
    writer.record_meta(t, pt, ct);
    const double y[3] = {static_cast<double>(t), t + 0.25, t * 3.0};
    writer.record_readings(t, y);
  }
  const TraceStoreWriter::FinalizeStats stats = writer.finalize();
  EXPECT_EQ(stats.traces, 10u);
  EXPECT_EQ(stats.chunks, 3u);
  EXPECT_EQ(stats.bytes_written, std::filesystem::file_size(path));

  TraceStoreReader reader(path);
  EXPECT_EQ(reader.identity(), id);
  EXPECT_EQ(reader.chunk_traces(), 4u);
  EXPECT_EQ(reader.chunk_count(), 3u);
  EXPECT_EQ(reader.resolved_single_bit(), 21u);
  EXPECT_EQ(reader.capture_threads(), 2u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(reader.readings(0)) % 8, 0u)
      << "readings column must be 8-byte aligned for zero-copy folds";
  for (std::size_t t = 0; t < 10; ++t) {
    EXPECT_EQ(reader.readings(t)[0], static_cast<double>(t));
    EXPECT_EQ(reader.readings(t)[1], t + 0.25);
    EXPECT_EQ(reader.readings(t)[2], t * 3.0);
    EXPECT_EQ(reader.plaintext(t)[0], static_cast<std::uint8_t>(t));
    EXPECT_EQ(reader.ciphertext(t)[15], static_cast<std::uint8_t>(0xf0 + t));
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace slm::store
