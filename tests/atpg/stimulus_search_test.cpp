#include "atpg/stimulus_search.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "netlist/generators/adder.hpp"
#include "netlist/generators/c6288.hpp"
#include "timing/timed_sim.hpp"

namespace slm::atpg {
namespace {

TEST(StimulusSearch, FindsLongPathInAdder) {
  netlist::AdderOptions opt;
  opt.width = 24;
  const auto nl = make_ripple_carry_adder(opt);
  StimulusSearchConfig cfg;
  cfg.random_trials = 80;
  cfg.hill_climb_iters = 250;
  StimulusSearch search(nl, cfg);
  // Maximise the settle time of the carry-out endpoint (index width).
  const auto pair = search.find_path_stimulus(opt.width);
  // The full carry chain settles at ~0.99 ns; a good stimulus must
  // excite a substantial part of it (random vectors alone reach ~0.6).
  EXPECT_GT(pair.score, 0.75);
  // The returned pair reproduces its own score.
  timing::TimedSimulator sim(nl);
  const auto r = sim.simulate_transition(pair.reset, pair.measure);
  EXPECT_NEAR(r.endpoint_waveforms[opt.width].settle_time(), pair.score,
              1e-12);
}

TEST(StimulusSearch, SensorStimulusPopulatesBand) {
  netlist::AdderOptions opt;
  opt.width = 48;
  const auto nl = make_ripple_carry_adder(opt);
  StimulusSearchConfig cfg;
  cfg.random_trials = 250;
  cfg.hill_climb_iters = 400;
  StimulusSearch search(nl, cfg);
  const auto pair = search.find_sensor_stimulus(0.9, 1.6);
  EXPECT_GE(pair.endpoints_in_band, 3u);
  // Score = in-band count plus a sub-0.01 settle-gradient bonus.
  EXPECT_NEAR(pair.score, static_cast<double>(pair.endpoints_in_band),
              0.01);
}

TEST(StimulusSearch, DeterministicPerSeed) {
  netlist::AdderOptions opt;
  opt.width = 16;
  const auto nl = make_ripple_carry_adder(opt);
  StimulusSearchConfig cfg;
  cfg.random_trials = 20;
  cfg.hill_climb_iters = 20;
  cfg.seed = 99;
  StimulusSearch a(nl, cfg), b(nl, cfg);
  const auto pa = a.find_path_stimulus(8);
  const auto pb = b.find_path_stimulus(8);
  EXPECT_EQ(pa.reset, pb.reset);
  EXPECT_EQ(pa.measure, pb.measure);
  EXPECT_EQ(pa.score, pb.score);
}

TEST(StimulusSearch, HandPickedC6288PairIsCompetitive) {
  // The baked-in C6288 stimulus must be at least as good as a short
  // random search in populating the capture band.
  netlist::C6288Options opt;
  const auto nl = make_c6288(opt);
  timing::TimedSimulator sim(nl);
  const auto baked = sim.simulate_transition(c6288_reset_stimulus(opt),
                                             c6288_measure_stimulus(opt));
  std::size_t baked_in_band = 0;
  for (const auto& wf : baked.endpoint_waveforms) {
    if (wf.toggles_within(2.0, 4.4)) ++baked_in_band;
  }

  StimulusSearchConfig cfg;
  cfg.random_trials = 10;  // cheap search
  cfg.hill_climb_iters = 10;
  StimulusSearch search(nl, cfg);
  const auto found = search.find_sensor_stimulus(2.0, 4.4);
  EXPECT_GE(baked_in_band + 3, found.endpoints_in_band);
  EXPECT_GE(baked_in_band, 15u);
}

TEST(StimulusSearch, Validation) {
  netlist::AdderOptions opt;
  opt.width = 4;
  const auto nl = make_ripple_carry_adder(opt);
  StimulusSearch search(nl);
  EXPECT_THROW((void)search.find_path_stimulus(99), slm::Error);
  EXPECT_THROW((void)search.find_sensor_stimulus(2.0, 1.0), slm::Error);
}

}  // namespace
}  // namespace slm::atpg
