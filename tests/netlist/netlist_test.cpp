#include "netlist/netlist.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "netlist/builder.hpp"

namespace slm::netlist {
namespace {

Netlist small_acyclic() {
  Builder b("small");
  const NetId a = b.input("a");
  const NetId c = b.input("b");
  const NetId x = b.and2(a, c, "x");
  const NetId y = b.not_(x, "y");
  b.output(y, "out");
  return b.take();
}

TEST(Netlist, BasicStructure) {
  const Netlist nl = small_acyclic();
  EXPECT_EQ(nl.gate_count(), 4u);
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.logic_gate_count(), 2u);
  EXPECT_FALSE(nl.has_combinational_cycle());
}

TEST(Netlist, TopoOrderRespectsEdges) {
  const Netlist nl = small_acyclic();
  const auto order = nl.topo_order();
  ASSERT_EQ(order.size(), nl.gate_count());
  std::vector<std::size_t> pos(nl.gate_count());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (NetId id = 0; id < nl.gate_count(); ++id) {
    for (NetId f : nl.gate(id).fanin) {
      EXPECT_LT(pos[f], pos[id]);
    }
  }
}

TEST(Netlist, Levels) {
  const Netlist nl = small_acyclic();
  const auto levels = nl.levels();
  EXPECT_EQ(levels[nl.inputs()[0]], 0u);
  EXPECT_EQ(levels[nl.outputs()[0].net], 2u);
  EXPECT_EQ(nl.stats().max_level, 2u);
}

TEST(Netlist, FanoutCounts) {
  Builder b("fan");
  const NetId a = b.input("a");
  const NetId x = b.not_(a, "x");
  const NetId y = b.not_(a, "y");
  b.output(b.and2(x, y, "z"), "out");
  const Netlist nl = b.take();
  const auto fo = nl.fanout_counts();
  EXPECT_EQ(fo[a], 2u);
  EXPECT_EQ(fo[x], 1u);
}

TEST(Netlist, CycleDetection) {
  Builder b("loop");
  const NetId ph = b.const0();
  const NetId inv1 = b.not_(ph, "i1");
  const NetId inv2 = b.not_(inv1, "i2");
  const NetId inv3 = b.not_(inv2, "i3");
  b.output(inv3, "tap");
  Netlist nl = b.take();
  nl.rewire_fanin(inv1, 0, inv3);
  EXPECT_TRUE(nl.has_combinational_cycle());
  EXPECT_THROW(nl.topo_order(), Error);
  const auto cyc = nl.gates_on_cycles();
  EXPECT_EQ(cyc.size(), 3u);  // exactly the three inverters
  EXPECT_TRUE(nl.stats().cyclic);
}

TEST(Netlist, CycleMembersPrecise) {
  // A cycle plus downstream logic: only the cycle gates are reported.
  Builder b("loop2");
  const NetId ph = b.const0();
  const NetId i1 = b.not_(ph, "i1");
  const NetId i2 = b.not_(i1, "i2");
  const NetId after = b.not_(i2, "after");
  b.output(after, "o");
  Netlist nl = b.take();
  nl.rewire_fanin(i1, 0, i2);
  const auto cyc = nl.gates_on_cycles();
  ASSERT_EQ(cyc.size(), 2u);
  EXPECT_TRUE((cyc[0] == i1 && cyc[1] == i2) ||
              (cyc[0] == i2 && cyc[1] == i1));
}

TEST(Netlist, InvalidConstruction) {
  Netlist nl("bad");
  Gate g;
  g.type = GateType::kAnd;
  g.fanin = {0, 1};  // no such nets
  EXPECT_THROW(nl.add_gate(g), Error);

  Gate input;
  input.type = GateType::kInput;
  const NetId in = nl.add_gate(input);
  Gate single;
  single.type = GateType::kAnd;
  single.fanin = {in};  // too few
  EXPECT_THROW(nl.add_gate(single), Error);

  EXPECT_THROW(nl.add_output(42, "nope"), Error);
}

TEST(Netlist, RewireValidation) {
  Netlist nl = small_acyclic();
  EXPECT_THROW(nl.rewire_fanin(99, 0, 0), Error);
  EXPECT_THROW(nl.rewire_fanin(2, 5, 0), Error);
}

TEST(Netlist, OutputNets) {
  const Netlist nl = small_acyclic();
  const auto nets = nl.output_nets();
  ASSERT_EQ(nets.size(), 1u);
  EXPECT_EQ(nets[0], nl.outputs()[0].net);
}

TEST(Builder, BusHelpers) {
  Builder b("bus");
  const auto bus = b.input_bus("d", 8);
  EXPECT_EQ(bus.size(), 8u);
  b.output_bus(bus, "q");
  const Netlist nl = b.take();
  EXPECT_EQ(nl.outputs().size(), 8u);
  EXPECT_EQ(nl.outputs()[3].name, "q[3]");
}

TEST(Builder, MuxBusWidthMismatchThrows) {
  Builder b("m");
  const auto a = b.input_bus("a", 4);
  const auto c = b.input_bus("b", 3);
  const NetId sel = b.input("sel");
  EXPECT_THROW(b.mux_bus(a, c, sel), Error);
}

}  // namespace
}  // namespace slm::netlist
