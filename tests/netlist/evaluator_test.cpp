#include "netlist/evaluator.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "netlist/builder.hpp"

namespace slm::netlist {
namespace {

TEST(Evaluator, FullAdderTruthTable) {
  Builder b("fa");
  const NetId a = b.input("a");
  const NetId x = b.input("b");
  const NetId cin = b.input("cin");
  const auto sc = b.full_adder(a, x, cin);
  b.output(sc.sum, "s");
  b.output(sc.carry, "c");
  const Netlist nl = b.take();
  Evaluator ev(nl);

  for (int v = 0; v < 8; ++v) {
    BitVec in(3, static_cast<std::uint64_t>(v));
    const BitVec out = ev.eval(in);
    const int ones = (v & 1) + ((v >> 1) & 1) + ((v >> 2) & 1);
    EXPECT_EQ(out.get(0), (ones & 1) != 0) << "v=" << v;
    EXPECT_EQ(out.get(1), ones >= 2) << "v=" << v;
  }
}

TEST(Evaluator, NorFullAdderMatchesXorAndForm) {
  Builder b("fa2");
  const NetId a = b.input("a");
  const NetId x = b.input("b");
  const NetId cin = b.input("cin");
  const auto classic = b.full_adder(a, x, cin, "cl");
  const auto nor = b.full_adder_nor(a, x, cin, "nr");
  b.output(classic.sum, "cs");
  b.output(classic.carry, "cc");
  b.output(nor.sum, "ns");
  b.output(nor.carry, "nc");
  const Netlist nl = b.take();
  Evaluator ev(nl);
  for (int v = 0; v < 8; ++v) {
    const BitVec out = ev.eval(BitVec(3, static_cast<std::uint64_t>(v)));
    EXPECT_EQ(out.get(0), out.get(2)) << "sum differs at v=" << v;
    EXPECT_EQ(out.get(1), out.get(3)) << "carry differs at v=" << v;
  }
}

TEST(Evaluator, NorHalfAdder) {
  Builder b("ha");
  const NetId a = b.input("a");
  const NetId x = b.input("b");
  const auto sc = b.half_adder_nor(a, x);
  b.output(sc.sum, "s");
  b.output(sc.carry, "c");
  const Netlist nl = b.take();
  Evaluator ev(nl);
  for (int v = 0; v < 4; ++v) {
    const BitVec out = ev.eval(BitVec(2, static_cast<std::uint64_t>(v)));
    const bool a_v = (v & 1) != 0;
    const bool b_v = (v & 2) != 0;
    EXPECT_EQ(out.get(0), a_v != b_v) << "v=" << v;
    EXPECT_EQ(out.get(1), a_v && b_v) << "v=" << v;
  }
}

TEST(Evaluator, ConstantsAndMux) {
  Builder b("cm");
  const NetId sel = b.input("sel");
  const NetId m = b.mux2(b.const0(), b.const1(), sel, "m");
  b.output(m, "o");
  const Netlist nl = b.take();
  Evaluator ev(nl);
  EXPECT_FALSE(ev.eval(BitVec(1, 0)).get(0));
  EXPECT_TRUE(ev.eval(BitVec(1, 1)).get(0));
}

TEST(Evaluator, InputWidthMismatchThrows) {
  Builder b("w");
  const NetId a = b.input("a");
  b.output(b.not_(a), "o");
  Evaluator ev(b.peek());
  EXPECT_THROW(ev.eval(BitVec(2)), slm::Error);
}

TEST(Evaluator, RejectsCyclicNetlist) {
  Builder b("cyc");
  const NetId ph = b.const0();
  const NetId i1 = b.not_(ph);
  const NetId i2 = b.not_(i1);
  b.output(i2, "o");
  Netlist nl = b.take();
  nl.rewire_fanin(i1, 0, i2);
  EXPECT_THROW(Evaluator ev(nl), slm::Error);
}

TEST(Evaluator, EvalNetsExposesInternalValues) {
  Builder b("nets");
  const NetId a = b.input("a");
  const NetId inv = b.not_(a, "inv");
  b.output(inv, "o");
  const Netlist nl = b.take();
  Evaluator ev(nl);
  const auto nets = ev.eval_nets(BitVec(1, 1));
  EXPECT_TRUE(nets[a]);
  EXPECT_FALSE(nets[inv]);
}

}  // namespace
}  // namespace slm::netlist
