#include "netlist/generators/c6288.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "netlist/evaluator.hpp"

namespace slm::netlist {
namespace {

class C6288Width : public ::testing::TestWithParam<std::size_t> {};

TEST_P(C6288Width, RandomProductsMatch) {
  C6288Options opt;
  opt.operand_width = GetParam();
  const Netlist nl = make_c6288(opt);
  Evaluator ev(nl);
  Xoshiro256 rng(GetParam() * 7);
  const std::uint64_t mask = (1ull << opt.operand_width) - 1;
  for (int trial = 0; trial < 60; ++trial) {
    const std::uint64_t a = rng.next() & mask;
    const std::uint64_t b = rng.next() & mask;
    const BitVec out = ev.eval(pack_c6288_inputs(opt, a, b));
    EXPECT_EQ(out.to_uint64(), c6288_reference(opt, a, b))
        << a << " * " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, C6288Width, ::testing::Values(2, 3, 4, 8, 16));

TEST(C6288, CornerProducts) {
  C6288Options opt;  // 16x16
  const Netlist nl = make_c6288(opt);
  Evaluator ev(nl);
  const std::uint64_t cases[][2] = {
      {0, 0},       {0, 0xFFFF},   {0xFFFF, 0xFFFF}, {1, 0xFFFF},
      {0x8000, 2},  {0x7FFF, 3},   {0xAAAA, 0x5555}, {0xFFFF, 1},
  };
  for (const auto& c : cases) {
    const BitVec out = ev.eval(pack_c6288_inputs(opt, c[0], c[1]));
    EXPECT_EQ(out.to_uint64(), c[0] * c[1]) << c[0] << "*" << c[1];
  }
}

TEST(C6288, GateCountMatchesIscasScale) {
  C6288Options opt;
  const Netlist nl = make_c6288(opt);
  // The published C6288 has 2416 gates; the structural recreation must
  // land in the same ballpark (same cell discipline).
  EXPECT_NEAR(static_cast<double>(nl.logic_gate_count()), 2416.0, 120.0);
  EXPECT_EQ(nl.outputs().size(), 32u);
  EXPECT_EQ(nl.inputs().size(), 32u);
}

TEST(C6288, IsNorDominated) {
  C6288Options opt;
  const Netlist nl = make_c6288(opt);
  std::size_t nor = 0, total = 0;
  for (const auto& g : nl.gates()) {
    if (g.type == GateType::kInput || g.type == GateType::kConst0 ||
        g.type == GateType::kConst1 || g.type == GateType::kBuf) {
      continue;
    }
    ++total;
    if (g.type == GateType::kNor) ++nor;
  }
  EXPECT_GT(static_cast<double>(nor) / static_cast<double>(total), 0.85);
}

TEST(C6288, StimulusPairDiffersInOneOperandBit) {
  C6288Options opt;
  const BitVec r = c6288_reset_stimulus(opt);
  const BitVec m = c6288_measure_stimulus(opt);
  // (0x7FFF vs 0x8000) x 0xFFFF: all 16 a-bits flip, b stays.
  EXPECT_EQ((r ^ m).popcount(), 16u);
}

TEST(C6288, StimulusSettledProducts) {
  C6288Options opt;
  const Netlist nl = make_c6288(opt);
  Evaluator ev(nl);
  EXPECT_EQ(ev.eval(c6288_reset_stimulus(opt)).to_uint64(),
            0x7FFFull * 0xFFFFull);
  EXPECT_EQ(ev.eval(c6288_measure_stimulus(opt)).to_uint64(),
            0x8000ull * 0xFFFFull);
}

}  // namespace
}  // namespace slm::netlist
