#include "netlist/generators/adder.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "netlist/evaluator.hpp"

namespace slm::netlist {
namespace {

class AdderWidth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AdderWidth, RandomVectorsMatchReference) {
  AdderOptions opt;
  opt.width = GetParam();
  const Netlist nl = make_ripple_carry_adder(opt);
  Evaluator ev(nl);
  Xoshiro256 rng(GetParam());

  const std::uint64_t mask =
      opt.width >= 64 ? ~0ull : (1ull << opt.width) - 1;
  for (int trial = 0; trial < 64; ++trial) {
    const std::uint64_t a = rng.next() & mask;
    const std::uint64_t b = rng.next() & mask;
    const bool cin = rng.coin();
    const BitVec out = ev.eval(pack_adder_inputs_u64(opt, a, b, cin));
    const unsigned __int128 full = static_cast<unsigned __int128>(a) + b +
                                   (cin ? 1 : 0);
    EXPECT_EQ(out.slice(0, opt.width).to_uint64(),
              static_cast<std::uint64_t>(full) & mask);
    EXPECT_EQ(out.get(opt.width), ((full >> opt.width) & 1) != 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderWidth,
                         ::testing::Values(1, 2, 3, 8, 16, 33, 64));

TEST(Adder, WideCarryChain192) {
  AdderOptions opt;  // default 192
  const Netlist nl = make_ripple_carry_adder(opt);
  Evaluator ev(nl);

  // All-ones + 1 = 0 with carry out: the paper's measure stimulus.
  BitVec a(opt.width);
  a.set_all(true);
  BitVec b(opt.width);
  b.set(0, true);
  const BitVec out = ev.eval(pack_adder_inputs(opt, a, b, false));
  for (std::size_t i = 0; i < opt.width; ++i) {
    EXPECT_FALSE(out.get(i)) << "sum bit " << i;
  }
  EXPECT_TRUE(out.get(opt.width));  // carry out
}

TEST(Adder, NoCarryInOutOptions) {
  AdderOptions opt;
  opt.width = 8;
  opt.with_carry_in = false;
  opt.with_carry_out = false;
  const Netlist nl = make_ripple_carry_adder(opt);
  EXPECT_EQ(nl.outputs().size(), 8u);
  Evaluator ev(nl);
  const BitVec out = ev.eval(pack_adder_inputs_u64(opt, 200, 100));
  EXPECT_EQ(out.to_uint64(), (200u + 100u) & 0xFF);
}

TEST(Adder, PackValidation) {
  AdderOptions opt;
  opt.width = 8;
  EXPECT_THROW(pack_adder_inputs(opt, BitVec(4), BitVec(8)), slm::Error);
  AdderOptions wide;
  wide.width = 128;
  EXPECT_THROW(pack_adder_inputs_u64(wide, 1, 2), slm::Error);
}

TEST(Adder, ZeroWidthRejected) {
  AdderOptions opt;
  opt.width = 0;
  EXPECT_THROW(make_ripple_carry_adder(opt), slm::Error);
}

}  // namespace
}  // namespace slm::netlist
