#include "netlist/generators/suspicious.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace slm::netlist {
namespace {

TEST(RingOscillator, ContainsCycle) {
  RingOscillatorOptions opt;  // 2 inverters + enable NAND
  const Netlist nl = make_ring_oscillator(opt);
  EXPECT_TRUE(nl.has_combinational_cycle());
  EXPECT_FALSE(nl.gates_on_cycles().empty());
}

TEST(RingOscillator, LoopLengthMatchesStages) {
  RingOscillatorOptions opt;
  opt.inverter_stages = 4;
  opt.with_enable = true;
  const Netlist nl = make_ring_oscillator(opt);
  // NAND + 4 inverters on the cycle.
  EXPECT_EQ(nl.gates_on_cycles().size(), 5u);
}

TEST(RingOscillator, NoEnableVariant) {
  RingOscillatorOptions opt;
  opt.inverter_stages = 5;
  opt.with_enable = false;
  const Netlist nl = make_ring_oscillator(opt);
  EXPECT_TRUE(nl.has_combinational_cycle());
  EXPECT_EQ(nl.gates_on_cycles().size(), 5u);
  EXPECT_TRUE(nl.inputs().empty());
}

TEST(RingOscillator, EvenInversionsRejected) {
  RingOscillatorOptions opt;
  opt.inverter_stages = 3;  // + NAND = 4 inversions: no oscillation
  opt.with_enable = true;
  EXPECT_THROW(make_ring_oscillator(opt), slm::Error);
}

TEST(TdcLine, StructureAndClockMarking) {
  TdcLineOptions opt;
  opt.stages = 32;
  const Netlist nl = make_tdc_line(opt);
  EXPECT_FALSE(nl.has_combinational_cycle());
  EXPECT_EQ(nl.outputs().size(), 32u);
  ASSERT_EQ(nl.inputs().size(), 1u);
  EXPECT_TRUE(nl.gate(nl.inputs()[0]).is_clock);
}

TEST(TdcLine, NonClockVariant) {
  TdcLineOptions opt;
  opt.stages = 8;
  opt.clock_as_data = false;
  const Netlist nl = make_tdc_line(opt);
  EXPECT_FALSE(nl.gate(nl.inputs()[0]).is_clock);
}

TEST(TdcLine, StageDelaysApplied) {
  TdcLineOptions opt;
  opt.stages = 4;
  opt.stage_delay_ns = 0.123;
  const Netlist nl = make_tdc_line(opt);
  for (const auto& port : nl.outputs()) {
    EXPECT_DOUBLE_EQ(nl.gate(port.net).delay_ns, 0.123);
  }
}

}  // namespace
}  // namespace slm::netlist
