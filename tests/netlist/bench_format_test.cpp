#include "netlist/bench_format.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "netlist/evaluator.hpp"
#include "netlist/generators/adder.hpp"
#include "netlist/generators/c6288.hpp"

namespace slm::netlist {
namespace {

TEST(BenchFormat, ParsesIscasStyleFile) {
  const std::string text = R"(
# a small ISCAS-style circuit
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G8)
OUTPUT(G9)
G6 = NAND(G1, G2)
G7 = NOT(G3)
G8 = AND(G6, G7)
G9 = XOR(G6, G3)
)";
  const Netlist nl = parse_bench_string(text, "small");
  EXPECT_EQ(nl.inputs().size(), 3u);
  EXPECT_EQ(nl.outputs().size(), 2u);
  EXPECT_EQ(nl.logic_gate_count(), 4u);

  Evaluator ev(nl);
  // G1=1, G2=1, G3=0: G6=0, G7=1, G8=0, G9=0.
  const BitVec out1 = ev.eval(BitVec::from_string("011"));
  EXPECT_FALSE(out1.get(0));
  EXPECT_FALSE(out1.get(1));
  // G1=1, G2=0, G3=0: G6=1, G7=1, G8=1, G9=1.
  const BitVec out2 = ev.eval(BitVec::from_string("001"));
  EXPECT_TRUE(out2.get(0));
  EXPECT_TRUE(out2.get(1));
}

TEST(BenchFormat, HandlesForwardReferences) {
  // Published files are not topologically sorted.
  const std::string text = R"(
INPUT(a)
OUTPUT(y)
y = NOT(m)
m = AND(a, a)
)";
  const Netlist nl = parse_bench_string(text);
  Evaluator ev(nl);
  EXPECT_FALSE(ev.eval(BitVec(1, 1)).get(0));
  EXPECT_TRUE(ev.eval(BitVec(1, 0)).get(0));
}

TEST(BenchFormat, RoundTripC6288) {
  C6288Options opt;
  opt.operand_width = 8;  // keep the file small
  const Netlist original = make_c6288(opt);

  std::stringstream ss;
  write_bench(original, ss);
  const Netlist reparsed = parse_bench(ss, "c6288_rt");

  EXPECT_EQ(reparsed.inputs().size(), original.inputs().size());
  EXPECT_EQ(reparsed.outputs().size(), original.outputs().size());
  EXPECT_EQ(reparsed.logic_gate_count(), original.logic_gate_count());

  Evaluator ev_a(original), ev_b(reparsed);
  Xoshiro256 rng(3);
  for (int t = 0; t < 40; ++t) {
    const std::uint64_t a = rng.next() & 0xFF, b = rng.next() & 0xFF;
    const BitVec in = pack_c6288_inputs(opt, a, b);
    EXPECT_EQ(ev_a.eval(in), ev_b.eval(in)) << a << "*" << b;
  }
}

TEST(BenchFormat, RejectsMalformedInput) {
  EXPECT_THROW(parse_bench_string("G1 = FROB(G2)\nINPUT(G2)\n"), slm::Error);
  EXPECT_THROW(parse_bench_string("nonsense line\n"), slm::Error);
  EXPECT_THROW(parse_bench_string("INPUT(a)\nOUTPUT(missing)\n"), slm::Error);
  // Cyclic definitions are caught, not looped on.
  EXPECT_THROW(parse_bench_string("INPUT(a)\nOUTPUT(x)\n"
                                  "x = NOT(y)\ny = NOT(x)\n"),
               slm::Error);
  // Duplicate definitions.
  EXPECT_THROW(parse_bench_string("INPUT(a)\nOUTPUT(x)\n"
                                  "x = NOT(a)\nx = BUF(a)\n"),
               slm::Error);
}

TEST(BenchFormat, CommentsAndBlanksIgnored) {
  const std::string text =
      "# header\n\nINPUT(a)  # trailing comment\nOUTPUT(y)\n\n"
      "y = BUFF(a)\n";
  const Netlist nl = parse_bench_string(text);
  Evaluator ev(nl);
  EXPECT_TRUE(ev.eval(BitVec(1, 1)).get(0));
}

TEST(BenchFormat, WriterExpandsMuxAndConstants) {
  // mux2 and constant tie-offs have no .bench keyword; the writer must
  // expand them into AND/OR/NOT helpers that compute the same function.
  Netlist nl("mux");
  Gate in;
  in.type = GateType::kInput;
  const NetId a = nl.add_gate(in);
  const NetId b = nl.add_gate(in);
  const NetId s = nl.add_gate(in);
  Gate mux;
  mux.type = GateType::kMux2;
  mux.fanin = {a, b, s};
  const NetId m = nl.add_gate(mux);
  nl.add_output(m, "o");
  Gate c1;
  c1.type = GateType::kConst1;
  const NetId one = nl.add_gate(c1);
  nl.add_output(one, "tie1");

  std::stringstream ss;
  write_bench(nl, ss);
  const Netlist reparsed = parse_bench(ss, "mux_rt");

  Evaluator ev(reparsed);
  for (int v = 0; v < 8; ++v) {
    const BitVec out = ev.eval(BitVec(3, static_cast<std::uint64_t>(v)));
    const bool a_v = (v & 1) != 0, b_v = (v & 2) != 0, s_v = (v & 4) != 0;
    EXPECT_EQ(out.get(0), s_v ? b_v : a_v) << "v=" << v;
    EXPECT_TRUE(out.get(1)) << "v=" << v;  // the const-1 tie-off
  }
}

TEST(BenchFormat, RoundTripRippleCarryAdder) {
  // The RCA uses MUXCY cells: the expansion must preserve the function.
  AdderOptions opt;
  opt.width = 12;
  const Netlist original = make_ripple_carry_adder(opt);
  std::stringstream ss;
  write_bench(original, ss);
  const Netlist reparsed = parse_bench(ss, "rca_rt");
  Evaluator ev_a(original), ev_b(reparsed);
  Xoshiro256 rng(5);
  for (int t = 0; t < 40; ++t) {
    const std::uint64_t a = rng.next() & 0xFFF, b = rng.next() & 0xFFF;
    const BitVec in = pack_adder_inputs_u64(opt, a, b, rng.coin());
    EXPECT_EQ(ev_a.eval(in), ev_b.eval(in));
  }
}

}  // namespace
}  // namespace slm::netlist
