#include "netlist/generators/alu.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "netlist/evaluator.hpp"

namespace slm::netlist {
namespace {

AluOptions small_alu(std::size_t width) {
  AluOptions opt;
  opt.width = width;
  opt.adder.width = width;
  return opt;
}

class AluOps : public ::testing::TestWithParam<AluOp> {};

TEST_P(AluOps, RandomVectorsMatchReference) {
  const AluOp op = GetParam();
  const AluOptions opt = small_alu(32);
  const Netlist nl = make_alu(opt);
  Evaluator ev(nl);
  Xoshiro256 rng(static_cast<std::uint64_t>(op) + 1);

  for (int trial = 0; trial < 50; ++trial) {
    BitVec a(opt.width), b(opt.width);
    for (std::size_t i = 0; i < opt.width; ++i) {
      a.set(i, rng.coin());
      b.set(i, rng.coin());
    }
    bool cout_ref = false;
    const BitVec want = alu_reference(opt, a, b, op, &cout_ref);
    const BitVec out = ev.eval(pack_alu_inputs(opt, a, b, op));
    EXPECT_EQ(out.slice(0, opt.width), want);
    if (op == AluOp::kAdd) {
      EXPECT_EQ(out.get(opt.width), cout_ref);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, AluOps,
                         ::testing::Values(AluOp::kAdd, AluOp::kAnd,
                                           AluOp::kOr, AluOp::kXor));

TEST(Alu, PaperStimulusPairSettlesToZeroSum) {
  const AluOptions opt = small_alu(64);
  const Netlist nl = make_alu(opt);
  Evaluator ev(nl);
  const BitVec reset_out = ev.eval(alu_reset_stimulus(opt));
  const BitVec measure_out = ev.eval(alu_measure_stimulus(opt));
  // Both stimuli settle to an all-zero result word: the transient
  // difference is only visible under overclocking.
  for (std::size_t i = 0; i < opt.width; ++i) {
    EXPECT_FALSE(reset_out.get(i));
    EXPECT_FALSE(measure_out.get(i));
  }
  EXPECT_FALSE(reset_out.get(opt.width));   // no carry at reset
  EXPECT_TRUE(measure_out.get(opt.width));  // full carry at measure
}

TEST(Alu, Has192EndpointsPlusCarry) {
  const AluOptions opt = small_alu(192);
  const Netlist nl = make_alu(opt);
  EXPECT_EQ(nl.outputs().size(), 193u);
  EXPECT_EQ(nl.inputs().size(), 2 * 192u + 2);
  EXPECT_FALSE(nl.has_combinational_cycle());
}

TEST(Alu, ReferenceAddMatchesWideArithmetic) {
  const AluOptions opt = small_alu(8);
  BitVec a(8, 0xFF), b(8, 0x01);
  bool cout = false;
  const BitVec sum = alu_reference(opt, a, b, AluOp::kAdd, &cout);
  EXPECT_EQ(sum.to_uint64(), 0u);
  EXPECT_TRUE(cout);
}

TEST(Alu, OpEncodingBits) {
  const AluOptions opt = small_alu(4);
  const BitVec in = pack_alu_inputs(opt, BitVec(4), BitVec(4), AluOp::kXor);
  EXPECT_TRUE(in.get(2 * 4));      // op0
  EXPECT_TRUE(in.get(2 * 4 + 1));  // op1
}

}  // namespace
}  // namespace slm::netlist
