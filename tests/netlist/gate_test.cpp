#include "netlist/gate.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

namespace slm::netlist {
namespace {

using TruthCase = std::tuple<GateType, std::vector<bool>, bool>;

class GateTruth : public ::testing::TestWithParam<TruthCase> {};

TEST_P(GateTruth, Evaluates) {
  const auto& [type, in, expected] = GetParam();
  EXPECT_EQ(eval_gate(type, in), expected)
      << gate_type_name(type) << " with " << in.size() << " fanins";
}

INSTANTIATE_TEST_SUITE_P(
    TwoInput, GateTruth,
    ::testing::Values(
        TruthCase{GateType::kAnd, {false, false}, false},
        TruthCase{GateType::kAnd, {true, false}, false},
        TruthCase{GateType::kAnd, {true, true}, true},
        TruthCase{GateType::kOr, {false, false}, false},
        TruthCase{GateType::kOr, {true, false}, true},
        TruthCase{GateType::kNand, {true, true}, false},
        TruthCase{GateType::kNand, {true, false}, true},
        TruthCase{GateType::kNor, {false, false}, true},
        TruthCase{GateType::kNor, {false, true}, false},
        TruthCase{GateType::kXor, {true, true}, false},
        TruthCase{GateType::kXor, {true, false}, true},
        TruthCase{GateType::kXnor, {true, true}, true},
        TruthCase{GateType::kXnor, {false, true}, false}));

INSTANTIATE_TEST_SUITE_P(
    WideInput, GateTruth,
    ::testing::Values(
        TruthCase{GateType::kAnd, {true, true, true, true}, true},
        TruthCase{GateType::kAnd, {true, true, false, true}, false},
        TruthCase{GateType::kOr, {false, false, false}, false},
        TruthCase{GateType::kOr, {false, false, true}, true},
        TruthCase{GateType::kXor, {true, true, true}, true},
        TruthCase{GateType::kXor, {true, true, true, true}, false},
        TruthCase{GateType::kNor, {false, false, false}, true}));

INSTANTIATE_TEST_SUITE_P(
    UnaryAndMux, GateTruth,
    ::testing::Values(
        TruthCase{GateType::kBuf, {true}, true},
        TruthCase{GateType::kBuf, {false}, false},
        TruthCase{GateType::kNot, {true}, false},
        TruthCase{GateType::kNot, {false}, true},
        // mux2 fanin order {a, b, sel}: sel ? b : a
        TruthCase{GateType::kMux2, {true, false, false}, true},
        TruthCase{GateType::kMux2, {true, false, true}, false},
        TruthCase{GateType::kMux2, {false, true, true}, true}));

TEST(GateMeta, Names) {
  EXPECT_STREQ(gate_type_name(GateType::kNand), "nand");
  EXPECT_STREQ(gate_type_name(GateType::kMux2), "mux2");
  EXPECT_STREQ(gate_type_name(GateType::kInput), "input");
}

TEST(GateMeta, Arity) {
  EXPECT_EQ(gate_arity(GateType::kNot).min, 1u);
  EXPECT_EQ(gate_arity(GateType::kNot).max, 1u);
  EXPECT_EQ(gate_arity(GateType::kMux2).min, 3u);
  EXPECT_EQ(gate_arity(GateType::kAnd).min, 2u);
  EXPECT_EQ(gate_arity(GateType::kAnd).max, 0u);  // unbounded
}

TEST(GateMeta, DefaultDelaysPositiveForLogic) {
  for (GateType t : {GateType::kBuf, GateType::kNot, GateType::kAnd,
                     GateType::kOr, GateType::kNand, GateType::kNor,
                     GateType::kXor, GateType::kXnor, GateType::kMux2}) {
    EXPECT_GT(default_gate_delay_ns(t), 0.0) << gate_type_name(t);
  }
  EXPECT_EQ(default_gate_delay_ns(GateType::kInput), 0.0);
}

TEST(GateMeta, ConstantsEvaluate) {
  EXPECT_FALSE(eval_gate(GateType::kConst0, {}));
  EXPECT_TRUE(eval_gate(GateType::kConst1, {}));
}

}  // namespace
}  // namespace slm::netlist
