#include "netlist/generators/fast_datapath.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "netlist/evaluator.hpp"
#include "netlist/generators/adder.hpp"
#include "timing/sta.hpp"

namespace slm::netlist {
namespace {

class KsWidth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KsWidth, AdditionCorrect) {
  KoggeStoneOptions opt;
  opt.width = GetParam();
  const Netlist nl = make_kogge_stone_adder(opt);
  Evaluator ev(nl);
  Xoshiro256 rng(GetParam());
  const std::uint64_t mask =
      opt.width >= 64 ? ~0ull : (1ull << opt.width) - 1;
  for (int t = 0; t < 60; ++t) {
    const std::uint64_t a = rng.next() & mask;
    const std::uint64_t b = rng.next() & mask;
    const BitVec out = ev.eval(pack_ks_inputs(opt, a, b));
    const unsigned __int128 full = static_cast<unsigned __int128>(a) + b;
    EXPECT_EQ(out.slice(0, opt.width).to_uint64(),
              static_cast<std::uint64_t>(full) & mask);
    EXPECT_EQ(out.get(opt.width), ((full >> opt.width) & 1) != 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, KsWidth,
                         ::testing::Values(2, 3, 8, 16, 31, 64));

TEST(KoggeStone, LogDepthBeatsRipple) {
  KoggeStoneOptions ks_opt;
  ks_opt.width = 64;
  AdderOptions rca_opt;
  rca_opt.width = 64;
  const Netlist ks_nl = make_kogge_stone_adder(ks_opt);
  const Netlist rca_nl = make_ripple_carry_adder(rca_opt);
  timing::Sta ks(ks_nl);
  timing::Sta rca(rca_nl);
  // Prefix depth log2(64)=6 levels; must be a small fraction of the
  // 64-stage ripple even with fast carry cells.
  EXPECT_LT(ks.critical_delay(), rca.critical_delay());
  EXPECT_LT(ks.critical_delay(), 2.5);
}

class WallaceWidth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WallaceWidth, MultiplicationCorrect) {
  WallaceOptions opt;
  opt.operand_width = GetParam();
  const Netlist nl = make_wallace_multiplier(opt);
  Evaluator ev(nl);
  Xoshiro256 rng(17 * GetParam());
  const std::uint64_t mask = (1ull << opt.operand_width) - 1;
  for (int t = 0; t < 60; ++t) {
    const std::uint64_t a = rng.next() & mask;
    const std::uint64_t b = rng.next() & mask;
    const BitVec out = ev.eval(pack_wallace_inputs(opt, a, b));
    EXPECT_EQ(out.to_uint64(), a * b) << a << "*" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, WallaceWidth, ::testing::Values(2, 4, 8, 16));

TEST(Wallace, ShallowerThanBraunArray) {
  WallaceOptions opt;
  const Netlist wallace = make_wallace_multiplier(opt);
  timing::Sta sta(wallace);
  // The Braun/C6288 array settles at ~5 ns; the Wallace tree must be
  // clearly faster despite identical function.
  EXPECT_LT(sta.critical_delay(), 3.4);
  EXPECT_EQ(wallace.outputs().size(), 32u);
}

class BarrelCase : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BarrelCase, RotatesCorrectly) {
  BarrelShifterOptions opt;
  opt.width = 32;
  const Netlist nl = make_barrel_shifter(opt);
  Evaluator ev(nl);
  Xoshiro256 rng(GetParam());
  for (int t = 0; t < 40; ++t) {
    const std::uint64_t d = rng.next() & 0xFFFFFFFFull;
    const std::uint64_t s = rng.uniform_int(32);
    const BitVec out = ev.eval(pack_barrel_inputs(opt, d, s));
    const std::uint64_t expect =
        ((d << s) | (d >> (32 - s))) & 0xFFFFFFFFull;
    EXPECT_EQ(out.to_uint64(), s == 0 ? d : expect)
        << "d=" << d << " s=" << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BarrelCase, ::testing::Values(1, 2, 3));

TEST(Barrel, DepthIsLogStages) {
  BarrelShifterOptions opt;
  opt.width = 64;
  const Netlist nl = make_barrel_shifter(opt);
  timing::Sta sta(nl);
  // 6 mux stages + routing: far below the 3.33 ns capture period.
  EXPECT_LT(sta.critical_delay(), 1.2);
}

TEST(FastDatapath, Validation) {
  KoggeStoneOptions ks;
  ks.width = 1;
  EXPECT_THROW(make_kogge_stone_adder(ks), slm::Error);
  BarrelShifterOptions br;
  br.width = 48;  // not a power of two
  EXPECT_THROW(make_barrel_shifter(br), slm::Error);
}

}  // namespace
}  // namespace slm::netlist
