#include "netlist/export.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "netlist/builder.hpp"
#include "netlist/generators/adder.hpp"

namespace slm::netlist {
namespace {

TEST(ExportVerilog, ContainsModuleAndAssigns) {
  Builder b("demo");
  const NetId a = b.input("a");
  const NetId c = b.input("b");
  b.output(b.nand2(a, c, "g"), "out");
  std::ostringstream os;
  export_verilog(b.take(), os);
  const std::string v = os.str();
  EXPECT_NE(v.find("module demo"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("nand"), std::string::npos);
  EXPECT_NE(v.find("assign po_0"), std::string::npos);
}

TEST(ExportVerilog, MuxBecomesTernary) {
  Builder b("m");
  const NetId a = b.input("a");
  const NetId c = b.input("b");
  const NetId s = b.input("s");
  b.output(b.mux2(a, c, s), "o");
  std::ostringstream os;
  export_verilog(b.take(), os);
  EXPECT_NE(os.str().find(" ? "), std::string::npos);
}

TEST(ExportVerilog, SanitisesNames) {
  Builder b("san");
  const NetId a = b.input("x[0]");
  b.output(b.not_(a, "inv.y"), "o");
  std::ostringstream os;
  export_verilog(b.take(), os);
  // No bracket or dot may survive in identifiers (only in comments).
  std::istringstream is(os.str());
  std::string line;
  while (std::getline(is, line)) {
    const auto comment = line.find("//");
    const std::string code = line.substr(0, comment);
    EXPECT_EQ(code.find('['), std::string::npos) << line;
    EXPECT_EQ(code.find('.'), std::string::npos) << line;
  }
}

TEST(ExportDebug, OneLinePerGate) {
  AdderOptions opt;
  opt.width = 4;
  const Netlist nl = make_ripple_carry_adder(opt);
  std::ostringstream os;
  export_debug(nl, os);
  const std::string out = os.str();
  // Header + one line per gate.
  const auto lines = std::count(out.begin(), out.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(lines), nl.gate_count() + 1);
}

}  // namespace
}  // namespace slm::netlist
