#include "bitstream/checker.hpp"

#include <gtest/gtest.h>

#include "netlist/generators/alu.hpp"
#include "netlist/generators/c6288.hpp"
#include "netlist/generators/suspicious.hpp"

namespace slm::bitstream {
namespace {

using netlist::make_alu;
using netlist::make_c6288;
using netlist::make_ring_oscillator;
using netlist::make_tdc_line;

TEST(Checker, FlagsRingOscillator) {
  const auto ro = make_ring_oscillator(netlist::RingOscillatorOptions{});
  BitstreamChecker checker;
  const auto report = checker.check(ro);
  EXPECT_FALSE(report.passed());
  EXPECT_TRUE(report.flagged(CheckKind::kCombinationalLoop));
}

TEST(Checker, FlagsTdcClockAsData) {
  const auto tdc = make_tdc_line(netlist::TdcLineOptions{});
  BitstreamChecker checker;
  const auto report = checker.check(tdc);
  EXPECT_FALSE(report.passed());
  EXPECT_TRUE(report.flagged(CheckKind::kClockAsData));
}

TEST(Checker, FlagsTdcDelayLinePattern) {
  netlist::TdcLineOptions opt;
  opt.clock_as_data = false;  // hide the clock: the chain still gives it away
  const auto tdc = make_tdc_line(opt);
  BitstreamChecker checker;
  const auto report = checker.check(tdc);
  EXPECT_FALSE(report.passed());
  EXPECT_TRUE(report.flagged(CheckKind::kDelayLinePattern));
  EXPECT_FALSE(report.flagged(CheckKind::kClockAsData));
}

TEST(Checker, ShortTappedChainTolerated) {
  netlist::TdcLineOptions opt;
  opt.stages = 8;  // below the reporting threshold
  opt.clock_as_data = false;
  const auto line = make_tdc_line(opt);
  BitstreamChecker checker;
  EXPECT_TRUE(checker.check(line).passed());
}

// The stealthiness claim: both benign circuits pass every structural
// check, at default options.
class BenignPasses : public ::testing::TestWithParam<int> {};

TEST_P(BenignPasses, NoStructuralFindings) {
  BitstreamChecker checker;
  if (GetParam() == 0) {
    const auto report = checker.check(make_alu(netlist::AluOptions{}));
    EXPECT_TRUE(report.passed()) << report.summary();
  } else {
    const auto report = checker.check(make_c6288(netlist::C6288Options{}));
    EXPECT_TRUE(report.passed()) << report.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(BothCircuits, BenignPasses, ::testing::Values(0, 1));

TEST(Checker, StrictTimingCatchesOverclockedAlu) {
  // The Discussion's countermeasure: verifying the *operating* clock
  // against STA flags the misused ALU -- and only then.
  netlist::AluOptions opt;
  const auto alu = make_alu(opt);

  CheckerOptions at_design_clock;
  at_design_clock.operating_clock_period_ns = 20.0;  // 50 MHz
  EXPECT_TRUE(BitstreamChecker(at_design_clock).check(alu).passed());

  CheckerOptions at_overclock;
  at_overclock.operating_clock_period_ns = 10.0 / 3.0;  // 300 MHz
  const auto report = BitstreamChecker(at_overclock).check(alu);
  EXPECT_FALSE(report.passed());
  EXPECT_TRUE(report.flagged(CheckKind::kStrictTiming));
}

TEST(Checker, FalsePathAnnotationsHideEndpoints) {
  // The Discussion's caveat: user false-path constraints can exempt the
  // very endpoints that act as sensors.
  netlist::AluOptions opt;
  opt.width = 16;
  const auto alu = make_alu(opt);

  CheckerOptions strict;
  strict.operating_clock_period_ns = 1.0;  // everything fails
  const auto flagged = BitstreamChecker(strict).check(alu);
  ASSERT_TRUE(flagged.flagged(CheckKind::kStrictTiming));

  // Exempt all endpoints: the check goes quiet.
  for (std::size_t i = 0; i < alu.outputs().size(); ++i) {
    strict.false_path_endpoints.push_back(i);
  }
  EXPECT_TRUE(BitstreamChecker(strict).check(alu).passed());
}

TEST(Checker, ChecksCanBeDisabled) {
  CheckerOptions opt;
  opt.check_loops = false;
  const auto ro = make_ring_oscillator(netlist::RingOscillatorOptions{});
  EXPECT_TRUE(BitstreamChecker(opt).check(ro).passed());
}

TEST(Checker, SummaryFormats) {
  BitstreamChecker checker;
  const auto ro_report =
      checker.check(make_ring_oscillator(netlist::RingOscillatorOptions{}));
  EXPECT_NE(ro_report.summary().find("REJECT"), std::string::npos);
  const auto ok_report = checker.check(make_alu(netlist::AluOptions{}));
  EXPECT_NE(ok_report.summary().find("PASS"), std::string::npos);
}

TEST(Checker, KindNames) {
  EXPECT_STREQ(check_kind_name(CheckKind::kCombinationalLoop),
               "combinational-loop");
  EXPECT_STREQ(check_kind_name(CheckKind::kStrictTiming), "strict-timing");
}

}  // namespace
}  // namespace slm::bitstream
