#include "sensors/tdc.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace slm::sensors {
namespace {

TdcConfig quiet_cfg() {
  TdcConfig cfg;
  cfg.stages = 64;
  cfg.stage_delay_ns = 0.05;
  cfg.window_ns = 32 * 0.05;
  cfg.delay = timing::VoltageDelayModel{1.0, 2.0};
  cfg.noise_lsb = 0.0;
  return cfg;
}

TEST(Tdc, IdleDepthMidScale) {
  TdcSensor tdc(quiet_cfg());
  EXPECT_NEAR(tdc.idle_depth(), 32.0, 1e-12);
}

TEST(Tdc, DepthDecreasesWithDroop) {
  TdcSensor tdc(quiet_cfg());
  EXPECT_LT(tdc.depth(0.9), tdc.depth(1.0));
  EXPECT_GT(tdc.depth(1.05), tdc.depth(1.0));
  // Exactly inverse in the delay factor.
  EXPECT_NEAR(tdc.depth(0.9), 32.0 / 1.2, 1e-9);
}

TEST(Tdc, SampleClampedToStages) {
  TdcSensor tdc(quiet_cfg());
  Xoshiro256 rng(1);
  // Massive overshoot: depth would exceed the line length.
  EXPECT_EQ(tdc.sample(2.0, rng), 64u);
  // Massive droop cannot go below zero.
  EXPECT_GE(tdc.sample(0.2, rng), 0u);
}

TEST(Tdc, ThermometerWordConsistent) {
  TdcSensor tdc(quiet_cfg());
  Xoshiro256 rng(2);
  const auto word = tdc.sample_word(0.95, rng);
  const auto depth = static_cast<std::size_t>(tdc.depth(0.95));
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(word.get(i), i < depth) << "stage " << i;
  }
}

TEST(Tdc, SingleBitThreshold) {
  TdcSensor tdc(quiet_cfg());
  Xoshiro256 rng(3);
  // Idle depth 32: stage 31 is passed, stage 32 is not (32 > 32 false).
  EXPECT_TRUE(tdc.sample_bit(31, 1.0, rng));
  EXPECT_FALSE(tdc.sample_bit(32, 1.0, rng));
  EXPECT_THROW((void)tdc.sample_bit(64, 1.0, rng), slm::Error);
}

TEST(Tdc, NoiseMakesBoundaryBitFluctuate) {
  TdcConfig cfg = quiet_cfg();
  cfg.noise_lsb = 0.5;
  TdcSensor tdc(cfg);
  Xoshiro256 rng(4);
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (tdc.sample_bit(32, 1.0, rng)) ++ones;  // exactly at idle depth
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.5, 0.03);
}

TEST(Tdc, ReadingVarianceGrowsWithNoise) {
  TdcConfig cfg = quiet_cfg();
  cfg.noise_lsb = 1.0;
  TdcSensor noisy(cfg);
  TdcSensor quiet(quiet_cfg());
  Xoshiro256 rng(5);
  OnlineMeanVar nv, qv;
  for (int i = 0; i < 5000; ++i) {
    nv.add(noisy.sample(1.0, rng));
    qv.add(quiet.sample(1.0, rng));
  }
  EXPECT_GT(nv.variance(), qv.variance());
  EXPECT_NEAR(nv.mean(), 31.5, 0.5);  // floor() of 32 + symmetric noise
}

TEST(Tdc, ConfigValidation) {
  TdcConfig bad = quiet_cfg();
  bad.stages = 1;
  EXPECT_THROW(TdcSensor t(bad), slm::Error);
  bad = quiet_cfg();
  bad.window_ns = 0.0;
  EXPECT_THROW(TdcSensor t(bad), slm::Error);
}

}  // namespace
}  // namespace slm::sensors
