#include "sensors/benign_sensor.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"
#include "netlist/generators/adder.hpp"
#include "netlist/generators/alu.hpp"

namespace slm::sensors {
namespace {

using netlist::AdderOptions;
using netlist::AluOptions;

BenignSensorConfig quiet_cfg() {
  BenignSensorConfig cfg;
  cfg.capture.clock_period_ns = 10.0 / 3.0;
  cfg.capture.delay = timing::VoltageDelayModel{1.0, 2.0};
  cfg.capture.jitter_sigma_ns = 0.0;
  cfg.capture.common_jitter_sigma_ns = 0.0;
  cfg.capture.endpoint_skew_sigma_ns = 0.0;
  cfg.capture.setup_ns = 0.0;
  return cfg;
}

std::shared_ptr<BenignSensor> make_adder_sensor(std::size_t width,
                                                const BenignSensorConfig& cfg) {
  AdderOptions opt;
  opt.width = width;
  const auto nl = make_ripple_carry_adder(opt);
  BitVec ones(width);
  ones.set_all(true);
  BitVec one(width);
  one.set(0, true);
  return std::make_shared<BenignSensor>(
      nl, pack_adder_inputs(opt, BitVec(width), BitVec(width), false),
      pack_adder_inputs(opt, ones, one, false), cfg);
}

TEST(BenignSensor, OverclockedByConstruction) {
  const auto sensor = make_adder_sensor(192, quiet_cfg());
  EXPECT_GT(sensor->max_settle_time_ns(),
            quiet_cfg().capture.clock_period_ns);
  EXPECT_EQ(sensor->endpoint_count(), 193u);
}

TEST(BenignSensor, ThermometerToggleWordWithoutNoise) {
  const auto sensor = make_adder_sensor(192, quiet_cfg());
  Xoshiro256 rng(1);
  // Without noise the toggle word is a clean staircase: bits past the
  // carry boundary toggled (read 1), bits behind it killed (read 0).
  const BitVec toggles = sensor->sample_toggles(1.0, rng);
  const std::size_t hw = toggles.popcount();
  ASSERT_GT(hw, 0u);
  ASSERT_LT(hw, 192u);
  // All toggled bits sit above all untoggled sum bits.
  const std::size_t boundary = 192 - hw;
  for (std::size_t i = 0; i < 192; ++i) {
    EXPECT_EQ(toggles.get(i), i >= boundary) << "bit " << i;
  }
}

TEST(BenignSensor, BoundaryMovesWithVoltage) {
  const auto sensor = make_adder_sensor(192, quiet_cfg());
  Xoshiro256 rng(2);
  // Lower voltage -> earlier capture -> carry killed fewer bits -> more
  // bits still toggled (reading 1).
  const std::size_t hw_droop =
      sensor->sample_toggles(0.92, rng).popcount();
  const std::size_t hw_nom = sensor->sample_toggles(1.0, rng).popcount();
  const std::size_t hw_over = sensor->sample_toggles(1.04, rng).popcount();
  EXPECT_GT(hw_droop, hw_nom);
  EXPECT_GT(hw_nom, hw_over);
}

TEST(BenignSensor, SingleBitMatchesWordWithoutNoise) {
  const auto sensor = make_adder_sensor(64, quiet_cfg());
  Xoshiro256 rng(3);
  for (double v : {0.94, 1.0, 1.03}) {
    const BitVec word = sensor->sample_toggles(v, rng);
    for (std::size_t i = 0; i < sensor->endpoint_count(); i += 7) {
      EXPECT_EQ(sensor->sample_toggle_bit(i, v, rng), word.get(i));
    }
  }
}

TEST(BenignSensor, SubsetHwMatchesWord) {
  const auto sensor = make_adder_sensor(64, quiet_cfg());
  Xoshiro256 rng(4);
  const std::vector<std::size_t> bits{10, 20, 30, 40, 50};
  const std::size_t hw = sensor->sample_toggle_hw(bits, 0.97, rng);
  const BitVec word = sensor->sample_toggles(0.97, rng);
  std::size_t expect = 0;
  for (std::size_t b : bits) {
    if (word.get(b)) ++expect;
  }
  EXPECT_EQ(hw, expect);
}

TEST(BenignSensor, SensitiveEndpointsFormBand) {
  const auto sensor = make_adder_sensor(192, quiet_cfg());
  const auto sens = sensor->sensitive_endpoints(0.90, 1.02);
  ASSERT_FALSE(sens.empty());
  ASSERT_LT(sens.size(), 192u);
  // Sensitive sum bits are contiguous (the staircase band).
  for (std::size_t i = 1; i < sens.size(); ++i) {
    if (sens[i] < 192 && sens[i - 1] < 192) {
      EXPECT_EQ(sens[i], sens[i - 1] + 1);
    }
  }
}

TEST(BenignSensorBank, ConcatenatesInstances) {
  auto bank = BenignSensorBank{};
  bank.add(make_adder_sensor(16, quiet_cfg()));
  bank.add(make_adder_sensor(16, quiet_cfg()));
  EXPECT_EQ(bank.instance_count(), 2u);
  EXPECT_EQ(bank.endpoint_count(), 34u);  // 2 x (16 sums + carry)
  Xoshiro256 rng(5);
  const BitVec word = bank.sample_toggles(0.97, rng);
  EXPECT_EQ(word.size(), 34u);
  // Both instances see the same voltage and have no noise: halves match.
  for (std::size_t i = 0; i < 17; ++i) {
    EXPECT_EQ(word.get(i), word.get(17 + i));
  }
}

TEST(BenignSensorBank, GlobalBitIndexing) {
  auto bank = BenignSensorBank{};
  bank.add(make_adder_sensor(16, quiet_cfg()));
  bank.add(make_adder_sensor(16, quiet_cfg()));
  Xoshiro256 rng(6);
  const BitVec word = bank.sample_toggles(0.97, rng);
  EXPECT_EQ(bank.sample_toggle_bit(20, 0.97, rng), word.get(20));
  EXPECT_THROW((void)bank.sample_toggle_bit(34, 0.97, rng), slm::Error);
  const std::size_t hw = bank.sample_toggle_hw({1, 18, 33}, 0.97, rng);
  std::size_t expect = 0;
  for (std::size_t b : {1u, 18u, 33u}) {
    if (word.get(b)) ++expect;
  }
  EXPECT_EQ(hw, expect);
}

// The block kernel (pure compute over pre-drawn normals) must be
// bit-identical to toggle_hw_batch on the same stream — SIMD lanes and
// the forced-scalar fallback alike — for plans spanning both instances
// and plans that skip an instance, with uniform and mixed capture
// clocks (the two dispatch branches).
TEST(BenignSensorBank, BlockKernelMatchesBatch) {
  BenignSensorConfig noisy = quiet_cfg();
  noisy.capture.jitter_sigma_ns = 0.05;
  noisy.capture.common_jitter_sigma_ns = 0.08;
  noisy.capture.endpoint_skew_sigma_ns = 0.03;
  BenignSensorConfig other = noisy;
  other.seed = noisy.seed ^ 7;

  for (const bool uniform : {true, false}) {
    if (!uniform) other.capture.clock_period_ns += 0.5;
    auto bank = BenignSensorBank{};
    bank.add(make_adder_sensor(16, noisy));
    bank.add(make_adder_sensor(16, other));

    for (const auto& bits :
         {std::vector<std::size_t>{1, 5, 16, 18, 20, 33},
          std::vector<std::size_t>{18, 19, 25}}) {  // instance 0 skipped
      const auto plan = bank.compile_hw_plan(bits);
      ASSERT_GT(plan.draws_per_sample, 0u);
      const std::size_t lanes = 23;  // odd, several traces worth
      std::vector<double> v(lanes);
      for (std::size_t l = 0; l < lanes; ++l) {
        v[l] = 0.90 + 0.005 * static_cast<double>(l);
      }
      Xoshiro256 rng_a(11);
      Xoshiro256 rng_b(11);
      std::vector<double> ya(lanes), yb(lanes), yc(lanes);
      bank.toggle_hw_batch(plan, v.data(), lanes, rng_a, ya.data());
      std::vector<double> z(lanes * plan.draws_per_sample);
      FastNormal::instance().fill(rng_b, z.data(), z.size());
      bank.toggle_hw_block(plan, v.data(), lanes, z.data(), yb.data(), true);
      bank.toggle_hw_block(plan, v.data(), lanes, z.data(), yc.data(),
                           false);
      for (std::size_t l = 0; l < lanes; ++l) {
        ASSERT_EQ(yb[l], ya[l]) << "simd lane " << l;
        ASSERT_EQ(yc[l], ya[l]) << "scalar lane " << l;
      }
      // Same stream position afterwards: the block path consumed the
      // identical draw count through its pre-drawn slab.
      EXPECT_EQ(rng_a.next(), rng_b.next());
    }
  }
}

TEST(BenignSensorBank, EmptyBankRejected) {
  BenignSensorBank bank;
  Xoshiro256 rng(1);
  EXPECT_THROW((void)bank.sample_toggles(1.0, rng), slm::Error);
  EXPECT_THROW(bank.add(nullptr), slm::Error);
}

}  // namespace
}  // namespace slm::sensors
