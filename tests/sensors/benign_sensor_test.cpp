#include "sensors/benign_sensor.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"
#include "netlist/generators/adder.hpp"
#include "netlist/generators/alu.hpp"

namespace slm::sensors {
namespace {

using netlist::AdderOptions;
using netlist::AluOptions;

BenignSensorConfig quiet_cfg() {
  BenignSensorConfig cfg;
  cfg.capture.clock_period_ns = 10.0 / 3.0;
  cfg.capture.delay = timing::VoltageDelayModel{1.0, 2.0};
  cfg.capture.jitter_sigma_ns = 0.0;
  cfg.capture.common_jitter_sigma_ns = 0.0;
  cfg.capture.endpoint_skew_sigma_ns = 0.0;
  cfg.capture.setup_ns = 0.0;
  return cfg;
}

std::shared_ptr<BenignSensor> make_adder_sensor(std::size_t width,
                                                const BenignSensorConfig& cfg) {
  AdderOptions opt;
  opt.width = width;
  const auto nl = make_ripple_carry_adder(opt);
  BitVec ones(width);
  ones.set_all(true);
  BitVec one(width);
  one.set(0, true);
  return std::make_shared<BenignSensor>(
      nl, pack_adder_inputs(opt, BitVec(width), BitVec(width), false),
      pack_adder_inputs(opt, ones, one, false), cfg);
}

TEST(BenignSensor, OverclockedByConstruction) {
  const auto sensor = make_adder_sensor(192, quiet_cfg());
  EXPECT_GT(sensor->max_settle_time_ns(),
            quiet_cfg().capture.clock_period_ns);
  EXPECT_EQ(sensor->endpoint_count(), 193u);
}

TEST(BenignSensor, ThermometerToggleWordWithoutNoise) {
  const auto sensor = make_adder_sensor(192, quiet_cfg());
  Xoshiro256 rng(1);
  // Without noise the toggle word is a clean staircase: bits past the
  // carry boundary toggled (read 1), bits behind it killed (read 0).
  const BitVec toggles = sensor->sample_toggles(1.0, rng);
  const std::size_t hw = toggles.popcount();
  ASSERT_GT(hw, 0u);
  ASSERT_LT(hw, 192u);
  // All toggled bits sit above all untoggled sum bits.
  const std::size_t boundary = 192 - hw;
  for (std::size_t i = 0; i < 192; ++i) {
    EXPECT_EQ(toggles.get(i), i >= boundary) << "bit " << i;
  }
}

TEST(BenignSensor, BoundaryMovesWithVoltage) {
  const auto sensor = make_adder_sensor(192, quiet_cfg());
  Xoshiro256 rng(2);
  // Lower voltage -> earlier capture -> carry killed fewer bits -> more
  // bits still toggled (reading 1).
  const std::size_t hw_droop =
      sensor->sample_toggles(0.92, rng).popcount();
  const std::size_t hw_nom = sensor->sample_toggles(1.0, rng).popcount();
  const std::size_t hw_over = sensor->sample_toggles(1.04, rng).popcount();
  EXPECT_GT(hw_droop, hw_nom);
  EXPECT_GT(hw_nom, hw_over);
}

TEST(BenignSensor, SingleBitMatchesWordWithoutNoise) {
  const auto sensor = make_adder_sensor(64, quiet_cfg());
  Xoshiro256 rng(3);
  for (double v : {0.94, 1.0, 1.03}) {
    const BitVec word = sensor->sample_toggles(v, rng);
    for (std::size_t i = 0; i < sensor->endpoint_count(); i += 7) {
      EXPECT_EQ(sensor->sample_toggle_bit(i, v, rng), word.get(i));
    }
  }
}

TEST(BenignSensor, SubsetHwMatchesWord) {
  const auto sensor = make_adder_sensor(64, quiet_cfg());
  Xoshiro256 rng(4);
  const std::vector<std::size_t> bits{10, 20, 30, 40, 50};
  const std::size_t hw = sensor->sample_toggle_hw(bits, 0.97, rng);
  const BitVec word = sensor->sample_toggles(0.97, rng);
  std::size_t expect = 0;
  for (std::size_t b : bits) {
    if (word.get(b)) ++expect;
  }
  EXPECT_EQ(hw, expect);
}

TEST(BenignSensor, SensitiveEndpointsFormBand) {
  const auto sensor = make_adder_sensor(192, quiet_cfg());
  const auto sens = sensor->sensitive_endpoints(0.90, 1.02);
  ASSERT_FALSE(sens.empty());
  ASSERT_LT(sens.size(), 192u);
  // Sensitive sum bits are contiguous (the staircase band).
  for (std::size_t i = 1; i < sens.size(); ++i) {
    if (sens[i] < 192 && sens[i - 1] < 192) {
      EXPECT_EQ(sens[i], sens[i - 1] + 1);
    }
  }
}

TEST(BenignSensorBank, ConcatenatesInstances) {
  auto bank = BenignSensorBank{};
  bank.add(make_adder_sensor(16, quiet_cfg()));
  bank.add(make_adder_sensor(16, quiet_cfg()));
  EXPECT_EQ(bank.instance_count(), 2u);
  EXPECT_EQ(bank.endpoint_count(), 34u);  // 2 x (16 sums + carry)
  Xoshiro256 rng(5);
  const BitVec word = bank.sample_toggles(0.97, rng);
  EXPECT_EQ(word.size(), 34u);
  // Both instances see the same voltage and have no noise: halves match.
  for (std::size_t i = 0; i < 17; ++i) {
    EXPECT_EQ(word.get(i), word.get(17 + i));
  }
}

TEST(BenignSensorBank, GlobalBitIndexing) {
  auto bank = BenignSensorBank{};
  bank.add(make_adder_sensor(16, quiet_cfg()));
  bank.add(make_adder_sensor(16, quiet_cfg()));
  Xoshiro256 rng(6);
  const BitVec word = bank.sample_toggles(0.97, rng);
  EXPECT_EQ(bank.sample_toggle_bit(20, 0.97, rng), word.get(20));
  EXPECT_THROW((void)bank.sample_toggle_bit(34, 0.97, rng), slm::Error);
  const std::size_t hw = bank.sample_toggle_hw({1, 18, 33}, 0.97, rng);
  std::size_t expect = 0;
  for (std::size_t b : {1u, 18u, 33u}) {
    if (word.get(b)) ++expect;
  }
  EXPECT_EQ(hw, expect);
}

TEST(BenignSensorBank, EmptyBankRejected) {
  BenignSensorBank bank;
  Xoshiro256 rng(1);
  EXPECT_THROW((void)bank.sample_toggles(1.0, rng), slm::Error);
  EXPECT_THROW(bank.add(nullptr), slm::Error);
}

}  // namespace
}  // namespace slm::sensors
