#include "sensors/ro_sensor.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace slm::sensors {
namespace {

RoSensorConfig quiet_cfg() {
  RoSensorConfig cfg;
  cfg.inverter_stages = 5;
  cfg.inverter_delay_ns = 0.1;
  cfg.count_window_ns = 1000.0;
  cfg.delay = timing::VoltageDelayModel{1.0, 2.0};
  cfg.phase_noise_counts = 0.0;
  return cfg;
}

TEST(RoSensor, FrequencyFromDelays) {
  RoCounterSensor ro(quiet_cfg());
  // f = 1 / (2 * 5 * 0.1ns) = 1 GHz = 1000 MHz.
  EXPECT_NEAR(ro.frequency_mhz(1.0), 1000.0, 1e-9);
}

TEST(RoSensor, FrequencyDropsWithDroop) {
  RoCounterSensor ro(quiet_cfg());
  EXPECT_LT(ro.frequency_mhz(0.9), ro.frequency_mhz(1.0));
  EXPECT_GT(ro.frequency_mhz(1.05), ro.frequency_mhz(1.0));
  // Inverse proportional to the delay factor.
  EXPECT_NEAR(ro.frequency_mhz(0.9), 1000.0 / 1.2, 1e-9);
}

TEST(RoSensor, ExpectedCountOverWindow) {
  RoCounterSensor ro(quiet_cfg());
  // 1 GHz over 1 us -> 1000 oscillations.
  EXPECT_NEAR(ro.expected_count(1.0), 1000.0, 1e-9);
}

TEST(RoSensor, NoiselessSampleIsDeterministic) {
  RoCounterSensor ro(quiet_cfg());
  Xoshiro256 rng(1);
  EXPECT_EQ(ro.sample(1.0, rng), 1000u);
  EXPECT_EQ(ro.sample(1.0, rng), 1000u);
}

TEST(RoSensor, NoisySampleCentredOnExpectation) {
  RoSensorConfig cfg = quiet_cfg();
  cfg.phase_noise_counts = 2.0;
  RoCounterSensor ro(cfg);
  Xoshiro256 rng(2);
  OnlineMeanVar acc;
  for (int i = 0; i < 10000; ++i) acc.add(ro.sample(0.95, rng));
  // The counter truncates: mean sits ~0.5 below the continuous value.
  EXPECT_NEAR(acc.mean(), ro.expected_count(0.95) - 0.5, 0.2);
  EXPECT_GT(acc.variance(), 1.0);
}

TEST(RoSensor, Validation) {
  RoSensorConfig bad = quiet_cfg();
  bad.inverter_stages = 4;  // even: no oscillation
  EXPECT_THROW(RoCounterSensor r(bad), slm::Error);
  bad = quiet_cfg();
  bad.count_window_ns = 0.0;
  EXPECT_THROW(RoCounterSensor r(bad), slm::Error);
}

}  // namespace
}  // namespace slm::sensors
