#include "sca/model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace slm::sca {
namespace {

using crypto::Aes128;
using crypto::Block;

TEST(LastRoundBitModel, RegisterPositionViaShiftRows) {
  // The paper attacks key byte 3 ("4th byte"): its pre-SBox partner is
  // the register at InvShiftRows(3) = 15.
  LastRoundBitModel model(3, 0);
  EXPECT_EQ(model.guessed_key_byte(), 3u);
  EXPECT_EQ(model.register_position(), 15u);
  // Row-0 bytes stay in place.
  EXPECT_EQ(LastRoundBitModel(0, 0).register_position(), 0u);
}

TEST(LastRoundBitModel, CorrectGuessPredictsActualFlip) {
  // With the right key guess the hypothesis equals the actual register
  // bit flip state9[q] ^ ct[q] for every encryption.
  const Aes128 aes(crypto::block_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  Xoshiro256 rng(3);
  for (std::size_t g : {0u, 3u, 7u, 15u}) {
    LastRoundBitModel model(g, 0);
    const std::uint8_t k = model.correct_guess(aes.last_round_key());
    for (int t = 0; t < 32; ++t) {
      Block pt;
      for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());
      const auto states = aes.encrypt_states(pt);
      const std::size_t q = model.register_position();
      const std::uint8_t actual_flip =
          static_cast<std::uint8_t>((states[9][q] ^ states[10][q]) & 1);
      EXPECT_EQ(model.hypothesis(states[10], k), actual_flip)
          << "byte " << g << " trace " << t;
    }
  }
}

TEST(LastRoundBitModel, WrongGuessesDecorrelate) {
  const Aes128 aes(crypto::block_from_hex("000102030405060708090a0b0c0d0e0f"));
  LastRoundBitModel model(3, 0);
  const std::uint8_t correct = model.correct_guess(aes.last_round_key());
  Xoshiro256 rng(4);
  // For a wrong guess, the hypothesis should agree with the actual flip
  // about half the time (S-box diffusion).
  const std::uint8_t wrong = static_cast<std::uint8_t>(correct ^ 0x35);
  int agree = 0;
  const int n = 4000;
  for (int t = 0; t < n; ++t) {
    Block pt;
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());
    const auto states = aes.encrypt_states(pt);
    const std::size_t q = model.register_position();
    const std::uint8_t actual =
        static_cast<std::uint8_t>((states[9][q] ^ states[10][q]) & 1);
    if (model.hypothesis(states[10], wrong) == actual) ++agree;
  }
  EXPECT_NEAR(static_cast<double>(agree) / n, 0.5, 0.05);
}

TEST(LastRoundBitModel, HypothesesVectorMatchesScalar) {
  LastRoundBitModel model(5, 3);
  Block ct;
  for (std::size_t i = 0; i < 16; ++i) ct[i] = static_cast<std::uint8_t>(13 * i);
  std::vector<std::uint8_t> h;
  model.hypotheses(ct, h);
  ASSERT_EQ(h.size(), 256u);
  for (int k = 0; k < 256; ++k) {
    EXPECT_EQ(h[k], model.hypothesis(ct, static_cast<std::uint8_t>(k)));
  }
}

TEST(LastRoundBitModel, HypothesisBitSelection) {
  Block ct{};
  LastRoundBitModel b0(0, 0), b7(0, 7);
  // Different target bits give different hypothesis patterns.
  std::vector<std::uint8_t> h0, h7;
  b0.hypotheses(ct, h0);
  b7.hypotheses(ct, h7);
  EXPECT_NE(h0, h7);
}

TEST(LastRoundBitModel, Validation) {
  EXPECT_THROW(LastRoundBitModel(16, 0), slm::Error);
  EXPECT_THROW(LastRoundBitModel(0, 8), slm::Error);
}

}  // namespace
}  // namespace slm::sca
