#include "sca/tvla.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace slm::sca {
namespace {

TEST(WelchTTest, NoLeakageStaysBelowThreshold) {
  Xoshiro256 rng(1);
  WelchTTest t(4);
  for (int i = 0; i < 5000; ++i) {
    // Integer readings, as the fold contract requires.
    std::vector<double> s(4);
    for (auto& x : s) x = static_cast<double>(rng.uniform_int(16));
    t.add(i % 2 == 0, s);
  }
  EXPECT_LT(t.max_abs_t(), WelchTTest::kThreshold);
  EXPECT_FALSE(t.leakage_detected());
}

TEST(WelchTTest, MeanShiftDetected) {
  Xoshiro256 rng(2);
  WelchTTest t(3);
  for (int i = 0; i < 5000; ++i) {
    const bool fixed = i % 2 == 0;
    std::vector<double> s(3);
    s[0] = static_cast<double>(rng.uniform_int(16));
    s[1] = static_cast<double>(rng.uniform_int(16) + (fixed ? 4 : 0));
    s[2] = static_cast<double>(rng.uniform_int(16));
    t.add(fixed, s);
  }
  EXPECT_TRUE(t.leakage_detected());
  EXPECT_GT(std::abs(t.t_statistic(1)), WelchTTest::kThreshold);
  EXPECT_LT(std::abs(t.t_statistic(0)), WelchTTest::kThreshold);
}

TEST(WelchTTest, KnownTwoSampleValue) {
  // Hand-computable case: fixed = {1,2,3}, random = {5,6,7}; equal
  // variances 1, n=3 each -> t = (2-6)/sqrt(2/3).
  WelchTTest t(1);
  for (double x : {1.0, 2.0, 3.0}) t.add(true, {x});
  for (double x : {5.0, 6.0, 7.0}) t.add(false, {x});
  EXPECT_NEAR(t.t_statistic(0), -4.0 / std::sqrt(2.0 / 3.0), 1e-12);
}

TEST(WelchTTest, ZeroUntilBothPopulated) {
  WelchTTest t(1);
  t.add(true, {1.0});
  t.add(true, {2.0});
  EXPECT_EQ(t.t_statistic(0), 0.0);
  t.add(false, {1.0});
  EXPECT_EQ(t.t_statistic(0), 0.0);  // random population still n=1
  t.add(false, {3.0});
  EXPECT_NE(t.t_statistic(0), 0.0);
  EXPECT_EQ(t.fixed_traces(), 2u);
  EXPECT_EQ(t.random_traces(), 2u);
}

TEST(WelchTTest, Validation) {
  EXPECT_THROW(WelchTTest t(0), slm::Error);
  WelchTTest t(2);
  EXPECT_THROW(t.add(true, {1.0}), slm::Error);
  EXPECT_THROW((void)t.t_statistic(2), slm::Error);
  // Non-integer readings violate the exact-fold contract.
  EXPECT_THROW(t.add(true, {0.5, 1.0}), slm::Error);
  EXPECT_EQ(t.fixed_traces(), 0u);
}

}  // namespace
}  // namespace slm::sca
