#include "sca/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace slm::sca {
namespace {

crypto::Block block(std::uint8_t fill) {
  crypto::Block b;
  b.fill(fill);
  return b;
}

TEST(TraceSet, AddAndAccess) {
  TraceSet set(3);
  set.add({1.0, 2.0, 3.0}, block(0xAA), block(0xBB));
  set.add({4.0, 5.0, 6.0}, block(0x01), block(0x02));
  EXPECT_EQ(set.trace_count(), 2u);
  EXPECT_EQ(set.samples_per_trace(), 3u);
  EXPECT_DOUBLE_EQ(set.trace(1)[0], 4.0);
  EXPECT_EQ(set.plaintext(0)[0], 0xAA);
  EXPECT_EQ(set.ciphertext(1)[5], 0x02);
}

TEST(TraceSet, FirstAddFixesWidth) {
  TraceSet set;
  set.add({1.0, 2.0}, block(0), block(0));
  EXPECT_EQ(set.samples_per_trace(), 2u);
  EXPECT_THROW(set.add({1.0}, block(0), block(0)), slm::Error);
}

TEST(TraceSet, OutOfRangeThrows) {
  TraceSet set(1);
  set.add({1.0}, block(0), block(0));
  EXPECT_THROW((void)set.trace(1), slm::Error);
  EXPECT_THROW((void)set.plaintext(9), slm::Error);
}

TEST(TraceSet, SampleVariances) {
  TraceSet set(2);
  set.add({1.0, 5.0}, block(0), block(0));
  set.add({3.0, 5.0}, block(0), block(0));
  const auto vars = set.sample_variances();
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_DOUBLE_EQ(vars[0], 1.0);
  EXPECT_DOUBLE_EQ(vars[1], 0.0);
}

TEST(TraceSet, CsvRoundTrip) {
  TraceSet set(2);
  set.add({1.25, -3.5}, block(0x11), block(0x22));
  set.add({0.0, 9.0}, block(0x33), block(0x44));
  std::stringstream ss;
  set.save_csv(ss);
  const TraceSet loaded = TraceSet::load_csv(ss);
  ASSERT_EQ(loaded.trace_count(), 2u);
  EXPECT_EQ(loaded.samples_per_trace(), 2u);
  EXPECT_DOUBLE_EQ(loaded.trace(0)[1], -3.5);
  EXPECT_EQ(loaded.plaintext(1), block(0x33));
  EXPECT_EQ(loaded.ciphertext(0), block(0x22));
}

}  // namespace
}  // namespace slm::sca
