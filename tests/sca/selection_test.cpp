#include "sca/selection.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace slm::sca {
namespace {

TEST(BitSelector, CountsAndVariance) {
  BitSelector sel(4);
  // bit0 always 0, bit1 always 1, bit2 half, bit3 quarter.
  for (int i = 0; i < 8; ++i) {
    BitVec w(4);
    w.set(1, true);
    w.set(2, i % 2 == 0);
    w.set(3, i % 4 == 0);
    sel.add(w);
  }
  EXPECT_EQ(sel.sample_count(), 8u);
  EXPECT_DOUBLE_EQ(sel.stat(0).variance, 0.0);
  EXPECT_DOUBLE_EQ(sel.stat(1).variance, 0.0);
  EXPECT_DOUBLE_EQ(sel.stat(2).mean, 0.5);
  EXPECT_DOUBLE_EQ(sel.stat(2).variance, 0.25);
  EXPECT_DOUBLE_EQ(sel.stat(3).mean, 0.25);
  EXPECT_DOUBLE_EQ(sel.stat(3).variance, 0.1875);
}

TEST(BitSelector, FluctuatingExcludesConstants) {
  BitSelector sel(3);
  for (int i = 0; i < 4; ++i) {
    BitVec w(3);
    w.set(0, true);        // constant 1
    w.set(2, i % 2 == 0);  // fluctuates
    sel.add(w);
  }
  EXPECT_EQ(sel.fluctuating_bits(), std::vector<std::size_t>{2});
}

TEST(BitSelector, BitsOfInterestThreshold) {
  BitSelector sel(3);
  for (int i = 0; i < 100; ++i) {
    BitVec w(3);
    w.set(0, i % 2 == 0);   // var 0.25
    w.set(1, i % 10 == 0);  // var 0.09
    sel.add(w);
  }
  EXPECT_EQ(sel.bits_of_interest(0.2), std::vector<std::size_t>{0});
  EXPECT_EQ(sel.bits_of_interest(0.05),
            (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(sel.highest_variance_bit(), 0u);
}

TEST(BitSelector, Validation) {
  EXPECT_THROW(BitSelector sel(0), slm::Error);
  BitSelector sel(2);
  EXPECT_THROW(sel.add(BitVec(3)), slm::Error);
  EXPECT_THROW((void)sel.highest_variance_bit(), slm::Error);  // no samples
}

TEST(HammingWeightOver, SelectsBits) {
  BitVec w(8, 0b10110010);
  EXPECT_EQ(hamming_weight_over(w, {0, 1, 4, 7}), 3u);
  EXPECT_EQ(hamming_weight_over(w, {}), 0u);
}

TEST(SubsetFraction, Cases) {
  EXPECT_DOUBLE_EQ(subset_fraction({}, {1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(subset_fraction({1, 2}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(subset_fraction({1, 4}, {1, 2, 3}), 0.5);
  EXPECT_DOUBLE_EQ(subset_fraction({4, 5}, {1, 2, 3}), 0.0);
}

TEST(BitSelector, StatsVectorAligned) {
  BitSelector sel(5);
  sel.add(BitVec(5, 0b10101));
  const auto stats = sel.stats();
  ASSERT_EQ(stats.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(stats[i].index, i);
  }
  const auto vars = sel.variances();
  EXPECT_EQ(vars.size(), 5u);
}

}  // namespace
}  // namespace slm::sca
