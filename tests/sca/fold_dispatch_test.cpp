// Property suite for the runtime-dispatched integer fold kernels
// (sca/fold_kernels.hpp): every dispatch level the CPU can run — scalar,
// SSE2, AVX2 — must produce byte-identical accumulator state and
// identical correlation/t-statistic read-outs over randomized readings
// and block sizes. The scalar level is the oracle; the wider levels are
// only allowed to be faster. Also pins the overflow-budget guard: adds
// that could push the int64 sums past 2^62 are refused before any
// accumulator (or input buffer) is touched.
#include "sca/fold_kernels.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/binio.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "sca/cpa.hpp"
#include "sca/tvla.hpp"

namespace slm::sca {
namespace {

std::vector<DispatchLevel> runnable_levels() {
  std::vector<DispatchLevel> out{DispatchLevel::kScalar};
  if (detect_dispatch() >= DispatchLevel::kSse2) {
    out.push_back(DispatchLevel::kSse2);
  }
  if (detect_dispatch() >= DispatchLevel::kAvx2) {
    out.push_back(DispatchLevel::kAvx2);
  }
  return out;
}

// RAII guard: force one level for a scope, always restore auto after.
struct ForcedLevel {
  explicit ForcedLevel(DispatchLevel level) {
    force_dispatch_for_testing(level);
  }
  ~ForcedLevel() { clear_forced_dispatch_for_testing(); }
};

template <typename Engine>
std::vector<std::uint8_t> state_bytes(const Engine& e) {
  ByteWriter w;
  e.save(w);
  return w.bytes();
}

TEST(FoldDispatch, ReportsRunnableLevels) {
  const auto levels = runnable_levels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), DispatchLevel::kScalar);
  for (const DispatchLevel l : levels) {
    EXPECT_EQ(kernels(l).level, l);
    EXPECT_NE(dispatch_level_name(l), std::string("unknown"));
  }
  // The active level is always runnable.
  EXPECT_LE(active_dispatch(), detect_dispatch());
}

// Raw kernels: dst += src at every level and every length (odd tails
// included) lands on the same bytes as the scalar oracle.
TEST(FoldDispatch, RawKernelsMatchScalarOracle) {
  Xoshiro256 rng(101);
  const auto levels = runnable_levels();
  for (std::size_t n = 1; n <= 37; ++n) {
    std::vector<std::int64_t> src(n), src2(n), base(n), base2(n);
    for (std::size_t i = 0; i < n; ++i) {
      src[i] = static_cast<std::int64_t>(rng.uniform_int(1 << 20)) - (1 << 19);
      src2[i] = src[i] * src[i];
      base[i] = static_cast<std::int64_t>(rng.uniform_int(1 << 20));
      base2[i] = static_cast<std::int64_t>(rng.uniform_int(1 << 20));
    }
    std::vector<std::int64_t> want = base, want2 = base2;
    kernels(DispatchLevel::kScalar).add_i64(want.data(), src.data(), n);
    kernels(DispatchLevel::kScalar)
        .add2_i64(want2.data(), want2.data(), src.data(), src2.data(), 0);
    for (const DispatchLevel l : levels) {
      std::vector<std::int64_t> got = base;
      kernels(l).add_i64(got.data(), src.data(), n);
      ASSERT_EQ(got, want) << "add_i64 level " << dispatch_level_name(l)
                           << " n " << n;
      std::vector<std::int64_t> gy = base, gyy = base2;
      std::vector<std::int64_t> wy = base, wyy = base2;
      kernels(DispatchLevel::kScalar)
          .add2_i64(wy.data(), wyy.data(), src.data(), src2.data(), n);
      kernels(l).add2_i64(gy.data(), gyy.data(), src.data(), src2.data(), n);
      ASSERT_EQ(gy, wy) << "add2_i64 level " << dispatch_level_name(l);
      ASSERT_EQ(gyy, wyy) << "add2_i64 level " << dispatch_level_name(l);
    }
  }
}

// Block kernels: column sums, row scatter, and the staging conversion
// at every level and every (count, n) shape — odd tails included —
// match the scalar oracle byte for byte.
TEST(FoldDispatch, BlockKernelsMatchScalarOracle) {
  Xoshiro256 rng(105);
  const auto levels = runnable_levels();
  for (const std::size_t n : {1ul, 2ul, 3ul, 4ul, 7ul, 16ul, 33ul}) {
    for (const std::size_t count : {1ul, 5ul, 64ul}) {
      std::vector<std::int64_t> y(count * n), yy(count * n);
      std::vector<std::uint32_t> cls(count);
      for (std::size_t i = 0; i < y.size(); ++i) {
        y[i] = static_cast<std::int64_t>(rng.uniform_int(1 << 20)) -
               (1 << 19);
        yy[i] = y[i] * y[i];
      }
      for (auto& c : cls) c = rng.uniform_int(8);
      std::vector<std::int64_t> wy(n, 3), wyy(n, 5), wrows(8 * n, 7);
      kernels(DispatchLevel::kScalar)
          .sum_cols2_i64(wy.data(), wyy.data(), y.data(), yy.data(), count,
                         n);
      kernels(DispatchLevel::kScalar)
          .scatter_rows_i64(wrows.data(), y.data(), cls.data(), count, n);
      for (const DispatchLevel l : levels) {
        std::vector<std::int64_t> gy(n, 3), gyy(n, 5), grows(8 * n, 7);
        kernels(l).sum_cols2_i64(gy.data(), gyy.data(), y.data(), yy.data(),
                                 count, n);
        kernels(l).scatter_rows_i64(grows.data(), y.data(), cls.data(),
                                    count, n);
        ASSERT_EQ(gy, wy) << "sum_cols2 level " << dispatch_level_name(l)
                          << " n " << n << " count " << count;
        ASSERT_EQ(gyy, wyy) << "sum_cols2 level " << dispatch_level_name(l);
        ASSERT_EQ(grows, wrows)
            << "scatter_rows level " << dispatch_level_name(l) << " n " << n
            << " count " << count;
      }
    }
  }
}

// Staging: every level converts the same bytes, and every level refuses
// fractional or out-of-range readings (the AVX2 lane path must fall
// back to the scalar stager for the exact per-element error).
TEST(FoldDispatch, StagingIdenticalAndValidatedAcrossLevels) {
  Xoshiro256 rng(106);
  for (const std::size_t n : {1ul, 3ul, 4ul, 5ul, 8ul, 31ul}) {
    std::vector<double> y(n);
    for (auto& s : y) {
      s = static_cast<double>(rng.uniform_int(1 << 21)) -
          static_cast<double>(1 << 20);
    }
    std::vector<std::int64_t> wi(n), wii(n);
    stage_readings_i64(y.data(), n, wi.data(), wii.data());
    for (const DispatchLevel l : runnable_levels()) {
      std::vector<std::int64_t> gi(n, -1), gii(n, -1);
      kernels(l).stage_i64(y.data(), n, gi.data(), gii.data());
      ASSERT_EQ(gi, wi) << "stage level " << dispatch_level_name(l);
      ASSERT_EQ(gii, wii) << "stage level " << dispatch_level_name(l);

      for (const double bad :
           {0.5, static_cast<double>((1 << 20) + 1), -1048577.0}) {
        std::vector<double> v(n, 1.0);
        v[n / 2] = bad;
        EXPECT_THROW(
            kernels(l).stage_i64(v.data(), n, gi.data(), gii.data()),
            slm::Error)
            << "level " << dispatch_level_name(l) << " bad " << bad;
      }
    }
  }
}

// The full class-binned engine: randomized traces pushed through every
// dispatch level and a spread of block sizes must serialize to the same
// bytes and fold to the same correlations.
TEST(FoldDispatch, XorClassStateAndReadoutsIdenticalAcrossLevels) {
  constexpr std::size_t kSamples = 7;
  constexpr std::size_t kTraces = 500;
  Xoshiro256 rng(102);
  std::vector<std::uint8_t> v(kTraces), b(kTraces);
  std::vector<double> y(kTraces * kSamples);
  for (auto& x : v) x = static_cast<std::uint8_t>(rng.uniform_int(256));
  for (auto& x : b) x = rng.coin() ? 1 : 0;
  for (auto& s : y) s = static_cast<double>(rng.uniform_int(4096)) - 1024.0;
  std::uint8_t pattern[256];
  for (auto& p : pattern) p = rng.coin() ? 1 : 0;

  std::vector<std::uint8_t> want_state;
  std::vector<double> want_corr;
  const std::size_t blocks[] = {1, 3, 32, kTraces};
  for (const DispatchLevel l : runnable_levels()) {
    for (const std::size_t block : blocks) {
      ForcedLevel forced(l);
      XorClassCpa cls(kSamples);
      for (std::size_t t = 0; t < kTraces; t += block) {
        const std::size_t bn = std::min(block, kTraces - t);
        cls.add_block(v.data() + t, b.data() + t, y.data() + t * kSamples,
                      bn);
      }
      const auto state = state_bytes(cls);
      const CpaEngine folded = cls.fold(pattern);
      const auto corr = folded.max_abs_correlation();
      if (want_state.empty()) {
        want_state = state;
        want_corr = corr;
        continue;
      }
      ASSERT_EQ(state, want_state)
          << "level " << dispatch_level_name(l) << " block " << block;
      ASSERT_EQ(corr, want_corr)
          << "level " << dispatch_level_name(l) << " block " << block;
    }
  }
}

// Same property for the general engine's trace-major block path and the
// fused 16-byte accumulator.
TEST(FoldDispatch, EngineBlocksIdenticalAcrossLevels) {
  constexpr std::size_t kGuesses = 32;
  constexpr std::size_t kSamples = 5;
  constexpr std::size_t kTraces = 300;
  Xoshiro256 rng(103);
  std::vector<std::uint8_t> h(kTraces * kGuesses);
  std::vector<std::uint8_t> v(kTraces * MultiByteCpa::kBytes);
  std::vector<std::uint8_t> mb_b(kTraces * MultiByteCpa::kBytes);
  std::vector<double> y(kTraces * kSamples);
  for (auto& x : h) x = rng.coin() ? 1 : 0;
  for (auto& x : v) x = static_cast<std::uint8_t>(rng.uniform_int(256));
  for (auto& x : mb_b) x = rng.coin() ? 1 : 0;
  for (auto& s : y) s = static_cast<double>(rng.uniform_int(512));

  std::vector<std::uint8_t> want_engine, want_multi;
  for (const DispatchLevel l : runnable_levels()) {
    for (const std::size_t block : {1ul, 17ul, kTraces}) {
      ForcedLevel forced(l);
      CpaEngine e(kGuesses, kSamples);
      MultiByteCpa m(kSamples);
      for (std::size_t t = 0; t < kTraces; t += block) {
        const std::size_t bn = std::min(block, kTraces - t);
        e.add_traces(h.data() + t * kGuesses, y.data() + t * kSamples, bn);
        m.add_block(v.data() + t * MultiByteCpa::kBytes,
                    mb_b.data() + t * MultiByteCpa::kBytes,
                    y.data() + t * kSamples, bn);
      }
      const auto es = state_bytes(e);
      const auto ms = state_bytes(m);
      if (want_engine.empty()) {
        want_engine = es;
        want_multi = ms;
        continue;
      }
      ASSERT_EQ(es, want_engine)
          << "level " << dispatch_level_name(l) << " block " << block;
      ASSERT_EQ(ms, want_multi)
          << "level " << dispatch_level_name(l) << " block " << block;
    }
  }
}

// Welch t read-outs never move with the dispatch level either.
TEST(FoldDispatch, WelchTIdenticalAcrossLevels) {
  constexpr std::size_t kSamples = 6;
  Xoshiro256 rng(104);
  std::vector<std::vector<double>> traces(400);
  for (auto& tr : traces) {
    tr.resize(kSamples);
    for (auto& s : tr) s = static_cast<double>(rng.uniform_int(64));
  }
  std::vector<double> want;
  for (const DispatchLevel l : runnable_levels()) {
    ForcedLevel forced(l);
    WelchTTest t(kSamples);
    for (std::size_t i = 0; i < traces.size(); ++i) {
      t.add((i % 2) == 0, traces[i]);
    }
    std::vector<double> got(kSamples);
    for (std::size_t s = 0; s < kSamples; ++s) got[s] = t.t_statistic(s);
    if (want.empty()) {
      want = got;
      continue;
    }
    ASSERT_EQ(got, want) << "level " << dispatch_level_name(l);
  }
}

// Overflow budget: campaigns whose worst-case sum_yy could exceed 2^62
// are refused up front, and the engines refuse incrementally — before
// reading a single input byte, so a huge `count` with a small buffer
// throws instead of scanning.
TEST(FoldDispatch, OverflowBudgetRefused) {
  EXPECT_EQ(kMaxFoldTraces, std::size_t{1} << 22);
  EXPECT_NO_THROW(require_fold_budget(kMaxFoldTraces, "test"));
  EXPECT_THROW(require_fold_budget(kMaxFoldTraces + 1, "test"), slm::Error);

  const double y1[1] = {1.0};
  const std::uint8_t l1[MultiByteCpa::kBytes] = {};
  CpaEngine e(2, 1);
  EXPECT_THROW(e.add_traces(l1, y1, kMaxFoldTraces + 1), slm::Error);
  EXPECT_EQ(e.trace_count(), 0u);
  XorClassCpa c(1);
  EXPECT_THROW(c.add_block(l1, l1, y1, kMaxFoldTraces + 1), slm::Error);
  EXPECT_EQ(c.trace_count(), 0u);
}

}  // namespace
}  // namespace slm::sca
