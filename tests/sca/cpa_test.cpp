#include "sca/cpa.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace slm::sca {
namespace {

TEST(CpaEngine, MatchesOnlineCorrelation) {
  Xoshiro256 rng(1);
  CpaEngine engine(4, 2);
  std::vector<OnlineCorrelation> ref(8);  // guess-major [k*2+s]
  for (int t = 0; t < 5000; ++t) {
    std::vector<std::uint8_t> h(4);
    for (auto& b : h) b = rng.coin() ? 1 : 0;
    // Integer-valued readings, as the engine contract requires.
    std::vector<double> y{
        static_cast<double>(h[0] * 3 + rng.uniform_int(9)),
        static_cast<double>(h[2] * 2 + rng.uniform_int(9))};
    engine.add_trace(h, y);
    for (int k = 0; k < 4; ++k) {
      for (int s = 0; s < 2; ++s) {
        ref[k * 2 + s].add(h[k], y[s]);
      }
    }
  }
  for (std::size_t k = 0; k < 4; ++k) {
    for (std::size_t s = 0; s < 2; ++s) {
      EXPECT_NEAR(engine.correlation(k, s), ref[k * 2 + s].correlation(),
                  1e-10);
    }
  }
}

TEST(CpaEngine, RecoversInjectedLeakage) {
  Xoshiro256 rng(2);
  CpaEngine engine(16, 3);
  const std::size_t secret = 11;
  for (int t = 0; t < 20000; ++t) {
    std::vector<std::uint8_t> h(16);
    for (auto& b : h) b = rng.coin() ? 1 : 0;
    // Sample 1 leaks the secret guess's hypothesis (integer counts,
    // like a TDC reading with a data-dependent depth shift).
    std::vector<double> y{
        static_cast<double>(rng.uniform_int(32)),
        static_cast<double>(h[secret] * 4 + rng.uniform_int(32)),
        static_cast<double>(rng.uniform_int(32))};
    engine.add_trace(h, y);
  }
  EXPECT_EQ(engine.best_guess(), secret);
  EXPECT_EQ(engine.rank_of(secret), 0u);
  const auto corr = engine.max_abs_correlation();
  EXPECT_GT(corr[secret], 0.1);
}

TEST(CpaEngine, NegativeLeakageFoundViaAbs) {
  Xoshiro256 rng(3);
  CpaEngine engine(8, 1);
  const std::size_t secret = 5;
  for (int t = 0; t < 20000; ++t) {
    std::vector<std::uint8_t> h(8);
    for (auto& b : h) b = rng.coin() ? 1 : 0;
    std::vector<double> y{
        static_cast<double>(rng.uniform_int(32)) - 4.0 * h[secret]};
    engine.add_trace(h, y);
  }
  EXPECT_EQ(engine.best_guess(), secret);
  EXPECT_LT(engine.correlation(secret, 0), 0.0);
}

TEST(CpaEngine, FewTracesGiveZero) {
  CpaEngine engine(2, 1);
  EXPECT_EQ(engine.correlation(0, 0), 0.0);
  engine.add_trace({1, 0}, {1.0});
  EXPECT_EQ(engine.correlation(0, 0), 0.0);
}

TEST(CpaEngine, ConstantHypothesisGivesZero) {
  CpaEngine engine(2, 1);
  for (int t = 0; t < 100; ++t) {
    engine.add_trace({1, 0}, {static_cast<double>(t % 7)});
  }
  EXPECT_EQ(engine.correlation(0, 0), 0.0);  // h constant 1
  EXPECT_EQ(engine.correlation(1, 0), 0.0);  // h constant 0
}

TEST(CpaEngine, Validation) {
  EXPECT_THROW(CpaEngine engine(0, 1), slm::Error);
  CpaEngine engine(2, 2);
  EXPECT_THROW(engine.add_trace({1}, {1.0, 2.0}), slm::Error);
  EXPECT_THROW(engine.add_trace({1, 0}, {1.0}), slm::Error);
  EXPECT_THROW((void)engine.correlation(2, 0), slm::Error);
  EXPECT_THROW((void)engine.rank_of(9), slm::Error);
}

// The integer-exact contract is enforced, not assumed: non-integer or
// out-of-range readings are refused before any accumulator is touched.
TEST(CpaEngine, IntegerContractEnforced) {
  CpaEngine engine(2, 2);
  EXPECT_THROW(engine.add_trace({1, 0}, {0.5, 1.0}), slm::Error);
  EXPECT_THROW(engine.add_trace({1, 0}, {1.0, 2097152.0}), slm::Error);
  EXPECT_EQ(engine.trace_count(), 0u);
  engine.add_trace({1, 0}, {1048576.0, -1048576.0});  // |y| = 2^20 is in range
  EXPECT_EQ(engine.trace_count(), 1u);
}

// N shard engines fed round-robin must merge to the exact serial
// engine. Measurements are integer-valued (as every campaign sensor
// mode produces), so the running sums are exact regardless of addition
// order and the equality is bit-for-bit.
TEST(CpaEngine, ShardsMergeToSerialBitForBit) {
  constexpr std::size_t kGuesses = 16;
  constexpr std::size_t kSamples = 5;
  constexpr std::size_t kShards = 4;
  constexpr int kTraces = 3000;

  Xoshiro256 rng(7);
  CpaEngine serial(kGuesses, kSamples);
  std::vector<CpaEngine> shards(kShards, CpaEngine(kGuesses, kSamples));
  for (int t = 0; t < kTraces; ++t) {
    std::vector<std::uint8_t> h(kGuesses);
    for (auto& b : h) b = rng.coin() ? 1 : 0;
    std::vector<double> y(kSamples);
    for (auto& v : y) {
      // Integer-valued like a TDC reading or a Hamming weight.
      v = static_cast<double>(rng.uniform_int(64)) + h[3];
    }
    serial.add_trace(h, y);
    shards[static_cast<std::size_t>(t) % kShards].add_trace(h, y);
  }

  CpaEngine merged(kGuesses, kSamples);
  for (const auto& s : shards) merged.merge(s);

  ASSERT_EQ(merged.trace_count(), serial.trace_count());
  for (std::size_t k = 0; k < kGuesses; ++k) {
    for (std::size_t s = 0; s < kSamples; ++s) {
      EXPECT_EQ(merged.correlation(k, s), serial.correlation(k, s))
          << "guess " << k << " sample " << s;
    }
  }
  EXPECT_EQ(merged.max_abs_correlation(), serial.max_abs_correlation());
  EXPECT_EQ(merged.best_guess(), serial.best_guess());
}

TEST(CpaEngine, MergeEmptyIsIdentity) {
  Xoshiro256 rng(8);
  CpaEngine engine(4, 2);
  for (int t = 0; t < 50; ++t) {
    std::vector<std::uint8_t> h(4);
    for (auto& b : h) b = rng.coin() ? 1 : 0;
    engine.add_trace(h, {1.0 * h[0], 2.0});
  }
  const auto before = engine.max_abs_correlation();
  engine.merge(CpaEngine(4, 2));
  EXPECT_EQ(engine.trace_count(), 50u);
  EXPECT_EQ(engine.max_abs_correlation(), before);
}

TEST(CpaEngine, MergeValidatesDimensions) {
  CpaEngine engine(4, 2);
  EXPECT_THROW(engine.merge(CpaEngine(4, 3)), slm::Error);
  EXPECT_THROW(engine.merge(CpaEngine(5, 2)), slm::Error);
}

// XorClassCpa bins traces into 512 (v, b) classes and fold() expands
// them back into the full 256-guess sums under h_k = pattern[v ^ k] ^ b.
// With integer-valued readings every sum is exact, so the folded engine
// must equal the trace-by-trace CpaEngine bit-for-bit.
TEST(XorClassCpa, FoldMatchesCpaEngineBitForBit) {
  constexpr std::size_t kSamples = 3;
  constexpr int kTraces = 4000;

  // A random 0/1 pattern table (stand-in for an S-box output bit).
  Xoshiro256 rng(21);
  std::uint8_t pattern[256];
  for (auto& p : pattern) p = rng.coin() ? 1 : 0;

  CpaEngine ref(256, kSamples);
  XorClassCpa classes(kSamples);
  for (int t = 0; t < kTraces; ++t) {
    const auto v = static_cast<std::uint8_t>(rng.uniform_int(256));
    const auto b = static_cast<std::uint8_t>(rng.coin() ? 1 : 0);
    std::vector<double> y(kSamples);
    for (auto& s : y) s = static_cast<double>(rng.uniform_int(48));
    std::vector<std::uint8_t> h(256);
    for (std::size_t k = 0; k < 256; ++k) {
      h[k] = static_cast<std::uint8_t>(pattern[v ^ k] ^ b);
    }
    ref.add_trace(h, y);
    classes.add_trace(v, b, y);
  }

  const CpaEngine folded = classes.fold(pattern);
  ASSERT_EQ(folded.trace_count(), ref.trace_count());
  for (std::size_t k = 0; k < 256; ++k) {
    for (std::size_t s = 0; s < kSamples; ++s) {
      ASSERT_EQ(folded.correlation(k, s), ref.correlation(k, s))
          << "guess " << k << " sample " << s;
    }
  }
  EXPECT_EQ(folded.max_abs_correlation(), ref.max_abs_correlation());
  EXPECT_EQ(folded.best_guess(), ref.best_guess());
}

// Shard-merged class accumulators fold to the same engine as one serial
// accumulator — the merge path the parallel campaign uses.
TEST(XorClassCpa, ShardsMergeThenFoldBitForBit) {
  constexpr std::size_t kSamples = 2;
  constexpr std::size_t kShards = 3;
  constexpr int kTraces = 2000;

  Xoshiro256 rng(22);
  std::uint8_t pattern[256];
  for (auto& p : pattern) p = rng.coin() ? 1 : 0;

  XorClassCpa serial(kSamples);
  std::vector<XorClassCpa> shards(kShards, XorClassCpa(kSamples));
  for (int t = 0; t < kTraces; ++t) {
    const auto v = static_cast<std::uint8_t>(rng.uniform_int(256));
    const auto b = static_cast<std::uint8_t>(rng.coin() ? 1 : 0);
    std::vector<double> y(kSamples);
    for (auto& s : y) s = static_cast<double>(rng.uniform_int(64));
    serial.add_trace(v, b, y);
    shards[static_cast<std::size_t>(t) % kShards].add_trace(v, b, y);
  }

  XorClassCpa merged(kSamples);
  for (const auto& s : shards) merged.merge(s);
  ASSERT_EQ(merged.trace_count(), serial.trace_count());

  const CpaEngine a = merged.fold(pattern);
  const CpaEngine b = serial.fold(pattern);
  EXPECT_EQ(a.max_abs_correlation(), b.max_abs_correlation());
  for (std::size_t k = 0; k < 256; ++k) {
    for (std::size_t s = 0; s < kSamples; ++s) {
      ASSERT_EQ(a.correlation(k, s), b.correlation(k, s));
    }
  }
}

TEST(XorClassCpa, Validation) {
  EXPECT_THROW(XorClassCpa c(0), slm::Error);
  XorClassCpa c(2);
  EXPECT_THROW(c.add_trace(0, 2, {1.0, 2.0}), slm::Error);
  EXPECT_THROW(c.add_trace(0, 0, {1.0}), slm::Error);
  EXPECT_THROW(c.merge(XorClassCpa(3)), slm::Error);
}

TEST(SnapshotProgress, RanksAndMargins) {
  Xoshiro256 rng(4);
  CpaEngine engine(4, 1);
  for (int t = 0; t < 10000; ++t) {
    std::vector<std::uint8_t> h(4);
    for (auto& b : h) b = rng.coin() ? 1 : 0;
    engine.add_trace(h, {static_cast<double>(3 * h[2] + rng.uniform_int(16))});
  }
  const auto p = snapshot_progress(engine, 2);
  EXPECT_EQ(p.traces, 10000u);
  EXPECT_EQ(p.best_guess, 2u);
  EXPECT_EQ(p.correct_rank, 0u);
  EXPECT_GT(p.correct_corr, p.best_wrong_corr);
  ASSERT_EQ(p.max_abs_corr.size(), 4u);

  const auto wrong = snapshot_progress(engine, 0);
  EXPECT_GT(wrong.correct_rank, 0u);
}

}  // namespace
}  // namespace slm::sca
