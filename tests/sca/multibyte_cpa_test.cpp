// Property tests for the fused multi-byte CPA accumulator: every byte
// slice of MultiByteCpa must behave exactly like a standalone XorClassCpa
// fed the same (class value, class bit, readings) stream — fold results
// bit-identical engine state, add_block bit-identical to add_trace for
// ragged block sizes, merge exact for integer readings, and save/load a
// faithful round trip that can keep accumulating. These are the
// invariants the fused full-key engine's farmed-oracle equivalence
// stands on (docs/FULLKEY.md, DESIGN.md).
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/binio.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "sca/cpa.hpp"

namespace slm::sca {
namespace {

constexpr std::size_t kBytes = MultiByteCpa::kBytes;

std::vector<std::uint8_t> state_bytes(const CpaEngine& e) {
  ByteWriter w;
  e.save(w);
  return w.bytes();
}

std::vector<std::uint8_t> state_bytes(const MultiByteCpa& m) {
  ByteWriter w;
  m.save(w);
  return w.bytes();
}

// Trace-major label rows (v[t*16+j], b[t*16+j]) plus integer-valued
// readings (negative values included) — the engine contract; exact
// int64 accumulation makes the blocked/merged paths bit-identical.
void random_traces(Xoshiro256& rng, std::size_t samples, std::size_t count,
                   std::vector<std::uint8_t>& v, std::vector<std::uint8_t>& b,
                   std::vector<double>& y) {
  v.resize(count * kBytes);
  b.resize(count * kBytes);
  y.resize(count * samples);
  for (auto& x : v) x = static_cast<std::uint8_t>(rng.uniform_int(256));
  for (auto& x : b) x = rng.coin() ? 1 : 0;
  for (auto& s : y) {
    s = static_cast<double>(rng.uniform_int(96)) - 32.0;
  }
}

TEST(MultiByteCpa, EveryByteFoldsLikeAStandaloneXorClassCpa) {
  constexpr std::size_t kSamples = 5;
  constexpr std::size_t kTraces = 700;
  Xoshiro256 rng(41);
  std::vector<std::uint8_t> v, b;
  std::vector<double> y;
  random_traces(rng, kSamples, kTraces, v, b, y);

  MultiByteCpa mb(kSamples);
  std::vector<XorClassCpa> singles(kBytes, XorClassCpa(kSamples));
  std::vector<double> yt(kSamples);
  for (std::size_t t = 0; t < kTraces; ++t) {
    std::memcpy(yt.data(), y.data() + t * kSamples,
                kSamples * sizeof(double));
    mb.add_trace(v.data() + t * kBytes, b.data() + t * kBytes, yt);
    for (std::size_t j = 0; j < kBytes; ++j) {
      singles[j].add_trace(v[t * kBytes + j], b[t * kBytes + j], yt);
    }
  }
  ASSERT_EQ(mb.trace_count(), kTraces);

  for (std::size_t j = 0; j < kBytes; ++j) {
    std::uint8_t pattern[256];
    for (auto& p : pattern) p = rng.coin() ? 1 : 0;
    const CpaEngine fused = mb.fold(j, pattern);
    const CpaEngine standalone = singles[j].fold(pattern);
    ASSERT_EQ(state_bytes(fused), state_bytes(standalone)) << "byte " << j;
  }
}

TEST(MultiByteCpa, AddBlockMatchesAddTraceBitForBit) {
  Xoshiro256 rng(42);
  for (int round = 0; round < 10; ++round) {
    const std::size_t samples = 1 + rng.uniform_int(10);
    const std::size_t traces = 1 + rng.uniform_int(400);
    const std::size_t block = 1 + rng.uniform_int(70);  // rarely divides

    std::vector<std::uint8_t> v, b;
    std::vector<double> y;
    random_traces(rng, samples, traces, v, b, y);

    MultiByteCpa ref(samples);
    std::vector<double> yt(samples);
    for (std::size_t t = 0; t < traces; ++t) {
      std::memcpy(yt.data(), y.data() + t * samples,
                  samples * sizeof(double));
      ref.add_trace(v.data() + t * kBytes, b.data() + t * kBytes, yt);
    }

    MultiByteCpa blocked(samples);
    for (std::size_t t = 0; t < traces; t += block) {
      const std::size_t bn = std::min(block, traces - t);  // ragged tail
      blocked.add_block(v.data() + t * kBytes, b.data() + t * kBytes,
                        y.data() + t * samples, bn);
    }

    ASSERT_EQ(blocked.trace_count(), ref.trace_count());
    ASSERT_EQ(state_bytes(blocked), state_bytes(ref))
        << "round " << round << " samples " << samples << " traces "
        << traces << " block " << block;
  }
}

// Shard halves pushed through different block sizes, merged in both
// orders, must fold byte-for-byte like the serial accumulator. Integer
// readings, as in every campaign sensor mode, make the regrouped sums
// exact — the same argument the sharded full-key engine relies on.
TEST(MultiByteCpa, MergedShardsFoldBitForBit) {
  constexpr std::size_t kSamples = 4;
  constexpr std::size_t kTraces = 900;
  Xoshiro256 rng(43);
  std::vector<std::uint8_t> v, b;
  std::vector<double> y;
  random_traces(rng, kSamples, kTraces, v, b, y);

  MultiByteCpa serial(kSamples);
  std::vector<double> yt(kSamples);
  for (std::size_t t = 0; t < kTraces; ++t) {
    std::memcpy(yt.data(), y.data() + t * kSamples,
                kSamples * sizeof(double));
    serial.add_trace(v.data() + t * kBytes, b.data() + t * kBytes, yt);
  }

  const std::size_t mid = kTraces / 2;
  MultiByteCpa lo(kSamples), hi(kSamples);
  for (std::size_t t = 0; t < mid; t += 7) {
    const std::size_t bn = std::min<std::size_t>(7, mid - t);
    lo.add_block(v.data() + t * kBytes, b.data() + t * kBytes,
                 y.data() + t * kSamples, bn);
  }
  for (std::size_t t = mid; t < kTraces; t += 64) {
    const std::size_t bn = std::min<std::size_t>(64, kTraces - t);
    hi.add_block(v.data() + t * kBytes, b.data() + t * kBytes,
                 y.data() + t * kSamples, bn);
  }

  std::uint8_t pattern[256];
  for (auto& p : pattern) p = rng.coin() ? 1 : 0;
  for (const int order : {0, 1}) {
    MultiByteCpa merged(kSamples);
    if (order == 0) {
      merged.merge(lo);
      merged.merge(hi);
    } else {
      merged.merge(hi);
      merged.merge(lo);
    }
    ASSERT_EQ(merged.trace_count(), serial.trace_count());
    for (std::size_t j = 0; j < kBytes; ++j) {
      ASSERT_EQ(state_bytes(merged.fold(j, pattern)),
                state_bytes(serial.fold(j, pattern)))
          << "merge order " << order << " byte " << j;
    }
  }
}

TEST(MultiByteCpa, SaveLoadRoundTripAndContinue) {
  constexpr std::size_t kSamples = 3;
  constexpr std::size_t kTraces = 300;
  Xoshiro256 rng(44);
  std::vector<std::uint8_t> v, b;
  std::vector<double> y;
  random_traces(rng, kSamples, kTraces, v, b, y);

  MultiByteCpa whole(kSamples);
  MultiByteCpa first(kSamples);
  std::vector<double> yt(kSamples);
  const std::size_t mid = kTraces / 2;
  for (std::size_t t = 0; t < kTraces; ++t) {
    std::memcpy(yt.data(), y.data() + t * kSamples,
                kSamples * sizeof(double));
    whole.add_trace(v.data() + t * kBytes, b.data() + t * kBytes, yt);
    if (t < mid) {
      first.add_trace(v.data() + t * kBytes, b.data() + t * kBytes, yt);
    }
  }

  ByteWriter snap;
  first.save(snap);
  MultiByteCpa restored(kSamples);
  ByteReader in(snap.bytes().data(), snap.bytes().size());
  restored.load(in);
  EXPECT_TRUE(in.done());
  EXPECT_EQ(restored.trace_count(), mid);
  EXPECT_EQ(state_bytes(restored), state_bytes(first));

  for (std::size_t t = mid; t < kTraces; ++t) {
    std::memcpy(yt.data(), y.data() + t * kSamples,
                kSamples * sizeof(double));
    restored.add_trace(v.data() + t * kBytes, b.data() + t * kBytes, yt);
  }
  EXPECT_EQ(state_bytes(restored), state_bytes(whole));
}

TEST(MultiByteCpa, Validation) {
  MultiByteCpa m(2);
  std::uint8_t v[kBytes] = {};
  std::uint8_t bad[kBytes] = {};
  bad[5] = 2;  // class bit must be 0/1
  const std::vector<double> y = {1.0, 2.0};
  EXPECT_THROW(m.add_trace(v, bad, y), slm::Error);
  const double yb[4] = {1.0, 2.0, 3.0, 4.0};
  EXPECT_THROW(m.add_block(v, bad, yb, 1), slm::Error);
}

}  // namespace
}  // namespace slm::sca
