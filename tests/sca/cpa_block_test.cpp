// Property tests for the cache-blocked CPA accumulators (DESIGN.md §11):
// CpaEngine::add_traces and XorClassCpa::add_block must be bit-identical
// to the equivalent sequence of per-trace add_trace calls — for random
// dimensions and random block sizes (including ragged tails and block
// 1). Readings are integer-valued (negative values included), which is
// the engine contract: the int64 accumulators make any regrouping
// exact, so blocked, per-trace, and merged paths all land on the same
// bits. Dispatch-level invariance is pinned by fold_dispatch_test.
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/binio.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "sca/cpa.hpp"

namespace slm::sca {
namespace {

std::vector<std::uint8_t> state_bytes(const CpaEngine& e) {
  ByteWriter w;
  e.save(w);
  return w.bytes();
}

std::vector<std::uint8_t> state_bytes(const XorClassCpa& c) {
  ByteWriter w;
  c.save(w);
  return w.bytes();
}

// Fill a trace-major hypothesis/reading block with integer-valued
// readings, negatives included (the engine contract).
void random_traces(Xoshiro256& rng, std::size_t guesses, std::size_t samples,
                   std::size_t count, std::vector<std::uint8_t>& h,
                   std::vector<double>& y) {
  h.resize(count * guesses);
  y.resize(count * samples);
  for (auto& b : h) b = rng.coin() ? 1 : 0;
  for (auto& s : y) s = static_cast<double>(rng.uniform_int(64)) - 24.0;
}

TEST(CpaEngineBlock, AddTracesMatchesAddTraceBitForBit) {
  Xoshiro256 rng(31);
  for (int round = 0; round < 12; ++round) {
    const std::size_t guesses = 1 + rng.uniform_int(40);
    const std::size_t samples = 1 + rng.uniform_int(12);
    const std::size_t traces = 1 + rng.uniform_int(300);
    const std::size_t block = 1 + rng.uniform_int(50);  // rarely divides

    std::vector<std::uint8_t> h;
    std::vector<double> y;
    random_traces(rng, guesses, samples, traces, h, y);

    CpaEngine ref(guesses, samples);
    std::vector<std::uint8_t> ht(guesses);
    std::vector<double> yt(samples);
    for (std::size_t t = 0; t < traces; ++t) {
      std::memcpy(ht.data(), h.data() + t * guesses, guesses);
      std::memcpy(yt.data(), y.data() + t * samples,
                  samples * sizeof(double));
      ref.add_trace(ht, yt);
    }

    CpaEngine blocked(guesses, samples);
    for (std::size_t t = 0; t < traces; t += block) {
      const std::size_t bn = std::min(block, traces - t);  // ragged tail
      blocked.add_traces(h.data() + t * guesses, y.data() + t * samples, bn);
    }

    ASSERT_EQ(blocked.trace_count(), ref.trace_count());
    ASSERT_EQ(state_bytes(blocked), state_bytes(ref))
        << "round " << round << " guesses " << guesses << " samples "
        << samples << " traces " << traces << " block " << block;
  }
}

TEST(CpaEngineBlock, BlockOneAndEmptyAreDegenerate) {
  Xoshiro256 rng(32);
  std::vector<std::uint8_t> h;
  std::vector<double> y;
  random_traces(rng, 8, 3, 20, h, y);

  CpaEngine ref(8, 3);
  CpaEngine one(8, 3);
  std::vector<std::uint8_t> ht(8);
  std::vector<double> yt(3);
  for (std::size_t t = 0; t < 20; ++t) {
    std::memcpy(ht.data(), h.data() + t * 8, 8);
    std::memcpy(yt.data(), y.data() + t * 3, 3 * sizeof(double));
    ref.add_trace(ht, yt);
    one.add_traces(h.data() + t * 8, y.data() + t * 3, 1);
  }
  one.add_traces(h.data(), y.data(), 0);  // no-op
  EXPECT_EQ(state_bytes(one), state_bytes(ref));
}

TEST(XorClassCpaBlock, AddBlockMatchesAddTraceBitForBit) {
  Xoshiro256 rng(33);
  for (int round = 0; round < 12; ++round) {
    const std::size_t samples = 1 + rng.uniform_int(10);
    const std::size_t traces = 1 + rng.uniform_int(400);
    const std::size_t block = 1 + rng.uniform_int(70);

    std::vector<std::uint8_t> v(traces), b(traces);
    std::vector<double> y(traces * samples);
    for (auto& x : v) x = static_cast<std::uint8_t>(rng.uniform_int(256));
    for (auto& x : b) x = rng.coin() ? 1 : 0;
    for (auto& s : y) s = static_cast<double>(rng.uniform_int(128)) - 48.0;

    XorClassCpa ref(samples);
    std::vector<double> yt(samples);
    for (std::size_t t = 0; t < traces; ++t) {
      std::memcpy(yt.data(), y.data() + t * samples,
                  samples * sizeof(double));
      ref.add_trace(v[t], b[t], yt);
    }

    XorClassCpa blocked(samples);
    for (std::size_t t = 0; t < traces; t += block) {
      const std::size_t bn = std::min(block, traces - t);
      blocked.add_block(v.data() + t, b.data() + t, y.data() + t * samples,
                        bn);
    }

    ASSERT_EQ(blocked.trace_count(), ref.trace_count());
    ASSERT_EQ(state_bytes(blocked), state_bytes(ref))
        << "round " << round << " samples " << samples << " traces "
        << traces << " block " << block;
  }
}

// Shards fed through add_block with *different* block sizes, merged in
// shuffled order, must fold to the same engine as the serial per-trace
// accumulator. Integer-valued readings, as in every campaign sensor
// mode, make the regrouped class sums exact.
TEST(XorClassCpaBlock, BlockedShardsMergeThenFoldBitForBit) {
  constexpr std::size_t kSamples = 4;
  constexpr std::size_t kShards = 3;
  constexpr std::size_t kTraces = 1800;
  const std::size_t shard_block[kShards] = {1, 7, 64};

  Xoshiro256 rng(34);
  std::uint8_t pattern[256];
  for (auto& p : pattern) p = rng.coin() ? 1 : 0;

  std::vector<std::uint8_t> v(kTraces), b(kTraces);
  std::vector<double> y(kTraces * kSamples);
  for (auto& x : v) x = static_cast<std::uint8_t>(rng.uniform_int(256));
  for (auto& x : b) x = rng.coin() ? 1 : 0;
  for (auto& s : y) s = static_cast<double>(rng.uniform_int(96));

  XorClassCpa serial(kSamples);
  std::vector<double> yt(kSamples);
  for (std::size_t t = 0; t < kTraces; ++t) {
    std::memcpy(yt.data(), y.data() + t * kSamples,
                kSamples * sizeof(double));
    serial.add_trace(v[t], b[t], yt);
  }

  // Contiguous shard segments, each pushed through its own block size.
  std::vector<XorClassCpa> shards(kShards, XorClassCpa(kSamples));
  const std::size_t seg = kTraces / kShards;
  for (std::size_t sh = 0; sh < kShards; ++sh) {
    const std::size_t lo = sh * seg;
    const std::size_t hi = (sh + 1 == kShards) ? kTraces : lo + seg;
    for (std::size_t t = lo; t < hi; t += shard_block[sh]) {
      const std::size_t bn = std::min(shard_block[sh], hi - t);
      shards[sh].add_block(v.data() + t, b.data() + t,
                           y.data() + t * kSamples, bn);
    }
  }

  for (const std::size_t order : {0u, 1u}) {
    XorClassCpa merged(kSamples);
    if (order == 0) {
      for (std::size_t sh = 0; sh < kShards; ++sh) merged.merge(shards[sh]);
    } else {
      for (std::size_t sh = kShards; sh-- > 0;) merged.merge(shards[sh]);
    }
    ASSERT_EQ(merged.trace_count(), serial.trace_count());
    const CpaEngine a = merged.fold(pattern);
    const CpaEngine c = serial.fold(pattern);
    EXPECT_EQ(state_bytes(a), state_bytes(c)) << "merge order " << order;
  }
}

TEST(XorClassCpaBlock, Validation) {
  XorClassCpa c(2);
  const std::uint8_t v[2] = {0, 1};
  const std::uint8_t bad_b[2] = {0, 2};
  const double y[4] = {1.0, 2.0, 3.0, 4.0};
  EXPECT_THROW(c.add_block(v, bad_b, y, 2), slm::Error);
}

}  // namespace
}  // namespace slm::sca
