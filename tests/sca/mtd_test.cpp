#include "sca/mtd.hpp"

#include <gtest/gtest.h>

namespace slm::sca {
namespace {

CpaProgressPoint point(std::size_t traces, std::size_t rank, double correct,
                       double wrong) {
  CpaProgressPoint p;
  p.traces = traces;
  p.correct_rank = rank;
  p.correct_corr = correct;
  p.best_wrong_corr = wrong;
  return p;
}

TEST(Mtd, EmptyProgressNotDisclosed) {
  EXPECT_FALSE(estimate_mtd({}).disclosed());
}

TEST(Mtd, StableFromTheStart) {
  const auto r = estimate_mtd({point(100, 0, 0.3, 0.1),
                               point(1000, 0, 0.3, 0.05)});
  ASSERT_TRUE(r.disclosed());
  EXPECT_EQ(*r.traces, 100u);
  EXPECT_NEAR(r.final_margin, 0.25, 1e-12);
}

TEST(Mtd, EarlyFalseLockIgnored) {
  // Rank 0 at 100, lost at 1000, regained at 10000 and held: MTD = 10000.
  const auto r = estimate_mtd({point(100, 0, 0.2, 0.1),
                               point(1000, 3, 0.1, 0.2),
                               point(10000, 0, 0.3, 0.1),
                               point(50000, 0, 0.35, 0.08)});
  ASSERT_TRUE(r.disclosed());
  EXPECT_EQ(*r.traces, 10000u);
}

TEST(Mtd, NotDisclosedWhenFinalRankNonzero) {
  const auto r = estimate_mtd({point(100, 0, 0.5, 0.1),
                               point(1000, 2, 0.1, 0.3)});
  EXPECT_FALSE(r.disclosed());
  EXPECT_NEAR(r.final_margin, -0.2, 1e-12);
}

TEST(Mtd, SingleStablePoint) {
  const auto r = estimate_mtd({point(500, 0, 0.2, 0.1)});
  ASSERT_TRUE(r.disclosed());
  EXPECT_EQ(*r.traces, 500u);
}

}  // namespace
}  // namespace slm::sca
