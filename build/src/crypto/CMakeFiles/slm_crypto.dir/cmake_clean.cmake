file(REMOVE_RECURSE
  "CMakeFiles/slm_crypto.dir/aes128.cpp.o"
  "CMakeFiles/slm_crypto.dir/aes128.cpp.o.d"
  "CMakeFiles/slm_crypto.dir/aes_datapath.cpp.o"
  "CMakeFiles/slm_crypto.dir/aes_datapath.cpp.o.d"
  "libslm_crypto.a"
  "libslm_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slm_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
