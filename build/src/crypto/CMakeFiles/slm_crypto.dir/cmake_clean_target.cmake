file(REMOVE_RECURSE
  "libslm_crypto.a"
)
