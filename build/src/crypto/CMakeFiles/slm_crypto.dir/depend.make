# Empty dependencies file for slm_crypto.
# This may be replaced when dependencies are built.
