# Empty compiler generated dependencies file for slm_timing.
# This may be replaced when dependencies are built.
