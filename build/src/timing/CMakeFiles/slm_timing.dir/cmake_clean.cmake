file(REMOVE_RECURSE
  "CMakeFiles/slm_timing.dir/capture.cpp.o"
  "CMakeFiles/slm_timing.dir/capture.cpp.o.d"
  "CMakeFiles/slm_timing.dir/delay_model.cpp.o"
  "CMakeFiles/slm_timing.dir/delay_model.cpp.o.d"
  "CMakeFiles/slm_timing.dir/sta.cpp.o"
  "CMakeFiles/slm_timing.dir/sta.cpp.o.d"
  "CMakeFiles/slm_timing.dir/timed_sim.cpp.o"
  "CMakeFiles/slm_timing.dir/timed_sim.cpp.o.d"
  "CMakeFiles/slm_timing.dir/waveform.cpp.o"
  "CMakeFiles/slm_timing.dir/waveform.cpp.o.d"
  "libslm_timing.a"
  "libslm_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slm_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
