file(REMOVE_RECURSE
  "libslm_timing.a"
)
