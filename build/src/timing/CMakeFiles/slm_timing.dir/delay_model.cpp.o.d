src/timing/CMakeFiles/slm_timing.dir/delay_model.cpp.o: \
 /root/repo/src/timing/delay_model.cpp /usr/include/stdc-predef.h \
 /root/repo/src/timing/delay_model.hpp
