file(REMOVE_RECURSE
  "CMakeFiles/slm_fpga.dir/bram.cpp.o"
  "CMakeFiles/slm_fpga.dir/bram.cpp.o.d"
  "CMakeFiles/slm_fpga.dir/clocking.cpp.o"
  "CMakeFiles/slm_fpga.dir/clocking.cpp.o.d"
  "CMakeFiles/slm_fpga.dir/fabric.cpp.o"
  "CMakeFiles/slm_fpga.dir/fabric.cpp.o.d"
  "CMakeFiles/slm_fpga.dir/uart.cpp.o"
  "CMakeFiles/slm_fpga.dir/uart.cpp.o.d"
  "libslm_fpga.a"
  "libslm_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slm_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
