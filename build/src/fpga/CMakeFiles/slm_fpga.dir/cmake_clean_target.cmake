file(REMOVE_RECURSE
  "libslm_fpga.a"
)
