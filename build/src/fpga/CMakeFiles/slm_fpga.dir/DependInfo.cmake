
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpga/bram.cpp" "src/fpga/CMakeFiles/slm_fpga.dir/bram.cpp.o" "gcc" "src/fpga/CMakeFiles/slm_fpga.dir/bram.cpp.o.d"
  "/root/repo/src/fpga/clocking.cpp" "src/fpga/CMakeFiles/slm_fpga.dir/clocking.cpp.o" "gcc" "src/fpga/CMakeFiles/slm_fpga.dir/clocking.cpp.o.d"
  "/root/repo/src/fpga/fabric.cpp" "src/fpga/CMakeFiles/slm_fpga.dir/fabric.cpp.o" "gcc" "src/fpga/CMakeFiles/slm_fpga.dir/fabric.cpp.o.d"
  "/root/repo/src/fpga/uart.cpp" "src/fpga/CMakeFiles/slm_fpga.dir/uart.cpp.o" "gcc" "src/fpga/CMakeFiles/slm_fpga.dir/uart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/timing/CMakeFiles/slm_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/slm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/slm_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
