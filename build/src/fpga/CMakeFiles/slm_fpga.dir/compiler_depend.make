# Empty compiler generated dependencies file for slm_fpga.
# This may be replaced when dependencies are built.
