file(REMOVE_RECURSE
  "libslm_atpg.a"
)
