file(REMOVE_RECURSE
  "CMakeFiles/slm_atpg.dir/stimulus_search.cpp.o"
  "CMakeFiles/slm_atpg.dir/stimulus_search.cpp.o.d"
  "libslm_atpg.a"
  "libslm_atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slm_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
