# Empty dependencies file for slm_atpg.
# This may be replaced when dependencies are built.
