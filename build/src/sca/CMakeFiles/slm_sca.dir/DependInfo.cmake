
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sca/cpa.cpp" "src/sca/CMakeFiles/slm_sca.dir/cpa.cpp.o" "gcc" "src/sca/CMakeFiles/slm_sca.dir/cpa.cpp.o.d"
  "/root/repo/src/sca/model.cpp" "src/sca/CMakeFiles/slm_sca.dir/model.cpp.o" "gcc" "src/sca/CMakeFiles/slm_sca.dir/model.cpp.o.d"
  "/root/repo/src/sca/mtd.cpp" "src/sca/CMakeFiles/slm_sca.dir/mtd.cpp.o" "gcc" "src/sca/CMakeFiles/slm_sca.dir/mtd.cpp.o.d"
  "/root/repo/src/sca/selection.cpp" "src/sca/CMakeFiles/slm_sca.dir/selection.cpp.o" "gcc" "src/sca/CMakeFiles/slm_sca.dir/selection.cpp.o.d"
  "/root/repo/src/sca/trace.cpp" "src/sca/CMakeFiles/slm_sca.dir/trace.cpp.o" "gcc" "src/sca/CMakeFiles/slm_sca.dir/trace.cpp.o.d"
  "/root/repo/src/sca/tvla.cpp" "src/sca/CMakeFiles/slm_sca.dir/tvla.cpp.o" "gcc" "src/sca/CMakeFiles/slm_sca.dir/tvla.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/slm_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/slm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
