# Empty compiler generated dependencies file for slm_sca.
# This may be replaced when dependencies are built.
