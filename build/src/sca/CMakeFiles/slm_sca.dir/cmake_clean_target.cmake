file(REMOVE_RECURSE
  "libslm_sca.a"
)
