file(REMOVE_RECURSE
  "CMakeFiles/slm_sca.dir/cpa.cpp.o"
  "CMakeFiles/slm_sca.dir/cpa.cpp.o.d"
  "CMakeFiles/slm_sca.dir/model.cpp.o"
  "CMakeFiles/slm_sca.dir/model.cpp.o.d"
  "CMakeFiles/slm_sca.dir/mtd.cpp.o"
  "CMakeFiles/slm_sca.dir/mtd.cpp.o.d"
  "CMakeFiles/slm_sca.dir/selection.cpp.o"
  "CMakeFiles/slm_sca.dir/selection.cpp.o.d"
  "CMakeFiles/slm_sca.dir/trace.cpp.o"
  "CMakeFiles/slm_sca.dir/trace.cpp.o.d"
  "CMakeFiles/slm_sca.dir/tvla.cpp.o"
  "CMakeFiles/slm_sca.dir/tvla.cpp.o.d"
  "libslm_sca.a"
  "libslm_sca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slm_sca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
