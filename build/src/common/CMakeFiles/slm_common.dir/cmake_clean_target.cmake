file(REMOVE_RECURSE
  "libslm_common.a"
)
