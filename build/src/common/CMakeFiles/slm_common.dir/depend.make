# Empty dependencies file for slm_common.
# This may be replaced when dependencies are built.
