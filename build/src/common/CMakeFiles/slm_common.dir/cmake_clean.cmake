file(REMOVE_RECURSE
  "CMakeFiles/slm_common.dir/bitvec.cpp.o"
  "CMakeFiles/slm_common.dir/bitvec.cpp.o.d"
  "CMakeFiles/slm_common.dir/csv.cpp.o"
  "CMakeFiles/slm_common.dir/csv.cpp.o.d"
  "CMakeFiles/slm_common.dir/log.cpp.o"
  "CMakeFiles/slm_common.dir/log.cpp.o.d"
  "CMakeFiles/slm_common.dir/rng.cpp.o"
  "CMakeFiles/slm_common.dir/rng.cpp.o.d"
  "CMakeFiles/slm_common.dir/stats.cpp.o"
  "CMakeFiles/slm_common.dir/stats.cpp.o.d"
  "CMakeFiles/slm_common.dir/table.cpp.o"
  "CMakeFiles/slm_common.dir/table.cpp.o.d"
  "libslm_common.a"
  "libslm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
