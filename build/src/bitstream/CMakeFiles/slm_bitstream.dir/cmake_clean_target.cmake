file(REMOVE_RECURSE
  "libslm_bitstream.a"
)
