
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bitstream/checker.cpp" "src/bitstream/CMakeFiles/slm_bitstream.dir/checker.cpp.o" "gcc" "src/bitstream/CMakeFiles/slm_bitstream.dir/checker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/slm_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/slm_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/slm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
