# Empty compiler generated dependencies file for slm_bitstream.
# This may be replaced when dependencies are built.
