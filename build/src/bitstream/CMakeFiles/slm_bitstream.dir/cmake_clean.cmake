file(REMOVE_RECURSE
  "CMakeFiles/slm_bitstream.dir/checker.cpp.o"
  "CMakeFiles/slm_bitstream.dir/checker.cpp.o.d"
  "libslm_bitstream.a"
  "libslm_bitstream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slm_bitstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
