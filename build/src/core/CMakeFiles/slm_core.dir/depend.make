# Empty dependencies file for slm_core.
# This may be replaced when dependencies are built.
