file(REMOVE_RECURSE
  "CMakeFiles/slm_core.dir/attack.cpp.o"
  "CMakeFiles/slm_core.dir/attack.cpp.o.d"
  "CMakeFiles/slm_core.dir/calibration.cpp.o"
  "CMakeFiles/slm_core.dir/calibration.cpp.o.d"
  "CMakeFiles/slm_core.dir/campaign.cpp.o"
  "CMakeFiles/slm_core.dir/campaign.cpp.o.d"
  "CMakeFiles/slm_core.dir/preliminary.cpp.o"
  "CMakeFiles/slm_core.dir/preliminary.cpp.o.d"
  "CMakeFiles/slm_core.dir/setup.cpp.o"
  "CMakeFiles/slm_core.dir/setup.cpp.o.d"
  "libslm_core.a"
  "libslm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
