file(REMOVE_RECURSE
  "libslm_core.a"
)
