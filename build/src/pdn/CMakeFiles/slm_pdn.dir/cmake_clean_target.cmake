file(REMOVE_RECURSE
  "libslm_pdn.a"
)
