# Empty dependencies file for slm_pdn.
# This may be replaced when dependencies are built.
