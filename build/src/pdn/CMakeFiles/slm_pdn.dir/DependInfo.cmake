
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pdn/current_source.cpp" "src/pdn/CMakeFiles/slm_pdn.dir/current_source.cpp.o" "gcc" "src/pdn/CMakeFiles/slm_pdn.dir/current_source.cpp.o.d"
  "/root/repo/src/pdn/cycle_response.cpp" "src/pdn/CMakeFiles/slm_pdn.dir/cycle_response.cpp.o" "gcc" "src/pdn/CMakeFiles/slm_pdn.dir/cycle_response.cpp.o.d"
  "/root/repo/src/pdn/rlc.cpp" "src/pdn/CMakeFiles/slm_pdn.dir/rlc.cpp.o" "gcc" "src/pdn/CMakeFiles/slm_pdn.dir/rlc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/slm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
