file(REMOVE_RECURSE
  "CMakeFiles/slm_pdn.dir/current_source.cpp.o"
  "CMakeFiles/slm_pdn.dir/current_source.cpp.o.d"
  "CMakeFiles/slm_pdn.dir/cycle_response.cpp.o"
  "CMakeFiles/slm_pdn.dir/cycle_response.cpp.o.d"
  "CMakeFiles/slm_pdn.dir/rlc.cpp.o"
  "CMakeFiles/slm_pdn.dir/rlc.cpp.o.d"
  "libslm_pdn.a"
  "libslm_pdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slm_pdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
