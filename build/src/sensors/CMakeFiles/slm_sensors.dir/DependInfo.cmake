
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sensors/benign_sensor.cpp" "src/sensors/CMakeFiles/slm_sensors.dir/benign_sensor.cpp.o" "gcc" "src/sensors/CMakeFiles/slm_sensors.dir/benign_sensor.cpp.o.d"
  "/root/repo/src/sensors/ro_sensor.cpp" "src/sensors/CMakeFiles/slm_sensors.dir/ro_sensor.cpp.o" "gcc" "src/sensors/CMakeFiles/slm_sensors.dir/ro_sensor.cpp.o.d"
  "/root/repo/src/sensors/tdc.cpp" "src/sensors/CMakeFiles/slm_sensors.dir/tdc.cpp.o" "gcc" "src/sensors/CMakeFiles/slm_sensors.dir/tdc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/timing/CMakeFiles/slm_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/slm_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/pdn/CMakeFiles/slm_pdn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/slm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
