file(REMOVE_RECURSE
  "libslm_sensors.a"
)
