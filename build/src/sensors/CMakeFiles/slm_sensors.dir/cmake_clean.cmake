file(REMOVE_RECURSE
  "CMakeFiles/slm_sensors.dir/benign_sensor.cpp.o"
  "CMakeFiles/slm_sensors.dir/benign_sensor.cpp.o.d"
  "CMakeFiles/slm_sensors.dir/ro_sensor.cpp.o"
  "CMakeFiles/slm_sensors.dir/ro_sensor.cpp.o.d"
  "CMakeFiles/slm_sensors.dir/tdc.cpp.o"
  "CMakeFiles/slm_sensors.dir/tdc.cpp.o.d"
  "libslm_sensors.a"
  "libslm_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slm_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
