# Empty dependencies file for slm_sensors.
# This may be replaced when dependencies are built.
