# Empty compiler generated dependencies file for slm_netlist.
# This may be replaced when dependencies are built.
