file(REMOVE_RECURSE
  "CMakeFiles/slm_netlist.dir/bench_format.cpp.o"
  "CMakeFiles/slm_netlist.dir/bench_format.cpp.o.d"
  "CMakeFiles/slm_netlist.dir/builder.cpp.o"
  "CMakeFiles/slm_netlist.dir/builder.cpp.o.d"
  "CMakeFiles/slm_netlist.dir/evaluator.cpp.o"
  "CMakeFiles/slm_netlist.dir/evaluator.cpp.o.d"
  "CMakeFiles/slm_netlist.dir/export.cpp.o"
  "CMakeFiles/slm_netlist.dir/export.cpp.o.d"
  "CMakeFiles/slm_netlist.dir/gate.cpp.o"
  "CMakeFiles/slm_netlist.dir/gate.cpp.o.d"
  "CMakeFiles/slm_netlist.dir/generators/adder.cpp.o"
  "CMakeFiles/slm_netlist.dir/generators/adder.cpp.o.d"
  "CMakeFiles/slm_netlist.dir/generators/alu.cpp.o"
  "CMakeFiles/slm_netlist.dir/generators/alu.cpp.o.d"
  "CMakeFiles/slm_netlist.dir/generators/c6288.cpp.o"
  "CMakeFiles/slm_netlist.dir/generators/c6288.cpp.o.d"
  "CMakeFiles/slm_netlist.dir/generators/fast_datapath.cpp.o"
  "CMakeFiles/slm_netlist.dir/generators/fast_datapath.cpp.o.d"
  "CMakeFiles/slm_netlist.dir/generators/random_dag.cpp.o"
  "CMakeFiles/slm_netlist.dir/generators/random_dag.cpp.o.d"
  "CMakeFiles/slm_netlist.dir/generators/suspicious.cpp.o"
  "CMakeFiles/slm_netlist.dir/generators/suspicious.cpp.o.d"
  "CMakeFiles/slm_netlist.dir/netlist.cpp.o"
  "CMakeFiles/slm_netlist.dir/netlist.cpp.o.d"
  "libslm_netlist.a"
  "libslm_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slm_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
