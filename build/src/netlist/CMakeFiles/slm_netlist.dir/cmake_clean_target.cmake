file(REMOVE_RECURSE
  "libslm_netlist.a"
)
