
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/bench_format.cpp" "src/netlist/CMakeFiles/slm_netlist.dir/bench_format.cpp.o" "gcc" "src/netlist/CMakeFiles/slm_netlist.dir/bench_format.cpp.o.d"
  "/root/repo/src/netlist/builder.cpp" "src/netlist/CMakeFiles/slm_netlist.dir/builder.cpp.o" "gcc" "src/netlist/CMakeFiles/slm_netlist.dir/builder.cpp.o.d"
  "/root/repo/src/netlist/evaluator.cpp" "src/netlist/CMakeFiles/slm_netlist.dir/evaluator.cpp.o" "gcc" "src/netlist/CMakeFiles/slm_netlist.dir/evaluator.cpp.o.d"
  "/root/repo/src/netlist/export.cpp" "src/netlist/CMakeFiles/slm_netlist.dir/export.cpp.o" "gcc" "src/netlist/CMakeFiles/slm_netlist.dir/export.cpp.o.d"
  "/root/repo/src/netlist/gate.cpp" "src/netlist/CMakeFiles/slm_netlist.dir/gate.cpp.o" "gcc" "src/netlist/CMakeFiles/slm_netlist.dir/gate.cpp.o.d"
  "/root/repo/src/netlist/generators/adder.cpp" "src/netlist/CMakeFiles/slm_netlist.dir/generators/adder.cpp.o" "gcc" "src/netlist/CMakeFiles/slm_netlist.dir/generators/adder.cpp.o.d"
  "/root/repo/src/netlist/generators/alu.cpp" "src/netlist/CMakeFiles/slm_netlist.dir/generators/alu.cpp.o" "gcc" "src/netlist/CMakeFiles/slm_netlist.dir/generators/alu.cpp.o.d"
  "/root/repo/src/netlist/generators/c6288.cpp" "src/netlist/CMakeFiles/slm_netlist.dir/generators/c6288.cpp.o" "gcc" "src/netlist/CMakeFiles/slm_netlist.dir/generators/c6288.cpp.o.d"
  "/root/repo/src/netlist/generators/fast_datapath.cpp" "src/netlist/CMakeFiles/slm_netlist.dir/generators/fast_datapath.cpp.o" "gcc" "src/netlist/CMakeFiles/slm_netlist.dir/generators/fast_datapath.cpp.o.d"
  "/root/repo/src/netlist/generators/random_dag.cpp" "src/netlist/CMakeFiles/slm_netlist.dir/generators/random_dag.cpp.o" "gcc" "src/netlist/CMakeFiles/slm_netlist.dir/generators/random_dag.cpp.o.d"
  "/root/repo/src/netlist/generators/suspicious.cpp" "src/netlist/CMakeFiles/slm_netlist.dir/generators/suspicious.cpp.o" "gcc" "src/netlist/CMakeFiles/slm_netlist.dir/generators/suspicious.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/netlist/CMakeFiles/slm_netlist.dir/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/slm_netlist.dir/netlist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/slm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
