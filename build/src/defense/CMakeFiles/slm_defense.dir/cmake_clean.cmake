file(REMOVE_RECURSE
  "CMakeFiles/slm_defense.dir/active_fence.cpp.o"
  "CMakeFiles/slm_defense.dir/active_fence.cpp.o.d"
  "libslm_defense.a"
  "libslm_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slm_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
