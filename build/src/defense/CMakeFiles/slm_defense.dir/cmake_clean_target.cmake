file(REMOVE_RECURSE
  "libslm_defense.a"
)
