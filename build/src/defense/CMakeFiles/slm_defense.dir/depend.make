# Empty dependencies file for slm_defense.
# This may be replaced when dependencies are built.
