# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("netlist")
subdirs("timing")
subdirs("pdn")
subdirs("crypto")
subdirs("sensors")
subdirs("fpga")
subdirs("sca")
subdirs("bitstream")
subdirs("defense")
subdirs("atpg")
subdirs("core")
