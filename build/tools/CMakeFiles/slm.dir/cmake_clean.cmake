file(REMOVE_RECURSE
  "CMakeFiles/slm.dir/slm_cli.cpp.o"
  "CMakeFiles/slm.dir/slm_cli.cpp.o.d"
  "slm"
  "slm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
