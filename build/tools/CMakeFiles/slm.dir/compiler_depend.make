# Empty compiler generated dependencies file for slm.
# This may be replaced when dependencies are built.
