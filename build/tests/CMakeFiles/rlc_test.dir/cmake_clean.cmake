file(REMOVE_RECURSE
  "CMakeFiles/rlc_test.dir/pdn/rlc_test.cpp.o"
  "CMakeFiles/rlc_test.dir/pdn/rlc_test.cpp.o.d"
  "rlc_test"
  "rlc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
