
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pdn/rlc_test.cpp" "tests/CMakeFiles/rlc_test.dir/pdn/rlc_test.cpp.o" "gcc" "tests/CMakeFiles/rlc_test.dir/pdn/rlc_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/slm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/atpg/CMakeFiles/slm_atpg.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/slm_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/sca/CMakeFiles/slm_sca.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/slm_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/pdn/CMakeFiles/slm_pdn.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/slm_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/bitstream/CMakeFiles/slm_bitstream.dir/DependInfo.cmake"
  "/root/repo/build/src/defense/CMakeFiles/slm_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/slm_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/slm_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/slm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
