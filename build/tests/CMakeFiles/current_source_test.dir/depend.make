# Empty dependencies file for current_source_test.
# This may be replaced when dependencies are built.
