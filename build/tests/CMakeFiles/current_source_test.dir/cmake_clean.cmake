file(REMOVE_RECURSE
  "CMakeFiles/current_source_test.dir/pdn/current_source_test.cpp.o"
  "CMakeFiles/current_source_test.dir/pdn/current_source_test.cpp.o.d"
  "current_source_test"
  "current_source_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/current_source_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
