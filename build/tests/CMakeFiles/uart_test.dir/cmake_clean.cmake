file(REMOVE_RECURSE
  "CMakeFiles/uart_test.dir/fpga/uart_test.cpp.o"
  "CMakeFiles/uart_test.dir/fpga/uart_test.cpp.o.d"
  "uart_test"
  "uart_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uart_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
