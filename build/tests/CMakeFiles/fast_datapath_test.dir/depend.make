# Empty dependencies file for fast_datapath_test.
# This may be replaced when dependencies are built.
