file(REMOVE_RECURSE
  "CMakeFiles/fast_datapath_test.dir/netlist/fast_datapath_test.cpp.o"
  "CMakeFiles/fast_datapath_test.dir/netlist/fast_datapath_test.cpp.o.d"
  "fast_datapath_test"
  "fast_datapath_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fast_datapath_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
