file(REMOVE_RECURSE
  "CMakeFiles/preliminary_test.dir/core/preliminary_test.cpp.o"
  "CMakeFiles/preliminary_test.dir/core/preliminary_test.cpp.o.d"
  "preliminary_test"
  "preliminary_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preliminary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
