# Empty dependencies file for preliminary_test.
# This may be replaced when dependencies are built.
