file(REMOVE_RECURSE
  "CMakeFiles/benign_sensor_test.dir/sensors/benign_sensor_test.cpp.o"
  "CMakeFiles/benign_sensor_test.dir/sensors/benign_sensor_test.cpp.o.d"
  "benign_sensor_test"
  "benign_sensor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benign_sensor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
