# Empty dependencies file for benign_sensor_test.
# This may be replaced when dependencies are built.
