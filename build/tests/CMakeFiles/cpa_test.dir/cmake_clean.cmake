file(REMOVE_RECURSE
  "CMakeFiles/cpa_test.dir/sca/cpa_test.cpp.o"
  "CMakeFiles/cpa_test.dir/sca/cpa_test.cpp.o.d"
  "cpa_test"
  "cpa_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
