file(REMOVE_RECURSE
  "CMakeFiles/tdc_test.dir/sensors/tdc_test.cpp.o"
  "CMakeFiles/tdc_test.dir/sensors/tdc_test.cpp.o.d"
  "tdc_test"
  "tdc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
