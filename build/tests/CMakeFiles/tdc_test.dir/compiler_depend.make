# Empty compiler generated dependencies file for tdc_test.
# This may be replaced when dependencies are built.
