# Empty dependencies file for delay_model_test.
# This may be replaced when dependencies are built.
