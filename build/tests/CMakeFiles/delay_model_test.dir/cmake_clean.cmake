file(REMOVE_RECURSE
  "CMakeFiles/delay_model_test.dir/timing/delay_model_test.cpp.o"
  "CMakeFiles/delay_model_test.dir/timing/delay_model_test.cpp.o.d"
  "delay_model_test"
  "delay_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delay_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
