# Empty compiler generated dependencies file for setup_test.
# This may be replaced when dependencies are built.
