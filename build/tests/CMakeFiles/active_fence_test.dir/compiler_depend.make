# Empty compiler generated dependencies file for active_fence_test.
# This may be replaced when dependencies are built.
