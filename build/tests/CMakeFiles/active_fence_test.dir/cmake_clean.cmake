file(REMOVE_RECURSE
  "CMakeFiles/active_fence_test.dir/defense/active_fence_test.cpp.o"
  "CMakeFiles/active_fence_test.dir/defense/active_fence_test.cpp.o.d"
  "active_fence_test"
  "active_fence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/active_fence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
