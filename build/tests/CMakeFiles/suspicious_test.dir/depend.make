# Empty dependencies file for suspicious_test.
# This may be replaced when dependencies are built.
