file(REMOVE_RECURSE
  "CMakeFiles/suspicious_test.dir/netlist/suspicious_test.cpp.o"
  "CMakeFiles/suspicious_test.dir/netlist/suspicious_test.cpp.o.d"
  "suspicious_test"
  "suspicious_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suspicious_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
