file(REMOVE_RECURSE
  "CMakeFiles/bench_format_test.dir/netlist/bench_format_test.cpp.o"
  "CMakeFiles/bench_format_test.dir/netlist/bench_format_test.cpp.o.d"
  "bench_format_test"
  "bench_format_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
