file(REMOVE_RECURSE
  "CMakeFiles/bram_test.dir/fpga/bram_test.cpp.o"
  "CMakeFiles/bram_test.dir/fpga/bram_test.cpp.o.d"
  "bram_test"
  "bram_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
