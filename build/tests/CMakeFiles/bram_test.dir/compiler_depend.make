# Empty compiler generated dependencies file for bram_test.
# This may be replaced when dependencies are built.
