# Empty compiler generated dependencies file for adder_test.
# This may be replaced when dependencies are built.
