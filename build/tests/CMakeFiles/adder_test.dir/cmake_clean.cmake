file(REMOVE_RECURSE
  "CMakeFiles/adder_test.dir/netlist/adder_test.cpp.o"
  "CMakeFiles/adder_test.dir/netlist/adder_test.cpp.o.d"
  "adder_test"
  "adder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
