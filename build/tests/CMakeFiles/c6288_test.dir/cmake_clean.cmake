file(REMOVE_RECURSE
  "CMakeFiles/c6288_test.dir/netlist/c6288_test.cpp.o"
  "CMakeFiles/c6288_test.dir/netlist/c6288_test.cpp.o.d"
  "c6288_test"
  "c6288_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c6288_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
