# Empty dependencies file for c6288_test.
# This may be replaced when dependencies are built.
