# Empty compiler generated dependencies file for tvla_test.
# This may be replaced when dependencies are built.
