file(REMOVE_RECURSE
  "CMakeFiles/tvla_test.dir/sca/tvla_test.cpp.o"
  "CMakeFiles/tvla_test.dir/sca/tvla_test.cpp.o.d"
  "tvla_test"
  "tvla_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvla_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
