# Empty dependencies file for aes_datapath_test.
# This may be replaced when dependencies are built.
