file(REMOVE_RECURSE
  "CMakeFiles/aes_datapath_test.dir/crypto/aes_datapath_test.cpp.o"
  "CMakeFiles/aes_datapath_test.dir/crypto/aes_datapath_test.cpp.o.d"
  "aes_datapath_test"
  "aes_datapath_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aes_datapath_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
