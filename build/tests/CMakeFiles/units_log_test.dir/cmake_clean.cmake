file(REMOVE_RECURSE
  "CMakeFiles/units_log_test.dir/common/units_log_test.cpp.o"
  "CMakeFiles/units_log_test.dir/common/units_log_test.cpp.o.d"
  "units_log_test"
  "units_log_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/units_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
