# Empty dependencies file for units_log_test.
# This may be replaced when dependencies are built.
