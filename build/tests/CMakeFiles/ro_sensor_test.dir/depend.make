# Empty dependencies file for ro_sensor_test.
# This may be replaced when dependencies are built.
