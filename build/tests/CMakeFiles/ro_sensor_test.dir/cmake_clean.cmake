file(REMOVE_RECURSE
  "CMakeFiles/ro_sensor_test.dir/sensors/ro_sensor_test.cpp.o"
  "CMakeFiles/ro_sensor_test.dir/sensors/ro_sensor_test.cpp.o.d"
  "ro_sensor_test"
  "ro_sensor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ro_sensor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
