file(REMOVE_RECURSE
  "CMakeFiles/clocking_test.dir/fpga/clocking_test.cpp.o"
  "CMakeFiles/clocking_test.dir/fpga/clocking_test.cpp.o.d"
  "clocking_test"
  "clocking_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clocking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
