file(REMOVE_RECURSE
  "CMakeFiles/alu_test.dir/netlist/alu_test.cpp.o"
  "CMakeFiles/alu_test.dir/netlist/alu_test.cpp.o.d"
  "alu_test"
  "alu_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
