# Empty dependencies file for alu_test.
# This may be replaced when dependencies are built.
