# Empty dependencies file for mtd_test.
# This may be replaced when dependencies are built.
