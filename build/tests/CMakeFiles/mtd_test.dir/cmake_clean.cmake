file(REMOVE_RECURSE
  "CMakeFiles/mtd_test.dir/sca/mtd_test.cpp.o"
  "CMakeFiles/mtd_test.dir/sca/mtd_test.cpp.o.d"
  "mtd_test"
  "mtd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
