file(REMOVE_RECURSE
  "CMakeFiles/timed_sim_test.dir/timing/timed_sim_test.cpp.o"
  "CMakeFiles/timed_sim_test.dir/timing/timed_sim_test.cpp.o.d"
  "timed_sim_test"
  "timed_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timed_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
