# Empty compiler generated dependencies file for timed_sim_test.
# This may be replaced when dependencies are built.
