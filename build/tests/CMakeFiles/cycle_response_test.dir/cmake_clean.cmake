file(REMOVE_RECURSE
  "CMakeFiles/cycle_response_test.dir/pdn/cycle_response_test.cpp.o"
  "CMakeFiles/cycle_response_test.dir/pdn/cycle_response_test.cpp.o.d"
  "cycle_response_test"
  "cycle_response_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cycle_response_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
