# Empty dependencies file for cycle_response_test.
# This may be replaced when dependencies are built.
