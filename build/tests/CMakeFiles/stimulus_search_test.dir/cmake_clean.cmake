file(REMOVE_RECURSE
  "CMakeFiles/stimulus_search_test.dir/atpg/stimulus_search_test.cpp.o"
  "CMakeFiles/stimulus_search_test.dir/atpg/stimulus_search_test.cpp.o.d"
  "stimulus_search_test"
  "stimulus_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stimulus_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
