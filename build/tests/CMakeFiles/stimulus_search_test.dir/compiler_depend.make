# Empty compiler generated dependencies file for stimulus_search_test.
# This may be replaced when dependencies are built.
