# Empty compiler generated dependencies file for bitstream_audit.
# This may be replaced when dependencies are built.
