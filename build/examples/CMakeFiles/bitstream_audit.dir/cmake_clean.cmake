file(REMOVE_RECURSE
  "CMakeFiles/bitstream_audit.dir/bitstream_audit.cpp.o"
  "CMakeFiles/bitstream_audit.dir/bitstream_audit.cpp.o.d"
  "bitstream_audit"
  "bitstream_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitstream_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
