# Empty dependencies file for multi_tenant_attack.
# This may be replaced when dependencies are built.
