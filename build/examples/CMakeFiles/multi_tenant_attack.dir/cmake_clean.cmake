file(REMOVE_RECURSE
  "CMakeFiles/multi_tenant_attack.dir/multi_tenant_attack.cpp.o"
  "CMakeFiles/multi_tenant_attack.dir/multi_tenant_attack.cpp.o.d"
  "multi_tenant_attack"
  "multi_tenant_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tenant_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
