# Empty dependencies file for sensor_characterization.
# This may be replaced when dependencies are built.
