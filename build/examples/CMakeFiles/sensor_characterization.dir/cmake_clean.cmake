file(REMOVE_RECURSE
  "CMakeFiles/sensor_characterization.dir/sensor_characterization.cpp.o"
  "CMakeFiles/sensor_characterization.dir/sensor_characterization.cpp.o.d"
  "sensor_characterization"
  "sensor_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
