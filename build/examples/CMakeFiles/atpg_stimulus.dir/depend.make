# Empty dependencies file for atpg_stimulus.
# This may be replaced when dependencies are built.
