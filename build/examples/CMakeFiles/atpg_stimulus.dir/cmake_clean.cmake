file(REMOVE_RECURSE
  "CMakeFiles/atpg_stimulus.dir/atpg_stimulus.cpp.o"
  "CMakeFiles/atpg_stimulus.dir/atpg_stimulus.cpp.o.d"
  "atpg_stimulus"
  "atpg_stimulus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atpg_stimulus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
