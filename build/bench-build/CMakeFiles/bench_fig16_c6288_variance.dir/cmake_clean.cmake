file(REMOVE_RECURSE
  "../bench/bench_fig16_c6288_variance"
  "../bench/bench_fig16_c6288_variance.pdb"
  "CMakeFiles/bench_fig16_c6288_variance.dir/bench_fig16_c6288_variance.cpp.o"
  "CMakeFiles/bench_fig16_c6288_variance.dir/bench_fig16_c6288_variance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_c6288_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
