# Empty compiler generated dependencies file for bench_fig16_c6288_variance.
# This may be replaced when dependencies are built.
