# Empty compiler generated dependencies file for bench_ablation_sensors.
# This may be replaced when dependencies are built.
