# Empty dependencies file for bench_fig03_04_floorplans.
# This may be replaced when dependencies are built.
