file(REMOVE_RECURSE
  "../bench/bench_fig03_04_floorplans"
  "../bench/bench_fig03_04_floorplans.pdb"
  "CMakeFiles/bench_fig03_04_floorplans.dir/bench_fig03_04_floorplans.cpp.o"
  "CMakeFiles/bench_fig03_04_floorplans.dir/bench_fig03_04_floorplans.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_04_floorplans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
