file(REMOVE_RECURSE
  "../bench/bench_fig14_c6288_raw"
  "../bench/bench_fig14_c6288_raw.pdb"
  "CMakeFiles/bench_fig14_c6288_raw.dir/bench_fig14_c6288_raw.cpp.o"
  "CMakeFiles/bench_fig14_c6288_raw.dir/bench_fig14_c6288_raw.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_c6288_raw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
