# Empty compiler generated dependencies file for bench_fig14_c6288_raw.
# This may be replaced when dependencies are built.
