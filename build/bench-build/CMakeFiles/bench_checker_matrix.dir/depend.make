# Empty dependencies file for bench_checker_matrix.
# This may be replaced when dependencies are built.
