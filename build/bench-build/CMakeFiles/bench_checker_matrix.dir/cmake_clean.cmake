file(REMOVE_RECURSE
  "../bench/bench_checker_matrix"
  "../bench/bench_checker_matrix.pdb"
  "CMakeFiles/bench_checker_matrix.dir/bench_checker_matrix.cpp.o"
  "CMakeFiles/bench_checker_matrix.dir/bench_checker_matrix.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_checker_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
