file(REMOVE_RECURSE
  "../bench/bench_fig06_tdc_vs_alu"
  "../bench/bench_fig06_tdc_vs_alu.pdb"
  "CMakeFiles/bench_fig06_tdc_vs_alu.dir/bench_fig06_tdc_vs_alu.cpp.o"
  "CMakeFiles/bench_fig06_tdc_vs_alu.dir/bench_fig06_tdc_vs_alu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_tdc_vs_alu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
