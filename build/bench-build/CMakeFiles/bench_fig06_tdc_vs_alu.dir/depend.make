# Empty dependencies file for bench_fig06_tdc_vs_alu.
# This may be replaced when dependencies are built.
