# Empty dependencies file for bench_fig07_alu_sensitive_bits.
# This may be replaced when dependencies are built.
