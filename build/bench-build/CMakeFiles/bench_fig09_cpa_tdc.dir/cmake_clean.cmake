file(REMOVE_RECURSE
  "../bench/bench_fig09_cpa_tdc"
  "../bench/bench_fig09_cpa_tdc.pdb"
  "CMakeFiles/bench_fig09_cpa_tdc.dir/bench_fig09_cpa_tdc.cpp.o"
  "CMakeFiles/bench_fig09_cpa_tdc.dir/bench_fig09_cpa_tdc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_cpa_tdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
