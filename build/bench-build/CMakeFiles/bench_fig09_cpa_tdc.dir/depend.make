# Empty dependencies file for bench_fig09_cpa_tdc.
# This may be replaced when dependencies are built.
