file(REMOVE_RECURSE
  "../bench/bench_fig08_alu_variance"
  "../bench/bench_fig08_alu_variance.pdb"
  "CMakeFiles/bench_fig08_alu_variance.dir/bench_fig08_alu_variance.cpp.o"
  "CMakeFiles/bench_fig08_alu_variance.dir/bench_fig08_alu_variance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_alu_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
