# Empty dependencies file for bench_fig08_alu_variance.
# This may be replaced when dependencies are built.
