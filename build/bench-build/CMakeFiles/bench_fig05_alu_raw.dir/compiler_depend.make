# Empty compiler generated dependencies file for bench_fig05_alu_raw.
# This may be replaced when dependencies are built.
