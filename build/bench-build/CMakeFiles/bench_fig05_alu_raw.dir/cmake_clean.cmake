file(REMOVE_RECURSE
  "../bench/bench_fig05_alu_raw"
  "../bench/bench_fig05_alu_raw.pdb"
  "CMakeFiles/bench_fig05_alu_raw.dir/bench_fig05_alu_raw.cpp.o"
  "CMakeFiles/bench_fig05_alu_raw.dir/bench_fig05_alu_raw.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_alu_raw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
