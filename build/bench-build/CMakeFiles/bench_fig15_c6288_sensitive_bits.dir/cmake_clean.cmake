file(REMOVE_RECURSE
  "../bench/bench_fig15_c6288_sensitive_bits"
  "../bench/bench_fig15_c6288_sensitive_bits.pdb"
  "CMakeFiles/bench_fig15_c6288_sensitive_bits.dir/bench_fig15_c6288_sensitive_bits.cpp.o"
  "CMakeFiles/bench_fig15_c6288_sensitive_bits.dir/bench_fig15_c6288_sensitive_bits.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_c6288_sensitive_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
