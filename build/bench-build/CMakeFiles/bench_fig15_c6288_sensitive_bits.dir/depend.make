# Empty dependencies file for bench_fig15_c6288_sensitive_bits.
# This may be replaced when dependencies are built.
