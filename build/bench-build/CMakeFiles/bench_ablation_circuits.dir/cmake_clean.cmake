file(REMOVE_RECURSE
  "../bench/bench_ablation_circuits"
  "../bench/bench_ablation_circuits.pdb"
  "CMakeFiles/bench_ablation_circuits.dir/bench_ablation_circuits.cpp.o"
  "CMakeFiles/bench_ablation_circuits.dir/bench_ablation_circuits.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
