# Empty compiler generated dependencies file for bench_ablation_circuits.
# This may be replaced when dependencies are built.
