# Empty dependencies file for bench_fig18_cpa_c6288_bit28.
# This may be replaced when dependencies are built.
