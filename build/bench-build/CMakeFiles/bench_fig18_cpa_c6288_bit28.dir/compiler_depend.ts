# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_fig18_cpa_c6288_bit28.
