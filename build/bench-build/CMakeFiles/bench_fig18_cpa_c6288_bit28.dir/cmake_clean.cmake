file(REMOVE_RECURSE
  "../bench/bench_fig18_cpa_c6288_bit28"
  "../bench/bench_fig18_cpa_c6288_bit28.pdb"
  "CMakeFiles/bench_fig18_cpa_c6288_bit28.dir/bench_fig18_cpa_c6288_bit28.cpp.o"
  "CMakeFiles/bench_fig18_cpa_c6288_bit28.dir/bench_fig18_cpa_c6288_bit28.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_cpa_c6288_bit28.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
