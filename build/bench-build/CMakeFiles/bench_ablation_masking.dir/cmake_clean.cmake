file(REMOVE_RECURSE
  "../bench/bench_ablation_masking"
  "../bench/bench_ablation_masking.pdb"
  "CMakeFiles/bench_ablation_masking.dir/bench_ablation_masking.cpp.o"
  "CMakeFiles/bench_ablation_masking.dir/bench_ablation_masking.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_masking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
