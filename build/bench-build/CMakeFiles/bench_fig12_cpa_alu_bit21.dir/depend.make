# Empty dependencies file for bench_fig12_cpa_alu_bit21.
# This may be replaced when dependencies are built.
