file(REMOVE_RECURSE
  "../bench/bench_fig12_cpa_alu_bit21"
  "../bench/bench_fig12_cpa_alu_bit21.pdb"
  "CMakeFiles/bench_fig12_cpa_alu_bit21.dir/bench_fig12_cpa_alu_bit21.cpp.o"
  "CMakeFiles/bench_fig12_cpa_alu_bit21.dir/bench_fig12_cpa_alu_bit21.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_cpa_alu_bit21.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
