file(REMOVE_RECURSE
  "../bench/bench_fig13_cpa_alu_bit6"
  "../bench/bench_fig13_cpa_alu_bit6.pdb"
  "CMakeFiles/bench_fig13_cpa_alu_bit6.dir/bench_fig13_cpa_alu_bit6.cpp.o"
  "CMakeFiles/bench_fig13_cpa_alu_bit6.dir/bench_fig13_cpa_alu_bit6.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_cpa_alu_bit6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
