# Empty dependencies file for bench_fig13_cpa_alu_bit6.
# This may be replaced when dependencies are built.
