# Empty compiler generated dependencies file for bench_fig10_cpa_alu.
# This may be replaced when dependencies are built.
