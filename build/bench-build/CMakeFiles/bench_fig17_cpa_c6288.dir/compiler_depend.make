# Empty compiler generated dependencies file for bench_fig17_cpa_c6288.
# This may be replaced when dependencies are built.
