file(REMOVE_RECURSE
  "../bench/bench_fig17_cpa_c6288"
  "../bench/bench_fig17_cpa_c6288.pdb"
  "CMakeFiles/bench_fig17_cpa_c6288.dir/bench_fig17_cpa_c6288.cpp.o"
  "CMakeFiles/bench_fig17_cpa_c6288.dir/bench_fig17_cpa_c6288.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_cpa_c6288.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
