# Empty compiler generated dependencies file for bench_ablation_overclock.
# This may be replaced when dependencies are built.
