file(REMOVE_RECURSE
  "../bench/bench_ablation_overclock"
  "../bench/bench_ablation_overclock.pdb"
  "CMakeFiles/bench_ablation_overclock.dir/bench_ablation_overclock.cpp.o"
  "CMakeFiles/bench_ablation_overclock.dir/bench_ablation_overclock.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_overclock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
