# Empty compiler generated dependencies file for bench_fig11_cpa_tdc_bit32.
# This may be replaced when dependencies are built.
