# Empty dependencies file for bench_ablation_fence.
# This may be replaced when dependencies are built.
