file(REMOVE_RECURSE
  "../bench/bench_ablation_fence"
  "../bench/bench_ablation_fence.pdb"
  "CMakeFiles/bench_ablation_fence.dir/bench_ablation_fence.cpp.o"
  "CMakeFiles/bench_ablation_fence.dir/bench_ablation_fence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
