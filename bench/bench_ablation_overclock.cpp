// Ablation (beyond the paper's figures, supporting Sec. III): sweep the
// benign circuit's overclock frequency. Well below the critical path the
// circuit is a correct adder and senses nothing; the sensitive-endpoint
// count rises as the clock eats into the carry chain.
#include "bench_util.hpp"

using namespace slm;

int main() {
  bench::print_header("Ablation",
                      "sensitive ALU endpoints vs overclock frequency");
  auto cal = core::Calibration::paper_defaults();

  TextTable table({"clock_mhz", "period_ns", "sensitive_endpoints",
                   "functionally_correct_at_nominal"});
  std::vector<std::size_t> counts;
  const double freqs[] = {50.0, 100.0, 150.0, 200.0, 250.0, 300.0, 350.0};
  for (double f : freqs) {
    cal.overclock_mhz = f;
    cal.capture.clock_period_ns = 1000.0 / f;
    core::AttackSetup setup(core::BenignCircuit::kAlu, cal);
    const auto sens = setup.ro_band_sensitive_endpoints();
    counts.push_back(sens.size());
    // Functionally correct at nominal voltage = every endpoint settles
    // before the capture edge.
    const bool correct = setup.sensor().instance(0).max_settle_time_ns() <
                         cal.capture.clock_period_ns - cal.capture.setup_ns;
    table.add_row({format_double(f, 0), format_double(1000.0 / f, 2),
                   std::to_string(sens.size()), correct ? "yes" : "no"});
  }
  table.print(std::cout);
  std::cout << "\n";

  bench::ShapeChecks checks;
  checks.expect("no sensing at the design clock (50 MHz)", counts[0] == 0);
  checks.expect("sensing requires overclocking past the critical path",
                counts.back() > 0);
  checks.expect("sensitivity appears by 300 MHz (the paper's choice)",
                counts[5] > 20);
  return checks.finish();
}
