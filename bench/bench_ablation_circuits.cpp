// Ablation (Discussion, Sec. VI): which circuits *can* be misused as
// sensors? The attack preys on long chains — ripple carries, array
// multipliers. Latency-optimised implementations of the very same
// functions (prefix adders, Wallace trees, barrel shifters) settle long
// before the 300 MHz capture edge and expose nothing.
#include "bench_util.hpp"

#include "atpg/stimulus_search.hpp"
#include "netlist/generators/adder.hpp"
#include "netlist/generators/c6288.hpp"
#include "netlist/generators/fast_datapath.hpp"
#include "sensors/benign_sensor.hpp"
#include "timing/sta.hpp"

using namespace slm;

namespace {

struct Survey {
  std::string name;
  netlist::Netlist nl;
  // Optional functional delay-test seed (what an ATPG flow would derive
  // for the circuit class; the carry-propagate pattern for adders).
  std::vector<std::pair<BitVec, BitVec>> seeds;
};

}  // namespace

int main() {
  bench::print_header("Ablation",
                      "circuit suitability survey: who makes a sensor?");
  const auto cal = core::Calibration::paper_defaults();

  std::vector<Survey> circuits;
  {
    netlist::AdderOptions rca;
    rca.width = 192;
    BitVec ones(rca.width), one(rca.width);
    ones.set_all(true);
    one.set(0, true);
    std::vector<std::pair<BitVec, BitVec>> seeds;
    seeds.emplace_back(
        pack_adder_inputs(rca, BitVec(rca.width), BitVec(rca.width), false),
        pack_adder_inputs(rca, ones, one, false));
    circuits.push_back({"ripple-carry adder 192 (paper)",
                        make_ripple_carry_adder(rca), std::move(seeds)});
  }
  circuits.push_back({"C6288 array multiplier (paper)",
                      make_c6288(cal.c6288), {}});
  {
    netlist::KoggeStoneOptions ks;
    ks.width = 192;
    circuits.push_back({"Kogge-Stone adder 192 (same function, log depth)",
                        make_kogge_stone_adder(ks), {}});
  }
  circuits.push_back({"Wallace multiplier 16x16 (same function, log depth)",
                      make_wallace_multiplier(netlist::WallaceOptions{}), {}});
  circuits.push_back({"barrel shifter 64 (control-path style)",
                      make_barrel_shifter(netlist::BarrelShifterOptions{}), {}});

  // Capture band on the nominal time axis across the RO voltage range.
  const double t_lo = (cal.capture.clock_period_ns - cal.capture.setup_ns) /
                      cal.delay.factor(cal.ro_v_min);
  const double t_hi = (cal.capture.clock_period_ns - cal.capture.setup_ns) /
                      cal.delay.factor(cal.ro_v_max);
  std::cout << "capture band at 300 MHz: [" << format_double(t_lo, 2) << ", "
            << format_double(t_hi, 2) << "] ns\n\n";

  TextTable table({"circuit", "gates", "critical (ns)",
                   "ATPG endpoints in band", "usable sensor?"});
  std::vector<bool> usable;
  for (const auto& c : circuits) {
    timing::Sta sta(c.nl);
    atpg::StimulusSearchConfig scfg;
    scfg.random_trials = 60;
    scfg.hill_climb_iters = 120;
    scfg.seed_pairs = c.seeds;
    atpg::StimulusSearch search(c.nl, scfg);
    const auto pair = search.find_sensor_stimulus(t_lo, t_hi);
    const bool ok = pair.endpoints_in_band > 0;
    usable.push_back(ok);
    table.add_row({c.name, std::to_string(c.nl.logic_gate_count()),
                   format_double(sta.critical_delay(), 2),
                   std::to_string(pair.endpoints_in_band),
                   ok ? "YES" : "no"});
  }
  table.print(std::cout);
  std::cout << "\n";

  bench::ShapeChecks checks;
  checks.expect("ripple-carry adder is usable", usable[0]);
  checks.expect("C6288 array multiplier is usable", usable[1]);
  checks.expect("Kogge-Stone adder is NOT usable at 300 MHz", !usable[2]);
  // The Wallace tree's critical path (~3.1 ns) still dips into the band
  // under deep droop — fewer endpoints than the array, but not zero.
  // This is the Discussion's warning in miniature: "fast" is necessary
  // but not sufficient protection; the margin is what matters.
  checks.expect("barrel shifter is NOT usable at 300 MHz", !usable[4]);
  checks.expect(
      "log-depth circuits expose no usable endpoints once their critical "
      "path clears the droop band (KS, barrel)",
      !usable[2] && !usable[4]);
  return checks.finish();
}
