// Capture-once, replay-many: one live TDC campaign captured into an
// SLMTRC1 trace store, then replayed repeatedly through the zero-copy
// mmap fold path. The replay must reproduce the live run bit for bit
// (recovered byte, MTD, every checkpoint's correlations and ranks — the
// partition-invariance contract), and the JSON reports the measured
// wall-clock ratio as "replay_speedup". Each side pays its real cold-
// start cost: live = build the attack setup (netlist, calibration),
// run the sensor-selection pre-pass, simulate the physics per trace,
// fold, and write the store; replay = mmap the store (chunk-CRC walk
// included) and fold the stored integers. Only the CPA folds are
// common work, so replays are expected to be >= 3x faster even at
// smoke budgets.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/attack.hpp"
#include "obs/metrics.hpp"
#include "sca/model.hpp"
#include "store/replay.hpp"
#include "store/trace_store.hpp"

using namespace slm;

namespace {

bool progress_equal(const std::vector<sca::CpaProgressPoint>& a,
                    const std::vector<sca::CpaProgressPoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].traces != b[i].traces || a[i].max_abs_corr != b[i].max_abs_corr ||
        a[i].best_guess != b[i].best_guess ||
        a[i].correct_rank != b[i].correct_rank ||
        a[i].correct_corr != b[i].correct_corr ||
        a[i].best_wrong_corr != b[i].best_wrong_corr) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const std::size_t traces = bench::trace_budget(20000);
  constexpr std::size_t kKeyByte = 3;
  constexpr int kReplays = 5;
  bench::print_header("Trace store replay",
                      "live TDC capture vs zero-copy SLMTRC1 replays");

  const std::string store_path = "bench_store.trc";
  std::filesystem::remove(store_path);

  // Live pass: everything a fresh analysis pays, timed from cold —
  // attack setup (c6288 netlist build + calibration), the selection
  // pre-pass, per-trace physics, CPA folds, and the store write.
  const double t0 = obs::monotonic_seconds();
  core::StealthyAttack attack(core::BenignCircuit::kC6288x2);
  core::CampaignConfig cfg = attack.byte_campaign_config(
      kKeyByte, traces, core::SensorMode::kTdcFull);
  cfg.rng_contract = core::RngContract::kV2;
  cfg.store_out = store_path;
  core::CpaCampaign campaign(attack.setup(), cfg);
  const core::CampaignResult live = campaign.run();
  const double live_seconds = obs::monotonic_seconds() - t0;
  std::printf("circuit c6288, mode tdc-full, %zu traces, key byte %zu\n",
              traces, kKeyByte);
  std::printf("live capture+attack: %.3f s (%.0f traces/sec), store %s\n\n",
              live_seconds, static_cast<double>(traces) / live_seconds,
              std::filesystem::exists(store_path) ? "written" : "MISSING");

  // Replay passes: each run re-opens the store (mmap + chunk-CRC walk
  // included — the full cost a later analysis pays) and folds at the
  // live schedule. Best-of-N damps scheduler noise.
  const std::vector<std::size_t> checkpoints =
      core::checkpoint_schedule(cfg.checkpoints, traces);
  const std::uint8_t correct_guess =
      sca::LastRoundBitModel(kKeyByte, cfg.target_bit)
          .correct_guess(attack.setup().victim().cipher().last_round_key());
  store::ReplayAttackResult replay;
  double best_replay = 0.0;
  std::uintmax_t store_bytes = 0;
  for (int i = 0; i < kReplays; ++i) {
    const double r0 = obs::monotonic_seconds();
    store::TraceStoreReader reader(store_path);
    replay = store::replay_attack(reader, checkpoints, correct_guess);
    const double secs = obs::monotonic_seconds() - r0;
    if (i == 0 || secs < best_replay) best_replay = secs;
    store_bytes = reader.file_bytes();
  }
  const double replay_speedup =
      best_replay > 0.0 ? live_seconds / best_replay : 0.0;
  std::printf("replay x%d: best %.4f s (%.0f traces/sec), store %ju bytes\n",
              kReplays, best_replay,
              static_cast<double>(traces) / best_replay,
              static_cast<std::uintmax_t>(store_bytes));
  std::printf("replay speedup: %.1fx (live %.3f s / best replay %.4f s)\n\n",
              replay_speedup, live_seconds, best_replay);

  // Fused one-pass sweep vs three sequential single-analysis sweeps.
  // Sequential models an operator running attack, full-key, and TVLA as
  // three separate jobs over the same store: each pays its own open
  // (mmap + chunk-CRC walk) and its own column sweep. Fused is one
  // replay_all call: one open, one sweep, all three folds fed from the
  // same cache-resident blocks. The fold work is identical on both
  // sides, so the ratio isolates what the fusion buys.
  const crypto::Block true_key =
      attack.setup().victim().cipher().last_round_key();
  store::ReplayAllResult fused;
  double best_seq = 0.0, best_fused = 0.0;
  for (int i = 0; i < kReplays; ++i) {
    double s0 = obs::monotonic_seconds();
    for (int section = 0; section < 3; ++section) {
      store::TraceStoreReader reader(store_path);
      store::ReplayAllOptions one;
      one.attack = section == 0;
      one.fullkey = section == 1;
      one.tvla = section == 2;
      store::replay_all(reader, checkpoints, true_key, one);
    }
    const double seq_secs = obs::monotonic_seconds() - s0;
    if (i == 0 || seq_secs < best_seq) best_seq = seq_secs;

    s0 = obs::monotonic_seconds();
    store::TraceStoreReader reader(store_path);
    fused = store::replay_all(reader, checkpoints, true_key);
    const double fused_secs = obs::monotonic_seconds() - s0;
    if (i == 0 || fused_secs < best_fused) best_fused = fused_secs;
  }
  const double fused_replay_speedup =
      best_fused > 0.0 ? best_seq / best_fused : 0.0;
  std::printf(
      "fused one-pass x%d: best %.4f s vs 3 sequential sweeps %.4f s "
      "(%.2fx)\n\n",
      kReplays, best_fused, best_seq, fused_replay_speedup);

  bench::ShapeChecks checks;
  checks.expect("store written", std::filesystem::exists(store_path) &&
                                     store_bytes > 0);
  checks.expect("replay folds every stored trace",
                replay.traces == live.traces_run);
  checks.expect("replay recovers the identical byte",
                replay.recovered_guess == live.recovered_guess &&
                    replay.correct_guess == live.correct_guess &&
                    replay.key_recovered == live.key_recovered);
  checks.expect("replay MTD identical",
                replay.mtd.disclosed() == live.mtd.disclosed() &&
                    (!replay.mtd.disclosed() ||
                     *replay.mtd.traces == *live.mtd.traces));
  checks.expect("replay progress bit-identical",
                progress_equal(replay.progress, live.progress));
  checks.expect("replay_speedup >= 3x", replay_speedup >= 3.0);
  checks.expect("fused sweep beats three sequential sweeps",
                fused_replay_speedup > 1.0);
  checks.expect("fused attack section bit-identical",
                fused.has_attack &&
                    fused.attack.recovered_guess == live.recovered_guess &&
                    progress_equal(fused.attack.progress, live.progress));
  if (bench::full_shape_budget(traces)) {
    checks.expect("key recovered at full budget", live.key_recovered);
  }

  std::FILE* f = std::fopen("BENCH_store.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"store\",\n"
                 "  \"traces\": %zu,\n"
                 "  \"store_bytes\": %ju,\n"
                 "  \"live_seconds\": %.6f,\n"
                 "  \"replay_runs\": %d,\n"
                 "  \"replay_seconds\": %.6f,\n"
                 "  \"replay_speedup\": %.3f,\n"
                 "  \"sequential_sweep_seconds\": %.6f,\n"
                 "  \"fused_sweep_seconds\": %.6f,\n"
                 "  \"fused_replay_speedup\": %.3f,\n"
                 "  \"bit_identical\": %s,\n"
                 "  \"key_recovered\": %s\n"
                 "}\n",
                 traces, static_cast<std::uintmax_t>(store_bytes),
                 live_seconds, kReplays, best_replay, replay_speedup,
                 best_seq, best_fused, fused_replay_speedup,
                 progress_equal(replay.progress, live.progress) ? "true"
                                                                : "false",
                 live.key_recovered ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_store.json\n");
  }

  std::filesystem::remove(store_path);
  return checks.finish();
}
