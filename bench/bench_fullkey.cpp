// Full-key CPA: the fused shared-capture engine (one trace stream feeds
// all 16 byte x 256 guess folds) against the farmed 16-campaign oracle
// at EQUAL per-byte trace budgets. The fused engine captures each trace
// once where the farm captures it 16 times, so the honest expectation
// is a ~16x capture-cost win minus the fused fold overhead; the JSON
// reports the measured ratio as "fullkey_speedup". Both paths run the
// SAME shared campaign config (StealthyAttack::fullkey_campaign_config),
// which is what makes their per-byte answers comparable at all — see
// docs/FULLKEY.md and the bit-exactness oracle in tests/core.
#include <cstdio>

#include "bench_util.hpp"
#include "core/attack.hpp"

using namespace slm;

namespace {

void write_fullkey_json(const core::StealthyAttack::FullKeyReport& fused,
                        const core::StealthyAttack::FullKeyReport& farmed,
                        double speedup,
                        const obs::CampaignObserver* observer) {
  const std::string path = "BENCH_fullkey.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::cout << "warning: could not write " << path << "\n";
    return;
  }
  bool keys_match = true;
  for (std::size_t b = 0; b < 16; ++b) {
    keys_match =
        keys_match && fused.bytes[b].recovered == farmed.bytes[b].recovered;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"bench\": \"fullkey\",\n"
      "  \"threads\": %u,\n"
      "  \"block_size\": %zu,\n"
      "  \"rng_contract\": \"%s\",\n"
      "  \"fused\": {\n"
      "    \"traces_captured\": %zu,\n"
      "    \"capture_seconds\": %.6f,\n"
      "    \"traces_per_sec\": %.1f,\n"
      "    \"bytes_early_exited\": %zu,\n"
      "    \"key_recovered\": %s\n"
      "  },\n"
      "  \"farmed\": {\n"
      "    \"traces_captured\": %zu,\n"
      "    \"capture_seconds\": %.6f,\n"
      "    \"traces_per_sec\": %.1f,\n"
      "    \"key_recovered\": %s\n"
      "  },\n"
      "  \"keys_match\": %s,\n"
      "  \"fullkey_speedup\": %.3f,\n"
      "  \"metrics\": {\n"
      "    \"registry\": %s\n"
      "  }\n"
      "}\n",
      fused.threads_used, fused.block_size,
      core::rng_contract_name(fused.rng_contract), fused.traces_captured,
      fused.capture_seconds,
      fused.capture_seconds > 0.0
          ? static_cast<double>(fused.traces_captured) / fused.capture_seconds
          : 0.0,
      fused.bytes_early_exited, fused.success ? "true" : "false",
      farmed.traces_captured, farmed.capture_seconds,
      farmed.capture_seconds > 0.0
          ? static_cast<double>(farmed.traces_captured) /
                farmed.capture_seconds
          : 0.0,
      farmed.success ? "true" : "false", keys_match ? "true" : "false",
      speedup,
      observer != nullptr ? observer->metrics().to_json().c_str() : "{}");
  std::fclose(f);
  std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads = bench::thread_budget(argc, argv);
  const std::size_t traces = bench::trace_budget(100000);
  bench::print_header("Full-key CPA",
                      "fused shared capture vs the farmed 16-campaign farm");

  std::shared_ptr<obs::CampaignObserver> observer = obs::observer_from_env();
  if (observer == nullptr) {
    observer = std::make_shared<obs::CampaignObserver>();
  }

  std::printf("mode tdc-full, %zu traces, %u thread(s)\n\n", traces, threads);

  // Fused: one shared capture pass, all 16 bytes, per-byte early exit.
  core::StealthyAttack fused_attack(core::BenignCircuit::kAlu);
  core::FullKeyOptions fused_opts;
  fused_opts.run.observer = observer.get();
  const auto fused = fused_attack.recover_full_key(
      traces, core::SensorMode::kTdcFull, threads, fused_opts);
  std::printf("fused : %7zu traces captured, %.3f s, %s, "
              "%zu byte(s) early-exited\n",
              fused.traces_captured, fused.capture_seconds,
              fused.success ? "key RECOVERED" : "key NOT recovered",
              fused.bytes_early_exited);

  // Farmed oracle: 16 independent byte campaigns over the same shared
  // config — 16x the captures for the same per-byte trace budget.
  core::StealthyAttack farmed_attack(core::BenignCircuit::kAlu);
  core::FullKeyOptions farmed_opts;
  farmed_opts.mode = core::FullKeyMode::kFarmed;
  const auto farmed = farmed_attack.recover_full_key(
      traces, core::SensorMode::kTdcFull, threads, farmed_opts);
  std::printf("farmed: %7zu traces captured, %.3f s, %s\n",
              farmed.traces_captured, farmed.capture_seconds,
              farmed.success ? "key RECOVERED" : "key NOT recovered");

  const double speedup = fused.capture_seconds > 0.0
                             ? farmed.capture_seconds / fused.capture_seconds
                             : 0.0;
  std::printf("fullkey speedup: %.2fx (farmed %.3f s / fused %.3f s)\n\n",
              speedup, farmed.capture_seconds, fused.capture_seconds);

  bench::ShapeChecks checks;
  bool keys_match = true;
  for (std::size_t b = 0; b < 16; ++b) {
    keys_match =
        keys_match && fused.bytes[b].recovered == farmed.bytes[b].recovered;
  }
  checks.expect("fused and farmed recover identical per-byte keys",
                keys_match);
  checks.expect("fused and farmed master keys match",
                fused.master_key == farmed.master_key);
  // Recovery needs enough traces; the smoke budget (SLM_TRACES=2000)
  // only exercises the equality shape above.
  if (traces >= 4000) {
    checks.expect("fused recovers the full key", fused.success);
    checks.expect("farmed oracle recovers the full key", farmed.success);
  } else {
    std::cout << "(recovery checks skipped below 4000 traces)\n";
  }
  // The capture-cost ratio is only meaningful once per-run overheads
  // (selection pre-pass, fold cost at the checkpoint schedule, the 16
  // platform replicas the farm builds) amortize against capture time.
  if (traces >= 100000) {
    checks.expect("fullkey_speedup >= 8x vs the farmed oracle",
                  speedup >= 8.0);
  } else {
    std::cout << "(speedup check skipped below 100000 traces)\n";
  }

  write_fullkey_json(fused, farmed, speedup, observer.get());
  return checks.finish();
}
