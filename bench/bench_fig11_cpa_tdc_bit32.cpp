// Figure 11: CPA with only a single TDC output bit. The paper uses "the
// highest variant bit 32 close to the idle value"; the campaign's
// auto-selection picks the thermometer stage at the operating depth the
// same way.
#include "bench_util.hpp"

using namespace slm;

int main(int argc, char** argv) {
  const unsigned threads = bench::thread_budget(argc, argv);
  bench::print_header("Figure 11", "CPA with a single TDC thermometer bit");
  core::CampaignConfig cfg;
  cfg.mode = core::SensorMode::kTdcSingleBit;
  cfg.single_bit = core::CampaignConfig::kAutoBit;
  cfg.traces = bench::trace_budget(500000);
  const auto fig = bench::run_cpa_figure(core::BenignCircuit::kAlu, cfg, threads);

  std::cout << "selected TDC stage: " << fig.resolved_bit
            << " (paper: bit 32 at its idle depth)\n";

  bench::ShapeChecks checks;
  checks.expect("correct key byte recovered", fig.campaign.key_recovered);
  checks.expect("disclosed", fig.campaign.mtd.disclosed());
  if (fig.campaign.mtd.disclosed()) {
    std::cout << "paper: a few hundred traces; measured: ~"
              << *fig.campaign.mtd.traces << "\n";
    checks.expect("single TDC bit still discloses within ~10k traces",
                  *fig.campaign.mtd.traces <= 10000);
  }
  return checks.finish();
}
