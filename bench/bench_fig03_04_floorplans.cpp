// Figures 3 and 4: floorplans of the ALU and C6288 experimental setups.
// Legend: B = benign circuit logic, * = voltage-sensitive path endpoints
// within it, T = TDC, R = RO grid, A = AES, | = tenant boundary.
#include "bench_util.hpp"

using namespace slm;

int main() {
  bench::ShapeChecks checks;
  const auto cal = core::Calibration::paper_defaults();

  struct FigSpec {
    const char* figure;
    core::BenignCircuit circuit;
    // Paper counts: 79/192 ALU endpoints, 49/64 C6288 endpoints.
    std::size_t paper_sensitive;
    std::size_t paper_total;
  };
  const FigSpec figs[] = {
      {"Figure 3 (ALU setup)", core::BenignCircuit::kAlu, 79, 192},
      {"Figure 4 (C6288 setup)", core::BenignCircuit::kC6288x2, 49, 64},
  };

  for (const auto& fig : figs) {
    bench::print_header(fig.figure,
                        "floorplan with sensitive endpoints marked");
    core::AttackSetup setup(fig.circuit, cal);
    const auto fabric = setup.make_floorplan();
    std::cout << fabric.render_ascii() << "\n";

    const auto sens = setup.ro_band_sensitive_endpoints();
    std::cout << "legend: B=benign logic, *=sensitive endpoint, T=TDC, "
                 "R=RO grid, A=AES, |=tenant boundary\n";
    std::cout << "sensitive endpoints (RO voltage band): " << sens.size()
              << " of " << setup.sensor_bits() << "   (paper: "
              << fig.paper_sensitive << " of " << fig.paper_total << ")\n";
    std::cout << "victim->attacker PDN coupling for this setup: "
              << setup.effective_coupling() << "\n\n";

    checks.expect(std::string(fig.figure) + ": fabric has isolated tenants",
                  fabric.tenant_count() == 2);
    checks.expect(std::string(fig.figure) + ": sensitive band non-trivial",
                  !sens.empty() && sens.size() < setup.sensor_bits());
    const double ratio = static_cast<double>(sens.size()) /
                         static_cast<double>(setup.sensor_bits());
    const double paper_ratio = static_cast<double>(fig.paper_sensitive) /
                               static_cast<double>(fig.paper_total);
    checks.expect(std::string(fig.figure) +
                      ": sensitive fraction within 2x of paper",
                  ratio > paper_ratio / 2.0 && ratio < paper_ratio * 2.0);
  }

  // The paper's observation that the C6288 offers a *larger usable
  // fraction* of endpoints than the ALU (50% vs ~20% for AES activity;
  // here compared on the RO band).
  core::AttackSetup alu(core::BenignCircuit::kAlu, cal);
  core::AttackSetup mult(core::BenignCircuit::kC6288x2, cal);
  const double alu_frac =
      static_cast<double>(alu.ro_band_sensitive_endpoints().size()) /
      static_cast<double>(alu.sensor_bits());
  const double mult_frac =
      static_cast<double>(mult.ro_band_sensitive_endpoints().size()) /
      static_cast<double>(mult.sensor_bits());
  std::cout << "usable endpoint fraction: alu=" << alu_frac
            << " c6288=" << mult_frac << "\n";
  checks.expect("C6288 usable fraction exceeds ALU's (paper Sec. V-D)",
                mult_frac > alu_frac);

  return checks.finish();
}
