// Shared scaffolding for the figure-regeneration benches: uniform
// headers, series printing, shape checks (PASS/FAIL lines a CI can grep)
// and the common CPA-figure runner used by Figs. 9-13 and 17-18.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/campaign.hpp"
#include "core/parallel.hpp"
#include "core/preliminary.hpp"
#include "core/setup.hpp"

namespace slm::bench {

inline void print_header(const std::string& figure,
                         const std::string& description) {
  std::cout << "================================================================\n"
            << figure << " -- " << description << "\n"
            << "================================================================\n";
}

/// Collects named shape assertions; prints PASS/FAIL per check and an
/// overall verdict. Benches return its exit code.
class ShapeChecks {
 public:
  void expect(const std::string& name, bool ok) {
    std::cout << (ok ? "[shape PASS] " : "[shape FAIL] ") << name << "\n";
    if (!ok) ++failures_;
  }

  int finish() const {
    if (failures_ == 0) {
      std::cout << "RESULT: all shape checks passed\n\n";
      return 0;
    }
    std::cout << "RESULT: " << failures_ << " shape check(s) FAILED\n\n";
    return 1;
  }

 private:
  int failures_ = 0;
};

/// Environment-tunable trace count: SLM_TRACES overrides the default so
/// quick runs are possible (documented in README and docs/BENCHMARKS.md).
inline std::size_t trace_budget(std::size_t dflt) {
  if (const char* env = std::getenv("SLM_TRACES")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return dflt;
}

/// Worker count for the CPA figure benches: `--threads N` on the command
/// line beats the SLM_THREADS environment variable beats the serial
/// default. The default stays 1 so the published figure tables are
/// bit-reproducible; pass --threads 0 for all hardware threads.
inline unsigned thread_budget(int argc = 0, char** argv = nullptr) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--threads") {
      return core::resolve_threads(
          static_cast<unsigned>(std::atoi(argv[i + 1])));
    }
  }
  if (const char* env = std::getenv("SLM_THREADS")) {
    return core::resolve_threads(static_cast<unsigned>(std::atoi(env)));
  }
  return 1;
}

struct CpaFigureResult {
  core::CampaignResult campaign;
  std::size_t resolved_bit = 0;
};

/// Run one CPA figure: prints the "total correlation" panel (a) as a
/// 16x16 grid over all 256 candidates, the "progress" panel (b) as a
/// checkpoint table, and the MTD verdict.
inline CpaFigureResult run_cpa_figure(core::BenignCircuit circuit,
                                      const core::CampaignConfig& cfg_in,
                                      unsigned threads = 1) {
  core::AttackSetup setup(circuit,
                          core::Calibration::paper_defaults());
  core::CampaignConfig cfg = cfg_in;
  core::ParallelCampaign campaign(setup, cfg, threads);
  CpaFigureResult out{campaign.run(), 0};
  out.resolved_bit = out.campaign.single_bit;
  const auto& r = out.campaign;

  std::cout << "sensor mode      : " << core::sensor_mode_name(r.mode) << "\n"
            << "benign circuit   : " << core::benign_circuit_name(circuit)
            << "\n"
            << "traces           : " << r.traces_run << "\n"
            << "target           : last-round key byte " << cfg.target_key_byte
            << ", state bit " << cfg.target_bit << "\n"
            << "threads          : " << r.threads_used << "\n";
  if (r.capture_seconds > 0.0) {
    std::printf("throughput       : %.0f traces/sec (%.2f s)\n",
                static_cast<double>(r.traces_run) / r.capture_seconds,
                r.capture_seconds);
  }
  if (r.mode == core::SensorMode::kBenignHw) {
    std::cout << "bits of interest : " << r.bits_of_interest.size() << "\n";
  }
  if (r.mode == core::SensorMode::kBenignSingleBit ||
      r.mode == core::SensorMode::kTdcSingleBit) {
    std::cout << "sensor bit       : " << out.resolved_bit << "\n";
  }

  std::cout << "\n(a) total |correlation| after " << r.traces_run
            << " traces, all 256 key candidates (correct = 0x";
  std::printf("%02x", r.correct_guess);
  std::cout << "):\n";
  for (int row = 0; row < 16; ++row) {
    for (int col = 0; col < 16; ++col) {
      const int k = row * 16 + col;
      std::printf("%s%6.4f", col == 0 ? "  " : " ",
                  r.final_max_abs_corr[static_cast<std::size_t>(k)]);
    }
    std::printf("\n");
  }

  std::cout << "\n(b) correlation progress over traces:\n";
  TextTable table({"traces", "corr(correct)", "best wrong", "rank of correct"});
  for (const auto& p : r.progress) {
    table.add_row({std::to_string(p.traces), format_double(p.correct_corr, 4),
                   format_double(p.best_wrong_corr, 4),
                   std::to_string(p.correct_rank)});
  }
  table.print(std::cout);

  std::cout << "\nrecovered key byte: 0x";
  std::printf("%02x", r.recovered_guess);
  std::cout << " (true 0x";
  std::printf("%02x", r.correct_guess);
  std::cout << ") -> " << (r.key_recovered ? "RECOVERED" : "not recovered")
            << "\n";
  if (r.mtd.disclosed()) {
    std::cout << "measurements to stable disclosure: ~" << *r.mtd.traces
              << " traces\n";
  } else {
    std::cout << "not stably disclosed within the budget\n";
  }
  std::cout << "\n";
  return out;
}

}  // namespace slm::bench
