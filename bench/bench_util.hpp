// Shared scaffolding for the figure-regeneration benches: uniform
// headers, series printing, shape checks (PASS/FAIL lines a CI can grep)
// and the common CPA-figure runner used by Figs. 9-13 and 17-18.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/campaign.hpp"
#include "core/parallel.hpp"
#include "core/preliminary.hpp"
#include "core/setup.hpp"
#include "obs/observer.hpp"

namespace slm::bench {

inline void print_header(const std::string& figure,
                         const std::string& description) {
  std::cout << "================================================================\n"
            << figure << " -- " << description << "\n"
            << "================================================================\n";
}

/// Collects named shape assertions; prints PASS/FAIL per check and an
/// overall verdict. Benches return its exit code.
class ShapeChecks {
 public:
  void expect(const std::string& name, bool ok) {
    std::cout << (ok ? "[shape PASS] " : "[shape FAIL] ") << name << "\n";
    if (!ok) ++failures_;
  }

  int finish() const {
    if (failures_ == 0) {
      std::cout << "RESULT: all shape checks passed\n\n";
      return 0;
    }
    std::cout << "RESULT: " << failures_ << " shape check(s) FAILED\n\n";
    return 1;
  }

 private:
  int failures_ = 0;
};

/// Environment-tunable trace count: SLM_TRACES overrides the default so
/// quick runs are possible (documented in README and docs/BENCHMARKS.md).
inline std::size_t trace_budget(std::size_t dflt) {
  if (const char* env = std::getenv("SLM_TRACES")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return dflt;
}

/// SLM_COMPILED=0 forces the reference (uncompiled) capture + CPA path in
/// the figure benches — for before/after throughput measurements; any
/// other value (or unset) keeps the default compiled kernels.
inline bool compiled_budget() {
  if (const char* env = std::getenv("SLM_COMPILED")) {
    return std::atoi(env) != 0;
  }
  return true;
}

/// Worker count for the CPA figure benches: `--threads N` on the command
/// line beats the SLM_THREADS environment variable beats the serial
/// default. The default stays 1 so the published figure tables are
/// bit-reproducible; pass --threads 0 for all hardware threads.
inline unsigned thread_budget(int argc = 0, char** argv = nullptr) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--threads") {
      return core::resolve_threads(
          static_cast<unsigned>(std::atoi(argv[i + 1])));
    }
  }
  if (const char* env = std::getenv("SLM_THREADS")) {
    return core::resolve_threads(static_cast<unsigned>(std::atoi(env)));
  }
  return 1;
}

struct CpaFigureResult {
  core::CampaignResult campaign;
  std::size_t resolved_bit = 0;
  /// Observer the campaign ran under (metrics always; a JSONL sink when
  /// SLM_TRACE is set). write_bench_json dumps its registry into the
  /// BENCH_*.json metrics block.
  std::shared_ptr<obs::CampaignObserver> observer;
};

/// The CPA figure benches assert paper-shape properties (key recovered,
/// MTD in range) that only hold with enough traces; below this budget the
/// recovery checks are skipped so bench_smoke can run a 2k-trace variant.
inline bool full_shape_budget(std::size_t traces) { return traces >= 50000; }

/// Four-way kernel comparison, serial campaigns with fresh AttackSetups:
/// (1) the block-batched compiled path under the run's RNG contract
/// (--block/SLM_BLOCK-resolved size; v2 by default, which also engages
/// the pipelined generate/compute overlap), (2) the compiled per-trace
/// path (block = 1, the PR 2 baseline), (3) the reference path
/// (compiled_kernels = false, block = 1), and (4) the same blocked
/// compiled campaign pinned to contract v1 — the sequential-stream
/// serial floor that v2 exists to break. Passes 1–3 share a contract
/// and must be bit-identical: recovered guess, every per-candidate
/// |correlation| and every progress point. Pass 4 draws different
/// randomness by design (DESIGN.md §12), so it is timed, not diffed.
/// Each path is timed over three interleaved repetitions and the
/// fastest is reported (min-of-N damps scheduler noise on shared
/// machines; all repetitions are seeded identically, so the repeat
/// cannot change the equivalence verdict). Throughput is computed over
/// the capture phase only (capture_seconds minus selection_seconds):
/// the selection pre-pass runs per-trace over every sensor bit in all
/// paths, so including it would dilute the ratios with identical
/// common work that none of the kernel knobs touch.
struct KernelComparison {
  bool equivalent = false;
  std::size_t traces = 0;
  std::size_t block_size = 0;  ///< effective block of the blocked pass
  core::RngContract rng_contract = core::RngContract::kV2;
  double block_tps = 0.0;      ///< traces/sec, blocked compiled path
  double compiled_tps = 0.0;   ///< traces/sec, per-trace compiled path
  double reference_tps = 0.0;  ///< traces/sec, reference path
  double v1_block_tps = 0.0;   ///< traces/sec, blocked path under v1
  double speedup() const {
    return reference_tps > 0.0 ? compiled_tps / reference_tps : 0.0;
  }
  /// Block-pipeline win over the per-trace compiled baseline.
  double block_speedup() const {
    return compiled_tps > 0.0 ? block_tps / compiled_tps : 0.0;
  }
  /// Contract v2 (counter-keyed streams + pipelined generation) vs the
  /// v1 sequential-stream floor, same blocked compiled campaign.
  double contract_speedup() const {
    return v1_block_tps > 0.0 ? block_tps / v1_block_tps : 0.0;
  }
};

inline KernelComparison compare_kernel_paths(core::BenignCircuit circuit,
                                             const core::CampaignConfig& cfg_in,
                                             std::size_t max_traces = 50000) {
  KernelComparison out;
  core::CampaignConfig cfg = cfg_in;
  cfg.traces = std::min(cfg.traces, max_traces);
  out.traces = cfg.traces;
  out.rng_contract = core::resolve_contract(cfg_in.rng_contract);

  constexpr int kPasses = 4;
  constexpr int kReps = 3;
  core::CampaignResult res[kPasses];
  double best_seconds[kPasses] = {0.0, 0.0, 0.0, 0.0};
  // Rep-major order: each repetition cycles through all four paths
  // back-to-back, so slow drift in background load (shared machines)
  // hits every path roughly equally instead of biasing whichever path
  // happened to run during a quiet stretch.
  for (int rep = 0; rep < kReps; ++rep) {
    for (int pass = 0; pass < kPasses; ++pass) {
      cfg.compiled_kernels = (pass != 2);
      // Passes 0 and 3 keep the caller's block request (0 = auto); the
      // baselines pin block = 1, which runs the exact per-trace loop.
      cfg.block = (pass == 1 || pass == 2) ? 1 : cfg_in.block;
      cfg.rng_contract =
          (pass == 3) ? core::RngContract::kV1 : cfg_in.rng_contract;
      core::AttackSetup setup(circuit, core::Calibration::paper_defaults());
      core::CpaCampaign campaign(setup, cfg);
      core::CampaignResult r = campaign.run();
      const double secs = r.capture_seconds - r.selection_seconds;
      if (rep == 0 || (secs > 0.0 && secs < best_seconds[pass])) {
        best_seconds[pass] = secs;
      }
      if (rep == 0) res[pass] = std::move(r);
    }
  }
  const core::CampaignResult& a = res[0];
  out.block_size = a.block_size;
  if (best_seconds[0] > 0.0) {
    out.block_tps = static_cast<double>(a.traces_run) / best_seconds[0];
  }
  if (best_seconds[1] > 0.0) {
    out.compiled_tps =
        static_cast<double>(res[1].traces_run) / best_seconds[1];
  }
  if (best_seconds[2] > 0.0) {
    out.reference_tps =
        static_cast<double>(res[2].traces_run) / best_seconds[2];
  }
  if (best_seconds[3] > 0.0) {
    out.v1_block_tps =
        static_cast<double>(res[3].traces_run) / best_seconds[3];
  }

  bool eq = true;
  for (int pass = 1; pass < 3; ++pass) {
    const core::CampaignResult& b = res[pass];
    eq = eq && a.traces_run == b.traces_run &&
         a.recovered_guess == b.recovered_guess &&
         a.single_bit == b.single_bit &&
         a.bits_of_interest == b.bits_of_interest &&
         a.final_max_abs_corr == b.final_max_abs_corr &&
         a.progress.size() == b.progress.size();
    if (!eq) break;
    for (std::size_t i = 0; i < a.progress.size(); ++i) {
      eq = eq && a.progress[i].traces == b.progress[i].traces &&
           a.progress[i].correct_corr == b.progress[i].correct_corr &&
           a.progress[i].best_wrong_corr == b.progress[i].best_wrong_corr &&
           a.progress[i].correct_rank == b.progress[i].correct_rank;
    }
  }
  // The v1 pass must at least agree on the physics (same recovered
  // byte over a full-shape budget is checked by the caller's shape
  // checks; here we only require the run completed).
  eq = eq && res[3].traces_run == a.traces_run;
  out.equivalent = eq;

  std::printf(
      "kernel equivalence: %s over %zu traces "
      "(block=%zu %.0f traces/sec, per-trace compiled %.0f traces/sec "
      "[%.2fx], reference %.0f traces/sec [%.2fx]; "
      "v1 blocked %.0f traces/sec -> contract speedup %.2fx)\n",
      eq ? "bit-identical" : "MISMATCH", out.traces, out.block_size,
      out.block_tps, out.compiled_tps, out.block_speedup(),
      out.reference_tps, out.speedup(), out.v1_block_tps,
      out.contract_speedup());
  return out;
}

/// Machine-readable throughput record next to the human-readable tables:
/// BENCH_<tag>.json in the working directory. The metrics block splits
/// campaign wall time into kernel (capture physics + sensor) vs CPA
/// (accumulate/fold/merge) vs selection vs checkpoint I/O — filled by the
/// observer-gated phase timers — and, when an observer is supplied, dumps
/// its full registry (counters/gauges/histograms with p50/p95/p99).
inline void write_bench_json(const std::string& tag,
                             const core::CampaignResult& r,
                             const core::CampaignConfig& cfg,
                             const KernelComparison& eq,
                             const obs::CampaignObserver* observer = nullptr) {
  const std::string path = "BENCH_" + tag + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::cout << "warning: could not write " << path << "\n";
    return;
  }
  const double tps = r.capture_seconds > 0.0
                         ? static_cast<double>(r.traces_run) /
                               r.capture_seconds
                         : 0.0;
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"%s\",\n"
               "  \"mode\": \"%s\",\n"
               "  \"seed\": %llu,\n"
               "  \"traces\": %zu,\n"
               "  \"threads\": %u,\n"
               "  \"block_size\": %zu,\n"
               "  \"rng_contract\": \"%s\",\n"
               "  \"capture_seconds\": %.6f,\n"
               "  \"traces_per_sec\": %.1f,\n"
               "  \"key_recovered\": %s,\n"
               "  \"kernel_equivalence\": {\n"
               "    \"equivalent\": %s,\n"
               "    \"traces\": %zu,\n"
               "    \"block_traces_per_sec\": %.1f,\n"
               "    \"block_speedup\": %.3f,\n"
               "    \"compiled_traces_per_sec\": %.1f,\n"
               "    \"reference_traces_per_sec\": %.1f,\n"
               "    \"speedup\": %.3f,\n"
               "    \"v1_traces_per_sec\": %.1f,\n"
               "    \"contract_speedup\": %.3f\n"
               "  },\n"
               "  \"metrics\": {\n"
               "    \"kernel_seconds\": %.6f,\n"
               "    \"cpa_seconds\": %.6f,\n"
               "    \"selection_seconds\": %.6f,\n"
               "    \"checkpoint_io_seconds\": %.6f,\n"
               "    \"registry\": %s\n"
               "  }\n"
               "}\n",
               tag.c_str(), core::sensor_mode_name(r.mode),
               static_cast<unsigned long long>(cfg.seed), r.traces_run,
               r.threads_used, r.block_size,
               core::rng_contract_name(r.rng_contract), r.capture_seconds,
               tps, r.key_recovered ? "true" : "false",
               eq.equivalent ? "true" : "false", eq.traces, eq.block_tps,
               eq.block_speedup(), eq.compiled_tps,
               eq.reference_tps, eq.speedup(), eq.v1_block_tps,
               eq.contract_speedup(), r.kernel_seconds,
               r.cpa_seconds, r.selection_seconds, r.checkpoint_io_seconds,
               observer != nullptr ? observer->metrics().to_json().c_str()
                                   : "{}");
  std::fclose(f);
  std::cout << "wrote " << path << "\n";
}

/// Run one CPA figure: prints the "total correlation" panel (a) as a
/// 16x16 grid over all 256 candidates, the "progress" panel (b) as a
/// checkpoint table, and the MTD verdict.
inline CpaFigureResult run_cpa_figure(core::BenignCircuit circuit,
                                      const core::CampaignConfig& cfg_in,
                                      unsigned threads = 1) {
  core::AttackSetup setup(circuit,
                          core::Calibration::paper_defaults());
  core::CampaignConfig cfg = cfg_in;
  cfg.compiled_kernels = cfg.compiled_kernels && compiled_budget();
  // Every figure bench runs under an observer: SLM_TRACE attaches a JSONL
  // event sink, otherwise a metrics-only registry feeds the phase-time
  // split in the output and the BENCH_*.json metrics block. (The timers
  // do not perturb results — the determinism contract is RNG-driven.)
  std::shared_ptr<obs::CampaignObserver> observer = obs::observer_from_env();
  if (observer == nullptr) {
    observer = std::make_shared<obs::CampaignObserver>();
  }
  cfg.observer = observer.get();
  core::ParallelCampaign campaign(setup, cfg, threads);
  CpaFigureResult out{campaign.run(), 0, observer};
  out.resolved_bit = out.campaign.single_bit;
  const auto& r = out.campaign;

  std::cout << "sensor mode      : " << core::sensor_mode_name(r.mode) << "\n"
            << "benign circuit   : " << core::benign_circuit_name(circuit)
            << "\n"
            << "traces           : " << r.traces_run << "\n"
            << "target           : last-round key byte " << cfg.target_key_byte
            << ", state bit " << cfg.target_bit << "\n"
            << "threads          : " << r.threads_used << "\n"
            << "trace block      : " << r.block_size << "\n"
            << "rng contract     : " << core::rng_contract_name(r.rng_contract)
            << "\n";
  if (r.capture_seconds > 0.0) {
    std::printf("throughput       : %.0f traces/sec (%.2f s)\n",
                static_cast<double>(r.traces_run) / r.capture_seconds,
                r.capture_seconds);
  }
  if (r.kernel_seconds > 0.0) {
    std::printf(
        "phase split      : kernel %.2f s, cpa %.2f s, selection %.2f s\n",
        r.kernel_seconds, r.cpa_seconds, r.selection_seconds);
  }
  if (r.mode == core::SensorMode::kBenignHw) {
    std::cout << "bits of interest : " << r.bits_of_interest.size() << "\n";
  }
  if (r.mode == core::SensorMode::kBenignSingleBit ||
      r.mode == core::SensorMode::kTdcSingleBit) {
    std::cout << "sensor bit       : " << out.resolved_bit << "\n";
  }

  std::cout << "\n(a) total |correlation| after " << r.traces_run
            << " traces, all 256 key candidates (correct = 0x";
  std::printf("%02x", r.correct_guess);
  std::cout << "):\n";
  for (int row = 0; row < 16; ++row) {
    for (int col = 0; col < 16; ++col) {
      const int k = row * 16 + col;
      std::printf("%s%6.4f", col == 0 ? "  " : " ",
                  r.final_max_abs_corr[static_cast<std::size_t>(k)]);
    }
    std::printf("\n");
  }

  std::cout << "\n(b) correlation progress over traces:\n";
  TextTable table({"traces", "corr(correct)", "best wrong", "rank of correct"});
  for (const auto& p : r.progress) {
    table.add_row({std::to_string(p.traces), format_double(p.correct_corr, 4),
                   format_double(p.best_wrong_corr, 4),
                   std::to_string(p.correct_rank)});
  }
  table.print(std::cout);

  std::cout << "\nrecovered key byte: 0x";
  std::printf("%02x", r.recovered_guess);
  std::cout << " (true 0x";
  std::printf("%02x", r.correct_guess);
  std::cout << ") -> " << (r.key_recovered ? "RECOVERED" : "not recovered")
            << "\n";
  if (r.mtd.disclosed()) {
    std::cout << "measurements to stable disclosure: ~" << *r.mtd.traces
              << " traces\n";
  } else {
    std::cout << "not stably disclosed within the budget\n";
  }
  std::cout << "\n";

  if (out.observer->has_sink()) {
    out.observer->write_manifest(
        obs::JsonWriter()
            .field("mode", core::sensor_mode_name(r.mode))
            .field("circuit", core::benign_circuit_name(circuit))
            .field("traces", static_cast<std::uint64_t>(r.traces_run))
            .field("recovered",
                   static_cast<std::uint64_t>(r.recovered_guess))
            .field("success", r.key_recovered)
            .field("threads", static_cast<std::uint64_t>(r.threads_used)));
  }
  return out;
}

}  // namespace slm::bench
