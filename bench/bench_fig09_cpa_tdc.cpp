// Figure 9: CPA baseline with the full TDC sensor at 150 MS/s — the
// correct key byte separates from all wrong candidates within a few
// hundred to ~1k traces.
#include "bench_util.hpp"

using namespace slm;

int main(int argc, char** argv) {
  const unsigned threads = bench::thread_budget(argc, argv);
  bench::print_header("Figure 9", "CPA on AES with the full TDC sensor");
  core::CampaignConfig cfg;
  cfg.mode = core::SensorMode::kTdcFull;
  cfg.traces = bench::trace_budget(500000);
  const auto fig = bench::run_cpa_figure(core::BenignCircuit::kAlu, cfg, threads);

  bench::ShapeChecks checks;
  checks.expect("correct key byte recovered", fig.campaign.key_recovered);
  checks.expect("disclosed", fig.campaign.mtd.disclosed());
  if (fig.campaign.mtd.disclosed()) {
    std::cout << "paper: a few hundred traces; measured: ~"
              << *fig.campaign.mtd.traces << "\n";
    checks.expect("TDC discloses within a few thousand traces",
                  *fig.campaign.mtd.traces <= 5000);
  }
  return checks.finish();
}
