// Figure 6: two consecutive RO-induced voltage drops seen simultaneously
// by the TDC (red in the paper) and by the Hamming weight of the
// toggling sensitive ALU bits (blue). The ALU tracks the TDC with
// inverted polarity in our convention (more not-yet-killed bits at lower
// voltage), which the paper normalises away.
#include "bench_util.hpp"

#include <algorithm>

#include "common/csv.hpp"
#include "common/stats.hpp"

using namespace slm;

int main() {
  bench::print_header(
      "Figure 6", "TDC vs Hamming weight of sensitive ALU bits under ROs");
  const auto cal = core::Calibration::paper_defaults();
  core::AttackSetup setup(core::BenignCircuit::kAlu, cal);
  core::PreliminaryExperiment prelim(setup);

  core::TimeSeriesConfig cfg;
  cfg.duration_ns = 2100.0;  // covers two full 4 MHz RO periods + lead-in
  cfg.ro_enable_ns = 270.0;
  cfg.ro_active = true;
  const auto series = prelim.run(cfg);

  // Post-processing exactly as the paper: select the fluctuating bits,
  // then apply the Hamming weight per sample.
  auto selector = prelim.analyse(series);
  const auto bits = selector.fluctuating_bits();
  const auto hw = series.benign_hw(bits);

  std::cout << "sensitive ALU bits used for the HW: " << bits.size() << "\n"
            << "RO enable at t=" << cfg.ro_enable_ns << " ns\n\n";

  CsvWriter csv(std::cout);
  csv.write_header({"sample", "t_ns", "tdc_reading", "alu_hw", "voltage"});
  for (std::size_t i = 0; i < series.t_ns.size(); ++i) {
    csv.write_row({std::to_string(i), format_double(series.t_ns[i], 2),
                   std::to_string(series.tdc_readings[i]),
                   std::to_string(hw[i]),
                   format_double(series.voltage[i], 4)});
  }
  std::cout << "\n";

  bench::ShapeChecks checks;
  const auto idle_tdc = static_cast<double>(series.tdc_readings[2]);
  const auto tdc_min = *std::min_element(series.tdc_readings.begin(),
                                         series.tdc_readings.end());
  const auto tdc_max = *std::max_element(series.tdc_readings.begin(),
                                         series.tdc_readings.end());
  std::cout << "tdc: idle~" << idle_tdc << " min=" << tdc_min
            << " max=" << tdc_max
            << "   (paper: ~30 idle, ~10 droop, 60-70 overshoot)\n";
  checks.expect("TDC drops well below idle during RO ramp",
                tdc_min + 8 < idle_tdc);
  checks.expect("TDC overshoots above idle on RO release",
                static_cast<double>(tdc_max) > idle_tdc + 5);

  std::vector<double> hw_d(hw.begin(), hw.end());
  std::vector<double> tdc_d(series.tdc_readings.begin(),
                            series.tdc_readings.end());
  const double corr = pearson(hw_d, tdc_d);
  std::cout << "correlation(ALU HW, TDC) = " << corr << "\n";
  checks.expect("ALU HW tracks the TDC trace (|corr| > 0.7)",
                std::abs(corr) > 0.7);

  // Two consecutive drops: the droop minimum repeats in both RO periods.
  const double period_ns = 1000.0 / cal.ro_grid.toggle_freq_mhz;
  const std::size_t p1_end = series.sample_index_at(cfg.ro_enable_ns + period_ns);
  auto min_in = [&](std::size_t lo, std::size_t hi) {
    double m = 1e9;
    for (std::size_t i = lo; i < hi && i < tdc_d.size(); ++i) {
      m = std::min(m, tdc_d[i]);
    }
    return m;
  };
  const std::size_t start = series.sample_index_at(cfg.ro_enable_ns);
  const double drop1 = min_in(start, p1_end);
  const double drop2 = min_in(p1_end, tdc_d.size());
  checks.expect("two consecutive voltage drops visible",
                drop1 + 8 < idle_tdc && drop2 + 8 < idle_tdc);
  return checks.finish();
}
