// Figure 14: absolute value of the toggling C6288 bits (two instances,
// 64 endpoints) under 8000 ROs, multiplier overclocked to 300 MHz.
#include "bench_util.hpp"

#include <algorithm>

#include "common/csv.hpp"

using namespace slm;

int main() {
  bench::print_header("Figure 14",
                      "raw toggling C6288 bits under 8000 ROs (300 MHz)");
  const auto cal = core::Calibration::paper_defaults();
  core::AttackSetup setup(core::BenignCircuit::kC6288x2, cal);
  core::PreliminaryExperiment prelim(setup);

  core::TimeSeriesConfig cfg;
  cfg.duration_ns = 1400.0;
  cfg.ro_enable_ns = 260.0;
  cfg.ro_active = true;
  const auto series = prelim.run(cfg);

  std::cout << "RO enable at t=" << cfg.ro_enable_ns << " ns (sample "
            << series.sample_index_at(cfg.ro_enable_ns) << ")\n\n";

  CsvWriter csv(std::cout);
  csv.write_header({"sample", "t_ns", "toggling_bits_value", "toggling_bits_hw",
                    "voltage"});
  for (std::size_t i = 0; i < series.t_ns.size(); ++i) {
    const auto& word = series.benign_toggles[i];
    csv.write_row({std::to_string(i), format_double(series.t_ns[i], 2),
                   std::to_string(word.to_uint64()),
                   std::to_string(word.popcount()),
                   format_double(series.voltage[i], 4)});
  }
  std::cout << "\n";

  bench::ShapeChecks checks;
  // The multiplier's glitchy endpoints fluctuate even at idle (unlike
  // the ALU staircase), so the RO signature here is a widened swing
  // rather than fluctuation appearing from silence.
  const std::size_t split = series.sample_index_at(cfg.ro_enable_ns);
  OnlineMeanVar before, after;
  double before_min = 1e9, before_max = -1e9, after_min = 1e9,
         after_max = -1e9;
  for (std::size_t i = 0; i < series.t_ns.size(); ++i) {
    const double hw = static_cast<double>(series.benign_toggles[i].popcount());
    if (i < split) {
      before.add(hw);
      before_min = std::min(before_min, hw);
      before_max = std::max(before_max, hw);
    } else {
      after.add(hw);
      after_min = std::min(after_min, hw);
      after_max = std::max(after_max, hw);
    }
  }
  std::cout << "HW swing before ROs: [" << before_min << ", " << before_max
            << "], after: [" << after_min << ", " << after_max << "]\n";
  checks.expect("RO activity widens the output swing",
                (after_max - after_min) > (before_max - before_min) + 4.0);
  checks.expect("RO activity raises the output variance",
                after.variance() > 1.5 * before.variance());
  const auto sel = prelim.analyse(series);
  const auto fl = sel.fluctuating_bits();
  std::cout << "fluctuating C6288 bits: " << fl.size()
            << " of 64 (paper: 49)\n";
  checks.expect("a large fraction of the 64 bits is sensitive",
                fl.size() >= 30 && fl.size() <= 62);
  return checks.finish();
}
