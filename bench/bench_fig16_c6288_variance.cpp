// Figure 16: variance of each sensitive C6288 bit under RO and AES
// fluctuations — the ranking from which the paper picks bit 28 for the
// single-endpoint attack of Fig. 18.
#include "bench_util.hpp"

#include "common/csv.hpp"
#include "sca/selection.hpp"

using namespace slm;

int main() {
  bench::print_header("Figure 16",
                      "variance of each sensitive C6288 bit (RO and AES)");
  const auto cal = core::Calibration::paper_defaults();
  core::AttackSetup setup(core::BenignCircuit::kC6288x2, cal);
  core::PreliminaryExperiment prelim(setup);

  core::TimeSeriesConfig ro_cfg;
  ro_cfg.duration_ns = 2400.0;
  ro_cfg.ro_active = true;
  const auto ro_sel = prelim.analyse(prelim.run(ro_cfg));

  core::TimeSeriesConfig aes_cfg;
  aes_cfg.duration_ns = 4800.0;
  aes_cfg.ro_active = false;
  aes_cfg.aes_active = true;
  const auto aes_sel = prelim.analyse(prelim.run(aes_cfg));

  const auto ro_var = ro_sel.variances();
  const auto aes_var = aes_sel.variances();

  CsvWriter csv(std::cout);
  csv.write_header({"bit", "variance_ro", "variance_aes"});
  for (std::size_t b = 0; b < setup.sensor_bits(); ++b) {
    if (ro_var[b] > 0.0 || aes_var[b] > 0.0) {
      csv.write_row({std::to_string(b), format_double(ro_var[b], 4),
                     format_double(aes_var[b], 4)});
    }
  }

  const std::size_t top_aes = aes_sel.highest_variance_bit();
  std::cout << "\nhighest-variance bit under AES activity: " << top_aes
            << " (paper: bit 28 under its mapping)\n\n";

  bench::ShapeChecks checks;
  checks.expect("a clear top-variance endpoint exists",
                aes_var[top_aes] > 0.1);
  checks.expect("variance is spread over multiple endpoints",
                aes_sel.bits_of_interest(0.05).size() >= 4);
  checks.expect("both instances contribute sensitive bits", [&] {
    bool lo = false, hi = false;
    for (std::size_t b : aes_sel.fluctuating_bits()) {
      if (b < 32) lo = true;
      if (b >= 32) hi = true;
    }
    return lo && hi;
  }());
  return checks.finish();
}
