// Distributed campaign fabric: one full-range in-process worker (the
// serial reference) against `coordinate_local` driving N = 1/2/4 local
// `slm attack --range --snapshot-out` worker subprocesses over the same
// campaign. Every variant's merged snapshot must be byte-identical to
// the serial one (the fabric's whole contract); the JSON reports the
// measured wall-clock ratio as "fabric_speedup" — honestly: on a
// single-core box the fabric pays process spawn + selection-pass
// overhead per worker and the speedup is expected to be <= ~1x, the
// win being fault tolerance and horizontal scale, not local speed.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/attack.hpp"
#include "core/fabric.hpp"
#include "obs/metrics.hpp"

using namespace slm;

namespace {

std::vector<std::uint8_t> file_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return {};
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(is),
                                   std::istreambuf_iterator<char>());
}

struct ShardPoint {
  unsigned shards = 0;
  double seconds = 0.0;
  bool bit_identical = false;
  unsigned workers_spawned = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t traces = bench::trace_budget(20000);
  bench::print_header("Distributed fabric",
                      "N-shard coordinate runs vs one in-process worker");

  // The worker binary: argv[1] wins, else SLM_BIN, else skip the
  // subprocess half (shape checks still run on the serial side).
  std::string slm_bin = argc > 1 ? argv[1] : "";
  if (slm_bin.empty()) {
    const char* env = std::getenv("SLM_BIN");
    if (env != nullptr) slm_bin = env;
  }

  const std::string work_root = "bench_fabric_work";
  std::filesystem::remove_all(work_root);
  std::filesystem::create_directories(work_root);

  // Serial reference: one in-process worker over the full range.
  core::StealthyAttack attack(core::BenignCircuit::kAlu);
  core::CampaignConfig cfg =
      attack.byte_campaign_config(3, traces, core::SensorMode::kTdcFull);
  cfg.rng_contract = core::RngContract::kV2;
  const std::string serial_snap = work_root + "/serial.snap";
  core::FabricWorker worker(attack.setup(), cfg, /*fullkey=*/false);
  const double t0 = obs::monotonic_seconds();
  core::FabricJob job;
  job.range = {0, traces};
  job.snapshot_out = serial_snap;
  worker.run(job);
  const double serial_seconds = obs::monotonic_seconds() - t0;
  const std::vector<std::uint8_t> serial_bytes = file_bytes(serial_snap);
  std::printf("mode tdc-full, %zu traces\n", traces);
  std::printf("serial worker: %.3f s (%.0f traces/sec)\n\n", serial_seconds,
              static_cast<double>(traces) / serial_seconds);

  std::vector<ShardPoint> points;
  if (slm_bin.empty()) {
    std::printf("no slm binary (argv[1] or SLM_BIN): skipping the "
                "coordinate runs\n");
  } else {
    for (const unsigned shards : {1u, 2u, 4u}) {
      core::CoordinateOptions opt;
      opt.slm_binary = slm_bin;
      opt.work_dir = work_root + "/n" + std::to_string(shards);
      opt.total_traces = traces;
      opt.shards = shards;
      opt.worker_args = {"--circuit", "alu",         "--mode",
                         "tdc",       "--key-byte",  "3",
                         "--traces",  std::to_string(traces),
                         "--rng-contract", "v2"};
      const double c0 = obs::monotonic_seconds();
      const core::CoordinateResult res = core::coordinate_local(opt);
      ShardPoint p;
      p.shards = shards;
      p.seconds = obs::monotonic_seconds() - c0;
      p.workers_spawned = res.workers_spawned;
      p.bit_identical = file_bytes(res.merged_path) == serial_bytes;
      std::printf("%u shard(s): %.3f s, %s serial snapshot\n", shards,
                  p.seconds,
                  p.bit_identical ? "byte-identical to" : "DIVERGED from");
      if (!p.bit_identical) {
        std::printf("FAIL: fabric merge diverged from the serial engine\n");
        return 1;
      }
      points.push_back(p);
    }
  }

  // Honest headline: best coordinate wall time vs the serial worker.
  double best = 0.0;
  for (const ShardPoint& p : points) {
    if (best == 0.0 || p.seconds < best) best = p.seconds;
  }
  const double fabric_speedup = best > 0.0 ? serial_seconds / best : 0.0;
  if (!points.empty()) {
    std::printf("\nfabric speedup: %.2fx (serial %.3f s / best fabric "
                "%.3f s) — expect <= ~1x on a single-core box\n",
                fabric_speedup, serial_seconds, best);
  }

  std::FILE* f = std::fopen("BENCH_fabric.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"fabric\",\n"
                 "  \"traces\": %zu,\n"
                 "  \"serial_seconds\": %.6f,\n"
                 "  \"shard_runs\": [",
                 traces, serial_seconds);
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::fprintf(f,
                   "%s\n    {\"shards\": %u, \"seconds\": %.6f, "
                   "\"workers_spawned\": %u, \"bit_identical\": %s}",
                   i == 0 ? "" : ",", points[i].shards, points[i].seconds,
                   points[i].workers_spawned,
                   points[i].bit_identical ? "true" : "false");
    }
    std::fprintf(f,
                 "\n  ],\n"
                 "  \"fabric_speedup\": %.3f\n"
                 "}\n",
                 fabric_speedup);
    std::fclose(f);
    std::printf("wrote BENCH_fabric.json\n");
  }

  std::filesystem::remove_all(work_root);
  return 0;
}
