// Microbenchmarks (google-benchmark) of the kernels the figure benches
// lean on: AES reference + datapath model, netlist evaluation, the
// event-driven timing simulation, PDN stepping and response lookup, the
// overclocked capture, and the CPA trace update.
#include <benchmark/benchmark.h>

#include "core/calibration.hpp"
#include "core/setup.hpp"
#include "crypto/aes_datapath.hpp"
#include "netlist/evaluator.hpp"
#include "netlist/generators/alu.hpp"
#include "netlist/generators/c6288.hpp"
#include "pdn/cycle_response.hpp"
#include "pdn/rlc.hpp"
#include "sca/cpa.hpp"
#include "sca/model.hpp"
#include "timing/timed_sim.hpp"

using namespace slm;

namespace {

crypto::Block key() {
  return crypto::block_from_hex("2b7e151628aed2a6abf7158809cf4f3c");
}

void BM_AesEncrypt(benchmark::State& state) {
  crypto::Aes128 aes(key());
  crypto::Block pt{};
  for (auto _ : state) {
    pt = aes.encrypt(pt);
    benchmark::DoNotOptimize(pt);
  }
}
BENCHMARK(BM_AesEncrypt);

void BM_AesDatapathEncrypt(benchmark::State& state) {
  crypto::AesDatapathModel model(key(), crypto::DatapathConfig{});
  crypto::Block pt{};
  for (auto _ : state) {
    auto enc = model.encrypt(pt);
    pt = enc.ciphertext;
    benchmark::DoNotOptimize(enc.cycle_current[0]);
  }
}
BENCHMARK(BM_AesDatapathEncrypt);

void BM_AluNetlistEval(benchmark::State& state) {
  const auto cal = core::Calibration::paper_defaults();
  const auto nl = netlist::make_alu(cal.alu);
  netlist::Evaluator ev(nl);
  const auto in = netlist::alu_measure_stimulus(cal.alu);
  for (auto _ : state) {
    auto out = ev.eval(in);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_AluNetlistEval);

void BM_TimedSimC6288(benchmark::State& state) {
  const auto cal = core::Calibration::paper_defaults();
  const auto nl = netlist::make_c6288(cal.c6288);
  timing::TimedSimulator sim(nl);
  const auto from = netlist::c6288_reset_stimulus(cal.c6288);
  const auto to = netlist::c6288_measure_stimulus(cal.c6288);
  for (auto _ : state) {
    auto r = sim.simulate_transition(from, to);
    benchmark::DoNotOptimize(r.total_events);
  }
}
BENCHMARK(BM_TimedSimC6288);

void BM_PdnRk4Step(benchmark::State& state) {
  const auto cal = core::Calibration::paper_defaults();
  pdn::RlcPdn pdn(cal.pdn);
  double load = 0.1;
  for (auto _ : state) {
    load = -load;
    benchmark::DoNotOptimize(pdn.step(0.5 + load));
  }
}
BENCHMARK(BM_PdnRk4Step);

void BM_CycleResponseLookup(benchmark::State& state) {
  const auto cal = core::Calibration::paper_defaults();
  std::vector<double> samples, cycles;
  for (int s = 60; s < 70; ++s) samples.push_back(s * (20.0 / 3.0));
  for (int c = 0; c < 44; ++c) cycles.push_back(c * 10.0);
  const auto crm =
      pdn::CycleResponseMatrix::build(cal.pdn, samples, cycles, 10.0);
  std::vector<double> currents(44, 0.1);
  std::vector<double> v;
  for (auto _ : state) {
    crm.voltages(currents, v);
    benchmark::DoNotOptimize(v[0]);
  }
}
BENCHMARK(BM_CycleResponseLookup);

void BM_BenignSensorSampleWord(benchmark::State& state) {
  core::AttackSetup setup(core::BenignCircuit::kAlu,
                          core::Calibration::paper_defaults());
  Xoshiro256 rng(1);
  for (auto _ : state) {
    auto word = setup.sensor().sample_toggles(0.97, rng);
    benchmark::DoNotOptimize(word);
  }
}
BENCHMARK(BM_BenignSensorSampleWord);

void BM_BenignSensorSampleBit(benchmark::State& state) {
  core::AttackSetup setup(core::BenignCircuit::kAlu,
                          core::Calibration::paper_defaults());
  Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        setup.sensor().sample_toggle_bit(110, 0.97, rng));
  }
}
BENCHMARK(BM_BenignSensorSampleBit);

void BM_CpaAddTrace(benchmark::State& state) {
  sca::CpaEngine engine(256, 10);
  sca::LastRoundBitModel model(3, 0);
  Xoshiro256 rng(2);
  crypto::Block ct;
  std::vector<std::uint8_t> h;
  std::vector<double> y(10, 0.0);
  for (auto _ : state) {
    for (auto& b : ct) b = static_cast<std::uint8_t>(rng.next());
    model.hypotheses(ct, h);
    for (auto& s : y) s = rng.uniform();
    engine.add_trace(h, y);
  }
  benchmark::DoNotOptimize(engine.correlation(0, 0));
}
BENCHMARK(BM_CpaAddTrace);

}  // namespace

BENCHMARK_MAIN();
