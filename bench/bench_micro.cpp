// Microbenchmarks (google-benchmark) of the kernels the figure benches
// lean on: AES reference + datapath model, netlist evaluation, the
// event-driven timing simulation, PDN stepping and response lookup, the
// overclocked capture, the CPA trace update, and the block-batched
// capture/CPA kernels against their per-trace baselines (ns/sample and
// ns/trace; see items_per_second in the JSON). Unless --benchmark_out is
// given, results are also written to BENCH_micro.json.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "core/calibration.hpp"
#include "core/parallel.hpp"
#include "core/setup.hpp"
#include "sensors/benign_sensor.hpp"
#include "crypto/aes_datapath.hpp"
#include "netlist/evaluator.hpp"
#include "netlist/generators/alu.hpp"
#include "netlist/generators/c6288.hpp"
#include "pdn/cycle_response.hpp"
#include "pdn/rlc.hpp"
#include "sca/cpa.hpp"
#include "sca/fold_kernels.hpp"
#include "sca/model.hpp"
#include "timing/timed_sim.hpp"

using namespace slm;

namespace {

crypto::Block key() {
  return crypto::block_from_hex("2b7e151628aed2a6abf7158809cf4f3c");
}

void BM_AesEncrypt(benchmark::State& state) {
  crypto::Aes128 aes(key());
  crypto::Block pt{};
  for (auto _ : state) {
    pt = aes.encrypt(pt);
    benchmark::DoNotOptimize(pt);
  }
}
BENCHMARK(BM_AesEncrypt);

void BM_AesDatapathEncrypt(benchmark::State& state) {
  crypto::AesDatapathModel model(key(), crypto::DatapathConfig{});
  crypto::Block pt{};
  for (auto _ : state) {
    auto enc = model.encrypt(pt);
    pt = enc.ciphertext;
    benchmark::DoNotOptimize(enc.cycle_current[0]);
  }
}
BENCHMARK(BM_AesDatapathEncrypt);

void BM_AluNetlistEval(benchmark::State& state) {
  const auto cal = core::Calibration::paper_defaults();
  const auto nl = netlist::make_alu(cal.alu);
  netlist::Evaluator ev(nl);
  const auto in = netlist::alu_measure_stimulus(cal.alu);
  for (auto _ : state) {
    auto out = ev.eval(in);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_AluNetlistEval);

void BM_TimedSimC6288(benchmark::State& state) {
  const auto cal = core::Calibration::paper_defaults();
  const auto nl = netlist::make_c6288(cal.c6288);
  timing::TimedSimulator sim(nl);
  const auto from = netlist::c6288_reset_stimulus(cal.c6288);
  const auto to = netlist::c6288_measure_stimulus(cal.c6288);
  for (auto _ : state) {
    auto r = sim.simulate_transition(from, to);
    benchmark::DoNotOptimize(r.total_events);
  }
}
BENCHMARK(BM_TimedSimC6288);

void BM_PdnRk4Step(benchmark::State& state) {
  const auto cal = core::Calibration::paper_defaults();
  pdn::RlcPdn pdn(cal.pdn);
  double load = 0.1;
  for (auto _ : state) {
    load = -load;
    benchmark::DoNotOptimize(pdn.step(0.5 + load));
  }
}
BENCHMARK(BM_PdnRk4Step);

void BM_CycleResponseLookup(benchmark::State& state) {
  const auto cal = core::Calibration::paper_defaults();
  std::vector<double> samples, cycles;
  for (int s = 60; s < 70; ++s) samples.push_back(s * (20.0 / 3.0));
  for (int c = 0; c < 44; ++c) cycles.push_back(c * 10.0);
  const auto crm =
      pdn::CycleResponseMatrix::build(cal.pdn, samples, cycles, 10.0);
  std::vector<double> currents(44, 0.1);
  std::vector<double> v;
  for (auto _ : state) {
    crm.voltages(currents, v);
    benchmark::DoNotOptimize(v[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CycleResponseLookup);

// Blocked PDN matvec vs the per-trace voltages() above (items = traces).
// The scalar voltages() chain accumulates one FP add per cycle into a
// single running sum, so it is latency-bound; the lane-parallel form
// pipelines the adds across traces.
void cycle_response_block_bench(benchmark::State& state, bool simd) {
  const auto cal = core::Calibration::paper_defaults();
  std::vector<double> samples, cycles;
  for (int s = 60; s < 70; ++s) samples.push_back(s * (20.0 / 3.0));
  for (int c = 0; c < 44; ++c) cycles.push_back(c * 10.0);
  const auto crm =
      pdn::CycleResponseMatrix::build(cal.pdn, samples, cycles, 10.0);
  constexpr std::size_t kBlock = 64;
  Xoshiro256 rng(9);
  std::vector<double> ic(cycles.size() * kBlock);
  for (auto& x : ic) x = 0.05 + 0.1 * rng.uniform();
  std::vector<double> out(kBlock * samples.size());
  for (auto _ : state) {
    crm.voltages_block(ic.data(), kBlock, kBlock, out.data(), simd);
    benchmark::DoNotOptimize(out[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBlock));
}

void BM_CycleResponseBlock(benchmark::State& state) {
  cycle_response_block_bench(state, true);
}
BENCHMARK(BM_CycleResponseBlock);

void BM_CycleResponseBlockScalar(benchmark::State& state) {
  cycle_response_block_bench(state, false);
}
BENCHMARK(BM_CycleResponseBlockScalar);

void BM_BenignSensorSampleWord(benchmark::State& state) {
  core::AttackSetup setup(core::BenignCircuit::kAlu,
                          core::Calibration::paper_defaults());
  Xoshiro256 rng(1);
  for (auto _ : state) {
    auto word = setup.sensor().sample_toggles(0.97, rng);
    benchmark::DoNotOptimize(word);
  }
}
BENCHMARK(BM_BenignSensorSampleWord);

void BM_BenignSensorSampleBit(benchmark::State& state) {
  core::AttackSetup setup(core::BenignCircuit::kAlu,
                          core::Calibration::paper_defaults());
  Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        setup.sensor().sample_toggle_bit(110, 0.97, rng));
  }
}
BENCHMARK(BM_BenignSensorSampleBit);

// --- Block-kernel vs per-trace baselines -------------------------------
//
// The three pairs below are the block pipeline's hot kernels (DESIGN.md
// §11): the compiled capture evaluated per trace (toggle_hw_batch) vs
// per block of lanes (toggle_hw_block, SIMD and forced-scalar), and the
// CPA accumulators fed one trace at a time vs one cache-blocked rank-K
// update. items_per_second is samples/sec for the sensor kernels and
// traces/sec for the CPA kernels.

constexpr std::size_t kMicroBits = 32;    // planned endpoints
constexpr std::size_t kMicroSamples = 16; // samples per trace
constexpr std::size_t kMicroBlock = 64;   // traces per block

sensors::BenignSensorBank::CompiledHwPlan micro_hw_plan(
    const core::AttackSetup& setup) {
  std::vector<std::size_t> bits;
  for (std::size_t i = 0; i < kMicroBits; ++i) bits.push_back(i);
  return setup.sensor().compile_hw_plan(bits);
}

void BM_SensorToggleHwBatch(benchmark::State& state) {
  core::AttackSetup setup(core::BenignCircuit::kAlu,
                          core::Calibration::paper_defaults());
  const auto plan = micro_hw_plan(setup);
  Xoshiro256 rng(7);
  std::vector<double> v(kMicroSamples, 0.97);
  std::vector<double> y(kMicroSamples, 0.0);
  for (auto _ : state) {
    setup.sensor().toggle_hw_batch(plan, v.data(), v.size(), rng, y.data());
    benchmark::DoNotOptimize(y[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kMicroSamples));
}
BENCHMARK(BM_SensorToggleHwBatch);

void toggle_hw_block_bench(benchmark::State& state, bool simd) {
  core::AttackSetup setup(core::BenignCircuit::kAlu,
                          core::Calibration::paper_defaults());
  const auto plan = micro_hw_plan(setup);
  const std::size_t lanes = kMicroBlock * kMicroSamples;
  Xoshiro256 rng(7);
  std::vector<double> v(lanes, 0.97);
  std::vector<double> z(lanes * plan.draws_per_sample);
  FastNormal::instance().fill(rng, z.data(), z.size());
  std::vector<double> y(lanes, 0.0);
  for (auto _ : state) {
    setup.sensor().toggle_hw_block(plan, v.data(), lanes, z.data(), y.data(),
                                   simd);
    benchmark::DoNotOptimize(y[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lanes));
}

void BM_SensorToggleHwBlock(benchmark::State& state) {
  toggle_hw_block_bench(state, true);
}
BENCHMARK(BM_SensorToggleHwBlock);

void BM_SensorToggleHwBlockScalar(benchmark::State& state) {
  toggle_hw_block_bench(state, false);
}
BENCHMARK(BM_SensorToggleHwBlockScalar);

void BM_CpaAddTrace(benchmark::State& state) {
  sca::CpaEngine engine(256, 10);
  sca::LastRoundBitModel model(3, 0);
  Xoshiro256 rng(2);
  crypto::Block ct;
  std::vector<std::uint8_t> h;
  // Integer readings: the fold engines accumulate in exact int64 and
  // refuse fractional samples (sca/fold_kernels.hpp).
  std::vector<double> y(10, 0.0);
  for (auto _ : state) {
    if (engine.trace_count() >= sca::kMaxFoldTraces) {
      engine = sca::CpaEngine(256, 10);  // stay inside the overflow budget
    }
    for (auto& b : ct) b = static_cast<std::uint8_t>(rng.next());
    model.hypotheses(ct, h);
    for (auto& s : y) s = static_cast<double>(rng.next() & 0x3ffu);
    engine.add_trace(h, y);
  }
  benchmark::DoNotOptimize(engine.correlation(0, 0));
}
BENCHMARK(BM_CpaAddTrace);

void BM_CpaAddTraces(benchmark::State& state) {
  constexpr std::size_t kSamples = 10;
  sca::CpaEngine engine(256, kSamples);
  sca::LastRoundBitModel model(3, 0);
  Xoshiro256 rng(2);
  crypto::Block ct;
  std::vector<std::uint8_t> h;
  std::vector<std::uint8_t> hblk(kMicroBlock * 256);
  std::vector<double> yblk(kMicroBlock * kSamples);
  for (std::size_t t = 0; t < kMicroBlock; ++t) {
    for (auto& b : ct) b = static_cast<std::uint8_t>(rng.next());
    model.hypotheses(ct, h);
    std::memcpy(hblk.data() + t * 256, h.data(), 256);
    for (std::size_t s = 0; s < kSamples; ++s) {
      yblk[t * kSamples + s] = static_cast<double>(rng.next() & 0x3ffu);
    }
  }
  for (auto _ : state) {
    if (engine.trace_count() + kMicroBlock > sca::kMaxFoldTraces) {
      engine = sca::CpaEngine(256, kSamples);
    }
    engine.add_traces(hblk.data(), yblk.data(), kMicroBlock);
  }
  benchmark::DoNotOptimize(engine.correlation(0, 0));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kMicroBlock));
}
BENCHMARK(BM_CpaAddTraces);

void BM_XorClassAddTrace(benchmark::State& state) {
  constexpr std::size_t kSamples = 10;
  sca::XorClassCpa cls(kSamples);
  Xoshiro256 rng(2);
  std::vector<double> y(kSamples, 0.0);
  for (auto _ : state) {
    if (cls.trace_count() >= sca::kMaxFoldTraces) {
      cls = sca::XorClassCpa(kSamples);
    }
    const auto v = static_cast<std::uint8_t>(rng.next());
    const auto b = static_cast<std::uint8_t>(rng.next() & 1u);
    for (auto& s : y) s = static_cast<double>(rng.next() & 0xffu);
    cls.add_trace(v, b, y);
  }
  benchmark::DoNotOptimize(cls.trace_count());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_XorClassAddTrace);

void BM_XorClassAddBlock(benchmark::State& state) {
  constexpr std::size_t kSamples = 10;
  sca::XorClassCpa cls(kSamples);
  Xoshiro256 rng(2);
  std::vector<std::uint8_t> vblk(kMicroBlock), bblk(kMicroBlock);
  std::vector<double> yblk(kMicroBlock * kSamples);
  for (std::size_t t = 0; t < kMicroBlock; ++t) {
    vblk[t] = static_cast<std::uint8_t>(rng.next());
    bblk[t] = static_cast<std::uint8_t>(rng.next() & 1u);
    for (std::size_t s = 0; s < kSamples; ++s) {
      yblk[t * kSamples + s] = static_cast<double>(rng.next() & 0xffu);
    }
  }
  for (auto _ : state) {
    if (cls.trace_count() + kMicroBlock > sca::kMaxFoldTraces) {
      cls = sca::XorClassCpa(kSamples);
    }
    cls.add_block(vblk.data(), bblk.data(), yblk.data(), kMicroBlock);
  }
  benchmark::DoNotOptimize(cls.trace_count());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kMicroBlock));
}
BENCHMARK(BM_XorClassAddBlock);

// --- Integer fold engine: dispatch levels vs the retired FP floor ------
//
// The headline perf claim of the int64 conversion (DESIGN.md §11): the
// CPA fold no longer has to replay one strictly-ordered double
// accumulation chain per accumulator, so the hot add loops can run
// vector-wide. BM_ClassFoldDoubleRef reproduces the retired engine's
// per-trace double loops verbatim (FP addition is non-associative, so
// that serial order WAS the spec); the I64 variants drive the same
// XorClassCpa::add_block through each dispatch level via the test hook.
// items_per_second is traces/sec — the ratio Avx2 (or the machine's
// best level) over DoubleRef is the ">= 2x fold throughput" acceptance
// number, and Scalar over DoubleRef isolates how much of it is the
// integer conversion alone.

struct FoldBenchData {
  std::vector<std::uint8_t> v, b;
  std::vector<double> y;
};

FoldBenchData make_fold_data() {
  FoldBenchData d;
  Xoshiro256 rng(2);
  d.v.resize(kMicroBlock);
  d.b.resize(kMicroBlock);
  d.y.resize(kMicroBlock * kMicroSamples);
  for (std::size_t t = 0; t < kMicroBlock; ++t) {
    d.v[t] = static_cast<std::uint8_t>(rng.next());
    d.b[t] = static_cast<std::uint8_t>(rng.next() & 1u);
    for (std::size_t s = 0; s < kMicroSamples; ++s) {
      d.y[t * kMicroSamples + s] = static_cast<double>(rng.next() & 0x3ffu);
    }
  }
  return d;
}

void BM_ClassFoldDoubleRef(benchmark::State& state) {
  const FoldBenchData d = make_fold_data();
  // Verbatim reproduction of the retired XorClassCpa::add_block: double
  // accumulators fed per trace, plus the stable counting sort the FP
  // engine needed so every per-row addition order matched the per-trace
  // scatter (FP addition is non-associative — the order WAS the spec).
  constexpr std::size_t kClasses = 512;
  std::vector<double> sum_y(kMicroSamples, 0.0);
  std::vector<double> sum_yy(kMicroSamples, 0.0);
  std::vector<double> class_n(kClasses, 0.0);
  std::vector<double> class_y(kClasses * kMicroSamples, 0.0);
  std::vector<std::uint32_t> head, order, cursor;
  for (auto _ : state) {
    for (std::size_t t = 0; t < kMicroBlock; ++t) {
      const double* yt = d.y.data() + t * kMicroSamples;
      for (std::size_t s = 0; s < kMicroSamples; ++s) {
        const double ys = yt[s];
        sum_y[s] += ys;
        sum_yy[s] += ys * ys;
      }
    }
    head.assign(kClasses + 1, 0);
    order.resize(kMicroBlock);
    for (std::size_t t = 0; t < kMicroBlock; ++t) {
      const std::size_t cls =
          (static_cast<std::size_t>(d.v[t]) << 1) | d.b[t];
      ++head[cls + 1];
    }
    for (std::size_t c = 0; c < kClasses; ++c) head[c + 1] += head[c];
    cursor.assign(head.begin(), head.end() - 1);
    for (std::size_t t = 0; t < kMicroBlock; ++t) {
      const std::size_t cls =
          (static_cast<std::size_t>(d.v[t]) << 1) | d.b[t];
      order[cursor[cls]++] = static_cast<std::uint32_t>(t);
    }
    for (std::size_t cls = 0; cls < kClasses; ++cls) {
      const std::uint32_t lo = head[cls];
      const std::uint32_t hi = head[cls + 1];
      if (lo == hi) continue;
      class_n[cls] += static_cast<double>(hi - lo);
      double* row = &class_y[cls * kMicroSamples];
      for (std::uint32_t i = lo; i < hi; ++i) {
        const double* yt =
            d.y.data() + static_cast<std::size_t>(order[i]) * kMicroSamples;
        for (std::size_t s = 0; s < kMicroSamples; ++s) row[s] += yt[s];
      }
    }
    benchmark::DoNotOptimize(sum_y[0]);
    benchmark::DoNotOptimize(class_y[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kMicroBlock));
}
BENCHMARK(BM_ClassFoldDoubleRef);

void class_fold_i64_bench(benchmark::State& state,
                          sca::DispatchLevel level) {
  if (level > sca::detect_dispatch()) {
    state.SkipWithError("dispatch level not supported by this CPU");
    return;
  }
  sca::force_dispatch_for_testing(level);
  const FoldBenchData d = make_fold_data();
  sca::XorClassCpa cls(kMicroSamples);
  for (auto _ : state) {
    if (cls.trace_count() + kMicroBlock > sca::kMaxFoldTraces) {
      cls = sca::XorClassCpa(kMicroSamples);
    }
    cls.add_block(d.v.data(), d.b.data(), d.y.data(), kMicroBlock);
  }
  benchmark::DoNotOptimize(cls.trace_count());
  sca::clear_forced_dispatch_for_testing();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kMicroBlock));
}

void BM_ClassFoldI64Scalar(benchmark::State& state) {
  class_fold_i64_bench(state, sca::DispatchLevel::kScalar);
}
BENCHMARK(BM_ClassFoldI64Scalar);

void BM_ClassFoldI64Sse2(benchmark::State& state) {
  class_fold_i64_bench(state, sca::DispatchLevel::kSse2);
}
BENCHMARK(BM_ClassFoldI64Sse2);

void BM_ClassFoldI64Avx2(benchmark::State& state) {
  class_fold_i64_bench(state, sca::DispatchLevel::kAvx2);
}
BENCHMARK(BM_ClassFoldI64Avx2);

// --- RNG contract v2: per-trace stream derivation and pipelining -------
//
// Contract v2 (DESIGN.md §12) replaces one sequential xoshiro stream
// with a freshly derived stream per trace. The pairs below price that
// swap: the sequential baseline draws a trace's worth of randomness
// from one stream (v1's generation shape), the trace_stream variants
// pay the splitmix derivation per trace, and the gen/compute pair
// measures the double-buffered producer/consumer overlap the serial v2
// engine runs (generation on a 1-worker pool via submit_indexed/wait,
// compute on the calling thread). items_per_second is traces/sec.

// A trace's draw volume in the blocked benign-HW path: 16 plaintext
// bytes, one env-noise fill, one jitter fill.
constexpr std::size_t kMicroDps = 4;  // jitter draws per sample

inline void draw_one_trace(Xoshiro256& rng, double* zv, double* z) {
  std::uint64_t acc = 0;
  for (int i = 0; i < 16; ++i) acc ^= rng.next();
  benchmark::DoNotOptimize(acc);
  FastNormal::instance().fill(rng, zv, kMicroSamples);
  FastNormal::instance().fill(rng, z, kMicroSamples * kMicroDps);
}

void BM_RngSequentialStream(benchmark::State& state) {
  Xoshiro256 rng(0x51);
  std::vector<double> zv(kMicroSamples), z(kMicroSamples * kMicroDps);
  for (auto _ : state) {
    draw_one_trace(rng, zv.data(), z.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RngSequentialStream);

void BM_RngTraceStreamDerive(benchmark::State& state) {
  // Pure derivation cost: two splitmix64 mixes + state expansion.
  std::uint64_t g = 0;
  for (auto _ : state) {
    Xoshiro256 rng =
        Xoshiro256::trace_stream(0x51, kTraceDomainCapture, g++);
    benchmark::DoNotOptimize(rng.next());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RngTraceStreamDerive);

void BM_RngTraceStreamPerTrace(benchmark::State& state) {
  // v2's generation shape: derive + the same per-trace draw volume.
  std::vector<double> zv(kMicroSamples), z(kMicroSamples * kMicroDps);
  std::uint64_t g = 0;
  for (auto _ : state) {
    Xoshiro256 rng =
        Xoshiro256::trace_stream(0x51, kTraceDomainCapture, g++);
    draw_one_trace(rng, zv.data(), z.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RngTraceStreamPerTrace);

void gen_compute_bench(benchmark::State& state, bool pipelined) {
  core::AttackSetup setup(core::BenignCircuit::kAlu,
                          core::Calibration::paper_defaults());
  const auto plan = micro_hw_plan(setup);
  const std::size_t lanes = kMicroBlock * kMicroSamples;
  const std::size_t dps = plan.draws_per_sample;
  std::vector<double> v(lanes, 0.97);
  std::vector<double> y(lanes, 0.0);
  std::vector<double> z[2] = {std::vector<double>(lanes * dps),
                              std::vector<double>(lanes * dps)};
  std::uint64_t g = 0;
  auto gen_block = [&](std::vector<double>& slab) {
    for (std::size_t t = 0; t < kMicroBlock; ++t) {
      Xoshiro256 rng =
          Xoshiro256::trace_stream(0x51, kTraceDomainCapture, g + t);
      std::uint64_t acc = 0;
      for (int i = 0; i < 16; ++i) acc ^= rng.next();
      benchmark::DoNotOptimize(acc);
      FastNormal::instance().fill(rng, slab.data() + t * kMicroSamples * dps,
                                  kMicroSamples * dps);
    }
    g += kMicroBlock;
  };
  if (!pipelined) {
    for (auto _ : state) {
      gen_block(z[0]);
      setup.sensor().toggle_hw_block(plan, v.data(), lanes, z[0].data(),
                                     y.data(), true);
      benchmark::DoNotOptimize(y[0]);
    }
  } else {
    core::ThreadPool pool(1);
    int cur = 0;
    gen_block(z[cur]);
    for (auto _ : state) {
      // Producer fills the other slab while this thread computes.
      std::vector<double>* next = &z[1 - cur];
      pool.submit_indexed(1, [&gen_block, next](std::size_t) {
        gen_block(*next);
      });
      setup.sensor().toggle_hw_block(plan, v.data(), lanes, z[cur].data(),
                                     y.data(), true);
      benchmark::DoNotOptimize(y[0]);
      pool.wait();
      cur = 1 - cur;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kMicroBlock));
}

// Real time, not CPU time: the pipelined variant spends producer CPU
// on a second thread, and the honest comparison is wall clock per
// block. On a single-core machine the pair reports parity-or-worse —
// which is exactly why the engine gates the overlap on
// hardware_concurrency (SLM_PIPELINE overrides).
void BM_GenComputeSerial(benchmark::State& state) {
  gen_compute_bench(state, false);
}
BENCHMARK(BM_GenComputeSerial)->UseRealTime();

void BM_GenComputePipelined(benchmark::State& state) {
  gen_compute_bench(state, true);
}
BENCHMARK(BM_GenComputePipelined)->UseRealTime();

}  // namespace

// BENCHMARK_MAIN(), plus a default --benchmark_out=BENCH_micro.json so
// the per-kernel numbers land next to the figure benches' BENCH_*.json
// records without extra flags (an explicit --benchmark_out still wins).
int main(int argc, char** argv) {
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::vector<char*> args(argv, argv + argc);
  static char out_flag[] = "--benchmark_out=BENCH_micro.json";
  static char fmt_flag[] = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag);
    args.push_back(fmt_flag);
  }
  int args_n = static_cast<int>(args.size());
  benchmark::Initialize(&args_n, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
