// Ablation: all sensor classes head to head on the same victim — the
// dedicated TDC (this paper's baseline, [2]), the RO counter of related
// work [3], and the benign-logic sensors of this paper — plus TVLA
// leakage scores for each.
#include "bench_util.hpp"

using namespace slm;

namespace {

struct Entry {
  std::string name;
  core::BenignCircuit circuit;
  core::SensorMode mode;
  std::size_t traces;
};

}  // namespace

int main() {
  bench::print_header("Ablation",
                      "sensor classes head to head (CPA + TVLA)");
  const std::vector<Entry> entries = {
      {"TDC (64 stages)", core::BenignCircuit::kAlu,
       core::SensorMode::kTdcFull, 20000},
      {"RO counter [3]", core::BenignCircuit::kAlu,
       core::SensorMode::kRoCounter, bench::trace_budget(500000)},
      {"benign ALU (HW)", core::BenignCircuit::kAlu,
       core::SensorMode::kBenignHw, bench::trace_budget(500000)},
      {"benign C6288 (single bit)", core::BenignCircuit::kC6288x2,
       core::SensorMode::kBenignSingleBit, bench::trace_budget(500000)},
  };

  TextTable table({"sensor", "stealthy?", "key byte", "~MTD", "final corr",
                   "TVLA max|t| @20k"});
  std::vector<bool> recovered;
  std::vector<double> mtds;
  for (const auto& e : entries) {
    core::AttackSetup setup(e.circuit, core::Calibration::paper_defaults());
    core::CampaignConfig cfg;
    cfg.mode = e.mode;
    cfg.traces = e.traces;
    if (e.mode == core::SensorMode::kBenignSingleBit) {
      cfg.single_bit = core::CampaignConfig::kAutoBit;
    }
    if (e.mode == core::SensorMode::kBenignHw &&
        e.circuit == core::BenignCircuit::kC6288x2) {
      cfg.selection_top_k = 12;
    }
    core::CpaCampaign campaign(setup, cfg);
    const auto r = campaign.run();
    core::CpaCampaign tvla_campaign(setup, cfg);
    const auto t = tvla_campaign.run_tvla(20000);

    const bool stealthy = e.mode == core::SensorMode::kBenignHw ||
                          e.mode == core::SensorMode::kBenignSingleBit;
    recovered.push_back(r.key_recovered);
    mtds.push_back(r.mtd.disclosed()
                       ? static_cast<double>(*r.mtd.traces)
                       : -1.0);
    table.add_row(
        {e.name, stealthy ? "yes" : "no",
         r.key_recovered ? "recovered" : "safe (so far)",
         r.mtd.disclosed() ? std::to_string(*r.mtd.traces) : ">" +
             std::to_string(r.traces_run),
         format_double(r.progress.back().correct_corr, 4),
         format_double(t.max_abs_t(), 1)});
  }
  table.print(std::cout);
  std::cout << "\n";

  bench::ShapeChecks checks;
  checks.expect("TDC recovers the key", recovered[0]);
  checks.expect("benign ALU recovers the key", recovered[2]);
  checks.expect("benign C6288 endpoint recovers the key", recovered[3]);
  checks.expect("TDC is the fastest sensor",
                mtds[0] > 0 &&
                    (mtds[2] < 0 || mtds[0] < mtds[2]) &&
                    (mtds[3] < 0 || mtds[0] < mtds[3]));
  checks.expect("RO counter is the weakest (no faster than the benign ALU)",
                mtds[1] < 0 || (mtds[2] > 0 && mtds[1] >= mtds[2]));
  return checks.finish();
}
