// Ablation: the active-fence hiding countermeasure (related work [27,
// 28]) against the benign-logic sensor — how much randomised fence
// current the defender must spend to push the attack out of a 500k-trace
// budget.
#include "bench_util.hpp"

using namespace slm;

int main() {
  bench::print_header(
      "Ablation", "active-fence strength vs the benign ALU sensor's CPA");
  const std::size_t traces = bench::trace_budget(300000);

  TextTable table({"fence random current (A)", "defender mean draw (A)",
                   "key byte", "~MTD", "final corr(correct)"});
  std::vector<double> corrs;
  std::vector<bool> recovered;
  for (double fence_a : {0.0, 0.1, 0.3, 0.8, 2.0}) {
    core::AttackSetup setup(core::BenignCircuit::kAlu,
                            core::Calibration::paper_defaults());
    core::CampaignConfig cfg;
    cfg.mode = core::SensorMode::kBenignHw;
    cfg.traces = traces;
    cfg.fence.base_current_a = 0.05;
    cfg.fence.random_current_a = fence_a;
    core::CpaCampaign campaign(setup, cfg);
    const auto r = campaign.run();
    corrs.push_back(r.progress.back().correct_corr);
    recovered.push_back(r.key_recovered && r.mtd.disclosed());
    table.add_row({format_double(fence_a, 2),
                   format_double(0.05 + 0.5 * fence_a, 2),
                   r.key_recovered ? "recovered" : "protected",
                   r.mtd.disclosed() ? std::to_string(*r.mtd.traces)
                                     : ">" + std::to_string(traces),
                   format_double(r.progress.back().correct_corr, 4)});
  }
  table.print(std::cout);
  std::cout << "\n";

  bench::ShapeChecks checks;
  checks.expect("attack succeeds with no fence", recovered.front());
  checks.expect("correlation decreases monotonically with fence strength",
                [&] {
                  for (std::size_t i = 1; i < corrs.size(); ++i) {
                    if (corrs[i] > corrs[i - 1] * 1.15) return false;
                  }
                  return true;
                }());
  checks.expect("a strong enough fence suppresses the attack",
                !recovered.back());
  return checks.finish();
}
