// Figure 12: CPA from a *single* ALU path endpoint — the paper's bit 21,
// its highest-variance bit. The campaign auto-selects the highest-
// variance endpoint under AES activity, which is the same criterion.
// Paper: correct key byte after about 200k traces.
#include "bench_util.hpp"

using namespace slm;

int main(int argc, char** argv) {
  const unsigned threads = bench::thread_budget(argc, argv);
  bench::print_header("Figure 12",
                      "CPA with a single ALU path endpoint (top variance)");
  core::CampaignConfig cfg;
  cfg.mode = core::SensorMode::kBenignSingleBit;
  cfg.single_bit = core::CampaignConfig::kAutoBit;
  cfg.traces = bench::trace_budget(500000);
  const auto fig = bench::run_cpa_figure(core::BenignCircuit::kAlu, cfg, threads);

  std::cout << "selected endpoint: bit " << fig.resolved_bit
            << " (paper: bit 21 under its mapping)\n";

  bench::ShapeChecks checks;
  checks.expect("correct key byte recovered from one endpoint",
                fig.campaign.key_recovered);
  checks.expect("disclosed within the 500k budget",
                fig.campaign.mtd.disclosed());
  if (fig.campaign.mtd.disclosed()) {
    std::cout << "paper: ~200k traces; measured: ~"
              << *fig.campaign.mtd.traces << "\n";
    checks.expect("single endpoint costs clearly more than the TDC",
                  *fig.campaign.mtd.traces >= 10000);
  }
  return checks.finish();
}
