// Discussion (Sec. VI): the bitstream-checking detection matrix. Known
// sensor structures (RO, TDC) are flagged by structural scans; the
// paper's benign circuits pass everything — only the (impractically
// strict) operating-clock timing check would catch the misuse, and even
// that is defeated by false-path annotations.
#include "bench_util.hpp"

#include "bitstream/checker.hpp"
#include "netlist/generators/suspicious.hpp"

using namespace slm;

namespace {

struct Design {
  std::string name;
  netlist::Netlist nl;
};

std::string verdict(const bitstream::CheckReport& r) {
  return r.passed() ? "pass" : "REJECT";
}

}  // namespace

int main() {
  bench::print_header("Discussion matrix",
                      "bitstream checking vs sensor designs");
  const auto cal = core::Calibration::paper_defaults();

  std::vector<Design> designs;
  designs.push_back(
      {"ring-oscillator",
       netlist::make_ring_oscillator(netlist::RingOscillatorOptions{})});
  designs.push_back(
      {"tdc-delay-line", netlist::make_tdc_line(netlist::TdcLineOptions{})});
  designs.push_back({"benign-alu192", netlist::make_alu(cal.alu)});
  designs.push_back({"benign-c6288", netlist::make_c6288(cal.c6288)});

  bitstream::CheckerOptions structural;  // default scans only
  bitstream::CheckerOptions strict = structural;
  strict.operating_clock_period_ns = cal.overclock_period_ns();

  TextTable table({"design", "structural scans", "strict timing @300MHz",
                   "findings (structural)"});
  std::vector<bool> structural_pass, strict_pass;
  for (const auto& d : designs) {
    const auto s = bitstream::BitstreamChecker(structural).check(d.nl);
    const auto t = bitstream::BitstreamChecker(strict).check(d.nl);
    structural_pass.push_back(s.passed());
    strict_pass.push_back(t.passed());
    std::string kinds;
    for (const auto& f : s.findings) {
      if (!kinds.empty()) kinds += "; ";
      kinds += bitstream::check_kind_name(f.kind);
    }
    if (kinds.empty()) kinds = "-";
    table.add_row({d.name, verdict(s), verdict(t), kinds});
  }
  table.print(std::cout);
  std::cout << "\n";

  bench::ShapeChecks checks;
  checks.expect("RO flagged by structural scans", !structural_pass[0]);
  checks.expect("TDC flagged by structural scans", !structural_pass[1]);
  checks.expect("benign ALU passes structural scans", structural_pass[2]);
  checks.expect("benign C6288 passes structural scans", structural_pass[3]);
  checks.expect("strict timing catches the misused ALU", !strict_pass[2]);
  checks.expect("strict timing catches the misused C6288", !strict_pass[3]);

  // False-path constraints defeat even the strict check (Discussion).
  {
    const auto alu = netlist::make_alu(cal.alu);
    bitstream::CheckerOptions annotated = strict;
    for (std::size_t i = 0; i < alu.outputs().size(); ++i) {
      annotated.false_path_endpoints.push_back(i);
    }
    const auto r = bitstream::BitstreamChecker(annotated).check(alu);
    std::cout << "strict timing with user false-path constraints on the "
                 "ALU: "
              << verdict(r) << "\n";
    checks.expect("false-path annotations hide the sensor endpoints",
                  r.passed());
  }
  return checks.finish();
}
