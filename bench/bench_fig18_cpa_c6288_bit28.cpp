// Figure 18: CPA from a single C6288 path endpoint — the paper's bit 28,
// chosen by variance (Fig. 16), which performed *better* than combining
// all bits (~100k vs ~200k traces).
#include "bench_util.hpp"

using namespace slm;

int main(int argc, char** argv) {
  const unsigned threads = bench::thread_budget(argc, argv);
  bench::print_header("Figure 18",
                      "CPA with a single C6288 path endpoint (top variance)");
  core::CampaignConfig cfg;
  cfg.mode = core::SensorMode::kBenignSingleBit;
  cfg.single_bit = core::CampaignConfig::kAutoBit;
  cfg.traces = bench::trace_budget(500000);
  const auto fig = bench::run_cpa_figure(core::BenignCircuit::kC6288x2, cfg, threads);

  std::cout << "selected endpoint: bit " << fig.resolved_bit
            << " of the 64-bit concatenation (paper: bit 28)\n";

  bench::ShapeChecks checks;
  checks.expect("correct key byte recovered from one multiplier endpoint",
                fig.campaign.key_recovered);
  checks.expect("disclosed within the 500k budget",
                fig.campaign.mtd.disclosed());
  if (!fig.campaign.mtd.disclosed()) return checks.finish();
  std::cout << "paper: ~100k traces; measured: ~" << *fig.campaign.mtd.traces
            << "\n";

  // The paper's surprising ordering: this single bit beats the combined
  // Hamming weight of Fig. 17.
  core::CampaignConfig hw_cfg;
  hw_cfg.mode = core::SensorMode::kBenignHw;
  hw_cfg.traces = bench::trace_budget(500000);
  hw_cfg.selection_top_k = 12;
  const auto hw = bench::run_cpa_figure(core::BenignCircuit::kC6288x2, hw_cfg, threads);
  if (hw.campaign.mtd.disclosed()) {
    std::cout << "single-bit MTD ~" << *fig.campaign.mtd.traces
              << " vs combined-HW MTD ~" << *hw.campaign.mtd.traces << "\n";
    checks.expect(
        "single best endpoint needs no more traces than the combined HW",
        *fig.campaign.mtd.traces <= *hw.campaign.mtd.traces);
  }
  return checks.finish();
}
