// Figure 10: CPA with traces derived from the overclocked ALU (Hamming
// weight over the bits of interest), 150 MS/s effective rate. Paper:
// correct key byte after about 150k traces.
#include "bench_util.hpp"

using namespace slm;

int main(int argc, char** argv) {
  const unsigned threads = bench::thread_budget(argc, argv);
  bench::print_header("Figure 10",
                      "CPA on AES with the misused 192-bit ALU (HW mode)");
  core::CampaignConfig cfg;
  cfg.mode = core::SensorMode::kBenignHw;
  cfg.traces = bench::trace_budget(500000);
  const auto fig = bench::run_cpa_figure(core::BenignCircuit::kAlu, cfg, threads);

  bench::ShapeChecks checks;
  const auto eq = bench::compare_kernel_paths(core::BenignCircuit::kAlu, cfg);
  checks.expect("compiled kernels bit-identical to reference path",
                eq.equivalent);
  bench::write_bench_json("fig10", fig.campaign, cfg, eq,
                          fig.observer.get());
  if (bench::full_shape_budget(cfg.traces)) {
    checks.expect("correct key byte recovered", fig.campaign.key_recovered);
    checks.expect("disclosed within the 500k budget",
                  fig.campaign.mtd.disclosed());
    if (fig.campaign.mtd.disclosed()) {
      std::cout << "paper: ~150k traces; measured: ~"
                << *fig.campaign.mtd.traces << "\n";
      checks.expect("needs orders of magnitude more traces than the TDC",
                    *fig.campaign.mtd.traces >= 10000);
    }
  } else {
    std::cout << "[shape SKIP] recovery checks need >= 50000 traces\n";
  }
  return checks.finish();
}
