// Figure 17: CPA with traces derived from the two C6288 multipliers —
// the Hamming weight over the concatenated 64-bit output, reduced to the
// highest-variance bits of interest. Paper: ~200k traces (and a single
// instance was insufficient even at 500k).
#include "bench_util.hpp"

using namespace slm;

int main(int argc, char** argv) {
  const unsigned threads = bench::thread_budget(argc, argv);
  bench::print_header("Figure 17",
                      "CPA on AES with two C6288 multipliers (HW mode)");
  core::CampaignConfig cfg;
  cfg.mode = core::SensorMode::kBenignHw;
  cfg.traces = bench::trace_budget(500000);
  // The multiplier's glitchy endpoints carry variance without slope, so
  // the HW is restricted to the top bits of interest (see DESIGN.md).
  cfg.selection_top_k = 12;
  const auto fig = bench::run_cpa_figure(core::BenignCircuit::kC6288x2, cfg, threads);

  bench::ShapeChecks checks;
  const auto eq =
      bench::compare_kernel_paths(core::BenignCircuit::kC6288x2, cfg);
  checks.expect("compiled kernels bit-identical to reference path",
                eq.equivalent);
  bench::write_bench_json("fig17", fig.campaign, cfg, eq,
                          fig.observer.get());
  if (bench::full_shape_budget(cfg.traces)) {
    checks.expect("correct key byte recovered from the combined multipliers",
                  fig.campaign.key_recovered);
    checks.expect("disclosed within the 500k budget",
                  fig.campaign.mtd.disclosed());
    if (fig.campaign.mtd.disclosed()) {
      std::cout << "paper: ~200k traces; measured: ~"
                << *fig.campaign.mtd.traces << "\n";
      checks.expect("multiplier HW costs more traces than the TDC",
                    *fig.campaign.mtd.traces >= 10000);
    }
  } else {
    std::cout << "[shape SKIP] recovery checks need >= 50000 traces\n";
  }
  return checks.finish();
}
