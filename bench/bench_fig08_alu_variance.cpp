// Figure 8: variance of each sensitive ALU bit under RO and AES induced
// fluctuations. The highest-variance bit is the paper's pick for the
// single-endpoint attack (its bit 21).
#include "bench_util.hpp"

#include "common/csv.hpp"
#include "sca/selection.hpp"

using namespace slm;

int main() {
  bench::print_header("Figure 8",
                      "variance of each sensitive ALU bit (RO and AES)");
  const auto cal = core::Calibration::paper_defaults();
  core::AttackSetup setup(core::BenignCircuit::kAlu, cal);
  core::PreliminaryExperiment prelim(setup);

  core::TimeSeriesConfig ro_cfg;
  ro_cfg.duration_ns = 2400.0;
  ro_cfg.ro_active = true;
  const auto ro_sel = prelim.analyse(prelim.run(ro_cfg));

  core::TimeSeriesConfig aes_cfg;
  aes_cfg.duration_ns = 4800.0;
  aes_cfg.ro_active = false;
  aes_cfg.aes_active = true;
  const auto aes_sel = prelim.analyse(prelim.run(aes_cfg));

  const auto ro_var = ro_sel.variances();
  const auto aes_var = aes_sel.variances();

  CsvWriter csv(std::cout);
  csv.write_header({"bit", "variance_ro", "variance_aes"});
  for (std::size_t b = 0; b < setup.sensor_bits(); ++b) {
    if (ro_var[b] > 0.0 || aes_var[b] > 0.0) {
      csv.write_row({std::to_string(b), format_double(ro_var[b], 4),
                     format_double(aes_var[b], 4)});
    }
  }

  const std::size_t top_ro = ro_sel.highest_variance_bit();
  const std::size_t top_aes = aes_sel.highest_variance_bit();
  std::cout << "\nhighest-variance bit: RO stimulus -> " << top_ro
            << ", AES stimulus -> " << top_aes
            << "   (paper: bit 21 under its mapping)\n\n";

  bench::ShapeChecks checks;
  checks.expect("variance profile is non-trivial (some bits high, some low)",
                ro_var[top_ro] > 0.15);
  checks.expect("AES top-variance bit is also RO-sensitive",
                ro_var[top_aes] > 0.0);
  // The top AES bit must sit near the overclocked capture boundary:
  // i.e. strictly inside the sensitive band, not at the word edges.
  checks.expect("top bit is an interior endpoint",
                top_aes > 0 && top_aes < setup.sensor_bits() - 1);
  return checks.finish();
}
