// Figure 13: the single-endpoint attack repeated on an *alternate* ALU
// bit (the paper's bit 6) to show the result is not specific to one
// lucky endpoint. We take the second-highest-variance endpoint from the
// same selection pass. Paper: ~150k traces.
#include "bench_util.hpp"

#include <algorithm>

using namespace slm;

int main(int argc, char** argv) {
  const unsigned threads = bench::thread_budget(argc, argv);
  bench::print_header(
      "Figure 13", "CPA with an alternate single ALU endpoint (2nd variance)");

  // Rank endpoints by variance with a selection pre-pass, then attack
  // the runner-up explicitly.
  core::AttackSetup setup(core::BenignCircuit::kAlu,
                          core::Calibration::paper_defaults());
  core::CampaignConfig pre_cfg;
  pre_cfg.mode = core::SensorMode::kBenignSingleBit;
  pre_cfg.traces = 10;
  core::CpaCampaign pre(setup, pre_cfg);
  const auto selector = pre.run_selection_pass();
  std::vector<std::size_t> order(setup.sensor_bits());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return selector.stat(a).variance > selector.stat(b).variance;
  });
  const std::size_t alternate = order[1];
  std::cout << "top-variance endpoint: " << order[0]
            << "; alternate endpoint attacked: " << alternate
            << " (paper: bit 6)\n\n";

  core::CampaignConfig cfg;
  cfg.mode = core::SensorMode::kBenignSingleBit;
  cfg.single_bit = alternate;
  cfg.traces = bench::trace_budget(500000);
  const auto fig = bench::run_cpa_figure(core::BenignCircuit::kAlu, cfg, threads);

  bench::ShapeChecks checks;
  checks.expect("alternate endpoint also recovers the key byte",
                fig.campaign.key_recovered);
  checks.expect("disclosed within the 500k budget",
                fig.campaign.mtd.disclosed());
  if (fig.campaign.mtd.disclosed()) {
    std::cout << "paper: ~150k traces; measured: ~"
              << *fig.campaign.mtd.traces << "\n";
  }
  return checks.finish();
}
