// Figure 7: how many of the 192 ALU output bits are sensitive to voltage
// fluctuations from the ROs vs from the AES module, and how the AES set
// nests inside the RO set. (Paper: 79 RO-sensitive, 40 AES-sensitive, 39
// of those inside the RO set, 112 unaffected.)
#include "bench_util.hpp"

#include <algorithm>

#include "sca/selection.hpp"

using namespace slm;

int main() {
  bench::print_header("Figure 7", "ALU bits sensitive to RO vs AES activity");
  const auto cal = core::Calibration::paper_defaults();
  core::AttackSetup setup(core::BenignCircuit::kAlu, cal);
  core::PreliminaryExperiment prelim(setup);

  core::TimeSeriesConfig ro_cfg;
  ro_cfg.duration_ns = 2400.0;
  ro_cfg.ro_active = true;
  const auto ro_sel = prelim.analyse(prelim.run(ro_cfg));

  core::TimeSeriesConfig aes_cfg;
  aes_cfg.duration_ns = 4800.0;  // many encryptions back to back
  aes_cfg.ro_active = false;
  aes_cfg.aes_active = true;
  const auto aes_sel = prelim.analyse(prelim.run(aes_cfg));

  const auto ro_bits = ro_sel.fluctuating_bits();
  const auto aes_bits = aes_sel.fluctuating_bits();
  const double nested = sca::subset_fraction(aes_bits, ro_bits);
  std::size_t aes_in_ro = 0;
  for (std::size_t b : aes_bits) {
    if (std::binary_search(ro_bits.begin(), ro_bits.end(), b)) ++aes_in_ro;
  }
  const std::size_t total = setup.sensor_bits();
  std::size_t either = ro_bits.size() + aes_bits.size() - aes_in_ro;

  TextTable table({"population", "bits", "paper"});
  table.add_row({"total endpoints", std::to_string(total), "192"});
  table.add_row({"RO-sensitive", std::to_string(ro_bits.size()), "79"});
  table.add_row({"AES-sensitive", std::to_string(aes_bits.size()), "40"});
  table.add_row({"AES-sensitive also in RO set", std::to_string(aes_in_ro),
                 "39"});
  table.add_row({"unaffected", std::to_string(total - either), "112"});
  table.print(std::cout);
  std::cout << "\nAES subset fraction of RO set: " << nested << "\n\n";

  bench::ShapeChecks checks;
  checks.expect("a strict subset of endpoints is RO-sensitive",
                !ro_bits.empty() && ro_bits.size() < total);
  checks.expect("AES affects fewer bits than the ROs",
                aes_bits.size() < ro_bits.size());
  checks.expect("nearly all AES-sensitive bits are RO-sensitive (>= 90%)",
                nested >= 0.90);
  checks.expect("a large population of bits is unaffected",
                total - either > total / 3);
  return checks.finish();
}
