// Ablation: first-order boolean masking of the victim's datapath vs the
// CPA attack. With a fresh mask per round the register Hamming distance
// is independent of any unmasked state bit, so the last-round hypothesis
// decorrelates — even the fast TDC fails at budgets where it broke the
// unmasked core in hundreds of traces.
#include "bench_util.hpp"

using namespace slm;

int main() {
  bench::print_header("Ablation",
                      "masked vs unmasked victim datapath (TDC CPA)");
  const std::size_t traces = bench::trace_budget(100000);

  TextTable table({"victim", "key byte", "~MTD", "final corr(correct)",
                   "best wrong corr"});
  std::vector<double> margins;
  std::vector<bool> recovered;
  for (bool masked : {false, true}) {
    auto cal = core::Calibration::paper_defaults();
    cal.aes.masked = masked;
    core::AttackSetup setup(core::BenignCircuit::kAlu, cal);
    core::CampaignConfig cfg;
    cfg.mode = core::SensorMode::kTdcFull;
    cfg.traces = traces;
    core::CpaCampaign campaign(setup, cfg);
    const auto r = campaign.run();
    recovered.push_back(r.key_recovered && r.mtd.disclosed());
    margins.push_back(r.mtd.final_margin);
    table.add_row({masked ? "masked (2 shares, fresh mask/round)"
                          : "unmasked (paper setup)",
                   r.key_recovered ? "recovered" : "protected",
                   r.mtd.disclosed() ? std::to_string(*r.mtd.traces)
                                     : ">" + std::to_string(traces),
                   format_double(r.progress.back().correct_corr, 4),
                   format_double(r.progress.back().best_wrong_corr, 4)});
  }
  table.print(std::cout);
  std::cout << "\nmasking is the algorithmic countermeasure the paper's "
               "related work points to;\nit defeats the sensor no matter "
               "how the sensor is built.\n\n";

  bench::ShapeChecks checks;
  checks.expect("unmasked victim broken quickly", recovered[0]);
  checks.expect("masked victim survives the same budget", !recovered[1]);
  checks.expect("masking collapses the correct-key margin",
                margins[1] < 0.3 * std::max(margins[0], 1e-9));
  return checks.finish();
}
