// Figure 5: absolute value of the toggling ALU bits under the influence
// of 8000 ROs; ALU at 300 MHz, every second cycle recorded (150 MS/s).
// The dashed green line of the paper is the RO enable instant.
#include "bench_util.hpp"

#include "common/csv.hpp"

using namespace slm;

int main() {
  bench::print_header("Figure 5",
                      "raw toggling ALU bits under 8000 ROs (300 MHz ALU)");
  const auto cal = core::Calibration::paper_defaults();
  core::AttackSetup setup(core::BenignCircuit::kAlu, cal);
  core::PreliminaryExperiment prelim(setup);

  core::TimeSeriesConfig cfg;
  cfg.duration_ns = 1400.0;
  cfg.ro_enable_ns = 260.0;  // "sample 20" territory at 150 MS/s
  cfg.ro_active = true;
  const auto series = prelim.run(cfg);

  std::cout << "RO grid: " << cal.ro_grid.ro_count << " ROs, toggled at "
            << cal.ro_grid.toggle_freq_mhz << " MHz; enabled at t="
            << cfg.ro_enable_ns << " ns (sample "
            << series.sample_index_at(cfg.ro_enable_ns) << ")\n\n";

  CsvWriter csv(std::cout);
  csv.write_header({"sample", "t_ns", "toggling_bits_value_low64",
                    "toggling_bits_hw", "voltage"});
  for (std::size_t i = 0; i < series.t_ns.size(); ++i) {
    const auto& word = series.benign_toggles[i];
    csv.write_row({std::to_string(i), format_double(series.t_ns[i], 2),
                   std::to_string(word.slice(64, 64).to_uint64()),
                   std::to_string(word.popcount()),
                   format_double(series.voltage[i], 4)});
  }
  std::cout << "\n";

  // Shape: quiet before the ROs, visibly fluctuating after.
  bench::ShapeChecks checks;
  const std::size_t split = series.sample_index_at(cfg.ro_enable_ns);
  OnlineMeanVar before, after;
  for (std::size_t i = 0; i < series.t_ns.size(); ++i) {
    const double hw = static_cast<double>(series.benign_toggles[i].popcount());
    (i < split ? before : after).add(hw);
  }
  checks.expect("output fluctuates after RO enable",
                after.variance() > 4.0 * before.variance() + 1.0);
  checks.expect("output not constant after RO enable", after.variance() > 0.5);
  return checks.finish();
}
