// Figure 15: C6288 bits sensitive to RO vs AES fluctuations. Paper: 49
// of 64 RO-sensitive, 32 AES-sensitive, all AES bits inside the RO set,
// 15 unaffected; ~50% of endpoints usable vs ~20% for the ALU.
#include "bench_util.hpp"

#include <algorithm>

#include "sca/selection.hpp"

using namespace slm;

int main() {
  bench::print_header("Figure 15",
                      "C6288 bits sensitive to RO vs AES activity");
  const auto cal = core::Calibration::paper_defaults();
  core::AttackSetup setup(core::BenignCircuit::kC6288x2, cal);
  core::PreliminaryExperiment prelim(setup);

  core::TimeSeriesConfig ro_cfg;
  ro_cfg.duration_ns = 2400.0;
  ro_cfg.ro_active = true;
  const auto ro_sel = prelim.analyse(prelim.run(ro_cfg));

  core::TimeSeriesConfig aes_cfg;
  aes_cfg.duration_ns = 4800.0;
  aes_cfg.ro_active = false;
  aes_cfg.aes_active = true;
  const auto aes_sel = prelim.analyse(prelim.run(aes_cfg));

  const auto ro_bits = ro_sel.fluctuating_bits();
  const auto aes_bits = aes_sel.fluctuating_bits();
  std::size_t aes_in_ro = 0;
  for (std::size_t b : aes_bits) {
    if (std::binary_search(ro_bits.begin(), ro_bits.end(), b)) ++aes_in_ro;
  }
  const std::size_t total = setup.sensor_bits();
  const std::size_t either = ro_bits.size() + aes_bits.size() - aes_in_ro;

  TextTable table({"population", "bits", "paper"});
  table.add_row({"total endpoints", std::to_string(total), "64"});
  table.add_row({"RO-sensitive", std::to_string(ro_bits.size()), "49"});
  table.add_row({"AES-sensitive", std::to_string(aes_bits.size()), "32"});
  table.add_row({"AES-sensitive also in RO set", std::to_string(aes_in_ro),
                 "32"});
  table.add_row({"unaffected", std::to_string(total - either), "15"});
  table.print(std::cout);
  std::cout << "\n";

  bench::ShapeChecks checks;
  checks.expect("about half or more of the endpoints usable (paper ~50%+)",
                aes_bits.size() * 2 >= total / 2);
  checks.expect("AES set nests in the RO set (>= 90%)",
                sca::subset_fraction(aes_bits, ro_bits) >= 0.90);

  // Cross-circuit claim: usable fraction larger than the ALU's.
  core::AttackSetup alu(core::BenignCircuit::kAlu, cal);
  core::PreliminaryExperiment alu_prelim(alu);
  const auto alu_aes =
      alu_prelim.analyse(alu_prelim.run(aes_cfg)).fluctuating_bits();
  const double alu_frac = static_cast<double>(alu_aes.size()) /
                          static_cast<double>(alu.sensor_bits());
  const double c6288_frac = static_cast<double>(aes_bits.size()) /
                            static_cast<double>(total);
  std::cout << "usable-for-AES fraction: c6288=" << c6288_frac
            << " alu=" << alu_frac << " (paper: ~50% vs ~20%)\n";
  checks.expect("C6288 usable fraction exceeds the ALU's",
                c6288_frac > alu_frac);
  return checks.finish();
}
