// ATPG-style stimulus discovery (Discussion, Sec. VI): given an
// *arbitrary* benign circuit, automatically find the (reset, measure)
// input pair that turns its path endpoints into voltage sensors — no
// hand analysis of the carry structure needed.
#include <iostream>

#include "atpg/stimulus_search.hpp"
#include "common/table.hpp"
#include "core/calibration.hpp"
#include "netlist/generators/adder.hpp"
#include "netlist/generators/c6288.hpp"
#include "sensors/benign_sensor.hpp"
#include "timing/sta.hpp"

using namespace slm;

namespace {

void hunt(const std::string& name, const netlist::Netlist& nl,
          const core::Calibration& cal) {
  std::cout << "== " << name << " ==\n";
  timing::Sta sta(nl);
  std::cout << "gates: " << nl.logic_gate_count()
            << ", endpoints: " << nl.outputs().size()
            << ", critical path: " << sta.critical_delay() << " ns\n";

  // The capture instant sweeps this nominal-time band as the supply
  // moves across the RO-induced voltage range.
  // Lower voltage -> slower gates -> the capture lands *earlier* on the
  // nominal time axis.
  const double t_lo = (cal.capture.clock_period_ns - cal.capture.setup_ns) /
                      cal.delay.factor(cal.ro_v_min);
  const double t_hi = (cal.capture.clock_period_ns - cal.capture.setup_ns) /
                      cal.delay.factor(cal.ro_v_max);
  std::cout << "capture band at 300 MHz over the RO voltage range: [" << t_lo
            << ", " << t_hi << "] ns\n";

  atpg::StimulusSearchConfig cfg;
  cfg.random_trials = 120;
  cfg.hill_climb_iters = 250;
  atpg::StimulusSearch search(nl, cfg);
  const auto pair = search.find_sensor_stimulus(t_lo, t_hi);

  std::cout << "found stimulus pair with " << pair.endpoints_in_band
            << " endpoints toggling inside the band (max settle "
            << pair.max_settle_ns << " ns)\n"
            << "  reset   = " << pair.reset.to_string() << "\n"
            << "  measure = " << pair.measure.to_string() << "\n";

  // Plug the discovered pair straight into a BenignSensor and check that
  // it actually senses.
  sensors::BenignSensorConfig scfg;
  scfg.capture = cal.capture;
  sensors::BenignSensor sensor(nl, pair.reset, pair.measure, scfg);
  const auto sens = sensor.sensitive_endpoints(cal.ro_v_min, cal.ro_v_max);
  std::cout << "as a sensor: " << sens.size() << " of "
            << sensor.endpoint_count()
            << " endpoints voltage-sensitive across the RO band\n\n";
}

}  // namespace

int main() {
  const auto cal = core::Calibration::paper_defaults();

  // A circuit the attacker "happens to have": a 96-bit adder datapath.
  {
    netlist::AdderOptions opt;
    opt.width = 96;
    hunt("96-bit ripple-carry adder (no hand analysis)",
         make_ripple_carry_adder(opt), cal);
  }
  // And the ISCAS-85 multiplier, where the hand-crafted pair in the
  // library was itself found by this search.
  hunt("ISCAS-85 C6288 16x16 multiplier", netlist::make_c6288(cal.c6288),
       cal);

  std::cout << "Any circuit with paths near the overclocked capture window "
               "can be misused;\nATPG finds the stimuli automatically "
               "(Discussion, Sec. VI).\n";
  return 0;
}
