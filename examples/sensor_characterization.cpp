// Sensor characterisation: the measurement-bench view of the platform.
// Prints the physical operating point (timing closure, PDN response,
// TDC transfer curve) and profiles both benign sensors against the RO
// aggressor and the AES victim — the workflow behind Figs. 5-8.
#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/table.hpp"
#include "core/preliminary.hpp"
#include "core/setup.hpp"
#include "pdn/rlc.hpp"
#include "timing/sta.hpp"

using namespace slm;

int main() {
  const auto cal = core::Calibration::paper_defaults();

  std::printf("== platform operating point ==\n");
  pdn::RlcPdn pdn(cal.pdn);
  std::printf("PDN: R=%.0f mohm, L=%.0f pH, C=%.0f nF -> resonance %.1f MHz, "
              "damping %.2f\n",
              cal.pdn.r_ohm * 1e3, cal.pdn.l_h * 1e12, cal.pdn.c_f * 1e9,
              pdn.resonance_mhz(), pdn.damping_ratio());
  std::printf("idle operating voltage: %.3f V\n",
              pdn.dc_voltage(cal.pdn.idle_current_a));
  std::printf("TDC transfer: idle depth %.1f LSB; RO droop drives it to "
              "%.1f LSB\n\n",
              sensors::TdcSensor(cal.tdc).depth(0.975),
              sensors::TdcSensor(cal.tdc).depth(cal.ro_v_min));

  for (auto kind : {core::BenignCircuit::kAlu, core::BenignCircuit::kC6288x2}) {
    core::AttackSetup setup(kind, cal);
    std::printf("== %s ==\n", core::benign_circuit_name(kind));
    timing::Sta sta(setup.benign_netlist(0));
    std::printf("gates %zu | critical %.2f ns | 50 MHz budget 20 ns | "
                "overclock period %.2f ns\n",
                setup.benign_netlist(0).logic_gate_count(),
                sta.critical_delay(), cal.overclock_period_ns());
    std::printf("stimulus settle %.2f ns -> %s at 300 MHz\n",
                setup.sensor().instance(0).max_settle_time_ns(),
                setup.sensor().instance(0).max_settle_time_ns() >
                        cal.overclock_period_ns()
                    ? "timing violations (sensor armed)"
                    : "still closes timing");

    core::PreliminaryExperiment prelim(setup);
    core::TimeSeriesConfig ro_cfg;
    ro_cfg.duration_ns = 2000.0;
    ro_cfg.ro_active = true;
    const auto ro = prelim.analyse(prelim.run(ro_cfg));
    core::TimeSeriesConfig aes_cfg;
    aes_cfg.duration_ns = 4000.0;
    aes_cfg.ro_active = false;
    aes_cfg.aes_active = true;
    const auto aes = prelim.analyse(prelim.run(aes_cfg));

    TextTable table({"stimulus", "sensitive bits", "top-variance bit"});
    table.add_row({"8000 ROs", std::to_string(ro.fluctuating_bits().size()),
                   std::to_string(ro.highest_variance_bit())});
    table.add_row({"AES activity",
                   std::to_string(aes.fluctuating_bits().size()),
                   std::to_string(aes.highest_variance_bit())});
    std::printf("\n");
    {
      std::ostringstream os;
      table.print(os);
      std::fputs(os.str().c_str(), stdout);
    }
    std::printf("\n");
  }
  return 0;
}
