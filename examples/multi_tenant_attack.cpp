// Multi-tenant attack scenario: the full experimental platform of the
// paper's Fig. 2 — floorplan, clocking plan, sensor characterisation and
// a key-recovery campaign with both benign circuits, side by side with
// the conspicuous TDC baseline.
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "core/attack.hpp"
#include "core/campaign.hpp"
#include "fpga/clocking.hpp"

using namespace slm;

namespace {

struct Row {
  std::string sensor;
  core::KeyByteReport report;
};

core::KeyByteReport attack_with(core::BenignCircuit circuit,
                                core::SensorMode mode, std::size_t traces) {
  core::StealthyAttack attack(circuit);
  return attack.recover_key_byte(3, traces, mode);
}

}  // namespace

int main() {
  const auto cal = core::Calibration::paper_defaults();

  // The clocking plan: every frequency the attack needs is an ordinary
  // MMCM configuration of the 125 MHz board reference.
  fpga::Mmcm mmcm;
  std::cout << "== clocking plan (125 MHz reference) ==\n";
  TextTable clocks({"clock", "MHz", "MMCM M/D/O"});
  const struct {
    const char* name;
    double mhz;
  } plan[] = {{"benign circuit (declared)", cal.benign_design_mhz},
              {"benign circuit (attack)", cal.overclock_mhz},
              {"victim AES", cal.aes_clock_mhz}};
  for (const auto& p : plan) {
    const auto s = mmcm.find_setting(p.mhz);
    clocks.add_row({p.name, format_double(p.mhz, 0),
                    s ? std::to_string(s->m) + "/" + std::to_string(s->d) +
                            "/" + std::to_string(s->o)
                      : "unreachable"});
  }
  clocks.print(std::cout);

  // Floorplans of both experiments.
  for (auto kind : {core::BenignCircuit::kAlu, core::BenignCircuit::kC6288x2}) {
    core::AttackSetup setup(kind, cal);
    std::cout << "\n== floorplan: " << core::benign_circuit_name(kind)
              << " experiment ==\n"
              << setup.make_floorplan().render_ascii();
    std::cout << "sensitive endpoints: "
              << setup.ro_band_sensitive_endpoints().size() << " of "
              << setup.sensor_bits()
              << "; PDN coupling to victim: " << setup.effective_coupling()
              << "\n";
  }

  // Key recovery with every sensor mode (reduced budgets).
  std::cout << "\n== key-byte recovery campaigns (byte 3 of the last round "
               "key) ==\n";
  std::vector<Row> rows;
  rows.push_back({"TDC (baseline, conspicuous)",
                  attack_with(core::BenignCircuit::kAlu,
                              core::SensorMode::kTdcFull, 5000)});
  rows.push_back({"ALU, HW of bits of interest",
                  attack_with(core::BenignCircuit::kAlu,
                              core::SensorMode::kBenignHw, 150000)});
  rows.push_back({"C6288 x2, single best endpoint",
                  attack_with(core::BenignCircuit::kC6288x2,
                              core::SensorMode::kBenignSingleBit, 150000)});

  TextTable table({"sensor", "recovered", "result", "~traces to disclose"});
  bool all_ok = true;
  for (const auto& r : rows) {
    char buf[8];
    std::snprintf(buf, sizeof buf, "0x%02x", r.report.recovered);
    table.add_row({r.sensor, buf, r.report.success ? "CORRECT" : "wrong",
                   r.report.mtd.disclosed()
                       ? std::to_string(*r.report.mtd.traces)
                       : "-"});
    all_ok = all_ok && r.report.success;
  }
  table.print(std::cout);
  std::cout << "\nall sensors recover the key byte; only the TDC would be "
               "caught by bitstream checking.\n";
  return all_ok ? 0 : 1;
}
