// Quickstart: misuse a benign 192-bit ALU as a voltage sensor and
// recover a byte of a co-tenant's AES key — the paper's headline result
// in ~30 lines of API use.
//
//   $ ./quickstart
//
// Reduced trace budget so it finishes in a few seconds; see the bench/
// binaries for the full 500k-trace figure reproductions.
#include <cstdio>
#include <iostream>

#include "core/attack.hpp"

int main() {
  using namespace slm::core;

  // 1. Assemble the multi-tenant platform: attacker region with the
  //    benign ALU (and reference TDC), victim region with AES-128.
  StealthyAttack attack(BenignCircuit::kAlu);

  // 2. The stealthiness claim: the attacker's bitstream contains no ring
  //    oscillator, no TDC pattern, no clock-as-data — it is an ALU.
  const auto audit = attack.check_stealthiness();
  std::cout << "bitstream checker verdict on the attacker's circuit: "
            << audit.summary() << "\n\n";

  // 3. Overclock it and run the CPA campaign against the victim's last
  //    round key (byte 3, "the 4th byte", as in the paper).
  std::cout << "capturing traces and running CPA (this takes a moment)...\n";
  const auto report =
      attack.recover_key_byte(/*key_byte=*/3, /*traces=*/150000,
                              SensorMode::kBenignHw);

  std::printf("true key byte      : 0x%02x\n", report.true_value);
  std::printf("recovered key byte : 0x%02x (%s)\n", report.recovered,
              report.success ? "CORRECT" : "wrong");
  if (report.mtd.disclosed()) {
    std::printf("stable disclosure  : ~%zu traces\n", *report.mtd.traces);
  }
  return report.success ? 0 : 1;
}
