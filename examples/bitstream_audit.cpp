// Bitstream audit from the *cloud provider's* perspective: run the
// netlist checker over a portfolio of tenant designs and see which ones
// it can reject — and which attack it fundamentally cannot see.
#include <iostream>

#include "bitstream/checker.hpp"
#include "common/table.hpp"
#include "core/calibration.hpp"
#include "netlist/generators/adder.hpp"
#include "netlist/generators/alu.hpp"
#include "netlist/generators/c6288.hpp"
#include "netlist/generators/suspicious.hpp"
#include "timing/sta.hpp"

using namespace slm;

int main() {
  const auto cal = core::Calibration::paper_defaults();

  struct Tenant {
    std::string name;
    netlist::Netlist nl;
    bool actually_malicious;
  };
  std::vector<Tenant> portfolio;
  portfolio.push_back(
      {"tenant-a: RO power sensor (Zhao&Suh'18)",
       netlist::make_ring_oscillator(netlist::RingOscillatorOptions{}), true});
  portfolio.push_back(
      {"tenant-b: TDC sensor (Schellenberg'18)",
       netlist::make_tdc_line(netlist::TdcLineOptions{}), true});
  portfolio.push_back({"tenant-c: 192-bit ALU (this paper's sensor)",
                       netlist::make_alu(cal.alu), true});
  portfolio.push_back({"tenant-d: C6288 multiplier (this paper's sensor)",
                       netlist::make_c6288(cal.c6288), true});
  {
    netlist::AdderOptions innocent;
    innocent.width = 32;
    portfolio.push_back({"tenant-e: 32-bit adder (honest user)",
                         netlist::make_ripple_carry_adder(innocent), false});
  }

  bitstream::BitstreamChecker checker;  // structural scans
  std::cout << "== structural bitstream checking ==\n";
  TextTable table({"design", "verdict", "malicious?", "caught?"});
  for (const auto& t : portfolio) {
    const auto report = checker.check(t.nl);
    table.add_row({t.name, report.passed() ? "accept" : "REJECT",
                   t.actually_malicious ? "yes" : "no",
                   t.actually_malicious
                       ? (report.passed() ? "MISSED" : "caught")
                       : (report.passed() ? "-" : "false alarm")});
  }
  table.print(std::cout);

  std::cout << "\n== why the benign circuits pass ==\n";
  for (std::size_t i = 2; i <= 3; ++i) {
    timing::Sta sta(portfolio[i].nl);
    std::cout << portfolio[i].name << ": " << portfolio[i].nl.logic_gate_count()
              << " gates, critical path " << sta.critical_delay()
              << " ns -> comfortably closes its declared 50 MHz (20 ns) "
                 "constraint.\n";
  }

  std::cout << "\n== the strict-timing countermeasure and its cost ==\n";
  bitstream::CheckerOptions strict;
  strict.operating_clock_period_ns = cal.overclock_period_ns();
  for (std::size_t i = 2; i <= 3; ++i) {
    const auto report =
        bitstream::BitstreamChecker(strict).check(portfolio[i].nl);
    std::cout << portfolio[i].name << " checked against the 300 MHz "
              << "*operating* clock: "
              << (report.passed() ? "accept" : "REJECT") << "\n";
  }
  std::cout << "...but a tenant can annotate the failing endpoints as false "
               "paths (routine in real designs), and the check goes quiet:\n";
  {
    bitstream::CheckerOptions annotated = strict;
    for (std::size_t e = 0; e < portfolio[2].nl.outputs().size(); ++e) {
      annotated.false_path_endpoints.push_back(e);
    }
    const auto report =
        bitstream::BitstreamChecker(annotated).check(portfolio[2].nl);
    std::cout << portfolio[2].name << " with false-path constraints: "
              << (report.passed() ? "accept (sensor hidden)" : "REJECT")
              << "\n";
  }
  return 0;
}
