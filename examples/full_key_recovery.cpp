// Full key recovery: attack all 16 last-round key bytes and invert the
// AES key schedule — from "voltage wiggle in a neighbour's adder" to the
// victim's master key. Uses the TDC for speed; switch the mode to
// SensorMode::kBenignHw to do the same fully stealthily (more traces).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/attack.hpp"
#include "core/parallel.hpp"

int main(int argc, char** argv) {
  using namespace slm::core;

  // One shared capture pass feeds all 16 byte folds (docs/FULLKEY.md);
  // the capture itself shards across all hardware threads by default.
  // Under the default v2 RNG contract the thread count never changes
  // the recovered bits, so `--threads 1` is purely a throughput knob
  // here.
  unsigned threads = 0;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--threads") {
      threads = static_cast<unsigned>(std::atoi(argv[i + 1]));
    }
  }

  StealthyAttack attack(BenignCircuit::kAlu);
  std::printf("recovering all 16 bytes of the last round key "
              "(TDC sensor, one shared 4000-trace capture, "
              "%u thread(s))...\n\n",
              resolve_threads(threads));
  const auto report = attack.recover_full_key(/*traces=*/4000,
                                              SensorMode::kTdcFull, threads);

  std::printf("byte  true  recovered  ok   ~traces\n");
  std::printf("----  ----  ---------  ---  -------\n");
  for (const auto& b : report.bytes) {
    std::printf("%4zu  0x%02x       0x%02x  %s  %7s\n", b.key_byte,
                b.true_value, b.recovered, b.success ? "yes" : "NO ",
                b.mtd.disclosed() ? std::to_string(*b.mtd.traces).c_str()
                                  : "-");
  }

  std::printf("\nlast round key : %s\n",
              slm::crypto::block_to_hex(report.last_round_key).c_str());
  std::printf("master key     : %s (inverse key schedule)\n",
              slm::crypto::block_to_hex(report.master_key).c_str());
  std::printf("victim's key   : %s\n",
              slm::crypto::block_to_hex(
                  Calibration::paper_defaults().aes_key())
                  .c_str());
  std::printf("\n%s\n", report.success
                            ? "FULL KEY RECOVERED — AES-128 broken."
                            : "recovery incomplete at this trace budget.");
  return report.success ? 0 : 1;
}
