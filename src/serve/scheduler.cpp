#include "serve/scheduler.hpp"

#include <algorithm>

namespace slm::serve {

FairShareScheduler::FairShareScheduler(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

std::size_t FairShareScheduler::depth() const {
  std::lock_guard<std::mutex> g(m_);
  return queue_.size();
}

bool FairShareScheduler::try_admit(QueuedJob job) {
  std::lock_guard<std::mutex> g(m_);
  if (queue_.size() >= capacity_) return false;
  job.seq = next_seq_++;
  queue_.push_back(std::move(job));
  return true;
}

void FairShareScheduler::admit(QueuedJob job) {
  const std::string id = job.spec.id;
  if (!try_admit(std::move(job))) {
    throw QueueFullError("queue full: " + std::to_string(depth()) + "/" +
                         std::to_string(capacity_) + " jobs queued; job '" +
                         id + "' rejected");
  }
}

void FairShareScheduler::requeue(QueuedJob job) {
  std::lock_guard<std::mutex> g(m_);
  // seq is kept from admission; bump the counter past it anyway in case
  // the job came from a restart recovery scan that assigned seqs itself.
  next_seq_ = std::max(next_seq_, job.seq + 1);
  queue_.push_back(std::move(job));
}

std::optional<QueuedJob> FairShareScheduler::next() {
  std::lock_guard<std::mutex> g(m_);
  if (queue_.empty()) return std::nullopt;
  std::size_t best = 0;
  auto charged_of = [&](const QueuedJob& j) -> std::uint64_t {
    const auto it = charged_.find(j.spec.tenant);
    return it == charged_.end() ? 0 : it->second;
  };
  for (std::size_t i = 1; i < queue_.size(); ++i) {
    const QueuedJob& a = queue_[i];
    const QueuedJob& b = queue_[best];
    const std::uint64_t ca = charged_of(a);
    const std::uint64_t cb = charged_of(b);
    if (ca != cb) {
      if (ca < cb) best = i;
      continue;
    }
    if (a.spec.priority != b.spec.priority) {
      if (a.spec.priority > b.spec.priority) best = i;
      continue;
    }
    if (a.seq < b.seq) best = i;
  }
  QueuedJob out = std::move(queue_[best]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));
  return out;
}

void FairShareScheduler::charge(const std::string& tenant,
                                std::uint64_t traces) {
  std::lock_guard<std::mutex> g(m_);
  charged_[tenant] += traces;
}

std::vector<TenantShare> FairShareScheduler::shares() const {
  std::lock_guard<std::mutex> g(m_);
  std::vector<TenantShare> out;
  auto find = [&out](const std::string& t) -> TenantShare& {
    for (TenantShare& s : out) {
      if (s.tenant == t) return s;
    }
    out.push_back(TenantShare{t, 0, 0});
    return out.back();
  };
  for (const auto& [tenant, charged] : charged_) find(tenant).charged = charged;
  for (const QueuedJob& j : queue_) ++find(j.spec.tenant).pending;
  std::sort(out.begin(), out.end(), [](const TenantShare& a,
                                       const TenantShare& b) {
    return a.tenant < b.tenant;
  });
  return out;
}

}  // namespace slm::serve
