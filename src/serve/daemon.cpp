#include "serve/daemon.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "core/attack.hpp"
#include "core/checkpoint.hpp"
#include "core/fabric.hpp"
#include "core/parallel.hpp"
#include "crypto/aes128.hpp"
#include "obs/jsonl.hpp"
#include "store/replay.hpp"
#include "store/trace_store.hpp"

namespace slm::serve {

namespace fs = std::filesystem;

namespace {

std::string hex_byte(std::uint8_t b) {
  char buf[8];
  std::snprintf(buf, sizeof buf, "0x%02x", b);
  return buf;
}

// Hexfloat: the exact bits, so byte-comparing two result files IS the
// bit-exactness claim (same idiom as `slm merge --report`).
std::string hexfloat(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

/// Atomic write: result.json appearing at all means the job finished —
/// a daemon killed mid-write leaves only the tmp file, and the restart
/// recovery scan reruns the job from its checkpoint.
void write_atomic(const std::string& path, const std::string& body) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) throw Error("serve: cannot write '" + tmp + "'");
    os << body << '\n';
  }
  fs::rename(tmp, path);
}

/// The deterministic outcome record of one job. Excludes everything
/// schedule-dependent (timings, resume points, thread counts) on
/// purpose: a preempted-and-resumed run and an uninterrupted run of the
/// same job must produce byte-identical files (serve_smoke diffs them).
struct SliceOutcome {
  bool completed = false;
  bool success = false;
  std::uint64_t traces_done = 0;  ///< resume point when preempted
  std::string result_json;        ///< set iff completed
};

obs::JsonWriter result_header(const JobSpec& spec) {
  obs::JsonWriter w;
  w.field("job", spec.id)
      .field("tenant", spec.tenant)
      .field("kind", job_kind_name(spec.kind))
      .field("circuit", circuit_cli_name(spec.circuit))
      .field("mode", mode_cli_name(spec.mode))
      .field("traces", static_cast<std::uint64_t>(spec.traces));
  return w;
}

SliceOutcome run_attack_slice(const QueuedJob& job, std::uint64_t halt_after,
                              core::ThreadPool* pool,
                              obs::CampaignObserver* job_ob) {
  const JobSpec& spec = job.spec;
  core::StealthyAttack attack(spec.circuit);
  core::RunOptions ro;
  ro.observer = job_ob;
  ro.checkpoint_dir = job.dir + "/ckpt";
  ro.resume = true;  // missing snapshot = fresh start
  ro.halt_after_traces = halt_after;
  ro.pool = pool;
  SliceOutcome out;
  try {
    if (spec.kind == JobKind::kFullKey) {
      core::FullKeyOptions fk;
      fk.run = ro;
      const auto r = attack.recover_full_key(spec.traces, spec.mode,
                                             /*threads=*/1, fk);
      out.completed = true;
      out.success = r.success;
      out.traces_done = spec.traces;
      obs::JsonWriter w = result_header(spec);
      w.field("success", r.success)
          .field("last_round_key", crypto::block_to_hex(r.last_round_key))
          .field("master_key", crypto::block_to_hex(r.master_key))
          .field("bytes_early_exited",
                 static_cast<std::uint64_t>(r.bytes_early_exited));
      out.result_json = w.str();
    } else {
      const auto r = attack.recover_key_byte(spec.key_byte, spec.traces,
                                             spec.mode, /*threads=*/1, ro);
      out.completed = true;
      out.success = r.success;
      out.traces_done = spec.traces;
      obs::JsonWriter w = result_header(spec);
      w.field("key_byte", static_cast<std::uint64_t>(spec.key_byte))
          .field("success", r.success)
          .field("true", hex_byte(r.true_value))
          .field("recovered", hex_byte(r.recovered))
          .field("mtd_traces",
                 static_cast<std::uint64_t>(r.mtd.traces.value_or(0)))
          .field("margin", hexfloat(r.mtd.final_margin));
      out.result_json = w.str();
    }
  } catch (const core::CampaignHalted& h) {
    out.completed = false;
    out.traces_done = h.traces();
  }
  return out;
}

SliceOutcome run_tvla_slice(const QueuedJob& job,
                            obs::CampaignObserver* job_ob) {
  const JobSpec& spec = job.spec;
  core::StealthyAttack attack(spec.circuit);
  core::CampaignConfig cfg =
      attack.byte_campaign_config(spec.key_byte, spec.traces, spec.mode);
  cfg.observer = job_ob;
  core::CpaCampaign campaign(attack.setup(), cfg);
  const sca::WelchTTest t = campaign.run_tvla(spec.traces);
  SliceOutcome out;
  out.completed = true;
  out.success = true;  // an assessment always "succeeds"; leakage is data
  out.traces_done = spec.traces;
  obs::JsonWriter w = result_header(spec);
  w.field("success", true)
      .field("leakage_detected", t.leakage_detected())
      .field("max_abs_t", hexfloat(t.max_abs_t()));
  out.result_json = w.str();
  return out;
}

SliceOutcome run_fabric_slice(const QueuedJob& job,
                              const std::string& slm_binary,
                              obs::CampaignObserver* job_ob) {
  const JobSpec& spec = job.spec;
  core::CoordinateOptions co;
  co.slm_binary = slm_binary;
  co.work_dir = job.dir + "/fabric";
  co.total_traces = spec.traces;
  co.shards = spec.fabric_shards;
  co.observer = job_ob;
  co.worker_args = {"--circuit",      circuit_cli_name(spec.circuit),
                    "--mode",         mode_cli_name(spec.mode),
                    "--key-byte",     std::to_string(spec.key_byte),
                    "--rng-contract", "v2",
                    "--traces",       std::to_string(spec.traces)};
  const core::CoordinateResult cr = core::coordinate_local(co);

  const core::AccumulatorSnapshot merged = core::load_snapshot(cr.merged_path);
  const sca::CpaEngine engine =
      core::fold_snapshot_byte(merged, spec.key_byte);
  core::StealthyAttack attack(spec.circuit);
  const std::uint8_t truth =
      attack.setup().victim().cipher().last_round_key()[spec.key_byte];
  const std::uint8_t recovered =
      static_cast<std::uint8_t>(engine.best_guess());

  SliceOutcome out;
  out.completed = true;
  out.success = recovered == truth;
  out.traces_done = spec.traces;
  obs::JsonWriter w = result_header(spec);
  w.field("key_byte", static_cast<std::uint64_t>(spec.key_byte))
      .field("success", out.success)
      .field("true", hex_byte(truth))
      .field("recovered", hex_byte(recovered))
      .field("corr", hexfloat(engine.max_abs_correlation()[recovered]))
      .field("fabric_shards", static_cast<std::uint64_t>(spec.fabric_shards));
  out.result_json = w.str();
  return out;
}

/// kAnalyze: one fused one-pass replay of the job's SLMTRC1 store
/// (store::replay_all), campaign inferred from the store identity the
/// same way `slm analyze` does. No capture, no checkpoints — the sweep
/// runs at fold speed, so the slice is non-preemptible by construction.
SliceOutcome run_analyze_slice(const QueuedJob& job,
                               obs::CampaignObserver* job_ob) {
  const JobSpec& spec = job.spec;
  store::TraceStoreReader reader(spec.store);
  const store::StoreIdentity& id = reader.identity();
  const store::StoreKind kind = reader.kind();
  const std::size_t n = reader.trace_count();
  const auto circuit = static_cast<core::BenignCircuit>(id.circuit);
  const auto mode = static_cast<core::SensorMode>(id.mode);
  const std::size_t key_byte = static_cast<std::size_t>(id.target_key_byte);

  core::StealthyAttack attack(circuit);
  core::CampaignConfig cfg =
      kind == store::StoreKind::kFullKey
          ? attack.fullkey_campaign_config(n, mode)
          : attack.byte_campaign_config(
                key_byte, kind == store::StoreKind::kTvla ? n / 2 : n, mode);
  cfg.rng_contract = id.rng_contract == 1 ? core::RngContract::kV1
                                          : core::RngContract::kV2;
  core::CpaCampaign campaign(attack.setup(), cfg);
  reader.identity().require_compatible(campaign.store_identity(kind, n),
                                       "serve analyze job " + spec.id);

  store::ReplayAllOptions aopts;
  if (kind == store::StoreKind::kTvla) {
    aopts.attack = false;
    aopts.fullkey = false;
  }
  const store::ReplayAllResult ar = store::replay_all(
      reader, core::checkpoint_schedule(cfg.checkpoints, n),
      attack.setup().victim().cipher().last_round_key(), aopts, job_ob);

  SliceOutcome out;
  out.completed = true;
  out.traces_done = n;
  obs::JsonWriter w = result_header(spec);
  w.field("store_kind", store::store_kind_name(kind))
      .field("store_traces", static_cast<std::uint64_t>(n));
  if (ar.has_attack) {
    w.field("attack_recovered", hex_byte(ar.attack.recovered_guess))
        .field("attack_success", ar.attack.key_recovered);
  }
  if (ar.has_fullkey) {
    w.field("master_key",
            crypto::block_to_hex(crypto::recover_master_key(
                ar.fullkey.recovered_last_round_key)))
        .field("fullkey_success", ar.fullkey.success);
  }
  if (ar.has_tvla) {
    w.field("leakage_detected", ar.tvla.leakage_detected)
        .field("max_abs_t", hexfloat(ar.tvla.max_abs_t));
  }
  out.success = kind == store::StoreKind::kTvla ? ar.tvla.leakage_detected
                                                : ar.fullkey.success;
  w.field("success", out.success);
  out.result_json = w.str();
  return out;
}

/// Where a slice must stop so the job yields after ~`timeslice` more
/// traces: 0 (run to completion) when no other work is queued, when
/// timeslicing is off, or when the first checkpoint past the budget is
/// already the job's final one (halting there would just re-run the
/// finish). Preemption granularity IS the checkpoint grid — that's what
/// makes it bit-exact for free.
std::uint64_t slice_halt_point(const JobSpec& spec, std::uint64_t traces_done,
                               std::uint64_t timeslice, bool others_waiting) {
  if (timeslice == 0 || !others_waiting) return 0;
  if (spec.kind == JobKind::kTvla || spec.kind == JobKind::kAnalyze ||
      spec.fabric_shards > 0) {
    return 0;  // non-preemptible: no checkpoint support / own processes
  }
  const std::uint64_t want = traces_done + timeslice;
  for (const std::size_t cp : core::default_checkpoints(spec.traces)) {
    if (cp >= want) {
      return cp >= spec.traces ? 0 : want;
    }
  }
  return 0;
}

void move_to_rejected(const fs::path& file, const fs::path& spool) {
  const fs::path dir = spool / "rejected";
  std::error_code ec;
  fs::create_directories(dir, ec);
  fs::rename(file, dir / file.filename(), ec);
  if (ec) fs::remove(file, ec);  // cross-device fallback: drop it loudly
}

std::vector<fs::path> spool_files(const fs::path& spool) {
  std::vector<fs::path> files;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(spool, ec)) {
    if (e.is_regular_file() && e.path().extension() == ".json") {
      files.push_back(e.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

ServeReport serve(const ServeOptions& opt) {
  SLM_REQUIRE(!opt.spool_dir.empty(), "serve: need a spool directory");
  SLM_REQUIRE(!opt.results_dir.empty(), "serve: need a results directory");
  const fs::path spool(opt.spool_dir);
  const fs::path results(opt.results_dir);
  fs::create_directories(spool / "rejected");
  fs::create_directories(results);

  obs::CampaignObserver ob((results / "serve.jsonl").string());
  obs::MetricsRegistry& m = ob.metrics();
  FairShareScheduler sched(opt.max_queue);
  ServeReport rep;
  // Watcher-vs-loop shared counters live behind this lock; the
  // scheduler and the observer have their own.
  std::mutex rep_m;

  const unsigned threads = core::resolve_threads(opt.threads);
  core::ThreadPool pool(threads);

  ob.event("serve_start", obs::JsonWriter()
                              .field("spool", opt.spool_dir)
                              .field("results", opt.results_dir)
                              .field("max_queue",
                                     static_cast<std::uint64_t>(opt.max_queue))
                              .field("timeslice", opt.timeslice_traces)
                              .field("threads",
                                     static_cast<std::uint64_t>(threads)));

  const auto emit_state = [&](const std::string& running) {
    std::uint64_t admitted, recovered, rejected, completed, failed,
        preemptions, slices;
    {
      std::lock_guard<std::mutex> g(rep_m);
      admitted = rep.jobs_admitted;
      recovered = rep.jobs_recovered;
      rejected = rep.jobs_rejected;
      completed = rep.jobs_completed;
      failed = rep.jobs_failed;
      preemptions = rep.preemptions;
      slices = rep.slices;
    }
    const auto shares = sched.shares();
    m.set("slm.serve.queue_depth", static_cast<double>(sched.depth()));
    m.set("slm.serve.tenants", static_cast<double>(shares.size()));
    ob.event("serve_state",
             obs::JsonWriter()
                 .field("queue_depth", static_cast<std::uint64_t>(sched.depth()))
                 .field("running", running)
                 .field("slices", slices)
                 .field("admitted", admitted)
                 .field("recovered", recovered)
                 .field("rejected", rejected)
                 .field("completed", completed)
                 .field("failed", failed)
                 .field("preemptions", preemptions));
    for (const TenantShare& s : shares) {
      ob.event("tenant_share", obs::JsonWriter()
                                   .field("tenant", s.tenant)
                                   .field("charged", s.charged)
                                   .field("pending",
                                          static_cast<std::uint64_t>(s.pending)));
    }
  };

  // Restart recovery: any per-job directory with a job.json but no
  // result.json is a job a previous daemon admitted and never finished.
  // Re-admit it (capacity-exempt — it was admitted once already) at its
  // checkpoint's trace count. Fair-share charge restarts from zero:
  // service accounting is per daemon lifetime.
  {
    std::vector<fs::path> dirs;
    std::error_code ec;
    for (const auto& e : fs::directory_iterator(results, ec)) {
      if (e.is_directory() && fs::exists(e.path() / "job.json") &&
          !fs::exists(e.path() / "result.json")) {
        dirs.push_back(e.path());
      }
    }
    std::sort(dirs.begin(), dirs.end());
    std::uint64_t seq = 0;
    for (const fs::path& d : dirs) {
      QueuedJob qj;
      try {
        qj.spec = load_job_file((d / "job.json").string());
      } catch (const JobSpecError&) {
        continue;  // half-written job dir from a crash mid-admit
      }
      qj.dir = d.string();
      qj.seq = seq++;
      if (const auto ck = core::load_checkpoint((d / "ckpt").string())) {
        qj.traces_done = ck->traces_done;
      }
      m.add("slm.serve.jobs_recovered_total");
      ob.event("job_recovered", obs::JsonWriter()
                                    .field("job", qj.spec.id)
                                    .field("tenant", qj.spec.tenant)
                                    .field("traces_done", qj.traces_done));
      {
        std::lock_guard<std::mutex> g(rep_m);
        ++rep.jobs_recovered;
      }
      sched.requeue(std::move(qj));
    }
  }

  // Spool watcher: the only admitter. Runs concurrently with the serve
  // loop popping — the mutex-guarded scheduler is the contended surface
  // serve_tsan races.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> empty_scans{0};
  std::thread watcher([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::vector<fs::path> files = spool_files(spool);
      if (files.empty()) {
        empty_scans.fetch_add(1, std::memory_order_acq_rel);
      } else {
        empty_scans.store(0, std::memory_order_release);
      }
      for (const fs::path& f : files) {
        const auto reject = [&](const char* reason) {
          move_to_rejected(f, spool);
          m.add("slm.serve.rejected");
          ob.event("job_rejected", obs::JsonWriter()
                                       .field("file", f.filename().string())
                                       .field("reason", reason));
          std::lock_guard<std::mutex> g(rep_m);
          ++rep.jobs_rejected;
        };
        // Nothing may escape this thread — an uncaught exception here is
        // std::terminate for the whole daemon — so every failure mode
        // maps to a rejection: malformed specs, a full queue, and
        // filesystem errors while staging the job directory.
        try {
          JobSpec spec = load_job_file(f.string());
          // Cheap early refusal; NOT a capacity guarantee. The serve
          // loop's capacity-exempt requeue() can refill the queue between
          // this check and the try_admit below, so admission itself must
          // (and does) re-check under the scheduler lock.
          if (sched.depth() >= sched.capacity()) {
            reject("queue_full");
            continue;
          }
          QueuedJob qj;
          qj.spec = spec;
          qj.dir = (results / spec.id).string();
          if (fs::exists(qj.dir)) {
            reject("duplicate_id");
            continue;
          }
          // Admit order matters for crash safety: job.json lands in the
          // results dir FIRST (the restart scan's source of truth), the
          // in-memory admit is second (it can still refuse — see above —
          // in which case the staged directory is undone), and the spool
          // file goes away last.
          fs::create_directories(qj.dir);
          write_atomic(qj.dir + "/job.json", job_to_json(spec));
          if (!sched.try_admit(qj)) {
            std::error_code ec;
            fs::remove_all(qj.dir, ec);  // a later resubmit is no duplicate
            reject("queue_full");
            continue;
          }
          std::error_code ec;
          fs::remove(f, ec);
          m.add("slm.serve.jobs_admitted_total");
          m.set("slm.serve.queue_depth", static_cast<double>(sched.depth()));
          ob.event("job_admitted",
                   obs::JsonWriter()
                       .field("job", spec.id)
                       .field("tenant", spec.tenant)
                       .field("priority", spec.priority)
                       .field("kind", job_kind_name(spec.kind))
                       .field("traces", spec.traces)
                       .field("queue_depth",
                              static_cast<std::uint64_t>(sched.depth())));
          {
            std::lock_guard<std::mutex> g(rep_m);
            ++rep.jobs_admitted;
          }
        } catch (const JobSpecError&) {
          reject("bad_spec");
        } catch (const std::exception&) {
          reject("admit_error");
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(opt.poll_ms));
    }
  });

  emit_state("");

  bool max_slices_tripped = false;
  while (true) {
    {
      std::lock_guard<std::mutex> g(rep_m);
      if (opt.max_slices > 0 && rep.slices >= opt.max_slices) {
        max_slices_tripped = true;
        break;
      }
    }
    std::optional<QueuedJob> job = sched.next();
    if (!job) {
      // Idle-drain exit only after a fresh rescan of our own: a job file
      // landing just after the watcher's last scan must keep the loop
      // alive (the watcher admits it next poll), not be mislabeled as a
      // halt or silently stranded.
      if (empty_scans.load(std::memory_order_acquire) >= opt.idle_polls &&
          sched.empty() && spool_files(spool).empty()) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(opt.poll_ms));
      continue;
    }

    const JobSpec& spec = job->spec;
    const std::uint64_t halt_after = slice_halt_point(
        spec, job->traces_done, opt.timeslice_traces, !sched.empty());
    ob.event("job_slice_start", obs::JsonWriter()
                                    .field("job", spec.id)
                                    .field("tenant", spec.tenant)
                                    .field("from", job->traces_done)
                                    .field("halt_after", halt_after));
    emit_state(spec.id);

    const double t0 = obs::monotonic_seconds();
    SliceOutcome out;
    bool failed = false;
    std::string error;
    try {
      obs::CampaignObserver job_ob(job->dir + "/events.jsonl");
      if (spec.kind == JobKind::kTvla) {
        out = run_tvla_slice(*job, &job_ob);
      } else if (spec.kind == JobKind::kAnalyze) {
        out = run_analyze_slice(*job, &job_ob);
      } else if (spec.fabric_shards > 0) {
        m.add("slm.serve.fabric_jobs_total");
        out = run_fabric_slice(*job, opt.slm_binary, &job_ob);
      } else {
        out = run_attack_slice(*job, halt_after, &pool, &job_ob);
      }
    } catch (const std::exception& e) {
      failed = true;
      error = e.what();
    }
    m.observe("slm.serve.slice_seconds", obs::monotonic_seconds() - t0);
    {
      std::lock_guard<std::mutex> g(rep_m);
      ++rep.slices;
    }

    if (failed) {
      // A failed job still writes its (non-deterministic) record so the
      // restart scan does not retry it forever; "failed":true marks it.
      obs::JsonWriter w = result_header(spec);
      w.field("failed", true).field("error", error);
      write_atomic(job->dir + "/result.json", w.str());
      m.add("slm.serve.jobs_failed_total");
      ob.event("job_failed", obs::JsonWriter()
                                 .field("job", spec.id)
                                 .field("tenant", spec.tenant)
                                 .field("error", error));
      std::lock_guard<std::mutex> g(rep_m);
      ++rep.jobs_failed;
    } else if (out.completed) {
      write_atomic(job->dir + "/result.json", out.result_json);
      sched.charge(spec.tenant, out.traces_done - job->traces_done);
      m.add("slm.serve.jobs_completed_total");
      m.add("slm.serve.job_traces_total",
            static_cast<double>(out.traces_done - job->traces_done));
      ob.event("job_done", obs::JsonWriter()
                               .field("job", spec.id)
                               .field("tenant", spec.tenant)
                               .field("success", out.success)
                               .field("traces", out.traces_done));
      std::lock_guard<std::mutex> g(rep_m);
      ++rep.jobs_completed;
    } else {
      sched.charge(spec.tenant, out.traces_done - job->traces_done);
      m.add("slm.serve.preemptions_total");
      m.add("slm.serve.job_traces_total",
            static_cast<double>(out.traces_done - job->traces_done));
      ob.event("job_preempted", obs::JsonWriter()
                                    .field("job", spec.id)
                                    .field("tenant", spec.tenant)
                                    .field("at", out.traces_done));
      job->traces_done = out.traces_done;
      {
        std::lock_guard<std::mutex> g(rep_m);
        ++rep.preemptions;
      }
      sched.requeue(std::move(*job));
    }
    emit_state("");
  }

  stop.store(true, std::memory_order_release);
  watcher.join();

  // `halted` is reserved for the max-slices path (CLI exit 12). Files
  // that slipped into the spool between the idle-drain rescan and the
  // watcher stopping are reported separately as spool_remaining — they
  // are not lost, the next serve() over the same spool admits them.
  rep.spool_remaining = spool_files(spool).size();
  rep.halted =
      max_slices_tripped && (!sched.empty() || rep.spool_remaining > 0);
  emit_state("");
  ob.write_manifest(
      obs::JsonWriter()
          .field("admitted", static_cast<std::uint64_t>(rep.jobs_admitted))
          .field("recovered", static_cast<std::uint64_t>(rep.jobs_recovered))
          .field("rejected", static_cast<std::uint64_t>(rep.jobs_rejected))
          .field("completed", static_cast<std::uint64_t>(rep.jobs_completed))
          .field("failed", static_cast<std::uint64_t>(rep.jobs_failed))
          .field("preemptions", static_cast<std::uint64_t>(rep.preemptions))
          .field("slices", static_cast<std::uint64_t>(rep.slices))
          .field("halted", rep.halted)
          .field("spool_remaining",
                 static_cast<std::uint64_t>(rep.spool_remaining)));
  return rep;
}

StatusSummary read_status(const std::string& results_dir,
                          const std::string& spool_dir) {
  StatusSummary s;
  std::ifstream is(fs::path(results_dir) / "serve.jsonl");
  if (is) {
    s.found = true;
    std::string line;
    while (std::getline(is, line)) {
      obs::FlatJson obj;
      try {
        obj = obs::FlatJson::parse(line);
      } catch (const Error&) {
        continue;  // torn tail of a live stream
      }
      const auto ev = obj.string_field("ev");
      if (!ev) continue;
      if (*ev == "serve_state") {
        s.queue_depth = obj.uint_field("queue_depth").value_or(0);
        s.slices = obj.uint_field("slices").value_or(0);
        s.completed = obj.uint_field("completed").value_or(0);
        s.failed = obj.uint_field("failed").value_or(0);
        s.rejected = obj.uint_field("rejected").value_or(0);
        s.preemptions = obj.uint_field("preemptions").value_or(0);
        s.running_job = obj.string_field("running").value_or("");
      } else if (*ev == "tenant_share") {
        const auto tenant = obj.string_field("tenant");
        if (!tenant) continue;
        StatusTenant* row = nullptr;
        for (StatusTenant& t : s.tenants) {
          if (t.tenant == *tenant) row = &t;
        }
        if (row == nullptr) {
          s.tenants.push_back(StatusTenant{*tenant, 0, 0});
          row = &s.tenants.back();
        }
        row->charged = obj.uint_field("charged").value_or(0);
        row->pending = obj.uint_field("pending").value_or(0);
      }
    }
  }
  if (!spool_dir.empty()) {
    s.spool_pending = spool_files(spool_dir).size();
  }
  std::sort(s.tenants.begin(), s.tenants.end(),
            [](const StatusTenant& a, const StatusTenant& b) {
              return a.tenant < b.tenant;
            });
  return s;
}

}  // namespace slm::serve
