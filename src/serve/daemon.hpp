// The `slm serve` daemon: campaign-as-a-service over a spool directory.
//
// One resident process multiplexes many tenants' campaign jobs over ONE
// shared core::ThreadPool. A spool-watcher thread admits job files into
// the bounded FairShareScheduler (admission control: excess or
// malformed files land in <spool>/rejected/, never silently dropped);
// the serve loop pops one fair-share timeslice at a time and runs it
// through the existing campaign engines. Preemption reuses the
// bit-exact checkpoint mechanism verbatim: a slice runs with
// halt_after_traces set to the next checkpoint past its budget, the
// engine throws CampaignHalted right after the SLMCKPT1 snapshot lands,
// and the job is requeued to resume from that snapshot later — so a
// job's final result is byte-identical to running it uninterrupted
// (serve_test / serve_smoke prove this, including across a daemon kill
// and restart). Everything observable streams as JSONL: the daemon's
// own feed at <results>/serve.jsonl plus one events.jsonl per job.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/observer.hpp"
#include "serve/scheduler.hpp"

namespace slm::serve {

struct ServeOptions {
  std::string spool_dir;    ///< *.json job files in; rejected/ subdir out
  std::string results_dir;  ///< serve.jsonl + one directory per job

  /// Bounded-queue capacity (admission control). Files found while the
  /// queue is full are rejected, not deferred: backpressure must be
  /// visible to tenants, and the spool itself is the retry buffer.
  std::size_t max_queue = kDefaultQueueCapacity;

  /// Traces one slice may add to a job before it is preempted (0 = run
  /// every job to completion). Actual preemption lands on the next
  /// checkpoint boundary past the budget; a slice is only capped when
  /// other work is queued (work-conserving), and never when the next
  /// boundary would already finish the job.
  std::uint64_t timeslice_traces = 0;

  /// Workers in the shared pool (0 = hardware concurrency). Every
  /// in-process slice runs on this one pool via CampaignConfig::pool.
  unsigned threads = 1;

  /// Stop after this many slices even if work remains (0 = off) — the
  /// deterministic stand-in for killing the daemon; `slm serve` exits
  /// with code 12 when this tripped with jobs still pending. A restart
  /// over the same directories resumes every unfinished job from its
  /// checkpoint.
  std::uint64_t max_slices = 0;

  /// Spool poll cadence and how many consecutive empty scans (with an
  /// empty queue) mean "drained, exit". A resident deployment sets
  /// idle_polls high; the CLI default drains and exits.
  std::uint64_t poll_ms = 25;
  std::uint64_t idle_polls = 2;

  /// Worker executable for fabric-dispatched jobs (empty = this binary
  /// via /proc/self/exe, resolved by the CLI).
  std::string slm_binary;
};

/// What one serve() run did — mirrored in the final `serve_state` event
/// and the `slm.serve.*` metrics.
struct ServeReport {
  std::size_t jobs_admitted = 0;
  std::size_t jobs_recovered = 0;  ///< re-admitted after a daemon restart
  std::size_t jobs_rejected = 0;   ///< queue-full + malformed spool files
  std::size_t jobs_completed = 0;
  std::size_t jobs_failed = 0;
  std::size_t preemptions = 0;
  std::size_t slices = 0;
  /// true ONLY when max_slices tripped with work remaining (CLI exit
  /// 12); a drained exit never sets it, even if spool_remaining > 0.
  bool halted = false;
  /// Job files still in the spool at exit that no rejection accounts
  /// for — arrivals that raced the shutdown. Never lost: the next
  /// serve() over the same spool admits them.
  std::size_t spool_remaining = 0;
};

/// Run the daemon loop until the spool drains (or max_slices trips).
/// Creates the spool/results directories as needed. On entry, scans
/// <results> for jobs a previous daemon left unfinished (job.json
/// present, result.json absent) and re-admits them at their checkpoint.
ServeReport serve(const ServeOptions& opt);

/// One tenant's row in `slm status`.
struct StatusTenant {
  std::string tenant;
  std::uint64_t charged = 0;
  std::uint64_t pending = 0;
};

/// Queue/tenant summary assembled from <results>/serve.jsonl and a
/// spool-directory count — read-only, safe against a live daemon.
struct StatusSummary {
  bool found = false;  ///< serve.jsonl existed
  std::uint64_t queue_depth = 0;
  std::uint64_t slices = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t spool_pending = 0;  ///< job files not yet admitted
  std::string running_job;          ///< last slice started, "" when done
  std::vector<StatusTenant> tenants;
};

StatusSummary read_status(const std::string& results_dir,
                          const std::string& spool_dir);

}  // namespace slm::serve
