// Campaign-as-a-service job specs (docs/SERVE.md).
//
// A job is one campaign request from one tenant: a single-byte attack,
// a fused full-key attack, or a TVLA leakage assessment. Jobs travel as
// one-object JSON files: `slm submit` writes them into a spool
// directory, the `slm serve` daemon admits them into its bounded
// fair-share queue. No network stack — the spool directory IS the
// submission API, which keeps the protocol inspectable with `ls` and
// `cat` and makes the daemon trivially crash-safe (a job file is moved,
// never mutated).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.hpp"
#include "core/campaign.hpp"
#include "core/setup.hpp"

namespace slm::serve {

/// Malformed or out-of-range job file / submit request (CLI exit 11).
class JobSpecError : public Error {
 public:
  using Error::Error;
};

/// Admission control: the bounded queue (or the spool backing it) is at
/// capacity and the job was refused (CLI exit 10, `slm.serve.rejected`).
class QueueFullError : public Error {
 public:
  using Error::Error;
};

enum class JobKind {
  kAttack,   ///< single last-round key byte, CPA
  kFullKey,  ///< fused 16-byte campaign (recover_full_key)
  kTvla,     ///< Welch t-test leakage assessment (non-preemptible)
  kAnalyze,  ///< fused one-pass replay of an SLMTRC1 store
             ///< (store::replay_all; non-preemptible)
};

const char* job_kind_name(JobKind k);

/// Bounded-queue capacity both `slm submit` (spool backpressure) and the
/// daemon scheduler default to; --queue-cap / --max-queue override it.
inline constexpr std::size_t kDefaultQueueCapacity = 8;

/// One tenant's campaign request. Field names match the JSON schema in
/// docs/SERVE.md one to one.
struct JobSpec {
  std::string id;      ///< spool-file stem; assigned by `slm submit`
  std::string tenant;  ///< required — the fair-share accounting key
  std::int64_t priority = 0;  ///< higher first among a tenant's own jobs
  JobKind kind = JobKind::kAttack;
  core::BenignCircuit circuit = core::BenignCircuit::kAlu;
  core::SensorMode mode = core::SensorMode::kTdcFull;
  std::uint64_t traces = 20000;  ///< per population for kTvla
  std::uint64_t key_byte = 3;    ///< kAttack only
  /// kAttack only, shards > 0: dispatch the capture to that many
  /// `core::fabric` worker subprocesses and fold their SLMSNAP1
  /// snapshots instead of running in-process (non-preemptible).
  unsigned fabric_shards = 0;
  /// kAnalyze only (required there): path to the SLMTRC1 store the
  /// fused one-pass replay sweeps. The store's own identity supplies
  /// circuit/mode/traces; the spec fields are informational.
  std::string store;
};

/// Parse + validate one job object. `where` names the source (file
/// path, "submit") for error messages. Throws JobSpecError on malformed
/// JSON, unknown fields values, a missing tenant, a zero trace budget,
/// or an id that is not a safe results-directory name (must match
/// [A-Za-z0-9._-]+ with no leading dot — ids become <results>/<id>, so
/// separators and ".." would be path traversal from the spool).
JobSpec parse_job_json(std::string_view text, const std::string& where);

/// Read `path` and parse it; the job id becomes the file stem.
JobSpec load_job_file(const std::string& path);

/// Serialize (the exact schema parse_job_json accepts — round-trips).
std::string job_to_json(const JobSpec& spec);

/// Name <-> enum helpers shared with the CLI ("attack" / "full-key" /
/// "tvla" / "analyze"; circuits "alu" / "c6288"; modes "tdc" /
/// "tdc-bit" / "hw" / "bit" / "ro"). The from_* directions throw
/// JobSpecError.
JobKind job_kind_from_name(std::string_view name, const std::string& where);
core::BenignCircuit circuit_from_name(std::string_view name,
                                      const std::string& where);
core::SensorMode mode_from_name(std::string_view name,
                                const std::string& where);
const char* circuit_cli_name(core::BenignCircuit c);
const char* mode_cli_name(core::SensorMode m);

}  // namespace slm::serve
