// Bounded multi-tenant fair-share scheduler for the `slm serve` daemon.
//
// The scheduling unit is one TIMESLICE of one job (the daemon halts a
// running campaign at a checkpoint boundary, requeues it, and resumes
// it later — see daemon.hpp), so "fair share" is enforced in trace
// counts actually served, not in jobs started: next() always hands out
// a job of the tenant with the LEAST cumulative service. All state is
// mutex-guarded — the spool-watcher thread admits concurrently with the
// serve loop popping (serve_tsan races exactly this surface).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/job.hpp"

namespace slm::serve {

/// A job queued for (more) execution. `traces_done` is its checkpoint
/// resume point — 0 for a fresh job, the halt checkpoint after a
/// preemption, whatever `campaign.ckpt` says after a daemon restart.
struct QueuedJob {
  JobSpec spec;
  std::string dir;               ///< per-job results directory
  std::uint64_t traces_done = 0;
  std::uint64_t seq = 0;  ///< admission order; assigned by the scheduler
};

/// One tenant's standing for `slm status`: service received so far (in
/// traces) and jobs still queued.
struct TenantShare {
  std::string tenant;
  std::uint64_t charged = 0;
  std::size_t pending = 0;
};

class FairShareScheduler {
 public:
  explicit FairShareScheduler(std::size_t capacity = kDefaultQueueCapacity);

  std::size_t capacity() const { return capacity_; }
  std::size_t depth() const;
  bool empty() const { return depth() == 0; }

  /// Admit a NEW job unless the queue is at capacity: the check and the
  /// insertion are one critical section, so a concurrent requeue() can
  /// never invalidate a caller's earlier depth() reading. Returns false
  /// (leaving the queue untouched) when full; assigns the admission
  /// sequence number on success.
  bool try_admit(QueuedJob job);

  /// try_admit that throws QueueFullError instead of returning false —
  /// for callers (CLI edge, tests) that want refusal as an exception.
  /// The daemon's spool watcher must use try_admit: an exception
  /// escaping that thread would std::terminate the whole process.
  void admit(QueuedJob job);

  /// Put a preempted job back. Exempt from the capacity check — the job
  /// was already admitted, and bouncing it would lose its checkpoint.
  /// Keeps the original seq, so a tenant's preempted job stays ahead of
  /// its later submissions at equal priority.
  void requeue(QueuedJob job);

  /// Pop the next job to run: the one whose tenant has the smallest
  /// cumulative charged service; ties broken by higher priority, then
  /// admission order. Deterministic — no clocks, no randomness — so a
  /// replayed spool schedules identically. nullopt when empty.
  std::optional<QueuedJob> next();

  /// Account `traces` of service to `tenant` (called after each slice).
  void charge(const std::string& tenant, std::uint64_t traces);

  /// Per-tenant standings, sorted by tenant name. Includes tenants with
  /// charged service but nothing queued right now.
  std::vector<TenantShare> shares() const;

 private:
  mutable std::mutex m_;
  std::size_t capacity_;
  std::uint64_t next_seq_ = 0;
  std::vector<QueuedJob> queue_;
  std::unordered_map<std::string, std::uint64_t> charged_;
};

}  // namespace slm::serve
