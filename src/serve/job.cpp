#include "serve/job.hpp"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/jsonl.hpp"

namespace slm::serve {

namespace {

// A job id becomes a results-directory name (<results>/<id>), and the
// spool is writable by every tenant — so anything that could escape or
// hide inside the results tree is refused outright: path separators,
// ".." (via the leading-dot rule), and every character outside
// [A-Za-z0-9._-]. Mirrors the tenant-tag sanitization in `slm submit`.
void validate_job_id(const std::string& id, const std::string& where) {
  bool ok = !id.empty() && id.front() != '.';
  for (const char c : id) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '.' &&
        c != '_' && c != '-') {
      ok = false;
      break;
    }
  }
  if (!ok) {
    throw JobSpecError(where + ": job id '" + id +
                       "' must match [A-Za-z0-9._-]+ and not start "
                       "with '.'");
  }
}

}  // namespace

const char* job_kind_name(JobKind k) {
  switch (k) {
    case JobKind::kAttack:
      return "attack";
    case JobKind::kFullKey:
      return "full-key";
    case JobKind::kTvla:
      return "tvla";
    case JobKind::kAnalyze:
      return "analyze";
  }
  return "?";
}

JobKind job_kind_from_name(std::string_view name, const std::string& where) {
  if (name == "attack") return JobKind::kAttack;
  if (name == "full-key") return JobKind::kFullKey;
  if (name == "tvla") return JobKind::kTvla;
  if (name == "analyze") return JobKind::kAnalyze;
  throw JobSpecError(where + ": unknown job kind '" + std::string(name) +
                     "' (want attack | full-key | tvla | analyze)");
}

core::BenignCircuit circuit_from_name(std::string_view name,
                                      const std::string& where) {
  if (name == "alu") return core::BenignCircuit::kAlu;
  if (name == "c6288") return core::BenignCircuit::kC6288x2;
  throw JobSpecError(where + ": unknown circuit '" + std::string(name) +
                     "' (want alu | c6288)");
}

core::SensorMode mode_from_name(std::string_view name,
                                const std::string& where) {
  if (name == "tdc") return core::SensorMode::kTdcFull;
  if (name == "tdc-bit") return core::SensorMode::kTdcSingleBit;
  if (name == "hw") return core::SensorMode::kBenignHw;
  if (name == "bit") return core::SensorMode::kBenignSingleBit;
  if (name == "ro") return core::SensorMode::kRoCounter;
  throw JobSpecError(where + ": unknown mode '" + std::string(name) +
                     "' (want tdc | tdc-bit | hw | bit | ro)");
}

const char* circuit_cli_name(core::BenignCircuit c) {
  return c == core::BenignCircuit::kC6288x2 ? "c6288" : "alu";
}

const char* mode_cli_name(core::SensorMode m) {
  switch (m) {
    case core::SensorMode::kTdcFull:
      return "tdc";
    case core::SensorMode::kTdcSingleBit:
      return "tdc-bit";
    case core::SensorMode::kBenignHw:
      return "hw";
    case core::SensorMode::kBenignSingleBit:
      return "bit";
    case core::SensorMode::kRoCounter:
      return "ro";
  }
  return "?";
}

JobSpec parse_job_json(std::string_view text, const std::string& where) {
  obs::FlatJson obj;
  try {
    obj = obs::FlatJson::parse(text);
  } catch (const Error& e) {
    throw JobSpecError(where + ": not a JSON object (" + e.what() + ")");
  }

  static constexpr std::string_view kKnown[] = {
      "id",     "tenant", "priority", "kind",          "circuit",
      "mode",   "traces", "key_byte", "fabric_shards", "store",
  };
  for (const auto& [key, value] : obj.raw_fields()) {
    bool known = false;
    for (const std::string_view k : kKnown) {
      if (key == k) {
        known = true;
        break;
      }
    }
    if (!known) {
      throw JobSpecError(where + ": unknown job field '" + key + "'");
    }
    (void)value;
  }

  JobSpec spec;
  if (const auto id = obj.string_field("id")) {
    validate_job_id(*id, where);
    spec.id = *id;
  }
  const auto tenant = obj.string_field("tenant");
  if (!tenant || tenant->empty()) {
    throw JobSpecError(where + ": job needs a non-empty \"tenant\"");
  }
  spec.tenant = *tenant;

  if (obj.has("priority")) {
    const auto p = obj.number_field("priority");
    if (!p) throw JobSpecError(where + ": \"priority\" must be a number");
    spec.priority = static_cast<std::int64_t>(*p);
  }
  if (obj.has("kind")) {
    const auto k = obj.string_field("kind");
    if (!k) throw JobSpecError(where + ": \"kind\" must be a string");
    spec.kind = job_kind_from_name(*k, where);
  }
  if (obj.has("circuit")) {
    const auto c = obj.string_field("circuit");
    if (!c) throw JobSpecError(where + ": \"circuit\" must be a string");
    spec.circuit = circuit_from_name(*c, where);
  }
  if (obj.has("mode")) {
    const auto m = obj.string_field("mode");
    if (!m) throw JobSpecError(where + ": \"mode\" must be a string");
    spec.mode = mode_from_name(*m, where);
  }
  if (obj.has("traces")) {
    const auto t = obj.uint_field("traces");
    if (!t || *t == 0) {
      throw JobSpecError(where +
                         ": \"traces\" must be a positive integer");
    }
    spec.traces = *t;
  }
  if (obj.has("key_byte")) {
    const auto b = obj.uint_field("key_byte");
    if (!b || *b > 15) {
      throw JobSpecError(where + ": \"key_byte\" must be in [0, 15]");
    }
    spec.key_byte = *b;
  }
  if (obj.has("fabric_shards")) {
    const auto f = obj.uint_field("fabric_shards");
    if (!f || *f > 64) {
      throw JobSpecError(where +
                         ": \"fabric_shards\" must be an integer in [0, 64]");
    }
    if (*f > 0 && spec.kind != JobKind::kAttack) {
      throw JobSpecError(where +
                         ": fabric_shards only applies to attack jobs");
    }
    spec.fabric_shards = static_cast<unsigned>(*f);
  }
  if (obj.has("store")) {
    const auto s = obj.string_field("store");
    if (!s) throw JobSpecError(where + ": \"store\" must be a string");
    if (!s->empty() && spec.kind != JobKind::kAnalyze) {
      throw JobSpecError(where + ": store only applies to analyze jobs");
    }
    spec.store = *s;
  }
  if (spec.kind == JobKind::kAnalyze && spec.store.empty()) {
    throw JobSpecError(where +
                       ": analyze jobs need a non-empty \"store\" path");
  }
  return spec;
}

JobSpec load_job_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw JobSpecError(path + ": cannot read job file");
  std::ostringstream buf;
  buf << is.rdbuf();
  JobSpec spec = parse_job_json(buf.str(), path);
  if (spec.id.empty()) {
    spec.id = std::filesystem::path(path).stem().string();
    validate_job_id(spec.id, path);  // a stem can still be "." or ".foo"
  }
  return spec;
}

std::string job_to_json(const JobSpec& spec) {
  obs::JsonWriter w;
  if (!spec.id.empty()) w.field("id", spec.id);
  w.field("tenant", spec.tenant)
      .field("priority", static_cast<std::int64_t>(spec.priority))
      .field("kind", job_kind_name(spec.kind))
      .field("circuit", circuit_cli_name(spec.circuit))
      .field("mode", mode_cli_name(spec.mode))
      .field("traces", static_cast<std::uint64_t>(spec.traces))
      .field("key_byte", static_cast<std::uint64_t>(spec.key_byte))
      .field("fabric_shards", static_cast<std::uint64_t>(spec.fabric_shards));
  if (!spec.store.empty()) w.field("store", spec.store);
  return w.str();
}

}  // namespace slm::serve
