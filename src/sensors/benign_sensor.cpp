#include "sensors/benign_sensor.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace slm::sensors {

BenignSensor::BenignSensor(const netlist::Netlist& nl,
                           const BitVec& reset_stimulus,
                           const BitVec& measure_stimulus,
                           const BenignSensorConfig& cfg) {
  SLM_REQUIRE(!nl.outputs().empty(), "BenignSensor: circuit has no endpoints");
  timing::TimedSimulator sim(nl);
  transition_ = sim.simulate_transition(reset_stimulus, measure_stimulus);
  capture_ = std::make_unique<timing::OverclockedCapture>(
      transition_.endpoint_waveforms, cfg.capture, cfg.seed);
  compiled_ = std::make_unique<timing::CompiledCapture>(*capture_);
}

bool BenignSensor::sample_toggle_bit(std::size_t i, double v,
                                     Xoshiro256& rng) const {
  const bool captured = capture_->sample_bit(i, v, rng);
  return captured != transition_.endpoint_waveforms[i].initial_value();
}

std::size_t BenignSensor::sample_toggle_hw(
    const std::vector<std::size_t>& bits, double v, Xoshiro256& rng) const {
  const BitVec captured = capture_->sample_subset(bits, v, rng);
  std::size_t hw = 0;
  for (std::size_t i : bits) {
    if (captured.get(i) != transition_.endpoint_waveforms[i].initial_value()) {
      ++hw;
    }
  }
  return hw;
}

double BenignSensor::max_settle_time_ns() const {
  double worst = 0.0;
  for (const auto& wf : transition_.endpoint_waveforms) {
    worst = std::max(worst, wf.settle_time());
  }
  return worst;
}

void BenignSensorBank::add(std::shared_ptr<const BenignSensor> sensor) {
  SLM_REQUIRE(sensor != nullptr, "BenignSensorBank: null sensor");
  sensors_.push_back(std::move(sensor));
}

std::size_t BenignSensorBank::endpoint_count() const {
  std::size_t n = 0;
  for (const auto& s : sensors_) n += s->endpoint_count();
  return n;
}

BitVec BenignSensorBank::sample_toggles(double v, Xoshiro256& rng) const {
  SLM_REQUIRE(!sensors_.empty(), "BenignSensorBank: empty bank");
  BitVec word(endpoint_count());
  std::size_t base = 0;
  for (const auto& s : sensors_) {
    const BitVec part = s->sample_toggles(v, rng);
    for (std::size_t i = 0; i < part.size(); ++i) {
      word.set(base + i, part.get(i));
    }
    base += part.size();
  }
  return word;
}

bool BenignSensorBank::sample_toggle_bit(std::size_t global_i, double v,
                                         Xoshiro256& rng) const {
  std::size_t base = 0;
  for (const auto& s : sensors_) {
    if (global_i < base + s->endpoint_count()) {
      return s->sample_toggle_bit(global_i - base, v, rng);
    }
    base += s->endpoint_count();
  }
  throw Error("BenignSensorBank::sample_toggle_bit: index out of range");
}

std::size_t BenignSensorBank::sample_toggle_hw(
    const std::vector<std::size_t>& global_bits, double v,
    Xoshiro256& rng) const {
  SLM_REQUIRE(!sensors_.empty(), "BenignSensorBank: empty bank");
  // Split the global indices per instance, preserving one common-jitter
  // draw per instance (matching sample_toggles semantics).
  std::size_t hw = 0;
  std::size_t base = 0;
  std::vector<std::size_t> local;
  for (const auto& s : sensors_) {
    local.clear();
    for (std::size_t g : global_bits) {
      if (g >= base && g < base + s->endpoint_count()) {
        local.push_back(g - base);
      }
    }
    if (!local.empty()) {
      hw += s->sample_toggle_hw(local, v, rng);
    }
    base += s->endpoint_count();
  }
  return hw;
}

const BenignSensor& BenignSensorBank::instance(std::size_t i) const {
  SLM_REQUIRE(i < sensors_.size(), "BenignSensorBank: bad instance");
  return *sensors_[i];
}

BenignSensorBank::CompiledHwPlan BenignSensorBank::compile_hw_plan(
    const std::vector<std::size_t>& global_bits) const {
  SLM_REQUIRE(!sensors_.empty(), "BenignSensorBank: empty bank");
  CompiledHwPlan plan;
  std::size_t base = 0;
  for (const auto& s : sensors_) {
    CompiledHwPlan::Part part;
    for (std::size_t g : global_bits) {
      if (g >= base && g < base + s->endpoint_count()) {
        part.idx.push_back(static_cast<std::uint32_t>(g - base));
      }
    }
    if (!part.idx.empty()) {
      part.packed = s->compiled().pack_subset(part.idx);
      plan.draws_per_sample += 1 + part.idx.size();
      plan.parts.push_back(std::move(part));
    }
    base += s->endpoint_count();
  }
  // One capture clock across all instances (the usual case) lets the
  // batch kernel divide once per sample and reuse the nominal instant.
  plan.uniform_clock = true;
  for (const auto& part : plan.parts) {
    plan.uniform_clock =
        plan.uniform_clock && plan.parts.front().packed.same_clock(part.packed);
  }
  return plan;
}

void BenignSensorBank::toggle_hw_batch(const CompiledHwPlan& plan,
                                       const double* v, std::size_t n,
                                       Xoshiro256& rng, double* y) const {
  if (plan.draws_per_sample == 0) {
    for (std::size_t j = 0; j < n; ++j) y[j] = 0.0;
    return;
  }
  thread_local std::vector<double> z;
  z.resize(n * plan.draws_per_sample);
  FastNormal::instance().fill(rng, z.data(), z.size());
  const double* d = z.data();
  if (plan.uniform_clock) {
    for (std::size_t j = 0; j < n; ++j) {
      const double t_nom = plan.parts.front().packed.nominal_time(v[j]);
      std::uint32_t hw = 0;
      for (const auto& part : plan.parts) {
        hw += part.packed.hw_at_nominal(t_nom, d);
        d += 1 + part.packed.size();
      }
      y[j] = static_cast<double>(hw);
    }
    return;
  }
  for (std::size_t j = 0; j < n; ++j) {
    std::uint32_t hw = 0;
    for (const auto& part : plan.parts) {
      hw += part.packed.hw_from_draws(v[j], d);
      d += 1 + part.packed.size();
    }
    y[j] = static_cast<double>(hw);
  }
}

void BenignSensorBank::toggle_hw_block(const CompiledHwPlan& plan,
                                       const double* v, std::size_t lanes,
                                       const double* z, double* y,
                                       bool simd) const {
  if (plan.draws_per_sample == 0) {
    for (std::size_t l = 0; l < lanes; ++l) y[l] = 0.0;
    return;
  }
  if (!simd) {
    // Scalar reference dispatch (SLM_SIMD=0): the exact per-sample loop
    // of toggle_hw_batch, just reading caller-provided draws.
    const double* d = z;
    if (plan.uniform_clock) {
      for (std::size_t l = 0; l < lanes; ++l) {
        const double t_nom = plan.parts.front().packed.nominal_time(v[l]);
        std::uint32_t hw = 0;
        for (const auto& part : plan.parts) {
          hw += part.packed.hw_at_nominal(t_nom, d);
          d += 1 + part.packed.size();
        }
        y[l] = static_cast<double>(hw);
      }
      return;
    }
    for (std::size_t l = 0; l < lanes; ++l) {
      std::uint32_t hw = 0;
      for (const auto& part : plan.parts) {
        hw += part.packed.hw_from_draws(v[l], d);
        d += 1 + part.packed.size();
      }
      y[l] = static_cast<double>(hw);
    }
    return;
  }
  thread_local std::vector<std::uint32_t> hw;
  thread_local std::vector<double> t_nom;
  thread_local timing::PackedToggleSubset::BlockScratch scratch;
  hw.assign(lanes, 0);
  t_nom.resize(lanes);
  // nominal_time is the same expression whichever part computes it under
  // a uniform clock, so one lane-major pass serves every part — exactly
  // the division-sharing toggle_hw_batch does per sample.
  std::size_t off = 0;
  if (plan.uniform_clock) {
    const auto& front = plan.parts.front().packed;
    for (std::size_t l = 0; l < lanes; ++l) t_nom[l] = front.nominal_time(v[l]);
    for (const auto& part : plan.parts) {
      part.packed.hw_block(t_nom.data(), lanes, z + off, plan.draws_per_sample,
                           hw.data(), scratch);
      off += 1 + part.packed.size();
    }
  } else {
    for (const auto& part : plan.parts) {
      for (std::size_t l = 0; l < lanes; ++l) {
        t_nom[l] = part.packed.nominal_time(v[l]);
      }
      part.packed.hw_block(t_nom.data(), lanes, z + off, plan.draws_per_sample,
                           hw.data(), scratch);
      off += 1 + part.packed.size();
    }
  }
  for (std::size_t l = 0; l < lanes; ++l) y[l] = static_cast<double>(hw[l]);
}

BenignSensorBank::CompiledBitPlan BenignSensorBank::compile_bit_plan(
    std::size_t global_i) const {
  std::size_t base = 0;
  for (const auto& s : sensors_) {
    if (global_i < base + s->endpoint_count()) {
      return CompiledBitPlan{&s->compiled(), global_i - base};
    }
    base += s->endpoint_count();
  }
  throw Error("BenignSensorBank::compile_bit_plan: index out of range");
}

void BenignSensorBank::toggle_bit_batch(const CompiledBitPlan& plan,
                                        const double* v, std::size_t n,
                                        Xoshiro256& rng, double* y) const {
  thread_local std::vector<double> z;
  z.resize(n * 2);
  FastNormal::instance().fill(rng, z.data(), z.size());
  for (std::size_t j = 0; j < n; ++j) {
    y[j] = plan.cap->toggle_from_draws(plan.local, v[j], &z[2 * j]) ? 1.0
                                                                    : 0.0;
  }
}

void BenignSensorBank::toggle_accumulate_batch(const double* v, std::size_t n,
                                               Xoshiro256& rng,
                                               std::size_t* ones) const {
  SLM_REQUIRE(!sensors_.empty(), "BenignSensorBank: empty bank");
  std::size_t draws_per_sample = 0;
  for (const auto& s : sensors_) draws_per_sample += 1 + s->endpoint_count();
  thread_local std::vector<double> z;
  z.resize(n * draws_per_sample);
  FastNormal::instance().fill(rng, z.data(), z.size());
  const double* d = z.data();
  for (std::size_t j = 0; j < n; ++j) {
    std::size_t base = 0;
    for (const auto& s : sensors_) {
      s->compiled().toggles_from_draws(v[j], d, ones + base);
      d += 1 + s->endpoint_count();
      base += s->endpoint_count();
    }
  }
}

}  // namespace slm::sensors
