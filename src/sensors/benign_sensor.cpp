#include "sensors/benign_sensor.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace slm::sensors {

BenignSensor::BenignSensor(const netlist::Netlist& nl,
                           const BitVec& reset_stimulus,
                           const BitVec& measure_stimulus,
                           const BenignSensorConfig& cfg) {
  SLM_REQUIRE(!nl.outputs().empty(), "BenignSensor: circuit has no endpoints");
  timing::TimedSimulator sim(nl);
  transition_ = sim.simulate_transition(reset_stimulus, measure_stimulus);
  capture_ = std::make_unique<timing::OverclockedCapture>(
      transition_.endpoint_waveforms, cfg.capture, cfg.seed);
}

bool BenignSensor::sample_toggle_bit(std::size_t i, double v,
                                     Xoshiro256& rng) const {
  const bool captured = capture_->sample_bit(i, v, rng);
  return captured != transition_.endpoint_waveforms[i].initial_value();
}

std::size_t BenignSensor::sample_toggle_hw(
    const std::vector<std::size_t>& bits, double v, Xoshiro256& rng) const {
  const BitVec captured = capture_->sample_subset(bits, v, rng);
  std::size_t hw = 0;
  for (std::size_t i : bits) {
    if (captured.get(i) != transition_.endpoint_waveforms[i].initial_value()) {
      ++hw;
    }
  }
  return hw;
}

double BenignSensor::max_settle_time_ns() const {
  double worst = 0.0;
  for (const auto& wf : transition_.endpoint_waveforms) {
    worst = std::max(worst, wf.settle_time());
  }
  return worst;
}

void BenignSensorBank::add(std::shared_ptr<const BenignSensor> sensor) {
  SLM_REQUIRE(sensor != nullptr, "BenignSensorBank: null sensor");
  sensors_.push_back(std::move(sensor));
}

std::size_t BenignSensorBank::endpoint_count() const {
  std::size_t n = 0;
  for (const auto& s : sensors_) n += s->endpoint_count();
  return n;
}

BitVec BenignSensorBank::sample_toggles(double v, Xoshiro256& rng) const {
  SLM_REQUIRE(!sensors_.empty(), "BenignSensorBank: empty bank");
  BitVec word(endpoint_count());
  std::size_t base = 0;
  for (const auto& s : sensors_) {
    const BitVec part = s->sample_toggles(v, rng);
    for (std::size_t i = 0; i < part.size(); ++i) {
      word.set(base + i, part.get(i));
    }
    base += part.size();
  }
  return word;
}

bool BenignSensorBank::sample_toggle_bit(std::size_t global_i, double v,
                                         Xoshiro256& rng) const {
  std::size_t base = 0;
  for (const auto& s : sensors_) {
    if (global_i < base + s->endpoint_count()) {
      return s->sample_toggle_bit(global_i - base, v, rng);
    }
    base += s->endpoint_count();
  }
  throw Error("BenignSensorBank::sample_toggle_bit: index out of range");
}

std::size_t BenignSensorBank::sample_toggle_hw(
    const std::vector<std::size_t>& global_bits, double v,
    Xoshiro256& rng) const {
  SLM_REQUIRE(!sensors_.empty(), "BenignSensorBank: empty bank");
  // Split the global indices per instance, preserving one common-jitter
  // draw per instance (matching sample_toggles semantics).
  std::size_t hw = 0;
  std::size_t base = 0;
  std::vector<std::size_t> local;
  for (const auto& s : sensors_) {
    local.clear();
    for (std::size_t g : global_bits) {
      if (g >= base && g < base + s->endpoint_count()) {
        local.push_back(g - base);
      }
    }
    if (!local.empty()) {
      hw += s->sample_toggle_hw(local, v, rng);
    }
    base += s->endpoint_count();
  }
  return hw;
}

const BenignSensor& BenignSensorBank::instance(std::size_t i) const {
  SLM_REQUIRE(i < sensors_.size(), "BenignSensorBank: bad instance");
  return *sensors_[i];
}

}  // namespace slm::sensors
