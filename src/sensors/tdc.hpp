// Time-to-Digital Converter voltage sensor — the *conspicuous* baseline
// the paper compares against (Fig. 6, 9, 11).
//
// A signal races down a carry-chain delay line for a fixed window W; the
// number of stages it traverses is inversely proportional to the
// (voltage-dependent) stage delay:
//
//   N(V) = W / (tau0 * factor(V))
//
// The registered outputs form a thermometer code. Lower voltage -> slower
// stages -> smaller reading.
#pragma once

#include <cstdint>

#include "common/bitvec.hpp"
#include "common/rng.hpp"
#include "timing/delay_model.hpp"

namespace slm::sensors {

struct TdcConfig {
  std::size_t stages = 64;
  double stage_delay_ns = 0.052;  ///< tau0 at nominal voltage
  /// Sampling window (ns). Default = 32 stages at nominal, putting the
  /// idle reading mid-scale as in the paper (idle ~30 of 64).
  double window_ns = 32 * 0.052;
  timing::VoltageDelayModel delay;

  /// Analog noise on the propagation depth (LSB sigma): launch jitter,
  /// stage mismatch. Applied to the continuous depth before quantising.
  double noise_lsb = 0.25;
};

class TdcSensor {
 public:
  explicit TdcSensor(const TdcConfig& cfg);

  /// Continuous (pre-quantisation) propagation depth at voltage v.
  double depth(double v) const;

  /// Quantised reading (stages traversed), with noise.
  std::uint32_t sample(double v, Xoshiro256& rng) const;

  /// Full thermometer word, with noise (bit i set iff depth > i).
  BitVec sample_word(double v, Xoshiro256& rng) const;

  /// Single thermometer bit i — the Fig. 11 attack mode.
  bool sample_bit(std::size_t i, double v, Xoshiro256& rng) const;

  /// Depth at nominal voltage (the idle reading).
  double idle_depth() const;

  const TdcConfig& config() const { return cfg_; }

 private:
  TdcConfig cfg_;
};

}  // namespace slm::sensors
