#include "sensors/tdc.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace slm::sensors {

TdcSensor::TdcSensor(const TdcConfig& cfg) : cfg_(cfg) {
  SLM_REQUIRE(cfg_.stages >= 2, "TdcSensor: need >= 2 stages");
  SLM_REQUIRE(cfg_.stage_delay_ns > 0 && cfg_.window_ns > 0,
              "TdcSensor: delays must be positive");
}

double TdcSensor::depth(double v) const {
  return cfg_.window_ns / (cfg_.stage_delay_ns * cfg_.delay.factor(v));
}

std::uint32_t TdcSensor::sample(double v, Xoshiro256& rng) const {
  const double noisy =
      depth(v) + FastNormal::instance()(rng, 0.0, cfg_.noise_lsb);
  const double clamped =
      std::clamp(noisy, 0.0, static_cast<double>(cfg_.stages));
  return static_cast<std::uint32_t>(clamped);
}

BitVec TdcSensor::sample_word(double v, Xoshiro256& rng) const {
  const std::uint32_t n = sample(v, rng);
  BitVec word(cfg_.stages);
  for (std::size_t i = 0; i < cfg_.stages && i < n; ++i) word.set(i, true);
  return word;
}

bool TdcSensor::sample_bit(std::size_t i, double v, Xoshiro256& rng) const {
  SLM_REQUIRE(i < cfg_.stages, "TdcSensor::sample_bit: stage out of range");
  const double noisy =
      depth(v) + FastNormal::instance()(rng, 0.0, cfg_.noise_lsb);
  return noisy > static_cast<double>(i);
}

double TdcSensor::idle_depth() const { return depth(cfg_.delay.vnom); }

}  // namespace slm::sensors
