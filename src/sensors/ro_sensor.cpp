#include "sensors/ro_sensor.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace slm::sensors {

RoCounterSensor::RoCounterSensor(const RoSensorConfig& cfg) : cfg_(cfg) {
  SLM_REQUIRE(cfg_.inverter_stages >= 1 && cfg_.inverter_stages % 2 == 1,
              "RoCounterSensor: odd inverter count required");
  SLM_REQUIRE(cfg_.inverter_delay_ns > 0 && cfg_.count_window_ns > 0,
              "RoCounterSensor: delays must be positive");
}

double RoCounterSensor::frequency_mhz(double v) const {
  const double period_ns = 2.0 * static_cast<double>(cfg_.inverter_stages) *
                           cfg_.inverter_delay_ns * cfg_.delay.factor(v);
  return 1000.0 / period_ns;
}

double RoCounterSensor::expected_count(double v) const {
  return frequency_mhz(v) / 1000.0 * cfg_.count_window_ns;
}

std::uint32_t RoCounterSensor::sample(double v, Xoshiro256& rng) const {
  const double noisy = expected_count(v) + FastNormal::instance()(
                                               rng, 0.0,
                                               cfg_.phase_noise_counts);
  return static_cast<std::uint32_t>(std::max(0.0, noisy));
}

}  // namespace slm::sensors
