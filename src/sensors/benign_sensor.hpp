// BenignSensor — the paper's contribution.
//
// Takes an ordinary, functionally-meaningful circuit (its netlist), a
// (reset, measure) stimulus pair, and an overclocked capture clock. The
// reset vector settles the circuit to a known state; the measure vector
// launches transitions down the long paths; the capture at the next
// overclocked edge freezes each endpoint mid-flight. Which endpoints have
// toggled relative to the reset state depends on the momentary supply
// voltage — turning the circuit into an improvised voltage sensor without
// adding a single gate.
//
// The heavy lifting (one event-driven timing simulation of the stimulus
// transition) happens once in the constructor; per-sample cost is a
// handful of binary searches.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bitvec.hpp"
#include "common/rng.hpp"
#include "netlist/netlist.hpp"
#include "timing/capture.hpp"
#include "timing/compiled_capture.hpp"
#include "timing/timed_sim.hpp"

namespace slm::sensors {

struct BenignSensorConfig {
  timing::CaptureConfig capture;
  std::uint64_t seed = 0x5eed;  ///< fixes per-endpoint static skew
};

class BenignSensor {
 public:
  /// `reset_stimulus` / `measure_stimulus` are full input vectors of the
  /// circuit (one bit per primary input, declaration order).
  BenignSensor(const netlist::Netlist& nl, const BitVec& reset_stimulus,
               const BitVec& measure_stimulus, const BenignSensorConfig& cfg);

  std::size_t endpoint_count() const { return capture_->endpoint_count(); }

  /// Raw captured endpoint word at supply voltage v.
  BitVec sample_raw(double v, Xoshiro256& rng) const {
    return capture_->sample(v, rng);
  }

  /// Toggle word: captured XOR reset-cycle values. This is the sensor
  /// output the paper post-processes.
  BitVec sample_toggles(double v, Xoshiro256& rng) const {
    return capture_->toggled(capture_->sample(v, rng));
  }

  /// Single endpoint toggle — the "single critical path" attack mode.
  bool sample_toggle_bit(std::size_t i, double v, Xoshiro256& rng) const;

  /// Hamming weight of the toggle word restricted to `bits` — the
  /// campaign hot path (only the bits of interest are simulated).
  std::size_t sample_toggle_hw(const std::vector<std::size_t>& bits, double v,
                               Xoshiro256& rng) const;

  /// Deterministically sensitive endpoints over a voltage range.
  std::vector<std::size_t> sensitive_endpoints(double v_lo,
                                               double v_hi) const {
    return capture_->sensitive_endpoints(v_lo, v_hi);
  }

  const timing::OverclockedCapture& capture() const { return *capture_; }

  /// The compiled fast-path kernel over the same physics (bit-exact; see
  /// timing/compiled_capture.hpp).
  const timing::CompiledCapture& compiled() const { return *compiled_; }

  const timing::TimedSimResult& transition() const { return transition_; }

  /// Settle time (ns, nominal voltage) of the slowest endpoint — must
  /// exceed the capture period or the circuit is not overclocked at all.
  double max_settle_time_ns() const;

 private:
  timing::TimedSimResult transition_;
  std::unique_ptr<timing::OverclockedCapture> capture_;
  std::unique_ptr<timing::CompiledCapture> compiled_;
};

/// Several sensor instances observed as one concatenated word (the paper
/// uses two C6288 multipliers this way). Instances get decorrelated
/// static skews via distinct seeds.
class BenignSensorBank {
 public:
  BenignSensorBank() = default;

  void add(std::shared_ptr<const BenignSensor> sensor);

  std::size_t instance_count() const { return sensors_.size(); }
  std::size_t endpoint_count() const;

  /// Concatenated toggle word (instance 0's endpoints first).
  BitVec sample_toggles(double v, Xoshiro256& rng) const;

  /// Toggle bit by global index across the concatenation.
  bool sample_toggle_bit(std::size_t global_i, double v,
                         Xoshiro256& rng) const;

  /// Hamming weight of the concatenated toggle word restricted to global
  /// bit indices (sorted or not).
  std::size_t sample_toggle_hw(const std::vector<std::size_t>& global_bits,
                               double v, Xoshiro256& rng) const;

  const BenignSensor& instance(std::size_t i) const;

  // --- Compiled batched fast path --------------------------------------
  //
  // Plans pre-split global bit indices per instance once; the batch
  // kernels then process a whole voltage vector with one FastNormal::fill
  // over a reused scratch block. RNG consumption (count and order) is
  // identical to the per-call APIs above — including skipping instances
  // with no listed bit — so readings are bit-exact against them.

  /// Per-instance slice of a global bit list, packed into self-contained
  /// kernel buffers (timing::PackedToggleSubset). Instances with no
  /// listed bit are omitted and draw nothing, as in sample_toggle_hw.
  struct CompiledHwPlan {
    struct Part {
      timing::PackedToggleSubset packed;
      std::vector<std::uint32_t> idx;  ///< local endpoint indices
    };
    std::vector<Part> parts;
    std::size_t draws_per_sample = 0;  ///< sum over parts of 1 + idx size
    bool uniform_clock = false;  ///< all parts share one capture clock
  };
  CompiledHwPlan compile_hw_plan(
      const std::vector<std::size_t>& global_bits) const;

  /// Batched sample_toggle_hw: y[j] = HW over the planned bits at v[j].
  void toggle_hw_batch(const CompiledHwPlan& plan, const double* v,
                       std::size_t n, Xoshiro256& rng, double* y) const;

  /// Pure-compute half of toggle_hw_batch over pre-drawn normals: lane l
  /// (a whole trace-block worth of samples) reads voltage v[l] and the
  /// draw slice z[l * draws_per_sample ...] — exactly the layout one
  /// FastNormal::fill per trace produces when traces are packed
  /// back-to-back. `simd = false` forces the per-lane scalar reference
  /// loop (the SLM_SIMD=0 fallback); both paths are bit-exact against
  /// toggle_hw_batch on the same draws, which the sensor property suite
  /// enforces.
  void toggle_hw_block(const CompiledHwPlan& plan, const double* v,
                       std::size_t lanes, const double* z, double* y,
                       bool simd = true) const;

  /// Owning instance + local index of one global bit.
  struct CompiledBitPlan {
    const timing::CompiledCapture* cap = nullptr;
    std::size_t local = 0;
  };
  CompiledBitPlan compile_bit_plan(std::size_t global_i) const;

  /// Batched sample_toggle_bit: y[j] = 0/1 toggle of the planned bit.
  void toggle_bit_batch(const CompiledBitPlan& plan, const double* v,
                        std::size_t n, Xoshiro256& rng, double* y) const;

  /// Batched selection pre-pass kernel: for every sample j, add each
  /// global endpoint's toggle bit into ones[0..endpoint_count()).
  /// Equivalent to n sample_toggles() calls fed to BitSelector::add.
  void toggle_accumulate_batch(const double* v, std::size_t n,
                               Xoshiro256& rng, std::size_t* ones) const;

 private:
  std::vector<std::shared_ptr<const BenignSensor>> sensors_;
};

}  // namespace slm::sensors
