// BenignSensor — the paper's contribution.
//
// Takes an ordinary, functionally-meaningful circuit (its netlist), a
// (reset, measure) stimulus pair, and an overclocked capture clock. The
// reset vector settles the circuit to a known state; the measure vector
// launches transitions down the long paths; the capture at the next
// overclocked edge freezes each endpoint mid-flight. Which endpoints have
// toggled relative to the reset state depends on the momentary supply
// voltage — turning the circuit into an improvised voltage sensor without
// adding a single gate.
//
// The heavy lifting (one event-driven timing simulation of the stimulus
// transition) happens once in the constructor; per-sample cost is a
// handful of binary searches.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bitvec.hpp"
#include "common/rng.hpp"
#include "netlist/netlist.hpp"
#include "timing/capture.hpp"
#include "timing/timed_sim.hpp"

namespace slm::sensors {

struct BenignSensorConfig {
  timing::CaptureConfig capture;
  std::uint64_t seed = 0x5eed;  ///< fixes per-endpoint static skew
};

class BenignSensor {
 public:
  /// `reset_stimulus` / `measure_stimulus` are full input vectors of the
  /// circuit (one bit per primary input, declaration order).
  BenignSensor(const netlist::Netlist& nl, const BitVec& reset_stimulus,
               const BitVec& measure_stimulus, const BenignSensorConfig& cfg);

  std::size_t endpoint_count() const { return capture_->endpoint_count(); }

  /// Raw captured endpoint word at supply voltage v.
  BitVec sample_raw(double v, Xoshiro256& rng) const {
    return capture_->sample(v, rng);
  }

  /// Toggle word: captured XOR reset-cycle values. This is the sensor
  /// output the paper post-processes.
  BitVec sample_toggles(double v, Xoshiro256& rng) const {
    return capture_->toggled(capture_->sample(v, rng));
  }

  /// Single endpoint toggle — the "single critical path" attack mode.
  bool sample_toggle_bit(std::size_t i, double v, Xoshiro256& rng) const;

  /// Hamming weight of the toggle word restricted to `bits` — the
  /// campaign hot path (only the bits of interest are simulated).
  std::size_t sample_toggle_hw(const std::vector<std::size_t>& bits, double v,
                               Xoshiro256& rng) const;

  /// Deterministically sensitive endpoints over a voltage range.
  std::vector<std::size_t> sensitive_endpoints(double v_lo,
                                               double v_hi) const {
    return capture_->sensitive_endpoints(v_lo, v_hi);
  }

  const timing::OverclockedCapture& capture() const { return *capture_; }
  const timing::TimedSimResult& transition() const { return transition_; }

  /// Settle time (ns, nominal voltage) of the slowest endpoint — must
  /// exceed the capture period or the circuit is not overclocked at all.
  double max_settle_time_ns() const;

 private:
  timing::TimedSimResult transition_;
  std::unique_ptr<timing::OverclockedCapture> capture_;
};

/// Several sensor instances observed as one concatenated word (the paper
/// uses two C6288 multipliers this way). Instances get decorrelated
/// static skews via distinct seeds.
class BenignSensorBank {
 public:
  BenignSensorBank() = default;

  void add(std::shared_ptr<const BenignSensor> sensor);

  std::size_t instance_count() const { return sensors_.size(); }
  std::size_t endpoint_count() const;

  /// Concatenated toggle word (instance 0's endpoints first).
  BitVec sample_toggles(double v, Xoshiro256& rng) const;

  /// Toggle bit by global index across the concatenation.
  bool sample_toggle_bit(std::size_t global_i, double v,
                         Xoshiro256& rng) const;

  /// Hamming weight of the concatenated toggle word restricted to global
  /// bit indices (sorted or not).
  std::size_t sample_toggle_hw(const std::vector<std::size_t>& global_bits,
                               double v, Xoshiro256& rng) const;

  const BenignSensor& instance(std::size_t i) const;

 private:
  std::vector<std::shared_ptr<const BenignSensor>> sensors_;
};

}  // namespace slm::sensors
