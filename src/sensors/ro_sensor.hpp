// Ring-oscillator counter sensor (Zhao & Suh, S&P'18 style) — included as
// the second conspicuous reference sensor and as an ablation point: its
// asynchronous counting gives a much lower effective bandwidth than a TDC,
// and its combinational loop is what bitstream checkers catch first.
//
//   f_osc(V) = 1 / (2 * n_inv * tau_inv * factor(V))
//   count    = f_osc * window  (+ phase noise)
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "timing/delay_model.hpp"

namespace slm::sensors {

struct RoSensorConfig {
  std::size_t inverter_stages = 5;
  double inverter_delay_ns = 0.065;
  double count_window_ns = 1000.0;  ///< 1 us counting window (low rate)
  timing::VoltageDelayModel delay;
  double phase_noise_counts = 0.6;  ///< sigma of the counter reading
};

class RoCounterSensor {
 public:
  explicit RoCounterSensor(const RoSensorConfig& cfg);

  /// Oscillation frequency (MHz) at voltage v.
  double frequency_mhz(double v) const;

  /// Expected count over the window at voltage v.
  double expected_count(double v) const;

  /// Noisy counter reading.
  std::uint32_t sample(double v, Xoshiro256& rng) const;

  const RoSensorConfig& config() const { return cfg_; }

 private:
  RoSensorConfig cfg_;
};

}  // namespace slm::sensors
