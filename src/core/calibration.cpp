#include "core/calibration.hpp"

namespace slm::core {

crypto::Block Calibration::aes_key() const {
  return crypto::block_from_hex("2b7e151628aed2a6abf7158809cf4f3c");
}

Calibration Calibration::paper_defaults() {
  Calibration c;

  // Delay sensitivity of ordinary logic: sets both the benign sensor's
  // gain and the width of its sensitive endpoint band.
  c.delay = timing::VoltageDelayModel{1.0, 4.0};

  // PDN: underdamped (zeta ~ 0.4), ~100 MHz resonance -> droop followed
  // by overshoot when the RO grid releases, as in Fig. 6.
  c.pdn.vreg = 1.0;
  c.pdn.r_ohm = 0.050;
  c.pdn.l_h = 100e-12;
  c.pdn.c_f = 25e-9;
  c.pdn.dt_ns = 0.05;
  c.pdn.idle_current_a = 0.5;

  // RO grid: 8000 ROs, ~0.15 mA each -> 1.2 A peak; ~60 mV transient
  // dip below the 0.975 V operating point and ~30 mV release overshoot.
  c.ro_grid.ro_count = 8000;
  c.ro_grid.current_per_ro_a = 0.15e-3;
  c.ro_grid.toggle_freq_mhz = 4.0;
  c.ro_grid.ramp_fraction = 0.85;

  // AES datapath: effective 5 mA per register bit flip (lumped value
  // absorbing local supply-grid concentration).
  c.aes.clock_mhz = c.aes_clock_mhz;
  c.aes.current_per_hd_a = 5e-3;
  c.aes.base_current_a = 0.08;
  c.aes.carry_previous_state = true;

  // TDC: 64 stages, idle depth 32 (mid-scale as in the paper). A tuned
  // TDC sits at its metastable edge where the depth-vs-voltage gain is
  // far above raw logic (fine IDELAY calibration): its own delay model
  // is referenced to the DC operating point (0.975 V for the idle load)
  // with a much larger sensitivity. This reproduces both the Fig. 6
  // swing (idle ~30 -> ~10 under RO droop, saturating overshoot on
  // release) and the few-hundred-trace CPA of Fig. 9.
  c.tdc.stages = 64;
  c.tdc.stage_delay_ns = 0.052;
  c.tdc.window_ns = 32 * 0.052;
  c.tdc.delay = timing::VoltageDelayModel{0.975, 192.0};
  c.tdc.noise_lsb = 0.08;

  // RO-counter reference sensor (Zhao & Suh style): counted over one
  // 150 MS/s sample window, so only ~10 oscillations fit — the coarse
  // quantisation is what makes it the weakest of the three sensor
  // classes in the ablation bench.
  c.ro_sensor.inverter_stages = 5;
  c.ro_sensor.inverter_delay_ns = 0.065;
  c.ro_sensor.count_window_ns = 1000.0 / c.sensor_sample_mhz;
  c.ro_sensor.delay = timing::VoltageDelayModel{0.975, 16.0};
  c.ro_sensor.phase_noise_counts = 0.3;

  // Overclocked capture at 300 MHz.
  c.capture.clock_period_ns = c.overclock_period_ns();
  c.capture.delay = c.delay;
  c.capture.jitter_sigma_ns = 0.030;
  c.capture.common_jitter_sigma_ns = 0.030;
  c.capture.endpoint_skew_sigma_ns = 0.060;
  c.capture.setup_ns = 0.05;

  // Benign circuits: FPGA-mapped delays (fast carry chain in the adder).
  c.alu.width = 192;
  c.alu.adder.width = 192;
  c.alu.adder.carry_stage_delay_ns = 0.019;
  c.alu.adder.sum_xor_delay_ns = 0.080;
  c.alu.adder.input_routing_delay_ns = 0.45;
  c.alu.mux_delay_ns = 0.070;
  c.alu.logic_delay_ns = 0.060;

  c.c6288.operand_width = 16;
  c.c6288.nor_delay_ns = 0.034;
  c.c6288.and_delay_ns = 0.050;
  c.c6288.input_routing_delay_ns = 0.30;

  c.env_noise_v = 0.00002;

  // Victim->attacker PDN coupling, derived from the floorplan distance
  // between the regions (fpga::Fabric::pdn_coupling): the ALU experiment
  // (Fig. 3) places the attacker across the die from the AES, the C6288
  // experiment (Fig. 4) adjacent to it.
  c.coupling = 1.0;
  c.alu_coupling = 0.30;
  c.c6288_coupling = 0.80;

  // RO-induced voltage band (transient dip .. release overshoot), used
  // for the deterministic sensitive-endpoint classification in the
  // floorplan figures. Matches what the RLC model actually produces with
  // the grid above.
  c.ro_v_min = 1.0 - 0.120;
  c.ro_v_max = 1.0 + 0.015;

  return c;
}

}  // namespace slm::core
