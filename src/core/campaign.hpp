// CPA capture campaign: the workstation loop of the paper (send random
// plaintext, record ciphertext + sensor trace, repeat), fused with the
// analysis so half-million-trace runs stream in seconds.
//
// Per trace: the AES datapath model produces per-cycle switching currents;
// the linear PDN response matrix turns them into supply voltages at the
// sensor sampling instants; the selected sensor (TDC or benign circuit,
// full word or single bit) turns voltages into readings; the CPA engine
// accumulates correlations against the last-round single-bit model.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/setup.hpp"
#include "defense/active_fence.hpp"
#include "pdn/cycle_response.hpp"
#include "sca/cpa.hpp"
#include "sca/selection.hpp"
#include "sca/tvla.hpp"
#include "sca/model.hpp"
#include "sca/mtd.hpp"

namespace slm::obs {
class CampaignObserver;
}

namespace slm::store {
enum class StoreKind : std::uint8_t;
struct StoreIdentity;
class TraceStoreWriter;
}

namespace slm::core {

class ThreadPool;

enum class SensorMode {
  kTdcFull,         ///< TDC reading (all stages)          - Fig. 9
  kTdcSingleBit,    ///< one TDC thermometer bit           - Fig. 11
  kBenignHw,        ///< HW over benign bits of interest   - Figs. 10, 17
  kBenignSingleBit, ///< one benign path endpoint          - Figs. 12, 13, 18
  kRoCounter,       ///< RO counter sensor (related work [3]) - ablations
};

const char* sensor_mode_name(SensorMode m);

/// RNG determinism contract of a campaign (DESIGN.md §7/§12).
///
/// v1 — sequential streams: each shard consumes one xoshiro stream in
/// strict per-trace order, so results depend on (seed, thread count)
/// and generation is a serial chain.
///
/// v2 (default) — counter-keyed per-trace streams: every trace's draws
/// derive statelessly from (seed, domain, trace_index) via
/// Xoshiro256::trace_stream, so results depend on the seed ALONE —
/// bit-identical across any thread count, block size, and SIMD toggle —
/// and generation parallelizes/pipelines freely.
enum class RngContract {
  kDefault = 0,  ///< resolve via SLM_RNG_CONTRACT, else v2
  kV1 = 1,
  kV2 = 2,
};

const char* rng_contract_name(RngContract c);

/// CampaignConfig::rng_contract resolution: an explicit v1/v2 request
/// wins, else the SLM_RNG_CONTRACT environment variable ("v1"/"1"/
/// "v2"/"2"; anything else is a loud error), else kV2.
RngContract resolve_contract(RngContract requested);

struct CampaignConfig {
  std::size_t traces = 500000;
  SensorMode mode = SensorMode::kBenignHw;

  /// Bit index for the single-bit modes (TDC stage or global endpoint).
  /// kAutoBit picks the highest-variance endpoint from a selection
  /// pre-pass (how the paper picks bit 21 / bit 28).
  static constexpr std::size_t kAutoBit = static_cast<std::size_t>(-1);
  std::size_t single_bit = 0;

  /// CPA target: last-round key byte (paper: 3, "the 4th byte") and
  /// predicted state bit (paper: 0, "the 1st bit").
  std::size_t target_key_byte = 3;
  std::size_t target_bit = 0;

  /// Sensor sampling window (absolute ns from encryption start). The
  /// default brackets the last-round leakage cycles plus PDN settling.
  double window_start_ns = 400.0;
  double window_end_ns = 465.0;

  /// Progress snapshot trace counts (clipped to `traces`); empty =
  /// default log-spaced schedule.
  std::vector<std::size_t> checkpoints;

  /// Traces for the bits-of-interest pre-pass (benign modes).
  std::size_t selection_traces = 4000;
  double selection_min_variance = 0.15;

  /// Keep only the K highest-variance bits of interest (0 = no cap).
  /// The glitchier the circuit (C6288), the more the Hamming weight
  /// profits from discarding endpoints with variance but no slope.
  std::size_t selection_top_k = 0;

  /// Optional active-fence countermeasure around the victim (hiding
  /// defence; random_current_a = 0 disables it).
  defense::ActiveFenceConfig fence{};

  /// Route capture and CPA accumulation through the compiled fast path
  /// (timing::CompiledCapture batch kernels + sca::XorClassCpa). Results
  /// are bit-identical to the reference path (OverclockedCapture +
  /// CpaEngine::add_trace) — the property suite and the figure benches
  /// enforce this — so the knob only trades speed; false forces the
  /// reference implementation.
  bool compiled_kernels = true;

  /// Trace-block size for the block-batched capture pipeline (see
  /// DESIGN.md §11): traces are generated RNG-sequentially, then the
  /// RNG-free kernels (PackedToggleSubset::hw_block, XorClassCpa::
  /// add_block / CpaEngine::add_traces) run over the whole block. 0 =
  /// auto (SLM_BLOCK env var, else kDefaultBlockTraces); 1 reproduces
  /// the exact per-trace loop. Blocks clamp at checkpoint edges, so any
  /// value yields bit-identical results and snapshots.
  std::size_t block = 0;

  /// Lane-parallel dispatch for the block kernels. false — or
  /// SLM_SIMD=0/scalar in the environment — forces the per-lane scalar
  /// reference loops; SLM_SIMD also selects the fold dispatch level
  /// (sca/fold_kernels.hpp: scalar, sse2, avx2, unset = auto). Results
  /// are bit-identical at every level — the fold accumulators are exact
  /// int64 sums, so lane width never matters; the knob exists to
  /// isolate vectorizer miscompiles and to measure the SIMD win.
  bool simd = true;

  std::uint64_t seed = 0xc0ffee;

  /// RNG determinism contract (see RngContract above). kDefault resolves
  /// through SLM_RNG_CONTRACT to v2; `--rng-contract v1` / kV1 reruns
  /// the sequential-stream physics of the PR 4 era (golden fixtures,
  /// old checkpoints). Checkpoints refuse cross-contract resume.
  RngContract rng_contract = RngContract::kDefault;

  /// Optional observability hook (metrics, spans, JSONL events). Null is
  /// the documented zero-overhead path: the capture loops only ever test
  /// this pointer, so the no-observer serial run stays byte-identical to
  /// the pre-observability code (golden_trace_test enforces it). The
  /// pointer is borrowed — the caller keeps the observer alive for the
  /// duration of run().
  obs::CampaignObserver* observer = nullptr;

  /// Directory for crash-safe snapshots (`<dir>/campaign.ckpt`, written
  /// atomically at every checkpoint). Empty disables checkpointing.
  std::string checkpoint_dir;

  /// Resume from `<checkpoint_dir>/campaign.ckpt` when it exists: the
  /// campaign restores accumulators, RNG stream positions, victim
  /// register history, and fence streams, then continues bit-exactly as
  /// if never interrupted. Missing file = fresh start; corrupt file or
  /// mismatched configuration = loud error.
  bool resume = false;

  /// Ops/testing knob: after the snapshot at the first checkpoint whose
  /// trace count is >= this value, throw CampaignHalted — a
  /// deterministic stand-in for kill -9 (snapshots are atomic, so a real
  /// kill at any instant leaves the same on-disk state). 0 disables.
  std::size_t halt_after_traces = 0;

  /// Capture-once trace store (docs/STORE.md): when set, the campaign
  /// records every trace's readings, plaintext and ciphertext and writes
  /// a fingerprinted `SLMTRC1` file here on completion (atomic rename),
  /// for `slm attack --from-store` replay at fold speed. Incompatible
  /// with `resume` (a resumed run never regenerates the earlier traces);
  /// a halted run destroys the writer and leaves no store file.
  std::string store_out;

  /// Externally-owned worker pool (borrowed, may be null). When set,
  /// ParallelCampaign shards over THIS pool instead of constructing a
  /// private one — the `slm serve` daemon multiplexes every tenant's
  /// campaigns over one shared core::ThreadPool this way. The pool's
  /// size overrides the `threads` knob; under contract v2 the results
  /// are bit-identical either way (thread count is repro-irrelevant).
  ThreadPool* pool = nullptr;
};

struct CampaignResult {
  SensorMode mode = SensorMode::kBenignHw;
  std::size_t traces_run = 0;
  std::uint8_t correct_guess = 0;   ///< true last-round key byte
  std::uint8_t recovered_guess = 0; ///< CPA winner at the end
  bool key_recovered = false;
  sca::MtdResult mtd;
  std::vector<sca::CpaProgressPoint> progress;
  std::vector<double> final_max_abs_corr;    ///< per key candidate
  std::vector<std::size_t> bits_of_interest; ///< kBenignHw only
  std::vector<double> sample_times_ns;

  /// Single-bit index actually used after kAutoBit resolution (single-
  /// bit modes only; 0 otherwise).
  std::size_t single_bit = 0;

  /// Workers used and campaign wall time (selection pre-pass included),
  /// for traces/sec reporting in the benches and the CLI. The serial
  /// CpaCampaign::run fills threads_used = 1; ParallelCampaign overwrites
  /// with its worker count and its own timer.
  unsigned threads_used = 0;
  double capture_seconds = 0.0;

  /// Effective trace-block size after --block / SLM_BLOCK resolution —
  /// run metadata in the same spirit as threads_used, so bench JSON and
  /// checkpoint headers report the block the campaign actually ran with.
  std::size_t block_size = 0;

  /// Effective RNG determinism contract after --rng-contract /
  /// SLM_RNG_CONTRACT resolution — run metadata like block_size, stamped
  /// into bench JSON, CLI output, and the checkpoint header.
  RngContract rng_contract = RngContract::kV2;

  /// Phase-time split, filled only when cfg.observer != nullptr (the
  /// per-trace timers are observer-gated to keep the disabled path
  /// untouched). kernel = victim + PDN + sensor capture; cpa =
  /// accumulate / fold / merge; checkpoint_io = snapshot writes. In
  /// sharded runs kernel/cpa sum worker-thread time (CPU seconds, not
  /// wall clock). selection_seconds (the bits-of-interest pre-pass) is
  /// coarse-grained and always filled.
  double kernel_seconds = 0.0;
  double cpa_seconds = 0.0;
  double checkpoint_io_seconds = 0.0;
  double selection_seconds = 0.0;

  /// Traces restored from a snapshot (0 = fresh run) and the snapshot
  /// file last written (empty when checkpointing is off).
  std::size_t resumed_from = 0;
  std::string snapshot_path;
};

/// Knobs of the fused full-key campaign (docs/FULLKEY.md). Early exit is
/// attacker-observable: a byte "converges" when its CPA winner has been
/// stable with a sufficient correlation margin over `stable` consecutive
/// checkpoints. Converged bytes freeze their reported result and stop
/// paying the per-checkpoint 256 x 512 x S fold; the shared capture keeps
/// feeding their accumulator slice, so turning early exit off only adds
/// fold work — the accumulators (and therefore any later fold) are
/// unchanged.
struct FullKeyConfig {
  bool early_exit = true;

  /// Margin |r_best| - |r_second| a byte's winner must hold.
  double early_exit_margin = 0.08;

  /// Consecutive qualifying checkpoints (same winner as the previous
  /// checkpoint, margin met) before the byte freezes.
  std::size_t early_exit_stable = 2;

  /// Never freeze before this many traces (the margin estimate is noise
  /// at the head of the log-spaced schedule).
  std::size_t early_exit_min_traces = 1000;
};

/// Per-byte outcome of a fused full-key campaign. `traces` is the trace
/// count this byte's reported result was folded at: the shared budget,
/// or the freeze point when early exit fired.
struct FullKeyByteResult {
  std::uint8_t correct = 0;     ///< true last-round key byte
  std::uint8_t recovered = 0;   ///< CPA winner
  bool success = false;
  bool early_exited = false;
  std::size_t traces = 0;
  sca::MtdResult mtd;
  std::vector<sca::CpaProgressPoint> progress;
  std::vector<double> final_max_abs_corr;  ///< per key candidate
};

/// Outcome of a fused full-key campaign: one shared capture stream, 16
/// per-byte CPA results. The shared metadata mirrors CampaignResult.
struct FullKeyRunResult {
  SensorMode mode = SensorMode::kBenignHw;
  std::size_t traces_run = 0;  ///< shared capture traces (not x16)
  std::array<FullKeyByteResult, 16> bytes;
  std::vector<std::size_t> bits_of_interest;
  std::vector<double> sample_times_ns;
  std::size_t single_bit = 0;
  unsigned threads_used = 0;
  double capture_seconds = 0.0;
  std::size_t block_size = 0;
  RngContract rng_contract = RngContract::kV2;
  double kernel_seconds = 0.0;
  double cpa_seconds = 0.0;
  double checkpoint_io_seconds = 0.0;
  double selection_seconds = 0.0;
  std::size_t resumed_from = 0;
  std::string snapshot_path;

  bool all_recovered() const {
    for (const auto& b : bytes) {
      if (!b.success) return false;
    }
    return true;
  }
};

class CpaCampaign {
 public:
  CpaCampaign(AttackSetup& setup, const CampaignConfig& cfg);

  /// Run the full campaign.
  CampaignResult run();

  /// Run the fused full-key campaign: ONE capture stream (identical
  /// trace readings to run() under the same config, because generation
  /// is model-independent), sixteen per-byte class accumulators
  /// (sca::MultiByteCpa), per-byte folds at checkpoints with optional
  /// early exit. cfg.target_key_byte is ignored; the sampling window
  /// must bracket every byte's leakage cycle (StealthyAttack::
  /// fullkey_campaign_config builds such a config). Supports both RNG
  /// contracts, checkpoints/resume/halt, and the block-batched pipeline;
  /// the serial generate/compute overlap (SLM_PIPELINE) is not wired
  /// into this path — use threads for full-key throughput.
  FullKeyRunResult run_fullkey(const FullKeyConfig& fk = {});

  /// The sampling instants the campaign will use.
  const std::vector<double>& sample_times_ns() const { return sample_times_; }

  /// Bits-of-interest pre-pass only (exposed for the Fig. 7/8 benches).
  std::vector<std::size_t> select_bits_of_interest();

  /// Full per-bit statistics from the selection pre-pass.
  sca::BitSelector run_selection_pass();

  /// The single-bit index actually used (after kAutoBit resolution).
  std::size_t resolved_single_bit() const { return cfg_.single_bit; }

  /// Non-specific leakage assessment with the configured sensor: fixed-
  /// vs-random plaintexts, Welch's t-test per sample point. Uses the
  /// same physics as run() but needs no key hypothesis at all.
  sca::WelchTTest run_tvla(std::size_t traces_per_population);

  /// The `SLMTRC1` fingerprint this campaign's capture would stamp into
  /// a store of `traces` traces: (seed, resolved rng contract, trace
  /// count, CRC-32 of the attack/sensor config). Replay builds the same
  /// identity from its own flags and refuses a store that differs.
  store::StoreIdentity store_identity(store::StoreKind kind,
                                      std::size_t traces) const;

 private:
  friend class ParallelCampaign;  // reuses the capture path, shard-wise
  friend class FabricWorker;      // same capture path over a trace range

  void make_voltages(const crypto::AesDatapathModel::Encryption& enc,
                     Xoshiro256& rng, std::vector<double>& v_out) {
    make_voltages(enc, rng, v_out, fence_ ? &*fence_ : nullptr);
  }

  /// Same physics with an explicit fence instance — sharded campaigns
  /// give every worker its own stateful fence stream. Under contract v2
  /// the caller passes `fence_rng`, the trace's counter-keyed fence
  /// stream, and the fence instance is used statelessly; null keeps the
  /// v1 sequential fence stream.
  void make_voltages(const crypto::AesDatapathModel::Encryption& enc,
                     Xoshiro256& rng, std::vector<double>& v_out,
                     defense::ActiveFence* fence,
                     Xoshiro256* fence_rng = nullptr) const;

  /// Read the configured sensor at every sample voltage into `y`
  /// (reference path: per-call sampling).
  void read_sensor(const std::vector<double>& v,
                   const std::vector<std::size_t>& bits, Xoshiro256& rng,
                   std::vector<double>& y) const;

  /// Precompiled dispatch for read_sensor_fast. Benign modes get a batch
  /// plan; other modes fall back to the reference per-call loop.
  struct SensorPlan {
    sensors::BenignSensorBank::CompiledHwPlan hw;
    sensors::BenignSensorBank::CompiledBitPlan bit;
    bool batched = false;
  };
  SensorPlan make_sensor_plan(const std::vector<std::size_t>& bits) const;

  /// Compiled read_sensor: bit-exact same readings and RNG consumption,
  /// batched over the whole voltage vector.
  void read_sensor_fast(const SensorPlan& plan, const std::vector<double>& v,
                        const std::vector<std::size_t>& bits, Xoshiro256& rng,
                        std::vector<double>& y) const;

  /// Resolve kAutoBit / bits-of-interest before a capture loop.
  void resolve_sensor_bits(CampaignResult* result);

  AttackSetup& setup_;
  CampaignConfig cfg_;
  std::vector<double> sample_times_;
  pdn::CycleResponseMatrix response_;
  std::optional<defense::ActiveFence> fence_;
};

/// Default log-spaced checkpoint schedule up to `traces`.
std::vector<std::size_t> default_checkpoints(std::size_t traces);

/// The sorted checkpoint schedule the serial engines fold at for this
/// config: `requested` when non-empty, else default_checkpoints(traces).
/// Store replay folds at the same counts to stay bit-identical.
std::vector<std::size_t> checkpoint_schedule(
    const std::vector<std::size_t>& requested, std::size_t traces);

/// Finalize a capture's trace-store writer and emit the slm.store.*
/// write metrics and the store_write event (shared by the serial and
/// sharded engines).
void finalize_trace_store(store::TraceStoreWriter& writer,
                          obs::CampaignObserver* observer);

/// Default trace-block size of the block-batched pipeline: big enough to
/// amortize kernel dispatch and fill the SIMD lanes, small enough that a
/// block of (readings + draws) stays in L2.
inline constexpr std::size_t kDefaultBlockTraces = 64;

/// CampaignConfig::block resolution: an explicit request wins, else the
/// SLM_BLOCK environment variable, else kDefaultBlockTraces.
std::size_t resolve_block(std::size_t requested);

/// CampaignConfig::simd resolution: an explicit `false` wins, else the
/// SLM_SIMD dispatch level decides (the scalar level — SLM_SIMD=0 or
/// SLM_SIMD=scalar — forces the scalar sensor fallback).
bool resolve_simd(bool requested);

}  // namespace slm::core
