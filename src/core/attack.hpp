// High-level facade: "misuse this benign circuit, steal that key byte".
// This is the API the examples exercise; everything underneath is the
// composable machinery (AttackSetup / CpaCampaign / BitstreamChecker).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bitstream/checker.hpp"
#include "core/campaign.hpp"
#include "core/setup.hpp"

namespace slm::core {

struct KeyByteReport {
  std::size_t key_byte = 0;
  std::uint8_t true_value = 0;
  std::uint8_t recovered = 0;
  bool success = false;
  std::size_t traces = 0;
  /// Fused full-key campaigns only: this byte froze via early exit (its
  /// guess and margin stabilized before the trace budget ran out).
  bool early_exited = false;
  sca::MtdResult mtd;
  unsigned threads_used = 0;     ///< workers the campaign ran on
  double capture_seconds = 0.0;  ///< campaign wall time (traces/sec)
  std::size_t block_size = 0;    ///< effective trace-block size

  /// Observability passthrough (see CampaignResult): observer-gated
  /// kernel/CPA phase split, snapshot bookkeeping.
  double kernel_seconds = 0.0;
  double cpa_seconds = 0.0;
  double checkpoint_io_seconds = 0.0;
  double selection_seconds = 0.0;
  std::size_t resumed_from = 0;
  std::string snapshot_path;

  /// RNG determinism contract the campaign actually ran under (resolved
  /// from RunOptions::rng_contract / SLM_RNG_CONTRACT; see DESIGN.md §12).
  RngContract rng_contract = RngContract::kV2;
};

/// Cross-cutting run options shared by every campaign entry point:
/// observability hooks and crash-safe checkpoint/resume. Defaults are
/// all-off — the zero-overhead path.
struct RunOptions {
  obs::CampaignObserver* observer = nullptr;  ///< borrowed, may be null
  std::string checkpoint_dir;                 ///< empty = no snapshots
  bool resume = false;                        ///< continue from snapshot
  std::size_t halt_after_traces = 0;          ///< simulated kill (0 = off)
  std::size_t block = 0;   ///< trace-block size (0 = SLM_BLOCK / default)
  bool simd = true;        ///< false forces the scalar block kernels
  /// RNG determinism contract (kDefault = SLM_RNG_CONTRACT, else v2);
  /// `slm attack --rng-contract v1|v2` routes through this.
  RngContract rng_contract = RngContract::kDefault;
  /// Externally-owned worker pool (borrowed, may be null): shard the
  /// campaign over this pool instead of a private one, overriding the
  /// `threads` knob. How `slm serve` multiplexes many tenants' jobs
  /// over one shared core::ThreadPool (see CampaignConfig::pool).
  ThreadPool* pool = nullptr;
  /// Non-empty: also persist every captured trace to an SLMTRC1 store
  /// at this path (`slm capture --store-out`; see docs/STORE.md).
  /// Incompatible with resume; only the fused full-key engine honours
  /// it (the farmed oracle captures 16 separate streams).
  std::string store_out;
};

/// How recover_full_key captures its traces (see docs/FULLKEY.md).
enum class FullKeyMode {
  /// One shared capture pass feeds a fused 16-bytes x 256-guesses CPA
  /// fold (sca::MultiByteCpa) — the default, ~16x less capture work.
  kFused,
  /// 16 independent single-byte campaigns over the SAME shared capture
  /// config, one fresh platform replica each. Kept as the bit-exactness
  /// oracle: under contract v2 every byte's CPA sums are bit-identical
  /// to the fused fold's (the capture stream is model-independent).
  kFarmed,
};

/// Options for the full-key entry point. `fused` (early-exit knobs) and
/// `run` (observer / checkpointing) only apply to FullKeyMode::kFused;
/// the farmed oracle ignores observers and cannot snapshot.
struct FullKeyOptions {
  FullKeyMode mode = FullKeyMode::kFused;
  FullKeyConfig fused;
  RunOptions run;
};

class StealthyAttack {
 public:
  StealthyAttack(BenignCircuit circuit,
                 Calibration cal = Calibration::paper_defaults(),
                 std::uint64_t seed = 0x51);

  AttackSetup& setup() { return setup_; }

  // All recover_* calls take a `threads` knob: 0 (the default) uses
  // hardware_concurrency, 1 is the exact pre-sharding serial behaviour
  // (bit-identical results), and N > 1 shards the trace capture across
  // N workers. Same seed + same threads => identical results; see
  // DESIGN.md for the full determinism contract.

  /// Recover one last-round key byte with the given sensor mode. The
  /// RunOptions overload attaches an observer and/or crash-safe
  /// checkpointing (`slm attack --checkpoint-dir/--resume/--trace-out`
  /// route through it); the default overload is the zero-overhead path.
  KeyByteReport recover_key_byte(std::size_t key_byte, std::size_t traces,
                                 SensorMode mode = SensorMode::kBenignHw,
                                 unsigned threads = 0);
  KeyByteReport recover_key_byte(std::size_t key_byte, std::size_t traces,
                                 SensorMode mode, unsigned threads,
                                 const RunOptions& opts);

  /// Recover several last-round key bytes (one campaign each).
  std::vector<KeyByteReport> recover_key_bytes(
      const std::vector<std::size_t>& key_bytes, std::size_t traces,
      SensorMode mode = SensorMode::kBenignHw, unsigned threads = 0);

  struct FullKeyReport {
    std::vector<KeyByteReport> bytes;     ///< one entry per key byte
    crypto::Block last_round_key{};       ///< assembled from the campaigns
    crypto::Block master_key{};           ///< inverse key schedule
    bool success = false;                 ///< all 16 bytes correct
    FullKeyMode mode_used = FullKeyMode::kFused;
    /// Traces actually captured: the shared-pass count for fused, the
    /// sum over the 16 byte campaigns for farmed (~16x larger at equal
    /// per-byte budgets — the whole point of the fused engine).
    std::size_t traces_captured = 0;
    double capture_seconds = 0.0;  ///< wall time of the capture/attack
    unsigned threads_used = 0;
    std::size_t block_size = 0;
    RngContract rng_contract = RngContract::kV2;
    std::size_t bytes_early_exited = 0;  ///< fused: frozen before budget
    std::size_t resumed_from = 0;        ///< fused: snapshot resume point
    std::string snapshot_path;           ///< fused: last snapshot written
  };

  /// The complete break: recover all 16 last-round key bytes and invert
  /// the key schedule back to the AES master key. The default (fused)
  /// engine captures ONE shared trace stream and folds all 16 bytes'
  /// CPA sums out of it (sca::MultiByteCpa), with per-byte early exit
  /// once a byte's winning guess and margin stabilize. Under RNG
  /// contract v2 the result is bit-identical for any thread count,
  /// block size, and SIMD toggle — and per byte to the farmed oracle.
  FullKeyReport recover_full_key(std::size_t traces,
                                 SensorMode mode = SensorMode::kTdcFull,
                                 unsigned threads = 0);
  FullKeyReport recover_full_key(std::size_t traces, SensorMode mode,
                                 unsigned threads,
                                 const FullKeyOptions& opts);

  /// The shared capture config every full-key path runs under: one seed
  /// plan for the whole key and a sampling window bracketing every
  /// byte's leakage cycle. Farmed byte campaigns override only
  /// target_key_byte — the capture stream itself is model-independent,
  /// which is what makes fused and farmed bit-identical per byte.
  CampaignConfig fullkey_campaign_config(std::size_t traces,
                                         SensorMode mode) const;

  /// Run the bitstream checker over the benign circuit — the stealthiness
  /// claim: no findings under structural checks.
  bitstream::CheckReport check_stealthiness(
      const bitstream::CheckerOptions& opt = {}) const;

  /// Campaign configuration for one byte campaign (shared between the
  /// serial path, the farmed full-key path, and fabric shard workers,
  /// which must run the byte-for-byte identical config).
  CampaignConfig byte_campaign_config(std::size_t key_byte,
                                      std::size_t traces,
                                      SensorMode mode) const;

 private:
  Calibration cal_;
  AttackSetup setup_;
  std::uint64_t seed_;
};

}  // namespace slm::core
