#include "core/attack.hpp"

#include <algorithm>

#include "core/parallel.hpp"

namespace slm::core {

namespace {

KeyByteReport report_from(std::size_t key_byte, const CampaignResult& r) {
  KeyByteReport report;
  report.key_byte = key_byte;
  report.true_value = r.correct_guess;
  report.recovered = r.recovered_guess;
  report.success = r.key_recovered;
  report.traces = r.traces_run;
  report.mtd = r.mtd;
  report.threads_used = r.threads_used;
  report.capture_seconds = r.capture_seconds;
  report.block_size = r.block_size;
  report.kernel_seconds = r.kernel_seconds;
  report.cpa_seconds = r.cpa_seconds;
  report.checkpoint_io_seconds = r.checkpoint_io_seconds;
  report.selection_seconds = r.selection_seconds;
  report.resumed_from = r.resumed_from;
  report.snapshot_path = r.snapshot_path;
  report.rng_contract = r.rng_contract;
  return report;
}

}  // namespace

StealthyAttack::StealthyAttack(BenignCircuit circuit, Calibration cal,
                               std::uint64_t seed)
    : cal_(std::move(cal)), setup_(circuit, cal_, seed), seed_(seed) {}

CampaignConfig StealthyAttack::byte_campaign_config(std::size_t key_byte,
                                                    std::size_t traces,
                                                    SensorMode mode) const {
  CampaignConfig cfg;
  cfg.traces = traces;
  cfg.mode = mode;
  cfg.target_key_byte = key_byte;
  cfg.target_bit = 0;
  cfg.seed = seed_ ^ (0x9e3779b97f4a7c15ull * (key_byte + 1));
  // Single-bit modes pick the strongest bit the way the paper does
  // (variance / operating point).
  if (mode == SensorMode::kBenignSingleBit ||
      mode == SensorMode::kTdcSingleBit) {
    cfg.single_bit = CampaignConfig::kAutoBit;
  }
  // The multiplier's Hamming weight needs the top-variance restriction
  // (glitchy endpoints carry variance but no slope; see DESIGN.md).
  if (mode == SensorMode::kBenignHw &&
      setup_.circuit_kind() == BenignCircuit::kC6288x2) {
    cfg.selection_top_k = 12;
  }

  // Sampling window around the leakage cycle of this byte's column.
  sca::LastRoundBitModel model(key_byte, 0);
  const double cyc = 1000.0 / cal_.aes_clock_mhz;
  const double leak_t =
      static_cast<double>(crypto::AesDatapathModel::leakage_cycle_for_byte(
          model.register_position())) *
      cyc;
  cfg.window_start_ns = leak_t - 2.0 * cyc;
  cfg.window_end_ns = leak_t + 3.5 * cyc;
  return cfg;
}

KeyByteReport StealthyAttack::recover_key_byte(std::size_t key_byte,
                                               std::size_t traces,
                                               SensorMode mode,
                                               unsigned threads) {
  return recover_key_byte(key_byte, traces, mode, threads, RunOptions{});
}

KeyByteReport StealthyAttack::recover_key_byte(std::size_t key_byte,
                                               std::size_t traces,
                                               SensorMode mode,
                                               unsigned threads,
                                               const RunOptions& opts) {
  CampaignConfig cfg = byte_campaign_config(key_byte, traces, mode);
  cfg.observer = opts.observer;
  cfg.checkpoint_dir = opts.checkpoint_dir;
  cfg.resume = opts.resume;
  cfg.halt_after_traces = opts.halt_after_traces;
  cfg.block = opts.block;
  cfg.simd = opts.simd;
  cfg.rng_contract = opts.rng_contract;
  ParallelCampaign campaign(setup_, cfg, threads);
  return report_from(key_byte, campaign.run());
}

std::vector<KeyByteReport> StealthyAttack::recover_key_bytes(
    const std::vector<std::size_t>& key_bytes, std::size_t traces,
    SensorMode mode, unsigned threads) {
  std::vector<KeyByteReport> reports;
  reports.reserve(key_bytes.size());
  for (std::size_t b : key_bytes) {
    reports.push_back(recover_key_byte(b, traces, mode, threads));
  }
  return reports;
}

StealthyAttack::FullKeyReport StealthyAttack::recover_full_key(
    std::size_t traces_per_byte, SensorMode mode, unsigned threads) {
  FullKeyReport report;
  report.success = true;
  const unsigned t = resolve_threads(threads);
  if (t <= 1) {
    // Exact legacy behaviour: the 16 campaigns run back to back on the
    // shared platform (the victim's register state carries over).
    for (std::size_t b = 0; b < 16; ++b) {
      auto byte_report = recover_key_byte(b, traces_per_byte, mode, 1);
      report.last_round_key[b] = byte_report.recovered;
      report.success = report.success && byte_report.success;
      report.bytes.push_back(std::move(byte_report));
    }
  } else {
    // Farm the 16 byte-campaigns across the pool. Every campaign gets a
    // fresh, identically-seeded platform replica, so each byte's result
    // is independent of which worker runs it and of the other bytes —
    // deterministic for any thread count >= 2.
    report.bytes.resize(16);
    ThreadPool pool(std::min(t, 16u));
    pool.run_indexed(16, [&](std::size_t b) {
      AttackSetup local(setup_.circuit_kind(), cal_, seed_);
      const CampaignConfig cfg =
          byte_campaign_config(b, traces_per_byte, mode);
      CpaCampaign campaign(local, cfg);
      report.bytes[b] = report_from(b, campaign.run());
    });
    for (std::size_t b = 0; b < 16; ++b) {
      report.last_round_key[b] = report.bytes[b].recovered;
      report.success = report.success && report.bytes[b].success;
    }
  }
  report.master_key = crypto::recover_master_key(report.last_round_key);
  return report;
}

bitstream::CheckReport StealthyAttack::check_stealthiness(
    const bitstream::CheckerOptions& opt) const {
  bitstream::BitstreamChecker checker(opt);
  bitstream::CheckReport combined;
  for (std::size_t i = 0; i < setup_.benign_instance_count(); ++i) {
    auto report = checker.check(setup_.benign_netlist(i));
    for (auto& f : report.findings) {
      combined.findings.push_back(std::move(f));
    }
  }
  return combined;
}

}  // namespace slm::core
