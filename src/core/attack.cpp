#include "core/attack.hpp"

#include <algorithm>
#include <chrono>

#include "common/error.hpp"
#include "core/parallel.hpp"

namespace slm::core {

namespace {

KeyByteReport report_from(std::size_t key_byte, const CampaignResult& r) {
  KeyByteReport report;
  report.key_byte = key_byte;
  report.true_value = r.correct_guess;
  report.recovered = r.recovered_guess;
  report.success = r.key_recovered;
  report.traces = r.traces_run;
  report.mtd = r.mtd;
  report.threads_used = r.threads_used;
  report.capture_seconds = r.capture_seconds;
  report.block_size = r.block_size;
  report.kernel_seconds = r.kernel_seconds;
  report.cpa_seconds = r.cpa_seconds;
  report.checkpoint_io_seconds = r.checkpoint_io_seconds;
  report.selection_seconds = r.selection_seconds;
  report.resumed_from = r.resumed_from;
  report.snapshot_path = r.snapshot_path;
  report.rng_contract = r.rng_contract;
  return report;
}

}  // namespace

StealthyAttack::StealthyAttack(BenignCircuit circuit, Calibration cal,
                               std::uint64_t seed)
    : cal_(std::move(cal)), setup_(circuit, cal_, seed), seed_(seed) {}

CampaignConfig StealthyAttack::byte_campaign_config(std::size_t key_byte,
                                                    std::size_t traces,
                                                    SensorMode mode) const {
  CampaignConfig cfg;
  cfg.traces = traces;
  cfg.mode = mode;
  cfg.target_key_byte = key_byte;
  cfg.target_bit = 0;
  cfg.seed = seed_ ^ (0x9e3779b97f4a7c15ull * (key_byte + 1));
  // Single-bit modes pick the strongest bit the way the paper does
  // (variance / operating point).
  if (mode == SensorMode::kBenignSingleBit ||
      mode == SensorMode::kTdcSingleBit) {
    cfg.single_bit = CampaignConfig::kAutoBit;
  }
  // The multiplier's Hamming weight needs the top-variance restriction
  // (glitchy endpoints carry variance but no slope; see DESIGN.md).
  if (mode == SensorMode::kBenignHw &&
      setup_.circuit_kind() == BenignCircuit::kC6288x2) {
    cfg.selection_top_k = 12;
  }

  // Sampling window around the leakage cycle of this byte's column.
  sca::LastRoundBitModel model(key_byte, 0);
  const double cyc = 1000.0 / cal_.aes_clock_mhz;
  const double leak_t =
      static_cast<double>(crypto::AesDatapathModel::leakage_cycle_for_byte(
          model.register_position())) *
      cyc;
  cfg.window_start_ns = leak_t - 2.0 * cyc;
  cfg.window_end_ns = leak_t + 3.5 * cyc;
  return cfg;
}

KeyByteReport StealthyAttack::recover_key_byte(std::size_t key_byte,
                                               std::size_t traces,
                                               SensorMode mode,
                                               unsigned threads) {
  return recover_key_byte(key_byte, traces, mode, threads, RunOptions{});
}

KeyByteReport StealthyAttack::recover_key_byte(std::size_t key_byte,
                                               std::size_t traces,
                                               SensorMode mode,
                                               unsigned threads,
                                               const RunOptions& opts) {
  CampaignConfig cfg = byte_campaign_config(key_byte, traces, mode);
  cfg.observer = opts.observer;
  cfg.checkpoint_dir = opts.checkpoint_dir;
  cfg.resume = opts.resume;
  cfg.halt_after_traces = opts.halt_after_traces;
  cfg.block = opts.block;
  cfg.simd = opts.simd;
  cfg.rng_contract = opts.rng_contract;
  cfg.pool = opts.pool;
  cfg.store_out = opts.store_out;
  ParallelCampaign campaign(setup_, cfg, threads);
  return report_from(key_byte, campaign.run());
}

std::vector<KeyByteReport> StealthyAttack::recover_key_bytes(
    const std::vector<std::size_t>& key_bytes, std::size_t traces,
    SensorMode mode, unsigned threads) {
  std::vector<KeyByteReport> reports;
  reports.reserve(key_bytes.size());
  for (std::size_t b : key_bytes) {
    reports.push_back(recover_key_byte(b, traces, mode, threads));
  }
  return reports;
}

CampaignConfig StealthyAttack::fullkey_campaign_config(std::size_t traces,
                                                       SensorMode mode) const {
  CampaignConfig cfg;
  cfg.traces = traces;
  cfg.mode = mode;
  cfg.target_key_byte = 0;  // fused engine attacks all 16; farmed overrides
  cfg.target_bit = 0;
  // One seed plan for the whole key: every full-key path (fused or
  // farmed) derives the identical shared capture stream from it.
  cfg.seed = seed_ ^ (0x9e3779b97f4a7c15ull * 17);
  if (mode == SensorMode::kBenignSingleBit ||
      mode == SensorMode::kTdcSingleBit) {
    cfg.single_bit = CampaignConfig::kAutoBit;
  }
  if (mode == SensorMode::kBenignHw &&
      setup_.circuit_kind() == BenignCircuit::kC6288x2) {
    cfg.selection_top_k = 12;
  }

  // The shared window must bracket every byte's leakage cycle — the
  // last-round columns retire on different cycles, so this is wider
  // than any single byte_campaign_config window.
  const double cyc = 1000.0 / cal_.aes_clock_mhz;
  double leak_lo = 0.0;
  double leak_hi = 0.0;
  for (std::size_t b = 0; b < 16; ++b) {
    sca::LastRoundBitModel model(b, 0);
    const double leak_t =
        static_cast<double>(crypto::AesDatapathModel::leakage_cycle_for_byte(
            model.register_position())) *
        cyc;
    if (b == 0 || leak_t < leak_lo) leak_lo = leak_t;
    if (b == 0 || leak_t > leak_hi) leak_hi = leak_t;
  }
  cfg.window_start_ns = leak_lo - 2.0 * cyc;
  cfg.window_end_ns = leak_hi + 3.5 * cyc;
  return cfg;
}

StealthyAttack::FullKeyReport StealthyAttack::recover_full_key(
    std::size_t traces, SensorMode mode, unsigned threads) {
  return recover_full_key(traces, mode, threads, FullKeyOptions{});
}

StealthyAttack::FullKeyReport StealthyAttack::recover_full_key(
    std::size_t traces, SensorMode mode, unsigned threads,
    const FullKeyOptions& opts) {
  FullKeyReport report;
  report.success = true;
  report.mode_used = opts.mode;
  const unsigned t = resolve_threads(threads);
  report.threads_used = t;
  const auto t0 = std::chrono::steady_clock::now();
  if (opts.mode == FullKeyMode::kFused) {
    CampaignConfig cfg = fullkey_campaign_config(traces, mode);
    cfg.observer = opts.run.observer;
    cfg.checkpoint_dir = opts.run.checkpoint_dir;
    cfg.resume = opts.run.resume;
    cfg.halt_after_traces = opts.run.halt_after_traces;
    cfg.block = opts.run.block;
    cfg.simd = opts.run.simd;
    cfg.rng_contract = opts.run.rng_contract;
    cfg.pool = opts.run.pool;
    cfg.store_out = opts.run.store_out;
    ParallelCampaign campaign(setup_, cfg, threads);
    const FullKeyRunResult r = campaign.run_fullkey(opts.fused);
    report.bytes.reserve(16);
    for (std::size_t b = 0; b < 16; ++b) {
      const FullKeyByteResult& br = r.bytes[b];
      KeyByteReport kb;
      kb.key_byte = b;
      kb.true_value = br.correct;
      kb.recovered = br.recovered;
      kb.success = br.success;
      kb.traces = br.traces;
      kb.early_exited = br.early_exited;
      kb.mtd = br.mtd;
      kb.threads_used = r.threads_used;
      kb.capture_seconds = r.capture_seconds;  // shared capture pass
      kb.block_size = r.block_size;
      kb.rng_contract = r.rng_contract;
      kb.resumed_from = r.resumed_from;
      kb.snapshot_path = r.snapshot_path;
      report.last_round_key[b] = kb.recovered;
      report.success = report.success && kb.success;
      if (kb.early_exited) ++report.bytes_early_exited;
      report.bytes.push_back(std::move(kb));
    }
    report.traces_captured = r.traces_run;
    report.block_size = r.block_size;
    report.rng_contract = r.rng_contract;
    report.resumed_from = r.resumed_from;
    report.snapshot_path = r.snapshot_path;
  } else {
    SLM_REQUIRE(opts.run.store_out.empty(),
                "store_out: the farmed full-key oracle captures 16 "
                "separate trace streams — use the fused engine");
    // Farmed oracle: 16 single-byte campaigns over the SAME shared
    // config, each on a fresh, identically-seeded platform replica —
    // per-byte results are independent of worker scheduling AND of the
    // thread count (each campaign is serial on its own replica).
    report.bytes.resize(16);
    ThreadPool pool(std::min(std::max(t, 1u), 16u));
    pool.run_indexed(16, [&](std::size_t b) {
      AttackSetup local(setup_.circuit_kind(), cal_, seed_);
      CampaignConfig cfg = fullkey_campaign_config(traces, mode);
      cfg.target_key_byte = b;
      cfg.block = opts.run.block;
      cfg.simd = opts.run.simd;
      cfg.rng_contract = opts.run.rng_contract;
      CpaCampaign campaign(local, cfg);
      report.bytes[b] = report_from(b, campaign.run());
    });
    for (std::size_t b = 0; b < 16; ++b) {
      report.last_round_key[b] = report.bytes[b].recovered;
      report.success = report.success && report.bytes[b].success;
      report.traces_captured += report.bytes[b].traces;
    }
    report.block_size = report.bytes[0].block_size;
    report.rng_contract = report.bytes[0].rng_contract;
  }
  report.capture_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  report.master_key = crypto::recover_master_key(report.last_round_key);
  return report;
}

bitstream::CheckReport StealthyAttack::check_stealthiness(
    const bitstream::CheckerOptions& opt) const {
  bitstream::BitstreamChecker checker(opt);
  bitstream::CheckReport combined;
  for (std::size_t i = 0; i < setup_.benign_instance_count(); ++i) {
    auto report = checker.check(setup_.benign_netlist(i));
    for (auto& f : report.findings) {
      combined.findings.push_back(std::move(f));
    }
  }
  return combined;
}

}  // namespace slm::core
