#include "core/attack.hpp"

namespace slm::core {

StealthyAttack::StealthyAttack(BenignCircuit circuit, Calibration cal,
                               std::uint64_t seed)
    : cal_(std::move(cal)), setup_(circuit, cal_, seed), seed_(seed) {}

KeyByteReport StealthyAttack::recover_key_byte(std::size_t key_byte,
                                               std::size_t traces,
                                               SensorMode mode) {
  CampaignConfig cfg;
  cfg.traces = traces;
  cfg.mode = mode;
  cfg.target_key_byte = key_byte;
  cfg.target_bit = 0;
  cfg.seed = seed_ ^ (0x9e3779b97f4a7c15ull * (key_byte + 1));
  // Single-bit modes pick the strongest bit the way the paper does
  // (variance / operating point).
  if (mode == SensorMode::kBenignSingleBit ||
      mode == SensorMode::kTdcSingleBit) {
    cfg.single_bit = CampaignConfig::kAutoBit;
  }
  // The multiplier's Hamming weight needs the top-variance restriction
  // (glitchy endpoints carry variance but no slope; see DESIGN.md).
  if (mode == SensorMode::kBenignHw &&
      setup_.circuit_kind() == BenignCircuit::kC6288x2) {
    cfg.selection_top_k = 12;
  }

  // Sampling window around the leakage cycle of this byte's column.
  sca::LastRoundBitModel model(key_byte, 0);
  const double cyc = 1000.0 / cal_.aes_clock_mhz;
  const double leak_t =
      static_cast<double>(crypto::AesDatapathModel::leakage_cycle_for_byte(
          model.register_position())) *
      cyc;
  cfg.window_start_ns = leak_t - 2.0 * cyc;
  cfg.window_end_ns = leak_t + 3.5 * cyc;

  CpaCampaign campaign(setup_, cfg);
  const CampaignResult r = campaign.run();

  KeyByteReport report;
  report.key_byte = key_byte;
  report.true_value = r.correct_guess;
  report.recovered = r.recovered_guess;
  report.success = r.key_recovered;
  report.traces = r.traces_run;
  report.mtd = r.mtd;
  return report;
}

std::vector<KeyByteReport> StealthyAttack::recover_key_bytes(
    const std::vector<std::size_t>& key_bytes, std::size_t traces,
    SensorMode mode) {
  std::vector<KeyByteReport> reports;
  reports.reserve(key_bytes.size());
  for (std::size_t b : key_bytes) {
    reports.push_back(recover_key_byte(b, traces, mode));
  }
  return reports;
}

StealthyAttack::FullKeyReport StealthyAttack::recover_full_key(
    std::size_t traces_per_byte, SensorMode mode) {
  FullKeyReport report;
  report.success = true;
  for (std::size_t b = 0; b < 16; ++b) {
    auto byte_report = recover_key_byte(b, traces_per_byte, mode);
    report.last_round_key[b] = byte_report.recovered;
    report.success = report.success && byte_report.success;
    report.bytes.push_back(std::move(byte_report));
  }
  report.master_key = crypto::recover_master_key(report.last_round_key);
  return report;
}

bitstream::CheckReport StealthyAttack::check_stealthiness(
    const bitstream::CheckerOptions& opt) const {
  bitstream::BitstreamChecker checker(opt);
  bitstream::CheckReport combined;
  for (std::size_t i = 0; i < setup_.benign_instance_count(); ++i) {
    auto report = checker.check(setup_.benign_netlist(i));
    for (auto& f : report.findings) {
      combined.findings.push_back(std::move(f));
    }
  }
  return combined;
}

}  // namespace slm::core
