#include "core/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "core/checkpoint.hpp"
#include "obs/observer.hpp"
#include "sca/selection.hpp"

namespace slm::core {

const char* sensor_mode_name(SensorMode m) {
  switch (m) {
    case SensorMode::kTdcFull:
      return "tdc-full";
    case SensorMode::kTdcSingleBit:
      return "tdc-single-bit";
    case SensorMode::kBenignHw:
      return "benign-hw";
    case SensorMode::kBenignSingleBit:
      return "benign-single-bit";
    case SensorMode::kRoCounter:
      return "ro-counter";
  }
  return "?";
}

std::vector<std::size_t> default_checkpoints(std::size_t traces) {
  static constexpr std::size_t kSchedule[] = {
      100,    200,    500,    1000,   2000,   5000,   10000,
      20000,  50000,  75000,  100000, 150000, 200000, 250000,
      300000, 350000, 400000, 450000, 500000, 750000, 1000000};
  std::vector<std::size_t> out;
  for (std::size_t c : kSchedule) {
    if (c < traces) out.push_back(c);
  }
  out.push_back(traces);
  return out;
}

CpaCampaign::CpaCampaign(AttackSetup& setup, const CampaignConfig& cfg)
    : setup_(setup), cfg_(cfg) {
  SLM_REQUIRE(cfg_.traces > 0, "CpaCampaign: zero traces");
  if (cfg_.fence.random_current_a > 0.0 || cfg_.fence.base_current_a > 0.0) {
    fence_.emplace(cfg_.fence);
  }
  SLM_REQUIRE(cfg_.window_start_ns < cfg_.window_end_ns,
              "CpaCampaign: bad sampling window");

  const Calibration& cal = setup_.calibration();

  // Sensor sampling instants: every second overclock cycle (150 MS/s).
  const double ts = cal.sensor_sample_period_ns();
  for (double t = 0.0; t <= cfg_.window_end_ns; t += ts) {
    if (t >= cfg_.window_start_ns) sample_times_.push_back(t);
  }
  SLM_REQUIRE(!sample_times_.empty(), "CpaCampaign: empty sampling window");

  // Victim activity cycles.
  const double cyc = 1000.0 / cal.aes_clock_mhz;
  std::vector<double> cycle_starts;
  cycle_starts.reserve(crypto::AesDatapathModel::kCycles);
  for (std::size_t c = 0; c < crypto::AesDatapathModel::kCycles; ++c) {
    cycle_starts.push_back(static_cast<double>(c) * cyc);
  }

  response_ = pdn::CycleResponseMatrix::build(cal.pdn, sample_times_,
                                              cycle_starts, cyc);
}

void CpaCampaign::make_voltages(
    const crypto::AesDatapathModel::Encryption& enc, Xoshiro256& rng,
    std::vector<double>& v_out, defense::ActiveFence* fence) const {
  const Calibration& cal = setup_.calibration();
  // Victim current as seen by the attacker region (coupling-attenuated).
  static thread_local std::vector<double> i_cycles;
  i_cycles.assign(enc.cycle_current.begin(), enc.cycle_current.end());
  if (fence != nullptr) {
    // The active fence sits in the victim region: its randomised draw
    // rides on the same coupling path and masks the victim's signal.
    for (double& i : i_cycles) i += fence->next_cycle_current();
  }
  const double coupling = setup_.effective_coupling();
  for (double& i : i_cycles) i *= coupling;

  response_.voltages(i_cycles, v_out);
  // One batched draw block; identical values and stream order to the
  // per-sample normal(rng, 0.0, sigma) calls (see FastNormal::fill).
  static thread_local std::vector<double> z;
  z.resize(v_out.size());
  FastNormal::instance().fill(rng, z.data(), z.size());
  for (std::size_t s = 0; s < v_out.size(); ++s) {
    v_out[s] += 0.0 + cal.env_noise_v * z[s];
  }
}

void CpaCampaign::read_sensor(const std::vector<double>& v,
                              const std::vector<std::size_t>& bits,
                              Xoshiro256& rng, std::vector<double>& y) const {
  y.resize(v.size());
  switch (cfg_.mode) {
    case SensorMode::kTdcFull:
      for (std::size_t s = 0; s < v.size(); ++s) {
        y[s] = static_cast<double>(setup_.tdc().sample(v[s], rng));
      }
      break;
    case SensorMode::kTdcSingleBit:
      for (std::size_t s = 0; s < v.size(); ++s) {
        y[s] =
            setup_.tdc().sample_bit(cfg_.single_bit, v[s], rng) ? 1.0 : 0.0;
      }
      break;
    case SensorMode::kBenignHw:
      for (std::size_t s = 0; s < v.size(); ++s) {
        y[s] = static_cast<double>(
            setup_.sensor().sample_toggle_hw(bits, v[s], rng));
      }
      break;
    case SensorMode::kBenignSingleBit:
      for (std::size_t s = 0; s < v.size(); ++s) {
        y[s] = setup_.sensor().sample_toggle_bit(cfg_.single_bit, v[s], rng)
                   ? 1.0
                   : 0.0;
      }
      break;
    case SensorMode::kRoCounter:
      for (std::size_t s = 0; s < v.size(); ++s) {
        y[s] = static_cast<double>(setup_.ro_sensor().sample(v[s], rng));
      }
      break;
  }
}

CpaCampaign::SensorPlan CpaCampaign::make_sensor_plan(
    const std::vector<std::size_t>& bits) const {
  SensorPlan plan;
  if (cfg_.mode == SensorMode::kBenignHw) {
    plan.hw = setup_.sensor().compile_hw_plan(bits);
    plan.batched = true;
  } else if (cfg_.mode == SensorMode::kBenignSingleBit) {
    plan.bit = setup_.sensor().compile_bit_plan(cfg_.single_bit);
    plan.batched = true;
  }
  return plan;
}

void CpaCampaign::read_sensor_fast(const SensorPlan& plan,
                                   const std::vector<double>& v,
                                   const std::vector<std::size_t>& bits,
                                   Xoshiro256& rng,
                                   std::vector<double>& y) const {
  if (!plan.batched) {
    read_sensor(v, bits, rng, y);
    return;
  }
  y.resize(v.size());
  if (cfg_.mode == SensorMode::kBenignHw) {
    setup_.sensor().toggle_hw_batch(plan.hw, v.data(), v.size(), rng,
                                    y.data());
  } else {
    setup_.sensor().toggle_bit_batch(plan.bit, v.data(), v.size(), rng,
                                     y.data());
  }
}

void CpaCampaign::resolve_sensor_bits(CampaignResult* result) {
  if (cfg_.mode == SensorMode::kBenignHw) {
    auto bits = select_bits_of_interest();
    log_info() << "campaign: " << bits.size() << " bits of interest selected";
    SLM_REQUIRE(!bits.empty(),
                "CpaCampaign: no bits of interest — sensor not sensitive "
                "at this operating point");
    if (result != nullptr) result->bits_of_interest = std::move(bits);
  }
  if (cfg_.mode == SensorMode::kBenignSingleBit) {
    if (cfg_.single_bit == CampaignConfig::kAutoBit) {
      cfg_.single_bit = run_selection_pass().highest_variance_bit();
      log_info() << "campaign: auto-selected endpoint bit "
                 << cfg_.single_bit;
    }
    SLM_REQUIRE(cfg_.single_bit < setup_.sensor_bits(),
                "CpaCampaign: single_bit out of range");
  }
  if (cfg_.mode == SensorMode::kTdcSingleBit) {
    if (cfg_.single_bit == CampaignConfig::kAutoBit) {
      // The paper picks "the highest variant bit ... close to the idle
      // value". The highest-variance thermometer stage is the one whose
      // firing probability sits closest to 1/2 at the operating point,
      // so probe the stages around the mean depth directly (the floored
      // reading's mean alone is biased by half a stage).
      Xoshiro256 pre_rng(cfg_.seed ^ 0x7dc0u);
      std::vector<double> v;
      std::vector<double> voltages;
      OnlineMeanVar depth;
      for (std::size_t t = 0; t < 256; ++t) {
        crypto::Block pt;
        for (auto& b : pt) b = static_cast<std::uint8_t>(pre_rng.next());
        const auto enc = setup_.victim().encrypt(pt);
        make_voltages(enc, pre_rng, v);
        for (double vs : v) {
          voltages.push_back(vs);
          depth.add(static_cast<double>(setup_.tdc().sample(vs, pre_rng)));
        }
      }
      const std::size_t stages = setup_.calibration().tdc.stages;
      const auto centre = static_cast<std::size_t>(depth.mean());
      std::size_t best_stage = centre;
      double best_dist = 1.0;
      for (std::size_t cand = (centre > 3 ? centre - 3 : 0);
           cand <= centre + 3 && cand < stages; ++cand) {
        std::size_t ones = 0;
        for (double vs : voltages) {
          if (setup_.tdc().sample_bit(cand, vs, pre_rng)) ++ones;
        }
        const double p = static_cast<double>(ones) /
                         static_cast<double>(voltages.size());
        if (std::abs(p - 0.5) < best_dist) {
          best_dist = std::abs(p - 0.5);
          best_stage = cand;
        }
      }
      cfg_.single_bit = best_stage;
      log_info() << "campaign: auto-selected TDC stage " << cfg_.single_bit;
    }
    SLM_REQUIRE(cfg_.single_bit < setup_.calibration().tdc.stages,
                "CpaCampaign: TDC bit out of range");
  }
}

sca::WelchTTest CpaCampaign::run_tvla(std::size_t traces_per_population) {
  SLM_REQUIRE(traces_per_population >= 2, "run_tvla: too few traces");
  CampaignResult scratch;
  resolve_sensor_bits(&scratch);

  sca::WelchTTest ttest(sample_times_.size());
  Xoshiro256 rng(cfg_.seed ^ 0x77a1u);
  const crypto::Block fixed_pt =
      crypto::block_from_hex("da39a3ee5e6b4b0d3255bfef95601890");
  std::vector<double> v;
  std::vector<double> y;
  for (std::size_t t = 0; t < 2 * traces_per_population; ++t) {
    const bool fixed = (t % 2) == 0;
    crypto::Block pt = fixed_pt;
    if (!fixed) {
      for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());
    }
    const auto enc = setup_.victim().encrypt(pt);
    make_voltages(enc, rng, v);
    read_sensor(v, scratch.bits_of_interest, rng, y);
    ttest.add(fixed, y);
  }
  return ttest;
}

sca::BitSelector CpaCampaign::run_selection_pass() {
  Xoshiro256 rng(cfg_.seed ^ 0xb17561ec7u);
  sca::BitSelector selector(setup_.sensor_bits());
  std::vector<double> v;
  if (cfg_.compiled_kernels) {
    // Same draws, same toggle decisions — only the bookkeeping is batched
    // (per-bit counts instead of per-sample BitVec words).
    std::vector<std::size_t> ones(setup_.sensor_bits(), 0);
    std::size_t samples = 0;
    for (std::size_t t = 0; t < cfg_.selection_traces; ++t) {
      crypto::Block pt;
      for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());
      const auto enc = setup_.victim().encrypt(pt);
      make_voltages(enc, rng, v);
      setup_.sensor().toggle_accumulate_batch(v.data(), v.size(), rng,
                                              ones.data());
      samples += v.size();
    }
    selector.add_batch(ones, samples);
    return selector;
  }
  for (std::size_t t = 0; t < cfg_.selection_traces; ++t) {
    crypto::Block pt;
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());
    const auto enc = setup_.victim().encrypt(pt);
    make_voltages(enc, rng, v);
    for (double vs : v) {
      selector.add(setup_.sensor().sample_toggles(vs, rng));
    }
  }
  return selector;
}

std::vector<std::size_t> CpaCampaign::select_bits_of_interest() {
  const auto selector = run_selection_pass();
  auto bits = selector.bits_of_interest(cfg_.selection_min_variance);
  if (cfg_.selection_top_k > 0 && bits.size() > cfg_.selection_top_k) {
    std::sort(bits.begin(), bits.end(), [&](std::size_t a, std::size_t b) {
      return selector.stat(a).variance > selector.stat(b).variance;
    });
    bits.resize(cfg_.selection_top_k);
    std::sort(bits.begin(), bits.end());
  }
  return bits;
}

CampaignResult CpaCampaign::run() {
  const auto wall_start = std::chrono::steady_clock::now();
  obs::CampaignObserver* const ob = cfg_.observer;
  CampaignResult result;
  result.mode = cfg_.mode;
  result.sample_times_ns = sample_times_;

  sca::LastRoundBitModel model(cfg_.target_key_byte, cfg_.target_bit);
  result.correct_guess =
      model.correct_guess(setup_.victim().cipher().last_round_key());

  {
    const auto sel_start = std::chrono::steady_clock::now();
    std::optional<obs::CampaignObserver::Span> span;
    if (ob != nullptr) span.emplace(ob->span("selection"));
    resolve_sensor_bits(&result);
    result.selection_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      sel_start)
            .count();
  }
  result.single_bit = cfg_.single_bit;

  auto checkpoints =
      cfg_.checkpoints.empty() ? default_checkpoints(cfg_.traces)
                               : cfg_.checkpoints;
  std::sort(checkpoints.begin(), checkpoints.end());
  std::size_t next_cp = 0;

  // The fast path bins traces into (ciphertext-class, base-bit) cells and
  // folds them into full per-guess CPA sums only at checkpoints; readings
  // are integer-valued so the regrouped sums are bit-identical to the
  // reference engine's (see sca::XorClassCpa).
  const bool fast = cfg_.compiled_kernels;
  const SensorPlan plan =
      fast ? make_sensor_plan(result.bits_of_interest) : SensorPlan{};

  sca::CpaEngine engine(256, sample_times_.size());
  sca::XorClassCpa cls(sample_times_.size());
  Xoshiro256 rng(cfg_.seed);

  // Crash-safe resume: restore the exact capture state the snapshot
  // froze — accumulator sums, main RNG position, victim register
  // history, fence stream — and skip the checkpoints already recorded.
  // The selection pre-pass above re-ran from its own deterministic seed
  // streams, so it needs no snapshotting.
  std::size_t start_t = 1;
  const bool snapshotting = !cfg_.checkpoint_dir.empty();
  if (cfg_.resume && snapshotting) {
    if (auto ck = load_checkpoint(cfg_.checkpoint_dir)) {
      require_checkpoint_matches(*ck, cfg_, 1, sample_times_.size());
      const CheckpointShard& sh = ck->shard_state[0];
      SLM_REQUIRE(sh.has_fence == fence_.has_value(),
                  "resume: fence configuration differs from snapshot");
      rng.set_state(sh.rng);
      setup_.victim().restore_registers(sh.victim);
      if (fence_) fence_->set_rng_state(sh.fence_rng);
      ByteReader acc(sh.accumulator.data(), sh.accumulator.size());
      if (fast) {
        cls.load(acc);
      } else {
        engine.load(acc);
      }
      SLM_REQUIRE(acc.done(), "resume: trailing accumulator bytes");
      result.progress = ck->progress;
      result.resumed_from = static_cast<std::size_t>(ck->traces_done);
      start_t = result.resumed_from + 1;
      while (next_cp < checkpoints.size() &&
             checkpoints[next_cp] <= result.resumed_from) {
        ++next_cp;
      }
      log_info() << "campaign: resumed from "
                 << checkpoint_file(cfg_.checkpoint_dir) << " at trace "
                 << result.resumed_from << "/" << cfg_.traces;
      if (ob != nullptr) {
        ob->metrics().add("slm.checkpoint.resumes_total");
        ob->event("resume",
                  obs::JsonWriter()
                      .field("traces_done",
                             static_cast<std::uint64_t>(result.resumed_from))
                      .field("path", checkpoint_file(cfg_.checkpoint_dir)));
      }
    }
  }

  if (ob != nullptr) {
    ob->metrics().set("slm.campaign.traces_target",
                      static_cast<double>(cfg_.traces));
    ob->event("run_start",
              obs::JsonWriter()
                  .field("mode", sensor_mode_name(cfg_.mode))
                  .field("traces", static_cast<std::uint64_t>(cfg_.traces))
                  .field("seed", static_cast<std::uint64_t>(cfg_.seed))
                  .field("threads", static_cast<std::uint64_t>(1))
                  .field("compiled", fast)
                  .field("resumed_from",
                         static_cast<std::uint64_t>(result.resumed_from)));
  }

  // Per-trace phase timers only exist when an observer is attached; the
  // disabled path performs no clock reads inside the loop.
  const bool timed = ob != nullptr;
  double kernel_s = 0.0;
  double cpa_s = 0.0;
  double ckpt_io_s = 0.0;
  std::size_t seg_traces = start_t - 1;
  double seg_time = timed ? obs::monotonic_seconds() : 0.0;

  std::vector<double> v;
  std::vector<double> y(sample_times_.size());
  std::vector<std::uint8_t> h;

  for (std::size_t t = start_t; t <= cfg_.traces; ++t) {
    const double t0 = timed ? obs::monotonic_seconds() : 0.0;
    crypto::Block pt;
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());
    const auto enc = setup_.victim().encrypt(pt);
    make_voltages(enc, rng, v);
    double t1 = 0.0;
    if (fast) {
      read_sensor_fast(plan, v, result.bits_of_interest, rng, y);
      t1 = timed ? obs::monotonic_seconds() : 0.0;
      cls.add_trace(model.class_value(enc.ciphertext),
                    model.class_bit(enc.ciphertext), y);
    } else {
      read_sensor(v, result.bits_of_interest, rng, y);
      t1 = timed ? obs::monotonic_seconds() : 0.0;
      model.hypotheses(enc.ciphertext, h);
      engine.add_trace(h, y);
    }
    if (timed) {
      const double t2 = obs::monotonic_seconds();
      kernel_s += t1 - t0;
      cpa_s += t2 - t1;
    }

    while (next_cp < checkpoints.size() && t == checkpoints[next_cp]) {
      const double f0 = timed ? obs::monotonic_seconds() : 0.0;
      if (fast) {
        const sca::CpaEngine folded = cls.fold(model.pattern().data());
        result.progress.push_back(
            sca::snapshot_progress(folded, result.correct_guess));
      } else {
        result.progress.push_back(
            sca::snapshot_progress(engine, result.correct_guess));
      }
      if (timed) cpa_s += obs::monotonic_seconds() - f0;

      if (ob != nullptr) {
        const sca::CpaProgressPoint& p = result.progress.back();
        const double now = obs::monotonic_seconds();
        const double seg_rate =
            now > seg_time
                ? static_cast<double>(t - seg_traces) / (now - seg_time)
                : 0.0;
        ob->metrics().add("slm.campaign.checkpoints_total");
        ob->metrics().set("slm.campaign.traces_done",
                          static_cast<double>(t));
        ob->metrics().set("slm.cpa.best_guess",
                          static_cast<double>(p.best_guess));
        ob->metrics().set("slm.cpa.correct_corr", p.correct_corr);
        ob->metrics().set("slm.cpa.corr_margin",
                          p.correct_corr - p.best_wrong_corr);
        ob->metrics().observe("slm.campaign.segment_traces_per_sec",
                              seg_rate);
        ob->event(
            "checkpoint",
            obs::JsonWriter()
                .field("traces", static_cast<std::uint64_t>(p.traces))
                .field("best_guess",
                       static_cast<std::uint64_t>(p.best_guess))
                .field("correct_rank",
                       static_cast<std::uint64_t>(p.correct_rank))
                .field("correct_corr", p.correct_corr)
                .field("best_wrong_corr", p.best_wrong_corr)
                .field("corr_margin", p.correct_corr - p.best_wrong_corr)
                .field("traces_per_sec", seg_rate)
                .raw("shard_traces",
                     "[" + std::to_string(t) + "]"));
        seg_traces = t;
        seg_time = now;
      }

      if (snapshotting) {
        const double s0 = obs::monotonic_seconds();
        CampaignCheckpoint ck;
        ck.seed = cfg_.seed;
        ck.total_traces = cfg_.traces;
        ck.mode = static_cast<std::uint32_t>(cfg_.mode);
        ck.shards = 1;
        ck.samples = sample_times_.size();
        ck.target_key_byte = cfg_.target_key_byte;
        ck.target_bit = cfg_.target_bit;
        ck.single_bit = cfg_.single_bit;
        ck.compiled = fast;
        ck.traces_done = t;
        CheckpointShard sh;
        sh.position = t;
        sh.rng = rng.state();
        sh.victim = setup_.victim().register_snapshot();
        sh.has_fence = fence_.has_value();
        if (fence_) sh.fence_rng = fence_->rng_state();
        ByteWriter acc;
        if (fast) {
          cls.save(acc);
        } else {
          engine.save(acc);
        }
        sh.accumulator = acc.bytes();
        ck.shard_state.push_back(std::move(sh));
        ck.progress = result.progress;
        const std::size_t bytes = save_checkpoint(cfg_.checkpoint_dir, ck);
        result.snapshot_path = checkpoint_file(cfg_.checkpoint_dir);
        const double io = obs::monotonic_seconds() - s0;
        ckpt_io_s += io;
        if (ob != nullptr) {
          ob->metrics().add("slm.checkpoint.snapshots_total");
          ob->metrics().add("slm.checkpoint.bytes_total",
                            static_cast<double>(bytes));
          ob->metrics().observe("slm.checkpoint.write_seconds", io);
          ob->event("snapshot",
                    obs::JsonWriter()
                        .field("traces", static_cast<std::uint64_t>(t))
                        .field("bytes", static_cast<std::uint64_t>(bytes))
                        .field("seconds", io)
                        .field("path", result.snapshot_path));
        }
      }
      ++next_cp;

      if (cfg_.halt_after_traces > 0 && t >= cfg_.halt_after_traces) {
        if (ob != nullptr) {
          ob->event("halt",
                    obs::JsonWriter()
                        .field("traces", static_cast<std::uint64_t>(t))
                        .field("path", result.snapshot_path));
        }
        throw CampaignHalted(t, result.snapshot_path);
      }
    }
  }

  if (fast) {
    const double f0 = timed ? obs::monotonic_seconds() : 0.0;
    engine = cls.fold(model.pattern().data());
    if (timed) cpa_s += obs::monotonic_seconds() - f0;
  }

  result.kernel_seconds = kernel_s;
  result.cpa_seconds = cpa_s;
  result.checkpoint_io_seconds = ckpt_io_s;
  if (ob != nullptr) {
    ob->metrics().set("slm.campaign.kernel_seconds", kernel_s);
    ob->metrics().set("slm.campaign.cpa_seconds", cpa_s);
    ob->metrics().set("slm.campaign.checkpoint_io_seconds", ckpt_io_s);
    ob->metrics().set("slm.campaign.selection_seconds",
                      result.selection_seconds);
  }

  if (result.progress.empty() ||
      result.progress.back().traces != engine.trace_count()) {
    result.progress.push_back(
        sca::snapshot_progress(engine, result.correct_guess));
  }

  result.traces_run = engine.trace_count();
  result.final_max_abs_corr = engine.max_abs_correlation();
  result.recovered_guess = static_cast<std::uint8_t>(engine.best_guess());
  result.key_recovered = result.recovered_guess == result.correct_guess;
  result.mtd = sca::estimate_mtd(result.progress);
  result.threads_used = 1;
  result.capture_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return result;
}

}  // namespace slm::core
