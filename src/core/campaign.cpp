#include "core/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <thread>

#include <string>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "core/checkpoint.hpp"
#include "core/parallel.hpp"
#include "obs/observer.hpp"
#include "sca/fold_kernels.hpp"
#include "sca/selection.hpp"
#include "store/trace_store.hpp"

namespace slm::core {

const char* sensor_mode_name(SensorMode m) {
  switch (m) {
    case SensorMode::kTdcFull:
      return "tdc-full";
    case SensorMode::kTdcSingleBit:
      return "tdc-single-bit";
    case SensorMode::kBenignHw:
      return "benign-hw";
    case SensorMode::kBenignSingleBit:
      return "benign-single-bit";
    case SensorMode::kRoCounter:
      return "ro-counter";
  }
  return "?";
}

std::vector<std::size_t> default_checkpoints(std::size_t traces) {
  static constexpr std::size_t kSchedule[] = {
      100,    200,    500,    1000,   2000,   5000,   10000,
      20000,  50000,  75000,  100000, 150000, 200000, 250000,
      300000, 350000, 400000, 450000, 500000, 750000, 1000000};
  std::vector<std::size_t> out;
  for (std::size_t c : kSchedule) {
    if (c < traces) out.push_back(c);
  }
  out.push_back(traces);
  return out;
}

std::vector<std::size_t> checkpoint_schedule(
    const std::vector<std::size_t>& requested, std::size_t traces) {
  auto checkpoints =
      requested.empty() ? default_checkpoints(traces) : requested;
  std::sort(checkpoints.begin(), checkpoints.end());
  return checkpoints;
}

std::size_t resolve_block(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("SLM_BLOCK")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return kDefaultBlockTraces;
}

bool resolve_simd(bool requested) {
  if (!requested) return false;
  // SLM_SIMD names a fold dispatch level now (sca/fold_kernels.hpp:
  // 0/scalar, sse2, avx2, unset = auto). The scalar level also forces
  // the scalar sensor kernels, preserving the historical SLM_SIMD=0
  // behavior; any vector level leaves the batch kernels on.
  return sca::active_dispatch() != sca::DispatchLevel::kScalar;
}

// Whether the serial engine's v2 generate/compute overlap should run.
// The producer thread only pays off when a second hardware thread can
// actually run it; on a single-core machine the two threads time-slice
// and the handoffs are pure overhead, so the default gates on
// hardware_concurrency. SLM_PIPELINE=0/1 forces it either way (the
// TSan drill forces it on; results are bit-identical regardless, only
// throughput moves — Campaign.ThreadAndBlockInvariant pins that).
bool resolve_pipeline() {
  if (const char* env = std::getenv("SLM_PIPELINE")) {
    return std::atoi(env) != 0;
  }
  return std::thread::hardware_concurrency() > 1;
}

const char* rng_contract_name(RngContract c) {
  switch (c) {
    case RngContract::kV1:
      return "v1";
    case RngContract::kV2:
      return "v2";
    case RngContract::kDefault:
      break;
  }
  return "default";
}

RngContract resolve_contract(RngContract requested) {
  if (requested != RngContract::kDefault) return requested;
  if (const char* env = std::getenv("SLM_RNG_CONTRACT")) {
    const std::string v(env);
    if (v == "v1" || v == "1") return RngContract::kV1;
    if (v == "v2" || v == "2") return RngContract::kV2;
    SLM_REQUIRE(false,
                "SLM_RNG_CONTRACT must be 'v1' or 'v2' (got '" + v + "')");
  }
  return RngContract::kV2;
}

CpaCampaign::CpaCampaign(AttackSetup& setup, const CampaignConfig& cfg)
    : setup_(setup), cfg_(cfg) {
  SLM_REQUIRE(cfg_.traces > 0, "CpaCampaign: zero traces");
  // Refuse up front any budget whose worst-case integer sums could
  // overflow the int64 fold accumulators.
  sca::require_fold_budget(cfg_.traces, "CpaCampaign");
  if (cfg_.fence.random_current_a > 0.0 || cfg_.fence.base_current_a > 0.0) {
    fence_.emplace(cfg_.fence);
  }
  SLM_REQUIRE(cfg_.window_start_ns < cfg_.window_end_ns,
              "CpaCampaign: bad sampling window");

  const Calibration& cal = setup_.calibration();

  // Sensor sampling instants: every second overclock cycle (150 MS/s).
  const double ts = cal.sensor_sample_period_ns();
  for (double t = 0.0; t <= cfg_.window_end_ns; t += ts) {
    if (t >= cfg_.window_start_ns) sample_times_.push_back(t);
  }
  SLM_REQUIRE(!sample_times_.empty(), "CpaCampaign: empty sampling window");

  // Victim activity cycles.
  const double cyc = 1000.0 / cal.aes_clock_mhz;
  std::vector<double> cycle_starts;
  cycle_starts.reserve(crypto::AesDatapathModel::kCycles);
  for (std::size_t c = 0; c < crypto::AesDatapathModel::kCycles; ++c) {
    cycle_starts.push_back(static_cast<double>(c) * cyc);
  }

  response_ = pdn::CycleResponseMatrix::build(cal.pdn, sample_times_,
                                              cycle_starts, cyc);
}

store::StoreIdentity CpaCampaign::store_identity(store::StoreKind kind,
                                                 std::size_t traces) const {
  store::StoreIdentity id;
  id.kind = static_cast<std::uint8_t>(kind);
  id.circuit = static_cast<std::uint8_t>(setup_.circuit_kind());
  id.mode = static_cast<std::uint8_t>(cfg_.mode);
  id.rng_contract =
      resolve_contract(cfg_.rng_contract) == RngContract::kV1 ? 1 : 2;
  id.seed = cfg_.seed;
  id.trace_count = traces;
  id.samples = sample_times_.size();
  id.target_key_byte = cfg_.target_key_byte;
  id.target_bit = cfg_.target_bit;

  // Everything else that shapes the captured readings or their labels:
  // sampling window, requested endpoint bit (pre-resolution, so capture
  // and replay hash the same value), selection knobs, fence config, and
  // the victim's key via its last round key.
  ByteWriter w;
  w.put_f64(cfg_.window_start_ns);
  w.put_f64(cfg_.window_end_ns);
  w.put_u64(static_cast<std::uint64_t>(cfg_.single_bit));
  w.put_u64(cfg_.selection_traces);
  w.put_f64(cfg_.selection_min_variance);
  w.put_u64(cfg_.selection_top_k);
  w.put_f64(cfg_.fence.base_current_a);
  w.put_f64(cfg_.fence.random_current_a);
  w.put_u64(cfg_.fence.seed);
  const crypto::Block lrk = setup_.victim().cipher().last_round_key();
  w.put_bytes(lrk.data(), lrk.size());
  id.config_hash = crc32(w.bytes().data(), w.size());
  return id;
}

void finalize_trace_store(store::TraceStoreWriter& writer,
                          obs::CampaignObserver* observer) {
  const double t0 = obs::monotonic_seconds();
  const auto stats = writer.finalize();
  const double seconds = obs::monotonic_seconds() - t0;
  log_info() << "store: wrote " << writer.path() << " (" << stats.traces
             << " traces, " << stats.chunks << " chunks, "
             << stats.bytes_written << " bytes)";
  if (observer != nullptr) {
    observer->metrics().add("slm.store.traces_written",
                            static_cast<double>(stats.traces));
    observer->metrics().add("slm.store.bytes_written",
                            static_cast<double>(stats.bytes_written));
    observer->metrics().observe("slm.store.write_seconds", seconds);
    observer->event("store_write",
                    obs::JsonWriter()
                        .field("path", writer.path())
                        .field("traces", static_cast<std::uint64_t>(stats.traces))
                        .field("bytes",
                               static_cast<std::uint64_t>(stats.bytes_written))
                        .field("seconds", seconds));
  }
}

void CpaCampaign::make_voltages(
    const crypto::AesDatapathModel::Encryption& enc, Xoshiro256& rng,
    std::vector<double>& v_out, defense::ActiveFence* fence,
    Xoshiro256* fence_rng) const {
  const Calibration& cal = setup_.calibration();
  // Victim current as seen by the attacker region (coupling-attenuated).
  static thread_local std::vector<double> i_cycles;
  i_cycles.assign(enc.cycle_current.begin(), enc.cycle_current.end());
  if (fence != nullptr) {
    // The active fence sits in the victim region: its randomised draw
    // rides on the same coupling path and masks the victim's signal.
    // Contract v2 passes the trace's counter-keyed fence stream; v1
    // callers draw from the fence's sequential stream.
    if (fence_rng != nullptr) {
      for (double& i : i_cycles) i += fence->cycle_current(*fence_rng);
    } else {
      for (double& i : i_cycles) i += fence->next_cycle_current();
    }
  }
  const double coupling = setup_.effective_coupling();
  for (double& i : i_cycles) i *= coupling;

  response_.voltages(i_cycles, v_out);
  // One batched draw block; identical values and stream order to the
  // per-sample normal(rng, 0.0, sigma) calls (see FastNormal::fill).
  static thread_local std::vector<double> z;
  z.resize(v_out.size());
  FastNormal::instance().fill(rng, z.data(), z.size());
  for (std::size_t s = 0; s < v_out.size(); ++s) {
    v_out[s] += 0.0 + cal.env_noise_v * z[s];
  }
}

void CpaCampaign::read_sensor(const std::vector<double>& v,
                              const std::vector<std::size_t>& bits,
                              Xoshiro256& rng, std::vector<double>& y) const {
  y.resize(v.size());
  switch (cfg_.mode) {
    case SensorMode::kTdcFull:
      for (std::size_t s = 0; s < v.size(); ++s) {
        y[s] = static_cast<double>(setup_.tdc().sample(v[s], rng));
      }
      break;
    case SensorMode::kTdcSingleBit:
      for (std::size_t s = 0; s < v.size(); ++s) {
        y[s] =
            setup_.tdc().sample_bit(cfg_.single_bit, v[s], rng) ? 1.0 : 0.0;
      }
      break;
    case SensorMode::kBenignHw:
      for (std::size_t s = 0; s < v.size(); ++s) {
        y[s] = static_cast<double>(
            setup_.sensor().sample_toggle_hw(bits, v[s], rng));
      }
      break;
    case SensorMode::kBenignSingleBit:
      for (std::size_t s = 0; s < v.size(); ++s) {
        y[s] = setup_.sensor().sample_toggle_bit(cfg_.single_bit, v[s], rng)
                   ? 1.0
                   : 0.0;
      }
      break;
    case SensorMode::kRoCounter:
      for (std::size_t s = 0; s < v.size(); ++s) {
        y[s] = static_cast<double>(setup_.ro_sensor().sample(v[s], rng));
      }
      break;
  }
}

CpaCampaign::SensorPlan CpaCampaign::make_sensor_plan(
    const std::vector<std::size_t>& bits) const {
  SensorPlan plan;
  if (cfg_.mode == SensorMode::kBenignHw) {
    plan.hw = setup_.sensor().compile_hw_plan(bits);
    plan.batched = true;
  } else if (cfg_.mode == SensorMode::kBenignSingleBit) {
    plan.bit = setup_.sensor().compile_bit_plan(cfg_.single_bit);
    plan.batched = true;
  }
  return plan;
}

void CpaCampaign::read_sensor_fast(const SensorPlan& plan,
                                   const std::vector<double>& v,
                                   const std::vector<std::size_t>& bits,
                                   Xoshiro256& rng,
                                   std::vector<double>& y) const {
  if (!plan.batched) {
    read_sensor(v, bits, rng, y);
    return;
  }
  y.resize(v.size());
  if (cfg_.mode == SensorMode::kBenignHw) {
    setup_.sensor().toggle_hw_batch(plan.hw, v.data(), v.size(), rng,
                                    y.data());
  } else {
    setup_.sensor().toggle_bit_batch(plan.bit, v.data(), v.size(), rng,
                                     y.data());
  }
}

void CpaCampaign::resolve_sensor_bits(CampaignResult* result) {
  if (cfg_.mode == SensorMode::kBenignHw) {
    auto bits = select_bits_of_interest();
    log_info() << "campaign: " << bits.size() << " bits of interest selected";
    SLM_REQUIRE(!bits.empty(),
                "CpaCampaign: no bits of interest — sensor not sensitive "
                "at this operating point");
    if (result != nullptr) result->bits_of_interest = std::move(bits);
  }
  if (cfg_.mode == SensorMode::kBenignSingleBit) {
    if (cfg_.single_bit == CampaignConfig::kAutoBit) {
      cfg_.single_bit = run_selection_pass().highest_variance_bit();
      log_info() << "campaign: auto-selected endpoint bit "
                 << cfg_.single_bit;
    }
    SLM_REQUIRE(cfg_.single_bit < setup_.sensor_bits(),
                "CpaCampaign: single_bit out of range");
  }
  if (cfg_.mode == SensorMode::kTdcSingleBit) {
    if (cfg_.single_bit == CampaignConfig::kAutoBit) {
      // The paper picks "the highest variant bit ... close to the idle
      // value". The highest-variance thermometer stage is the one whose
      // firing probability sits closest to 1/2 at the operating point,
      // so probe the stages around the mean depth directly (the floored
      // reading's mean alone is biased by half a stage).
      Xoshiro256 pre_rng(cfg_.seed ^ 0x7dc0u);
      std::vector<double> v;
      std::vector<double> voltages;
      OnlineMeanVar depth;
      for (std::size_t t = 0; t < 256; ++t) {
        crypto::Block pt;
        for (auto& b : pt) b = static_cast<std::uint8_t>(pre_rng.next());
        const auto enc = setup_.victim().encrypt(pt);
        make_voltages(enc, pre_rng, v);
        for (double vs : v) {
          voltages.push_back(vs);
          depth.add(static_cast<double>(setup_.tdc().sample(vs, pre_rng)));
        }
      }
      const std::size_t stages = setup_.calibration().tdc.stages;
      const auto centre = static_cast<std::size_t>(depth.mean());
      std::size_t best_stage = centre;
      double best_dist = 1.0;
      for (std::size_t cand = (centre > 3 ? centre - 3 : 0);
           cand <= centre + 3 && cand < stages; ++cand) {
        std::size_t ones = 0;
        for (double vs : voltages) {
          if (setup_.tdc().sample_bit(cand, vs, pre_rng)) ++ones;
        }
        const double p = static_cast<double>(ones) /
                         static_cast<double>(voltages.size());
        if (std::abs(p - 0.5) < best_dist) {
          best_dist = std::abs(p - 0.5);
          best_stage = cand;
        }
      }
      cfg_.single_bit = best_stage;
      log_info() << "campaign: auto-selected TDC stage " << cfg_.single_bit;
    }
    SLM_REQUIRE(cfg_.single_bit < setup_.calibration().tdc.stages,
                "CpaCampaign: TDC bit out of range");
  }
}

sca::WelchTTest CpaCampaign::run_tvla(std::size_t traces_per_population) {
  SLM_REQUIRE(traces_per_population >= 2, "run_tvla: too few traces");
  sca::require_fold_budget(2 * traces_per_population, "run_tvla");
  std::unique_ptr<store::TraceStoreWriter> store_writer;
  if (!cfg_.store_out.empty()) {
    store_writer = std::make_unique<store::TraceStoreWriter>(
        cfg_.store_out,
        store_identity(store::StoreKind::kTvla, 2 * traces_per_population));
  }
  CampaignResult scratch;
  resolve_sensor_bits(&scratch);
  if (store_writer) store_writer->set_resolved_single_bit(cfg_.single_bit);

  sca::WelchTTest ttest(sample_times_.size());
  Xoshiro256 rng(cfg_.seed ^ 0x77a1u);
  const crypto::Block fixed_pt =
      crypto::block_from_hex("da39a3ee5e6b4b0d3255bfef95601890");
  std::vector<double> v;
  std::vector<double> y;
  for (std::size_t t = 0; t < 2 * traces_per_population; ++t) {
    const bool fixed = (t % 2) == 0;
    crypto::Block pt = fixed_pt;
    if (!fixed) {
      for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());
    }
    const auto enc = setup_.victim().encrypt(pt);
    make_voltages(enc, rng, v);
    read_sensor(v, scratch.bits_of_interest, rng, y);
    ttest.add(fixed, y);
    if (store_writer) {
      store_writer->record_meta(t, pt, enc.ciphertext);
      store_writer->record_readings(t, y.data());
    }
  }
  if (store_writer) finalize_trace_store(*store_writer, cfg_.observer);
  return ttest;
}

sca::BitSelector CpaCampaign::run_selection_pass() {
  Xoshiro256 rng(cfg_.seed ^ 0xb17561ec7u);
  sca::BitSelector selector(setup_.sensor_bits());
  std::vector<double> v;
  if (cfg_.compiled_kernels) {
    // Same draws, same toggle decisions — only the bookkeeping is batched
    // (per-bit counts instead of per-sample BitVec words).
    std::vector<std::size_t> ones(setup_.sensor_bits(), 0);
    std::size_t samples = 0;
    for (std::size_t t = 0; t < cfg_.selection_traces; ++t) {
      crypto::Block pt;
      for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());
      const auto enc = setup_.victim().encrypt(pt);
      make_voltages(enc, rng, v);
      setup_.sensor().toggle_accumulate_batch(v.data(), v.size(), rng,
                                              ones.data());
      samples += v.size();
    }
    selector.add_batch(ones, samples);
    return selector;
  }
  for (std::size_t t = 0; t < cfg_.selection_traces; ++t) {
    crypto::Block pt;
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());
    const auto enc = setup_.victim().encrypt(pt);
    make_voltages(enc, rng, v);
    for (double vs : v) {
      selector.add(setup_.sensor().sample_toggles(vs, rng));
    }
  }
  return selector;
}

std::vector<std::size_t> CpaCampaign::select_bits_of_interest() {
  const auto selector = run_selection_pass();
  auto bits = selector.bits_of_interest(cfg_.selection_min_variance);
  if (cfg_.selection_top_k > 0 && bits.size() > cfg_.selection_top_k) {
    std::sort(bits.begin(), bits.end(), [&](std::size_t a, std::size_t b) {
      return selector.stat(a).variance > selector.stat(b).variance;
    });
    bits.resize(cfg_.selection_top_k);
    std::sort(bits.begin(), bits.end());
  }
  return bits;
}

CampaignResult CpaCampaign::run() {
  const auto wall_start = std::chrono::steady_clock::now();
  obs::CampaignObserver* const ob = cfg_.observer;
  CampaignResult result;
  result.mode = cfg_.mode;
  result.sample_times_ns = sample_times_;

  sca::LastRoundBitModel model(cfg_.target_key_byte, cfg_.target_bit);
  result.correct_guess =
      model.correct_guess(setup_.victim().cipher().last_round_key());

  // The store fingerprint hashes the *requested* endpoint bit, so the
  // writer is created before bit resolution mutates cfg_.single_bit —
  // a replay-side CpaCampaign never resolves and must hash the same
  // value. Resume is refused: a resumed run does not regenerate the
  // traces already captured, so the store would be silently short.
  std::unique_ptr<store::TraceStoreWriter> store_writer;
  if (!cfg_.store_out.empty()) {
    SLM_REQUIRE(!cfg_.resume,
                "store_out: cannot combine with resume — traces captured "
                "before the snapshot would be missing from the store");
    store_writer = std::make_unique<store::TraceStoreWriter>(
        cfg_.store_out,
        store_identity(store::StoreKind::kByteCampaign, cfg_.traces));
  }

  {
    const auto sel_start = std::chrono::steady_clock::now();
    std::optional<obs::CampaignObserver::Span> span;
    if (ob != nullptr) span.emplace(ob->span("selection"));
    resolve_sensor_bits(&result);
    result.selection_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      sel_start)
            .count();
  }
  result.single_bit = cfg_.single_bit;
  if (store_writer) store_writer->set_resolved_single_bit(cfg_.single_bit);

  auto checkpoints = checkpoint_schedule(cfg_.checkpoints, cfg_.traces);
  std::size_t next_cp = 0;

  // RNG determinism contract (DESIGN.md §7/§12). v1: one sequential
  // stream, strict per-trace draw order. v2 (default): every trace's
  // draws derive statelessly from (seed, domain, trace index), so
  // generation order is free and results depend on the seed alone.
  const RngContract contract = resolve_contract(cfg_.rng_contract);
  const bool v2 = contract == RngContract::kV2;
  result.rng_contract = contract;

  // The fast path bins traces into (ciphertext-class, base-bit) cells and
  // folds them into full per-guess CPA sums only at checkpoints; readings
  // are integer-valued so the regrouped sums are bit-identical to the
  // reference engine's (see sca::XorClassCpa).
  const bool fast = cfg_.compiled_kernels;
  const SensorPlan plan =
      fast ? make_sensor_plan(result.bits_of_interest) : SensorPlan{};

  sca::CpaEngine engine(256, sample_times_.size());
  sca::XorClassCpa cls(sample_times_.size());
  Xoshiro256 rng(cfg_.seed);

  // Contract v2 victim register chain: starts zeroed at trace 0 and is
  // advanced by encrypt_stateless trace by trace. On resume it is
  // re-derived from the previous trace alone (registers_after), so v2
  // snapshots need no RNG/victim/fence state at all.
  crypto::AesDatapathModel::RegisterSnapshot v2_regs{};

  // Crash-safe resume: restore the exact capture state the snapshot
  // froze — accumulator sums and, under contract v1, the main RNG
  // position, victim register history, and fence stream — and skip the
  // checkpoints already recorded. The selection pre-pass above re-ran
  // from its own deterministic seed streams, so it needs no
  // snapshotting.
  std::size_t start_t = 1;
  const bool snapshotting = !cfg_.checkpoint_dir.empty();
  if (cfg_.resume && snapshotting) {
    if (auto ck = load_checkpoint(cfg_.checkpoint_dir)) {
      require_checkpoint_matches(*ck, cfg_, 1, sample_times_.size(),
                                 static_cast<std::uint32_t>(contract));
      const CheckpointShard& sh = ck->shard_state[0];
      SLM_REQUIRE(sh.has_fence == fence_.has_value(),
                  "resume: fence configuration differs from snapshot");
      if (!v2) {
        rng.set_state(sh.rng);
        setup_.victim().restore_registers(sh.victim);
        if (fence_) fence_->set_rng_state(sh.fence_rng);
      }
      ByteReader acc(sh.accumulator.data(), sh.accumulator.size());
      if (fast) {
        cls.load(acc);
      } else {
        engine.load(acc);
      }
      SLM_REQUIRE(acc.done(), "resume: trailing accumulator bytes");
      result.progress = ck->progress;
      result.resumed_from = static_cast<std::size_t>(ck->traces_done);
      start_t = result.resumed_from + 1;
      if (v2 && result.resumed_from > 0) {
        // Re-derive the register state left behind by the last completed
        // trace: its plaintext comes from its own counter-keyed stream,
        // and registers_after needs no earlier history (the register is
        // fully overwritten every encryption).
        const std::size_t g = result.resumed_from - 1;
        Xoshiro256 prev =
            Xoshiro256::trace_stream(cfg_.seed, kTraceDomainCapture, g);
        crypto::Block prev_pt;
        for (auto& b : prev_pt) b = static_cast<std::uint8_t>(prev.next());
        v2_regs = setup_.victim().registers_after(prev_pt, g);
      }
      while (next_cp < checkpoints.size() &&
             checkpoints[next_cp] <= result.resumed_from) {
        ++next_cp;
      }
      log_info() << "campaign: resumed from "
                 << checkpoint_file(cfg_.checkpoint_dir) << " at trace "
                 << result.resumed_from << "/" << cfg_.traces;
      if (ob != nullptr) {
        ob->metrics().add("slm.checkpoint.resumes_total");
        ob->event("resume",
                  obs::JsonWriter()
                      .field("traces_done",
                             static_cast<std::uint64_t>(result.resumed_from))
                      .field("path", checkpoint_file(cfg_.checkpoint_dir)));
      }
    }
  }

  // Block-batched pipeline (DESIGN.md §11): the per-trace RNG-ordered
  // generation (plaintext draws, victim encrypt, PDN voltages, noise and
  // jitter fills) stays sequential, and only the RNG-free compute — the
  // packed sensor kernel and the accumulator update — is deferred to
  // lane-parallel block kernels. Blocks clamp at checkpoint edges, so
  // progress points, snapshots, and results are bit-identical for every
  // block size (block = 1 runs the exact per-trace loop).
  const std::size_t block = resolve_block(cfg_.block);
  const bool simd = resolve_simd(cfg_.simd);
  result.block_size = block;
  const bool blocked = block > 1;
  // Only the benign-HW batch plan separates its draws from the compute;
  // every other sensor consumes RNG inside the read, so those modes
  // block just the accumulator update.
  const bool defer_hw = blocked && fast && plan.batched &&
                        cfg_.mode == SensorMode::kBenignHw;
  const std::size_t samples = sample_times_.size();
  const std::size_t dps = plan.hw.draws_per_sample;

  if (ob != nullptr) {
    ob->metrics().set("slm.campaign.traces_target",
                      static_cast<double>(cfg_.traces));
    ob->metrics().set("slm.kernel.block_size", static_cast<double>(block));
    ob->event("run_start",
              obs::JsonWriter()
                  .field("mode", sensor_mode_name(cfg_.mode))
                  .field("traces", static_cast<std::uint64_t>(cfg_.traces))
                  .field("seed", static_cast<std::uint64_t>(cfg_.seed))
                  .field("threads", static_cast<std::uint64_t>(1))
                  .field("compiled", fast)
                  .field("block", static_cast<std::uint64_t>(block))
                  .field("rng_contract", rng_contract_name(contract))
                  .field("resumed_from",
                         static_cast<std::uint64_t>(result.resumed_from)));
  }

  // Per-trace phase timers only exist when an observer is attached; the
  // disabled path performs no clock reads inside the loop.
  const bool timed = ob != nullptr;
  double kernel_s = 0.0;
  double cpa_s = 0.0;
  double ckpt_io_s = 0.0;
  std::size_t seg_traces = start_t - 1;
  double seg_time = timed ? obs::monotonic_seconds() : 0.0;

  // The deferred-HW path also defers the PDN voltage matvec: the
  // generation pass stages each trace's coupling-scaled per-cycle
  // currents (cycle-major, so the lane-inner kernel is unit-stride) plus
  // its env-noise draws, and the compute pass evaluates the whole block
  // through CycleResponseMatrix::voltages_block. The scalar matvec is a
  // latency-bound FP-add chain, so this is where blocking pays most.
  const std::size_t ncyc = response_.cycle_count();
  const double coupling = setup_.effective_coupling();
  const double env_noise_v = setup_.calibration().env_noise_v;
  std::vector<double> v;
  std::vector<double> y(samples);
  std::vector<std::uint8_t> h;
  std::vector<double> vblk;
  std::vector<double> zblk;
  std::vector<double> icblk;
  std::vector<double> zvblk;
  std::vector<double> yblk;
  std::vector<std::uint8_t> clsv;
  std::vector<std::uint8_t> clsb;
  std::vector<std::uint8_t> hblk;
  if (blocked) {
    yblk.resize(block * samples);
    clsv.resize(block);
    clsb.resize(block);
    if (defer_hw) {
      vblk.resize(block * samples);
      zblk.resize(block * samples * dps);
      icblk.resize(ncyc * block);
      zvblk.resize(block * samples);
    }
    if (!fast) hblk.resize(block * 256);
  }

  // Double-buffered generate/compute pipeline (contract v2, deferred-HW
  // path only): a one-worker producer generates block k+1's slab —
  // plaintexts, victim currents, fence draws, noise/jitter draws, all
  // from counter-keyed per-trace streams — while the main thread runs
  // block k's RNG-free compute pass. Contract v1 cannot do this: its
  // generation is a serial RNG chain (the ~0.8 µs/trace floor DESIGN.md
  // §11 documents).
  struct GenSlab {
    std::vector<double> icblk;
    std::vector<double> zvblk;
    std::vector<double> zblk;
    std::vector<std::uint8_t> clsv;
    std::vector<std::uint8_t> clsb;
  };
  const bool pipelined = v2 && defer_hw && resolve_pipeline();
  GenSlab slabs[2];
  if (pipelined) {
    for (GenSlab& s : slabs) {
      s.icblk.resize(ncyc * block);
      s.zvblk.resize(block * samples);
      s.zblk.resize(block * samples * dps);
      s.clsv.resize(block);
      s.clsb.resize(block);
    }
  }
  // Block span starting at 1-based trace t0: clamp at the next
  // checkpoint, exactly as the main loop does, so the producer and the
  // consumer tile the trace sequence identically.
  const auto span_bn = [&](std::size_t t0) {
    std::size_t limit = cfg_.traces;
    const auto it =
        std::lower_bound(checkpoints.begin(), checkpoints.end(), t0);
    if (it != checkpoints.end() && *it < limit) limit = *it;
    return std::min(block, limit - t0 + 1);
  };
  // Generate one slab: per-trace counter-keyed streams, same expression
  // order as make_voltages/the v1 staging pass, victim registers carried
  // sequentially by the (single) producer.
  const auto gen_slab = [&](GenSlab& slab, std::size_t t0, std::size_t bn) {
    for (std::size_t b = 0; b < bn; ++b) {
      const std::size_t g = t0 - 1 + b;
      Xoshiro256 rng_t =
          Xoshiro256::trace_stream(cfg_.seed, kTraceDomainCapture, g);
      crypto::Block pt;
      for (auto& pb : pt) pb = static_cast<std::uint8_t>(rng_t.next());
      const auto enc = setup_.victim().encrypt_stateless(pt, g, v2_regs);
      if (fence_) {
        Xoshiro256 frng = fence_->trace_rng(g);
        for (std::size_t c = 0; c < ncyc; ++c) {
          double i = enc.cycle_current[c];
          i += fence_->cycle_current(frng);
          i *= coupling;
          slab.icblk[c * block + b] = i;
        }
      } else {
        for (std::size_t c = 0; c < ncyc; ++c) {
          double i = enc.cycle_current[c];
          i *= coupling;
          slab.icblk[c * block + b] = i;
        }
      }
      FastNormal::instance().fill(rng_t, slab.zvblk.data() + b * samples,
                                  samples);
      FastNormal::instance().fill(rng_t, slab.zblk.data() + b * samples * dps,
                                  samples * dps);
      slab.clsv[b] = model.class_value(enc.ciphertext);
      slab.clsb[b] = model.class_bit(enc.ciphertext);
      // Meta lands from the producer thread, readings from the consumer:
      // disjoint columns, and the writer's completeness counter is only
      // advanced by record_readings on the consumer side.
      if (store_writer) store_writer->record_meta(g, pt, enc.ciphertext);
    }
  };
  // The pool is declared AFTER the slabs and the register chain so its
  // destructor joins any in-flight producer task before they unwind
  // (CampaignHalted propagates through here with a task in flight).
  std::optional<ThreadPool> gen_pool;
  int cur = 0;
  std::size_t gen_t = start_t;
  if (pipelined) {
    gen_pool.emplace(1);
    if (gen_t <= cfg_.traces) {
      GenSlab* s = &slabs[cur];
      const std::size_t t0 = gen_t;
      const std::size_t bn0 = span_bn(t0);
      gen_pool->submit_indexed(
          1, [&gen_slab, s, t0, bn0](std::size_t) { gen_slab(*s, t0, bn0); });
      gen_t += bn0;
    }
    if (ob != nullptr) ob->metrics().set("slm.pipeline.depth", 2.0);
  }

  std::size_t t = start_t;
  while (t <= cfg_.traces) {
    // Clamp the block at the next checkpoint so snapshots land on the
    // same trace counts as the per-trace loop.
    while (next_cp < checkpoints.size() && checkpoints[next_cp] < t) {
      ++next_cp;
    }
    std::size_t limit = cfg_.traces;
    if (next_cp < checkpoints.size() && checkpoints[next_cp] < limit) {
      limit = checkpoints[next_cp];
    }
    const std::size_t bn = std::min(block, limit - t + 1);

    const double t0 = timed ? obs::monotonic_seconds() : 0.0;
    double t1 = 0.0;
    if (!blocked) {
      // block == 1: the exact per-trace loop, kept as the dispatchable
      // baseline the block path is benchmarked (and bit-compared)
      // against. Contract v2 swaps the sequential stream for the trace's
      // counter-keyed streams; every expression downstream is identical.
      std::optional<Xoshiro256> rng_t;
      std::optional<Xoshiro256> frng;
      Xoshiro256* r = &rng;
      Xoshiro256* fr = nullptr;
      if (v2) {
        const std::size_t g = t - 1;
        rng_t.emplace(
            Xoshiro256::trace_stream(cfg_.seed, kTraceDomainCapture, g));
        r = &*rng_t;
        if (fence_) {
          frng.emplace(fence_->trace_rng(g));
          fr = &*frng;
        }
      }
      crypto::Block pt;
      for (auto& b : pt) b = static_cast<std::uint8_t>(r->next());
      const auto enc = v2
                           ? setup_.victim().encrypt_stateless(pt, t - 1,
                                                               v2_regs)
                           : setup_.victim().encrypt(pt);
      make_voltages(enc, *r, v, fence_ ? &*fence_ : nullptr, fr);
      if (fast) {
        read_sensor_fast(plan, v, result.bits_of_interest, *r, y);
        t1 = timed ? obs::monotonic_seconds() : 0.0;
        cls.add_trace(model.class_value(enc.ciphertext),
                      model.class_bit(enc.ciphertext), y);
      } else {
        read_sensor(v, result.bits_of_interest, *r, y);
        t1 = timed ? obs::monotonic_seconds() : 0.0;
        model.hypotheses(enc.ciphertext, h);
        engine.add_trace(h, y);
      }
      if (store_writer) {
        store_writer->record_meta(t - 1, pt, enc.ciphertext);
        store_writer->record_readings(t - 1, y.data());
      }
    } else if (pipelined) {
      // The producer already has (or is still generating) this span's
      // slab; wait for it, immediately hand the producer the next span,
      // then run the RNG-free compute pass on the main thread.
      const double w0 = timed ? obs::monotonic_seconds() : 0.0;
      gen_pool->wait();
      const double gen_wait = timed ? obs::monotonic_seconds() - w0 : 0.0;
      GenSlab& slab = slabs[cur];
      if (gen_t <= cfg_.traces) {
        GenSlab* s = &slabs[1 - cur];
        const std::size_t nt0 = gen_t;
        const std::size_t nbn = span_bn(nt0);
        gen_pool->submit_indexed(1, [&gen_slab, s, nt0, nbn](std::size_t) {
          gen_slab(*s, nt0, nbn);
        });
        gen_t += nbn;
      }
      cur = 1 - cur;
      response_.voltages_block(slab.icblk.data(), bn, block, vblk.data(),
                               simd);
      for (std::size_t i = 0; i < bn * samples; ++i) {
        vblk[i] += 0.0 + env_noise_v * slab.zvblk[i];
      }
      setup_.sensor().toggle_hw_block(plan.hw, vblk.data(), bn * samples,
                                      slab.zblk.data(), yblk.data(), simd);
      t1 = timed ? obs::monotonic_seconds() : 0.0;
      cls.add_block(slab.clsv.data(), slab.clsb.data(), yblk.data(), bn);
      if (store_writer) {
        store_writer->record_readings_block(t - 1, yblk.data(), bn);
      }
      if (timed) {
        ob->metrics().add("slm.pipeline.blocks_total");
        ob->metrics().observe("slm.pipeline.gen_wait_seconds", gen_wait);
      }
    } else {
      // Generation pass: everything that touches the RNG. Contract v1
      // consumes the sequential stream in exact per-trace order
      // (FastNormal::fill is position-wise identical to per-call draws);
      // contract v2 gives every lane its trace's counter-keyed streams.
      for (std::size_t b = 0; b < bn; ++b) {
        std::optional<Xoshiro256> rng_t;
        std::optional<Xoshiro256> frng;
        Xoshiro256* r = &rng;
        Xoshiro256* fr = nullptr;
        if (v2) {
          const std::size_t g = t - 1 + b;
          rng_t.emplace(
              Xoshiro256::trace_stream(cfg_.seed, kTraceDomainCapture, g));
          r = &*rng_t;
          if (fence_) {
            frng.emplace(fence_->trace_rng(g));
            fr = &*frng;
          }
        }
        crypto::Block pt;
        for (auto& pb : pt) pb = static_cast<std::uint8_t>(r->next());
        const auto enc =
            v2 ? setup_.victim().encrypt_stateless(pt, t - 1 + b, v2_regs)
               : setup_.victim().encrypt(pt);
        if (defer_hw) {
          // Stage the scaled currents and this trace's noise draws; the
          // per-element arithmetic and the fence-stream call order match
          // make_voltages exactly, only the matvec is deferred.
          defense::ActiveFence* fence = fence_ ? &*fence_ : nullptr;
          for (std::size_t c = 0; c < ncyc; ++c) {
            double i = enc.cycle_current[c];
            // v2: the fence draws from this trace's counter-keyed
            // stream (fr), exactly as gen_slab and make_voltages do;
            // v1 consumes the fence's own sequential stream.
            if (fence != nullptr) {
              i += fr != nullptr ? fence->cycle_current(*fr)
                                 : fence->next_cycle_current();
            }
            i *= coupling;
            icblk[c * block + b] = i;
          }
          FastNormal::instance().fill(*r, zvblk.data() + b * samples,
                                      samples);
          FastNormal::instance().fill(*r, zblk.data() + b * samples * dps,
                                      samples * dps);
        } else if (fast) {
          make_voltages(enc, *r, v, fence_ ? &*fence_ : nullptr, fr);
          read_sensor_fast(plan, v, result.bits_of_interest, *r, y);
          std::copy(y.begin(), y.end(), yblk.begin() + b * samples);
        } else {
          make_voltages(enc, *r, v, fence_ ? &*fence_ : nullptr, fr);
          read_sensor(v, result.bits_of_interest, *r, y);
          std::copy(y.begin(), y.end(), yblk.begin() + b * samples);
          model.hypotheses(enc.ciphertext, h);
          std::copy(h.begin(), h.end(), hblk.begin() + b * 256);
        }
        if (fast) {
          clsv[b] = model.class_value(enc.ciphertext);
          clsb[b] = model.class_bit(enc.ciphertext);
        }
        if (store_writer) {
          store_writer->record_meta(t - 1 + b, pt, enc.ciphertext);
        }
      }
      // Compute pass: RNG-free lane-parallel kernels over the block.
      if (defer_hw) {
        response_.voltages_block(icblk.data(), bn, block, vblk.data(), simd);
        for (std::size_t i = 0; i < bn * samples; ++i) {
          vblk[i] += 0.0 + env_noise_v * zvblk[i];
        }
        setup_.sensor().toggle_hw_block(plan.hw, vblk.data(), bn * samples,
                                        zblk.data(), yblk.data(), simd);
      }
      t1 = timed ? obs::monotonic_seconds() : 0.0;
      if (fast) {
        cls.add_block(clsv.data(), clsb.data(), yblk.data(), bn);
      } else {
        engine.add_traces(hblk.data(), yblk.data(), bn);
      }
      if (store_writer) {
        store_writer->record_readings_block(t - 1, yblk.data(), bn);
      }
    }
    if (timed) {
      const double t2 = obs::monotonic_seconds();
      kernel_s += t1 - t0;
      cpa_s += t2 - t1;
      if (blocked) {
        ob->metrics().add("slm.kernel.blocks_total");
        ob->metrics().observe("slm.kernel.block_kernel_seconds", t1 - t0);
        ob->metrics().observe("slm.kernel.block_cpa_seconds", t2 - t1);
      }
    }
    t += bn;
    const std::size_t done = t - 1;

    while (next_cp < checkpoints.size() && done == checkpoints[next_cp]) {
      const double f0 = timed ? obs::monotonic_seconds() : 0.0;
      if (fast) {
        const sca::CpaEngine folded = cls.fold(model.pattern().data());
        result.progress.push_back(
            sca::snapshot_progress(folded, result.correct_guess));
      } else {
        result.progress.push_back(
            sca::snapshot_progress(engine, result.correct_guess));
      }
      if (timed) cpa_s += obs::monotonic_seconds() - f0;

      if (ob != nullptr) {
        const sca::CpaProgressPoint& p = result.progress.back();
        const double now = obs::monotonic_seconds();
        const double seg_rate =
            now > seg_time
                ? static_cast<double>(done - seg_traces) / (now - seg_time)
                : 0.0;
        ob->metrics().add("slm.campaign.checkpoints_total");
        ob->metrics().set("slm.campaign.traces_done",
                          static_cast<double>(done));
        ob->metrics().set("slm.cpa.best_guess",
                          static_cast<double>(p.best_guess));
        ob->metrics().set("slm.cpa.correct_corr", p.correct_corr);
        ob->metrics().set("slm.cpa.corr_margin",
                          p.correct_corr - p.best_wrong_corr);
        ob->metrics().observe("slm.campaign.segment_traces_per_sec",
                              seg_rate);
        ob->event(
            "checkpoint",
            obs::JsonWriter()
                .field("traces", static_cast<std::uint64_t>(p.traces))
                .field("best_guess",
                       static_cast<std::uint64_t>(p.best_guess))
                .field("correct_rank",
                       static_cast<std::uint64_t>(p.correct_rank))
                .field("correct_corr", p.correct_corr)
                .field("best_wrong_corr", p.best_wrong_corr)
                .field("corr_margin", p.correct_corr - p.best_wrong_corr)
                .field("traces_per_sec", seg_rate)
                .raw("shard_traces",
                     "[" + std::to_string(done) + "]"));
        seg_traces = done;
        seg_time = now;
      }

      if (snapshotting) {
        const double s0 = obs::monotonic_seconds();
        CampaignCheckpoint ck;
        ck.seed = cfg_.seed;
        ck.total_traces = cfg_.traces;
        ck.mode = static_cast<std::uint32_t>(cfg_.mode);
        ck.shards = 1;
        ck.samples = sample_times_.size();
        ck.target_key_byte = cfg_.target_key_byte;
        ck.target_bit = cfg_.target_bit;
        ck.single_bit = cfg_.single_bit;
        ck.compiled = fast;
        ck.block = block;
        ck.rng_contract = static_cast<std::uint32_t>(contract);
        ck.traces_done = done;
        CheckpointShard sh;
        sh.position = done;
        sh.has_fence = fence_.has_value();
        if (!v2) {
          // Contract v2 re-derives every stream and the register chain
          // from (seed, trace index) on resume, so only the accumulator
          // and the trace count matter; the v1-era state stays zeroed.
          sh.rng = rng.state();
          sh.victim = setup_.victim().register_snapshot();
          if (fence_) sh.fence_rng = fence_->rng_state();
        }
        ByteWriter acc;
        if (fast) {
          cls.save(acc);
        } else {
          engine.save(acc);
        }
        sh.accumulator = acc.bytes();
        ck.shard_state.push_back(std::move(sh));
        ck.progress = result.progress;
        const std::size_t bytes = save_checkpoint(cfg_.checkpoint_dir, ck);
        result.snapshot_path = checkpoint_file(cfg_.checkpoint_dir);
        const double io = obs::monotonic_seconds() - s0;
        ckpt_io_s += io;
        if (ob != nullptr) {
          ob->metrics().add("slm.checkpoint.snapshots_total");
          ob->metrics().add("slm.checkpoint.bytes_total",
                            static_cast<double>(bytes));
          ob->metrics().observe("slm.checkpoint.write_seconds", io);
          ob->event("snapshot",
                    obs::JsonWriter()
                        .field("traces", static_cast<std::uint64_t>(done))
                        .field("bytes", static_cast<std::uint64_t>(bytes))
                        .field("seconds", io)
                        .field("path", result.snapshot_path));
        }
      }
      ++next_cp;

      if (cfg_.halt_after_traces > 0 && done >= cfg_.halt_after_traces) {
        if (ob != nullptr) {
          ob->event("halt",
                    obs::JsonWriter()
                        .field("traces", static_cast<std::uint64_t>(done))
                        .field("path", result.snapshot_path));
        }
        throw CampaignHalted(done, result.snapshot_path);
      }
    }
  }

  if (fast) {
    const double f0 = timed ? obs::monotonic_seconds() : 0.0;
    engine = cls.fold(model.pattern().data());
    if (timed) cpa_s += obs::monotonic_seconds() - f0;
  }

  if (store_writer) finalize_trace_store(*store_writer, ob);

  result.kernel_seconds = kernel_s;
  result.cpa_seconds = cpa_s;
  result.checkpoint_io_seconds = ckpt_io_s;
  if (ob != nullptr) {
    ob->metrics().set("slm.campaign.kernel_seconds", kernel_s);
    ob->metrics().set("slm.campaign.cpa_seconds", cpa_s);
    ob->metrics().set("slm.campaign.checkpoint_io_seconds", ckpt_io_s);
    ob->metrics().set("slm.campaign.selection_seconds",
                      result.selection_seconds);
  }

  if (result.progress.empty() ||
      result.progress.back().traces != engine.trace_count()) {
    result.progress.push_back(
        sca::snapshot_progress(engine, result.correct_guess));
  }

  result.traces_run = engine.trace_count();
  result.final_max_abs_corr = engine.max_abs_correlation();
  result.recovered_guess = static_cast<std::uint8_t>(engine.best_guess());
  result.key_recovered = result.recovered_guess == result.correct_guess;
  result.mtd = sca::estimate_mtd(result.progress);
  result.threads_used = 1;
  result.capture_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return result;
}

FullKeyRunResult CpaCampaign::run_fullkey(const FullKeyConfig& fk) {
  const auto wall_start = std::chrono::steady_clock::now();
  obs::CampaignObserver* const ob = cfg_.observer;
  constexpr std::size_t kBytes = sca::MultiByteCpa::kBytes;
  FullKeyRunResult result;
  result.mode = cfg_.mode;
  result.sample_times_ns = sample_times_;

  // One model per last-round key byte. Generation (plaintext draws,
  // victim encryption, PDN voltages, sensor readings) never consults a
  // model — only the (v, b) class labels do — so the capture stream below
  // is the byte-independent stream run() produces under the same config.
  std::vector<sca::LastRoundBitModel> models;
  models.reserve(kBytes);
  for (std::size_t j = 0; j < kBytes; ++j) {
    models.emplace_back(j, cfg_.target_bit);
  }
  const crypto::Block lrk = setup_.victim().cipher().last_round_key();
  for (std::size_t j = 0; j < kBytes; ++j) {
    result.bytes[j].correct = models[j].correct_guess(lrk);
  }

  // Created before bit resolution so the fingerprint hashes the
  // requested endpoint bit (see run()).
  std::unique_ptr<store::TraceStoreWriter> store_writer;
  if (!cfg_.store_out.empty()) {
    SLM_REQUIRE(!cfg_.resume,
                "store_out: cannot combine with resume — traces captured "
                "before the snapshot would be missing from the store");
    store_writer = std::make_unique<store::TraceStoreWriter>(
        cfg_.store_out, store_identity(store::StoreKind::kFullKey, cfg_.traces));
  }

  {
    const auto sel_start = std::chrono::steady_clock::now();
    std::optional<obs::CampaignObserver::Span> span;
    if (ob != nullptr) span.emplace(ob->span("selection"));
    CampaignResult scratch;
    resolve_sensor_bits(&scratch);
    result.bits_of_interest = std::move(scratch.bits_of_interest);
    result.selection_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      sel_start)
            .count();
  }
  result.single_bit = cfg_.single_bit;
  if (store_writer) store_writer->set_resolved_single_bit(cfg_.single_bit);

  auto checkpoints = checkpoint_schedule(cfg_.checkpoints, cfg_.traces);
  std::size_t next_cp = 0;

  const RngContract contract = resolve_contract(cfg_.rng_contract);
  const bool v2 = contract == RngContract::kV2;
  result.rng_contract = contract;

  // The fused path always accumulates through MultiByteCpa — folding 16
  // reference CpaEngines per trace would defeat the point — so
  // compiled_kernels only selects the sensor read path here. Both sensor
  // paths produce bit-identical readings (the property suite pins it),
  // and the per-byte class sums are bit-identical to a standalone
  // XorClassCpa / reference CpaEngine fed the same stream.
  const bool fast = cfg_.compiled_kernels;
  const SensorPlan plan =
      fast ? make_sensor_plan(result.bits_of_interest) : SensorPlan{};

  const std::size_t samples = sample_times_.size();
  sca::MultiByteCpa acc(samples);
  Xoshiro256 rng(cfg_.seed);
  crypto::AesDatapathModel::RegisterSnapshot v2_regs{};

  // Per-byte early-exit bookkeeping (restored verbatim on resume so a
  // resumed run freezes the same bytes at the same checkpoints).
  struct ByteState {
    bool converged = false;
    std::size_t stable = 0;
    std::size_t prev_best = 256;  // 256 = no previous checkpoint yet
  };
  std::array<ByteState, kBytes> state;

  std::size_t start_t = 1;
  const bool snapshotting = !cfg_.checkpoint_dir.empty();
  if (cfg_.resume && snapshotting) {
    if (auto ck = load_checkpoint(cfg_.checkpoint_dir)) {
      require_checkpoint_matches(*ck, cfg_, 1, samples,
                                 static_cast<std::uint32_t>(contract),
                                 /*fullkey=*/true);
      const CheckpointShard& sh = ck->shard_state[0];
      SLM_REQUIRE(sh.has_fence == fence_.has_value(),
                  "resume: fence configuration differs from snapshot");
      if (!v2) {
        rng.set_state(sh.rng);
        setup_.victim().restore_registers(sh.victim);
        if (fence_) fence_->set_rng_state(sh.fence_rng);
      }
      ByteReader accr(sh.accumulator.data(), sh.accumulator.size());
      acc.load(accr);
      SLM_REQUIRE(accr.done(), "resume: trailing accumulator bytes");
      for (std::size_t j = 0; j < kBytes; ++j) {
        const FullKeyByteCheckpoint& fb = ck->fullkey_bytes[j];
        state[j].converged = fb.converged;
        state[j].stable = static_cast<std::size_t>(fb.stable);
        state[j].prev_best = static_cast<std::size_t>(fb.prev_best);
        result.bytes[j].progress = fb.progress;
        if (fb.converged) {
          FullKeyByteResult& br = result.bytes[j];
          br.recovered = fb.recovered;
          br.traces = static_cast<std::size_t>(fb.frozen_traces);
          br.final_max_abs_corr = fb.frozen_corr;
          br.early_exited = true;
          br.success = br.recovered == br.correct;
        }
      }
      result.resumed_from = static_cast<std::size_t>(ck->traces_done);
      start_t = result.resumed_from + 1;
      if (v2 && result.resumed_from > 0) {
        const std::size_t g = result.resumed_from - 1;
        Xoshiro256 prev =
            Xoshiro256::trace_stream(cfg_.seed, kTraceDomainCapture, g);
        crypto::Block prev_pt;
        for (auto& b : prev_pt) b = static_cast<std::uint8_t>(prev.next());
        v2_regs = setup_.victim().registers_after(prev_pt, g);
      }
      while (next_cp < checkpoints.size() &&
             checkpoints[next_cp] <= result.resumed_from) {
        ++next_cp;
      }
      log_info() << "fullkey: resumed from "
                 << checkpoint_file(cfg_.checkpoint_dir) << " at trace "
                 << result.resumed_from << "/" << cfg_.traces;
      if (ob != nullptr) {
        ob->metrics().add("slm.checkpoint.resumes_total");
        ob->event("resume",
                  obs::JsonWriter()
                      .field("traces_done",
                             static_cast<std::uint64_t>(result.resumed_from))
                      .field("path", checkpoint_file(cfg_.checkpoint_dir)));
      }
    }
  }

  const std::size_t block = resolve_block(cfg_.block);
  const bool simd = resolve_simd(cfg_.simd);
  result.block_size = block;
  const bool blocked = block > 1;
  const bool defer_hw = blocked && fast && plan.batched &&
                        cfg_.mode == SensorMode::kBenignHw;
  const std::size_t dps = plan.hw.draws_per_sample;
  const std::size_t ncyc = response_.cycle_count();
  const double coupling = setup_.effective_coupling();
  const double env_noise_v = setup_.calibration().env_noise_v;

  if (ob != nullptr) {
    ob->metrics().set("slm.campaign.traces_target",
                      static_cast<double>(cfg_.traces));
    ob->metrics().set("slm.kernel.block_size", static_cast<double>(block));
    ob->metrics().set("slm.fullkey.bytes_total",
                      static_cast<double>(kBytes));
    ob->event("run_start",
              obs::JsonWriter()
                  .field("mode", sensor_mode_name(cfg_.mode))
                  .field("fullkey", true)
                  .field("traces", static_cast<std::uint64_t>(cfg_.traces))
                  .field("seed", static_cast<std::uint64_t>(cfg_.seed))
                  .field("threads", static_cast<std::uint64_t>(1))
                  .field("compiled", fast)
                  .field("block", static_cast<std::uint64_t>(block))
                  .field("rng_contract", rng_contract_name(contract))
                  .field("resumed_from",
                         static_cast<std::uint64_t>(result.resumed_from)));
  }

  const bool timed = ob != nullptr;
  double kernel_s = 0.0;
  double cpa_s = 0.0;
  double ckpt_io_s = 0.0;
  std::size_t seg_traces = start_t - 1;
  double seg_time = timed ? obs::monotonic_seconds() : 0.0;

  std::vector<double> v;
  std::vector<double> y(samples);
  std::vector<double> vblk;
  std::vector<double> zblk;
  std::vector<double> icblk;
  std::vector<double> zvblk;
  std::vector<double> yblk(block * samples);
  std::vector<std::uint8_t> clsv(block * kBytes);
  std::vector<std::uint8_t> clsb(block * kBytes);
  if (defer_hw) {
    vblk.resize(block * samples);
    zblk.resize(block * samples * dps);
    icblk.resize(ncyc * block);
    zvblk.resize(block * samples);
  }

  // Count of converged bytes, for the checkpoint event and so the fold
  // loop can cheaply skip frozen bytes.
  std::size_t converged_count = 0;
  for (const ByteState& s : state) {
    if (s.converged) ++converged_count;
  }

  std::size_t t = start_t;
  while (t <= cfg_.traces) {
    while (next_cp < checkpoints.size() && checkpoints[next_cp] < t) {
      ++next_cp;
    }
    std::size_t limit = cfg_.traces;
    if (next_cp < checkpoints.size() && checkpoints[next_cp] < limit) {
      limit = checkpoints[next_cp];
    }
    const std::size_t bn = std::min(block, limit - t + 1);

    const double t0 = timed ? obs::monotonic_seconds() : 0.0;
    // Generation pass: identical RNG consumption and expression order to
    // run()'s generation pass — the stream never depends on the model,
    // only the class labels (16 per trace here instead of 1) do.
    for (std::size_t b = 0; b < bn; ++b) {
      std::optional<Xoshiro256> rng_t;
      std::optional<Xoshiro256> frng;
      Xoshiro256* r = &rng;
      Xoshiro256* fr = nullptr;
      if (v2) {
        const std::size_t g = t - 1 + b;
        rng_t.emplace(
            Xoshiro256::trace_stream(cfg_.seed, kTraceDomainCapture, g));
        r = &*rng_t;
        if (fence_) {
          frng.emplace(fence_->trace_rng(g));
          fr = &*frng;
        }
      }
      crypto::Block pt;
      for (auto& pb : pt) pb = static_cast<std::uint8_t>(r->next());
      const auto enc =
          v2 ? setup_.victim().encrypt_stateless(pt, t - 1 + b, v2_regs)
             : setup_.victim().encrypt(pt);
      if (defer_hw) {
        defense::ActiveFence* fence = fence_ ? &*fence_ : nullptr;
        for (std::size_t c = 0; c < ncyc; ++c) {
          double i = enc.cycle_current[c];
          if (fence != nullptr) {
            i += fr != nullptr ? fence->cycle_current(*fr)
                               : fence->next_cycle_current();
          }
          i *= coupling;
          icblk[c * block + b] = i;
        }
        FastNormal::instance().fill(*r, zvblk.data() + b * samples, samples);
        FastNormal::instance().fill(*r, zblk.data() + b * samples * dps,
                                    samples * dps);
      } else {
        make_voltages(enc, *r, v, fence_ ? &*fence_ : nullptr, fr);
        if (fast) {
          read_sensor_fast(plan, v, result.bits_of_interest, *r, y);
        } else {
          read_sensor(v, result.bits_of_interest, *r, y);
        }
        std::copy(y.begin(), y.end(), yblk.begin() + b * samples);
      }
      for (std::size_t j = 0; j < kBytes; ++j) {
        clsv[b * kBytes + j] = models[j].class_value(enc.ciphertext);
        clsb[b * kBytes + j] = models[j].class_bit(enc.ciphertext);
      }
      if (store_writer) {
        store_writer->record_meta(t - 1 + b, pt, enc.ciphertext);
      }
    }
    // Compute pass: RNG-free block kernels, then one fused accumulate.
    if (defer_hw) {
      response_.voltages_block(icblk.data(), bn, block, vblk.data(), simd);
      for (std::size_t i = 0; i < bn * samples; ++i) {
        vblk[i] += 0.0 + env_noise_v * zvblk[i];
      }
      setup_.sensor().toggle_hw_block(plan.hw, vblk.data(), bn * samples,
                                      zblk.data(), yblk.data(), simd);
    }
    const double t1 = timed ? obs::monotonic_seconds() : 0.0;
    acc.add_block(clsv.data(), clsb.data(), yblk.data(), bn);
    if (store_writer) {
      store_writer->record_readings_block(t - 1, yblk.data(), bn);
    }
    if (timed) {
      const double t2 = obs::monotonic_seconds();
      kernel_s += t1 - t0;
      cpa_s += t2 - t1;
      if (blocked) {
        ob->metrics().add("slm.kernel.blocks_total");
        ob->metrics().observe("slm.kernel.block_kernel_seconds", t1 - t0);
        ob->metrics().observe("slm.kernel.block_cpa_seconds", t2 - t1);
      }
    }
    t += bn;
    const std::size_t done = t - 1;

    while (next_cp < checkpoints.size() && done == checkpoints[next_cp]) {
      const double f0 = timed ? obs::monotonic_seconds() : 0.0;
      for (std::size_t j = 0; j < kBytes; ++j) {
        if (state[j].converged) continue;
        const sca::CpaEngine folded = acc.fold(j, models[j].pattern().data());
        sca::CpaProgressPoint p =
            sca::snapshot_progress(folded, result.bytes[j].correct);
        const double margin = sca::winner_margin(p);
        const bool qualify = fk.early_exit &&
                             done >= fk.early_exit_min_traces &&
                             state[j].prev_best == p.best_guess &&
                             margin >= fk.early_exit_margin;
        if (qualify) {
          ++state[j].stable;
        } else {
          state[j].stable = 0;
        }
        state[j].prev_best = p.best_guess;
        result.bytes[j].progress.push_back(std::move(p));
        if (qualify && state[j].stable >= fk.early_exit_stable) {
          const sca::CpaProgressPoint& fp = result.bytes[j].progress.back();
          FullKeyByteResult& br = result.bytes[j];
          state[j].converged = true;
          ++converged_count;
          br.recovered = static_cast<std::uint8_t>(fp.best_guess);
          br.traces = done;
          br.final_max_abs_corr = fp.max_abs_corr;
          br.early_exited = true;
          br.success = br.recovered == br.correct;
          if (ob != nullptr) {
            ob->metrics().add("slm.fullkey.converged_total");
            ob->metrics().observe("slm.fullkey.convergence_traces",
                                  static_cast<double>(done));
            ob->event("fullkey_byte_converged",
                      obs::JsonWriter()
                          .field("byte", static_cast<std::uint64_t>(j))
                          .field("traces", static_cast<std::uint64_t>(done))
                          .field("guess",
                                 static_cast<std::uint64_t>(br.recovered))
                          .field("margin", margin));
          }
        }
      }
      if (timed) cpa_s += obs::monotonic_seconds() - f0;

      if (ob != nullptr) {
        const double now = obs::monotonic_seconds();
        const double seg_rate =
            now > seg_time
                ? static_cast<double>(done - seg_traces) / (now - seg_time)
                : 0.0;
        ob->metrics().add("slm.campaign.checkpoints_total");
        ob->metrics().set("slm.campaign.traces_done",
                          static_cast<double>(done));
        ob->metrics().set("slm.fullkey.bytes_converged",
                          static_cast<double>(converged_count));
        ob->metrics().observe("slm.campaign.segment_traces_per_sec",
                              seg_rate);
        ob->event("fullkey_checkpoint",
                  obs::JsonWriter()
                      .field("traces", static_cast<std::uint64_t>(done))
                      .field("bytes_converged",
                             static_cast<std::uint64_t>(converged_count))
                      .field("bytes_active",
                             static_cast<std::uint64_t>(kBytes -
                                                        converged_count))
                      .field("traces_per_sec", seg_rate));
        seg_traces = done;
        seg_time = now;
      }

      if (snapshotting) {
        const double s0 = obs::monotonic_seconds();
        CampaignCheckpoint ck;
        ck.seed = cfg_.seed;
        ck.total_traces = cfg_.traces;
        ck.mode = static_cast<std::uint32_t>(cfg_.mode);
        ck.shards = 1;
        ck.samples = samples;
        ck.target_key_byte = cfg_.target_key_byte;
        ck.target_bit = cfg_.target_bit;
        ck.single_bit = cfg_.single_bit;
        ck.compiled = fast;
        ck.block = block;
        ck.rng_contract = static_cast<std::uint32_t>(contract);
        ck.fullkey = true;
        ck.traces_done = done;
        CheckpointShard sh;
        sh.position = done;
        sh.has_fence = fence_.has_value();
        if (!v2) {
          sh.rng = rng.state();
          sh.victim = setup_.victim().register_snapshot();
          if (fence_) sh.fence_rng = fence_->rng_state();
        }
        ByteWriter accw;
        acc.save(accw);
        sh.accumulator = accw.bytes();
        ck.shard_state.push_back(std::move(sh));
        ck.fullkey_bytes.reserve(kBytes);
        for (std::size_t j = 0; j < kBytes; ++j) {
          FullKeyByteCheckpoint fb;
          fb.converged = state[j].converged;
          fb.stable = state[j].stable;
          fb.prev_best = state[j].prev_best;
          if (state[j].converged) {
            fb.frozen_traces = result.bytes[j].traces;
            fb.recovered = result.bytes[j].recovered;
            fb.frozen_corr = result.bytes[j].final_max_abs_corr;
          }
          fb.progress = result.bytes[j].progress;
          ck.fullkey_bytes.push_back(std::move(fb));
        }
        const std::size_t bytes = save_checkpoint(cfg_.checkpoint_dir, ck);
        result.snapshot_path = checkpoint_file(cfg_.checkpoint_dir);
        const double io = obs::monotonic_seconds() - s0;
        ckpt_io_s += io;
        if (ob != nullptr) {
          ob->metrics().add("slm.checkpoint.snapshots_total");
          ob->metrics().add("slm.checkpoint.bytes_total",
                            static_cast<double>(bytes));
          ob->metrics().observe("slm.checkpoint.write_seconds", io);
          ob->event("snapshot",
                    obs::JsonWriter()
                        .field("traces", static_cast<std::uint64_t>(done))
                        .field("bytes", static_cast<std::uint64_t>(bytes))
                        .field("seconds", io)
                        .field("path", result.snapshot_path));
        }
      }
      ++next_cp;

      if (cfg_.halt_after_traces > 0 && done >= cfg_.halt_after_traces) {
        if (ob != nullptr) {
          ob->event("halt",
                    obs::JsonWriter()
                        .field("traces", static_cast<std::uint64_t>(done))
                        .field("path", result.snapshot_path));
        }
        throw CampaignHalted(done, result.snapshot_path);
      }
    }
  }

  // Final folds for the bytes that never froze.
  {
    const double f0 = timed ? obs::monotonic_seconds() : 0.0;
    for (std::size_t j = 0; j < kBytes; ++j) {
      if (state[j].converged) continue;
      const sca::CpaEngine folded = acc.fold(j, models[j].pattern().data());
      FullKeyByteResult& br = result.bytes[j];
      if (br.progress.empty() ||
          br.progress.back().traces != folded.trace_count()) {
        br.progress.push_back(sca::snapshot_progress(folded, br.correct));
      }
      const sca::CpaProgressPoint& fp = br.progress.back();
      br.recovered = static_cast<std::uint8_t>(fp.best_guess);
      br.traces = folded.trace_count();
      br.final_max_abs_corr = fp.max_abs_corr;
      br.success = br.recovered == br.correct;
    }
    if (timed) cpa_s += obs::monotonic_seconds() - f0;
  }
  for (std::size_t j = 0; j < kBytes; ++j) {
    result.bytes[j].mtd = sca::estimate_mtd(result.bytes[j].progress);
  }

  if (store_writer) finalize_trace_store(*store_writer, ob);

  result.kernel_seconds = kernel_s;
  result.cpa_seconds = cpa_s;
  result.checkpoint_io_seconds = ckpt_io_s;
  if (ob != nullptr) {
    ob->metrics().set("slm.campaign.kernel_seconds", kernel_s);
    ob->metrics().set("slm.campaign.cpa_seconds", cpa_s);
    ob->metrics().set("slm.campaign.checkpoint_io_seconds", ckpt_io_s);
    ob->metrics().set("slm.campaign.selection_seconds",
                      result.selection_seconds);
  }

  result.traces_run = acc.trace_count();
  result.threads_used = 1;
  result.capture_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return result;
}

}  // namespace slm::core
