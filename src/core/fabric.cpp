#include "core/fabric.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <filesystem>
#include <thread>

#include "common/binio.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "core/checkpoint.hpp"
#include "obs/jsonl.hpp"
#include "obs/observer.hpp"
#include "sca/model.hpp"

namespace slm::core {

namespace {

constexpr char kSnapMagic[] = "SLMSNAP1";

enum class AccKind { kEngine, kClass, kMulti };

AccKind kind_of(const SnapshotIdentity& id) {
  if (id.fullkey != 0) return AccKind::kMulti;
  return id.compiled != 0 ? AccKind::kClass : AccKind::kEngine;
}

void put_identity(ByteWriter& out, const SnapshotIdentity& id) {
  out.put_u32(id.circuit);
  out.put_u32(id.mode);
  out.put_u64(id.seed);
  out.put_u64(id.total_traces);
  out.put_u64(id.samples);
  out.put_u64(id.target_key_byte);
  out.put_u64(id.target_bit);
  out.put_u64(id.single_bit);
  out.put_u8(id.compiled);
  out.put_u32(id.rng_contract);
  out.put_u8(id.fullkey);
}

SnapshotIdentity get_identity(ByteReader& in) {
  SnapshotIdentity id;
  id.circuit = in.get_u32();
  id.mode = in.get_u32();
  id.seed = in.get_u64();
  id.total_traces = in.get_u64();
  id.samples = in.get_u64();
  id.target_key_byte = in.get_u64();
  id.target_bit = in.get_u64();
  id.single_bit = in.get_u64();
  id.compiled = in.get_u8();
  id.rng_contract = in.get_u32();
  id.fullkey = in.get_u8();
  return id;
}

}  // namespace

std::uint32_t SnapshotIdentity::fingerprint() const {
  ByteWriter canon;
  put_identity(canon, *this);
  return crc32(canon.bytes().data(), canon.size());
}

bool SnapshotIdentity::operator==(const SnapshotIdentity& o) const {
  return circuit == o.circuit && mode == o.mode && seed == o.seed &&
         total_traces == o.total_traces && samples == o.samples &&
         target_key_byte == o.target_key_byte && target_bit == o.target_bit &&
         single_bit == o.single_bit && compiled == o.compiled &&
         rng_contract == o.rng_contract && fullkey == o.fullkey;
}

std::vector<TraceRange> plan_shards(std::uint64_t total, unsigned shards) {
  SLM_REQUIRE(shards > 0, "plan_shards: zero shards");
  std::vector<TraceRange> out;
  out.reserve(shards);
  for (unsigned i = 0; i < shards; ++i) {
    out.push_back(TraceRange{total * i / shards, total * (i + 1) / shards});
  }
  return out;
}

RangeLedger::RangeLedger(std::uint64_t total) : total_(total) {}

void RangeLedger::cover(TraceRange r) {
  if (r.begin >= r.end) {
    throw SnapshotRangeError("range ledger: empty or inverted trace range [" +
                             std::to_string(r.begin) + ", " +
                             std::to_string(r.end) + ")");
  }
  if (r.end > total_) {
    throw SnapshotRangeError("range ledger: range [" +
                             std::to_string(r.begin) + ", " +
                             std::to_string(r.end) +
                             ") exceeds the campaign budget of " +
                             std::to_string(total_) + " traces");
  }
  auto it = std::lower_bound(
      ranges_.begin(), ranges_.end(), r,
      [](const TraceRange& a, const TraceRange& b) { return a.begin < b.begin; });
  const auto overlap = [&](const TraceRange& existing) {
    throw SnapshotRangeError(
        "range ledger: range [" + std::to_string(r.begin) + ", " +
        std::to_string(r.end) + ") overlaps already-covered [" +
        std::to_string(existing.begin) + ", " + std::to_string(existing.end) +
        ") — merging it would double-count traces");
  };
  if (it != ranges_.begin() && std::prev(it)->end > r.begin) {
    overlap(*std::prev(it));
  }
  if (it != ranges_.end() && it->begin < r.end) overlap(*it);
  it = ranges_.insert(it, r);
  // Coalesce with touching neighbours so ranges() stays canonical.
  if (it != ranges_.begin() && std::prev(it)->end == it->begin) {
    std::prev(it)->end = it->end;
    it = ranges_.erase(it);
    --it;
  }
  if (std::next(it) != ranges_.end() && it->end == std::next(it)->begin) {
    it->end = std::next(it)->end;
    ranges_.erase(std::next(it));
  }
}

std::uint64_t RangeLedger::covered() const {
  std::uint64_t n = 0;
  for (const TraceRange& r : ranges_) n += r.count();
  return n;
}

std::vector<TraceRange> RangeLedger::missing() const {
  std::vector<TraceRange> gaps;
  std::uint64_t cursor = 0;
  for (const TraceRange& r : ranges_) {
    if (cursor < r.begin) gaps.push_back(TraceRange{cursor, r.begin});
    cursor = r.end;
  }
  if (cursor < total_) gaps.push_back(TraceRange{cursor, total_});
  return gaps;
}

std::size_t save_snapshot(const std::string& path,
                          const AccumulatorSnapshot& snap) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    SLM_REQUIRE(!ec, "snapshot: cannot create directory '" +
                         parent.string() + "'");
  }
  ByteWriter payload;
  put_identity(payload, snap.id);
  payload.put_u32(snap.id.fingerprint());
  payload.put_u64(snap.ranges.size());
  for (const TraceRange& r : snap.ranges) {
    payload.put_u64(r.begin);
    payload.put_u64(r.end);
  }
  payload.put_u64(snap.accumulator.size());
  payload.put_bytes(snap.accumulator.data(), snap.accumulator.size());
  return write_framed_file(path, kSnapMagic, kSnapshotVersion,
                           payload.bytes(), "snapshot");
}

AccumulatorSnapshot load_snapshot(const std::string& path) {
  std::optional<std::vector<std::uint8_t>> payload;
  try {
    payload = read_framed_file(path, kSnapMagic, kSnapshotVersion, "snapshot");
  } catch (const Error& e) {
    throw SnapshotFormatError(e.what());
  }
  if (!payload) {
    throw SnapshotFormatError("snapshot: no file at '" + path + "'");
  }

  AccumulatorSnapshot snap;
  snap.source = path;
  try {
    ByteReader in(payload->data(), payload->size());
    snap.id = get_identity(in);
    SLM_REQUIRE(snap.id.rng_contract == 2,
                "snapshot: fabric snapshots require RNG contract v2, file "
                "claims v" + std::to_string(snap.id.rng_contract));
    const std::uint32_t stored_fp = in.get_u32();
    SLM_REQUIRE(stored_fp == snap.id.fingerprint(),
                "snapshot: config fingerprint does not match the identity "
                "fields in '" + path + "'");
    const std::uint64_t range_count = in.get_u64();
    SLM_REQUIRE(range_count <= in.remaining() / 16,
                "snapshot: range table overruns payload");
    snap.ranges.reserve(range_count);
    for (std::uint64_t i = 0; i < range_count; ++i) {
      TraceRange r;
      r.begin = in.get_u64();
      r.end = in.get_u64();
      snap.ranges.push_back(r);
    }
    const std::uint64_t acc_size = in.get_u64();
    SLM_REQUIRE(acc_size <= in.remaining(),
                "snapshot: accumulator blob overruns payload");
    snap.accumulator.resize(acc_size);
    in.get_bytes(snap.accumulator.data(), acc_size);
    SLM_REQUIRE(in.done(), "snapshot: trailing bytes after payload");
  } catch (const SnapshotRangeError&) {
    throw;
  } catch (const Error& e) {
    throw SnapshotFormatError(e.what());
  }

  // Range discipline is a separate failure class from file corruption:
  // a structurally valid file claiming overlapping coverage must fail
  // as a double-count, not as "corrupt".
  RangeLedger ledger(snap.id.total_traces);
  for (const TraceRange& r : snap.ranges) {
    try {
      ledger.cover(r);
    } catch (const SnapshotRangeError& e) {
      throw SnapshotRangeError(std::string(e.what()) + " (in '" + path +
                               "')");
    }
  }
  return snap;
}

AccumulatorSnapshot merge_snapshots(
    const std::vector<AccumulatorSnapshot>& parts) {
  SLM_REQUIRE(!parts.empty(), "merge: no snapshots to merge");
  const SnapshotIdentity& id = parts[0].id;
  for (std::size_t i = 1; i < parts.size(); ++i) {
    const SnapshotIdentity& o = parts[i].id;
    const std::string where =
        parts[i].source.empty() ? "snapshot #" + std::to_string(i)
                                : "'" + parts[i].source + "'";
    const auto mismatch = [&](const char* what) {
      throw SnapshotMismatch("merge: " + where +
                             " was captured under a different " + what +
                             " than " +
                             (parts[0].source.empty()
                                  ? std::string("snapshot #0")
                                  : "'" + parts[0].source + "'"));
    };
    if (o.seed != id.seed) mismatch("seed");
    if (o.rng_contract != id.rng_contract) mismatch("RNG contract");
    if (o.circuit != id.circuit) mismatch("benign circuit");
    if (o.mode != id.mode) mismatch("sensor mode");
    if (o.total_traces != id.total_traces) mismatch("trace budget");
    if (o.samples != id.samples) mismatch("sampling window");
    if (o.target_key_byte != id.target_key_byte ||
        o.target_bit != id.target_bit) {
      mismatch("CPA target");
    }
    if (o.single_bit != id.single_bit) mismatch("sensor bit");
    if (o.compiled != id.compiled) mismatch("kernel path");
    if (o.fullkey != id.fullkey) mismatch("campaign kind (full-key flag)");
    if (!(o == id)) mismatch("config (fingerprint)");
  }

  RangeLedger ledger(id.total_traces);
  for (const AccumulatorSnapshot& part : parts) {
    for (const TraceRange& r : part.ranges) {
      try {
        ledger.cover(r);
      } catch (const SnapshotRangeError& e) {
        throw SnapshotRangeError(
            std::string(e.what()) +
            (part.source.empty() ? "" : " (while merging '" + part.source +
                                            "')"));
      }
    }
  }

  const std::size_t samples = static_cast<std::size_t>(id.samples);
  const auto load_acc = [&](auto& acc, const AccumulatorSnapshot& part) {
    try {
      ByteReader in(part.accumulator.data(), part.accumulator.size());
      acc.load(in);
      SLM_REQUIRE(in.done(), "snapshot: trailing accumulator bytes");
    } catch (const Error& e) {
      throw SnapshotFormatError(
          std::string(e.what()) +
          (part.source.empty() ? "" : " (in '" + part.source + "')"));
    }
  };
  AccumulatorSnapshot out;
  out.id = id;
  out.ranges = ledger.ranges();
  ByteWriter acc_out;
  switch (kind_of(id)) {
    case AccKind::kMulti: {
      sca::MultiByteCpa merged(samples);
      sca::MultiByteCpa one(samples);
      for (const AccumulatorSnapshot& part : parts) {
        load_acc(one, part);
        merged.merge(one);
      }
      merged.save(acc_out);
      break;
    }
    case AccKind::kClass: {
      sca::XorClassCpa merged(samples);
      sca::XorClassCpa one(samples);
      for (const AccumulatorSnapshot& part : parts) {
        load_acc(one, part);
        merged.merge(one);
      }
      merged.save(acc_out);
      break;
    }
    case AccKind::kEngine: {
      sca::CpaEngine merged(256, samples);
      sca::CpaEngine one(256, samples);
      for (const AccumulatorSnapshot& part : parts) {
        load_acc(one, part);
        merged.merge(one);
      }
      merged.save(acc_out);
      break;
    }
  }
  out.accumulator = acc_out.bytes();
  return out;
}

sca::CpaEngine fold_snapshot_byte(const AccumulatorSnapshot& snap,
                                  std::size_t key_byte) {
  const std::size_t samples = static_cast<std::size_t>(snap.id.samples);
  ByteReader in(snap.accumulator.data(), snap.accumulator.size());
  switch (kind_of(snap.id)) {
    case AccKind::kMulti: {
      SLM_REQUIRE(key_byte < sca::MultiByteCpa::kBytes,
                  "fold: key byte out of range");
      sca::MultiByteCpa mb(samples);
      mb.load(in);
      SLM_REQUIRE(in.done(), "snapshot: trailing accumulator bytes");
      sca::LastRoundBitModel model(key_byte, snap.id.target_bit);
      return mb.fold(key_byte, model.pattern().data());
    }
    case AccKind::kClass: {
      SLM_REQUIRE(key_byte == snap.id.target_key_byte,
                  "fold: single-byte snapshot targets key byte " +
                      std::to_string(snap.id.target_key_byte));
      sca::XorClassCpa cls(samples);
      cls.load(in);
      SLM_REQUIRE(in.done(), "snapshot: trailing accumulator bytes");
      sca::LastRoundBitModel model(key_byte, snap.id.target_bit);
      return cls.fold(model.pattern().data());
    }
    case AccKind::kEngine:
    default: {
      SLM_REQUIRE(key_byte == snap.id.target_key_byte,
                  "fold: single-byte snapshot targets key byte " +
                      std::to_string(snap.id.target_key_byte));
      sca::CpaEngine engine(256, samples);
      engine.load(in);
      SLM_REQUIRE(in.done(), "snapshot: trailing accumulator bytes");
      return engine;
    }
  }
}

FabricWorker::FabricWorker(AttackSetup& setup, const CampaignConfig& cfg,
                           bool fullkey)
    : setup_(setup), campaign_(setup, cfg), fullkey_(fullkey) {}

const SnapshotIdentity& FabricWorker::identity() {
  if (resolved_) return id_;
  const RngContract contract =
      resolve_contract(campaign_.cfg_.rng_contract);
  SLM_REQUIRE(contract == RngContract::kV2,
              "fabric: shard workers require RNG contract v2 (counter-keyed "
              "per-trace streams) — a v1 sequential stream cannot start "
              "mid-sequence; rerun with --rng-contract v2");
  // Selection pre-pass: deterministic from the config seed alone, so
  // every worker of the same campaign resolves identical bits — nothing
  // shard-specific leaks into the identity.
  CampaignResult scratch;
  campaign_.resolve_sensor_bits(&scratch);
  bits_ = std::move(scratch.bits_of_interest);

  const CampaignConfig& cfg = campaign_.cfg_;
  id_.circuit = static_cast<std::uint32_t>(setup_.circuit_kind());
  id_.mode = static_cast<std::uint32_t>(cfg.mode);
  id_.seed = cfg.seed;
  id_.total_traces = cfg.traces;
  id_.samples = campaign_.sample_times_.size();
  id_.target_key_byte = cfg.target_key_byte;
  id_.target_bit = cfg.target_bit;
  id_.single_bit = cfg.single_bit;
  id_.compiled = cfg.compiled_kernels ? 1 : 0;
  id_.rng_contract = static_cast<std::uint32_t>(contract);
  id_.fullkey = fullkey_ ? 1 : 0;
  resolved_ = true;
  return id_;
}

AccumulatorSnapshot FabricWorker::run(const FabricJob& job) {
  identity();
  const CampaignConfig& cfg = campaign_.cfg_;
  const std::uint64_t a = job.range.begin;
  const std::uint64_t bEnd = job.range.end;
  if (a >= bEnd || bEnd > cfg.traces) {
    throw SnapshotRangeError(
        "fabric: worker range [" + std::to_string(a) + ", " +
        std::to_string(bEnd) + ") is empty or exceeds the campaign budget of " +
        std::to_string(cfg.traces) + " traces");
  }
  SLM_REQUIRE(!job.snapshot_out.empty(), "fabric: worker needs a snapshot path");

  obs::CampaignObserver* const ob = cfg.observer;
  constexpr std::size_t kBytes = sca::MultiByteCpa::kBytes;
  const std::size_t samples = campaign_.sample_times_.size();

  // Identical capture machinery to the sharded engine's v2 path, run
  // single-threaded over [a, bEnd) — same streams, same FP expression
  // order, so the accumulator content per trace index is byte-identical.
  const std::size_t block = resolve_block(cfg.block);
  const bool simd = resolve_simd(cfg.simd);
  const bool blocked = block > 1;
  const bool fast = cfg.compiled_kernels;
  const CpaCampaign::SensorPlan plan =
      fast ? campaign_.make_sensor_plan(bits_) : CpaCampaign::SensorPlan{};
  const bool defer_hw = blocked && fast && plan.batched &&
                        cfg.mode == SensorMode::kBenignHw;
  const std::size_t dps = plan.hw.draws_per_sample;
  const std::size_t ncyc = campaign_.response_.cycle_count();
  const double coupling = setup_.effective_coupling();
  const double env_noise_v = setup_.calibration().env_noise_v;

  std::vector<sca::LastRoundBitModel> models;
  if (fullkey_) {
    models.reserve(kBytes);
    for (std::size_t j = 0; j < kBytes; ++j) {
      models.emplace_back(j, cfg.target_bit);
    }
  } else {
    models.emplace_back(cfg.target_key_byte, cfg.target_bit);
  }
  const auto label = [&](const crypto::Block& ct, std::uint8_t* v16,
                         std::uint8_t* b16) {
    for (std::size_t j = 0; j < kBytes; ++j) {
      v16[j] = models[j].class_value(ct);
      b16[j] = models[j].class_bit(ct);
    }
  };

  sca::CpaEngine engine(256, samples);
  sca::XorClassCpa cls(samples);
  sca::MultiByteCpa mb(samples);

  crypto::AesDatapathModel victim = setup_.victim();
  std::optional<defense::ActiveFence> fence;
  if (cfg.fence.random_current_a > 0.0 || cfg.fence.base_current_a > 0.0) {
    // v2 derives fence draws per trace from the UNPERTURBED fence seed
    // (ActiveFence::trace_rng) — same as every other v2 engine.
    fence.emplace(cfg.fence);
  }

  std::vector<double> v;
  std::vector<double> y;
  std::vector<std::uint8_t> h;
  std::vector<double> vblk;
  std::vector<double> zblk;
  std::vector<double> icblk;
  std::vector<double> zvblk;
  std::vector<double> yblk;
  std::vector<std::uint8_t> clsv;
  std::vector<std::uint8_t> clsb;
  std::vector<std::uint8_t> hblk;
  if (blocked) {
    yblk.resize(block * samples);
    clsv.resize(block * (fullkey_ ? kBytes : 1));
    clsb.resize(block * (fullkey_ ? kBytes : 1));
    if (defer_hw) {
      vblk.resize(block * samples);
      zblk.resize(block * samples * dps);
      icblk.resize(ncyc * block);
      zvblk.resize(block * samples);
    }
    if (!fast && !fullkey_) hblk.resize(block * 256);
  }

  // Snapshot boundaries: the snapshot_every grid within the range, the
  // halt point (so the partial snapshot covers exactly [a, a+halt)),
  // and the range end.
  std::vector<std::uint64_t> bounds;
  if (job.snapshot_every > 0) {
    for (std::uint64_t s = a + job.snapshot_every; s < bEnd;
         s += job.snapshot_every) {
      bounds.push_back(s);
    }
  }
  if (job.halt_after > 0 && a + job.halt_after < bEnd) {
    bounds.push_back(a + job.halt_after);
  }
  bounds.push_back(bEnd);
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  if (ob != nullptr) {
    ob->metrics().set("slm.fabric.range_traces",
                      static_cast<double>(bEnd - a));
    ob->event("fabric_worker_start",
              obs::JsonWriter()
                  .field("begin", a)
                  .field("end", bEnd)
                  .field("fullkey", fullkey_)
                  .field("fingerprint",
                         static_cast<std::uint64_t>(id_.fingerprint()))
                  .field("snapshot_out", job.snapshot_out));
  }

  // Incoming victim registers at the range start: derivable from the
  // previous trace alone, exactly as in the sharded engine. The chain
  // then persists across snapshot boundaries.
  crypto::AesDatapathModel::RegisterSnapshot regs{};
  if (a > 0) {
    Xoshiro256 prev =
        Xoshiro256::trace_stream(cfg.seed, kTraceDomainCapture, a - 1);
    crypto::Block prev_pt;
    for (auto& pb : prev_pt) pb = static_cast<std::uint8_t>(prev.next());
    regs = victim.registers_after(prev_pt, a - 1);
  }

  const auto write_snapshot = [&](std::uint64_t covered_end) {
    AccumulatorSnapshot snap;
    snap.id = id_;
    snap.ranges = {TraceRange{a, covered_end}};
    ByteWriter acc;
    if (fullkey_) {
      mb.save(acc);
    } else if (fast) {
      cls.save(acc);
    } else {
      engine.save(acc);
    }
    snap.accumulator = acc.bytes();
    const double s0 = obs::monotonic_seconds();
    const std::size_t bytes = save_snapshot(job.snapshot_out, snap);
    if (ob != nullptr) {
      ob->metrics().add("slm.fabric.snapshots_total");
      ob->metrics().add("slm.fabric.snapshot_bytes_total",
                        static_cast<double>(bytes));
      ob->metrics().observe("slm.fabric.snapshot_write_seconds",
                            obs::monotonic_seconds() - s0);
      ob->event("fabric_snapshot",
                obs::JsonWriter()
                    .field("begin", a)
                    .field("end", bEnd)
                    .field("covered_end", covered_end)
                    .field("bytes", static_cast<std::uint64_t>(bytes))
                    .field("path", job.snapshot_out));
    }
    return snap;
  };

  AccumulatorSnapshot last_snap;
  std::uint64_t g = a;
  for (const std::uint64_t cp : bounds) {
    while (g < cp) {
      const std::size_t bn =
          blocked ? std::min<std::uint64_t>(block, cp - g) : 1;
      for (std::size_t b = 0; b < bn; ++b) {
        const std::uint64_t gb = g + b;
        Xoshiro256 rng_t =
            Xoshiro256::trace_stream(cfg.seed, kTraceDomainCapture, gb);
        crypto::Block pt;
        for (auto& pb : pt) pb = static_cast<std::uint8_t>(rng_t.next());
        const auto enc = victim.encrypt_stateless(pt, gb, regs);
        if (defer_hw) {
          if (fence) {
            Xoshiro256 frng = fence->trace_rng(gb);
            for (std::size_t c = 0; c < ncyc; ++c) {
              double cur = enc.cycle_current[c];
              cur += fence->cycle_current(frng);
              cur *= coupling;
              icblk[c * block + b] = cur;
            }
          } else {
            for (std::size_t c = 0; c < ncyc; ++c) {
              double cur = enc.cycle_current[c];
              cur *= coupling;
              icblk[c * block + b] = cur;
            }
          }
          FastNormal::instance().fill(rng_t, zvblk.data() + b * samples,
                                      samples);
          FastNormal::instance().fill(rng_t, zblk.data() + b * samples * dps,
                                      samples * dps);
        } else {
          std::optional<Xoshiro256> frng;
          Xoshiro256* fr = nullptr;
          if (fence) {
            frng.emplace(fence->trace_rng(gb));
            fr = &*frng;
          }
          campaign_.make_voltages(enc, rng_t, v, fence ? &*fence : nullptr,
                                  fr);
          if (fast) {
            campaign_.read_sensor_fast(plan, v, bits_, rng_t, y);
          } else {
            campaign_.read_sensor(v, bits_, rng_t, y);
          }
          if (!blocked) {
            if (fullkey_) {
              std::uint8_t v16[kBytes];
              std::uint8_t b16[kBytes];
              label(enc.ciphertext, v16, b16);
              mb.add_trace(v16, b16, y);
            } else if (fast) {
              cls.add_trace(models[0].class_value(enc.ciphertext),
                            models[0].class_bit(enc.ciphertext), y);
            } else {
              models[0].hypotheses(enc.ciphertext, h);
              engine.add_trace(h, y);
            }
          } else {
            std::copy(y.begin(), y.end(), yblk.begin() + b * samples);
            if (!fast && !fullkey_) {
              models[0].hypotheses(enc.ciphertext, h);
              std::copy(h.begin(), h.end(), hblk.begin() + b * 256);
            }
          }
        }
        if (blocked) {
          if (fullkey_) {
            label(enc.ciphertext, clsv.data() + b * kBytes,
                  clsb.data() + b * kBytes);
          } else if (fast) {
            clsv[b] = models[0].class_value(enc.ciphertext);
            clsb[b] = models[0].class_bit(enc.ciphertext);
          }
        }
      }
      if (blocked) {
        if (defer_hw) {
          campaign_.response_.voltages_block(icblk.data(), bn, block,
                                             vblk.data(), simd);
          for (std::size_t k = 0; k < bn * samples; ++k) {
            vblk[k] += 0.0 + env_noise_v * zvblk[k];
          }
          setup_.sensor().toggle_hw_block(plan.hw, vblk.data(), bn * samples,
                                          zblk.data(), yblk.data(), simd);
        }
        if (fullkey_) {
          mb.add_block(clsv.data(), clsb.data(), yblk.data(), bn);
        } else if (fast) {
          cls.add_block(clsv.data(), clsb.data(), yblk.data(), bn);
        } else {
          engine.add_traces(hblk.data(), yblk.data(), bn);
        }
      }
      g += bn;
    }
    last_snap = write_snapshot(cp);
    if (job.halt_after > 0 && cp - a >= job.halt_after) {
      if (ob != nullptr) {
        ob->event("halt", obs::JsonWriter()
                              .field("traces", cp)
                              .field("path", job.snapshot_out));
      }
      throw CampaignHalted(static_cast<std::size_t>(cp), job.snapshot_out);
    }
  }
  return last_snap;
}

void FabricProgress::reset(std::size_t workers) {
  std::lock_guard<std::mutex> g(m_);
  covered_.assign(workers, 0);
}

void FabricProgress::update(std::size_t worker, std::uint64_t covered_end) {
  std::lock_guard<std::mutex> g(m_);
  if (worker < covered_.size() && covered_end > covered_[worker]) {
    covered_[worker] = covered_end;
  }
}

std::uint64_t FabricProgress::covered(std::size_t worker) const {
  std::lock_guard<std::mutex> g(m_);
  return worker < covered_.size() ? covered_[worker] : 0;
}

std::uint64_t FabricProgress::total_covered() const {
  std::lock_guard<std::mutex> g(m_);
  std::uint64_t n = 0;
  for (const std::uint64_t c : covered_) n += c;
  return n;
}

namespace {

pid_t spawn_worker(const std::string& binary,
                   const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 2);
  argv.push_back(const_cast<char*>(binary.c_str()));
  for (const std::string& a : args) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);
  const pid_t pid = fork();
  SLM_REQUIRE(pid >= 0, "fabric: fork failed");
  if (pid == 0) {
    execv(binary.c_str(), argv.data());
    _exit(127);
  }
  return pid;
}

}  // namespace

CoordinateResult coordinate_local(const CoordinateOptions& opt) {
  SLM_REQUIRE(opt.shards > 0, "fabric: need at least one shard");
  SLM_REQUIRE(opt.total_traces > 0, "fabric: zero-trace campaign");
  SLM_REQUIRE(!opt.work_dir.empty(), "fabric: need a work directory");
  SLM_REQUIRE(!opt.slm_binary.empty(), "fabric: need the worker binary path");
  {
    std::error_code ec;
    std::filesystem::create_directories(opt.work_dir, ec);
    SLM_REQUIRE(!ec, "fabric: cannot create work directory '" +
                         opt.work_dir + "'");
  }
  obs::CampaignObserver* const ob = opt.observer;
  if (ob != nullptr) {
    ob->metrics().set("slm.fabric.shards_total",
                      static_cast<double>(opt.shards));
    ob->event("fabric_run_start",
              obs::JsonWriter()
                  .field("shards", static_cast<std::uint64_t>(opt.shards))
                  .field("traces", opt.total_traces)
                  .field("binary", opt.slm_binary)
                  .field("work_dir", opt.work_dir));
  }

  struct Assignment {
    TraceRange range;
    unsigned shard;  ///< original shard label, for logs/events
    bool kill = false;
  };
  std::deque<Assignment> queue;
  {
    const std::vector<TraceRange> shards =
        plan_shards(opt.total_traces, opt.shards);
    for (unsigned i = 0; i < shards.size(); ++i) {
      if (shards[i].count() == 0) continue;
      queue.push_back(
          {shards[i], i, opt.kill_shard >= 0 &&
                             i == static_cast<unsigned>(opt.kill_shard) &&
                             opt.kill_after > 0});
    }
  }

  RangeLedger ledger(opt.total_traces);
  std::vector<AccumulatorSnapshot> parts;
  FabricProgress progress;
  CoordinateResult result;

  unsigned round = 0;
  while (!queue.empty()) {
    SLM_REQUIRE(round <= opt.max_reissue_rounds,
                "fabric: shard reissue limit reached with " +
                    std::to_string(ledger.missing().size()) +
                    " range(s) still uncovered — workers keep failing");
    struct Worker {
      Assignment job;
      pid_t pid = -1;
      std::string snap;
      std::string jsonl;
      int rc = -1;
      bool reaped = false;
    };
    std::vector<Worker> workers;
    workers.reserve(queue.size());
    // Spawn the whole round BEFORE starting monitor threads: fork from
    // a single-threaded coordinator state is the portable-safe order.
    for (std::size_t w = 0; !queue.empty(); ++w) {
      Worker wk;
      wk.job = queue.front();
      queue.pop_front();
      const std::string stem = (std::filesystem::path(opt.work_dir) /
                                ("shard_r" + std::to_string(round) + "_" +
                                 std::to_string(w)))
                                   .string();
      wk.snap = stem + ".snap";
      wk.jsonl = stem + ".jsonl";
      std::vector<std::string> args;
      args.push_back("attack");
      args.insert(args.end(), opt.worker_args.begin(), opt.worker_args.end());
      args.push_back("--range");
      args.push_back(std::to_string(wk.job.range.begin) + ":" +
                     std::to_string(wk.job.range.end));
      args.push_back("--snapshot-out");
      args.push_back(wk.snap);
      args.push_back("--trace-out");
      args.push_back(wk.jsonl);
      if (opt.snapshot_every > 0) {
        args.push_back("--snapshot-every");
        args.push_back(std::to_string(opt.snapshot_every));
      }
      if (wk.job.kill && round == 0) {
        args.push_back("--halt-after");
        args.push_back(std::to_string(opt.kill_after));
      }
      wk.pid = spawn_worker(opt.slm_binary, args);
      ++result.workers_spawned;
      if (ob != nullptr) {
        ob->metrics().add("slm.fabric.workers_spawned_total");
        ob->event("fabric_worker_spawn",
                  obs::JsonWriter()
                      .field("shard", static_cast<std::uint64_t>(wk.job.shard))
                      .field("round", static_cast<std::uint64_t>(round))
                      .field("begin", wk.job.range.begin)
                      .field("end", wk.job.range.end)
                      .field("pid", static_cast<std::int64_t>(wk.pid))
                      .field("kill", wk.job.kill && round == 0));
      }
      workers.push_back(std::move(wk));
    }

    // Per-worker monitor threads tail the worker JSONL streams into the
    // shared progress view while the coordinator loop below reads it
    // concurrently — the locking here is what fabric_tsan races.
    progress.reset(workers.size());
    std::atomic<bool> stop{false};
    std::vector<std::thread> monitors;
    monitors.reserve(workers.size());
    for (std::size_t w = 0; w < workers.size(); ++w) {
      monitors.emplace_back([&, w] {
        const std::string path = workers[w].jsonl;
        for (;;) {
          if (const std::optional<double> c =
                  obs::last_event_value(path, "fabric_snapshot",
                                        "covered_end")) {
            progress.update(w, static_cast<std::uint64_t>(*c));
          }
          if (stop.load(std::memory_order_acquire)) break;
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
      });
    }

    std::size_t live = workers.size();
    std::uint64_t last_covered = 0;
    while (live > 0) {
      for (Worker& wk : workers) {
        if (wk.reaped) continue;
        int status = 0;
        const pid_t r = waitpid(wk.pid, &status, WNOHANG);
        if (r == wk.pid) {
          wk.reaped = true;
          wk.rc = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
          --live;
          if (ob != nullptr) {
            ob->event("fabric_worker_exit",
                      obs::JsonWriter()
                          .field("shard",
                                 static_cast<std::uint64_t>(wk.job.shard))
                          .field("rc", static_cast<std::int64_t>(wk.rc)));
          }
        }
      }
      const std::uint64_t covered_now = progress.total_covered();
      if (ob != nullptr) {
        ob->metrics().add("slm.fabric.progress_polls_total");
        if (covered_now != last_covered) {
          ob->metrics().set("slm.fabric.traces_covered",
                            static_cast<double>(ledger.covered() +
                                                covered_now));
          last_covered = covered_now;
        }
      }
      if (live > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    stop.store(true, std::memory_order_release);
    for (std::thread& t : monitors) t.join();

    // Salvage: whatever complete snapshot prefix each worker left behind
    // counts as covered; the rest of its assignment is reissued.
    for (const Worker& wk : workers) {
      TraceRange remainder = wk.job.range;
      bool salvaged = false;
      try {
        AccumulatorSnapshot snap = load_snapshot(wk.snap);
        SLM_REQUIRE(snap.ranges.size() == 1 &&
                        snap.ranges[0].begin == wk.job.range.begin &&
                        snap.ranges[0].end <= wk.job.range.end,
                    "fabric: worker snapshot '" + wk.snap +
                        "' does not cover a prefix of its assigned range");
        ledger.cover(snap.ranges[0]);
        remainder.begin = snap.ranges[0].end;
        parts.push_back(std::move(snap));
        salvaged = true;
      } catch (const SnapshotFormatError& e) {
        // Worker died before its first snapshot: nothing usable on disk,
        // the full range goes back to the queue.
        log_info() << "fabric: shard " << wk.job.shard
                   << " left no usable snapshot (" << e.what() << ")";
      }
      if (wk.rc != 0) {
        ++result.worker_failures;
        if (ob != nullptr) {
          ob->metrics().add("slm.fabric.worker_failures_total");
        }
      }
      if (remainder.count() > 0) {
        SLM_REQUIRE(wk.rc != 0,
                    "fabric: worker exited cleanly but covered only [" +
                        std::to_string(wk.job.range.begin) + ", " +
                        std::to_string(remainder.begin) + ") of [" +
                        std::to_string(wk.job.range.begin) + ", " +
                        std::to_string(wk.job.range.end) + ")");
        queue.push_back({remainder, wk.job.shard, false});
        ++result.ranges_reissued;
        if (ob != nullptr) {
          ob->metrics().add("slm.fabric.reissues_total");
          ob->event("fabric_reissue",
                    obs::JsonWriter()
                        .field("shard",
                               static_cast<std::uint64_t>(wk.job.shard))
                        .field("begin", remainder.begin)
                        .field("end", remainder.end)
                        .field("salvaged", salvaged));
        }
      }
    }
    ++round;
  }

  SLM_REQUIRE(ledger.complete(),
              "fabric: coordinator finished with uncovered ranges");
  AccumulatorSnapshot merged = merge_snapshots(parts);
  result.snapshots_merged = parts.size();
  result.merged_path =
      (std::filesystem::path(opt.work_dir) / "merged.snap").string();
  const std::size_t bytes = save_snapshot(result.merged_path, merged);
  if (ob != nullptr) {
    ob->metrics().add("slm.fabric.snapshots_merged_total",
                      static_cast<double>(parts.size()));
    ob->metrics().set("slm.fabric.traces_covered",
                      static_cast<double>(ledger.covered()));
    ob->event("fabric_merge",
              obs::JsonWriter()
                  .field("snapshots",
                         static_cast<std::uint64_t>(parts.size()))
                  .field("covered", ledger.covered())
                  .field("bytes", static_cast<std::uint64_t>(bytes))
                  .field("path", result.merged_path));
  }
  return result;
}

}  // namespace slm::core
