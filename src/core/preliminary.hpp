// Preliminary time-series experiments (Sec. V-A, Figs. 5-8 and 14-16):
// run the full RLC PDN under the RO aggressor and/or continuous AES
// encryptions and record every sensor at the 150 MS/s grid. From the
// resulting toggle-word series the sensitive-bit sets and per-bit
// variances fall out.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvec.hpp"
#include "core/setup.hpp"
#include "sca/selection.hpp"

namespace slm::core {

struct TimeSeriesConfig {
  double duration_ns = 1400.0;
  double ro_enable_ns = 260.0;  ///< RO grid switch-on instant
  bool ro_active = true;
  bool aes_active = false;      ///< back-to-back encryptions when true
  std::uint64_t seed = 0x715e;
};

struct TimeSeriesResult {
  std::vector<double> t_ns;                 ///< sensor sample instants
  std::vector<double> voltage;              ///< PDN voltage at each sample
  std::vector<BitVec> benign_toggles;       ///< full toggle words
  std::vector<std::uint32_t> tdc_readings;  ///< TDC at the same instants
  std::size_t sample_index_at(double t) const;

  /// Hamming weight of each toggle word restricted to `bits` (all bits
  /// when empty) — the post-processed blue curve of Fig. 6.
  std::vector<std::size_t> benign_hw(
      const std::vector<std::size_t>& bits = {}) const;
};

class PreliminaryExperiment {
 public:
  explicit PreliminaryExperiment(AttackSetup& setup) : setup_(setup) {}

  TimeSeriesResult run(const TimeSeriesConfig& cfg) const;

  /// Per-bit statistics over a series (sensitive bits, variances).
  sca::BitSelector analyse(const TimeSeriesResult& series) const;

 private:
  AttackSetup& setup_;
};

}  // namespace slm::core
