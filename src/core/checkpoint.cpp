#include "core/checkpoint.hpp"

#include <filesystem>

#include "common/binio.hpp"
#include "core/campaign.hpp"

namespace slm::core {

namespace {

constexpr char kMagic[] = "SLMCKPT1";

void put_block(ByteWriter& out, const crypto::Block& b) {
  out.put_bytes(b.data(), b.size());
}

crypto::Block get_block(ByteReader& in) {
  crypto::Block b{};
  in.get_bytes(b.data(), b.size());
  return b;
}

void put_progress_point(ByteWriter& out, const sca::CpaProgressPoint& p) {
  out.put_u64(p.traces);
  out.put_u64(p.best_guess);
  out.put_u64(p.correct_rank);
  out.put_f64(p.correct_corr);
  out.put_f64(p.best_wrong_corr);
  out.put_f64_vector(p.max_abs_corr);
}

sca::CpaProgressPoint get_progress_point(ByteReader& in) {
  sca::CpaProgressPoint p;
  p.traces = in.get_u64();
  p.best_guess = in.get_u64();
  p.correct_rank = in.get_u64();
  p.correct_corr = in.get_f64();
  p.best_wrong_corr = in.get_f64();
  p.max_abs_corr = in.get_f64_vector();
  return p;
}

ByteWriter serialize_payload(const CampaignCheckpoint& ck) {
  ByteWriter out;
  out.put_u64(ck.seed);
  out.put_u64(ck.total_traces);
  out.put_u32(ck.mode);
  out.put_u32(ck.shards);
  out.put_u64(ck.samples);
  out.put_u64(ck.target_key_byte);
  out.put_u64(ck.target_bit);
  out.put_u64(ck.single_bit);
  out.put_u8(ck.compiled ? 1 : 0);
  out.put_u64(ck.block);
  out.put_u32(ck.rng_contract);
  out.put_u8(ck.fullkey ? 1 : 0);
  out.put_u64(ck.traces_done);

  out.put_u64(ck.shard_state.size());
  for (const CheckpointShard& sh : ck.shard_state) {
    out.put_u64(sh.position);
    out.put_u64_array(sh.rng);
    put_block(out, sh.victim.register_state);
    put_block(out, sh.victim.register_mask);
    out.put_u64_array(sh.victim.mask_rng_state);
    out.put_u8(sh.has_fence ? 1 : 0);
    out.put_u64_array(sh.fence_rng);
    out.put_u64(sh.accumulator.size());
    out.put_bytes(sh.accumulator.data(), sh.accumulator.size());
  }

  out.put_u64(ck.progress.size());
  for (const auto& p : ck.progress) put_progress_point(out, p);

  if (ck.fullkey) {
    out.put_u64(ck.fullkey_bytes.size());
    for (const FullKeyByteCheckpoint& fb : ck.fullkey_bytes) {
      out.put_u8(fb.converged ? 1 : 0);
      out.put_u64(fb.stable);
      out.put_u64(fb.prev_best);
      out.put_u64(fb.frozen_traces);
      out.put_u8(fb.recovered);
      out.put_f64_vector(fb.frozen_corr);
      out.put_u64(fb.progress.size());
      for (const auto& p : fb.progress) put_progress_point(out, p);
    }
  }
  return out;
}

CampaignCheckpoint parse_payload(ByteReader& in) {
  CampaignCheckpoint ck;
  ck.seed = in.get_u64();
  ck.total_traces = in.get_u64();
  ck.mode = in.get_u32();
  ck.shards = in.get_u32();
  ck.samples = in.get_u64();
  ck.target_key_byte = in.get_u64();
  ck.target_bit = in.get_u64();
  ck.single_bit = in.get_u64();
  ck.compiled = in.get_u8() != 0;
  ck.block = in.get_u64();
  ck.rng_contract = in.get_u32();
  SLM_REQUIRE(ck.rng_contract == 1 || ck.rng_contract == 2,
              "checkpoint: unknown RNG contract " +
                  std::to_string(ck.rng_contract));
  ck.fullkey = in.get_u8() != 0;
  ck.traces_done = in.get_u64();

  const std::uint64_t shard_count = in.get_u64();
  SLM_REQUIRE(shard_count == ck.shards,
              "checkpoint: shard table does not match header");
  ck.shard_state.reserve(shard_count);
  for (std::uint64_t i = 0; i < shard_count; ++i) {
    CheckpointShard sh;
    sh.position = in.get_u64();
    sh.rng = in.get_u64_array<4>();
    sh.victim.register_state = get_block(in);
    sh.victim.register_mask = get_block(in);
    sh.victim.mask_rng_state = in.get_u64_array<4>();
    sh.has_fence = in.get_u8() != 0;
    sh.fence_rng = in.get_u64_array<4>();
    const std::uint64_t acc_size = in.get_u64();
    SLM_REQUIRE(acc_size <= in.remaining(),
                "checkpoint: accumulator blob overruns payload");
    sh.accumulator.resize(acc_size);
    in.get_bytes(sh.accumulator.data(), acc_size);
    ck.shard_state.push_back(std::move(sh));
  }

  const std::uint64_t progress_count = in.get_u64();
  ck.progress.reserve(progress_count);
  for (std::uint64_t i = 0; i < progress_count; ++i) {
    ck.progress.push_back(get_progress_point(in));
  }

  if (ck.fullkey) {
    const std::uint64_t byte_count = in.get_u64();
    SLM_REQUIRE(byte_count == 16,
                "checkpoint: full-key section must carry 16 byte states");
    ck.fullkey_bytes.reserve(byte_count);
    for (std::uint64_t i = 0; i < byte_count; ++i) {
      FullKeyByteCheckpoint fb;
      fb.converged = in.get_u8() != 0;
      fb.stable = in.get_u64();
      fb.prev_best = in.get_u64();
      fb.frozen_traces = in.get_u64();
      fb.recovered = in.get_u8();
      fb.frozen_corr = in.get_f64_vector();
      const std::uint64_t pc = in.get_u64();
      fb.progress.reserve(pc);
      for (std::uint64_t j = 0; j < pc; ++j) {
        fb.progress.push_back(get_progress_point(in));
      }
      ck.fullkey_bytes.push_back(std::move(fb));
    }
  }
  SLM_REQUIRE(in.done(), "checkpoint: trailing bytes after payload");
  return ck;
}

}  // namespace

std::string checkpoint_file(const std::string& dir) {
  return (std::filesystem::path(dir) / "campaign.ckpt").string();
}

std::size_t save_checkpoint(const std::string& dir,
                            const CampaignCheckpoint& ck) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  SLM_REQUIRE(!ec, "checkpoint: cannot create directory '" + dir + "'");

  const ByteWriter payload = serialize_payload(ck);
  return write_framed_file(checkpoint_file(dir), kMagic, kCheckpointVersion,
                           payload.bytes(), "checkpoint");
}

std::optional<CampaignCheckpoint> load_checkpoint(const std::string& dir) {
  const std::string path = checkpoint_file(dir);
  const std::optional<std::vector<std::uint8_t>> payload =
      read_framed_file(path, kMagic, kCheckpointVersion, "checkpoint");
  if (!payload) return std::nullopt;
  ByteReader in(payload->data(), payload->size());
  return parse_payload(in);
}

void require_checkpoint_matches(const CampaignCheckpoint& ck,
                                const CampaignConfig& cfg,
                                std::uint32_t shards, std::size_t samples,
                                std::uint32_t rng_contract, bool fullkey) {
  if (ck.rng_contract != rng_contract) {
    const auto name = [](std::uint32_t c) {
      return std::string("v") + std::to_string(c);
    };
    throw CheckpointContractMismatch(name(ck.rng_contract),
                                     name(rng_contract));
  }
  SLM_REQUIRE(ck.fullkey == fullkey,
              ck.fullkey
                  ? "resume: snapshot is a full-key campaign — resume with "
                    "--full-key"
                  : "resume: snapshot is a single-byte campaign, not a "
                    "full-key one");
  SLM_REQUIRE(ck.seed == cfg.seed, "resume: snapshot was taken under a "
                                   "different seed");
  SLM_REQUIRE(ck.total_traces == cfg.traces,
              "resume: snapshot was taken under a different trace budget");
  SLM_REQUIRE(ck.mode == static_cast<std::uint32_t>(cfg.mode),
              "resume: snapshot was taken under a different sensor mode");
  SLM_REQUIRE(ck.shards == shards,
              "resume: snapshot has " + std::to_string(ck.shards) +
                  " shard(s) but this run uses " + std::to_string(shards) +
                  " — resume with the same --threads");
  SLM_REQUIRE(ck.samples == samples,
              "resume: snapshot was taken under a different sampling window");
  SLM_REQUIRE(ck.target_key_byte == cfg.target_key_byte &&
                  ck.target_bit == cfg.target_bit,
              "resume: snapshot was taken for a different CPA target");
  SLM_REQUIRE(ck.single_bit == cfg.single_bit,
              "resume: snapshot was taken for a different sensor bit");
  SLM_REQUIRE(ck.compiled == cfg.compiled_kernels,
              "resume: snapshot was taken on the other kernel path "
              "(SLM_COMPILED mismatch)");
  // ck.block is deliberately NOT checked: the trace-block size only tiles
  // the capture loop, so resuming under a different --block / SLM_BLOCK
  // still reproduces the uninterrupted run bit-for-bit (resume_test and
  // resume_smoke exercise exactly this).
  SLM_REQUIRE(ck.traces_done < ck.total_traces,
              "resume: snapshot is already complete (" +
                  std::to_string(ck.traces_done) + "/" +
                  std::to_string(ck.total_traces) + " traces)");
  SLM_REQUIRE(ck.shard_state.size() == ck.shards,
              "resume: snapshot shard table is inconsistent");
}

}  // namespace slm::core
