// Calibrated default configuration reproducing the paper's setup on the
// simulated substrate.
//
// Clocks follow the paper exactly (benign circuit synthesised for 50 MHz,
// overclocked to 300 MHz with results kept every second cycle = 150 MS/s;
// AES at 100 MHz; TDC effective 150 MS/s). The electrical constants are
// *effective* simulation values chosen so the observable shapes land in
// the paper's bands (sensitive-bit counts, TDC vs benign-sensor trace
// counts); they are plain data — nothing in the library depends on them.
#pragma once

#include <cstdint>

#include "crypto/aes_datapath.hpp"
#include "netlist/generators/alu.hpp"
#include "netlist/generators/c6288.hpp"
#include "pdn/current_source.hpp"
#include "pdn/rlc.hpp"
#include "sensors/ro_sensor.hpp"
#include "sensors/tdc.hpp"
#include "timing/capture.hpp"
#include "timing/delay_model.hpp"

namespace slm::core {

struct Calibration {
  // --- clocks (paper Sec. IV) -------------------------------------------
  double benign_design_mhz = 50.0;
  double overclock_mhz = 300.0;
  double aes_clock_mhz = 100.0;
  double sensor_sample_mhz = 150.0;  ///< every 2nd overclock cycle

  // --- physics -----------------------------------------------------------
  timing::VoltageDelayModel delay{1.0, 2.0};
  pdn::PdnConfig pdn{};
  pdn::RoGridConfig ro_grid{};
  crypto::DatapathConfig aes{};
  sensors::TdcConfig tdc{};
  sensors::RoSensorConfig ro_sensor{};  ///< RO-counter reference sensor
  timing::CaptureConfig capture{};

  // --- circuits ------------------------------------------------------------
  netlist::AluOptions alu{};
  netlist::C6288Options c6288{};

  // --- environment ---------------------------------------------------------
  double env_noise_v = 0.0015;  ///< white measurement noise on V (sigma)

  /// Victim->attacker PDN coupling (1 = same region; the fabric model
  /// supplies distance-derived values < 1). `coupling` is a global
  /// multiplier; the per-experiment values reflect the different
  /// floorplans of the ALU (Fig. 3) and C6288 (Fig. 4) setups.
  double coupling = 1.0;
  double alu_coupling = 0.30;
  double c6288_coupling = 0.80;

  /// Effective coupling for a given benign circuit placement.
  double coupling_for_alu() const { return coupling * alu_coupling; }
  double coupling_for_c6288() const { return coupling * c6288_coupling; }

  /// Paper's AES key (the FIPS-197 example key).
  crypto::Block aes_key() const;

  /// Voltage swing the RO grid produces (used to define the
  /// deterministically "sensitive" endpoint band). Derived values filled
  /// in by paper_defaults().
  double ro_v_min = 0.0;
  double ro_v_max = 0.0;

  double overclock_period_ns() const { return 1000.0 / overclock_mhz; }
  double sensor_sample_period_ns() const { return 1000.0 / sensor_sample_mhz; }

  /// The calibrated configuration used by every figure bench.
  static Calibration paper_defaults();
};

}  // namespace slm::core
