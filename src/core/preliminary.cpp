#include "core/preliminary.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "pdn/rlc.hpp"

namespace slm::core {

std::size_t TimeSeriesResult::sample_index_at(double t) const {
  for (std::size_t i = 0; i < t_ns.size(); ++i) {
    if (t_ns[i] >= t) return i;
  }
  return t_ns.empty() ? 0 : t_ns.size() - 1;
}

std::vector<std::size_t> TimeSeriesResult::benign_hw(
    const std::vector<std::size_t>& bits) const {
  std::vector<std::size_t> out;
  out.reserve(benign_toggles.size());
  for (const auto& word : benign_toggles) {
    if (bits.empty()) {
      out.push_back(word.popcount());
    } else {
      out.push_back(sca::hamming_weight_over(word, bits));
    }
  }
  return out;
}

TimeSeriesResult PreliminaryExperiment::run(const TimeSeriesConfig& cfg) const {
  SLM_REQUIRE(cfg.duration_ns > 0, "TimeSeries: bad duration");
  const Calibration& cal = setup_.calibration();

  Xoshiro256 rng(cfg.seed);
  pdn::RlcPdn pdn(cal.pdn);

  // AES activity: back-to-back encryptions of random plaintexts.
  const double aes_cycle_ns = 1000.0 / cal.aes_clock_mhz;
  auto enc = setup_.victim().encrypt(crypto::Block{});
  std::size_t enc_started_step = 0;

  const double dt = cal.pdn.dt_ns;
  const double sample_period = cal.sensor_sample_period_ns();
  double next_sample = sample_period;  // skip t=0 transient

  TimeSeriesResult result;
  const std::size_t steps =
      static_cast<std::size_t>(std::ceil(cfg.duration_ns / dt));

  for (std::size_t k = 0; k < steps; ++k) {
    const double t = static_cast<double>(k) * dt;

    double i_load = 0.0;
    if (cfg.ro_active) {
      i_load += setup_.ro_grid().current_at(t, cfg.ro_enable_ns);
    }
    if (cfg.aes_active) {
      const double since = (static_cast<double>(k - enc_started_step)) * dt;
      std::size_t cycle = static_cast<std::size_t>(since / aes_cycle_ns);
      if (cycle >= crypto::AesDatapathModel::kCycles) {
        crypto::Block pt;
        for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());
        enc = setup_.victim().encrypt(pt);
        enc_started_step = k;
        cycle = 0;
      }
      i_load += setup_.effective_coupling() * enc.cycle_current[cycle];
    }

    const double v = pdn.step(i_load);

    if (t >= next_sample) {
      next_sample += sample_period;
      const double v_noisy =
          v + FastNormal::instance()(rng, 0.0, cal.env_noise_v);
      result.t_ns.push_back(t);
      result.voltage.push_back(v_noisy);
      result.benign_toggles.push_back(
          setup_.sensor().sample_toggles(v_noisy, rng));
      result.tdc_readings.push_back(setup_.tdc().sample(v_noisy, rng));
    }
  }
  return result;
}

sca::BitSelector PreliminaryExperiment::analyse(
    const TimeSeriesResult& series) const {
  sca::BitSelector selector(setup_.sensor_bits());
  for (const auto& word : series.benign_toggles) selector.add(word);
  return selector;
}

}  // namespace slm::core
