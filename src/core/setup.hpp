// AttackSetup assembles the full experimental platform of Fig. 2 on the
// simulated substrate: the benign circuit (ALU or two C6288 multipliers)
// as a sensor, the reference TDC, the AES victim, the RO aggressor grid,
// and the multi-tenant floorplan. All figure benches and examples start
// from one of these.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/calibration.hpp"
#include "crypto/aes_datapath.hpp"
#include "fpga/fabric.hpp"
#include "netlist/netlist.hpp"
#include "pdn/current_source.hpp"
#include "sensors/benign_sensor.hpp"
#include "sensors/ro_sensor.hpp"
#include "sensors/tdc.hpp"

namespace slm::core {

enum class BenignCircuit {
  kAlu,      ///< 192-bit adder ALU (one instance)
  kC6288x2,  ///< two 16x16 multipliers, outputs concatenated (64 bits)
};

const char* benign_circuit_name(BenignCircuit c);

class AttackSetup {
 public:
  AttackSetup(BenignCircuit circuit, const Calibration& cal,
              std::uint64_t seed = 0x51);

  const Calibration& calibration() const { return cal_; }
  BenignCircuit circuit_kind() const { return circuit_; }

  /// Victim->attacker PDN coupling for this experiment's floorplan.
  double effective_coupling() const {
    return circuit_ == BenignCircuit::kAlu ? cal_.coupling_for_alu()
                                           : cal_.coupling_for_c6288();
  }

  /// The benign sensor bank (1 instance for the ALU, 2 for C6288).
  const sensors::BenignSensorBank& sensor() const { return bank_; }

  /// Endpoint count of the concatenated sensor word (192 or 64).
  std::size_t sensor_bits() const { return bank_.endpoint_count(); }

  const sensors::TdcSensor& tdc() const { return *tdc_; }
  const sensors::RoCounterSensor& ro_sensor() const { return *ro_sensor_; }
  crypto::AesDatapathModel& victim() { return *victim_; }
  const pdn::RoGridAggressor& ro_grid() const { return *ro_grid_; }

  /// The benign circuit's netlist(s) (for checker/floorplan use).
  const netlist::Netlist& benign_netlist(std::size_t instance = 0) const;
  std::size_t benign_instance_count() const { return netlists_.size(); }

  /// Multi-tenant floorplan with the attacker (benign circuit + TDC) and
  /// victim (AES) regions, sensitive endpoints marked (Figs. 3/4).
  fpga::Fabric make_floorplan() const;

  /// Endpoints deterministically sensitive across the RO voltage band,
  /// global indices over the concatenated word.
  std::vector<std::size_t> ro_band_sensitive_endpoints() const;

 private:
  BenignCircuit circuit_;
  Calibration cal_;
  std::vector<std::shared_ptr<netlist::Netlist>> netlists_;
  sensors::BenignSensorBank bank_;
  std::unique_ptr<sensors::TdcSensor> tdc_;
  std::unique_ptr<sensors::RoCounterSensor> ro_sensor_;
  std::unique_ptr<crypto::AesDatapathModel> victim_;
  std::unique_ptr<pdn::RoGridAggressor> ro_grid_;
};

}  // namespace slm::core
