// Distributed campaign fabric (docs/DISTRIBUTED.md): shard workers that
// capture any contiguous trace range of a contract-v2 campaign and emit
// CRC'd `SLMSNAP1` accumulator snapshots, plus the merge/coordinate side
// — a range ledger that refuses overlaps and finds gaps, order-invariant
// snapshot merging, and a local multi-process coordinator that reissues
// dead or incomplete shards' exact trace ranges. Because contract v2
// derives every trace from (seed, trace_index) and the CPA accumulators
// are integer-valued sums, a merged fabric run is byte-identical to the
// serial engine for every split (tests/core/fabric_test.cpp,
// tools/fabric_smoke.cmake).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/campaign.hpp"
#include "core/setup.hpp"
#include "sca/cpa.hpp"

namespace slm::obs {
class CampaignObserver;
}

namespace slm::core {

/// `SLMSNAP1` wire version (independent of kCheckpointVersion: snapshots
/// carry only identity + covered ranges + one accumulator blob, no
/// engine-topology state, so they survive thread/block-count changes).
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// A snapshot file is structurally unusable: missing, truncated, wrong
/// magic/version, CRC failure, or a malformed payload. CLI exit code 7.
class SnapshotFormatError : public Error {
 public:
  using Error::Error;
};

/// Snapshots describe different campaigns (seed / contract / config
/// fingerprint mismatch) and must never be merged. CLI exit code 8.
class SnapshotMismatch : public Error {
 public:
  using Error::Error;
};

/// Trace-range bookkeeping violation: overlapping ranges (a silent
/// double-count), out-of-bounds or empty ranges, or a merge --report on
/// incomplete coverage. CLI exit code 9.
class SnapshotRangeError : public Error {
 public:
  using Error::Error;
};

/// Half-open range of global zero-based trace indices [begin, end).
struct TraceRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  std::uint64_t count() const { return end - begin; }
  bool operator==(const TraceRange& o) const {
    return begin == o.begin && end == o.end;
  }
};

/// Split [0, total) into `shards` contiguous ranges — the same
/// `i*total/N` arithmetic the sharded engine uses per segment, so a
/// worker's range is always computable from (total, N, i) alone. Shard
/// ranges may be empty when shards > total.
std::vector<TraceRange> plan_shards(std::uint64_t total, unsigned shards);

/// Coverage ledger over [0, total): which global traces are accounted
/// for by at least one snapshot. cover() refuses any overlap with an
/// SnapshotRangeError — a double-counted range would silently bias every
/// correlation, so it can never be "mostly fine".
class RangeLedger {
 public:
  explicit RangeLedger(std::uint64_t total);

  /// Add a covered range; throws SnapshotRangeError on empty/
  /// out-of-bounds/overlapping input. Adjacent ranges coalesce.
  void cover(TraceRange r);

  bool complete() const { return covered() == total_; }
  std::uint64_t covered() const;
  std::uint64_t total() const { return total_; }

  /// Coalesced covered ranges, sorted ascending.
  const std::vector<TraceRange>& ranges() const { return ranges_; }

  /// The gaps: exactly the ranges a coordinator must (re)issue.
  std::vector<TraceRange> missing() const;

 private:
  std::uint64_t total_;
  std::vector<TraceRange> ranges_;
};

/// Everything that determines a trace's value under contract v2. Two
/// snapshots merge only if ALL of this matches; the fingerprint is the
/// CRC-32 of its canonical serialization. Thread count, block size, and
/// shard index are deliberately absent — under v2 they cannot change a
/// single reading, and the whole point of the fabric is merging across
/// them.
struct SnapshotIdentity {
  std::uint32_t circuit = 0;       ///< BenignCircuit
  std::uint32_t mode = 0;          ///< SensorMode
  std::uint64_t seed = 0;
  std::uint64_t total_traces = 0;  ///< full campaign budget, not the range
  std::uint64_t samples = 0;
  std::uint64_t target_key_byte = 0;
  std::uint64_t target_bit = 0;
  std::uint64_t single_bit = 0;    ///< resolved (post-selection) bit
  std::uint8_t compiled = 0;
  std::uint32_t rng_contract = 2;  ///< SLMSNAP1 requires v2
  std::uint8_t fullkey = 0;

  std::uint32_t fingerprint() const;
  bool operator==(const SnapshotIdentity& o) const;
};

/// One shard's (or one merge's) worth of campaign state: identity,
/// covered trace ranges, and the raw accumulator blob (MultiByteCpa for
/// full-key, XorClassCpa on the compiled path, CpaEngine otherwise —
/// the existing save/load formats, unchanged).
struct AccumulatorSnapshot {
  SnapshotIdentity id;
  std::vector<TraceRange> ranges;       ///< sorted, disjoint
  std::vector<std::uint8_t> accumulator;
  std::string source;                   ///< load path, for diagnostics only
};

/// Write `snap` as an SLMSNAP1 file (atomic tmp+rename, CRC'd framed
/// envelope shared with SLMCKPT1). Returns bytes written.
std::size_t save_snapshot(const std::string& path,
                          const AccumulatorSnapshot& snap);

/// Load and fully validate an SLMSNAP1 file. Throws SnapshotFormatError
/// (missing/corrupt/foreign file, fingerprint inconsistency) or
/// SnapshotRangeError (unsorted/overlapping/out-of-bounds ranges).
AccumulatorSnapshot load_snapshot(const std::string& path);

/// Merge snapshots in the given order (any order: bit-identical, the
/// accumulators are integer-valued sums). Throws SnapshotMismatch when
/// identities differ, SnapshotRangeError when covered ranges overlap.
/// Gaps are allowed — a coordinator merges partial snapshots and fills
/// the holes later; `merge --report` is what insists on completeness.
AccumulatorSnapshot merge_snapshots(
    const std::vector<AccumulatorSnapshot>& parts);

/// Fold a snapshot's accumulator into per-guess CPA sums for one key
/// byte (any byte for full-key snapshots; the snapshot's own target byte
/// otherwise). Bit-identical to the serial engine's checkpoint fold.
sca::CpaEngine fold_snapshot_byte(const AccumulatorSnapshot& snap,
                                  std::size_t key_byte);

/// One worker assignment: capture [range.begin, range.end) of the
/// campaign and write snapshots to `snapshot_out`.
struct FabricJob {
  TraceRange range;
  std::string snapshot_out;
  /// Also snapshot every N traces within the range (0 = final only).
  /// Each intermediate snapshot covers [range.begin, boundary) — the
  /// file is always a complete, mergeable prefix of the assignment.
  std::uint64_t snapshot_every = 0;
  /// Halt (throw CampaignHalted) after this many traces INTO the range,
  /// right after the covering snapshot lands — the deterministic stand-
  /// in for a worker dying mid-range (0 = off).
  std::uint64_t halt_after = 0;
};

/// Captures any contiguous trace range of a contract-v2 campaign,
/// bit-identically to the traces the serial engine would assign those
/// indices. Runs the selection pre-pass once (deterministic from the
/// config seed, so every worker of a campaign resolves the same bits).
class FabricWorker {
 public:
  /// `cfg` must be the exact campaign config of the serial run being
  /// distributed (StealthyAttack::byte_campaign_config /
  /// fullkey_campaign_config build it). Requires contract v2.
  FabricWorker(AttackSetup& setup, const CampaignConfig& cfg, bool fullkey);

  /// The campaign identity (selection pre-pass runs on first call).
  const SnapshotIdentity& identity();

  /// Capture the job's range and write the snapshot(s). Returns the
  /// final snapshot; throws CampaignHalted after a halt_after boundary.
  AccumulatorSnapshot run(const FabricJob& job);

 private:
  AttackSetup& setup_;
  CpaCampaign campaign_;
  bool fullkey_;
  bool resolved_ = false;
  std::vector<std::size_t> bits_;
  SnapshotIdentity id_;
};

/// Shared coordinator-side view of worker progress, written by the
/// per-worker JSONL monitor threads and read concurrently by the
/// coordinator loop (raced under TSan by the fabric_tsan ctest entry).
class FabricProgress {
 public:
  void reset(std::size_t workers);
  void update(std::size_t worker, std::uint64_t covered_end);
  std::uint64_t covered(std::size_t worker) const;
  std::uint64_t total_covered() const;

 private:
  mutable std::mutex m_;
  std::vector<std::uint64_t> covered_;
};

struct CoordinateOptions {
  std::string slm_binary;               ///< worker executable (slm)
  std::vector<std::string> worker_args; ///< attack config args, verbatim
  std::string work_dir;                 ///< snapshots + worker JSONL live here
  std::uint64_t total_traces = 0;
  unsigned shards = 4;
  std::uint64_t snapshot_every = 0;
  unsigned max_reissue_rounds = 4;
  /// Fault injection: pass --halt-after to this first-round shard so it
  /// dies mid-range (-1 = off); kill_after is range-relative traces.
  int kill_shard = -1;
  std::uint64_t kill_after = 0;
  obs::CampaignObserver* observer = nullptr;
};

struct CoordinateResult {
  std::string merged_path;
  unsigned workers_spawned = 0;
  unsigned worker_failures = 0;
  unsigned ranges_reissued = 0;
  std::size_t snapshots_merged = 0;
};

/// Drive `opt.shards` local `slm attack --range --snapshot-out` worker
/// subprocesses to full coverage of [0, total_traces): spawn a round,
/// track per-shard progress from each worker's JSONL event stream,
/// reap, salvage whatever complete snapshot prefix a dead worker left
/// behind, and reissue exactly the missing ranges until the ledger is
/// complete; then merge everything into `work_dir`/merged.snap.
CoordinateResult coordinate_local(const CoordinateOptions& opt);

}  // namespace slm::core
