// Sharded, deterministic, multi-threaded CPA campaigns.
//
// ParallelCampaign splits a trace budget across worker shards. Every
// shard owns the mutable half of the capture pipeline — a copy of the
// AES victim model, its own active-fence stream, an independent RNG
// stream derived from (seed, shard_index) — and feeds a private
// CpaEngine. The immutable half (netlists, sensors, the PDN response
// matrix) is shared read-only. At every checkpoint the shard engines
// are merged (the running sums are plain sums) and a CpaProgressPoint
// is snapshotted, so the convergence curves of Figs. 9b-18b survive
// sharding.
//
// Determinism contract (see DESIGN.md §7/§12):
//   * contract v2 (default)          => bit-identical results for ANY
//     thread count, block size, and SIMD toggle: every trace's draws
//     derive statelessly from (seed, trace index), shards own
//     contiguous chunks of the global trace sequence, and merges happen
//     in fixed shard order over integer-exact sums;
//   * contract v1 (--rng-contract v1):
//       - same seed + same thread count => bit-identical, regardless of
//         OS scheduling (shard i's traces depend only on (seed, i));
//       - threads == 1                  => the exact legacy serial path;
//       - different thread counts       => statistically equivalent but
//         not bitwise identical (different shard streams).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/campaign.hpp"
#include "core/setup.hpp"

namespace slm::core {

/// Resolve a user-facing thread knob: 0 = all hardware threads.
unsigned resolve_threads(unsigned requested);

/// Minimal fork-join pool: run_indexed(n, fn) executes fn(0..n-1) across
/// the workers and blocks until all are done. Reused across checkpoint
/// segments so a 20-checkpoint campaign spawns its threads once.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const;

  /// Run fn(i) for every i in [0, n); rethrows the first worker
  /// exception (remaining tasks still drain).
  void run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Asynchronous variant for producer/consumer pipelines: start
  /// fn(0..n-1) on the workers and return immediately. The pool owns a
  /// copy of `fn`, so the caller's callable may go out of scope; the
  /// objects the callable references must outlive the batch (the
  /// destructor joins an in-flight batch before the threads die). One
  /// batch may be in flight at a time; submitting while busy is an
  /// error.
  void submit_indexed(std::size_t n, std::function<void(std::size_t)> fn);

  /// Block until the submitted batch drains (no-op when nothing is in
  /// flight); rethrows the first worker exception.
  void wait();

 private:
  struct Impl;
  Impl* impl_;
};

/// Traces shard `shard` (of `shards`) has captured once `total` traces
/// are done overall: round-robin assignment (trace t goes to shard
/// t % shards), so per-shard positions grow monotonically through the
/// checkpoint schedule and always sum to `total`.
std::size_t shard_quota(std::size_t total, std::size_t shard,
                        std::size_t shards);

class ParallelCampaign {
 public:
  /// `threads` = 0 picks hardware_concurrency; 1 runs the exact serial
  /// CpaCampaign path.
  ParallelCampaign(AttackSetup& setup, const CampaignConfig& cfg,
                   unsigned threads = 0);

  unsigned threads() const { return threads_; }

  /// Run the campaign; result.threads_used / capture_seconds report the
  /// realised parallelism and capture-loop throughput.
  CampaignResult run();

  /// Sharded fused full-key campaign: the shared capture stream is split
  /// across worker shards exactly like run() (contract v2 = contiguous
  /// per-checkpoint chunks, v1 = round-robin shard streams), each shard
  /// feeds a private sca::MultiByteCpa, and the coordinator merges in
  /// fixed shard order and runs the per-byte folds / early-exit logic at
  /// checkpoints. threads <= 1 delegates to CpaCampaign::run_fullkey.
  /// Under contract v2 results are bit-identical for any thread count,
  /// block size, and SIMD toggle — and per byte to the farmed oracle.
  FullKeyRunResult run_fullkey(const FullKeyConfig& fk = {});

 private:
  CampaignResult run_sharded();
  FullKeyRunResult run_fullkey_sharded(const FullKeyConfig& fk);

  AttackSetup& setup_;
  CampaignConfig cfg_;
  unsigned threads_;
};

}  // namespace slm::core
