// Crash-safe campaign snapshots: everything a CPA campaign needs to
// continue bit-exactly after a kill — per-shard CPA accumulator sums,
// RNG stream positions, the victim model's register history, fence
// noise-stream positions, and the progress curve so far.
//
// File format (docs/OBSERVABILITY.md documents it for operators):
//
//   magic   "SLMCKPT1"                 8 bytes
//   version u32                        currently 4 (version 2 added the
//                                      trace-block size, version 3 the
//                                      RNG determinism contract,
//                                      version 4 the full-key section);
//                                      readers reject other versions
//                                      (no silent migration of attack
//                                      state)
//   length  u64                        payload byte count
//   crc     u32                        CRC-32 of the payload
//   payload                            header + shards + progress,
//                                      little-endian, raw IEEE-754
//                                      doubles (see checkpoint.cpp).
//                                      The engines accumulate in int64
//                                      now; the sums bridge through
//                                      these double fields exactly
//                                      (every in-budget sum < 2^53), so
//                                      the format and old snapshots are
//                                      unchanged — no version bump.
//
// Durability contract: snapshots are written to `<dir>/campaign.ckpt`
// via a temp file + atomic rename, so the file is always either the
// previous complete snapshot or the new complete snapshot — a kill at
// any instant (including mid-write) never leaves a torn checkpoint.
// Corruption (bad magic/version/CRC/truncation) fails loudly on load.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "crypto/aes_datapath.hpp"
#include "sca/cpa.hpp"

namespace slm::core {

inline constexpr std::uint32_t kCheckpointVersion = 4;

/// Thrown when a campaign with `halt_after_traces` set reaches that
/// trace count at a checkpoint: the snapshot is on disk, the process
/// "dies". The kill-at-checkpoint integration tests and the
/// `slm attack --halt-after` flag use this to simulate a crash
/// deterministically; a real kill -9 is equivalent because snapshots
/// are atomic.
class CampaignHalted : public Error {
 public:
  CampaignHalted(std::size_t traces, std::string snapshot_path)
      : Error("campaign halted after " + std::to_string(traces) +
              " traces; snapshot at '" + snapshot_path + "'"),
        traces_(traces),
        snapshot_path_(std::move(snapshot_path)) {}

  std::size_t traces() const { return traces_; }
  const std::string& snapshot_path() const { return snapshot_path_; }

 private:
  std::size_t traces_;
  std::string snapshot_path_;
};

/// Thrown on a cross-contract resume attempt: a snapshot written under
/// one RNG determinism contract cannot continue under the other (the
/// trace streams differ from the first draw), so this must fail loudly
/// rather than silently diverge. The CLI maps it to its own exit code
/// (6) so drills and operators can tell "wrong contract" apart from
/// "halted" (5) or "key not recovered" (4).
class CheckpointContractMismatch : public Error {
 public:
  CheckpointContractMismatch(const std::string& snapshot_contract,
                             const std::string& run_contract)
      : Error("resume: snapshot was written under RNG contract " +
              snapshot_contract + " but this run uses " + run_contract +
              " — rerun with --rng-contract " + snapshot_contract +
              " (or start fresh)") {}
};

/// One shard's mutable capture state. `accumulator` is the opaque
/// payload of CpaEngine::save (reference path) or XorClassCpa::save
/// (compiled path) — the `compiled` header flag says which.
struct CheckpointShard {
  std::uint64_t position = 0;  ///< traces this shard has captured
  std::array<std::uint64_t, 4> rng{};
  crypto::AesDatapathModel::RegisterSnapshot victim{};
  bool has_fence = false;
  std::array<std::uint64_t, 4> fence_rng{};
  std::vector<std::uint8_t> accumulator;
};

/// Per-byte convergence state of a fused full-key campaign (see
/// docs/FULLKEY.md): the progress curve recorded so far, the early-exit
/// counters, and — once the byte has converged — the frozen result. The
/// shared capture keeps accumulating for frozen bytes (the accumulator
/// blob lives in CheckpointShard as usual); only the per-checkpoint fold
/// stops, so this state is what lets a resumed run report the same
/// per-byte trace counts as an uninterrupted one.
struct FullKeyByteCheckpoint {
  bool converged = false;
  std::uint64_t stable = 0;          ///< consecutive qualifying checkpoints
  std::uint64_t prev_best = 256;     ///< best guess last checkpoint; 256 = none
  std::uint64_t frozen_traces = 0;   ///< trace count at convergence
  std::uint8_t recovered = 0;        ///< frozen winner (converged only)
  std::vector<double> frozen_corr;   ///< per-guess |r| at convergence
  std::vector<sca::CpaProgressPoint> progress;
};

/// A complete, self-validating campaign snapshot.
struct CampaignCheckpoint {
  // Identity block — resume refuses to continue under a different
  // configuration (seed, budget, sensor mode, shard count, sampling
  // window, kernel path, CPA target), because the result would silently
  // differ from the uninterrupted run.
  std::uint64_t seed = 0;
  std::uint64_t total_traces = 0;
  std::uint32_t mode = 0;
  std::uint32_t shards = 0;
  std::uint64_t samples = 0;
  std::uint64_t target_key_byte = 0;
  std::uint64_t target_bit = 0;
  std::uint64_t single_bit = 0;
  bool compiled = true;

  /// Effective trace-block size of the run that wrote the snapshot —
  /// informational run metadata (it matches CampaignResult::block_size
  /// and the bench JSON). Resume does NOT require it to match: block
  /// size never affects results, only how the loop is tiled.
  std::uint64_t block = 0;

  /// RNG determinism contract of the run that wrote the snapshot (1 =
  /// sequential streams, 2 = counter-keyed per-trace streams; see
  /// core::RngContract and DESIGN.md §12). Resume REQUIRES a match —
  /// unlike `block`, the contract changes every trace's draws.
  std::uint32_t rng_contract = 2;

  /// Fused full-key snapshot (format version 4): the shard accumulators
  /// are sca::MultiByteCpa blobs and `fullkey_bytes` carries the 16
  /// per-byte convergence states; `progress` stays empty. Resume REQUIRES
  /// a match — a single-byte run cannot continue a full-key snapshot or
  /// vice versa.
  bool fullkey = false;

  std::uint64_t traces_done = 0;
  std::vector<CheckpointShard> shard_state;
  std::vector<sca::CpaProgressPoint> progress;
  std::vector<FullKeyByteCheckpoint> fullkey_bytes;  ///< 16 when fullkey
};

/// `<dir>/campaign.ckpt` — the one live snapshot of a campaign.
std::string checkpoint_file(const std::string& dir);

/// Serialize + CRC + atomically replace `<dir>/campaign.ckpt`
/// (creating `dir` if needed). Returns the byte size written.
std::size_t save_checkpoint(const std::string& dir,
                            const CampaignCheckpoint& ck);

/// Load and verify `<dir>/campaign.ckpt`. Returns nullopt when the file
/// does not exist (fresh start); throws slm::Error on bad magic,
/// version mismatch, CRC failure, or truncation.
std::optional<CampaignCheckpoint> load_checkpoint(const std::string& dir);

struct CampaignConfig;

/// Refuse to resume under a different configuration: seed, trace budget,
/// sensor mode, shard count, sample count, CPA target, resolved single
/// bit, kernel path, and RNG contract must all match the snapshot, or
/// the resumed run would silently diverge from the uninterrupted one.
/// `cfg.single_bit` must already be resolved (post resolve_sensor_bits)
/// and `rng_contract` is the RESOLVED contract of this run (1 or 2) —
/// a mismatch throws CheckpointContractMismatch.
void require_checkpoint_matches(const CampaignCheckpoint& ck,
                                const CampaignConfig& cfg,
                                std::uint32_t shards, std::size_t samples,
                                std::uint32_t rng_contract,
                                bool fullkey = false);

}  // namespace slm::core
