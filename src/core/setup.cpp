#include "core/setup.hpp"

#include <set>

#include "common/error.hpp"

namespace slm::core {

const char* benign_circuit_name(BenignCircuit c) {
  switch (c) {
    case BenignCircuit::kAlu:
      return "alu192";
    case BenignCircuit::kC6288x2:
      return "c6288x2";
  }
  return "?";
}

AttackSetup::AttackSetup(BenignCircuit circuit, const Calibration& cal,
                         std::uint64_t seed)
    : circuit_(circuit), cal_(cal) {
  sensors::BenignSensorConfig scfg;
  scfg.capture = cal_.capture;

  switch (circuit_) {
    case BenignCircuit::kAlu: {
      auto nl = std::make_shared<netlist::Netlist>(
          netlist::make_alu(cal_.alu));
      scfg.seed = seed;
      bank_.add(std::make_shared<sensors::BenignSensor>(
          *nl, netlist::alu_reset_stimulus(cal_.alu),
          netlist::alu_measure_stimulus(cal_.alu), scfg));
      netlists_.push_back(std::move(nl));
      break;
    }
    case BenignCircuit::kC6288x2: {
      for (std::size_t inst = 0; inst < 2; ++inst) {
        auto nl = std::make_shared<netlist::Netlist>(
            netlist::make_c6288(cal_.c6288));
        scfg.seed = seed + 0x9e37 * (inst + 1);
        bank_.add(std::make_shared<sensors::BenignSensor>(
            *nl, netlist::c6288_reset_stimulus(cal_.c6288),
            netlist::c6288_measure_stimulus(cal_.c6288), scfg));
        netlists_.push_back(std::move(nl));
      }
      break;
    }
  }

  tdc_ = std::make_unique<sensors::TdcSensor>(cal_.tdc);
  ro_sensor_ = std::make_unique<sensors::RoCounterSensor>(cal_.ro_sensor);
  victim_ = std::make_unique<crypto::AesDatapathModel>(cal_.aes_key(),
                                                       cal_.aes);
  ro_grid_ = std::make_unique<pdn::RoGridAggressor>(cal_.ro_grid);
}

const netlist::Netlist& AttackSetup::benign_netlist(
    std::size_t instance) const {
  SLM_REQUIRE(instance < netlists_.size(),
              "benign_netlist: instance out of range");
  return *netlists_[instance];
}

std::vector<std::size_t> AttackSetup::ro_band_sensitive_endpoints() const {
  std::vector<std::size_t> out;
  std::size_t base = 0;
  for (std::size_t i = 0; i < bank_.instance_count(); ++i) {
    const auto& s = bank_.instance(i);
    for (std::size_t e :
         s.capture().sensitive_endpoints(cal_.ro_v_min, cal_.ro_v_max)) {
      out.push_back(base + e);
    }
    base += s.endpoint_count();
  }
  return out;
}

fpga::Fabric AttackSetup::make_floorplan() const {
  fpga::Fabric fabric(120, 48);
  const std::size_t attacker =
      fabric.add_tenant("attacker", fpga::Rect{0, 0, 58, 48});
  const std::size_t victim =
      fabric.add_tenant("victim", fpga::Rect{62, 0, 58, 48});

  // Map sensitive endpoints to scattered hot cells of the benign block.
  const auto sensitive = ro_band_sensitive_endpoints();
  const std::size_t sensor_cells = 600;
  std::set<std::size_t> hot;
  for (std::size_t e : sensitive) {
    hot.insert((e * 7919 + 13) % sensor_cells);
  }

  fpga::PlacedModule benign;
  benign.name = benign_circuit_name(circuit_);
  benign.symbol = 'B';
  benign.bounds = fpga::Rect{2, 4, 34, 40};
  benign.cell_count = sensor_cells;
  benign.hot_cells.assign(hot.begin(), hot.end());
  fabric.place_module(attacker, benign);

  fpga::PlacedModule tdc;
  tdc.name = "tdc64";
  tdc.symbol = 'T';
  tdc.bounds = fpga::Rect{40, 4, 4, 32};
  tdc.fill = 0.9;
  fabric.place_module(attacker, tdc);

  fpga::PlacedModule ros;
  ros.name = "ro_grid";
  ros.symbol = 'R';
  ros.bounds = fpga::Rect{46, 2, 10, 44};
  ros.fill = 0.8;
  fabric.place_module(attacker, ros);

  fpga::PlacedModule aes;
  aes.name = "aes128";
  aes.symbol = 'A';
  aes.bounds = fpga::Rect{70, 10, 24, 28};
  aes.fill = 0.7;
  fabric.place_module(victim, aes);

  return fabric;
}

}  // namespace slm::core
